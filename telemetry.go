package catfish

import (
	"net/http"

	"github.com/catfish-db/catfish/internal/telemetry"
)

// Telemetry surface: the unified metrics registry, the shared client
// counter snapshot, and the adaptive-decision trace ring, re-exported next
// to the Stats() accessors they feed. Wire a Registry/Tracer into
// client.Config / rpcnet configs (Metrics, Trace fields) and serve them
// with NewAdminMux — catfish-server does exactly that behind -metrics-addr.
type (
	// Registry is a race-safe set of named counters, gauges, and latency
	// histograms with Prometheus-text exposition.
	Registry = telemetry.Registry
	// ClientSnapshot is the unified client counter snapshot produced by
	// both the simulated and the real-TCP transports.
	ClientSnapshot = telemetry.ClientSnapshot
	// Trace is one per-search record of the adaptive decision path.
	Trace = telemetry.Trace
	// Tracer is the bounded-memory ring sampler of Traces.
	Tracer = telemetry.Tracer
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewTracer returns a trace ring holding the last capacity records,
// keeping 1 in every `every` offered records (capacity 0 selects the
// default; every <= 1 keeps all).
func NewTracer(capacity, every int) *Tracer { return telemetry.NewTracer(capacity, every) }

// NewAdminMux returns the admin HTTP surface (/metrics Prometheus text,
// /traces JSON dump, /debug/pprof) over a registry and trace ring; either
// may be nil.
func NewAdminMux(reg *Registry, tr *Tracer) *http.ServeMux {
	return telemetry.NewAdminMux(reg, tr)
}
