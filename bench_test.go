// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment suite once per iteration
// on the simulated cluster and reports headline metrics; run with -v to see
// the full tables. cmd/catfish-bench produces the same tables standalone,
// and EXPERIMENTS.md records the paper-vs-measured comparison.
package catfish_test

import (
	"testing"

	"github.com/catfish-db/catfish/bench"
	"github.com/catfish-db/catfish/internal/cluster"
)

// benchOptions scales the suite so the full `go test -bench .` completes in
// minutes. Use cmd/catfish-bench -full for the paper's exact parameters.
func benchOptions() bench.Options {
	return bench.Options{
		DatasetSize: 500_000,
		Requests:    300,
		Clients:     []int{32, 64, 128},
		Seed:        1,
	}
}

func BenchmarkFig2Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, results, err := bench.Fig2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
			reportLastCPU(b, results)
		}
	}
}

func reportLastCPU(b *testing.B, results []cluster.Result) {
	if len(results) == 0 {
		return
	}
	last := results[len(results)-1]
	b.ReportMetric(last.ServerCPUUtil*100, "serverCPU%")
	b.ReportMetric(last.ServerTXGbps, "serverTX_Gbps")
}

func BenchmarkFig7PollingVsEvent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, results, err := bench.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
			// Report the worst polling-to-event latency ratio observed.
			worst := 0.0
			for j := 0; j+1 < len(results); j += 2 {
				r := float64(results[j].Latency.Mean) / float64(results[j+1].Latency.Mean)
				if r > worst {
					worst = r
				}
			}
			b.ReportMetric(worst, "polling/event_latency_x")
		}
	}
}

func BenchmarkFig8MultiIssue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, results, err := bench.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
			best := 0.0
			for j := 0; j+1 < len(results); j += 2 {
				red := 100 * (1 - float64(results[j+1].Latency.Mean)/float64(results[j].Latency.Mean))
				if red > best {
					best = red
				}
			}
			b.ReportMetric(best, "max_latency_reduction_%")
		}
	}
}

func BenchmarkFig9Micro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkFig10SearchThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thr, _, results, err := bench.Fig10And11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\nFig 10 throughput (Kops):\n" + thr.String())
			b.Log("\nSpeedups:\n" + bench.Speedups(results).String())
			b.Log("\nOffloaded reads per search:\n" + bench.ReadsPerSearch(results).String())
			reportCatfishBest(b, results)
		}
	}
}

func reportCatfishBest(b *testing.B, results []cluster.Result) {
	best := 0.0
	for _, r := range results {
		if r.Scheme == "catfish" && r.Kops > best {
			best = r.Kops
		}
	}
	b.ReportMetric(best, "catfish_peak_kops")
}

func BenchmarkFig11SearchLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, lat, results, err := bench.Fig10And11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\nFig 11 latency (mean µs):\n" + lat.String())
			var catfishWorst float64
			for _, r := range results {
				if r.Scheme == "catfish" {
					if v := float64(r.Latency.Mean.Microseconds()); v > catfishWorst {
						catfishWorst = v
					}
				}
			}
			b.ReportMetric(catfishWorst, "catfish_worst_mean_us")
		}
	}
}

func BenchmarkFig12HybridThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thr, _, results, err := bench.Fig12And13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\nFig 12 throughput (Kops):\n" + thr.String())
			b.Log("\nSpeedups:\n" + bench.Speedups(results).String())
			reportCatfishBest(b, results)
		}
	}
}

func BenchmarkFig13HybridLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, lat, _, err := bench.Fig12And13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\nFig 13 latency (mean µs):\n" + lat.String())
		}
	}
}

func BenchmarkFig14Rea02(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thr, lat, results, err := bench.Fig14(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\nFig 14a throughput (Kops):\n" + thr.String())
			b.Log("\nFig 14b latency (mean µs):\n" + lat.String())
			b.Log("\nSpeedups:\n" + bench.Speedups(results).String())
			reportCatfishBest(b, results)
		}
	}
}

func BenchmarkAblationBackoffN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationBackoffN(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationThresholdT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationThresholdT(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationHeartbeat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationHeartbeat(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationMultiIssueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationMultiIssueDepth(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationNodeCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationNodeCache(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationChunkSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkAblationFetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.AblationFetch(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkFrameworkKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := bench.Framework(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}
