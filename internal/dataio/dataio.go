// Package dataio reads and writes dataset files: a little-endian header
// ("CATF", version, count) followed by 40-byte entry records (four float64
// coordinates plus a uint64 reference). catfish-gen produces these files
// and catfish-server loads them.
package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

var magic = [4]byte{'C', 'A', 'T', 'F'}

// formatVersion is the current file format version.
const formatVersion = 1

// ErrBadFormat reports an unrecognized or corrupt dataset file.
var ErrBadFormat = errors.New("dataio: bad dataset file")

// WriteEntries writes entries to w in the dataset file format.
func WriteEntries(w io.Writer, entries []rtree.Entry) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [40]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(rec[0:], math.Float64bits(e.Rect.MinX))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.Rect.MaxX))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(e.Rect.MinY))
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(e.Rect.MaxY))
		binary.LittleEndian.PutUint64(rec[32:], e.Ref)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEntries reads a dataset file written by WriteEntries.
func ReadEntries(r io.Reader) ([]rtree.Entry, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if [4]byte(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != formatVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(head[8:])
	const maxEntries = 1 << 31
	if count > maxEntries {
		return nil, fmt.Errorf("%w: count %d", ErrBadFormat, count)
	}
	out := make([]rtree.Entry, 0, count)
	var rec [40]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		e := rtree.Entry{
			Rect: geo.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(rec[0:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
			},
			Ref: binary.LittleEndian.Uint64(rec[32:]),
		}
		if !e.Rect.Valid() {
			return nil, fmt.Errorf("%w: record %d invalid rect", ErrBadFormat, i)
		}
		out = append(out, e)
	}
	return out, nil
}
