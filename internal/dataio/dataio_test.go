package dataio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]rtree.Entry, 1000)
	for i := range entries {
		entries[i] = rtree.Entry{
			Rect: geo.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
			Ref:  rng.Uint64(),
		}
	}
	var buf bytes.Buffer
	if err := WriteEntries(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEntries(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEntries(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := ReadEntries(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := ReadEntries(bytes.NewReader([]byte("NOTAMAGICFILE123"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("magic err = %v", err)
	}
	// Truncated records.
	var buf bytes.Buffer
	if err := WriteEntries(&buf, []rtree.Entry{{Rect: geo.PointRect(0.5, 0.5), Ref: 1}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadEntries(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated err = %v", err)
	}
	// Invalid rect in a record.
	var buf2 bytes.Buffer
	if err := WriteEntries(&buf2, []rtree.Entry{{Rect: geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEntries(&buf2); !errors.Is(err, ErrBadFormat) {
		t.Errorf("invalid rect err = %v", err)
	}
}
