package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram should report zeros: %+v", h.Summarize())
	}
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile = %v, want 0", h.Quantile(0.5))
	}
}

func TestHistogramSingle(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 100*time.Microsecond || s.Max != 100*time.Microsecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 100*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 100*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want 100µs", q, got)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []time.Duration
	for i := 0; i < 50000; i++ {
		// Log-uniform between 1µs and 10ms.
		v := time.Duration(float64(time.Microsecond) *
			pow(10, rng.Float64()*4))
		samples = append(samples, v)
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := Percentile(samples, q)
		got := h.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("Quantile(%v) = %v, exact %v (ratio %.3f)", q, got, exact, ratio)
		}
	}
}

func pow(b, e float64) float64 {
	out := 1.0
	for e >= 1 {
		out *= b
		e--
	}
	if e > 0 {
		// Linear blend is fine for test sample generation.
		out *= 1 + e*(b-1)
	}
	return out
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 200*time.Microsecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset did not clear")
	}
	h.Record(2 * time.Millisecond)
	if h.Min() != 2*time.Millisecond {
		t.Errorf("min after reset = %v", h.Min())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Microsecond) // clamped into bucket 0
	if h.Count() != 1 {
		t.Error("negative sample not recorded")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		h := NewHistogram()
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Second))))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBasic(t *testing.T) {
	u := NewUtilization(4)
	u.SetBusy(0, 4)
	u.SetBusy(100*time.Millisecond, 0)
	got := u.Window(200 * time.Millisecond)
	if got < 0.49 || got > 0.51 {
		t.Errorf("window util = %v, want ~0.5", got)
	}
	// After resetting the window, an idle interval reads as 0.
	got = u.Window(300 * time.Millisecond)
	if got != 0 {
		t.Errorf("idle window util = %v, want 0", got)
	}
}

func TestUtilizationClamp(t *testing.T) {
	u := NewUtilization(2)
	u.SetBusy(0, 100) // clamped to capacity
	got := u.Window(time.Second)
	if got != 1 {
		t.Errorf("over-busy window util = %v, want 1", got)
	}
	u.SetBusy(time.Second, -3) // clamped to zero
	if got := u.Window(2 * time.Second); got != 0 {
		t.Errorf("negative-busy window util = %v, want 0", got)
	}
}

func TestUtilizationTotal(t *testing.T) {
	u := NewUtilization(1)
	u.SetBusy(0, 1)
	u.SetBusy(time.Second, 0)
	got := u.Total(4 * time.Second)
	if got < 0.24 || got > 0.26 {
		t.Errorf("total util = %v, want 0.25", got)
	}
	if u.Total(0) != 0 {
		t.Error("Total(0) should be 0")
	}
}

func TestByteMeter(t *testing.T) {
	var m ByteMeter
	m.Add(1000)
	m.Add(-5) // ignored
	m.Add(250)
	if m.Bytes() != 1250 {
		t.Errorf("bytes = %d", m.Bytes())
	}
	// 1250 bytes over 1µs = 10 Gbps.
	got := m.Gbps(time.Microsecond)
	if got < 9.99 || got > 10.01 {
		t.Errorf("Gbps = %v, want 10", got)
	}
	if m.Gbps(0) != 0 {
		t.Error("Gbps(0) should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("scheme", "kops")
	tb.AddRow("catfish", "1239.4")
	tb.AddRow("fastmsg", "377.9", "extra-dropped")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table output")
	}
	for _, want := range []string{"scheme", "catfish", "1239.4", "fastmsg"} {
		if !contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if contains(out, "extra-dropped") {
		t.Error("overflow cell should have been dropped")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty Percentile should be 0")
	}
	samples := []time.Duration{5, 1, 4, 2, 3}
	if got := Percentile(samples, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := Percentile(samples, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(samples, 1); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	// Input must not be reordered.
	if samples[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000000) * time.Nanosecond)
	}
}
