// Package stats provides the streaming measurement primitives used by the
// experiment harness: a logarithmic-bucket latency histogram with percentile
// queries (in the spirit of HDR histograms but stdlib-only), simple counters,
// and a windowed utilization/rate tracker used for the server's CPU
// heartbeats and NIC bandwidth accounting.
//
// All types in this package are NOT safe for concurrent use; the simulation
// engine runs one process at a time, and the real-network mode wraps them in
// its own synchronization.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram records time.Duration samples in logarithmically spaced buckets
// and answers quantile queries with bounded relative error (~4%, 16 buckets
// per octave).
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const (
	// histSubBits buckets per power-of-two octave: 2^4 = 16 sub-buckets,
	// bounding the relative quantile error to ~1/16.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histBuckets covers values up to ~2^40 ns (~18 minutes).
	histBuckets = 41 * histSub
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, histBuckets),
		min:     math.MaxInt64,
	}
}

func bucketIndex(v time.Duration) int {
	if v < 0 {
		v = 0
	}
	n := uint64(v)
	if n < histSub {
		return int(n)
	}
	// Position of the highest set bit.
	exp := 63 - leadingZeros64(n)
	// Sub-bucket: next histSubBits bits below the top bit.
	sub := (n >> (uint(exp) - histSubBits)) & (histSub - 1)
	idx := (exp-histSubBits+1)*histSub + int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) time.Duration {
	if idx < histSub {
		return time.Duration(idx)
	}
	exp := idx/histSub + histSubBits - 1
	sub := uint64(idx % histSub)
	return time.Duration((1 << uint(exp)) | (sub << (uint(exp) - histSubBits)))
}

// Record adds one sample.
func (h *Histogram) Record(v time.Duration) {
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum) / h.count)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) of the
// recorded samples, or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is a compact snapshot of a histogram used in experiment results.
type Summary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summarize returns the summary snapshot of h.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Utilization integrates a busy signal over virtual time: callers report
// transitions between busy capacity levels, and the tracker answers "what
// fraction of capacity was used over [since, now]" — the quantity the
// Catfish server embeds into heartbeats.
type Utilization struct {
	capacity float64
	busy     float64 // current busy units (e.g. running jobs, up to capacity)

	lastChange time.Duration
	integral   float64 // busy-seconds since start

	windowStart    time.Duration
	windowIntegral float64 // busy-seconds at windowStart
}

// NewUtilization returns a tracker for a resource with the given capacity
// (for a CPU, the core count).
func NewUtilization(capacity float64) *Utilization {
	if capacity <= 0 {
		capacity = 1
	}
	return &Utilization{capacity: capacity}
}

// SetBusy records that from virtual time now onward, busy units of capacity
// are in use. busy is clamped to [0, capacity].
func (u *Utilization) SetBusy(now time.Duration, busy float64) {
	u.advance(now)
	if busy < 0 {
		busy = 0
	}
	if busy > u.capacity {
		busy = u.capacity
	}
	u.busy = busy
}

func (u *Utilization) advance(now time.Duration) {
	if now > u.lastChange {
		u.integral += u.busy * now.Seconds()
		u.integral -= u.busy * u.lastChange.Seconds()
		u.lastChange = now
	}
}

// Window returns the mean utilization (0..1) over [windowStart, now] and
// resets the window to start at now. A zero-length window returns the
// instantaneous utilization.
func (u *Utilization) Window(now time.Duration) float64 {
	u.advance(now)
	dt := (now - u.windowStart).Seconds()
	var out float64
	if dt <= 0 {
		out = u.busy / u.capacity
	} else {
		out = (u.integral - u.windowIntegral) / (dt * u.capacity)
	}
	u.windowStart = now
	u.windowIntegral = u.integral
	if out < 0 {
		out = 0
	}
	if out > 1 {
		out = 1
	}
	return out
}

// Total returns the mean utilization (0..1) from time zero to now, without
// resetting the window.
func (u *Utilization) Total(now time.Duration) float64 {
	u.advance(now)
	if now <= 0 {
		return 0
	}
	out := u.integral / (now.Seconds() * u.capacity)
	if out > 1 {
		out = 1
	}
	return out
}

// ByteMeter accumulates transferred bytes so the harness can report link
// bandwidth (the right y-axis of the paper's Fig 2).
type ByteMeter struct {
	bytes uint64
}

// Add records n transferred bytes.
func (m *ByteMeter) Add(n int) {
	if n > 0 {
		m.bytes += uint64(n)
	}
}

// Bytes returns the total transferred bytes.
func (m *ByteMeter) Bytes() uint64 { return m.bytes }

// Gbps returns the mean rate in gigabits per second over elapsed.
func (m *ByteMeter) Gbps(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / elapsed.Seconds() / 1e9
}

// Table renders rows of numbers as an aligned text table; used by the
// benchmark driver to print per-figure result tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		_ = i
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Percentile returns the p-quantile (0..1) of the given exact samples. It
// sorts a copy; intended for small test vectors, not hot paths.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)))
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}
