// Package fabric provides the communication layer of the simulated cluster:
// hosts with NICs, RDMA verbs over reliable-connection queue pairs (RDMA
// Read, RDMA Write, RDMA Write with Immediate Data, completion queues and
// event channels), and a kernel-TCP message transport for the paper's
// socket-based baselines.
//
// Time is modelled by the sim engine (NIC serialization pipes, propagation,
// per-message overheads, kernel CPU demands); data movement is real — bytes
// are copied between real buffers at the virtual instants the model
// dictates, so ring-buffer framing, version validation, and torn reads are
// exercised genuinely.
package fabric

import (
	"errors"
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
)

// Errors returned by fabric operations.
var (
	ErrBounds     = errors.New("fabric: access out of registered bounds")
	ErrWrongHost  = errors.New("fabric: memory not registered on the remote host")
	ErrNotAligned = errors.New("fabric: region read must cover exactly one chunk")
)

// Network is one fabric (a profile plus the hosts attached to it). A
// simulation may run several networks over the same engine (the paper's
// nodes have all three NICs installed).
type Network struct {
	e    *sim.Engine
	prof netmodel.Profile
}

// NewNetwork returns a network with the given profile.
func NewNetwork(e *sim.Engine, prof netmodel.Profile) *Network {
	return &Network{e: e, prof: prof}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.e }

// Profile returns the fabric profile.
func (n *Network) Profile() netmodel.Profile { return n.prof }

// Host is one machine attached to the network: a NIC (TX/RX serialization
// pipes plus a responder-direction pipe for one-sided READ response data)
// and optionally a CPU that kernel TCP processing is charged to.
type Host struct {
	name string
	net  *Network
	tx   *sim.Pipe
	rx   *sim.Pipe
	// rdtx serializes the TX-direction data of inbound one-sided READs:
	// the NIC's hardware responder engine DMAs the requested bytes out
	// without involving the host CPU or its send queue. Modelling it as a
	// separate pipe captures RFP's verb asymmetry (arXiv:1512.07805):
	// in-bound requests plus out-bound remote fetches leave the host's
	// *send engine* (tx) carrying only what the CPU actually posts, which
	// is exactly the signal the heartbeat's TX-utilization word reports
	// and the 3-way switch acts on. Port-level TX is tx + rdtx.
	rdtx *sim.Pipe
	cpu  *sim.CPU
}

// NewHost attaches a host. cpu may be nil for hosts whose kernel costs are
// accounted elsewhere (e.g. the RDMA-only polling server); TCP transfers to
// and from such hosts skip the kernel CPU charge but keep its latency.
func (n *Network) NewHost(name string, cpu *sim.CPU) *Host {
	return &Host{
		name: name,
		net:  n,
		tx:   sim.NewPipe(n.prof.BandwidthBps),
		rx:   sim.NewPipe(n.prof.BandwidthBps),
		rdtx: sim.NewPipe(n.prof.BandwidthBps),
		cpu:  cpu,
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// CPU returns the host CPU (may be nil).
func (h *Host) CPU() *sim.CPU { return h.cpu }

// TXBytes returns total bytes sent by the host's send engine — messages
// the CPU posted (wire overhead included). READ response data served by
// the responder engine is accounted separately in ReadTXBytes.
func (h *Host) TXBytes() uint64 { return h.tx.Bytes() }

// ReadTXBytes returns total TX-direction bytes the NIC's responder engine
// served for inbound one-sided READs (wire overhead included).
func (h *Host) ReadTXBytes() uint64 { return h.rdtx.Bytes() }

// PortTXBytes returns total TX-direction bytes on the wire: send engine
// plus responder engine.
func (h *Host) PortTXBytes() uint64 { return h.tx.Bytes() + h.rdtx.Bytes() }

// RXBytes returns total bytes received (wire overhead included).
func (h *Host) RXBytes() uint64 { return h.rx.Bytes() }

// TXGbps returns the mean send-engine transmit rate over elapsed.
func (h *Host) TXGbps(elapsed time.Duration) float64 { return h.tx.Gbps(elapsed) }

// ReadTXGbps returns the mean responder-engine transmit rate over elapsed.
func (h *Host) ReadTXGbps(elapsed time.Duration) float64 { return h.rdtx.Gbps(elapsed) }

// RXGbps returns the mean receive rate over elapsed.
func (h *Host) RXGbps(elapsed time.Duration) float64 { return h.rx.Gbps(elapsed) }

// LineRateBps returns the NIC line rate, for windowed utilization math.
func (h *Host) LineRateBps() float64 { return h.net.prof.BandwidthBps }

// deliver books a message of size payload bytes from a to b posted at the
// current virtual time and returns its delivery instant (remote memory
// written / message available), accounting NIC overheads, serialization on
// both NICs, propagation, and — when kernel is true — the kernel stack
// latency on both sides.
func (n *Network) deliver(from, to *Host, size int, kernel bool) time.Duration {
	return n.deliverPost(from, to, size, kernel, n.prof.NICOverhead)
}

// deliverPost is deliver with an explicit posting-side NIC overhead: the
// second and later WQEs of a doorbell-batched submission pay the reduced
// DoorbellPerWQE cost instead of full per-message setup. The completion
// side always pays NICOverhead.
func (n *Network) deliverPost(from, to *Host, size int, kernel bool, postOH time.Duration) time.Duration {
	s := size + n.prof.WireOverheadBytes
	now := n.e.Now()
	post := now + postOH
	extra := time.Duration(0)
	if kernel {
		extra = 2 * n.prof.KernelLatency
		post += n.prof.KernelLatency
	}
	txDone := from.tx.Reserve(post, s)
	rxDone := to.rx.Reserve(post+n.prof.PropagationDelay, s)
	d := txDone + n.prof.PropagationDelay
	if rxDone > d {
		d = rxDone
	}
	d += n.prof.NICOverhead
	if kernel {
		d = d - n.prof.KernelLatency + extra // sender-side latency already in post
	}
	return d
}

// deliverRead books the data leg of a one-sided READ response from the
// target host back to the reader: the target's hardware responder engine
// (rdtx pipe) serializes the bytes — its send engine and CPU are not
// involved — and the reader's RX pipe receives them as usual.
func (n *Network) deliverRead(from, to *Host, size int) time.Duration {
	s := size + n.prof.WireOverheadBytes
	now := n.e.Now()
	post := now + n.prof.NICOverhead
	txDone := from.rdtx.Reserve(post, s)
	rxDone := to.rx.Reserve(post+n.prof.PropagationDelay, s)
	d := txDone + n.prof.PropagationDelay
	if rxDone > d {
		d = rxDone
	}
	return d + n.prof.NICOverhead
}

// kernelDemand is the CPU cost of pushing one message of size bytes through
// the kernel network stack on one side.
func (n *Network) kernelDemand(size int) time.Duration {
	return n.prof.KernelCPUPerMsg +
		time.Duration(float64(size)/1024*float64(n.prof.KernelCPUPerKB))
}

// Memory is an RDMA-registered buffer on a host, addressable by remote QPs.
type Memory struct {
	host *Host
	buf  []byte
}

// RegisterMemory registers a fresh buffer of size bytes on the host,
// mirroring the paper's register-once design.
func (h *Host) RegisterMemory(size int) *Memory {
	return &Memory{host: h, buf: make([]byte, size)}
}

// Len returns the registered length.
func (m *Memory) Len() int { return len(m.buf) }

// Bytes exposes the buffer for local (same-host) access; remote access must
// go through verbs.
func (m *Memory) Bytes() []byte { return m.buf }

// Host returns the owning host.
func (m *Memory) Host() *Host { return m.host }

// ReadAt copies len(dst) bytes starting at off into dst.
func (m *Memory) ReadAt(off int, dst []byte) error {
	if off < 0 || off+len(dst) > len(m.buf) {
		return ErrBounds
	}
	copy(dst, m.buf[off:])
	return nil
}

var _ Readable = (*Memory)(nil)

// Readable is a remote data source an RDMA Read can fetch from.
type Readable interface {
	// ReadAt copies len(dst) bytes at offset off into dst; it is invoked at
	// the virtual instant the remote NIC performs the DMA.
	ReadAt(off int, dst []byte) error
	// Host returns the host owning the memory.
	Host() *Host
}

// RegionMemory adapts a region.Region as an RDMA-readable source. Reads
// must be chunk-aligned and cover a whole number of chunks: single chunks
// for the plain offload access pattern, longer spans for merged adjacent
// reads. Each chunk of a span is snapshotted through the region's seqlock
// surface independently, so a concurrent writer tears at most the chunks
// it actually touched.
type RegionMemory struct {
	host *Host
	reg  *region.Region
}

// RegisterRegion registers reg on the host.
func (h *Host) RegisterRegion(reg *region.Region) *RegionMemory {
	return &RegionMemory{host: h, reg: reg}
}

// Host returns the owning host.
func (m *RegionMemory) Host() *Host { return m.host }

// Region returns the underlying region.
func (m *RegionMemory) Region() *region.Region { return m.reg }

// ChunkOffset returns the region offset of chunk id, for use with RDMA
// Read — the paper's "registered base address + chunk ID as offset".
func (m *RegionMemory) ChunkOffset(id int) int { return id * m.reg.ChunkSize() }

// ReadAt implements Readable; the read must be chunk-aligned and cover a
// whole number of chunks.
func (m *RegionMemory) ReadAt(off int, dst []byte) error {
	cs := m.reg.ChunkSize()
	if off%cs != 0 || len(dst) == 0 || len(dst)%cs != 0 {
		return fmt.Errorf("%w: off %d len %d", ErrNotAligned, off, len(dst))
	}
	for at := 0; at < len(dst); at += cs {
		if err := m.reg.ReadChunkRaw(off/cs+at/cs, dst[at:at+cs]); err != nil {
			return err
		}
	}
	return nil
}

var _ Readable = (*RegionMemory)(nil)

// RegionVersions adapts a region's per-cacheline version words as an
// RDMA-readable source: reads must cover exactly one chunk's version
// vector (region.VersionsSize bytes — 512 B for the default geometry).
// This is the wire footprint of the node cache's revalidation reads; on
// hardware it corresponds to a gather of the version words, which the
// paper's register-once layout makes addressable like any other bytes.
type RegionVersions struct {
	host *Host
	reg  *region.Region
}

// RegisterRegionVersions registers the version view of reg on the host.
func (h *Host) RegisterRegionVersions(reg *region.Region) *RegionVersions {
	return &RegionVersions{host: h, reg: reg}
}

// Host returns the owning host.
func (m *RegionVersions) Host() *Host { return m.host }

// VersionsSize returns the bytes of one chunk's version vector.
func (m *RegionVersions) VersionsSize() int { return m.reg.VersionsSize() }

// VersionsOffset returns the offset of chunk id's version vector.
func (m *RegionVersions) VersionsOffset(id int) int { return id * m.reg.VersionsSize() }

// ReadAt implements Readable; the read must cover exactly one chunk's
// version vector.
func (m *RegionVersions) ReadAt(off int, dst []byte) error {
	vs := m.reg.VersionsSize()
	if off%vs != 0 || len(dst) != vs {
		return fmt.Errorf("%w: off %d len %d", ErrNotAligned, off, len(dst))
	}
	return m.reg.ReadVersions(off/vs, dst)
}

var _ Readable = (*RegionVersions)(nil)
