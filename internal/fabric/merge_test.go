package fabric

import (
	"errors"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
)

// mergeNet builds an IB network with a widened merge span and a region of
// nchunks 256-byte chunks registered on the server.
func mergeNet(t *testing.T, span, nchunks int) (*sim.Engine, *QP, *region.Region, *RegionMemory) {
	t.Helper()
	e := sim.New(1)
	prof := netmodel.InfiniBand100G
	prof.MergeSpan = span
	n := NewNetwork(e, prof)
	a := n.NewHost("client", sim.NewCPU(e, 4))
	b := n.NewHost("server", sim.NewCPU(e, 28))
	reg, err := region.New(nchunks, 256)
	if err != nil {
		t.Fatal(err)
	}
	rm := b.RegisterRegion(reg)
	qa, _ := n.ConnectQP(a, b, 0)
	return e, qa, reg, rm
}

func chunkReq(rm *RegionMemory, id int, tag uint64) ReadReq {
	return ReadReq{Src: rm, Off: rm.ChunkOffset(id), Size: rm.Region().ChunkSize(), Tag: tag}
}

// TestReadBatchMergesAdjacent folds three physically-adjacent chunk reads
// into one WQE and demuxes one per-tag completion per chunk, all delivered
// at the same instant (one wire transfer, one completion event).
func TestReadBatchMergesAdjacent(t *testing.T) {
	e, qa, reg, rm := mergeNet(t, 4, 8)
	for i := 0; i < 8; i++ {
		if err := reg.WriteChunk(i, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Spawn("client", func(p *sim.Proc) {
		reqs := []ReadReq{chunkReq(rm, 2, 10), chunkReq(rm, 3, 11), chunkReq(rm, 4, 12)}
		posted, wqes, err := qa.ReadBatch(p, reqs)
		if err != nil || posted != 3 {
			t.Errorf("posted=%d err=%v", posted, err)
			return
		}
		if wqes != 1 {
			t.Errorf("wqes = %d, want 1 merged WQE", wqes)
		}
		var at time.Duration
		seen := map[uint64]byte{}
		for i := 0; i < 3; i++ {
			c := qa.CQ().Pop(p)
			if c.Err != nil {
				t.Errorf("completion err: %v", c.Err)
				return
			}
			if i == 0 {
				at = p.Now()
			} else if p.Now() != at {
				t.Errorf("completion %d at %v, want all at %v", i, p.Now(), at)
			}
			payload, _, err := region.DecodeChunk(c.Data, nil)
			if err != nil {
				t.Errorf("tag %d decode: %v", c.Tag, err)
				return
			}
			seen[c.Tag] = payload[0]
		}
		for tag, want := range map[uint64]byte{10: 'c', 11: 'd', 12: 'e'} {
			if seen[tag] != want {
				t.Errorf("tag %d payload = %q, want %q", tag, seen[tag], want)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestReadBatchSpanOneBaseline: with merging disabled every request is its
// own WQE — the pre-merge read path, bit for bit.
func TestReadBatchSpanOneBaseline(t *testing.T) {
	for _, span := range []int{0, 1} {
		e, qa, reg, rm := mergeNet(t, span, 8)
		if err := reg.WriteChunk(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		e.Spawn("client", func(p *sim.Proc) {
			reqs := []ReadReq{chunkReq(rm, 0, 1), chunkReq(rm, 1, 2), chunkReq(rm, 2, 3)}
			posted, wqes, err := qa.ReadBatch(p, reqs)
			if err != nil || posted != 3 {
				t.Errorf("span=%d posted=%d err=%v", span, posted, err)
				return
			}
			if wqes != 3 {
				t.Errorf("span=%d wqes = %d, want 3", span, wqes)
			}
			for i := 0; i < 3; i++ {
				qa.CQ().Pop(p)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadBatchNonAdjacentNotMerged: a gap between chunks splits the run.
func TestReadBatchNonAdjacentNotMerged(t *testing.T) {
	e, qa, _, rm := mergeNet(t, 8, 8)
	e.Spawn("client", func(p *sim.Proc) {
		reqs := []ReadReq{chunkReq(rm, 0, 1), chunkReq(rm, 2, 2), chunkReq(rm, 3, 3)}
		posted, wqes, err := qa.ReadBatch(p, reqs)
		if err != nil || posted != 3 {
			t.Errorf("posted=%d err=%v", posted, err)
			return
		}
		if wqes != 2 { // {0} and {2,3}
			t.Errorf("wqes = %d, want 2", wqes)
		}
		for i := 0; i < 3; i++ {
			qa.CQ().Pop(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestReadBatchPartialPostPrefix: when a request in the middle of a batch
// fails to post, ReadBatch reports the posted prefix and no completion for
// the unposted remainder ever arrives — the contract the client's cleanup
// path (fail-between-issue-and-flush) depends on.
func TestReadBatchPartialPostPrefix(t *testing.T) {
	e := sim.New(1)
	prof := netmodel.InfiniBand100G
	prof.MergeSpan = 4
	n := NewNetwork(e, prof)
	a := n.NewHost("client", sim.NewCPU(e, 4))
	b := n.NewHost("server", sim.NewCPU(e, 28))
	regB, err := region.New(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := regB.WriteChunk(0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	regA, err := region.New(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	rmB := b.RegisterRegion(regB)
	rmA := a.RegisterRegion(regA) // wrong host: posting to it must fail
	qa, _ := n.ConnectQP(a, b, 0)
	e.Spawn("client", func(p *sim.Proc) {
		reqs := []ReadReq{chunkReq(rmB, 0, 1), chunkReq(rmA, 0, 2)}
		posted, wqes, err := qa.ReadBatch(p, reqs)
		if !errors.Is(err, ErrWrongHost) {
			t.Errorf("err = %v, want ErrWrongHost", err)
		}
		if posted != 1 || wqes != 1 {
			t.Errorf("posted=%d wqes=%d, want 1/1", posted, wqes)
		}
		c := qa.CQ().Pop(p)
		if c.Tag != 1 || c.Err != nil {
			t.Errorf("completion = %+v, want tag 1", c)
		}
		// The CQ must hold nothing for the unposted request: a later
		// synchronous read would otherwise pop the stray first.
		raw, err := qa.ReadSync(p, rmB, rmB.ChunkOffset(0), regB.ChunkSize())
		if err != nil {
			t.Error(err)
			return
		}
		if payload, _, err := region.DecodeChunk(raw, nil); err != nil || string(payload[:2]) != "ok" {
			t.Errorf("stray completion corrupted later sync read: %q %v", payload[:2], err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMergedReadPastRegionEnd: a merged span reaching past the region's
// last chunk fails the whole transfer with per-tag error completions (the
// client never issues such spans; the fabric must still stay sane).
func TestMergedReadPastRegionEnd(t *testing.T) {
	e, qa, reg, rm := mergeNet(t, 4, 4)
	if err := reg.WriteChunk(3, []byte("last")); err != nil {
		t.Fatal(err)
	}
	e.Spawn("client", func(p *sim.Proc) {
		cs := reg.ChunkSize()
		reqs := []ReadReq{
			chunkReq(rm, 3, 7),
			{Src: rm, Off: 4 * cs, Size: cs, Tag: 8}, // one past the end
		}
		posted, wqes, err := qa.ReadBatch(p, reqs)
		if err != nil || posted != 2 || wqes != 1 {
			t.Errorf("posted=%d wqes=%d err=%v", posted, wqes, err)
			return
		}
		for i := 0; i < 2; i++ {
			if c := qa.CQ().Pop(p); c.Err == nil {
				t.Errorf("tag %d: expected error completion for out-of-range span", c.Tag)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMergedReadTornChunkIsolated: each chunk of a merged span snapshots
// independently, so a write racing one chunk tears only that chunk's image
// — the others decode cleanly and only the torn one needs re-reading.
func TestMergedReadTornChunkIsolated(t *testing.T) {
	e, qa, reg, rm := mergeNet(t, 4, 4)
	for i := 0; i < 3; i++ {
		if err := reg.WriteChunk(i, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Spawn("server-writer", func(p *sim.Proc) {
		w, err := reg.BeginWrite(1, []byte("B"))
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(100 * time.Microsecond) // hold chunk 1 torn across the read
		w.Finish()
	})
	e.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // land inside the window
		reqs := []ReadReq{chunkReq(rm, 0, 1), chunkReq(rm, 1, 2), chunkReq(rm, 2, 3)}
		posted, wqes, err := qa.ReadBatch(p, reqs)
		if err != nil || posted != 3 || wqes != 1 {
			t.Errorf("posted=%d wqes=%d err=%v", posted, wqes, err)
			return
		}
		torn := 0
		for i := 0; i < 3; i++ {
			c := qa.CQ().Pop(p)
			if c.Err != nil {
				t.Errorf("tag %d: %v", c.Tag, c.Err)
				return
			}
			_, _, derr := region.DecodeChunk(c.Data, nil)
			switch c.Tag {
			case 2:
				if errors.Is(derr, region.ErrTornRead) {
					torn++
				} else if derr != nil {
					t.Errorf("tag 2: %v", derr)
				}
			default:
				if derr != nil {
					t.Errorf("tag %d decoded torn, want clean: %v", c.Tag, derr)
				}
			}
		}
		if torn != 1 {
			t.Errorf("torn chunks = %d, want exactly the racing one", torn)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
