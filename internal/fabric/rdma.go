package fabric

import (
	"fmt"
	"sync"
	"time"

	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/sim"
)

// capturePool recycles the buffers Write snapshots its payload into. A
// capture lives only from post to the modelled delivery instant, so the
// pool keeps the fast-messaging hot path free of per-message allocations.
var capturePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Op is the kind of a completion-queue entry.
type Op int

// Completion kinds.
const (
	// OpWriteImm is delivered to the responder when an RDMA Write with
	// Immediate Data lands (the event-based fast-messaging wake-up).
	OpWriteImm Op = iota + 1
	// OpWriteDone is delivered to the requester when a signaled RDMA Write
	// completes.
	OpWriteDone
	// OpReadDone is delivered to the requester when an RDMA Read returns.
	OpReadDone
)

// Completion is one completion-queue entry.
type Completion struct {
	QP   *QP
	Op   Op
	Imm  uint64 // immediate data (OpWriteImm)
	Tag  uint64 // requester-chosen identifier (OpReadDone, OpWriteDone)
	Data []byte // fetched bytes (OpReadDone)
	Len  int    // payload length
	Err  error  // non-nil when the access failed validation
}

// QP is one endpoint of an RDMA reliable connection. Completions for
// operations this endpoint initiates — and for incoming writes with
// immediate data — appear in its completion queue, which doubles as the
// event channel: a process blocked on CQ().Pop is exactly a thread waiting
// on an ibv event channel, consuming no CPU.
type QP struct {
	net    *Network
	local  *Host
	remote *Host
	peer   *QP
	cq     *sim.Queue[Completion]
	sq     *sim.Resource
}

// DefaultSQDepth is the default send-queue depth (outstanding verbs per QP).
const DefaultSQDepth = 64

// ConnectQP establishes a reliable connection between two hosts and returns
// the two endpoints. sqDepth bounds outstanding operations per endpoint
// (0 selects DefaultSQDepth).
func (n *Network) ConnectQP(a, b *Host, sqDepth int) (*QP, *QP) {
	if sqDepth <= 0 {
		sqDepth = DefaultSQDepth
	}
	qa := &QP{net: n, local: a, remote: b, cq: sim.NewQueue[Completion](n.e), sq: sim.NewResource(n.e, sqDepth)}
	qb := &QP{net: n, local: b, remote: a, cq: sim.NewQueue[Completion](n.e), sq: sim.NewResource(n.e, sqDepth)}
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// CQ returns the endpoint's completion queue / event channel.
func (qp *QP) CQ() *sim.Queue[Completion] { return qp.cq }

// Profile returns the profile of the fabric this endpoint belongs to.
func (qp *QP) Profile() netmodel.Profile { return qp.net.prof }

// Peer returns the other endpoint of the connection.
func (qp *QP) Peer() *QP { return qp.peer }

// Local returns the local host.
func (qp *QP) Local() *Host { return qp.local }

// Remote returns the remote host.
func (qp *QP) Remote() *Host { return qp.remote }

// WriteOpts control an RDMA Write.
type WriteOpts struct {
	// Imm, when Notify is set, is delivered to the responder's CQ with the
	// write (RDMA Write with Immediate Data).
	Imm uint64
	// Notify selects Write-with-IMM: the responder's NIC raises a
	// completion event, waking a thread blocked on its CQ.
	Notify bool
	// Signaled requests a local OpWriteDone completion with Tag.
	Signaled bool
	Tag      uint64
}

// Write posts an RDMA Write of data into mem at offset off. It blocks only
// while the send queue is full (p is the posting process). The copy into
// remote memory happens at the modelled delivery instant; data is captured
// at post time, so the caller may reuse its buffer immediately.
func (qp *QP) Write(p *sim.Proc, mem *Memory, off int, data []byte, opts WriteOpts) error {
	if mem.host != qp.remote {
		return ErrWrongHost
	}
	if off < 0 || off+len(data) > len(mem.buf) {
		return fmt.Errorf("%w: write [%d, %d) of %d", ErrBounds, off, off+len(data), len(mem.buf))
	}
	qp.sq.Acquire(p, 1)
	cb := capturePool.Get().(*[]byte)
	captured := append((*cb)[:0], data...)
	size := len(captured)
	deliver := qp.net.deliver(qp.local, qp.remote, size, false)
	n := qp.net
	n.e.After(deliver-n.e.Now(), func() {
		copy(mem.buf[off:], captured)
		*cb = captured[:0]
		capturePool.Put(cb)
		if opts.Notify {
			qp.peer.cq.Push(Completion{QP: qp.peer, Op: OpWriteImm, Imm: opts.Imm, Len: size})
		}
		if opts.Signaled {
			qp.cq.Push(Completion{QP: qp, Op: OpWriteDone, Tag: opts.Tag, Len: size})
		}
		qp.sq.Release(1)
	})
	return nil
}

// readCtrlBytes is the wire size of an RDMA Read request message.
const readCtrlBytes = 28

// Read posts an RDMA Read of size bytes at offset off of src, owned by the
// remote host. The remote CPU is not involved: the data snapshot is taken by
// the remote NIC at the instant the request arrives there. The completion —
// with the fetched bytes — lands in this endpoint's CQ carrying tag.
func (qp *QP) Read(p *sim.Proc, src Readable, off, size int, tag uint64) error {
	return qp.readPost(p, src, off, size, tag, qp.net.prof.NICOverhead)
}

// readPost is Read with an explicit posting-side overhead (see ReadBatch).
func (qp *QP) readPost(p *sim.Proc, src Readable, off, size int, tag uint64, postOH time.Duration) error {
	if src.Host() != qp.remote {
		return ErrWrongHost
	}
	qp.sq.Acquire(p, 1)
	n := qp.net
	// Control leg: request travels requester -> responder.
	ctrlArrive := n.deliverPost(qp.local, qp.remote, readCtrlBytes, false, postOH)
	n.e.After(ctrlArrive-n.e.Now(), func() {
		// The responder NIC DMAs the data now; this is the linearization
		// point of the one-sided read.
		data := make([]byte, size)
		err := src.ReadAt(off, data)
		if err != nil {
			qp.cq.Push(Completion{QP: qp, Op: OpReadDone, Tag: tag, Err: err})
			qp.sq.Release(1)
			return
		}
		// Response data is served by the responder NIC's hardware read
		// engine, not the remote host's send engine (see Host.rdtx).
		dataArrive := n.deliverRead(qp.remote, qp.local, size)
		n.e.After(dataArrive-n.e.Now(), func() {
			qp.cq.Push(Completion{QP: qp, Op: OpReadDone, Tag: tag, Data: data, Len: size})
			qp.sq.Release(1)
		})
	})
	return nil
}

// ReadReq describes one read of a doorbell-batched submission.
type ReadReq struct {
	Src  Readable
	Off  int
	Size int
	Tag  uint64
}

// ReadBatch posts reqs as one doorbell-batched SQ submission (RDMAbox-style
// multi-WQE post): the first WQE pays the fabric's full per-message NIC
// setup cost, each later WQE only DoorbellPerWQE, while every read still
// pays its own wire (serialization + propagation) cost and full completion
// overhead. Completions arrive individually, tagged per request.
//
// When the profile's MergeSpan exceeds 1, a coalescing pass folds runs of
// consecutive requests that target physically-adjacent offsets of the same
// Readable into a single larger read: one WQE and one data transfer, whose
// arrival is demuxed into per-request completions on the requester side.
// Only requests adjacent in reqs merge — callers control merge opportunity
// by ordering the batch. With MergeSpan <= 1 — or with one request, or on
// a fabric whose DoorbellPerWQE is zero — ReadBatch is identical to
// posting each Read in order.
//
// It returns the number of requests actually posted (always a prefix of
// reqs) and the number of WQEs those posts consumed. On error the
// remaining requests were never posted and will produce no completions;
// callers tracking in-flight tags must drop the unposted suffix.
func (qp *QP) ReadBatch(p *sim.Proc, reqs []ReadReq) (posted, wqes int, err error) {
	span := qp.net.prof.MergeSpan
	for posted < len(reqs) {
		run := 1
		if span > 1 {
			for posted+run < len(reqs) && run < span {
				prev, next := reqs[posted+run-1], reqs[posted+run]
				if next.Src != prev.Src || next.Off != prev.Off+prev.Size {
					break
				}
				run++
			}
		}
		postOH := qp.net.prof.NICOverhead
		if wqes > 0 && qp.net.prof.DoorbellPerWQE > 0 {
			postOH = qp.net.prof.DoorbellPerWQE
		}
		if run == 1 {
			r := reqs[posted]
			err = qp.readPost(p, r.Src, r.Off, r.Size, r.Tag, postOH)
		} else {
			err = qp.readPostMerged(p, reqs[posted:posted+run], postOH)
		}
		if err != nil {
			return posted, wqes, err
		}
		posted += run
		wqes++
	}
	return posted, wqes, nil
}

// readPostMerged posts one RDMA Read covering every request of the
// contiguous run and, at the delivery instant, synthesizes one completion
// per original request, each carrying its slice of the fetched bytes. A
// validation failure (out of bounds, torn span read surface) fails every
// request in the run with per-request error completions.
func (qp *QP) readPostMerged(p *sim.Proc, run []ReadReq, postOH time.Duration) error {
	src := run[0].Src
	if src.Host() != qp.remote {
		return ErrWrongHost
	}
	// The run aliases the caller's batch buffer, which is reused as soon as
	// the post returns; capture the demux plan (offsets come implicitly from
	// the order).
	off := run[0].Off
	total := 0
	sizes := make([]int, len(run))
	tags := make([]uint64, len(run))
	for i, r := range run {
		sizes[i] = r.Size
		tags[i] = r.Tag
		total += r.Size
	}
	qp.sq.Acquire(p, 1)
	n := qp.net
	ctrlArrive := n.deliverPost(qp.local, qp.remote, readCtrlBytes, false, postOH)
	n.e.After(ctrlArrive-n.e.Now(), func() {
		data := make([]byte, total)
		if err := src.ReadAt(off, data); err != nil {
			for _, tag := range tags {
				qp.cq.Push(Completion{QP: qp, Op: OpReadDone, Tag: tag, Err: err})
			}
			qp.sq.Release(1)
			return
		}
		dataArrive := n.deliverRead(qp.remote, qp.local, total)
		n.e.After(dataArrive-n.e.Now(), func() {
			at := 0
			for i, tag := range tags {
				qp.cq.Push(Completion{QP: qp, Op: OpReadDone, Tag: tag,
					Data: data[at : at+sizes[i]], Len: sizes[i]})
				at += sizes[i]
			}
			qp.sq.Release(1)
		})
	})
	return nil
}

// ReadSync posts a Read and blocks until its completion arrives, consuming
// it from the CQ. It must not be mixed with concurrent CQ consumers on the
// same endpoint; multi-issue traversal uses Read plus explicit CQ draining
// instead.
func (qp *QP) ReadSync(p *sim.Proc, src Readable, off, size int) ([]byte, error) {
	if err := qp.Read(p, src, off, size, 0); err != nil {
		return nil, err
	}
	c := qp.cq.Pop(p)
	if c.Op != OpReadDone {
		return nil, fmt.Errorf("fabric: unexpected completion %d on ReadSync endpoint", c.Op)
	}
	return c.Data, c.Err
}
