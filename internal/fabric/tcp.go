package fabric

import (
	"github.com/catfish-db/catfish/internal/sim"
)

// TCPConn is one endpoint of a simulated kernel-TCP connection carrying
// length-delimited messages (the unit the R-tree baselines exchange).
//
// Unlike the RDMA verbs, every message charges the kernel network stack on
// both endpoints: the sender blocks for its kernel CPU share (the syscall
// path), and delivery to the receiving application is gated on the
// receiver's kernel CPU — which is how the TCP baselines burn server CPU in
// the paper's Figure 2 even though the R-tree work itself is unchanged.
type TCPConn struct {
	net    *Network
	local  *Host
	remote *Host
	peer   *TCPConn
	inbox  *sim.Queue[[]byte]
	closed bool
}

// DialTCP establishes a connection between two hosts and returns the two
// endpoints (client side first).
func (n *Network) DialTCP(client, server *Host) (*TCPConn, *TCPConn) {
	c := &TCPConn{net: n, local: client, remote: server, inbox: sim.NewQueue[[]byte](n.e)}
	s := &TCPConn{net: n, local: server, remote: client, inbox: sim.NewQueue[[]byte](n.e)}
	c.peer, s.peer = s, c
	return c, s
}

// Local returns the endpoint's host.
func (c *TCPConn) Local() *Host { return c.local }

// Send transmits data to the peer endpoint. The posting process blocks for
// the sender-side kernel CPU demand; wire transfer and receiver-side kernel
// processing proceed asynchronously, after which the message appears in the
// peer's inbox. The caller may reuse data immediately.
func (c *TCPConn) Send(p *sim.Proc, data []byte) {
	n := c.net
	if c.local.cpu != nil {
		c.local.cpu.Run(p, n.kernelDemand(len(data)))
	}
	captured := append([]byte(nil), data...)
	deliver := n.deliver(c.local, c.remote, len(captured), true)
	peer := c.peer
	n.e.After(deliver-n.e.Now(), func() {
		if peer.local.cpu == nil {
			peer.inbox.Push(captured)
			return
		}
		// Receiver-side kernel processing (softirq + copy) gates delivery
		// to the application and competes with request processing.
		peer.local.cpu.Submit(n.kernelDemand(len(captured))).Then(func(struct{}) {
			peer.inbox.Push(captured)
		})
	})
}

// Recv blocks until a message arrives and returns it.
func (c *TCPConn) Recv(p *sim.Proc) []byte {
	return c.inbox.Pop(p)
}

// TryRecv returns a pending message without blocking.
func (c *TCPConn) TryRecv() ([]byte, bool) {
	return c.inbox.TryPop()
}

// Pending returns the number of delivered-but-unread messages.
func (c *TCPConn) Pending() int { return c.inbox.Len() }
