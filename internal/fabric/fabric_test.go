package fabric

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
)

// testNet builds an IB network with two hosts on a fresh engine.
func testNet(t testing.TB) (*sim.Engine, *Network, *Host, *Host) {
	t.Helper()
	e := sim.New(1)
	n := NewNetwork(e, netmodel.InfiniBand100G)
	a := n.NewHost("client", sim.NewCPU(e, 4))
	b := n.NewHost("server", sim.NewCPU(e, 28))
	return e, n, a, b
}

func TestRDMAWriteDeliversBytes(t *testing.T) {
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(1024)
	qa, _ := n.ConnectQP(a, b, 0)
	var wrote time.Duration
	e.Spawn("writer", func(p *sim.Proc) {
		if err := qa.Write(p, mem, 100, []byte("hello"), WriteOpts{}); err != nil {
			t.Error(err)
		}
		wrote = p.Now()
		// Data must not be visible instantly.
		if bytes.Contains(mem.Bytes(), []byte("hello")) {
			t.Error("write visible before delivery")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wrote != 0 {
		t.Errorf("posting blocked until %v", wrote)
	}
	if string(mem.Bytes()[100:105]) != "hello" {
		t.Error("payload not delivered")
	}
}

func TestRDMAWriteImmWakesResponder(t *testing.T) {
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(256)
	qa, qb := n.ConnectQP(a, b, 0)
	var gotImm uint64
	var wakeAt time.Duration
	e.Spawn("server", func(p *sim.Proc) {
		c := qb.CQ().Pop(p)
		if c.Op != OpWriteImm {
			t.Errorf("op = %v", c.Op)
		}
		gotImm = c.Imm
		wakeAt = p.Now()
	})
	e.Spawn("client", func(p *sim.Proc) {
		if err := qa.Write(p, mem, 0, []byte("msg"), WriteOpts{Imm: 42, Notify: true}); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotImm != 42 {
		t.Errorf("imm = %d", gotImm)
	}
	// One-way small-message latency on IB should be a few microseconds.
	if wakeAt < time.Microsecond || wakeAt > 10*time.Microsecond {
		t.Errorf("one-way latency = %v, want ~2µs", wakeAt)
	}
}

func TestRDMAWriteSignaled(t *testing.T) {
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(64)
	qa, _ := n.ConnectQP(a, b, 0)
	var done bool
	e.Spawn("client", func(p *sim.Proc) {
		if err := qa.Write(p, mem, 0, []byte("x"), WriteOpts{Signaled: true, Tag: 7}); err != nil {
			t.Error(err)
		}
		c := qa.CQ().Pop(p)
		if c.Op != OpWriteDone || c.Tag != 7 {
			t.Errorf("completion = %+v", c)
		}
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("no local completion")
	}
}

func TestRDMAWriteValidation(t *testing.T) {
	e, n, a, b := testNet(t)
	memB := b.RegisterMemory(64)
	memA := a.RegisterMemory(64)
	qa, _ := n.ConnectQP(a, b, 0)
	e.Spawn("client", func(p *sim.Proc) {
		if err := qa.Write(p, memA, 0, []byte("x"), WriteOpts{}); !errors.Is(err, ErrWrongHost) {
			t.Errorf("wrong-host err = %v", err)
		}
		if err := qa.Write(p, memB, 60, []byte("xxxxx"), WriteOpts{}); !errors.Is(err, ErrBounds) {
			t.Errorf("bounds err = %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRDMAReadRoundTrip(t *testing.T) {
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(4096)
	copy(mem.Bytes()[512:], "remote-data")
	qa, _ := n.ConnectQP(a, b, 0)
	var rtt time.Duration
	e.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		data, err := qa.ReadSync(p, mem, 512, 11)
		if err != nil {
			t.Error(err)
			return
		}
		rtt = p.Now() - start
		if string(data) != "remote-data" {
			t.Errorf("data = %q", data)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Read needs a full round trip: more than a write's one-way, under 20µs.
	if rtt < 2*time.Microsecond || rtt > 20*time.Microsecond {
		t.Errorf("read RTT = %v", rtt)
	}
}

func TestRDMAReadSeesWriteOrdering(t *testing.T) {
	// A read posted after a local write completes at the remote must
	// observe the written data (the snapshot happens at the remote NIC).
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(64)
	qa, _ := n.ConnectQP(a, b, 0)
	e.Spawn("client", func(p *sim.Proc) {
		if err := qa.Write(p, mem, 0, []byte("v1"), WriteOpts{Signaled: true}); err != nil {
			t.Error(err)
		}
		c := qa.CQ().Pop(p)
		if c.Op != OpWriteDone {
			t.Fatalf("unexpected completion %+v", c)
		}
		data, err := qa.ReadSync(p, mem, 0, 2)
		if err != nil {
			t.Error(err)
		}
		if string(data) != "v1" {
			t.Errorf("read %q after write completion", data)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRDMAReadRegionChunk(t *testing.T) {
	e, n, a, b := testNet(t)
	reg, err := region.New(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteChunk(3, []byte("chunk3")); err != nil {
		t.Fatal(err)
	}
	rm := b.RegisterRegion(reg)
	qa, _ := n.ConnectQP(a, b, 0)
	e.Spawn("client", func(p *sim.Proc) {
		raw, err := qa.ReadSync(p, rm, rm.ChunkOffset(3), reg.ChunkSize())
		if err != nil {
			t.Error(err)
			return
		}
		payload, _, err := region.DecodeChunk(raw, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if string(payload[:6]) != "chunk3" {
			t.Errorf("payload = %q", payload[:6])
		}
		// Unaligned read is rejected.
		if _, err := qa.ReadSync(p, rm, 13, 100); err == nil {
			t.Error("unaligned region read should fail")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRDMAReadTornChunkRetry(t *testing.T) {
	// A read landing inside a staged write window observes mixed versions;
	// the client retries and then succeeds — the paper's §III-B protocol.
	e, n, a, b := testNet(t)
	reg, err := region.New(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteChunk(0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	rm := b.RegisterRegion(reg)
	qa, _ := n.ConnectQP(a, b, 0)
	retries := 0
	e.Spawn("server-writer", func(p *sim.Proc) {
		w, err := reg.BeginWrite(0, []byte("new"))
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Microsecond) // hold the torn window open
		w.Finish()
	})
	e.Spawn("client", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // land inside the window
		for {
			raw, err := qa.ReadSync(p, rm, 0, reg.ChunkSize())
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := region.DecodeChunk(raw, nil); err != nil {
				if !errors.Is(err, region.ErrTornRead) {
					t.Error(err)
					return
				}
				retries++
				p.Sleep(10 * time.Microsecond)
				continue
			}
			return
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Error("expected at least one torn-read retry")
	}
}

func TestSQDepthBoundsOutstanding(t *testing.T) {
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(8192)
	qa, _ := n.ConnectQP(a, b, 2)
	var postTimes []time.Duration
	e.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := qa.Write(p, mem, i*16, bytes.Repeat([]byte{1}, 16), WriteOpts{}); err != nil {
				t.Error(err)
			}
			postTimes = append(postTimes, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if postTimes[1] != 0 {
		t.Errorf("second post should not block, got %v", postTimes[1])
	}
	if postTimes[2] == 0 {
		t.Error("third post should block on SQ depth 2")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// Two 1 MB writes from one host serialize on its TX pipe: the second
	// delivery is ~80µs after the first on 100 Gbps.
	e, n, a, b := testNet(t)
	mem := b.RegisterMemory(2 << 20)
	qa, qb := n.ConnectQP(a, b, 0)
	_ = qb
	const mb = 1 << 20
	var deliveries []time.Duration
	e.Spawn("watcher", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			c := qa.CQ().Pop(p)
			if c.Op != OpWriteDone {
				t.Errorf("op %v", c.Op)
			}
			deliveries = append(deliveries, p.Now())
		}
	})
	e.Spawn("client", func(p *sim.Proc) {
		buf := make([]byte, mb)
		for i := 0; i < 2; i++ {
			if err := qa.Write(p, mem, i*mb, buf, WriteOpts{Signaled: true}); err != nil {
				t.Error(err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	gap := deliveries[1] - deliveries[0]
	mbF := float64(mb)
	txTime := time.Duration(mbF * 8 / 100e9 * float64(time.Second)) // ~84µs
	if gap < txTime*9/10 || gap > txTime*11/10 {
		t.Errorf("serialization gap = %v, want ~%v", gap, txTime)
	}
	if b.RXBytes() < 2*mb {
		t.Errorf("server RX bytes = %d", b.RXBytes())
	}
}

func TestTCPRoundTripLatencyAndKernelCPU(t *testing.T) {
	e := sim.New(1)
	n := NewNetwork(e, netmodel.Ethernet1G)
	clientCPU := sim.NewCPU(e, 4)
	serverCPU := sim.NewCPU(e, 28)
	a := n.NewHost("client", clientCPU)
	b := n.NewHost("server", serverCPU)
	cEnd, sEnd := n.DialTCP(a, b)
	var rtt time.Duration
	e.Spawn("server", func(p *sim.Proc) {
		msg := sEnd.Recv(p)
		sEnd.Send(p, msg)
	})
	e.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		cEnd.Send(p, []byte("ping"))
		resp := cEnd.Recv(p)
		rtt = p.Now() - start
		if string(resp) != "ping" {
			t.Errorf("resp = %q", resp)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Kernel TCP on 1G: tens of microseconds per direction.
	if rtt < 80*time.Microsecond || rtt > 400*time.Microsecond {
		t.Errorf("TCP RTT = %v, want ~100-200µs", rtt)
	}
	if serverCPU.UtilizationTotal() == 0 {
		t.Error("server kernel CPU was never charged")
	}
}

func TestTCPNilCPUSkipsKernelCharge(t *testing.T) {
	e := sim.New(1)
	n := NewNetwork(e, netmodel.Ethernet40G)
	a := n.NewHost("a", nil)
	b := n.NewHost("b", nil)
	cEnd, sEnd := n.DialTCP(a, b)
	var got []byte
	e.Spawn("recv", func(p *sim.Proc) { got = sEnd.Recv(p) })
	e.Spawn("send", func(p *sim.Proc) { cEnd.Send(p, []byte("ok")) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestTCPTryRecvAndPending(t *testing.T) {
	e := sim.New(1)
	n := NewNetwork(e, netmodel.Ethernet40G)
	a := n.NewHost("a", nil)
	b := n.NewHost("b", nil)
	cEnd, sEnd := n.DialTCP(a, b)
	e.Spawn("send", func(p *sim.Proc) {
		if _, ok := sEnd.TryRecv(); ok {
			t.Error("TryRecv on empty inbox")
		}
		cEnd.Send(p, []byte("m1"))
		cEnd.Send(p, []byte("m2"))
		p.Sleep(time.Millisecond)
		if sEnd.Pending() != 2 {
			t.Errorf("pending = %d", sEnd.Pending())
		}
		m, ok := sEnd.TryRecv()
		if !ok || string(m) != "m1" {
			t.Errorf("TryRecv = %q, %v", m, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesSanity(t *testing.T) {
	for _, p := range []netmodel.Profile{netmodel.Ethernet1G, netmodel.Ethernet40G, netmodel.InfiniBand100G} {
		if p.BandwidthBps <= 0 || p.Name == "" {
			t.Errorf("profile %+v invalid", p)
		}
		if p.RDMA && p.KernelCPUPerMsg != 0 {
			t.Errorf("RDMA profile %s has kernel costs", p.Name)
		}
		if !p.RDMA && p.KernelCPUPerMsg == 0 {
			t.Errorf("TCP profile %s missing kernel costs", p.Name)
		}
	}
}

func TestCostModelMonotone(t *testing.T) {
	cm := netmodel.DefaultCostModel()
	if cm.SearchDemand(10, 5) <= cm.SearchDemand(5, 5) {
		t.Error("search demand not monotone in nodes")
	}
	if cm.SearchDemand(5, 100) <= cm.SearchDemand(5, 0) {
		t.Error("search demand not monotone in results")
	}
	if cm.InsertDemand(5, 3) <= cm.InsertDemand(5, 0) {
		t.Error("insert demand not monotone in writes")
	}
	if cm.ClientTraversalDemand(10) <= 0 {
		t.Error("client demand must be positive")
	}
}
