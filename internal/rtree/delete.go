package rtree

import (
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
)

// Search visits every stored item whose rectangle intersects q, invoking fn
// for each. fn returning false stops the traversal early. Search follows
// every qualifying path, as R-tree search must (the paper's Fig 3a shows two
// paths for one query).
func (t *Tree) Search(q geo.Rect, fn func(r geo.Rect, ref uint64) bool) (OpStats, error) {
	if !q.Valid() {
		return OpStats{}, ErrInvalidRect
	}
	t.stats = OpStats{}
	stack := []int{t.rootChunk}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.readNode(id)
		if err != nil {
			return t.stats, err
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					t.stats.Results++
					if fn != nil && !fn(e.Rect, e.Ref) {
						return t.stats, nil
					}
				}
			}
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, int(e.Ref))
			}
		}
	}
	return t.stats, nil
}

// ErrNeedCache is returned by SearchShared when the node cache is disabled.
var ErrNeedCache = errors.New("rtree: SearchShared requires the node cache")

// SearchShared is a Search variant safe for concurrent use by multiple
// readers, provided no writer runs concurrently (callers hold a shared
// latch, as the rpcnet server does). It touches no Tree scratch state: node
// images come from the write-through cache, whose slots only writers
// mutate, so concurrent shared readers never race.
func (t *Tree) SearchShared(q geo.Rect, fn func(r geo.Rect, ref uint64) bool) (OpStats, error) {
	var st OpStats
	if !q.Valid() {
		return st, ErrInvalidRect
	}
	if t.cache == nil {
		return st, ErrNeedCache
	}
	stack := []int{t.rootChunk}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.cache[id]
		if n == nil {
			return st, fmt.Errorf("rtree: chunk %d missing from cache", id)
		}
		st.NodesRead++
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					st.Results++
					if fn != nil && !fn(e.Rect, e.Ref) {
						return st, nil
					}
				}
			}
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, int(e.Ref))
			}
		}
	}
	return st, nil
}

// SearchCollect returns all items intersecting q.
func (t *Tree) SearchCollect(q geo.Rect) ([]Entry, OpStats, error) {
	var out []Entry
	st, err := t.Search(q, func(r geo.Rect, ref uint64) bool {
		out = append(out, Entry{Rect: r, Ref: ref})
		return true
	})
	return out, st, err
}

// Delete removes one entry exactly matching (r, ref). It returns false when
// no such entry exists. Underflowing nodes are condensed: the node is
// removed and its entries re-inserted at their level, per Guttman's
// CondenseTree, with R* handling of any overflows that re-insertion causes.
func (t *Tree) Delete(r geo.Rect, ref uint64) (bool, OpStats, error) {
	if !r.Valid() {
		return false, OpStats{}, ErrInvalidRect
	}
	t.stats = OpStats{}
	p, entryIdx, err := t.findLeaf(r, ref)
	if err != nil {
		return false, t.stats, err
	}
	if p == nil {
		return false, t.stats, nil
	}
	d := p.depth() - 1
	leaf := p.nodes[d]
	leaf.Entries = append(leaf.Entries[:entryIdx], leaf.Entries[entryIdx+1:]...)
	t.size--

	var orphans []orphan
	if err := t.condense(p, d, &orphans); err != nil {
		return true, t.stats, err
	}
	// Re-insert orphaned entries, deepest level first so internal entries
	// land before the leaves they might have covered.
	for i := len(orphans) - 1; i >= 0; i-- {
		clear(t.reinsertedAt)
		if err := t.insertEntry(orphans[i].e, orphans[i].level); err != nil {
			return true, t.stats, err
		}
	}
	if err := t.shrinkRoot(); err != nil {
		return true, t.stats, err
	}
	return true, t.stats, nil
}

type orphan struct {
	e     Entry
	level int
}

// findLeaf locates the leaf containing the exact entry (r, ref), returning
// the root-to-leaf path and the entry index, or a nil path when absent.
func (t *Tree) findLeaf(r geo.Rect, ref uint64) (*path, int, error) {
	p := &path{}
	return t.findLeafFrom(p, t.rootChunk, r, ref)
}

func (t *Tree) findLeafFrom(p *path, id int, r geo.Rect, ref uint64) (*path, int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, err
	}
	p.ids = append(p.ids, id)
	p.nodes = append(p.nodes, n)
	if n.IsLeaf() {
		for i, e := range n.Entries {
			if e.Ref == ref && e.Rect.Equal(r) {
				return p, i, nil
			}
		}
	} else {
		for i, e := range n.Entries {
			if !e.Rect.Contains(r) {
				continue
			}
			p.child = append(p.child, i)
			found, idx, err := t.findLeafFrom(p, int(e.Ref), r, ref)
			if err != nil {
				return nil, 0, err
			}
			if found != nil {
				return found, idx, nil
			}
			p.child = p.child[:len(p.child)-1]
		}
	}
	p.ids = p.ids[:len(p.ids)-1]
	p.nodes = p.nodes[:len(p.nodes)-1]
	return nil, 0, nil
}

// condense walks from the modified node at depth d to the root: underfull
// non-root nodes are removed (their entries orphaned, their chunks freed),
// other nodes are republished and their ancestors' MBRs refreshed.
func (t *Tree) condense(p *path, d int, orphans *[]orphan) error {
	for i := d; i > 0; i-- {
		n := p.nodes[i]
		parent := p.nodes[i-1]
		if len(n.Entries) < t.minEntries {
			for _, e := range n.Entries {
				*orphans = append(*orphans, orphan{e: e, level: n.Level})
			}
			childIdx := p.child[i-1]
			parent.Entries = append(parent.Entries[:childIdx], parent.Entries[childIdx+1:]...)
			if err := t.freeChunk(p.ids[i]); err != nil {
				return fmt.Errorf("rtree: condense free: %w", err)
			}
			continue
		}
		if err := t.writeNode(p.ids[i], n); err != nil {
			return err
		}
		// Refresh this node's rectangle in its parent.
		parent.Entries[p.child[i-1]].Rect = n.MBR()
	}
	return t.writeNode(p.ids[0], p.nodes[0])
}

// shrinkRoot collapses the tree while the root is an internal node with a
// single child: the child's content moves into the stable root chunk.
func (t *Tree) shrinkRoot() error {
	for {
		root, err := t.readNode(t.rootChunk)
		if err != nil {
			return err
		}
		if root.IsLeaf() || len(root.Entries) != 1 {
			return nil
		}
		childID := int(root.Entries[0].Ref)
		child, err := t.readNode(childID)
		if err != nil {
			return err
		}
		if err := t.writeNode(t.rootChunk, child); err != nil {
			return err
		}
		if err := t.freeChunk(childID); err != nil {
			return fmt.Errorf("rtree: shrink free: %w", err)
		}
		t.height--
	}
}

// freeChunk releases a chunk back to the region and drops its cache slot.
func (t *Tree) freeChunk(id int) error {
	if t.cache != nil {
		t.cache[id] = nil
	}
	return t.reg.Free(id)
}
