package rtree

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestBulkLoadSmall(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	items := []Entry{
		{Rect: geo.NewRect(0.1, 0.1, 0.2, 0.2), Ref: 1},
		{Rect: geo.NewRect(0.6, 0.6, 0.7, 0.7), Ref: 2},
	}
	if err := tree.BulkLoad(items, 0); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 2 || tree.Height() != 1 {
		t.Errorf("Len=%d Height=%d", tree.Len(), tree.Height())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	got, _, err := tree.SearchCollect(geo.NewRect(0, 0, 0.3, 0.3))
	if err != nil || len(got) != 1 || got[0].Ref != 1 {
		t.Errorf("search = %v, %v", got, err)
	}
}

func TestBulkLoadEmptyItems(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	if err := tree.BulkLoad(nil, 0); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Error("empty bulk load should leave empty tree")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	if _, err := tree.Insert(geo.PointRect(0.5, 0.5), 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad([]Entry{{Rect: geo.PointRect(0.1, 0.1)}}, 0); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("err = %v, want ErrNotEmpty", err)
	}
}

func TestBulkLoadRejectsInvalid(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	bad := []Entry{{Rect: geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}}}
	if err := tree.BulkLoad(bad, 0); !errors.Is(err, ErrInvalidRect) {
		t.Errorf("err = %v, want ErrInvalidRect", err)
	}
	good := []Entry{{Rect: geo.PointRect(0.1, 0.1)}}
	if err := tree.BulkLoad(good, 1.5); err == nil {
		t.Error("fill factor > 1 should error")
	}
}

func TestBulkLoadLargeMatchesBruteForce(t *testing.T) {
	tree := newTestTree(t, 4096, 16)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	items := make([]Entry, n)
	oracle := &bruteForce{}
	for i := range items {
		r := uniformRect(rng, 0.01)
		items[i] = Entry{Rect: r, Ref: uint64(i)}
		oracle.insert(r, uint64(i))
	}
	if err := tree.BulkLoad(items, 0); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != n {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		q := uniformRect(rng, rng.Float64()*0.1)
		got, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, oracle.search(q)) {
			t.Fatalf("query %d results diverge", i)
		}
	}
	// The loaded tree must accept further inserts and deletes.
	for i := 0; i < 200; i++ {
		r := uniformRect(rng, 0.01)
		if _, err := tree.Insert(r, uint64(n+i)); err != nil {
			t.Fatal(err)
		}
		oracle.insert(r, uint64(n+i))
	}
	for i := 0; i < 100; i++ {
		e := oracle.entries[rng.Intn(len(oracle.entries))]
		ok, _, err := tree.Delete(e.Rect, e.Ref)
		if err != nil || !ok {
			t.Fatalf("delete after bulk load: %v %v", ok, err)
		}
		oracle.delete(e.Rect, e.Ref)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geo.NewRect(0.2, 0.2, 0.8, 0.8)
	got, _, _ := tree.SearchCollect(q)
	if !sameResults(got, oracle.search(q)) {
		t.Fatal("post-mutation search diverges")
	}
}

func TestBulkLoadFillFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := make([]Entry, 5000)
	for i := range items {
		items[i] = Entry{Rect: uniformRect(rng, 0.01), Ref: uint64(i)}
	}
	for _, ff := range []float64{0.5, 0.7, 0.9, 1.0} {
		tree := newTestTree(t, 2048, 16)
		local := append([]Entry(nil), items...)
		if err := tree.BulkLoad(local, ff); err != nil {
			t.Fatalf("ff=%v: %v", ff, err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("ff=%v: %v", ff, err)
		}
	}
}

func TestBulkLoadDisabledCacheCoherent(t *testing.T) {
	reg := mustNewRegion(t, 2048)
	tree, err := New(reg, Config{MaxEntries: 16, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	items := make([]Entry, 3000)
	for i := range items {
		items[i] = Entry{Rect: uniformRect(rng, 0.02), Ref: uint64(i)}
	}
	if err := tree.BulkLoad(items, 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.02), uint64(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Entry, 100000)
	for i := range items {
		items[i] = Entry{Rect: uniformRect(rng, 0.0001), Ref: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := newTestTree(b, 8192, 0)
		local := append([]Entry(nil), items...)
		if err := tree.BulkLoad(local, 0); err != nil {
			b.Fatal(err)
		}
	}
}
