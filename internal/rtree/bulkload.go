package rtree

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"github.com/catfish-db/catfish/internal/geo"
)

// ErrNotEmpty is returned by BulkLoad when the tree already contains items.
var ErrNotEmpty = errors.New("rtree: bulk load requires an empty tree")

// BulkLoad replaces the content of an empty tree with items using
// Sort-Tile-Recursive (STR) packing: items are tiled into vertical slices by
// x-center, sorted by y-center within each slice, and packed into leaves,
// then the procedure repeats on the leaf MBRs until a single root remains.
//
// The evaluation harness uses BulkLoad to stand up the paper's pre-built
// 2-million-rectangle tree quickly; it is not part of the measured
// operations. fillFactor in (0, 1] controls leaf occupancy (0 selects 0.9,
// leaving headroom for the hybrid workloads' inserts).
func (t *Tree) BulkLoad(items []Entry, fillFactor float64) error {
	if t.size != 0 || t.height != 1 {
		return ErrNotEmpty
	}
	for _, it := range items {
		if !it.Rect.Valid() {
			return fmt.Errorf("%w: %v", ErrInvalidRect, it.Rect)
		}
	}
	if fillFactor == 0 {
		fillFactor = 0.9
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return fmt.Errorf("rtree: fill factor %v out of (0, 1]", fillFactor)
	}
	capPerNode := int(fillFactor * float64(t.maxEntries))
	// Keep at least 2·m so trailing-group rebalancing can always produce two
	// halves that respect the minimum-occupancy invariant.
	if capPerNode < 2*t.minEntries {
		capPerNode = 2 * t.minEntries
	}
	if capPerNode > t.maxEntries {
		capPerNode = t.maxEntries
	}
	t.stats = OpStats{}

	if len(items) <= capPerNode {
		root := &Node{Level: 0, Entries: append([]Entry(nil), items...)}
		if err := t.writeNode(t.rootChunk, root); err != nil {
			return err
		}
		t.size = len(items)
		t.height = 1
		return nil
	}

	// Phase 1: build the whole tree in memory, bottom-up, exactly as the
	// chunk-at-a-time loader did — but defer chunk assignment so the layout
	// can be chosen afterwards. Parent entries carry the child's index into
	// the current level's node slice in Ref; strTile reorders entries freely
	// and the index travels with them.
	level := 0
	entries := append([]Entry(nil), items...)
	var cur []*buildNode
	for len(entries) > capPerNode {
		groups := strTile(entries, capPerNode, t.minEntries)
		next := make([]*buildNode, 0, len(groups))
		parents := make([]Entry, 0, len(groups))
		for _, g := range groups {
			bn := &buildNode{level: level, mbr: (&Node{Entries: g}).MBR()}
			if level == 0 {
				bn.entries = g
			} else {
				bn.children = make([]*buildNode, len(g))
				for j, e := range g {
					bn.children[j] = cur[e.Ref]
				}
			}
			parents = append(parents, Entry{Rect: bn.mbr, Ref: uint64(len(next))})
			next = append(next, bn)
		}
		cur = next
		entries = parents
		level++
	}
	root := &buildNode{level: level, children: make([]*buildNode, len(entries))}
	for i, e := range entries {
		root.children[i] = cur[e.Ref]
	}

	// Phase 2: assign chunks in DFS preorder — each child's entire subtree
	// is laid out before its next sibling starts. With an ascending
	// allocator (SortFreeList) this makes every subtree a contiguous run of
	// chunk ids; in particular a level-1 node at chunk c has its leaf
	// children at exactly c+1..c+n, so sibling leaf reads coalesce into one
	// merged RDMA Read and a speculative span read behind the parent
	// prefetches precisely those leaves.
	t.reg.SortFreeList()
	root.chunk = t.rootChunk
	if err := t.assignPreorder(root); err != nil {
		return err
	}

	// Phase 3: publish. The root is written last so a concurrent offload
	// client never follows a ref into an unwritten chunk.
	for _, c := range root.children {
		if err := t.writeSubtree(c); err != nil {
			return err
		}
	}
	if err := t.writeBuildNode(root); err != nil {
		return err
	}
	t.size = len(items)
	t.height = level + 1
	return nil
}

// buildNode is one node of the in-memory tree BulkLoad assembles before
// chunk assignment: leaf payload at level 0, child pointers above.
type buildNode struct {
	level    int
	mbr      geo.Rect
	entries  []Entry
	children []*buildNode
	chunk    int
}

// assignPreorder allocates chunks for n's descendants in DFS preorder
// (n itself is already assigned).
func (t *Tree) assignPreorder(n *buildNode) error {
	for _, c := range n.children {
		id, err := t.reg.Alloc()
		if err != nil {
			return fmt.Errorf("rtree: bulk load alloc: %w", err)
		}
		c.chunk = id
		if err := t.assignPreorder(c); err != nil {
			return err
		}
	}
	return nil
}

// writeSubtree publishes n's subtree children-first.
func (t *Tree) writeSubtree(n *buildNode) error {
	for _, c := range n.children {
		if err := t.writeSubtree(c); err != nil {
			return err
		}
	}
	return t.writeBuildNode(n)
}

// writeBuildNode publishes one assembled node into its assigned chunk.
func (t *Tree) writeBuildNode(bn *buildNode) error {
	n := &Node{Level: bn.level, Entries: bn.entries}
	if bn.level > 0 {
		n.Entries = make([]Entry, len(bn.children))
		for i, c := range bn.children {
			n.Entries[i] = Entry{Rect: c.mbr, Ref: uint64(c.chunk)}
		}
	}
	return t.writeNode(bn.chunk, n)
}

// strTile partitions entries into groups of at most capPerNode (and at
// least minEntries) using the STR tiling: sort by x-center, cut into
// ceil(sqrt(P)) vertical slices, sort each slice by y-center, and cut into
// runs of capPerNode. A trailing run smaller than minEntries is rebalanced
// with its predecessor.
func strTile(entries []Entry, capPerNode, minEntries int) [][]Entry {
	n := len(entries)
	p := (n + capPerNode - 1) / capPerNode // total nodes needed
	s := int(math.Ceil(math.Sqrt(float64(p))))
	sliceSize := s * capPerNode

	slices.SortFunc(entries, func(a, b Entry) int {
		ax := a.Rect.MinX + a.Rect.MaxX
		bx := b.Rect.MinX + b.Rect.MaxX
		switch {
		case ax < bx:
			return -1
		case ax > bx:
			return 1
		default:
			return 0
		}
	})
	groups := make([][]Entry, 0, p)
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		slice := entries[start:end]
		slices.SortFunc(slice, func(a, b Entry) int {
			ay := a.Rect.MinY + a.Rect.MaxY
			by := b.Rect.MinY + b.Rect.MaxY
			switch {
			case ay < by:
				return -1
			case ay > by:
				return 1
			default:
				return 0
			}
		})
		sliceStart := len(groups)
		for gs := 0; gs < len(slice); gs += capPerNode {
			ge := gs + capPerNode
			if ge > len(slice) {
				ge = len(slice)
			}
			groups = append(groups, append([]Entry(nil), slice[gs:ge]...))
		}
		// Rebalance a small trailing run within this slice.
		if last := len(groups) - 1; len(groups[last]) < minEntries && last > sliceStart {
			rebalance(groups, last)
		}
	}
	// A lone undersized group in the final slice borrows from the previous
	// slice's last group.
	if last := len(groups) - 1; len(groups) > 1 && len(groups[last]) < minEntries {
		rebalance(groups, last)
	}
	return groups
}

// rebalance evens out groups[last-1] and groups[last]. Each half gets a
// fresh backing array: the two groups become independent nodes whose entry
// slices must never alias (an append into one would otherwise overwrite the
// other's entries in place).
func rebalance(groups [][]Entry, last int) {
	merged := make([]Entry, 0, len(groups[last-1])+len(groups[last]))
	merged = append(merged, groups[last-1]...)
	merged = append(merged, groups[last]...)
	half := len(merged) / 2
	groups[last-1] = append([]Entry(nil), merged[:half]...)
	groups[last] = append([]Entry(nil), merged[half:]...)
}
