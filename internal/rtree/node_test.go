package rtree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/catfish-db/catfish/internal/geo"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Rect: geo.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
			Ref:  rng.Uint64(),
		}
	}
	return out
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, count := range []int{0, 1, 5, 64} {
		n := &Node{Level: 3, Entries: randomEntries(rng, count)}
		buf := n.Encode(nil)
		if len(buf) != n.EncodedSize() {
			t.Errorf("encoded size %d, want %d", len(buf), n.EncodedSize())
		}
		var got Node
		if err := DecodeNode(buf, &got, 64); err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
		if got.Level != 3 || len(got.Entries) != count {
			t.Fatalf("decoded level %d count %d", got.Level, len(got.Entries))
		}
		for i := range got.Entries {
			if got.Entries[i] != n.Entries[i] {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	}
}

func TestDecodeNodeErrors(t *testing.T) {
	var n Node
	if err := DecodeNode(nil, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("nil decode err = %v", err)
	}
	if err := DecodeNode(make([]byte, 8), &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("short decode err = %v", err)
	}
	// Count exceeding payload capacity.
	good := (&Node{Level: 0, Entries: randomEntries(rand.New(rand.NewSource(2)), 2)}).Encode(nil)
	bad := append([]byte(nil), good...)
	bad[4] = 200 // count
	if err := DecodeNode(bad, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("overflow count decode err = %v", err)
	}
	// Absurd level.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 255
	if err := DecodeNode(bad2, &n, 8); !errors.Is(err, ErrCorruptNode) {
		t.Errorf("bad level decode err = %v", err)
	}
}

func TestDecodeNodeReusesEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := (&Node{Level: 0, Entries: randomEntries(rng, 4)}).Encode(nil)
	n := Node{Entries: make([]Entry, 0, 16)}
	backing := n.Entries[:1]
	if err := DecodeNode(buf, &n, 16); err != nil {
		t.Fatal(err)
	}
	if &n.Entries[0] != &backing[0] {
		t.Error("DecodeNode did not reuse entry slice capacity")
	}
}

func TestNodeMBR(t *testing.T) {
	n := &Node{}
	if !n.MBR().Equal(geo.Rect{}) {
		t.Error("empty node MBR should be zero")
	}
	n.Entries = []Entry{
		{Rect: geo.NewRect(0, 0, 1, 1)},
		{Rect: geo.NewRect(2, -1, 3, 0.5)},
	}
	want := geo.Rect{MinX: 0, MaxX: 3, MinY: -1, MaxY: 1}
	if got := n.MBR(); !got.Equal(want) {
		t.Errorf("MBR = %v, want %v", got, want)
	}
}

func TestNodeCapacity(t *testing.T) {
	if got := NodeCapacity(10); got != 0 {
		t.Errorf("tiny capacity = %d", got)
	}
	// 4 KB chunk with 64 cachelines: 3584 payload bytes.
	if got := NodeCapacity(3584); got != (3584-16)/40 {
		t.Errorf("capacity = %d", got)
	}
}

// Property: encode/decode is the identity on arbitrary nodes.
func TestPropNodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := &Node{Level: rng.Intn(10), Entries: randomEntries(rng, rng.Intn(65))}
		var got Node
		if err := DecodeNode(n.Encode(nil), &got, 64); err != nil {
			return false
		}
		if got.Level != n.Level || len(got.Entries) != len(n.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i] != n.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitDistributionBounds(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	rng := rand.New(rand.NewSource(5))
	entries := randomEntries(rng, tree.MaxEntries()+1)
	left, right := tree.chooseSplit(entries)
	if len(left)+len(right) != len(entries) {
		t.Fatalf("split lost entries: %d + %d != %d", len(left), len(right), len(entries))
	}
	if len(left) < tree.MinEntries() || len(right) < tree.MinEntries() {
		t.Errorf("split sides %d/%d below min %d", len(left), len(right), tree.MinEntries())
	}
	// Every input entry appears exactly once across the halves.
	seen := map[uint64]int{}
	for _, e := range entries {
		seen[e.Ref]++
	}
	for _, e := range append(append([]Entry(nil), left...), right...) {
		seen[e.Ref]--
	}
	for ref, c := range seen {
		if c != 0 {
			t.Errorf("ref %d count off by %d after split", ref, c)
		}
	}
}
