package rtree

import (
	"fmt"
	"sort"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
)

// Publisher writes a node's encoded payload into a region chunk. The default
// publisher writes atomically; the simulation server installs a staged
// publisher that spreads the write over a virtual-time window so offloaded
// readers can observe (and retry) genuinely torn reads.
type Publisher func(chunkID int, payload []byte) error

// Config tunes a Tree.
type Config struct {
	// MaxEntries is the node fan-out M. 0 selects the chunk capacity,
	// capped at 64 (the paper-scale default giving height 4 for 2M items).
	MaxEntries int
	// MinEntries is the underflow bound m. 0 selects 40% of MaxEntries,
	// the R*-tree recommendation.
	MinEntries int
	// Publisher overrides how node payloads are written to the region.
	Publisher Publisher
	// ReinsertFraction is the share of entries force-reinserted on first
	// overflow per level (R* recommends 0.3). 0 selects 0.3; negative
	// disables forced reinsertion.
	ReinsertFraction float64
	// DisableCache turns off the server-side decoded-node cache and makes
	// every tree operation re-read node bytes from the region. The cache is
	// sound because the tree is the region's only writer; disabling it is
	// useful in tests that must exercise the serialized path.
	DisableCache bool
}

// OpStats reports the work a single tree operation performed; the Catfish
// server converts it into a CPU service demand, and the harness aggregates
// it for the evaluation tables.
type OpStats struct {
	NodesRead    int // nodes decoded during the operation
	NodesWritten int // nodes published during the operation
	Results      int // matching items (Search only)
}

func (s *OpStats) add(o OpStats) {
	s.NodesRead += o.NodesRead
	s.NodesWritten += o.NodesWritten
	s.Results += o.Results
}

// Tree is an R*-tree stored node-per-chunk in a memory region. It is not
// safe for concurrent use; Catfish serializes all tree mutations through the
// server's latch, and lockless client reads go through the region layer
// directly, never through Tree.
type Tree struct {
	reg        *region.Region
	publish    Publisher
	maxEntries int
	minEntries int
	reinsertN  int // entries removed on forced reinsertion

	rootChunk int
	height    int // levels; root node has Level == height-1
	size      int // stored items

	// Per-insertion forced-reinsertion marker (R*: once per level).
	reinsertedAt map[int]bool

	// cache holds decoded nodes by chunk ID (nil when disabled). The server
	// is the sole writer of the region, so a write-through cache is always
	// coherent; offloading clients never go through Tree and always read
	// the region bytes.
	cache []*Node

	// Scratch buffers to keep steady-state operations allocation-free.
	rawBuf     []byte
	payloadBuf []byte
	encodeBuf  []byte
	candBuf    []int

	stats OpStats
}

// New creates an empty tree whose nodes live in reg. The root occupies the
// first allocated chunk and never moves, so clients can cache its chunk ID
// for the lifetime of the tree (the paper returns the registered address
// once, at connection initialization).
func New(reg *region.Region, cfg Config) (*Tree, error) {
	capacity := NodeCapacity(reg.PayloadSize())
	maxE := cfg.MaxEntries
	if maxE == 0 {
		maxE = capacity
		if maxE > 64 {
			maxE = 64
		}
	}
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: MaxEntries %d too small (chunk capacity %d)", maxE, capacity)
	}
	if maxE > capacity {
		return nil, fmt.Errorf("rtree: MaxEntries %d exceeds chunk capacity %d", maxE, capacity)
	}
	minE := cfg.MinEntries
	if minE == 0 {
		minE = maxE * 2 / 5
	}
	if minE < 1 || minE > maxE/2 {
		return nil, fmt.Errorf("rtree: MinEntries %d out of range [1, %d]", minE, maxE/2)
	}
	frac := cfg.ReinsertFraction
	if frac == 0 {
		frac = 0.3
	}
	reinsertN := 0
	if frac > 0 {
		reinsertN = int(frac * float64(maxE+1))
		if reinsertN < 1 {
			reinsertN = 1
		}
		if reinsertN > maxE+1-minE {
			reinsertN = maxE + 1 - minE
		}
	}
	pub := cfg.Publisher
	if pub == nil {
		pub = reg.WriteChunkPrefix
	}
	t := &Tree{
		reg:          reg,
		publish:      pub,
		maxEntries:   maxE,
		minEntries:   minE,
		reinsertN:    reinsertN,
		height:       1,
		reinsertedAt: make(map[int]bool),
		rawBuf:       make([]byte, reg.ChunkSize()),
		payloadBuf:   make([]byte, 0, reg.PayloadSize()),
	}
	if !cfg.DisableCache {
		t.cache = make([]*Node, reg.NumChunks())
	}
	root, err := reg.Alloc()
	if err != nil {
		return nil, fmt.Errorf("rtree: alloc root: %w", err)
	}
	t.rootChunk = root
	if err := t.writeNode(root, &Node{Level: 0}); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone root leaf).
func (t *Tree) Height() int { return t.height }

// RootChunk returns the chunk ID of the root node; it is stable for the
// tree's lifetime.
func (t *Tree) RootChunk() int { return t.rootChunk }

// MaxEntries returns the configured fan-out M.
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries returns the configured underflow bound m.
func (t *Tree) MinEntries() int { return t.minEntries }

// Region returns the backing memory region.
func (t *Tree) Region() *region.Region { return t.reg }

// SetPublisher replaces how node payloads are written to the region. The
// Catfish server installs a staged publisher here so node writes open
// torn-read windows for concurrent one-sided readers. Passing nil restores
// the default atomic publisher.
func (t *Tree) SetPublisher(pub Publisher) {
	if pub == nil {
		pub = t.reg.WriteChunkPrefix
	}
	t.publish = pub
}

// readNode returns the decoded node for chunk id, from the write-through
// cache when enabled, otherwise freshly decoded from the region.
func (t *Tree) readNode(id int) (*Node, error) {
	t.stats.NodesRead++
	if t.cache != nil {
		if n := t.cache[id]; n != nil {
			return n, nil
		}
	}
	n, err := t.readNodeRegion(id)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache[id] = n
	}
	return n, nil
}

// readNodeRegion decodes chunk id from the region bytes, bypassing the
// cache. CheckInvariants uses it to validate what RDMA readers would see.
func (t *Tree) readNodeRegion(id int) (*Node, error) {
	payload, _, err := t.reg.ReadChunk(id, t.rawBuf, t.payloadBuf)
	if err != nil {
		return nil, fmt.Errorf("rtree: read chunk %d: %w", id, err)
	}
	t.payloadBuf = payload
	n := &Node{}
	if err := DecodeNode(payload, n, t.maxEntries); err != nil {
		return nil, fmt.Errorf("rtree: chunk %d: %w", id, err)
	}
	return n, nil
}

// writeNode publishes n into chunk id and refreshes the cache.
func (t *Tree) writeNode(id int, n *Node) error {
	t.encodeBuf = n.Encode(t.encodeBuf)
	if err := t.publish(id, t.encodeBuf); err != nil {
		return fmt.Errorf("rtree: publish chunk %d: %w", id, err)
	}
	if t.cache != nil {
		t.cache[id] = n
	}
	t.stats.NodesWritten++
	return nil
}

// path captures one root-to-node descent. nodes[0] is the root; child[i] is
// the entry index in nodes[i] leading to nodes[i+1].
type path struct {
	ids   []int
	nodes []*Node
	child []int
}

func (p *path) depth() int { return len(p.nodes) }

// descend walks from the root to a node at targetLevel, choosing subtrees
// with the R* rules, and returns the full path.
func (t *Tree) descend(r geo.Rect, targetLevel int) (*path, error) {
	p := &path{}
	id := t.rootChunk
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		p.ids = append(p.ids, id)
		p.nodes = append(p.nodes, n)
		if n.Level == targetLevel {
			return p, nil
		}
		if n.Level < targetLevel || len(n.Entries) == 0 {
			return nil, fmt.Errorf("rtree: descend past target level %d at chunk %d (level %d)",
				targetLevel, id, n.Level)
		}
		idx := t.chooseSubtree(n, r)
		p.child = append(p.child, idx)
		id = int(n.Entries[idx].Ref)
	}
}

// chooseSubtree picks the child of n to descend into for inserting r:
// minimum overlap enlargement when the children are leaves, minimum area
// enlargement otherwise (ties broken by area enlargement, then area), per
// the R*-tree ChooseSubtree algorithm.
func (t *Tree) chooseSubtree(n *Node, r geo.Rect) int {
	if n.Level == 1 {
		return t.chooseLeafSubtree(n, r)
	}
	best := 0
	bestEnl := n.Entries[0].Rect.Enlargement(r)
	bestArea := n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseSubtreeProbe bounds the O(M²) overlap computation: only the probe
// candidates with least area enlargement are considered, the R* "nearly
// minimum overlap cost" heuristic for large fan-outs.
const chooseSubtreeProbe = 32

func (t *Tree) chooseLeafSubtree(n *Node, r geo.Rect) int {
	if cap(t.candBuf) < len(n.Entries) {
		t.candBuf = make([]int, len(n.Entries))
	}
	cand := t.candBuf[:len(n.Entries)]
	for i := range cand {
		cand[i] = i
	}
	if len(cand) > chooseSubtreeProbe {
		sort.Slice(cand, func(a, b int) bool {
			return n.Entries[cand[a]].Rect.Enlargement(r) < n.Entries[cand[b]].Rect.Enlargement(r)
		})
		cand = cand[:chooseSubtreeProbe]
	}
	best := cand[0]
	bestOverlap := t.overlapDelta(n, best, r)
	bestEnl := n.Entries[best].Rect.Enlargement(r)
	bestArea := n.Entries[best].Rect.Area()
	for _, i := range cand[1:] {
		ov := t.overlapDelta(n, i, r)
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if ov < bestOverlap ||
			(ov == bestOverlap && enl < bestEnl) ||
			(ov == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

// overlapDelta computes how much the overlap of entry i with its siblings
// grows if i is enlarged to cover r.
func (t *Tree) overlapDelta(n *Node, i int, r geo.Rect) float64 {
	enlarged := n.Entries[i].Rect.Union(r)
	var delta float64
	for j := range n.Entries {
		if j == i {
			continue
		}
		delta += enlarged.OverlapArea(n.Entries[j].Rect) -
			n.Entries[i].Rect.OverlapArea(n.Entries[j].Rect)
	}
	return delta
}

// Insert adds an item. The same (rect, ref) pair may be inserted multiple
// times; each insertion stores a separate entry.
func (t *Tree) Insert(r geo.Rect, ref uint64) (OpStats, error) {
	if !r.Valid() {
		return OpStats{}, ErrInvalidRect
	}
	t.stats = OpStats{}
	clear(t.reinsertedAt)
	if err := t.insertEntry(Entry{Rect: r, Ref: ref}, 0); err != nil {
		return t.stats, err
	}
	t.size++
	return t.stats, nil
}

// insertEntry places e into a node at level, handling overflow via forced
// reinsertion or splitting.
func (t *Tree) insertEntry(e Entry, level int) error {
	p, err := t.descend(e.Rect, level)
	if err != nil {
		return err
	}
	d := p.depth() - 1
	p.nodes[d].Entries = append(p.nodes[d].Entries, e)
	return t.finishInsert(p, d)
}

// finishInsert publishes the modified node at path depth d, handling
// overflow and propagating MBR updates to the root.
func (t *Tree) finishInsert(p *path, d int) error {
	n := p.nodes[d]
	if len(n.Entries) > t.maxEntries {
		return t.overflow(p, d)
	}
	if err := t.writeNode(p.ids[d], n); err != nil {
		return err
	}
	return t.adjustUp(p, d)
}

// adjustUp refreshes parent MBRs from depth d-1 to the root, writing only
// parents whose covering rectangle actually changed.
func (t *Tree) adjustUp(p *path, d int) error {
	for i := d - 1; i >= 0; i-- {
		parent, childIdx := p.nodes[i], p.child[i]
		want := p.nodes[i+1].MBR()
		if parent.Entries[childIdx].Rect.Equal(want) {
			return nil
		}
		parent.Entries[childIdx].Rect = want
		if err := t.writeNode(p.ids[i], parent); err != nil {
			return err
		}
	}
	return nil
}

// overflow applies the R* overflow treatment to the node at path depth d,
// which holds maxEntries+1 entries: forced reinsertion on the first overflow
// of its level within this insertion (unless it is the root), a split
// otherwise.
func (t *Tree) overflow(p *path, d int) error {
	n := p.nodes[d]
	if d != 0 && t.reinsertN > 0 && !t.reinsertedAt[n.Level] {
		t.reinsertedAt[n.Level] = true
		return t.reinsert(p, d)
	}
	return t.split(p, d)
}
