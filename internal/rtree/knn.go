package rtree

import (
	"container/heap"
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
)

// ErrBadK is returned by Nearest for non-positive k.
var ErrBadK = errors.New("rtree: k must be positive")

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Rect   geo.Rect
	Ref    uint64
	DistSq float64 // squared Euclidean distance to the query point
}

// knnItem is a priority-queue element: either a node to expand or a
// candidate leaf entry.
type knnItem struct {
	distSq float64
	isItem bool
	// node expansion:
	chunk int
	// leaf entry:
	entry Entry
}

// knnHeap implements heap.Interface ordered by minimum possible distance.
type knnHeap []knnItem

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)         { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() any           { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *knnHeap) pushItem(i knnItem) { heap.Push(h, i) }

// Nearest returns the k stored entries whose rectangles lie nearest to the
// point (x, y), in ascending distance order (fewer when the tree holds
// fewer items). It runs the classic best-first search: a priority queue
// ordered by minimum possible distance, expanding nodes lazily, so it
// touches only the nodes whose bounding boxes could contain a result.
func (t *Tree) Nearest(k int, x, y float64) ([]Neighbor, OpStats, error) {
	if k <= 0 {
		return nil, OpStats{}, ErrBadK
	}
	t.stats = OpStats{}
	var pq knnHeap
	pq.pushItem(knnItem{distSq: 0, chunk: t.rootChunk})
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(knnItem)
		if it.isItem {
			out = append(out, Neighbor{Rect: it.entry.Rect, Ref: it.entry.Ref, DistSq: it.distSq})
			t.stats.Results++
			if len(out) == k {
				return out, t.stats, nil
			}
			continue
		}
		n, err := t.readNode(it.chunk)
		if err != nil {
			return out, t.stats, err
		}
		for _, e := range n.Entries {
			child := knnItem{distSq: e.Rect.DistSqToPoint(x, y)}
			if n.IsLeaf() {
				child.isItem = true
				child.entry = e
			} else {
				child.chunk = int(e.Ref)
			}
			pq.pushItem(child)
		}
	}
	return out, t.stats, nil
}

// NearestShared is Nearest for concurrent callers: it serves nodes from
// the write-through cache and keeps its statistics in locals, touching no
// tree scratch state, so parallel kNNs can run under a shared read latch
// exactly like SearchShared. Requires the node cache (ErrNeedCache). The
// traversal — heap, push order, tie resolution — is identical to Nearest,
// so the two return bit-identical results for the same tree state.
func (t *Tree) NearestShared(k int, x, y float64) ([]Neighbor, OpStats, error) {
	var st OpStats
	if k <= 0 {
		return nil, st, ErrBadK
	}
	if t.cache == nil {
		return nil, st, ErrNeedCache
	}
	var pq knnHeap
	pq.pushItem(knnItem{distSq: 0, chunk: t.rootChunk})
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(knnItem)
		if it.isItem {
			out = append(out, Neighbor{Rect: it.entry.Rect, Ref: it.entry.Ref, DistSq: it.distSq})
			st.Results++
			if len(out) == k {
				return out, st, nil
			}
			continue
		}
		n := t.cache[it.chunk]
		if n == nil {
			return out, st, fmt.Errorf("rtree: chunk %d missing from cache", it.chunk)
		}
		st.NodesRead++
		for _, e := range n.Entries {
			child := knnItem{distSq: e.Rect.DistSqToPoint(x, y)}
			if n.IsLeaf() {
				child.isItem = true
				child.entry = e
			} else {
				child.chunk = int(e.Ref)
			}
			pq.pushItem(child)
		}
	}
	return out, st, nil
}
