package rtree

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
)

// newTestTree returns a tree over a fresh region with the given fan-out.
func newTestTree(t testing.TB, nchunks, maxEntries int) *Tree {
	t.Helper()
	reg, err := region.New(nchunks, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(reg, Config{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func uniformRect(rng *rand.Rand, maxEdge float64) geo.Rect {
	w, h := rng.Float64()*maxEdge, rng.Float64()*maxEdge
	x, y := rng.Float64()*(1-w), rng.Float64()*(1-h)
	return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
}

func TestNewValidatesConfig(t *testing.T) {
	reg, err := region.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults", Config{}, false},
		{"explicit", Config{MaxEntries: 16, MinEntries: 6}, false},
		{"tooSmallMax", Config{MaxEntries: 2}, true},
		{"overCapacity", Config{MaxEntries: 1000}, true},
		{"minTooLarge", Config{MaxEntries: 16, MinEntries: 9}, true},
		{"noReinsert", Config{MaxEntries: 8, ReinsertFraction: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r2, err := region.New(4, 4096)
			if err != nil {
				t.Fatal(err)
			}
			_ = reg
			_, err = New(r2, tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%+v) err = %v", tt.cfg, err)
			}
		})
	}
}

func TestEmptyTree(t *testing.T) {
	tree := newTestTree(t, 8, 8)
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Errorf("Len=%d Height=%d", tree.Len(), tree.Height())
	}
	got, st, err := tree.SearchCollect(geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.Results != 0 {
		t.Errorf("empty search found %d", len(got))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	ok, _, err := tree.Delete(geo.PointRect(0.5, 0.5), 1)
	if err != nil || ok {
		t.Errorf("delete on empty = %v, %v", ok, err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tree := newTestTree(t, 16, 8)
	rects := []geo.Rect{
		geo.NewRect(0.1, 0.1, 0.2, 0.2),
		geo.NewRect(0.15, 0.15, 0.3, 0.3),
		geo.NewRect(0.7, 0.7, 0.8, 0.8),
		geo.NewRect(0.0, 0.9, 0.05, 0.95),
	}
	for i, r := range rects {
		if _, err := tree.Insert(r, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 4 {
		t.Errorf("Len = %d", tree.Len())
	}
	// A query overlapping the first two only (Fig 3a's two-path search).
	got, _, err := tree.SearchCollect(geo.NewRect(0.12, 0.12, 0.18, 0.18))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("found %d items, want 2: %v", len(got), got)
	}
	refs := map[uint64]bool{got[0].Ref: true, got[1].Ref: true}
	if !refs[0] || !refs[1] {
		t.Errorf("wrong refs: %v", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tree := newTestTree(t, 8, 8)
	if _, err := tree.Insert(geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, 1); !errors.Is(err, ErrInvalidRect) {
		t.Errorf("err = %v, want ErrInvalidRect", err)
	}
	if _, err := tree.Search(geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, nil); !errors.Is(err, ErrInvalidRect) {
		t.Errorf("search err = %v", err)
	}
	if _, _, err := tree.Delete(geo.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, 1); !errors.Is(err, ErrInvalidRect) {
		t.Errorf("delete err = %v", err)
	}
}

func TestSplitGrowsHeightRootStable(t *testing.T) {
	tree := newTestTree(t, 64, 8)
	root := tree.RootChunk()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.05), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 2 {
		t.Errorf("height = %d after 100 inserts with M=8", tree.Height())
	}
	if tree.RootChunk() != root {
		t.Errorf("root chunk moved: %d -> %d", root, tree.RootChunk())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tree := newTestTree(t, 64, 8)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.5), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	_, err := tree.Search(geo.NewRect(0, 0, 1, 1), func(geo.Rect, uint64) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("early stop made %d calls, want 3", calls)
	}
}

func TestDuplicateEntries(t *testing.T) {
	tree := newTestTree(t, 32, 8)
	r := geo.NewRect(0.4, 0.4, 0.5, 0.5)
	for i := 0; i < 3; i++ {
		if _, err := tree.Insert(r, 7); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tree.SearchCollect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("found %d duplicates, want 3", len(got))
	}
	// Delete removes exactly one at a time.
	ok, _, err := tree.Delete(r, 7)
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	got, _, _ = tree.SearchCollect(r)
	if len(got) != 2 {
		t.Errorf("after delete found %d, want 2", len(got))
	}
}

// bruteForce is the oracle for randomized comparison tests.
type bruteForce struct {
	entries []Entry
}

func (b *bruteForce) insert(r geo.Rect, ref uint64) {
	b.entries = append(b.entries, Entry{Rect: r, Ref: ref})
}

func (b *bruteForce) delete(r geo.Rect, ref uint64) bool {
	for i, e := range b.entries {
		if e.Ref == ref && e.Rect.Equal(r) {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (b *bruteForce) search(q geo.Rect) map[uint64]int {
	out := map[uint64]int{}
	for _, e := range b.entries {
		if q.Intersects(e.Rect) {
			out[e.Ref]++
		}
	}
	return out
}

func sameResults(got []Entry, want map[uint64]int) bool {
	gm := map[uint64]int{}
	for _, e := range got {
		gm[e.Ref]++
	}
	if len(gm) != len(want) {
		return false
	}
	for k, v := range want {
		if gm[k] != v {
			return false
		}
	}
	return true
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	tree := newTestTree(t, 4096, 8)
	oracle := &bruteForce{}
	rng := rand.New(rand.NewSource(42))
	nextRef := uint64(0)
	live := make([]Entry, 0, 2048)

	for step := 0; step < 3000; step++ {
		op := rng.Float64()
		switch {
		case op < 0.6 || len(live) == 0: // insert
			r := uniformRect(rng, 0.1)
			ref := nextRef
			nextRef++
			if _, err := tree.Insert(r, ref); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			oracle.insert(r, ref)
			live = append(live, Entry{Rect: r, Ref: ref})
		case op < 0.75: // delete existing
			i := rng.Intn(len(live))
			e := live[i]
			ok, _, err := tree.Delete(e.Rect, e.Ref)
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			if !ok {
				t.Fatalf("step %d: delete of live entry %v failed", step, e)
			}
			if !oracle.delete(e.Rect, e.Ref) {
				t.Fatalf("oracle desync at step %d", step)
			}
			live = append(live[:i], live[i+1:]...)
		case op < 0.8: // delete nonexistent
			ok, _, err := tree.Delete(uniformRect(rng, 0.01), 1<<60)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if ok {
				t.Fatalf("step %d: deleted nonexistent entry", step)
			}
		default: // search
			q := uniformRect(rng, rng.Float64()*0.3)
			got, _, err := tree.SearchCollect(q)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			if !sameResults(got, oracle.search(q)) {
				t.Fatalf("step %d: search results diverge for %v", step, q)
			}
		}
		if step%500 == 499 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tree.Len() != len(oracle.entries) {
				t.Fatalf("step %d: Len %d != oracle %d", step, tree.Len(), len(oracle.entries))
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tree := newTestTree(t, 1024, 8)
	rng := rand.New(rand.NewSource(11))
	var entries []Entry
	for i := 0; i < 500; i++ {
		r := uniformRect(rng, 0.05)
		entries = append(entries, Entry{Rect: r, Ref: uint64(i)})
		if _, err := tree.Insert(r, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	allocAfterInsert := tree.Region().Allocated()
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for i, e := range entries {
		ok, _, err := tree.Delete(e.Rect, e.Ref)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("delete %d: entry not found", i)
		}
		if i%100 == 99 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tree.Len())
	}
	if tree.Height() != 1 {
		t.Errorf("Height = %d after deleting all, want 1", tree.Height())
	}
	// All chunks except the root must be back on the free list.
	if got := tree.Region().Allocated(); got != 1 {
		t.Errorf("allocated chunks = %d (was %d), want 1 (root)", got, allocAfterInsert)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOpStats(t *testing.T) {
	tree := newTestTree(t, 256, 8)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		st, err := tree.Insert(uniformRect(rng, 0.02), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if st.NodesRead == 0 || st.NodesWritten == 0 {
			t.Fatalf("insert %d reported no work: %+v", i, st)
		}
	}
	st, err := tree.Search(geo.NewRect(0, 0, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != 200 {
		t.Errorf("full search results = %d", st.Results)
	}
	shape, err := tree.Shape()
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesRead != shape.Nodes {
		t.Errorf("full search read %d nodes, tree has %d", st.NodesRead, shape.Nodes)
	}
	if shape.Items != 200 || shape.Height != tree.Height() {
		t.Errorf("shape = %+v", shape)
	}
}

func TestNoReinsertConfig(t *testing.T) {
	tree := newTestTree(t, 512, 8)
	plain, err := New(mustNewRegion(t, 512), Config{MaxEntries: 8, ReinsertFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	rng2 := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.05), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Insert(uniformRect(rng2, 0.05), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := plain.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Same data, both valid; R* reinsertion typically yields equal-or-fewer
	// nodes. Just verify both answer identically.
	q := geo.NewRect(0.2, 0.2, 0.6, 0.6)
	a, _, _ := tree.SearchCollect(q)
	b, _, _ := plain.SearchCollect(q)
	if len(a) != len(b) {
		t.Errorf("reinsert/plain result counts differ: %d vs %d", len(a), len(b))
	}
}

func mustNewRegion(t testing.TB, nchunks int) *region.Region {
	t.Helper()
	reg, err := region.New(nchunks, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegionExhaustion(t *testing.T) {
	reg := mustNewRegion(t, 2) // root + 1 spare: first split must fail cleanly
	tree, err := New(reg, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sawErr bool
	for i := 0; i < 50; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.1), uint64(i)); err != nil {
			if !errors.Is(err, region.ErrOutOfChunks) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("expected ErrOutOfChunks when region fills up")
	}
}

func TestVisitRects(t *testing.T) {
	tree := newTestTree(t, 256, 8)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.05), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	if err := tree.visitRects(func(_ geo.Rect, ref uint64) { seen[ref] = true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Errorf("visited %d refs, want 100", len(seen))
	}
}

func BenchmarkInsertUniform(b *testing.B) {
	reg, err := region.New(b.N*2+1024, 4096)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := New(reg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rects := make([]geo.Rect, b.N)
	for i := range rects {
		rects[i] = uniformRect(rng, 0.0001)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Insert(rects[i], uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSmallScope(b *testing.B) {
	tree := newTestTree(b, 8192, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		if _, err := tree.Insert(uniformRect(rng, 0.0001), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]geo.Rect, 1024)
	for i := range queries {
		queries[i] = uniformRect(rng, 0.00001)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Search(queries[i%len(queries)], nil); err != nil {
			b.Fatal(err)
		}
	}
}
