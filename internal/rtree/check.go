package rtree

import (
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
)

// CheckInvariants verifies the structural invariants of the tree and
// returns the first violation found. It is intended for tests and
// debugging; it reads every node.
//
// Checked invariants:
//   - the root's level equals Height-1;
//   - every child is exactly one level below its parent;
//   - every non-root node holds between MinEntries and MaxEntries entries,
//     the root between 1 and MaxEntries (2 when internal), except a root
//     leaf which may be empty;
//   - every parent entry's rectangle equals the child's MBR exactly;
//   - all stored rectangles are valid;
//   - the number of leaf entries equals Len();
//   - no chunk is referenced twice.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int]bool)
	items, err := t.checkNode(t.rootChunk, t.height-1, true, seen)
	if err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rtree: leaf entries %d != Len %d", items, t.size)
	}
	return nil
}

func (t *Tree) checkNode(id, wantLevel int, isRoot bool, seen map[int]bool) (int, error) {
	if seen[id] {
		return 0, fmt.Errorf("rtree: chunk %d referenced twice", id)
	}
	seen[id] = true
	// Validate the region bytes — what an RDMA reader would decode — and
	// their coherence with the server-side cache.
	n, err := t.readNodeRegion(id)
	if err != nil {
		return 0, err
	}
	if t.cache != nil && t.cache[id] != nil {
		c := t.cache[id]
		if c.Level != n.Level || len(c.Entries) != len(n.Entries) {
			return 0, fmt.Errorf("rtree: chunk %d cache incoherent (level %d/%d, count %d/%d)",
				id, c.Level, n.Level, len(c.Entries), len(n.Entries))
		}
		for i := range c.Entries {
			if c.Entries[i] != n.Entries[i] {
				return 0, fmt.Errorf("rtree: chunk %d cache entry %d differs from region", id, i)
			}
		}
	}
	if n.Level != wantLevel {
		return 0, fmt.Errorf("rtree: chunk %d level %d, want %d", id, n.Level, wantLevel)
	}
	min, max := t.minEntries, t.maxEntries
	if isRoot {
		min = 1
		if !n.IsLeaf() {
			min = 2
		}
	}
	if isRoot && n.IsLeaf() && len(n.Entries) == 0 {
		return 0, nil // empty tree
	}
	if len(n.Entries) < min || len(n.Entries) > max {
		return 0, fmt.Errorf("rtree: chunk %d has %d entries, want [%d, %d]",
			id, len(n.Entries), min, max)
	}
	for i, e := range n.Entries {
		if !e.Rect.Valid() {
			return 0, fmt.Errorf("rtree: chunk %d entry %d invalid rect %v", id, i, e.Rect)
		}
	}
	if n.IsLeaf() {
		return len(n.Entries), nil
	}
	total := 0
	for i, e := range n.Entries {
		childItems, err := t.checkNode(int(e.Ref), wantLevel-1, false, seen)
		if err != nil {
			return 0, err
		}
		child, err := t.readNodeRegion(int(e.Ref))
		if err != nil {
			return 0, err
		}
		if mbr := child.MBR(); !mbr.Equal(e.Rect) {
			return 0, fmt.Errorf("rtree: chunk %d entry %d rect %v != child MBR %v",
				id, i, e.Rect, mbr)
		}
		total += childItems
	}
	return total, nil
}

// Stats describes the physical shape of the tree.
type TreeShape struct {
	Height     int
	Nodes      int
	Leaves     int
	Items      int
	AvgFanout  float64
	BytesAlloc int
}

// Shape traverses the tree and reports its physical shape.
func (t *Tree) Shape() (TreeShape, error) {
	shape := TreeShape{Height: t.height, Items: t.size}
	var walk func(id int) error
	entrySum := 0
	walk = func(id int) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		shape.Nodes++
		entrySum += len(n.Entries)
		if n.IsLeaf() {
			shape.Leaves++
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(int(e.Ref)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.rootChunk); err != nil {
		return shape, err
	}
	if shape.Nodes > 0 {
		shape.AvgFanout = float64(entrySum) / float64(shape.Nodes)
	}
	shape.BytesAlloc = shape.Nodes * t.reg.ChunkSize()
	return shape, nil
}

// visitRects is a test helper surface: it walks all leaf entries in tree
// order without geometric filtering.
func (t *Tree) visitRects(fn func(geo.Rect, uint64)) error {
	var walk func(id int) error
	walk = func(id int) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.IsLeaf() {
			for _, e := range n.Entries {
				fn(e.Rect, e.Ref)
			}
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(int(e.Ref)); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.rootChunk)
}
