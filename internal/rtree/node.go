// Package rtree implements the R*-tree (Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD 1990) used by Catfish, stored node-per-chunk in an
// RDMA-registered memory region so clients can traverse it with one-sided
// reads.
//
// The paper stores 2-dimensional rectangles with four double-precision
// coordinates in leaf nodes; internal nodes hold the minimum bounding
// rectangles (MBRs) of their children. Insertion and node splitting follow
// the R*-tree mechanisms (ChooseSubtree with overlap minimization at the
// leaf level, margin-driven split-axis selection, overlap-driven
// distribution, and forced reinsertion), as §II-A and §III-A of the paper
// specify.
//
// The tree itself performs no synchronization: Catfish serializes writers
// through the server (tree latch) and lets lockless readers validate
// per-cacheline versions at the region layer.
package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/catfish-db/catfish/internal/geo"
)

// On-chunk node layout (little-endian), inside the region chunk payload:
//
//	offset 0:  level  uint32 (0 = leaf)
//	offset 4:  count  uint32
//	offset 8:  reserved (8 bytes, zero)
//	offset 16: count entries of 40 bytes:
//	             minX, maxX, minY, maxY float64, ref uint64
//
// For internal nodes ref is a child chunk ID; for leaves it is the caller's
// opaque item reference.
const (
	headerSize = 16
	// EntrySize is the encoded size of one node entry.
	EntrySize = 40
)

// Errors returned by node decoding and tree operations.
var (
	ErrCorruptNode = errors.New("rtree: corrupt node encoding")
	ErrNotFound    = errors.New("rtree: entry not found")
	ErrInvalidRect = errors.New("rtree: invalid rectangle")
)

// Entry is one slot of a node: a rectangle plus either a child chunk ID
// (internal nodes) or an item reference (leaves).
type Entry struct {
	Rect geo.Rect
	Ref  uint64
}

// Node is the decoded form of an R-tree node. Level 0 is a leaf. Node is
// exported because the offloading client decodes nodes from raw RDMA Read
// images and traverses them itself.
type Node struct {
	Level   int
	Entries []Entry
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of the node's entries, or the
// zero Rect for an empty node.
func (n *Node) MBR() geo.Rect {
	if len(n.Entries) == 0 {
		return geo.Rect{}
	}
	out := n.Entries[0].Rect
	for _, e := range n.Entries[1:] {
		out = out.Union(e.Rect)
	}
	return out
}

// EncodedSize returns the number of payload bytes the node occupies.
func (n *Node) EncodedSize() int { return headerSize + len(n.Entries)*EntrySize }

// Encode appends the node's on-chunk encoding to buf and returns it.
func (n *Node) Encode(buf []byte) []byte {
	need := n.EncodedSize()
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.Level))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(n.Entries)))
	binary.LittleEndian.PutUint64(buf[8:], 0)
	off := headerSize
	for _, e := range n.Entries {
		binary.LittleEndian.PutUint64(buf[off+0:], math.Float64bits(e.Rect.MinX))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.Rect.MaxX))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.Rect.MinY))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.Rect.MaxY))
		binary.LittleEndian.PutUint64(buf[off+32:], e.Ref)
		off += EntrySize
	}
	return buf
}

// DecodeNode parses a node from chunk payload bytes into n, reusing n's
// entry slice. maxEntries bounds the accepted count (pass 0 to accept any
// count that fits the payload).
func DecodeNode(payload []byte, n *Node, maxEntries int) error {
	if len(payload) < headerSize {
		return fmt.Errorf("%w: short header (%d bytes)", ErrCorruptNode, len(payload))
	}
	level := binary.LittleEndian.Uint32(payload[0:])
	count := binary.LittleEndian.Uint32(payload[4:])
	if level > 64 {
		return fmt.Errorf("%w: level %d", ErrCorruptNode, level)
	}
	limit := (len(payload) - headerSize) / EntrySize
	if int(count) > limit || (maxEntries > 0 && int(count) > maxEntries+1) {
		return fmt.Errorf("%w: count %d exceeds capacity", ErrCorruptNode, count)
	}
	n.Level = int(level)
	if cap(n.Entries) < int(count) {
		n.Entries = make([]Entry, count)
	}
	n.Entries = n.Entries[:count]
	off := headerSize
	for i := range n.Entries {
		n.Entries[i] = Entry{
			Rect: geo.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+0:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+24:])),
			},
			Ref: binary.LittleEndian.Uint64(payload[off+32:]),
		}
		off += EntrySize
	}
	return nil
}

// NodeCapacity returns the maximum entry count a chunk with the given
// payload size can hold.
func NodeCapacity(payloadSize int) int {
	if payloadSize < headerSize {
		return 0
	}
	return (payloadSize - headerSize) / EntrySize
}
