package rtree

import (
	"sort"

	"github.com/catfish-db/catfish/internal/geo"
)

// reinsert implements R* forced reinsertion: remove the reinsertN entries
// whose centers lie farthest from the node's MBR center, publish the slimmed
// node, then re-insert the removed entries (closest first) with fresh
// descents from the root. The resulting redistribution is what gives the
// R*-tree its better-clustered nodes.
func (t *Tree) reinsert(p *path, d int) error {
	n := p.nodes[d]
	cx, cy := n.MBR().Center()
	type distEntry struct {
		e    Entry
		dist float64
	}
	all := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		ex, ey := e.Rect.Center()
		dx, dy := ex-cx, ey-cy
		all[i] = distEntry{e: e, dist: dx*dx + dy*dy}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].dist > all[b].dist })
	removed := make([]Entry, t.reinsertN)
	for i := 0; i < t.reinsertN; i++ {
		removed[i] = all[i].e
	}
	keep := n.Entries[:0]
	for _, de := range all[t.reinsertN:] {
		keep = append(keep, de.e)
	}
	n.Entries = keep
	if err := t.writeNode(p.ids[d], n); err != nil {
		return err
	}
	if err := t.adjustUp(p, d); err != nil {
		return err
	}
	level := n.Level
	// Close reinsert: the entry nearest the center goes first.
	for i := len(removed) - 1; i >= 0; i-- {
		if err := t.insertEntry(removed[i], level); err != nil {
			return err
		}
	}
	return nil
}

// split applies the R* split to the overflowing node at path depth d and
// installs the new sibling in the parent (growing the tree at the root).
func (t *Tree) split(p *path, d int) error {
	n := p.nodes[d]
	left, right := t.chooseSplit(n.Entries)

	if d == 0 {
		// Root split. The root chunk ID must stay stable (clients cache
		// it), so both halves move to fresh chunks and the root chunk is
		// rewritten as a two-entry internal node.
		leftID, err := t.reg.Alloc()
		if err != nil {
			return err
		}
		rightID, err := t.reg.Alloc()
		if err != nil {
			return err
		}
		leftNode := &Node{Level: n.Level, Entries: left}
		rightNode := &Node{Level: n.Level, Entries: right}
		if err := t.writeNode(leftID, leftNode); err != nil {
			return err
		}
		if err := t.writeNode(rightID, rightNode); err != nil {
			return err
		}
		root := &Node{
			Level: n.Level + 1,
			Entries: []Entry{
				{Rect: leftNode.MBR(), Ref: uint64(leftID)},
				{Rect: rightNode.MBR(), Ref: uint64(rightID)},
			},
		}
		if err := t.writeNode(t.rootChunk, root); err != nil {
			return err
		}
		t.height++
		return nil
	}

	rightID, err := t.reg.Alloc()
	if err != nil {
		return err
	}
	n.Entries = left
	rightNode := &Node{Level: n.Level, Entries: right}
	if err := t.writeNode(p.ids[d], n); err != nil {
		return err
	}
	if err := t.writeNode(rightID, rightNode); err != nil {
		return err
	}
	parent := p.nodes[d-1]
	parent.Entries[p.child[d-1]].Rect = n.MBR()
	parent.Entries = append(parent.Entries, Entry{Rect: rightNode.MBR(), Ref: uint64(rightID)})
	return t.finishInsert(p, d-1)
}

// chooseSplit implements the R* split: pick the axis with the least total
// margin over all candidate distributions, then the distribution on that
// axis with the least overlap (ties: least combined area). entries has
// maxEntries+1 elements; the returned slices are freshly allocated.
func (t *Tree) chooseSplit(entries []Entry) (left, right []Entry) {
	byX := append([]Entry(nil), entries...)
	byY := append([]Entry(nil), entries...)
	sort.SliceStable(byX, func(a, b int) bool {
		if byX[a].Rect.MinX != byX[b].Rect.MinX {
			return byX[a].Rect.MinX < byX[b].Rect.MinX
		}
		return byX[a].Rect.MaxX < byX[b].Rect.MaxX
	})
	sort.SliceStable(byY, func(a, b int) bool {
		if byY[a].Rect.MinY != byY[b].Rect.MinY {
			return byY[a].Rect.MinY < byY[b].Rect.MinY
		}
		return byY[a].Rect.MaxY < byY[b].Rect.MaxY
	})
	marginX := t.axisMarginSum(byX)
	marginY := t.axisMarginSum(byY)
	axis := byX
	if marginY < marginX {
		axis = byY
	}
	k := t.bestDistribution(axis)
	left = append([]Entry(nil), axis[:k]...)
	right = append([]Entry(nil), axis[k:]...)
	return left, right
}

// axisMarginSum computes the R* goodness metric for a sorted axis: the sum
// of left+right MBR margins over every legal split point.
func (t *Tree) axisMarginSum(sorted []Entry) float64 {
	n := len(sorted)
	prefix := prefixMBRs(sorted)
	suffix := suffixMBRs(sorted)
	var sum float64
	for k := t.minEntries; k <= n-t.minEntries; k++ {
		sum += prefix[k-1].Margin() + suffix[k].Margin()
	}
	return sum
}

// bestDistribution returns the split index k (left gets sorted[:k]) with
// minimal overlap between the two MBRs, ties broken by combined area.
func (t *Tree) bestDistribution(sorted []Entry) int {
	n := len(sorted)
	prefix := prefixMBRs(sorted)
	suffix := suffixMBRs(sorted)
	bestK := t.minEntries
	bestOverlap := prefix[bestK-1].OverlapArea(suffix[bestK])
	bestArea := prefix[bestK-1].Area() + suffix[bestK].Area()
	for k := t.minEntries + 1; k <= n-t.minEntries; k++ {
		ov := prefix[k-1].OverlapArea(suffix[k])
		area := prefix[k-1].Area() + suffix[k].Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	return bestK
}

func prefixMBRs(entries []Entry) []geo.Rect {
	out := make([]geo.Rect, len(entries))
	acc := entries[0].Rect
	out[0] = acc
	for i := 1; i < len(entries); i++ {
		acc = acc.Union(entries[i].Rect)
		out[i] = acc
	}
	return out
}

func suffixMBRs(entries []Entry) []geo.Rect {
	out := make([]geo.Rect, len(entries))
	acc := entries[len(entries)-1].Rect
	out[len(entries)-1] = acc
	for i := len(entries) - 2; i >= 0; i-- {
		acc = acc.Union(entries[i].Rect)
		out[i] = acc
	}
	return out
}
