package rtree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestNearestValidation(t *testing.T) {
	tree := newTestTree(t, 8, 8)
	if _, _, err := tree.Nearest(0, 0.5, 0.5); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, _, err := tree.Nearest(-3, 0.5, 0.5); !errors.Is(err, ErrBadK) {
		t.Errorf("negative k err = %v", err)
	}
	got, _, err := tree.Nearest(5, 0.5, 0.5)
	if err != nil || len(got) != 0 {
		t.Errorf("empty tree Nearest = %v, %v", got, err)
	}
}

func TestNearestBasic(t *testing.T) {
	tree := newTestTree(t, 64, 8)
	points := []struct {
		x, y float64
		ref  uint64
	}{
		{0.1, 0.1, 1}, {0.2, 0.2, 2}, {0.9, 0.9, 3}, {0.5, 0.5, 4},
	}
	for _, p := range points {
		if _, err := tree.Insert(geo.PointRect(p.x, p.y), p.ref); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tree.Nearest(2, 0.15, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Ref > 2 || got[1].Ref > 2 {
		t.Fatalf("nearest to (0.15, 0.15) = %+v", got)
	}
	if got[0].DistSq > got[1].DistSq {
		t.Error("results not in distance order")
	}
	// A query point inside a rectangle has distance zero.
	got, _, err = tree.Nearest(1, 0.9, 0.9)
	if err != nil || len(got) != 1 || got[0].Ref != 3 || got[0].DistSq != 0 {
		t.Fatalf("inside query = %+v, %v", got, err)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	tree := newTestTree(t, 4096, 16)
	rng := rand.New(rand.NewSource(12))
	const n = 5000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Rect: uniformRect(rng, 0.01), Ref: uint64(i)}
	}
	if err := tree.BulkLoad(append([]Entry(nil), entries...), 0); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		x, y := rng.Float64(), rng.Float64()
		k := 1 + rng.Intn(20)
		got, st, err := tree.Nearest(k, x, y)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		dists := make([]float64, n)
		for i, e := range entries {
			dists[i] = e.Rect.DistSqToPoint(x, y)
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		if len(got) != k {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), k)
		}
		for i := range got {
			if got[i].DistSq != sorted[i] {
				t.Fatalf("trial %d: result %d dist %v, want %v", trial, i, got[i].DistSq, sorted[i])
			}
		}
		// Best-first must not read the whole tree for small k.
		shape, _ := tree.Shape()
		if st.NodesRead >= shape.Nodes {
			t.Errorf("trial %d: kNN read every node (%d)", trial, st.NodesRead)
		}
	}
}

func TestDistSqToPoint(t *testing.T) {
	r := geo.NewRect(1, 1, 3, 2)
	tests := []struct {
		x, y, want float64
	}{
		{2, 1.5, 0},   // inside
		{0, 1.5, 1},   // left
		{4, 1.5, 1},   // right
		{2, 0, 1},     // below
		{2, 4, 4},     // above
		{0, 0, 2},     // corner (1 + 1)
		{1, 1, 0},     // on boundary
		{5, 4, 4 + 4}, // far corner
	}
	for _, tt := range tests {
		if got := r.DistSqToPoint(tt.x, tt.y); got != tt.want {
			t.Errorf("DistSq(%v, %v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}
