package kv

import (
	"errors"
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// kvBatchResult buffers one operation's outcome until the batch latch is
// released and the segmented batch response can be written.
type kvBatchResult struct {
	id     uint64
	status uint8
	pairs  []wire.KVPair
}

// handleBatch executes a batch container of KV requests under one latch
// acquisition and one CPU charge, mirroring the R-tree server: a batch
// carrying any write (put/delete) takes the exclusive latch, a read-only
// batch shares the read latch, and per-operation fixed costs beyond the
// first are amortized via CostModel.SearchDemandBatched.
func (s *Server) handleBatch(p *sim.Proc, c *conn, payload []byte) {
	it, err := wire.DecodeBatch(payload)
	if err != nil {
		s.respond(p, c, wire.KVResponse{Status: wire.StatusError, Final: true}, nil)
		return
	}
	reqs := c.batchReqs[:0]
	hasWrite := false
	for {
		msg, ok := it.Next()
		if !ok {
			break
		}
		req, err := wire.DecodeKVRequest(msg)
		if err != nil {
			req = wire.KVRequest{} // answered with an error response below
		} else if req.Type == wire.MsgKVPut || req.Type == wire.MsgKVDelete {
			hasWrite = true
		}
		reqs = append(reqs, req)
	}
	c.batchReqs = reqs
	if it.Err() != nil {
		s.respond(p, c, wire.KVResponse{Status: wire.StatusError, Final: true}, nil)
		return
	}
	if len(reqs) == 0 {
		return
	}
	s.stats.Batches++
	s.stats.BatchedOps += uint64(len(reqs))

	if hasWrite {
		s.latch.Lock(p)
		s.publishFrom(p)
	} else {
		s.latch.RLock(p)
	}
	h := s.tree.Height()
	var demand time.Duration
	res := c.batchRes[:0]
	for i, req := range reqs {
		out := kvBatchResult{id: req.ID, status: wire.StatusError}
		switch req.Type {
		case wire.MsgKVGet:
			s.stats.Gets++
			val, err := s.tree.Get(req.Key)
			demand += s.cfg.Cost.SearchDemandBatched(i, h, 1)
			switch {
			case errors.Is(err, btree.ErrNotFound):
				out.status = wire.StatusNotFound
			case err == nil:
				out.status = wire.StatusOK
				out.pairs = []wire.KVPair{{Key: req.Key, Val: val}}
			}

		case wire.MsgKVRange:
			s.stats.Ranges++
			var pairs []wire.KVPair
			err := s.tree.Range(req.Key, req.End, func(k, v uint64) bool {
				pairs = append(pairs, wire.KVPair{Key: k, Val: v})
				return true
			})
			s.stats.Pairs += uint64(len(pairs))
			demand += s.cfg.Cost.SearchDemandBatched(i, h+len(pairs)/s.tree.MaxEntries(), len(pairs))
			if err == nil {
				out.status = wire.StatusOK
				out.pairs = pairs
			}

		case wire.MsgKVPut:
			s.stats.Puts++
			err := s.tree.Update(req.Key, req.Val)
			if errors.Is(err, btree.ErrNotFound) {
				err = s.tree.Insert(req.Key, req.Val)
			}
			demand += s.cfg.Cost.SearchDemandBatched(i, h*2, 0)
			if err == nil {
				out.status = wire.StatusOK
			}

		case wire.MsgKVDelete:
			s.stats.Deletes++
			err := s.tree.Delete(req.Key)
			demand += s.cfg.Cost.SearchDemandBatched(i, h*2, 0)
			switch {
			case errors.Is(err, btree.ErrNotFound):
				out.status = wire.StatusNotFound
			case err == nil:
				out.status = wire.StatusOK
			}
		}
		res = append(res, out)
	}
	c.batchRes = res
	if hasWrite {
		s.publishP = nil
		s.latch.Unlock()
	} else {
		s.latch.RUnlock()
	}
	s.cfg.Host.CPU().Run(p, demand)
	s.respondBatch(p, c, res)
}

// respondBatch writes buffered batch results back as batch containers of
// KV response segments, flushing below the ring frame limit.
func (s *Server) respondBatch(p *sim.Proc, c *conn, res []kvBatchResult) {
	limit := 16 << 10
	if mp := c.respWriter.MaxPayload(); mp < limit {
		limit = mp
	}
	maxPairs := s.cfg.MaxSegmentPairs
	hdr := wire.KVResponse{}.EncodedSize()
	if fit := (limit - wire.BatchOverhead(1) - hdr) / 16; fit < maxPairs {
		maxPairs = fit
	}
	if maxPairs < 1 {
		maxPairs = 1
	}
	enc := &c.benc
	enc.Reset(c.encBuf[:0])
	flush := func() {
		if enc.Count() == 0 {
			return
		}
		if err := c.respWriter.Send(p, enc.Bytes(), 0, true); err != nil {
			panic(fmt.Sprintf("kv: batch response send failed: %v", err))
		}
		c.encBuf = enc.Buf[:0]
		enc.Reset(c.encBuf)
	}
	for _, r := range res {
		pairs := r.pairs
		for {
			seg := wire.KVResponse{ID: r.id, Status: r.status}
			if len(pairs) > maxPairs {
				seg.Pairs = pairs[:maxPairs]
				pairs = pairs[maxPairs:]
			} else {
				seg.Pairs = pairs
				pairs = nil
				seg.Final = true
			}
			if enc.Count() > 0 && enc.Len()+seg.EncodedSize()+wire.BatchOverhead(1) > limit {
				flush()
			}
			enc.Begin()
			enc.Buf = seg.Encode(enc.Buf)
			enc.End()
			if seg.Final {
				break
			}
		}
	}
	flush()
	c.encBuf = enc.Buf[:0]
}

// GetResult is the outcome of one batched Get, in submission order.
type GetResult struct {
	Method Method
	Val    uint64
	Err    error
}

// GetBatch executes point gets as one client batch: each key consults the
// adaptive switch individually; messaging-routed gets coalesce into a
// single batch container (one ring write, one server latch and charge)
// while offload-routed gets traverse the B+-tree one-sided, overlapped
// with the in-flight batch. A batch of one delegates to Get and is
// bit-for-bit identical to the unbatched client.
func (c *Client) GetBatch(p *sim.Proc, keys []uint64, results []GetResult) []GetResult {
	results = results[:0]
	for range keys {
		results = append(results, GetResult{})
	}
	if len(keys) == 0 {
		return results
	}
	if len(keys) == 1 {
		val, m, err := c.Get(p, keys[0])
		results[0] = GetResult{Method: m, Val: val, Err: err}
		return results
	}

	type fastOp struct {
		op int
		id uint64
	}
	var fast []fastOp
	var offload []int
	for i := range keys {
		if c.decide(p) == MethodOffload {
			c.stats.OffloadReads++
			results[i].Method = MethodOffload
			offload = append(offload, i)
		} else {
			c.stats.FastReads++
			results[i].Method = MethodFast
			fast = append(fast, fastOp{op: i})
		}
	}

	if len(fast) > 0 {
		enc := &c.benc
		enc.Reset(c.encBuf[:0])
		for j := range fast {
			fast[j].id = c.nextID()
			enc.Begin()
			enc.Buf = wire.KVRequest{Type: wire.MsgKVGet, ID: fast[j].id, Key: keys[fast[j].op]}.Encode(enc.Buf)
			enc.End()
		}
		payload := enc.Bytes()
		c.stats.BatchesSent++
		c.stats.BatchedOps += uint64(len(fast))
		if err := c.ep.ReqWriter.Send(p, payload, fast[0].id, true); err != nil {
			for _, f := range fast {
				results[f.op].Err = err
			}
			fast = nil
		}
		c.encBuf = enc.Buf[:0]
	}

	if len(offload) > 0 {
		c.proc = p
		c.syncLease()
		for _, i := range offload {
			val, err := c.reader.Get(keys[i])
			if errors.Is(err, btree.ErrNotFound) {
				err = ErrNotFound
			}
			results[i].Val = val
			results[i].Err = err
		}
		c.proc = nil
	}

	if len(fast) == 0 {
		return results
	}
	idx := make(map[uint64]int, len(fast))
	for _, f := range fast {
		idx[f.id] = f.op
	}
	remaining := len(fast)
	npairs := make([]int, len(results))
	handle := func(msg []byte) error {
		if len(msg) == 0 || wire.MsgType(msg[0]) != wire.MsgKVResponse {
			return nil // stray non-response message
		}
		resp, err := wire.DecodeKVResponse(msg)
		if err != nil {
			return err
		}
		i, ok := idx[resp.ID]
		if !ok {
			return nil // stale segment from an aborted exchange
		}
		if len(resp.Pairs) > 0 {
			results[i].Val = resp.Pairs[len(resp.Pairs)-1].Val
			npairs[i] += len(resp.Pairs)
		}
		if resp.Final {
			switch {
			case resp.Status == wire.StatusNotFound:
				results[i].Err = ErrNotFound
			case resp.Status != wire.StatusOK:
				results[i].Err = fmt.Errorf("%w: get status %d", ErrServer, resp.Status)
			case npairs[i] != 1:
				results[i].Err = fmt.Errorf("%w: malformed get response", ErrServer)
			}
			delete(idx, resp.ID)
			remaining--
		}
		return nil
	}
	fold := func(payload []byte) error {
		if len(payload) > 0 && wire.MsgType(payload[0]) == wire.MsgBatch {
			it, err := wire.DecodeBatch(payload)
			if err != nil {
				return err
			}
			for {
				msg, ok := it.Next()
				if !ok {
					break
				}
				if err := handle(msg); err != nil {
					return err
				}
			}
			return it.Err()
		}
		return handle(payload)
	}
	failAll := func(err error) {
		for _, i := range idx {
			if results[i].Err == nil {
				results[i].Err = err
			}
		}
	}
	for remaining > 0 {
		c.ep.RespReader.CQ().Pop(p)
		for {
			payload, err, ok := c.ep.RespReader.TryRecv()
			if err != nil {
				failAll(err)
				return results
			}
			if !ok {
				break
			}
			if err := fold(payload); err != nil {
				failAll(err)
				return results
			}
		}
		if err := c.ep.RespReader.ReportHead(p); err != nil {
			failAll(err)
			return results
		}
	}
	return results
}
