package kv

import (
	"errors"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/sim"
)

func TestGetBatchMatchesGet(t *testing.T) {
	// Batched point gets over the ring return exactly what the unbatched
	// client returns, present and absent keys alike, and a batch of one
	// delegates without shipping a container.
	r := newRig(t, rigOpts{keys: 2000})
	c := r.newClient(t, ClientConfig{Forced: MethodFast})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		var results []GetResult
		for round := 0; round < 5; round++ {
			var keys []uint64
			for j := 0; j < 8; j++ {
				k := uint64(round*97+j*13) % 2000
				if j%3 == 2 {
					keys = append(keys, k*2+1) // odd keys are absent
				} else {
					keys = append(keys, k*2)
				}
			}
			results = c.GetBatch(p, keys, results)
			for j, res := range results {
				if j%3 == 2 {
					if !errors.Is(res.Err, ErrNotFound) {
						t.Errorf("round %d absent key %d: err = %v, want ErrNotFound",
							round, keys[j], res.Err)
					}
					continue
				}
				if res.Err != nil || res.Val != keys[j]/2 {
					t.Errorf("round %d get %d = %d, %v", round, keys[j], res.Val, res.Err)
				}
				if res.Method != MethodFast {
					t.Errorf("round %d key %d: method %v", round, keys[j], res.Method)
				}
			}
		}
		results = c.GetBatch(p, []uint64{40}, results)
		if results[0].Err != nil || results[0].Val != 20 {
			t.Errorf("single-key batch = %+v", results[0])
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.srv.Stats()
	if st.Batches != 5 || st.BatchedOps != 40 {
		t.Errorf("server batch stats = %d/%d, want 5/40 (single-key batch must delegate)",
			st.Batches, st.BatchedOps)
	}
	if c.Stats().BatchesSent != 5 || c.Stats().BatchedOps != 40 {
		t.Errorf("client batch stats = %d/%d, want 5/40",
			c.Stats().BatchesSent, c.Stats().BatchedOps)
	}
}

func TestGetBatchOffloadRoutesOneSided(t *testing.T) {
	// With the switch pinned to offloading, batched gets traverse the
	// B+-tree with one-sided reads and no container is sent.
	r := newRig(t, rigOpts{keys: 1000})
	c := r.newClient(t, ClientConfig{Forced: MethodOffload})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		keys := []uint64{10, 200, 1999, 404}
		results := c.GetBatch(p, keys, nil)
		for j, res := range results {
			if keys[j]%2 == 1 {
				if !errors.Is(res.Err, ErrNotFound) {
					t.Errorf("absent key %d: %v", keys[j], res.Err)
				}
				continue
			}
			if res.Err != nil || res.Val != keys[j]/2 || res.Method != MethodOffload {
				t.Errorf("key %d = %+v", keys[j], res)
			}
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().BatchesSent != 0 {
		t.Errorf("offload-only batch sent %d containers", c.Stats().BatchesSent)
	}
	if c.Stats().OffloadReads != 4 {
		t.Errorf("offload reads = %d, want 4", c.Stats().OffloadReads)
	}
}

func TestGetBatchAdaptiveSplit(t *testing.T) {
	// Adaptive batched gets against a saturated one-core server: per-key
	// switch consultation splits the batch between messaging and
	// offloading, and the counts add up exactly.
	r := newRig(t, rigOpts{keys: 2000, heartbeat: time.Millisecond, cores: 1})
	var clients []*Client
	for i := 0; i < 8; i++ {
		clients = append(clients, r.newClient(t, ClientConfig{
			Adaptive:     true,
			HeartbeatInv: time.Millisecond,
			T:            0.5,
		}))
	}
	const rounds, batch = 40, 8
	wg := sim.NewWaitGroup(r.e)
	for ci, c := range clients {
		c, ci := c, ci
		wg.Add(1)
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer wg.Done()
			var keys []uint64
			var results []GetResult
			for j := 0; j < rounds; j++ {
				keys = keys[:0]
				for k := 0; k < batch; k++ {
					keys = append(keys, uint64((ci*1009+j*97+k*31)%2000)*2)
				}
				results = c.GetBatch(p, keys, results)
				for k, res := range results {
					if res.Err != nil || res.Val != keys[k]/2 {
						t.Errorf("round %d key %d = %+v", j, keys[k], res)
						return
					}
				}
			}
		})
	}
	r.e.Spawn("stopper", func(p *sim.Proc) {
		wg.Wait(p)
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	var fast, off, hb uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastReads
		off += st.OffloadReads
		hb += st.HeartbeatsSeen
	}
	if fast+off != 8*rounds*batch {
		t.Errorf("decide consulted %d times for %d gets (fast=%d off=%d)",
			fast+off, 8*rounds*batch, fast, off)
	}
	if hb == 0 {
		t.Fatal("no heartbeats observed")
	}
	if off == 0 || fast == 0 {
		t.Errorf("adaptive batched gets did not split: fast=%d off=%d", fast, off)
	}
}
