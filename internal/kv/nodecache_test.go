package kv

import (
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/sim"
)

func TestKVNodeCacheSavesFetches(t *testing.T) {
	// Two offload clients against one server: the cached one must answer
	// the same Gets with fewer full chunk reads and visible cache activity.
	r := newRig(t, rigOpts{keys: 2000, heartbeat: time.Millisecond})
	plain := r.newClient(t, ClientConfig{Forced: MethodOffload, HeartbeatInv: time.Millisecond})
	cached := r.newClient(t, ClientConfig{Forced: MethodOffload, HeartbeatInv: time.Millisecond, NodeCache: 128})
	var ps, cs ClientStats
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		for k := uint64(0); k < 2000; k += 13 {
			pv, _, perr := plain.Get(p, k*2)
			cv, _, cerr := cached.Get(p, k*2)
			if perr != nil || cerr != nil || pv != cv || cv != k {
				t.Errorf("get %d: plain=(%d,%v) cached=(%d,%v)", k*2, pv, perr, cv, cerr)
				return
			}
		}
		ps, cs = plain.Stats(), cached.Stats()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if cs.CacheHits+cs.CacheVerifiedHits == 0 {
		t.Error("kv node cache never hit")
	}
	if cs.CacheBytesSaved == 0 {
		t.Error("no bytes saved recorded")
	}
	t.Logf("cache: hits=%d verified=%d misses=%d versionReads=%d saved=%dB (plain offloads=%d)",
		cs.CacheHits, cs.CacheVerifiedHits, cs.CacheMisses, cs.VersionReads, cs.CacheBytesSaved, ps.OffloadReads)
}

func TestKVNodeCacheCoherentUnderWrites(t *testing.T) {
	// A fast-messaging writer updates and inserts (splitting leaves) while a
	// cached offload reader Gets; reads must always see their key's latest
	// committed value once the lease has expired, and never a wrong value.
	r := newRig(t, rigOpts{keys: 500, heartbeat: time.Millisecond, staged: true})
	writer := r.newClient(t, ClientConfig{Forced: MethodFast})
	reader := r.newClient(t, ClientConfig{Forced: MethodOffload, HeartbeatInv: time.Millisecond, NodeCache: 128})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		for round := uint64(1); round <= 3; round++ {
			// Insert a fresh batch (splits nodes) and rewrite one hot key.
			for k := uint64(0); k < 300; k++ {
				if err := writer.Put(p, 100_000*round+k, round); err != nil {
					t.Error(err)
					return
				}
			}
			if err := writer.Put(p, 42*2, round); err != nil {
				t.Error(err)
				return
			}
			// Let the lease lapse so the cache must revalidate.
			p.Sleep(2 * time.Millisecond)
			if v, _, err := reader.Get(p, 42*2); err != nil || v != round {
				t.Errorf("round %d: hot key = %d, %v (want %d)", round, v, err, round)
				return
			}
			if v, _, err := reader.Get(p, 100_000*round); err != nil || v != round {
				t.Errorf("round %d: new key = %d, %v", round, v, err)
				return
			}
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := reader.Stats()
	t.Logf("reader: hits=%d verified=%d misses=%d staleRestarts=%d",
		st.CacheHits, st.CacheVerifiedHits, st.CacheMisses, st.StaleRestarts)
}
