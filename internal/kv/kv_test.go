package kv

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
)

type rig struct {
	e    *sim.Engine
	net  *fabric.Network
	srv  *Server
	tree *btree.Tree
}

type rigOpts struct {
	keys      int
	heartbeat time.Duration
	staged    bool
	cores     int
}

func newRig(t testing.TB, o rigOpts) *rig {
	t.Helper()
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	cores := o.cores
	if cores == 0 {
		cores = 8
	}
	host := net.NewHost("server", sim.NewCPU(e, cores))
	reg, err := region.New(1<<14, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := btree.New(reg, btree.Config{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < o.keys; k++ {
		if err := tree.Insert(uint64(k)*2, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(ServerConfig{
		Engine: e, Host: host, Tree: tree,
		Cost:              netmodel.DefaultCostModel(),
		HeartbeatInterval: o.heartbeat,
		StagedNodeWrites:  o.staged,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, net: net, srv: srv, tree: tree}
}

func (r *rig) newClient(t testing.TB, cfg ClientConfig) *Client {
	t.Helper()
	host := r.net.NewHost("client", sim.NewCPU(r.e, 4))
	ep, err := r.srv.Connect(host, r.net, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = r.e
	cfg.Host = host
	cfg.Endpoint = ep
	if cfg.Cost == (netmodel.CostModel{}) {
		cfg.Cost = netmodel.DefaultCostModel()
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("empty client config should fail")
	}
}

func TestGetBothPathsAgree(t *testing.T) {
	for _, method := range []Method{MethodFast, MethodOffload} {
		r := newRig(t, rigOpts{keys: 2000})
		c := r.newClient(t, ClientConfig{Forced: method})
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer r.e.Stop()
			for k := uint64(0); k < 2000; k += 97 {
				v, used, err := c.Get(p, k*2)
				if err != nil || v != k {
					t.Errorf("get %d = %d, %v", k*2, v, err)
					return
				}
				if used != method {
					t.Errorf("used %v, want %v", used, method)
				}
			}
			if _, _, err := c.Get(p, 1); !errors.Is(err, ErrNotFound) {
				t.Errorf("odd key err = %v", err)
			}
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPutDeleteRange(t *testing.T) {
	r := newRig(t, rigOpts{keys: 100})
	c := r.newClient(t, ClientConfig{Forced: MethodFast})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		// Upsert new and existing keys.
		if err := c.Put(p, 9999, 1); err != nil {
			t.Error(err)
			return
		}
		if err := c.Put(p, 9999, 2); err != nil {
			t.Error(err)
			return
		}
		v, _, err := c.Get(p, 9999)
		if err != nil || v != 2 {
			t.Errorf("get after upsert = %d, %v", v, err)
			return
		}
		// Range over the base keys 0,2,...,198 plus 9999.
		var got []uint64
		if _, err := c.Range(p, 10, 20, func(k, _ uint64) bool {
			got = append(got, k)
			return true
		}); err != nil {
			t.Error(err)
			return
		}
		want := []uint64{10, 12, 14, 16, 18, 20}
		if len(got) != len(want) {
			t.Errorf("range got %v", got)
			return
		}
		if err := c.Delete(p, 9999); err != nil {
			t.Error(err)
			return
		}
		if err := c.Delete(p, 9999); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete err = %v", err)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().Puts != 2 || r.srv.Stats().Deletes != 2 {
		t.Errorf("server stats = %+v", r.srv.Stats())
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLargeRangeSegmented(t *testing.T) {
	r := newRig(t, rigOpts{keys: 3000})
	c := r.newClient(t, ClientConfig{Forced: MethodFast})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		count := 0
		if _, err := c.Range(p, 0, ^uint64(0), func(uint64, uint64) bool {
			count++
			return true
		}); err != nil {
			t.Error(err)
			return
		}
		if count != 3000 {
			t.Errorf("range count = %d", count)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveKVOffloadsUnderLoad(t *testing.T) {
	r := newRig(t, rigOpts{keys: 5000, heartbeat: time.Millisecond, cores: 1})
	var clients []*Client
	for i := 0; i < 8; i++ {
		clients = append(clients, r.newClient(t, ClientConfig{
			Adaptive: true, HeartbeatInv: time.Millisecond, T: 0.5,
		}))
	}
	wg := sim.NewWaitGroup(r.e)
	for i, c := range clients {
		c := c
		seed := int64(i)
		wg.Add(1)
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 400; j++ {
				k := uint64(rng.Intn(5000)) * 2
				v, _, err := c.Get(p, k)
				if err != nil || v != k/2 {
					t.Errorf("get %d = %d, %v", k, v, err)
					return
				}
			}
		})
	}
	r.e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); r.e.Stop() })
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	var fast, off, hb uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastReads
		off += st.OffloadReads
		hb += st.HeartbeatsSeen
	}
	if hb == 0 {
		t.Fatal("no heartbeats observed")
	}
	if off == 0 || fast == 0 {
		t.Errorf("adaptive KV did not mix paths: fast=%d off=%d", fast, off)
	}
}

func TestOffloadReadsSurviveWrites(t *testing.T) {
	r := newRig(t, rigOpts{keys: 3000, staged: true})
	writer := r.newClient(t, ClientConfig{Forced: MethodFast})
	reader := r.newClient(t, ClientConfig{Forced: MethodOffload})
	wg := sim.NewWaitGroup(r.e)
	wg.Add(2)
	r.e.Spawn("writer", func(p *sim.Proc) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 400; i++ {
			if err := writer.Put(p, uint64(100_000+rng.Intn(10_000)), uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.e.Spawn("reader", func(p *sim.Proc) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(3000)) * 2
			v, _, err := reader.Get(p, k)
			if err != nil || v != k/2 {
				t.Errorf("get %d = %d, %v", k, v, err)
				return
			}
		}
	})
	r.e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); r.e.Stop() })
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("torn retries: %d, stale restarts: %d",
		reader.Stats().TornRetries, reader.Stats().StaleRestarts)
}

func TestRangeOffloadPath(t *testing.T) {
	r := newRig(t, rigOpts{keys: 500})
	c := r.newClient(t, ClientConfig{Forced: MethodOffload})
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		var got []uint64
		m, err := c.Range(p, 100, 140, func(k, v uint64) bool {
			if v != k/2 {
				t.Errorf("range pair %d = %d", k, v)
			}
			got = append(got, k)
			return true
		})
		if err != nil || m != MethodOffload {
			t.Errorf("range err=%v method=%v", err, m)
			return
		}
		if len(got) != 21 { // even keys 100..140
			t.Errorf("range got %d keys: %v", len(got), got)
		}
		// Early stop through the offload path.
		count := 0
		if _, err := c.Range(p, 0, 1000, func(uint64, uint64) bool {
			count++
			return count < 3
		}); err != nil {
			t.Error(err)
		}
		if count != 3 {
			t.Errorf("early stop count = %d", count)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
