// Package kv is the paper's §VI framework claim made concrete end to end:
// a key-value service built from exactly the Catfish triad — RDMA-Write
// fast messaging through ring buffers, one-sided offloaded traversal of a
// region-resident B+-tree, and the adaptive Algorithm 1 switch driven by
// server CPU heartbeats — with none of the machinery specific to R-trees.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/ringbuf"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// ServerConfig configures a KV server.
type ServerConfig struct {
	Engine *sim.Engine
	Host   *fabric.Host
	Tree   *btree.Tree
	Cost   netmodel.CostModel
	// HeartbeatInterval between utilization pushes (0 disables, which also
	// disables adaptive clients).
	HeartbeatInterval time.Duration
	// RingSize per direction (0 selects 256 KB).
	RingSize int
	// StagedNodeWrites opens torn-read windows on node publishes.
	StagedNodeWrites bool
	// MaxSegmentPairs caps pairs per response segment (0 selects ~4 KB).
	MaxSegmentPairs int
}

// ServerStats aggregates server-side counters.
type ServerStats struct {
	Gets    uint64
	Puts    uint64
	Deletes uint64
	Ranges  uint64
	Pairs   uint64
	// Batches counts batch containers executed; BatchedOps the operations
	// they carried (each also counted in its per-type counter above).
	Batches    uint64
	BatchedOps uint64
}

// Server serves a B+-tree key-value store over the simulated fabric. Like
// the R-tree server it is event-based: workers block on completion-queue
// events and the CPU is work-conserving.
type Server struct {
	cfg        ServerConfig
	e          *sim.Engine
	tree       *btree.Tree
	latch      *sim.RWLock
	conns      []*conn
	regionMem  *fabric.RegionMemory
	regionVers *fabric.RegionVersions
	publishP   *sim.Proc
	stats      ServerStats
}

type conn struct {
	id         int
	reqReader  *ringbuf.Reader
	respWriter *ringbuf.Writer
	hbMem      *fabric.Memory

	// Reused batch scratch state (one worker per conn, so never shared).
	batchReqs []wire.KVRequest
	batchRes  []kvBatchResult
	benc      wire.BatchEncoder
	encBuf    []byte
}

// Endpoint is the client's connection handle.
type Endpoint struct {
	ConnID     int
	ReqWriter  *ringbuf.Writer
	RespReader *ringbuf.Reader
	DataQP     *fabric.QP
	RegionMem  *fabric.RegionMemory
	RegionVers *fabric.RegionVersions
	HeartbeatM *fabric.Memory
	RootChunk  int
	ChunkSize  int
	MaxEntries int
}

// NewServer creates a KV server over tree.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Engine == nil || cfg.Host == nil || cfg.Tree == nil {
		return nil, errors.New("kv: Engine, Host and Tree are required")
	}
	if cfg.Host.CPU() == nil {
		return nil, errors.New("kv: server host needs a CPU")
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 256 << 10
	}
	if cfg.MaxSegmentPairs == 0 {
		cfg.MaxSegmentPairs = 4096 / 16
	}
	s := &Server{
		cfg:   cfg,
		e:     cfg.Engine,
		tree:  cfg.Tree,
		latch: sim.NewRWLock(cfg.Engine),
	}
	s.regionMem = cfg.Host.RegisterRegion(cfg.Tree.Region())
	s.regionVers = cfg.Host.RegisterRegionVersions(cfg.Tree.Region())
	if cfg.StagedNodeWrites {
		cfg.Tree.SetPublisher(s.stagedPublish)
	}
	if cfg.HeartbeatInterval > 0 {
		s.e.Spawn("kv-server-heartbeat", s.heartbeatLoop)
	}
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Tree returns the served B+-tree.
func (s *Server) Tree() *btree.Tree { return s.tree }

// Connect attaches a client host: request/response rings, a data QP for
// one-sided reads, and a heartbeat mailbox; a worker process serves the
// connection.
func (s *Server) Connect(clientHost *fabric.Host, net *fabric.Network, dataSQDepth int) (*Endpoint, error) {
	id := len(s.conns)
	reqW, reqR, err := buildRing(net, clientHost, s.cfg.Host, s.cfg.RingSize)
	if err != nil {
		return nil, fmt.Errorf("kv: request ring: %w", err)
	}
	respW, respR, err := buildRing(net, s.cfg.Host, clientHost, s.cfg.RingSize)
	if err != nil {
		return nil, fmt.Errorf("kv: response ring: %w", err)
	}
	dataQP, _ := net.ConnectQP(clientHost, s.cfg.Host, dataSQDepth)
	hbMem := clientHost.RegisterMemory(server.HeartbeatMailboxSize)

	c := &conn{id: id, reqReader: reqR, respWriter: respW, hbMem: hbMem}
	s.conns = append(s.conns, c)
	s.e.Spawn(fmt.Sprintf("kv-worker-%d", id), func(p *sim.Proc) {
		s.serve(p, c)
	})
	return &Endpoint{
		ConnID:     id,
		ReqWriter:  reqW,
		RespReader: respR,
		DataQP:     dataQP,
		RegionMem:  s.regionMem,
		RegionVers: s.regionVers,
		HeartbeatM: hbMem,
		RootChunk:  s.tree.RootChunk(),
		ChunkSize:  s.tree.Region().ChunkSize(),
		MaxEntries: s.tree.MaxEntries(),
	}, nil
}

func buildRing(net *fabric.Network, from, to *fabric.Host, size int) (*ringbuf.Writer, *ringbuf.Reader, error) {
	wqp, rqp := net.ConnectQP(from, to, 0)
	return ringbuf.New(wqp, rqp, size)
}

func (s *Server) serve(p *sim.Proc, c *conn) {
	for {
		c.reqReader.CQ().Pop(p)
		for {
			payload, err, ok := c.reqReader.TryRecv()
			if err != nil {
				panic(fmt.Sprintf("kv: ring corrupt on conn %d: %v", c.id, err))
			}
			if !ok {
				break
			}
			if len(payload) > 0 && wire.MsgType(payload[0]) == wire.MsgBatch {
				s.handleBatch(p, c, payload)
				continue
			}
			req, err := wire.DecodeKVRequest(payload)
			if err != nil {
				s.respond(p, c, wire.KVResponse{Status: wire.StatusError, Final: true}, nil)
				continue
			}
			s.handle(p, c, req)
		}
		if err := c.reqReader.ReportHead(p); err != nil {
			panic(fmt.Sprintf("kv: head report failed: %v", err))
		}
	}
}

// charge accounts the operation's CPU service: the B+-tree touches ~height
// nodes per point op plus the serialized result pairs.
func (s *Server) charge(p *sim.Proc, nodes, pairs int) {
	demand := s.cfg.Cost.SearchDemand(nodes, pairs)
	s.cfg.Host.CPU().Run(p, demand)
}

func (s *Server) handle(p *sim.Proc, c *conn, req wire.KVRequest) {
	switch req.Type {
	case wire.MsgKVGet:
		s.stats.Gets++
		s.latch.RLock(p)
		val, err := s.tree.Get(req.Key)
		s.latch.RUnlock()
		s.charge(p, s.tree.Height(), 1)
		switch {
		case errors.Is(err, btree.ErrNotFound):
			s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusNotFound, Final: true}, nil)
		case err != nil:
			s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
		default:
			s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusOK, Final: true},
				[]wire.KVPair{{Key: req.Key, Val: val}})
		}

	case wire.MsgKVPut:
		s.stats.Puts++
		s.latch.Lock(p)
		s.publishFrom(p)
		err := s.tree.Update(req.Key, req.Val)
		if errors.Is(err, btree.ErrNotFound) {
			err = s.tree.Insert(req.Key, req.Val)
		}
		s.publishP = nil
		s.latch.Unlock()
		s.charge(p, s.tree.Height()*2, 0)
		status := wire.StatusOK
		if err != nil {
			status = wire.StatusError
		}
		s.respond(p, c, wire.KVResponse{ID: req.ID, Status: status, Final: true}, nil)

	case wire.MsgKVDelete:
		s.stats.Deletes++
		s.latch.Lock(p)
		s.publishFrom(p)
		err := s.tree.Delete(req.Key)
		s.publishP = nil
		s.latch.Unlock()
		s.charge(p, s.tree.Height()*2, 0)
		status := wire.StatusOK
		switch {
		case errors.Is(err, btree.ErrNotFound):
			status = wire.StatusNotFound
		case err != nil:
			status = wire.StatusError
		}
		s.respond(p, c, wire.KVResponse{ID: req.ID, Status: status, Final: true}, nil)

	case wire.MsgKVRange:
		s.stats.Ranges++
		var pairs []wire.KVPair
		s.latch.RLock(p)
		err := s.tree.Range(req.Key, req.End, func(k, v uint64) bool {
			pairs = append(pairs, wire.KVPair{Key: k, Val: v})
			return true
		})
		s.latch.RUnlock()
		s.stats.Pairs += uint64(len(pairs))
		s.charge(p, s.tree.Height()+len(pairs)/s.tree.MaxEntries(), len(pairs))
		if err != nil {
			s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
			return
		}
		s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusOK}, pairs)

	default:
		s.respond(p, c, wire.KVResponse{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
	}
}

// publishFrom arms the staged publisher for the current request context.
func (s *Server) publishFrom(p *sim.Proc) {
	if s.cfg.StagedNodeWrites {
		s.publishP = p
	}
}

func (s *Server) stagedPublish(chunkID int, payload []byte) error {
	if s.publishP == nil {
		return s.tree.Region().WriteChunkPrefix(chunkID, payload)
	}
	w, err := s.tree.Region().BeginWrite(chunkID, payload)
	if err != nil {
		return err
	}
	s.publishP.Sleep(s.cfg.Cost.PerNodeWrite)
	w.Finish()
	return nil
}

func (s *Server) respond(p *sim.Proc, c *conn, resp wire.KVResponse, pairs []wire.KVPair) {
	max := s.cfg.MaxSegmentPairs
	for {
		seg := wire.KVResponse{ID: resp.ID, Status: resp.Status}
		if len(pairs) > max {
			seg.Pairs = pairs[:max]
			pairs = pairs[max:]
		} else {
			seg.Pairs = pairs
			pairs = nil
			seg.Final = true
		}
		if err := c.respWriter.Send(p, seg.Encode(nil), 0, true); err != nil {
			panic(fmt.Sprintf("kv: response send failed: %v", err))
		}
		if seg.Final {
			return
		}
	}
}

// heartbeatLoop mirrors the R-tree server's: utilization plus the root
// version, written into every client's mailbox.
func (s *Server) heartbeatLoop(p *sim.Proc) {
	for {
		p.Sleep(s.cfg.HeartbeatInterval)
		util := s.cfg.Host.CPU().UtilizationWindow()
		if util < 1e-6 {
			util = 1e-6
		}
		var buf [server.HeartbeatMailboxSize]byte
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(util))
		if rootVer, err := s.tree.Region().Version(s.tree.RootChunk()); err == nil {
			binary.LittleEndian.PutUint64(buf[8:], rootVer)
		}
		for _, c := range s.conns {
			qp := c.respWriter.QP()
			if err := qp.Write(p, c.hbMem, 0, buf[:], fabric.WriteOpts{}); err != nil {
				panic(fmt.Sprintf("kv: heartbeat write failed: %v", err))
			}
		}
	}
}
