package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/btree"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// Method identifies how a read executed.
type Method int

// Read methods.
const (
	MethodFast Method = iota + 1
	MethodOffload
)

// Errors.
var (
	ErrServer   = errors.New("kv: server reported an error")
	ErrNotFound = errors.New("kv: key not found")
)

// ClientConfig configures a KV client.
type ClientConfig struct {
	Engine   *sim.Engine
	Host     *fabric.Host
	Endpoint *Endpoint
	Cost     netmodel.CostModel

	// Adaptive runs Algorithm 1 for reads; otherwise Forced applies.
	Adaptive bool
	Forced   Method
	// N, T, HeartbeatInv, PredSmoothing parametrize the switch.
	N             int
	T             float64
	HeartbeatInv  time.Duration
	PredSmoothing float64

	// NodeCache is the capacity (in nodes) of the client-side cache of
	// internal B+-tree nodes used by the offloaded read path; 0 disables
	// it. Entries are lease-fresh for one HeartbeatInv after validation
	// and revalidated by version-only reads afterwards.
	NodeCache int
}

// ClientStats counts client events.
type ClientStats struct {
	FastReads      uint64
	OffloadReads   uint64
	Puts           uint64
	Deletes        uint64
	TornRetries    uint64
	StaleRestarts  uint64
	HeartbeatsSeen uint64
	// BatchesSent counts GetBatch containers; BatchedOps the gets they
	// carried (each also counted in FastReads).
	BatchesSent uint64
	BatchedOps  uint64

	// Node-cache counters (all zero when the cache is disabled).
	VersionReads      uint64
	CacheHits         uint64
	CacheVerifiedHits uint64
	CacheMisses       uint64
	CacheEvictions    uint64
	CacheBytesSaved   uint64
}

// Client is one key-value client: writes travel by fast messaging (the
// server's lock discipline covers them), reads switch adaptively between
// fast messaging and one-sided B+-tree traversal.
type Client struct {
	cfg    ClientConfig
	ep     *Endpoint
	sw     *adaptive.Switch
	reader *btree.Reader
	proc   *sim.Proc // bound during reader fetches

	ncache    *nodecache.Cache
	hbRootVer uint64 // root version last observed in the heartbeat mailbox

	reqID  uint64
	encBuf []byte
	benc   wire.BatchEncoder
	stats  ClientStats
}

// NewClient validates the configuration and returns a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Engine == nil || cfg.Host == nil || cfg.Endpoint == nil {
		return nil, errors.New("kv: Engine, Host and Endpoint are required")
	}
	if !cfg.Adaptive && cfg.Forced == 0 {
		cfg.Forced = MethodFast
	}
	c := &Client{cfg: cfg, ep: cfg.Endpoint}
	c.sw = adaptive.New(adaptive.Config{
		N:             cfg.N,
		T:             cfg.T,
		Inv:           cfg.HeartbeatInv,
		PredSmoothing: cfg.PredSmoothing,
	}, cfg.Engine.Rand())
	c.reader = &btree.Reader{
		Fetch:      c.fetchChunk,
		RootChunk:  cfg.Endpoint.RootChunk,
		MaxEntries: cfg.Endpoint.MaxEntries,
	}
	if cfg.NodeCache > 0 && cfg.Endpoint.RegionVers != nil {
		c.ncache = nodecache.New(cfg.NodeCache, cfg.HeartbeatInv,
			cfg.Endpoint.ChunkSize, cfg.Endpoint.RegionVers.VersionsSize())
		c.reader.Cache = c.ncache
		c.reader.FetchVersions = c.fetchVersions
		c.reader.Now = func() time.Duration { return c.proc.Now() }
		c.reader.Charge = func() {
			if cpu := c.cfg.Host.CPU(); cpu != nil {
				cpu.Run(c.proc, c.cfg.Cost.ClientTraversalDemand(1))
			}
		}
	}
	return c, nil
}

// Stats returns a snapshot of the counters.
func (c *Client) Stats() ClientStats {
	out := c.stats
	out.HeartbeatsSeen = c.sw.HeartbeatsSeen
	out.TornRetries = c.reader.TornRetries
	out.StaleRestarts = c.reader.StaleRestarts
	out.VersionReads = c.reader.VersionReads
	ns := c.ncache.Stats()
	out.CacheHits = ns.Hits
	out.CacheVerifiedHits = ns.VerifiedHits
	out.CacheMisses = ns.Misses
	out.CacheEvictions = ns.Evictions
	out.CacheBytesSaved = ns.BytesSaved
	return out
}

func (c *Client) nextID() uint64 {
	c.reqID++
	return c.reqID
}

// fetchChunk is the btree.Reader transport hook: a one-sided RDMA Read of
// one region chunk, charged lightly to the client CPU.
func (c *Client) fetchChunk(id int) ([]byte, error) {
	p := c.proc
	raw, err := c.ep.DataQP.ReadSync(p, c.ep.RegionMem,
		id*c.ep.ChunkSize, c.ep.ChunkSize)
	if err != nil {
		return nil, err
	}
	if cpu := c.cfg.Host.CPU(); cpu != nil {
		cpu.Run(p, c.cfg.Cost.ClientTraversalDemand(1))
	}
	return raw, nil
}

func (c *Client) readHeartbeat() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.ep.HeartbeatM.Bytes()))
}

// fetchVersions is the btree.Reader revalidation hook: a version-only
// one-sided read of a chunk's cacheline version words.
func (c *Client) fetchVersions(id int) ([]byte, error) {
	rv := c.ep.RegionVers
	return c.ep.DataQP.ReadSync(c.proc, rv, rv.VersionsOffset(id), rv.VersionsSize())
}

// syncLease demotes every cached node to the Verify tier whenever the
// heartbeat mailbox shows a root version we have not seen: the tree grew (or
// shrank) a level, so leases issued before the change are suspect.
func (c *Client) syncLease() {
	if c.ncache == nil {
		return
	}
	b := c.ep.HeartbeatM.Bytes()
	if len(b) < 16 {
		return
	}
	if ver := binary.LittleEndian.Uint64(b[8:16]); ver != c.hbRootVer {
		c.hbRootVer = ver
		c.ncache.DemoteAll()
	}
}

func (c *Client) clearHeartbeat() {
	b := c.ep.HeartbeatM.Bytes()
	for i := 0; i < 8 && i < len(b); i++ {
		b[i] = 0
	}
}

func (c *Client) decide(p *sim.Proc) Method {
	if c.cfg.Adaptive {
		if c.sw.Decide(p.Now(), c.readHeartbeat, c.clearHeartbeat) {
			return MethodOffload
		}
		return MethodFast
	}
	return c.cfg.Forced
}

// Get returns the value stored under key, adaptively choosing fast
// messaging or offloaded traversal.
func (c *Client) Get(p *sim.Proc, key uint64) (uint64, Method, error) {
	m := c.decide(p)
	if m == MethodOffload {
		c.stats.OffloadReads++
		c.proc = p
		defer func() { c.proc = nil }()
		c.syncLease()
		val, err := c.reader.Get(key)
		if errors.Is(err, btree.ErrNotFound) {
			return 0, m, ErrNotFound
		}
		return val, m, err
	}
	c.stats.FastReads++
	resp, err := c.roundTrip(p, wire.KVRequest{Type: wire.MsgKVGet, ID: c.nextID(), Key: key})
	if err != nil {
		return 0, m, err
	}
	switch resp.Status {
	case wire.StatusOK:
		if len(resp.Pairs) != 1 {
			return 0, m, fmt.Errorf("%w: malformed get response", ErrServer)
		}
		return resp.Pairs[0].Val, m, nil
	case wire.StatusNotFound:
		return 0, m, ErrNotFound
	default:
		return 0, m, fmt.Errorf("%w: get status %d", ErrServer, resp.Status)
	}
}

// Range invokes fn for every key in [from, to] in ascending order,
// adaptively choosing the read path.
func (c *Client) Range(p *sim.Proc, from, to uint64, fn func(key, val uint64) bool) (Method, error) {
	m := c.decide(p)
	if m == MethodOffload {
		c.stats.OffloadReads++
		c.proc = p
		defer func() { c.proc = nil }()
		c.syncLease()
		return m, c.reader.Range(from, to, fn)
	}
	c.stats.FastReads++
	resp, err := c.roundTrip(p, wire.KVRequest{Type: wire.MsgKVRange, ID: c.nextID(), Key: from, End: to})
	if err != nil {
		return m, err
	}
	if resp.Status != wire.StatusOK {
		return m, fmt.Errorf("%w: range status %d", ErrServer, resp.Status)
	}
	for _, kvp := range resp.Pairs {
		if !fn(kvp.Key, kvp.Val) {
			break
		}
	}
	return m, nil
}

// Put upserts key -> val (always fast messaging, like R-tree writes).
func (c *Client) Put(p *sim.Proc, key, val uint64) error {
	c.stats.Puts++
	resp, err := c.roundTrip(p, wire.KVRequest{Type: wire.MsgKVPut, ID: c.nextID(), Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("%w: put status %d", ErrServer, resp.Status)
	}
	return nil
}

// Delete removes key.
func (c *Client) Delete(p *sim.Proc, key uint64) error {
	c.stats.Deletes++
	resp, err := c.roundTrip(p, wire.KVRequest{Type: wire.MsgKVDelete, ID: c.nextID(), Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	default:
		return fmt.Errorf("%w: delete status %d", ErrServer, resp.Status)
	}
}

// roundTrip performs one fast-messaging exchange, folding segments.
func (c *Client) roundTrip(p *sim.Proc, req wire.KVRequest) (wire.KVResponse, error) {
	c.encBuf = req.Encode(c.encBuf[:0])
	if err := c.ep.ReqWriter.Send(p, c.encBuf, req.ID, true); err != nil {
		return wire.KVResponse{}, err
	}
	var out wire.KVResponse
	for {
		c.ep.RespReader.CQ().Pop(p)
		done, err := c.drain(req.ID, &out)
		if rerr := c.ep.RespReader.ReportHead(p); rerr != nil {
			return out, rerr
		}
		if err != nil {
			return out, err
		}
		if done {
			return out, nil
		}
	}
}

func (c *Client) drain(id uint64, out *wire.KVResponse) (bool, error) {
	done := false
	for {
		payload, err, ok := c.ep.RespReader.TryRecv()
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		resp, err := wire.DecodeKVResponse(payload)
		if err != nil {
			return done, err
		}
		if resp.ID != id {
			continue
		}
		out.ID = resp.ID
		out.Status = resp.Status
		out.Pairs = append(out.Pairs, resp.Pairs...)
		if resp.Final {
			out.Final = true
			done = true
		}
	}
}
