// Package server implements the Catfish R-tree server.
//
// The server owns the R*-tree (stored in the RDMA-registered region) and
// serves three kinds of traffic:
//
//   - fast-messaging requests arriving in per-connection ring buffers via
//     RDMA Write, processed by a worker thread per connection and answered
//     with RDMA Writes into the client's response ring (§III-A);
//   - one-sided RDMA Reads against the region, which bypass the server CPU
//     entirely (§III-B) — the server's only involvement is publishing node
//     writes with bumped cacheline versions;
//   - kernel-TCP requests for the socket baselines (§V).
//
// Worker threads run in one of two notification modes (§IV-B): event-based
// (block on the completion-queue event channel, yielding the CPU — modelled
// by a processor-sharing CPU) or polling-based (burn cycles watching the
// ring — modelled by a round-robin polling CPU whose idle threads tax their
// core-mates). A heartbeat process publishes the server's windowed CPU
// utilization to every client's heartbeat mailbox each interval (§IV-A).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/ringbuf"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// Mode selects the worker notification mechanism.
type Mode int

// Server modes.
const (
	// ModeEvent is event-based fast messaging: workers block on the CQ
	// event channel and the CPU is work-conserving.
	ModeEvent Mode = iota + 1
	// ModePolling is the FaRM-baseline polling design: workers busy-poll
	// their rings, paying the oversubscription tax of Fig 7.
	ModePolling
)

// Config configures a Server.
type Config struct {
	Engine *sim.Engine
	Host   *fabric.Host // server host; its CPU serves event-mode work
	Tree   *rtree.Tree
	Cost   netmodel.CostModel
	Mode   Mode
	// PollCPU must be set in ModePolling.
	PollCPU *sim.PollCPU
	// HeartbeatInterval is the heartbeat period (paper: 10 ms). Zero
	// disables heartbeats (the baselines don't use them).
	HeartbeatInterval time.Duration
	// RingSize is the per-direction ring-buffer size (paper: 256 KB).
	RingSize int
	// StagedNodeWrites publishes tree node writes across a virtual-time
	// window (one cacheline half at a time) so concurrent RDMA readers
	// can observe genuinely torn reads. The window is PerNodeWrite long.
	StagedNodeWrites bool
	// MaxSegmentItems caps result items per response segment (CONT/END
	// framing); 0 selects a segment of ~4 KB.
	MaxSegmentItems int

	// FetchSlots > 0 enables the RFP-style fetch access method: the server
	// registers a dedicated mailbox region of FetchSlots result slots and
	// answers MsgSearchFetch requests with (slot, length, version)
	// descriptors instead of streaming the items back (PAPERS.md,
	// arXiv:1512.07805). Zero disables fetch; MsgSearchFetch then degrades
	// to inline delivery.
	FetchSlots int
	// FetchSlotChunks is the chunks per mailbox slot (0 selects 64, which
	// holds ~5600 result items at the default 4 KB chunk geometry).
	FetchSlotChunks int
	// FetchInlineMax is the result count at or below which a fetch search
	// falls back to inline delivery — small results are cheaper to send
	// than to pull (0 selects MaxSegmentItems: anything fitting one
	// response segment stays inline).
	FetchInlineMax int

	// Metrics, when non-nil, exposes the server counters and the
	// heartbeat-published utilization on the registry under
	// catfish_server_* names.
	Metrics *telemetry.Registry

	// Replica, when non-nil, arms the availability subsystem on this
	// server: epoch fencing, op-log sequencing, and rejection of client
	// writes while the state says backup (StatusNotPrimary). Nil leaves
	// every path bit-for-bit identical to an unreplicated server.
	Replica *replica.State
	// Replicate, when non-nil, ships one applied mutation to the shard's
	// backups. A primary invokes it under the exclusive tree latch, before
	// the write is acknowledged, so an acked write is on every live backup
	// (synchronous replication — the sim stand-in for the one-sided
	// dirty-span write plus op-log record of DESIGN.md §5.11). A non-nil
	// error is surfaced to the client as the corresponding status.
	Replicate func(p *sim.Proc, rec replica.Record) error
}

// Stats aggregates server-side counters. The server mutates them with
// atomic operations so Stats() may be called from outside the simulation
// (progress meters, tests under -race) while workers run.
type Stats struct {
	Searches  uint64
	Inserts   uint64
	Deletes   uint64
	Results   uint64
	Heartbeat uint64
	Segments  uint64
	// Moves counts MsgMove requests (single-latch delete+insert); KNNs
	// counts MsgKNN/MsgKNNFetch nearest-neighbor queries.
	Moves uint64
	KNNs  uint64
	// Batches counts batch containers executed; BatchedOps the operations
	// they carried (single-latch, single-charge fast-messaging batching).
	Batches    uint64
	BatchedOps uint64
	// FetchSearches counts MsgSearchFetch requests; FetchInline the subset
	// answered inline (small result, no free slot, or fetch disabled);
	// FetchBytes the payload bytes delivered through mailbox slots.
	FetchSearches uint64
	FetchInline   uint64
	FetchBytes    uint64
	// Promotions counts accepted MsgPromote requests; ReplRecords the
	// replicated mutations applied on this server as a backup.
	Promotions  uint64
	ReplRecords uint64
}

// Server is the Catfish R-tree server.
type Server struct {
	cfg   Config
	e     *sim.Engine
	tree  *rtree.Tree
	latch *sim.RWLock
	conns []*conn
	stats Stats

	regionMem  *fabric.RegionMemory
	regionVers *fabric.RegionVersions
	publishP   *sim.Proc // process context for staged publishes

	// Fetch mailbox: a dedicated registered region divided into result
	// slots (nil when FetchSlots is zero).
	mailbox    *region.Mailbox
	mailboxMem *fabric.RegionMemory

	hbSeq      uint64 // heartbeat sequence number (mailbox word 2)
	hbPaused   atomic.Bool
	killed     atomic.Bool
	lastUtil   telemetry.Gauge // utilization as last published by heartbeatLoop
	lastTXUtil telemetry.Gauge // TX (send engine) utilization as last published
	hbTXBytes  uint64          // send-engine bytes at the previous heartbeat
	hbTXTime   time.Duration   // virtual time of the previous heartbeat
}

// conn is the server side of one client connection.
type conn struct {
	id         int
	reqReader  *ringbuf.Reader
	respWriter *ringbuf.Writer
	hbMem      *fabric.Memory // on the client host
	thread     *sim.PollThread
	tcp        *fabric.TCPConn

	// Reused batch-execution state (one worker per conn, so no locking).
	batchReqs []wire.Request
	batchRes  []batchResult
	benc      wire.BatchEncoder
	encBuf    []byte
}

// batchResult is one operation's outcome, buffered until the whole batch
// has executed and the latch is released. A fetch-delivered search carries
// its mailbox descriptor instead of items.
type batchResult struct {
	id      uint64
	status  uint8
	items   []wire.Item
	desc    wire.FetchDesc
	hasDesc bool
}

// Endpoint is what a client needs to talk to the server; returned by
// Connect. Fields are consumed by internal/client.
type Endpoint struct {
	ConnID     int
	ReqWriter  *ringbuf.Writer // client -> server requests
	RespReader *ringbuf.Reader // server -> client responses
	DataQP     *fabric.QP      // client endpoint for one-sided reads
	RegionMem  *fabric.RegionMemory
	RegionVers *fabric.RegionVersions // version-only view for cache revalidation
	HeartbeatM *fabric.Memory         // client-local heartbeat mailbox
	RootChunk  int
	ChunkSize  int
	MaxEntries int
	TCP        *fabric.TCPConn // client endpoint (TCP mode only)

	// Fetch access method (nil/0 when the server has no mailbox): the
	// mailbox region for one-sided result pulls, a dedicated QP so pull
	// completions never interleave with traversal reads, and the slot
	// geometry locating slot i at chunk i×FetchSlotChunks.
	MailboxMem      *fabric.RegionMemory
	FetchQP         *fabric.QP
	FetchSlotChunks int
}

// New creates a server and installs its staged-write publisher when
// configured. The tree must have been created against the same region that
// clients will read.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil || cfg.Host == nil || cfg.Tree == nil {
		return nil, errors.New("server: Engine, Host and Tree are required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeEvent
	}
	if cfg.Mode == ModePolling && cfg.PollCPU == nil {
		return nil, errors.New("server: ModePolling requires PollCPU")
	}
	if cfg.Mode == ModeEvent && cfg.Host.CPU() == nil {
		return nil, errors.New("server: ModeEvent requires a host CPU")
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 256 << 10
	}
	if cfg.MaxSegmentItems == 0 {
		cfg.MaxSegmentItems = 4096 / wire.ItemSize
	}
	if cfg.FetchSlotChunks == 0 {
		cfg.FetchSlotChunks = 64
	}
	if cfg.FetchInlineMax == 0 {
		cfg.FetchInlineMax = cfg.MaxSegmentItems
	}
	s := &Server{
		cfg:   cfg,
		e:     cfg.Engine,
		tree:  cfg.Tree,
		latch: sim.NewRWLock(cfg.Engine),
	}
	s.regionMem = cfg.Host.RegisterRegion(cfg.Tree.Region())
	s.regionVers = cfg.Host.RegisterRegionVersions(cfg.Tree.Region())
	if cfg.FetchSlots > 0 {
		mreg, err := region.New(cfg.FetchSlots*cfg.FetchSlotChunks, cfg.Tree.Region().ChunkSize())
		if err != nil {
			return nil, fmt.Errorf("server: mailbox region: %w", err)
		}
		s.mailbox, err = region.NewMailbox(mreg, cfg.FetchSlots, cfg.FetchSlotChunks)
		if err != nil {
			return nil, fmt.Errorf("server: mailbox: %w", err)
		}
		s.mailboxMem = cfg.Host.RegisterRegion(mreg)
	}
	if cfg.StagedNodeWrites {
		cfg.Tree.SetPublisher(s.stagedPublish)
	}
	if cfg.HeartbeatInterval > 0 {
		s.e.Spawn("server-heartbeat", s.heartbeatLoop)
	}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("catfish_server_fast_searches_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Searches) })
		reg.CounterFunc("catfish_server_inserts_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Inserts) })
		reg.CounterFunc("catfish_server_deletes_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Deletes) })
		reg.CounterFunc("catfish_server_moves_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Moves) })
		reg.CounterFunc("catfish_server_knn_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.KNNs) })
		reg.CounterFunc("catfish_server_results_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Results) })
		reg.CounterFunc("catfish_server_heartbeats_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Heartbeat) })
		reg.CounterFunc("catfish_server_segments_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Segments) })
		reg.CounterFunc("catfish_server_batches_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.Batches) })
		reg.CounterFunc("catfish_server_batched_ops_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.BatchedOps) })
		reg.GaugeFunc("catfish_server_utilization", s.lastUtil.Load)
		reg.GaugeFunc("catfish_server_tx_utilization", s.lastTXUtil.Load)
		reg.CounterFunc("catfish_server_fetch_searches_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.FetchSearches) })
		reg.CounterFunc("catfish_server_fetch_inline_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.FetchInline) })
		reg.CounterFunc("catfish_server_fetch_bytes_total",
			func() uint64 { return atomic.LoadUint64(&s.stats.FetchBytes) })
		if s.mailbox != nil {
			reg.CounterFunc("catfish_server_fetch_exhausted_total", s.mailbox.Exhausted)
			reg.GaugeFunc("catfish_server_mailbox_slots_used", func() float64 {
				used, _ := s.mailbox.Occupancy()
				return float64(used)
			})
			reg.GaugeFunc("catfish_server_mailbox_slots_total", func() float64 {
				_, total := s.mailbox.Occupancy()
				return float64(total)
			})
		}
	}
	return s, nil
}

// Stats returns a snapshot of the server counters, safe to call while the
// simulation runs.
func (s *Server) Stats() Stats {
	return Stats{
		Searches:   atomic.LoadUint64(&s.stats.Searches),
		Inserts:    atomic.LoadUint64(&s.stats.Inserts),
		Deletes:    atomic.LoadUint64(&s.stats.Deletes),
		Results:    atomic.LoadUint64(&s.stats.Results),
		Heartbeat:  atomic.LoadUint64(&s.stats.Heartbeat),
		Segments:   atomic.LoadUint64(&s.stats.Segments),
		Moves:      atomic.LoadUint64(&s.stats.Moves),
		KNNs:       atomic.LoadUint64(&s.stats.KNNs),
		Batches:    atomic.LoadUint64(&s.stats.Batches),
		BatchedOps: atomic.LoadUint64(&s.stats.BatchedOps),

		FetchSearches: atomic.LoadUint64(&s.stats.FetchSearches),
		FetchInline:   atomic.LoadUint64(&s.stats.FetchInline),
		FetchBytes:    atomic.LoadUint64(&s.stats.FetchBytes),

		Promotions:  atomic.LoadUint64(&s.stats.Promotions),
		ReplRecords: atomic.LoadUint64(&s.stats.ReplRecords),
	}
}

// Mailbox exposes the fetch mailbox (nil when fetch is disabled) for
// instrumentation.
func (s *Server) Mailbox() *region.Mailbox { return s.mailbox }

// Tree returns the served tree (the harness pre-loads it).
func (s *Server) Tree() *rtree.Tree { return s.tree }

// Latch exposes the tree latch for test instrumentation.
func (s *Server) Latch() *sim.RWLock { return s.latch }

// Connect establishes an RDMA connection from clientHost: two ring buffers
// (requests, responses), a data QP for one-sided reads with the given send
// queue depth, and a heartbeat mailbox. A worker process is spawned to
// serve the connection.
func (s *Server) Connect(clientHost *fabric.Host, net *fabric.Network, dataSQDepth int) (*Endpoint, error) {
	id := len(s.conns)
	reqW, reqR, err := buildRing(net, clientHost, s.cfg.Host, s.cfg.RingSize)
	if err != nil {
		return nil, fmt.Errorf("server: request ring: %w", err)
	}
	respW, respR, err := buildRing(net, s.cfg.Host, clientHost, s.cfg.RingSize)
	if err != nil {
		return nil, fmt.Errorf("server: response ring: %w", err)
	}
	dataQP, _ := net.ConnectQP(clientHost, s.cfg.Host, dataSQDepth)
	hbMem := clientHost.RegisterMemory(HeartbeatMailboxSize)

	c := &conn{id: id, reqReader: reqR, respWriter: respW, hbMem: hbMem}
	if s.cfg.Mode == ModePolling {
		c.thread = s.cfg.PollCPU.Register()
	}
	s.conns = append(s.conns, c)
	s.e.Spawn(fmt.Sprintf("server-worker-%d", id), func(p *sim.Proc) {
		s.serveRDMA(p, c)
	})
	ep := &Endpoint{
		ConnID:     id,
		ReqWriter:  reqW,
		RespReader: respR,
		DataQP:     dataQP,
		RegionMem:  s.regionMem,
		RegionVers: s.regionVers,
		HeartbeatM: hbMem,
		RootChunk:  s.tree.RootChunk(),
		ChunkSize:  s.tree.Region().ChunkSize(),
		MaxEntries: s.tree.MaxEntries(),
	}
	if s.mailbox != nil {
		fetchQP, _ := net.ConnectQP(clientHost, s.cfg.Host, dataSQDepth)
		ep.MailboxMem = s.mailboxMem
		ep.FetchQP = fetchQP
		ep.FetchSlotChunks = s.cfg.FetchSlotChunks
	}
	return ep, nil
}

// ConnectTCP establishes a kernel-TCP connection and spawns its worker.
func (s *Server) ConnectTCP(clientHost *fabric.Host, net *fabric.Network) (*Endpoint, error) {
	id := len(s.conns)
	cEnd, sEnd := net.DialTCP(clientHost, s.cfg.Host)
	// TCP clients get a heartbeat mailbox too (needed for shard liveness
	// tracking); with no QP to write through, the heartbeat loop fills it
	// directly, modeling an out-of-band datagram.
	hbMem := clientHost.RegisterMemory(HeartbeatMailboxSize)
	c := &conn{id: id, tcp: sEnd, hbMem: hbMem}
	if s.cfg.Mode == ModePolling {
		return nil, errors.New("server: TCP workers are always event-based (blocking recv)")
	}
	s.conns = append(s.conns, c)
	s.e.Spawn(fmt.Sprintf("server-tcp-worker-%d", id), func(p *sim.Proc) {
		s.serveTCP(p, c)
	})
	return &Endpoint{ConnID: id, TCP: cEnd, HeartbeatM: hbMem}, nil
}

// buildRing creates a ring carrying data from -> to over a fresh QP pair.
func buildRing(net *fabric.Network, from, to *fabric.Host, size int) (*ringbuf.Writer, *ringbuf.Reader, error) {
	wqp, rqp := net.ConnectQP(from, to, 0)
	return ringbuf.New(wqp, rqp, size)
}

// serveRDMA is the per-connection worker loop. In both modes it sleeps on
// the CQ (costless in simulation); the difference is how request processing
// is charged: event mode runs demands on the work-conserving CPU, polling
// mode routes them through the connection's polling thread, which adds the
// scheduling phase and per-rotation poll tax of the polling design.
func (s *Server) serveRDMA(p *sim.Proc, c *conn) {
	for {
		c.reqReader.CQ().Pop(p)
		for {
			payload, err, ok := c.reqReader.TryRecv()
			if err != nil {
				panic(fmt.Sprintf("server: ring corrupt on conn %d: %v", c.id, err))
			}
			if !ok {
				break
			}
			s.dispatch(p, c, payload)
		}
		if err := c.reqReader.ReportHead(p); err != nil {
			panic(fmt.Sprintf("server: head report failed: %v", err))
		}
	}
}

// serveTCP is the blocking-recv TCP worker loop.
func (s *Server) serveTCP(p *sim.Proc, c *conn) {
	for {
		s.dispatch(p, c, c.tcp.Recv(p))
	}
}

// dispatch routes one incoming message: a batch container or a single
// request.
func (s *Server) dispatch(p *sim.Proc, c *conn, payload []byte) {
	if len(payload) > 0 && wire.MsgType(payload[0]) == wire.MsgBatch {
		s.handleBatch(p, c, payload)
		return
	}
	if len(payload) > 0 && wire.MsgType(payload[0]) == wire.MsgFetchAck {
		// Fire-and-forget slot release; a malformed or stale ack is dropped.
		if ack, err := wire.DecodeFetchAck(payload); err == nil && s.mailbox != nil {
			s.mailbox.Reclaim(int(ack.Slot), ack.Seq)
		}
		return
	}
	req, err := wire.DecodeRequest(payload)
	if err != nil {
		s.respond(p, c, wire.Response{Status: wire.StatusError, Final: true}, nil)
		return
	}
	s.handle(p, c, req)
}

// charge accounts CPU service for a request on this connection.
func (s *Server) charge(p *sim.Proc, c *conn, demand time.Duration) {
	if s.cfg.Mode == ModePolling {
		c.thread.Process(p, demand)
		return
	}
	s.cfg.Host.CPU().Run(p, demand)
}

// handle executes one request and sends the response.
func (s *Server) handle(p *sim.Proc, c *conn, req wire.Request) {
	if s.killed.Load() {
		// A killed server still answers — a silently dropped request would
		// wedge the discrete-event simulation — but refuses all work.
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusUnavailable, Final: true}, nil)
		return
	}
	switch req.Type {
	case wire.MsgSearch:
		atomic.AddUint64(&s.stats.Searches, 1)
		s.latch.RLock(p)
		items, st, err := s.searchCollect(req.Rect)
		s.latch.RUnlock()
		if err != nil {
			s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
			return
		}
		atomic.AddUint64(&s.stats.Results, uint64(len(items)))
		s.charge(p, c, s.cfg.Cost.SearchDemand(st.NodesRead, st.Results))
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusOK}, items)

	case wire.MsgSearchFetch:
		atomic.AddUint64(&s.stats.Searches, 1)
		atomic.AddUint64(&s.stats.FetchSearches, 1)
		s.latch.RLock(p)
		items, st, err := s.searchCollect(req.Rect)
		s.latch.RUnlock()
		if err != nil {
			s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
			return
		}
		atomic.AddUint64(&s.stats.Results, uint64(len(items)))
		if desc, ok := s.tryMailboxDeliver(items); ok {
			// Mailbox delivery: the per-item cost drops to a memcpy and the
			// response is a FetchDescSize-byte descriptor; the client's
			// one-sided pull is served by the NIC responder engine.
			s.charge(p, c, s.cfg.Cost.FetchDemand(st.NodesRead, st.Results))
			desc.ID = req.ID
			s.send(p, c, desc.Encode(nil))
			return
		}
		// Inline fallback: small result, oversized result, exhausted
		// mailbox, or fetch disabled — same path as a plain search.
		atomic.AddUint64(&s.stats.FetchInline, 1)
		s.charge(p, c, s.cfg.Cost.SearchDemand(st.NodesRead, st.Results))
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusOK}, items)

	case wire.MsgInsert:
		atomic.AddUint64(&s.stats.Inserts, 1)
		s.latch.Lock(p)
		status := wire.StatusOK
		var st rtree.OpStats
		if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
			status = wire.StatusNotPrimary
		} else {
			var err error
			st, err = s.insertStaged(p, req.Rect, req.Ref)
			if err != nil {
				status = wire.StatusError
			} else if rerr := s.replicate(p, wire.MsgInsert, req.Rect, req.Ref); rerr != nil {
				status = replStatus(rerr)
			}
		}
		s.latch.Unlock()
		s.charge(p, c, s.cfg.Cost.InsertDemand(st.NodesRead, st.NodesWritten))
		s.respond(p, c, wire.Response{ID: req.ID, Status: status, Final: true}, nil)

	case wire.MsgDelete:
		atomic.AddUint64(&s.stats.Deletes, 1)
		s.latch.Lock(p)
		status := wire.StatusOK
		var st rtree.OpStats
		if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
			status = wire.StatusNotPrimary
		} else {
			ok, dst, err := s.tree.Delete(req.Rect, req.Ref)
			st = dst
			switch {
			case err != nil:
				status = wire.StatusError
			case !ok:
				status = wire.StatusNotFound
			default:
				if rerr := s.replicate(p, wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
					status = replStatus(rerr)
				}
			}
		}
		s.latch.Unlock()
		s.charge(p, c, s.cfg.Cost.InsertDemand(st.NodesRead, st.NodesWritten))
		s.respond(p, c, wire.Response{ID: req.ID, Status: status, Final: true}, nil)

	case wire.MsgMove:
		atomic.AddUint64(&s.stats.Moves, 1)
		s.latch.Lock(p)
		status := wire.StatusOK
		var st rtree.OpStats
		if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
			status = wire.StatusNotPrimary
		} else {
			st, status = s.moveLocked(p, req)
		}
		s.latch.Unlock()
		s.charge(p, c, s.cfg.Cost.InsertDemand(st.NodesRead, st.NodesWritten))
		s.respond(p, c, wire.Response{ID: req.ID, Status: status, Final: true}, nil)

	case wire.MsgKNN:
		atomic.AddUint64(&s.stats.KNNs, 1)
		s.latch.RLock(p)
		items, st, err := s.knnCollect(req)
		s.latch.RUnlock()
		if err != nil {
			s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
			return
		}
		atomic.AddUint64(&s.stats.Results, uint64(len(items)))
		s.charge(p, c, s.cfg.Cost.SearchDemand(st.NodesRead, st.Results))
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusOK}, items)

	case wire.MsgKNNFetch:
		atomic.AddUint64(&s.stats.KNNs, 1)
		atomic.AddUint64(&s.stats.FetchSearches, 1)
		s.latch.RLock(p)
		items, st, err := s.knnCollect(req)
		s.latch.RUnlock()
		if err != nil {
			s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
			return
		}
		atomic.AddUint64(&s.stats.Results, uint64(len(items)))
		// Mailbox packing preserves item order, so ascending-distance order
		// survives the slot write and the client's one-sided pull.
		if desc, ok := s.tryMailboxDeliver(items); ok {
			s.charge(p, c, s.cfg.Cost.FetchDemand(st.NodesRead, st.Results))
			desc.ID = req.ID
			s.send(p, c, desc.Encode(nil))
			return
		}
		atomic.AddUint64(&s.stats.FetchInline, 1)
		s.charge(p, c, s.cfg.Cost.SearchDemand(st.NodesRead, st.Results))
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusOK}, items)

	case wire.MsgPromote:
		// Failover control plane: adopt req.Ref as the shard's new epoch and
		// start accepting client writes. Riding the Request frame keeps the
		// message inside the existing demux on both transports.
		status := wire.StatusOK
		if s.cfg.Replica == nil {
			status = wire.StatusError
		} else if s.cfg.Replica.Promote(req.Ref) {
			atomic.AddUint64(&s.stats.Promotions, 1)
		}
		s.respond(p, c, wire.Response{ID: req.ID, Status: status, Final: true}, nil)

	default:
		s.respond(p, c, wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}, nil)
	}
}

// handleBatch executes a batch container under one latch acquisition and
// one CPU charge: a batch carrying any write takes the exclusive latch,
// a read-only batch shares the read latch. Results are buffered until the
// latch is released, billed as a single charge whose per-operation fixed
// costs are amortized (CostModel.BatchedOpFixed), and written back as
// segmented batch responses.
func (s *Server) handleBatch(p *sim.Proc, c *conn, payload []byte) {
	it, err := wire.DecodeBatch(payload)
	if err != nil {
		s.respond(p, c, wire.Response{Status: wire.StatusError, Final: true}, nil)
		return
	}
	reqs := c.batchReqs[:0]
	hasWrite := false
	for {
		msg, ok := it.Next()
		if !ok {
			break
		}
		req, err := wire.DecodeRequest(msg)
		if err != nil {
			req = wire.Request{} // answered with an error response below
		} else if req.Type != wire.MsgSearch && req.Type != wire.MsgSearchFetch &&
			req.Type != wire.MsgKNN && req.Type != wire.MsgKNNFetch {
			hasWrite = true
		}
		reqs = append(reqs, req)
	}
	c.batchReqs = reqs
	if it.Err() != nil {
		s.respond(p, c, wire.Response{Status: wire.StatusError, Final: true}, nil)
		return
	}
	if len(reqs) == 0 {
		return
	}
	if s.killed.Load() {
		res := c.batchRes[:0]
		for _, req := range reqs {
			res = append(res, batchResult{id: req.ID, status: wire.StatusUnavailable})
		}
		c.batchRes = res
		s.respondBatch(p, c, res)
		return
	}
	atomic.AddUint64(&s.stats.Batches, 1)
	atomic.AddUint64(&s.stats.BatchedOps, uint64(len(reqs)))

	if hasWrite {
		s.latch.Lock(p)
	} else {
		s.latch.RLock(p)
	}
	var demand time.Duration
	res := c.batchRes[:0]
	for i, req := range reqs {
		out := batchResult{id: req.ID, status: wire.StatusError}
		switch req.Type {
		case wire.MsgSearch:
			atomic.AddUint64(&s.stats.Searches, 1)
			items, st, err := s.searchCollect(req.Rect)
			if err == nil {
				out.status = wire.StatusOK
				out.items = items
				atomic.AddUint64(&s.stats.Results, uint64(len(items)))
				demand += s.cfg.Cost.SearchDemandBatched(i, st.NodesRead, st.Results)
			}
		case wire.MsgSearchFetch:
			atomic.AddUint64(&s.stats.Searches, 1)
			atomic.AddUint64(&s.stats.FetchSearches, 1)
			items, st, err := s.searchCollect(req.Rect)
			if err == nil {
				out.status = wire.StatusOK
				atomic.AddUint64(&s.stats.Results, uint64(len(items)))
				if desc, ok := s.tryMailboxDeliver(items); ok {
					desc.ID = req.ID
					out.desc, out.hasDesc = desc, true
					demand += s.cfg.Cost.FetchDemandBatched(i, st.NodesRead, st.Results)
				} else {
					atomic.AddUint64(&s.stats.FetchInline, 1)
					out.items = items
					demand += s.cfg.Cost.SearchDemandBatched(i, st.NodesRead, st.Results)
				}
			}
		case wire.MsgKNN:
			atomic.AddUint64(&s.stats.KNNs, 1)
			items, st, err := s.knnCollect(req)
			if err == nil {
				out.status = wire.StatusOK
				out.items = items
				atomic.AddUint64(&s.stats.Results, uint64(len(items)))
				demand += s.cfg.Cost.SearchDemandBatched(i, st.NodesRead, st.Results)
			}
		case wire.MsgKNNFetch:
			atomic.AddUint64(&s.stats.KNNs, 1)
			atomic.AddUint64(&s.stats.FetchSearches, 1)
			items, st, err := s.knnCollect(req)
			if err == nil {
				out.status = wire.StatusOK
				atomic.AddUint64(&s.stats.Results, uint64(len(items)))
				if desc, ok := s.tryMailboxDeliver(items); ok {
					desc.ID = req.ID
					out.desc, out.hasDesc = desc, true
					demand += s.cfg.Cost.FetchDemandBatched(i, st.NodesRead, st.Results)
				} else {
					atomic.AddUint64(&s.stats.FetchInline, 1)
					out.items = items
					demand += s.cfg.Cost.SearchDemandBatched(i, st.NodesRead, st.Results)
				}
			}
		case wire.MsgMove:
			atomic.AddUint64(&s.stats.Moves, 1)
			if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
				out.status = wire.StatusNotPrimary
				break
			}
			st, status := s.moveLocked(p, req)
			out.status = status
			demand += s.cfg.Cost.InsertDemandBatched(i, st.NodesRead, st.NodesWritten)
		case wire.MsgInsert:
			atomic.AddUint64(&s.stats.Inserts, 1)
			if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
				out.status = wire.StatusNotPrimary
				break
			}
			st, err := s.insertStaged(p, req.Rect, req.Ref)
			if err == nil {
				out.status = wire.StatusOK
				if rerr := s.replicate(p, wire.MsgInsert, req.Rect, req.Ref); rerr != nil {
					out.status = replStatus(rerr)
				}
			}
			demand += s.cfg.Cost.InsertDemandBatched(i, st.NodesRead, st.NodesWritten)
		case wire.MsgDelete:
			atomic.AddUint64(&s.stats.Deletes, 1)
			if s.cfg.Replica != nil && !s.cfg.Replica.Primary() {
				out.status = wire.StatusNotPrimary
				break
			}
			ok, st, err := s.tree.Delete(req.Rect, req.Ref)
			switch {
			case err != nil:
			case !ok:
				out.status = wire.StatusNotFound
			default:
				out.status = wire.StatusOK
				if rerr := s.replicate(p, wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
					out.status = replStatus(rerr)
				}
			}
			demand += s.cfg.Cost.InsertDemandBatched(i, st.NodesRead, st.NodesWritten)
		}
		res = append(res, out)
	}
	c.batchRes = res
	if hasWrite {
		s.latch.Unlock()
	} else {
		s.latch.RUnlock()
	}
	s.charge(p, c, demand)
	s.respondBatch(p, c, res)
}

// respondBatch writes buffered batch results back as batch containers of
// response segments. Each operation keeps its own CONT/END segmentation
// inside the container; containers flush below the transport frame limit
// so a large batch response never exceeds what one ring frame may carry.
func (s *Server) respondBatch(p *sim.Proc, c *conn, res []batchResult) {
	limit := 16 << 10
	if c.respWriter != nil {
		if mp := c.respWriter.MaxPayload(); mp < limit {
			limit = mp
		}
	}
	maxItems := s.cfg.MaxSegmentItems
	hdr := wire.Response{}.EncodedSize()
	if fit := (limit - wire.BatchOverhead(1) - hdr) / wire.ItemSize; fit < maxItems {
		maxItems = fit
	}
	if maxItems < 1 {
		maxItems = 1
	}
	enc := &c.benc
	enc.Reset(c.encBuf[:0])
	flush := func() {
		if enc.Count() == 0 {
			return
		}
		s.send(p, c, enc.Bytes())
		c.encBuf = enc.Buf[:0]
		enc.Reset(c.encBuf)
	}
	for _, r := range res {
		if r.hasDesc {
			// Fetch-delivered: one descriptor sub-message replaces the
			// response segments.
			if enc.Count() > 0 && enc.Len()+wire.FetchDescSize+wire.BatchOverhead(1) > limit {
				flush()
			}
			enc.Begin()
			enc.Buf = r.desc.Encode(enc.Buf)
			enc.End()
			continue
		}
		items := r.items
		for {
			seg := wire.Response{ID: r.id, Status: r.status}
			if len(items) > maxItems {
				seg.Items = items[:maxItems]
				items = items[maxItems:]
			} else {
				seg.Items = items
				items = nil
				seg.Final = true
			}
			if enc.Count() > 0 && enc.Len()+seg.EncodedSize()+wire.BatchOverhead(1) > limit {
				flush()
			}
			enc.Begin()
			enc.Buf = seg.Encode(enc.Buf)
			enc.End()
			atomic.AddUint64(&s.stats.Segments, 1)
			if seg.Final {
				break
			}
		}
	}
	flush()
	c.encBuf = enc.Buf[:0]
}

// tryMailboxDeliver attempts mailbox delivery of a fetch search's result:
// grant a slot, write the packed items under a fresh sequence number, and
// return the descriptor. It declines (inline fallback) when the result is
// small enough that sending beats pulling, when no slot is free, when the
// payload exceeds slot capacity, or when fetch is disabled.
func (s *Server) tryMailboxDeliver(items []wire.Item) (wire.FetchDesc, bool) {
	if s.mailbox == nil || len(items) <= s.cfg.FetchInlineMax {
		return wire.FetchDesc{}, false
	}
	if len(items)*wire.ItemSize > s.mailbox.Capacity() {
		return wire.FetchDesc{}, false
	}
	slot, ok := s.mailbox.Grant()
	if !ok {
		return wire.FetchDesc{}, false
	}
	ref, err := s.mailbox.WriteResult(slot, wire.EncodeItems(nil, items))
	if err != nil {
		s.mailbox.Cancel(slot)
		return wire.FetchDesc{}, false
	}
	atomic.AddUint64(&s.stats.FetchBytes, uint64(ref.Bytes))
	return wire.FetchDesc{
		Status: wire.StatusOK,
		Slot:   uint32(ref.Slot),
		Bytes:  uint32(ref.Bytes),
		Count:  uint32(len(items)),
		Seq:    ref.Seq,
	}, true
}

// moveLocked relocates entry (req.Rect, req.Ref) to (req.Rect2, req.Ref).
// The caller holds the exclusive tree latch, so no concurrent search can
// observe the object absent between the delete and the insert. A missing
// source entry degrades the move to a plain insert — exactly the state the
// equivalent delete-then-insert stream reaches, since a failed delete does
// not suppress the insert that follows it. The fixed ReplRecord layout
// carries one rectangle, so a move replicates as two op-log records
// (delete, then insert) under the same latch hold; a backup read may
// observe the inter-record gap, which replication already tolerates for
// unbatched delete+insert pairs.
func (s *Server) moveLocked(p *sim.Proc, req wire.Request) (rtree.OpStats, uint8) {
	deleted, st, err := s.tree.Delete(req.Rect, req.Ref)
	if err != nil {
		return st, wire.StatusError
	}
	if deleted {
		if rerr := s.replicate(p, wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
			return st, replStatus(rerr)
		}
	}
	ist, err := s.insertStaged(p, req.Rect2, req.Ref)
	st.NodesRead += ist.NodesRead
	st.NodesWritten += ist.NodesWritten
	if err != nil {
		return st, wire.StatusError
	}
	if rerr := s.replicate(p, wire.MsgInsert, req.Rect2, req.Ref); rerr != nil {
		return st, replStatus(rerr)
	}
	return st, wire.StatusOK
}

// knnCollect runs the k-nearest-neighbor query encoded in req (the query
// point is Rect's center, Ref carries k), returning the neighbors as
// response items in ascending distance order.
func (s *Server) knnCollect(req wire.Request) ([]wire.Item, rtree.OpStats, error) {
	x, y := req.Rect.Center()
	nbrs, st, err := s.tree.Nearest(int(req.Ref), x, y)
	if err != nil {
		return nil, st, err
	}
	items := make([]wire.Item, len(nbrs))
	for i, nb := range nbrs {
		items[i] = wire.Item{Rect: nb.Rect, Ref: nb.Ref}
	}
	return items, st, nil
}

// searchCollect runs the search, collecting items.
func (s *Server) searchCollect(q geo.Rect) ([]wire.Item, rtree.OpStats, error) {
	var items []wire.Item
	st, err := s.tree.Search(q, func(r geo.Rect, ref uint64) bool {
		items = append(items, wire.Item{Rect: r, Ref: ref})
		return true
	})
	return items, st, err
}

// insertStaged runs the insert; when StagedNodeWrites is on, each node
// publish is spread over the PerNodeWrite window via a staged region write,
// opening a real torn-read window for concurrent one-sided readers.
func (s *Server) insertStaged(p *sim.Proc, r geo.Rect, ref uint64) (rtree.OpStats, error) {
	if s.cfg.StagedNodeWrites {
		s.publishP = p
		defer func() { s.publishP = nil }()
	}
	return s.tree.Insert(r, ref)
}

// stagedPublish is the tree publisher installed under StagedNodeWrites:
// inside a request it holds the torn window open for the PerNodeWrite cost;
// outside requests (bulk loading) it publishes atomically.
func (s *Server) stagedPublish(chunkID int, payload []byte) error {
	if s.publishP == nil {
		return s.tree.Region().WriteChunkPrefix(chunkID, payload)
	}
	w, err := s.tree.Region().BeginWrite(chunkID, payload)
	if err != nil {
		return err
	}
	s.publishP.Sleep(s.cfg.Cost.PerNodeWrite)
	w.Finish()
	return nil
}

// respond sends the response, segmenting large result sets with the
// CONT/END scheme (Final marks the last segment).
func (s *Server) respond(p *sim.Proc, c *conn, resp wire.Response, items []wire.Item) {
	max := s.cfg.MaxSegmentItems
	for {
		seg := wire.Response{ID: resp.ID, Status: resp.Status}
		if len(items) > max {
			seg.Items = items[:max]
			items = items[max:]
		} else {
			seg.Items = items
			items = nil
			seg.Final = true
		}
		atomic.AddUint64(&s.stats.Segments, 1)
		s.send(p, c, seg.Encode(nil))
		if seg.Final {
			return
		}
	}
}

// send transmits an encoded message over the connection's transport.
func (s *Server) send(p *sim.Proc, c *conn, payload []byte) {
	if c.tcp != nil {
		c.tcp.Send(p, payload)
		return
	}
	if err := c.respWriter.Send(p, payload, 0, true); err != nil {
		panic(fmt.Sprintf("server: response send failed: %v", err))
	}
}

// HeartbeatMailboxSize is the registered per-client heartbeat mailbox:
// word 0 carries the utilization (u_serv), word 1 the root chunk's region
// version, which lets root-caching clients invalidate within one heartbeat
// interval of a root rewrite, word 2 a sequence number incremented per
// heartbeat write so liveness trackers can detect arrivals (Algorithm 1's
// clear-after-read convention zeroes only word 0, and non-adaptive clients
// never clear at all, so the utilization word cannot signal arrival), and
// word 3 the send-engine (TX NIC) utilization feeding the 3-way switch's
// TX predictor. Decoders tolerate the pre-fetch 24-byte layout — a short
// mailbox simply reads as TX utilization zero (see DecodeHeartbeatMailbox).
const HeartbeatMailboxSize = 32

// HeartbeatMailboxSizeLegacy is the pre-fetch mailbox layout without the
// TX word, kept for layout-compatibility tests and mixed-version runs.
const HeartbeatMailboxSizeLegacy = 24

// HeartbeatView is a decoded heartbeat mailbox.
type HeartbeatView struct {
	Util    float64
	RootVer uint64
	Seq     uint64
	TXUtil  float64
}

// DecodeHeartbeatMailbox decodes a heartbeat mailbox image, tolerating
// both the legacy (24-byte, no TX word) and widened (32-byte) layouts; on
// the legacy layout TXUtil reads as zero, which keeps the 3-way switch in
// its binary behaviour. Shorter images decode to the zero view ("no
// heartbeat yet").
func DecodeHeartbeatMailbox(b []byte) HeartbeatView {
	var v HeartbeatView
	if len(b) >= 8 {
		v.Util = math.Float64frombits(binary.LittleEndian.Uint64(b[0:]))
	}
	if len(b) >= 16 {
		v.RootVer = binary.LittleEndian.Uint64(b[8:])
	}
	if len(b) >= HeartbeatMailboxSizeLegacy {
		v.Seq = binary.LittleEndian.Uint64(b[16:])
	}
	if len(b) >= HeartbeatMailboxSize {
		v.TXUtil = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
	}
	return v
}

// PauseHeartbeats suspends (true) or resumes (false) heartbeat publication,
// simulating a wedged or partitioned server for liveness tests. The data
// path keeps serving.
func (s *Server) PauseHeartbeats(paused bool) { s.hbPaused.Store(paused) }

// Kill simulates a crashed process: heartbeats freeze and every subsequent
// request — including batches and promote attempts — is answered with
// StatusUnavailable. Requests must still be answered: a silent drop would
// leave the waiting client proc blocked forever and wedge the
// discrete-event engine.
func (s *Server) Kill() { s.killed.Store(true) }

// Killed reports whether Kill has been called.
func (s *Server) Killed() bool { return s.killed.Load() }

// replicate stamps one applied mutation with the shard's (epoch, seq) and
// ships it to the backups via the Replicate hook. The caller holds the
// exclusive tree latch, so sequence order matches apply order. A nil
// Replica makes this a no-op, keeping unreplicated deployments untouched.
func (s *Server) replicate(p *sim.Proc, op wire.MsgType, r geo.Rect, ref uint64) error {
	if s.cfg.Replica == nil {
		return nil
	}
	epoch, seq, err := s.cfg.Replica.Next()
	if err != nil {
		return err
	}
	if s.cfg.Replicate == nil {
		return nil
	}
	return s.cfg.Replicate(p, replica.Record{Epoch: epoch, Seq: seq, Op: op, Rect: r, Ref: ref})
}

// replStatus maps a replication error to the wire status a client decodes
// back into the same sentinel (replica.StatusError is the inverse).
func replStatus(err error) uint8 {
	switch {
	case errors.Is(err, replica.ErrNotPrimary):
		return wire.StatusNotPrimary
	case errors.Is(err, replica.ErrFenced):
		return wire.StatusFenced
	case errors.Is(err, replica.ErrUnavailable):
		return wire.StatusUnavailable
	}
	return wire.StatusError
}

// ApplyReplica applies one replicated mutation on a backup: epoch fencing
// and sequence validation through the replica state, then the tree write
// under the exclusive latch with the same CPU charge a client write pays.
// It is the simulation's stand-in for the backup-side apply of the
// primary's streamed dirty spans (DESIGN.md §5.11).
func (s *Server) ApplyReplica(p *sim.Proc, rec replica.Record) error {
	if s.cfg.Replica == nil {
		return errors.New("server: not a replica member")
	}
	if s.killed.Load() {
		return replica.ErrUnavailable
	}
	s.latch.Lock(p)
	defer s.latch.Unlock()
	if err := s.cfg.Replica.Accept(rec.Epoch, rec.Seq); err != nil {
		return err
	}
	var st rtree.OpStats
	var err error
	switch rec.Op {
	case wire.MsgInsert:
		st, err = s.insertStaged(p, rec.Rect, rec.Ref)
	case wire.MsgDelete:
		_, st, err = s.tree.Delete(rec.Rect, rec.Ref)
	default:
		err = fmt.Errorf("server: replicated op %d not a mutation", rec.Op)
	}
	if err != nil {
		return err
	}
	atomic.AddUint64(&s.stats.ReplRecords, 1)
	if s.cfg.Mode == ModeEvent {
		s.cfg.Host.CPU().Run(p, s.cfg.Cost.InsertDemand(st.NodesRead, st.NodesWritten))
	}
	return nil
}

// heartbeatLoop periodically publishes the CPU utilization to every
// connected client's heartbeat mailbox with an RDMA Write (§IV-A). A
// reported zero would read as "no heartbeat" under Algorithm 1's u_serv≠0
// check, so utilization is floored at a small positive value.
func (s *Server) heartbeatLoop(p *sim.Proc) {
	for {
		p.Sleep(s.cfg.HeartbeatInterval)
		if s.hbPaused.Load() || s.killed.Load() {
			continue
		}
		util := s.utilization()
		if util < 1e-6 {
			util = 1e-6
		}
		s.lastUtil.Set(util)
		txUtil := s.txUtilization()
		s.lastTXUtil.Set(txUtil)
		var buf [HeartbeatMailboxSize]byte
		putFloat(buf[:8], util)
		rootVer, err := s.tree.Region().Version(s.tree.RootChunk())
		if err == nil {
			binary.LittleEndian.PutUint64(buf[8:], rootVer)
		}
		s.hbSeq++
		binary.LittleEndian.PutUint64(buf[16:], s.hbSeq)
		putFloat(buf[24:], txUtil)
		for _, c := range s.conns {
			if c.hbMem == nil {
				continue
			}
			if c.respWriter == nil {
				// Simulated-TCP endpoint: no QP to write through, so the
				// heartbeat lands in the mailbox directly.
				copy(c.hbMem.Bytes(), buf[:])
				atomic.AddUint64(&s.stats.Heartbeat, 1)
				continue
			}
			// One small RDMA Write into the client's mailbox; no notify —
			// the client reads u_serv when it next runs Algorithm 1.
			qp := c.respWriter.QP()
			if err := qp.Write(p, c.hbMem, 0, buf[:], fabric.WriteOpts{}); err != nil {
				panic(fmt.Sprintf("server: heartbeat write failed: %v", err))
			}
			atomic.AddUint64(&s.stats.Heartbeat, 1)
		}
	}
}

// utilization returns the server's windowed CPU utilization: the PS CPU's
// measured window in event mode, or the pegged 1.0 a polling server's
// /proc/stat would show.
func (s *Server) utilization() float64 {
	if s.cfg.Mode == ModePolling {
		return s.cfg.PollCPU.UtilizationWindow()
	}
	return s.cfg.Host.CPU().UtilizationWindow()
}

// txUtilization returns the send engine's utilization since the previous
// heartbeat: bytes the CPU posted over the interval, as a fraction of line
// rate. One-sided READ responses (responder engine) are deliberately
// excluded — they impose no send-queue pressure, which is exactly why the
// fetch method relieves a send-engine-bound server.
func (s *Server) txUtilization() float64 {
	now := s.e.Now()
	cur := s.cfg.Host.TXBytes()
	elapsed := now - s.hbTXTime
	delta := cur - s.hbTXBytes
	s.hbTXTime, s.hbTXBytes = now, cur
	if elapsed <= 0 {
		return 0
	}
	util := float64(delta) * 8 / (elapsed.Seconds() * s.cfg.Host.LineRateBps())
	if util > 1 {
		util = 1
	}
	return util
}

func putFloat(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}
