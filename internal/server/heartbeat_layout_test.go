package server

import (
	"encoding/binary"
	"math"
	"testing"
)

// encodeMailbox builds a heartbeat mailbox image of the given size (the
// legacy 24-byte layout simply omits the TX word).
func encodeMailbox(size int, util float64, rootVer, seq uint64, txUtil float64) []byte {
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(util))
	binary.LittleEndian.PutUint64(b[8:], rootVer)
	if size >= HeartbeatMailboxSizeLegacy {
		binary.LittleEndian.PutUint64(b[16:], seq)
	}
	if size >= HeartbeatMailboxSize {
		binary.LittleEndian.PutUint64(b[24:], math.Float64bits(txUtil))
	}
	return b
}

// TestHeartbeatMailboxWidening pins the widened 32-byte layout: the first
// three words decode identically to the legacy 24-byte layout, and a legacy
// image reads as TX utilization zero (which keeps the 3-way switch binary).
func TestHeartbeatMailboxWidening(t *testing.T) {
	legacy := DecodeHeartbeatMailbox(encodeMailbox(HeartbeatMailboxSizeLegacy, 0.75, 42, 7, 0.9))
	if legacy.Util != 0.75 || legacy.RootVer != 42 || legacy.Seq != 7 {
		t.Fatalf("legacy view = %+v", legacy)
	}
	if legacy.TXUtil != 0 {
		t.Fatalf("legacy TXUtil = %v, want 0", legacy.TXUtil)
	}

	wide := DecodeHeartbeatMailbox(encodeMailbox(HeartbeatMailboxSize, 0.75, 42, 7, 0.9))
	if wide.Util != legacy.Util || wide.RootVer != legacy.RootVer || wide.Seq != legacy.Seq {
		t.Fatalf("widened layout changed the legacy words: %+v vs %+v", wide, legacy)
	}
	if wide.TXUtil != 0.9 {
		t.Fatalf("wide TXUtil = %v, want 0.9", wide.TXUtil)
	}

	// Shorter-than-legacy images decode to the zero view ("no heartbeat").
	if v := DecodeHeartbeatMailbox(make([]byte, 8)); v.RootVer != 0 || v.Seq != 0 || v.TXUtil != 0 {
		t.Fatalf("short view = %+v", v)
	}
	if v := DecodeHeartbeatMailbox(nil); v != (HeartbeatView{}) {
		t.Fatalf("empty view = %+v", v)
	}
}

// TestHeartbeatMailboxSeqWraparound checks that the sequence word survives
// a wrap: liveness trackers detect arrival by change, so MaxUint64 → 0 must
// decode as two distinct values, not saturate.
func TestHeartbeatMailboxSeqWraparound(t *testing.T) {
	before := DecodeHeartbeatMailbox(encodeMailbox(HeartbeatMailboxSize, 0.5, 1, math.MaxUint64, 0.1))
	if before.Seq != math.MaxUint64 {
		t.Fatalf("seq = %d, want MaxUint64", before.Seq)
	}
	after := DecodeHeartbeatMailbox(encodeMailbox(HeartbeatMailboxSize, 0.5, 1, 0, 0.1))
	if after.Seq != 0 {
		t.Fatalf("wrapped seq = %d, want 0", after.Seq)
	}
	if before.Seq == after.Seq {
		t.Fatal("wraparound not observable as a change")
	}
}
