package server

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/ringbuf"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

func testTree(t *testing.T, items int) *rtree.Tree {
	t.Helper()
	reg, err := region.New(4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if items > 0 {
		rng := rand.New(rand.NewSource(1))
		entries := make([]rtree.Entry, items)
		for i := range entries {
			w := rng.Float64() * 0.01
			x, y := rng.Float64()*(1-w), rng.Float64()*(1-w)
			entries[i] = rtree.Entry{Rect: geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + w}, Ref: uint64(i)}
		}
		if err := tree.BulkLoad(entries, 0); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

func TestNewValidation(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	host := net.NewHost("s", sim.NewCPU(e, 4))
	tree := testTree(t, 0)

	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{Engine: e, Host: host, Tree: tree, Mode: ModePolling}); err == nil {
		t.Error("polling mode without PollCPU should fail")
	}
	hostNoCPU := net.NewHost("nocpu", nil)
	if _, err := New(Config{Engine: e, Host: hostNoCPU, Tree: tree, Mode: ModeEvent}); err == nil {
		t.Error("event mode without host CPU should fail")
	}
	srv, err := New(Config{Engine: e, Host: host, Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Tree() != tree {
		t.Error("Tree accessor broken")
	}
	if _, err := srv.ConnectTCP(host, net); err != nil {
		t.Errorf("event-mode ConnectTCP: %v", err)
	}
}

func TestPollingRejectsTCP(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	host := net.NewHost("s", sim.NewCPU(e, 4))
	srv, err := New(Config{
		Engine: e, Host: host, Tree: testTree(t, 0),
		Mode: ModePolling, PollCPU: sim.NewPollCPU(e, 4, time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ConnectTCP(host, net); err == nil {
		t.Error("polling mode must reject TCP connections")
	}
}

// Drive the server directly through its ring buffers (no client package)
// to pin the wire behaviour: request in, segmented response out, heartbeat
// mailbox updated.
func TestServerWireLevel(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverHost := net.NewHost("server", sim.NewCPU(e, 4))
	clientHost := net.NewHost("client", sim.NewCPU(e, 4))
	tree := testTree(t, 500)
	srv, err := New(Config{
		Engine: e, Host: serverHost, Tree: tree,
		Cost:              netmodel.DefaultCostModel(),
		HeartbeatInterval: time.Millisecond,
		MaxSegmentItems:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := srv.Connect(clientHost, net, 4)
	if err != nil {
		t.Fatal(err)
	}

	var items []wire.Item
	var heartbeatUtil float64
	e.Spawn("driver", func(p *sim.Proc) {
		defer e.Stop()
		// Whole-space search: 500 results across 50 segments of 10.
		req := wire.Request{Type: wire.MsgSearch, ID: 7, Rect: geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}}
		if err := ep.ReqWriter.Send(p, req.Encode(nil), 7, true); err != nil {
			t.Error(err)
			return
		}
		for {
			ep.RespReader.CQ().Pop(p)
			for {
				payload, err, ok := ep.RespReader.TryRecv()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					break
				}
				resp, err := wire.DecodeResponse(payload)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.ID != 7 {
					t.Errorf("response id %d", resp.ID)
				}
				items = append(items, resp.Items...)
				if resp.Final {
					goto donesearch
				}
			}
			if err := ep.RespReader.ReportHead(p); err != nil {
				t.Error(err)
				return
			}
		}
	donesearch:
		// Wait for a heartbeat to land in the mailbox.
		p.Sleep(3 * time.Millisecond)
		heartbeatUtil = math.Float64frombits(binary.LittleEndian.Uint64(ep.HeartbeatM.Bytes()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(items) != 500 {
		t.Errorf("items = %d, want 500", len(items))
	}
	if srv.Stats().Segments < 50 {
		t.Errorf("segments = %d, want >= 50", srv.Stats().Segments)
	}
	if heartbeatUtil <= 0 {
		t.Error("heartbeat mailbox never written (zero would read as 'no heartbeat')")
	}
	if srv.Stats().Heartbeat == 0 {
		t.Error("no heartbeats counted")
	}
}

// A malformed request must produce an error response, not kill the worker.
func TestServerMalformedRequest(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverHost := net.NewHost("server", sim.NewCPU(e, 4))
	clientHost := net.NewHost("client", sim.NewCPU(e, 4))
	srv, err := New(Config{Engine: e, Host: serverHost, Tree: testTree(t, 10), Cost: netmodel.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := srv.Connect(clientHost, net, 4)
	if err != nil {
		t.Fatal(err)
	}
	var status uint8 = 255
	e.Spawn("driver", func(p *sim.Proc) {
		defer e.Stop()
		if err := ep.ReqWriter.Send(p, []byte{0xFF, 0xFF}, 0, true); err != nil {
			t.Error(err)
			return
		}
		ep.RespReader.CQ().Pop(p)
		payload, _, ok := ep.RespReader.TryRecv()
		if !ok {
			t.Error("no error response")
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			t.Error(err)
			return
		}
		status = resp.Status
		// The worker must still serve a valid request afterwards.
		req := wire.Request{Type: wire.MsgSearch, ID: 9, Rect: geo.PointRect(0.5, 0.5)}
		if err := ep.ReqWriter.Send(p, req.Encode(nil), 9, true); err != nil {
			t.Error(err)
			return
		}
		if err := ep.RespReader.ReportHead(p); err != nil {
			t.Error(err)
			return
		}
		ep.RespReader.CQ().Pop(p)
		if _, _, ok := ep.RespReader.TryRecv(); !ok {
			t.Error("worker died after malformed request")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if status != wire.StatusError {
		t.Errorf("status = %d, want StatusError", status)
	}
}

// Inserts must serialize under the write latch even in event mode: two
// concurrent inserts through two connections both land.
func TestServerConcurrentInsertsSerialize(t *testing.T) {
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	serverHost := net.NewHost("server", sim.NewCPU(e, 4))
	tree := testTree(t, 100)
	srv, err := New(Config{
		Engine: e, Host: serverHost, Tree: tree,
		Cost: netmodel.DefaultCostModel(), StagedNodeWrites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg := sim.NewWaitGroup(e)
	for i := 0; i < 2; i++ {
		clientHost := net.NewHost("client", sim.NewCPU(e, 4))
		ep, err := srv.Connect(clientHost, net, 4)
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(1000 * (i + 1))
		wg.Add(1)
		e.Spawn("driver", func(p *sim.Proc) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				x := 0.001 * float64(j+1)
				req := wire.Request{Type: wire.MsgInsert, ID: base + uint64(j),
					Rect: geo.PointRect(x, x), Ref: base + uint64(j)}
				if err := ep.ReqWriter.Send(p, req.Encode(nil), req.ID, true); err != nil {
					t.Error(err)
					return
				}
				ep.RespReader.CQ().Pop(p)
				payload, _, ok := ep.RespReader.TryRecv()
				if !ok {
					t.Error("no insert ack")
					return
				}
				resp, err := wire.DecodeResponse(payload)
				if err != nil || resp.Status != wire.StatusOK {
					t.Errorf("insert ack: %+v, %v", resp, err)
					return
				}
				if err := ep.RespReader.ReportHead(p); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	e.Spawn("stop", func(p *sim.Proc) { wg.Wait(p); e.Stop() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 140 {
		t.Errorf("tree len = %d, want 140", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if srv.Stats().Inserts != 40 {
		t.Errorf("server inserts = %d", srv.Stats().Inserts)
	}
}

var _ = ringbuf.HeadMirrorSize // cross-package doc reference
