package client

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

func searchOp(q geo.Rect) BatchOp { return BatchOp{Type: wire.MsgSearch, Rect: q} }

func TestExecBatchMatchesUnbatched(t *testing.T) {
	// Batched searches over the ring must return exactly what the
	// brute-force tree search (and hence the unbatched client) returns.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	rng := rand.New(rand.NewSource(21))
	r.e.Spawn("driver", func(p *sim.Proc) {
		var results []BatchResult
		for round := 0; round < 10; round++ {
			var ops []BatchOp
			var want []map[uint64]int
			for j := 0; j < 8; j++ {
				q := randRect(rng, rng.Float64()*0.1)
				ops = append(ops, searchOp(q))
				want = append(want, expected(t, r.tree, q))
			}
			results = c.ExecBatch(p, ops, results)
			for j, res := range results {
				if res.Err != nil {
					t.Errorf("round %d op %d: %v", round, j, res.Err)
					return
				}
				if res.Method != MethodFast {
					t.Errorf("round %d op %d: method %v", round, j, res.Method)
				}
				if !sameItems(res.Items, want[j]) {
					t.Errorf("round %d op %d: %d items, want %d",
						round, j, len(res.Items), lenTotal(want[j]))
				}
			}
		}
		// A batch of one delegates to the unbatched path.
		q := randRect(rng, 0.05)
		results = c.ExecBatch(p, []BatchOp{searchOp(q)}, results)
		if results[0].Err != nil || !sameItems(results[0].Items, expected(t, r.tree, q)) {
			t.Errorf("single-op batch mismatch: %+v", results[0])
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.srv.Stats()
	if st.Batches != 10 {
		t.Errorf("server batches = %d, want 10 (the single-op batch must not ship a container)", st.Batches)
	}
	if st.BatchedOps != 80 {
		t.Errorf("server batched ops = %d, want 80", st.BatchedOps)
	}
	cst := c.Stats()
	if cst.BatchesSent != 10 || cst.BatchedOps != 80 {
		t.Errorf("client batch stats = %d/%d, want 10/80", cst.BatchesSent, cst.BatchedOps)
	}
}

func TestExecBatchTCP(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000, tcpNet: true})
	c := r.newTCPClient(t, "c0")
	rng := rand.New(rand.NewSource(22))
	r.e.Spawn("driver", func(p *sim.Proc) {
		var ops []BatchOp
		var want []map[uint64]int
		for j := 0; j < 6; j++ {
			q := randRect(rng, rng.Float64()*0.2)
			ops = append(ops, searchOp(q))
			want = append(want, expected(t, r.tree, q))
		}
		results := c.ExecBatch(p, ops, nil)
		for j, res := range results {
			if res.Err != nil {
				t.Errorf("op %d: %v", j, res.Err)
				return
			}
			if res.Method != MethodTCP {
				t.Errorf("op %d: method %v, want tcp", j, res.Method)
			}
			if !sameItems(res.Items, want[j]) {
				t.Errorf("op %d mismatch", j)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().Batches == 0 {
		t.Error("TCP batch container never reached the server")
	}
}

func TestBatchMixedReadWrite(t *testing.T) {
	// A batch mixing reads and writes executes in submission order under one
	// exclusive latch: an insert earlier in the batch is visible to a search
	// later in the same batch, and per-op errors stay per-op.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 500})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	target := geo.NewRect(0.71, 0.71, 0.72, 0.72)
	r.e.Spawn("driver", func(p *sim.Proc) {
		ops := []BatchOp{
			{Type: wire.MsgInsert, Rect: target, Ref: 777777},
			searchOp(target),
			{Type: wire.MsgDelete, Rect: target, Ref: 888888}, // never inserted
			searchOp(geo.NewRect(0, 0, 0.2, 0.2)),
		}
		results := c.ExecBatch(p, ops, nil)
		if results[0].Err != nil {
			t.Errorf("insert: %v", results[0].Err)
		}
		found := false
		for _, it := range results[1].Items {
			if it.Ref == 777777 {
				found = true
			}
		}
		if results[1].Err != nil || !found {
			t.Errorf("search after same-batch insert: err=%v found=%v", results[1].Err, found)
		}
		if !errors.Is(results[2].Err, ErrNotFound) {
			t.Errorf("delete of absent ref: err=%v, want ErrNotFound", results[2].Err)
		}
		if results[3].Err != nil {
			t.Errorf("trailing search: %v", results[3].Err)
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.srv.Stats()
	if st.Batches != 1 || st.BatchedOps != 4 {
		t.Errorf("server batch stats = %d/%d, want 1/4", st.Batches, st.BatchedOps)
	}
	if st.Inserts != 1 || st.Deletes != 1 || st.Searches != 2 {
		t.Errorf("server op stats = %+v", st)
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBatchWritesNeverOffload(t *testing.T) {
	// §IV-A: writes always go through fast messaging. Even with the switch
	// pinned to offloading, the batch's inserts must travel in the container
	// while its searches traverse client-side — concurrently.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 3000})
	c := r.newClient(t, "c0", Config{Forced: MethodOffload, MultiIssue: true})
	rng := rand.New(rand.NewSource(23))
	r.e.Spawn("driver", func(p *sim.Proc) {
		var ops []BatchOp
		var want []map[uint64]int
		for j := 0; j < 4; j++ {
			q := randRect(rng, 0.05)
			ops = append(ops, searchOp(q))
			want = append(want, expected(t, r.tree, q))
		}
		ops = append(ops,
			BatchOp{Type: wire.MsgInsert, Rect: randRect(rng, 0.01), Ref: 900001},
			BatchOp{Type: wire.MsgInsert, Rect: randRect(rng, 0.01), Ref: 900002})
		results := c.ExecBatch(p, ops, nil)
		for j := 0; j < 4; j++ {
			if results[j].Err != nil || results[j].Method != MethodOffload {
				t.Errorf("search %d: method=%v err=%v", j, results[j].Method, results[j].Err)
			}
			if !sameItems(results[j].Items, want[j]) {
				t.Errorf("search %d mismatch", j)
			}
		}
		for j := 4; j < 6; j++ {
			if results[j].Err != nil || results[j].Method != MethodFast {
				t.Errorf("insert %d: method=%v err=%v (writes must use messaging)",
					j, results[j].Method, results[j].Err)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st, cst := r.srv.Stats(), c.Stats()
	if st.Inserts != 2 {
		t.Errorf("server inserts = %d, want 2", st.Inserts)
	}
	if cst.FastSearches != 0 || cst.OffloadSearches != 4 {
		t.Errorf("client search split = fast %d / offload %d, want 0/4",
			cst.FastSearches, cst.OffloadSearches)
	}
	if st.BatchedOps != 2 {
		t.Errorf("container carried %d ops, want only the 2 writes", st.BatchedOps)
	}
}

func TestBatchAdaptiveBackoffAccounting(t *testing.T) {
	// Adaptive clients driving batches against a saturated one-core server:
	// every search must consult the switch individually (fast + offload
	// counts add up exactly), the back-off window must engage (offloads),
	// and inserts must reach the server via messaging regardless.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 3000, heartbeat: time.Millisecond, cores: 1})
	var clients []*Client
	for i := 0; i < 8; i++ {
		clients = append(clients, r.newClient(t, "c", Config{
			Adaptive:     true,
			MultiIssue:   true,
			HeartbeatInv: time.Millisecond,
			T:            0.5,
		}))
	}
	rng := rand.New(rand.NewSource(24))
	const rounds, batch = 40, 8
	wg := sim.NewWaitGroup(r.e)
	for _, c := range clients {
		c := c
		wg.Add(1)
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer wg.Done()
			var ops []BatchOp
			var results []BatchResult
			ref := uint64(1 << 20)
			for j := 0; j < rounds; j++ {
				ops = ops[:0]
				for k := 0; k < batch-1; k++ {
					ops = append(ops, searchOp(randRect(rng, 0.001)))
				}
				ref++
				ops = append(ops, BatchOp{Type: wire.MsgInsert, Rect: randRect(rng, 0.001), Ref: ref})
				results = c.ExecBatch(p, ops, results)
				for k, res := range results {
					if res.Err != nil {
						t.Errorf("round %d op %d: %v", j, k, res.Err)
						return
					}
				}
			}
		})
	}
	r.e.Spawn("stopper", func(p *sim.Proc) {
		wg.Wait(p)
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	var fast, off, hb, inserts uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastSearches
		off += st.OffloadSearches
		hb += st.HeartbeatsSeen
		inserts += st.Inserts
	}
	const searches = 8 * rounds * (batch - 1)
	if fast+off != searches {
		t.Errorf("decide consulted %d times for %d searches (fast=%d off=%d)",
			fast+off, searches, fast, off)
	}
	if hb == 0 {
		t.Fatal("no heartbeats observed")
	}
	if off == 0 {
		t.Errorf("back-off never engaged under saturation (fast=%d)", fast)
	}
	if fast == 0 {
		t.Errorf("clients never used fast messaging (off=%d)", off)
	}
	if r.srv.Stats().Inserts != 8*rounds {
		t.Errorf("server inserts = %d, want %d (writes must never offload)",
			r.srv.Stats().Inserts, 8*rounds)
	}
}

func TestBatchLargeResponsesSegmented(t *testing.T) {
	// Two whole-space queries in one batch: each response spans many CONT
	// segments nested inside batch containers, and both reassemble fully.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	r.e.Spawn("driver", func(p *sim.Proc) {
		all := geo.NewRect(0, 0, 1, 1)
		results := c.ExecBatch(p, []BatchOp{searchOp(all), searchOp(all)}, nil)
		for j, res := range results {
			if res.Err != nil {
				t.Errorf("op %d: %v", j, res.Err)
			}
			if len(res.Items) != 5000 {
				t.Errorf("op %d: %d items, want 5000", j, len(res.Items))
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().Segments < 20 {
		t.Errorf("segments = %d, expected many for two 5000-item responses", r.srv.Stats().Segments)
	}
}

func TestStatsSnapshotDuringLiveWorkload(t *testing.T) {
	// Satellite for the data-race fix: hammer server and client Stats()
	// from a second goroutine while the engine executes a batched workload.
	// Run under -race this fails loudly if any counter is unsynchronized.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000, heartbeat: time.Millisecond})
	c := r.newClient(t, "c0", Config{Adaptive: true, MultiIssue: true, HeartbeatInv: time.Millisecond})
	rng := rand.New(rand.NewSource(25))
	r.e.Spawn("driver", func(p *sim.Proc) {
		var ops []BatchOp
		var results []BatchResult
		for i := 0; i < 60; i++ {
			ops = ops[:0]
			for j := 0; j < 8; j++ {
				ops = append(ops, searchOp(randRect(rng, 0.01)))
			}
			results = c.ExecBatch(p, ops, results)
			for _, res := range results {
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
			}
		}
		p.Engine().Stop()
	})
	done := make(chan error, 1)
	go func() { done <- r.e.Run() }()
	var snaps uint64
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if snaps == 0 {
				t.Error("stats reader never ran")
			}
			if r.srv.Stats().Searches == 0 {
				t.Error("no searches recorded")
			}
			return
		default:
			_ = r.srv.Stats()
			_ = c.Stats()
			snaps++
			runtime.Gosched()
		}
	}
}
