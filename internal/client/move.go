package client

import (
	"fmt"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// Move relocates the entry (from, ref) to (to, ref) in one round trip: the
// server deletes the old position and inserts the new one under a single
// exclusive latch, so no concurrent search observes the object absent. A
// move of an unknown entry degrades to a plain insert (upsert semantics —
// the same state a delete-then-insert pair reaches). Like all writes it
// travels by messaging so the server's lock discipline covers it.
func (c *Client) Move(p *sim.Proc, from, to geo.Rect, ref uint64) error {
	c.stats.Moves.Inc()
	resp, err := c.roundTrip(p, wire.MoveRequest(c.nextID(), from, to, ref))
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return rerr
		}
		return fmt.Errorf("%w: move status %d", ErrServer, resp.Status)
	}
	return nil
}

// Nearest returns the k entries nearest to (x, y) in ascending distance
// order, exactly as the server's local rtree.Tree.Nearest would. kNN is
// pinned to server-side execution: best-first traversal pops a global
// priority queue whose every step depends on all previous pops, so a
// client-side (offload) traversal would degenerate into one dependent
// chunk-read round trip per visited node — the adaptive switch therefore
// only ever picks fast messaging or the fetch/mailbox path for it (see
// adaptive.Switch.DecideServerSide and DESIGN.md §5.13).
func (c *Client) Nearest(p *sim.Proc, k int, x, y float64) ([]rtree.Neighbor, Method, error) {
	c.stats.KNNSearches.Inc()
	m := c.pinServerSide(c.cfg.Forced)
	if c.cfg.Adaptive {
		m = c.decideServerSide(p)
	}
	var (
		items []wire.Item
		err   error
	)
	switch m {
	case MethodTCP:
		c.stats.TCPSearches.Inc()
		var resp wire.Response
		resp, err = c.roundTripTCP(p, wire.KNNRequest(c.nextID(), k, x, y))
		if err == nil {
			items, err = knnStatus(resp)
		}
	case MethodFetch:
		c.stats.FetchSearches.Inc()
		items, err = c.knnFetch(p, k, x, y)
	default:
		m = MethodFast
		c.stats.FastSearches.Inc()
		items, err = c.knnFast(p, k, x, y)
	}
	if err != nil {
		return nil, m, err
	}
	return neighborsFromItems(items, x, y), m, nil
}

// pinServerSide maps a forced method onto one a kNN can execute: offload
// has no kNN path, so a forced-offload client runs its kNN fast.
func (c *Client) pinServerSide(m Method) Method {
	switch m {
	case MethodTCP:
		return MethodTCP
	case MethodFetch:
		return MethodFetch
	default:
		return MethodFast
	}
}

// decideServerSide is decide for operations pinned to the server: the
// switch consumes heartbeats and keeps its window bookkeeping current, but
// never opens or spends an offload window, leaving only the fetch-vs-fast
// choice. A fetch verdict without a mailbox degrades to fast.
func (c *Client) decideServerSide(p *sim.Proc) Method {
	if c.sw.DecideServerSide(p.Now(), c.readHeartbeatBoth, c.clearHeartbeat) == adaptive.ChooseFetch &&
		c.ep.MailboxMem != nil {
		return MethodFetch
	}
	return MethodFast
}

// knnFast sends the kNN over the request ring (or TCP endpoint) and
// collects the segmented response.
func (c *Client) knnFast(p *sim.Proc, k int, x, y float64) ([]wire.Item, error) {
	resp, err := c.roundTrip(p, wire.KNNRequest(c.nextID(), k, x, y))
	if err != nil {
		return nil, err
	}
	return knnStatus(resp)
}

// knnFetch executes the kNN through the fetch/mailbox path, mirroring
// searchFetch: descriptor or inline answer, one-sided slot pull, and a
// fast-messaging fallback when the pull exhausts its retry budget.
func (c *Client) knnFetch(p *sim.Proc, k int, x, y float64) ([]wire.Item, error) {
	if c.ep.MailboxMem == nil || c.ep.FetchQP == nil {
		return c.knnFast(p, k, x, y)
	}
	req := wire.KNNRequest(c.nextID(), k, x, y)
	req.Type = wire.MsgKNNFetch
	desc, resp, haveDesc, err := c.roundTripFetch(p, req)
	if err != nil {
		return nil, err
	}
	if !haveDesc {
		c.stats.FetchInline.Inc()
		return knnStatus(resp)
	}
	if desc.Status != wire.StatusOK {
		return nil, fmt.Errorf("%w: knn status %d", ErrServer, desc.Status)
	}
	items, err := c.pullMailbox(p, desc)
	if err != nil {
		c.stats.FetchFallbacks.Inc()
		return c.knnFast(p, k, x, y)
	}
	return items, nil
}

// knnStatus maps a kNN response to its items or a typed error.
func knnStatus(resp wire.Response) ([]wire.Item, error) {
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return nil, rerr
		}
		return nil, fmt.Errorf("%w: knn status %d", ErrServer, resp.Status)
	}
	return resp.Items, nil
}

// neighborsFromItems rebuilds the neighbor list from response items. The
// server sends items in ascending distance order, and DistSq is recomputed
// here with the same geo.Rect.DistSqToPoint the tree's best-first search
// used — rectangles round-trip bit-exactly, so the distances (and therefore
// the whole result) match a local Nearest call exactly.
func neighborsFromItems(items []wire.Item, x, y float64) []rtree.Neighbor {
	if len(items) == 0 {
		return nil
	}
	out := make([]rtree.Neighbor, len(items))
	for i, it := range items {
		out[i] = rtree.Neighbor{Rect: it.Rect, Ref: it.Ref, DistSq: it.Rect.DistSqToPoint(x, y)}
	}
	return out
}
