package client

import (
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// BatchOp is one operation submitted through ExecBatch.
type BatchOp struct {
	Type wire.MsgType // MsgSearch, MsgInsert or MsgDelete
	Rect geo.Rect
	Ref  uint64 // insert/delete payload
}

// BatchResult is the outcome of one batched operation, in submission order.
type BatchResult struct {
	Method Method
	Items  []wire.Item
	Err    error
}

// ExecBatch executes up to wire.MaxBatch operations as one client batch,
// reusing the caller's results slice.
//
// Writes and messaging-routed searches are coalesced into a single batch
// container — one ring write (or TCP frame), one immediate-data event, one
// server latch acquisition and charge — while searches that Algorithm 1
// (or a forced method) routes to offloading run as client-side traversals
// overlapped with the in-flight batch. Writes never offload (§IV-A), and
// every search consults the adaptive switch individually, so the
// per-search back-off window accounting is exactly that of the unbatched
// client. A batch of one delegates to the unbatched path and is therefore
// bit-for-bit identical to the pre-batching client.
func (c *Client) ExecBatch(p *sim.Proc, ops []BatchOp, results []BatchResult) []BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, BatchResult{})
	}
	if len(ops) == 0 {
		return results
	}
	if len(ops) == 1 {
		op := ops[0]
		switch op.Type {
		case wire.MsgInsert:
			results[0].Method = MethodFast
			results[0].Err = c.Insert(p, op.Rect, op.Ref)
		case wire.MsgDelete:
			results[0].Method = MethodFast
			results[0].Err = c.Delete(p, op.Rect, op.Ref)
		default:
			items, m, err := c.Search(p, op.Rect)
			results[0] = BatchResult{Method: m, Items: items, Err: err}
		}
		return results
	}

	useTCP := c.ep.TCP != nil
	wireMethod := MethodFast
	if useTCP {
		wireMethod = MethodTCP
	}
	var wireOps []wireOp
	var offload []int
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert:
			c.stats.Inserts.Inc()
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgDelete:
			c.stats.Deletes.Inc()
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgSearch:
			m := c.cfg.Forced
			if c.cfg.Adaptive {
				m = c.decide(p)
			}
			if m == MethodOffload {
				c.stats.OffloadSearches.Inc()
				results[i].Method = MethodOffload
				offload = append(offload, i)
			} else {
				if wireMethod == MethodTCP {
					c.stats.TCPSearches.Inc()
				} else {
					c.stats.FastSearches.Inc()
				}
				wireOps = append(wireOps, wireOp{op: i})
			}
		default:
			results[i].Err = fmt.Errorf("%w: unsupported batch op type %d", ErrServer, op.Type)
		}
	}

	// Send the messaging group as one container, then run the offloaded
	// traversals while the batch is in flight, then collect.
	if len(wireOps) > 0 {
		enc := &c.benc
		enc.Reset(c.encBuf[:0])
		for j := range wireOps {
			wireOps[j].id = c.nextID()
			op := ops[wireOps[j].op]
			results[wireOps[j].op].Method = wireMethod
			enc.Begin()
			enc.Buf = wire.Request{Type: op.Type, ID: wireOps[j].id, Rect: op.Rect, Ref: op.Ref}.Encode(enc.Buf)
			enc.End()
		}
		payload := enc.Bytes()
		c.stats.BatchesSent.Inc()
		c.stats.BatchedOps.Add(uint64(len(wireOps)))
		if useTCP {
			c.ep.TCP.Send(p, payload)
		} else if err := c.ep.ReqWriter.Send(p, payload, wireOps[0].id, true); err != nil {
			for _, w := range wireOps {
				results[w.op].Err = err
			}
			wireOps = nil
		}
		c.encBuf = enc.Buf[:0]
	}

	for _, i := range offload {
		items, err := c.searchOffload(p, ops[i].Rect)
		results[i].Items = items
		results[i].Err = err
	}

	if len(wireOps) > 0 {
		c.collectBatch(p, ops, results, wireOps, useTCP)
	}
	return results
}

// wireOp ties a messaging-group request ID back to its batch slot.
type wireOp struct {
	op int // index into ops/results
	id uint64
}

// collectBatch folds batch response frames into results until every
// messaging-group operation has received its END segment.
func (c *Client) collectBatch(p *sim.Proc, ops []BatchOp, results []BatchResult,
	wireOps []wireOp, useTCP bool) {
	idx := make(map[uint64]int, len(wireOps))
	for _, w := range wireOps {
		idx[w.id] = w.op
	}
	remaining := len(wireOps)

	// handle folds one response segment; fold unwraps one transport frame.
	handle := func(msg []byte) error {
		if t, err := wire.PeekType(msg); err != nil || t != wire.MsgResponse {
			return err // nil for stray non-response messages
		}
		if err := wire.DecodeResponseInto(msg, &c.respBuf); err != nil {
			return err
		}
		i, ok := idx[c.respBuf.ID]
		if !ok {
			return nil // stale segment from an aborted exchange
		}
		results[i].Items = append(results[i].Items, c.respBuf.Items...)
		if c.respBuf.Final {
			results[i].Err = opError(ops[i].Type, c.respBuf.Status)
			delete(idx, c.respBuf.ID)
			remaining--
		}
		return nil
	}
	fold := func(payload []byte) error {
		typ, err := wire.PeekType(payload)
		if err != nil {
			return err
		}
		if typ != wire.MsgBatch {
			return handle(payload)
		}
		it, err := wire.DecodeBatch(payload)
		if err != nil {
			return err
		}
		for {
			msg, ok := it.Next()
			if !ok {
				break
			}
			if err := handle(msg); err != nil {
				return err
			}
		}
		return it.Err()
	}
	failAll := func(err error) {
		for _, i := range idx {
			if results[i].Err == nil {
				results[i].Err = err
			}
		}
	}

	for remaining > 0 {
		if useTCP {
			if err := fold(c.ep.TCP.Recv(p)); err != nil {
				failAll(err)
				return
			}
			continue
		}
		c.ep.RespReader.CQ().Pop(p)
		for {
			payload, err, ok := c.ep.RespReader.TryRecv()
			if err != nil {
				failAll(err)
				return
			}
			if !ok {
				break
			}
			if err := fold(payload); err != nil {
				failAll(err)
				return
			}
		}
		if err := c.ep.RespReader.ReportHead(p); err != nil {
			failAll(err)
			return
		}
	}
}

// opError maps a response status to the unbatched API's error for the
// given operation type.
func opError(t wire.MsgType, status uint8) error {
	switch {
	case status == wire.StatusOK:
		return nil
	case t == wire.MsgDelete && status == wire.StatusNotFound:
		return ErrNotFound
	case t == wire.MsgSearch:
		return fmt.Errorf("%w: search status %d", ErrServer, status)
	case t == wire.MsgInsert:
		return fmt.Errorf("%w: insert status %d", ErrServer, status)
	default:
		return fmt.Errorf("%w: delete status %d", ErrServer, status)
	}
}
