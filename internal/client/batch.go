package client

import (
	"fmt"
	"sort"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// BatchOp is one operation submitted through ExecBatch. For MsgMove, Rect
// is the source rectangle and Rect2 the destination; for MsgKNN, Rect is
// the query point (a degenerate rectangle) and Ref carries k.
type BatchOp struct {
	Type  wire.MsgType // MsgSearch, MsgInsert, MsgDelete, MsgMove or MsgKNN
	Rect  geo.Rect
	Ref   uint64   // insert/delete/move payload; k for MsgKNN
	Rect2 geo.Rect // move destination
}

// BatchResult is the outcome of one batched operation, in submission order.
type BatchResult struct {
	Method Method
	Items  []wire.Item
	Err    error
}

// ExecBatch executes up to wire.MaxBatch operations as one client batch,
// reusing the caller's results slice.
//
// Writes and messaging-routed searches are coalesced into a single batch
// container — one ring write (or TCP frame), one immediate-data event, one
// server latch acquisition and charge — while searches that Algorithm 1
// (or a forced method) routes to offloading run as client-side traversals
// overlapped with the in-flight batch. Writes never offload (§IV-A), and
// every search consults the adaptive switch individually, so the
// per-search back-off window accounting is exactly that of the unbatched
// client. A batch of one delegates to the unbatched path and is therefore
// bit-for-bit identical to the pre-batching client.
func (c *Client) ExecBatch(p *sim.Proc, ops []BatchOp, results []BatchResult) []BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, BatchResult{})
	}
	if len(ops) == 0 {
		return results
	}
	if len(ops) == 1 {
		op := ops[0]
		switch op.Type {
		case wire.MsgInsert:
			results[0].Method = MethodFast
			results[0].Err = c.Insert(p, op.Rect, op.Ref)
		case wire.MsgDelete:
			results[0].Method = MethodFast
			results[0].Err = c.Delete(p, op.Rect, op.Ref)
		case wire.MsgMove:
			results[0].Method = MethodFast
			results[0].Err = c.Move(p, op.Rect, op.Rect2, op.Ref)
		case wire.MsgKNN:
			x, y := op.Rect.Center()
			nbrs, m, err := c.Nearest(p, int(op.Ref), x, y)
			results[0] = BatchResult{Method: m, Items: itemsFromNeighbors(nbrs), Err: err}
		default:
			items, m, err := c.Search(p, op.Rect)
			results[0] = BatchResult{Method: m, Items: items, Err: err}
		}
		return results
	}

	useTCP := c.ep.TCP != nil
	wireMethod := MethodFast
	if useTCP {
		wireMethod = MethodTCP
	}
	var wireOps []wireOp
	var offload []int
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert:
			c.stats.Inserts.Inc()
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgDelete:
			c.stats.Deletes.Inc()
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgMove:
			c.stats.Moves.Inc()
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgKNN:
			// kNN is pinned server-side (no offload arm; see Nearest), so the
			// only routing question is fetch vs the messaging container.
			c.stats.KNNSearches.Inc()
			m := c.pinServerSide(c.cfg.Forced)
			if c.cfg.Adaptive {
				m = c.decideServerSide(p)
			}
			if m == MethodFetch && !useTCP && c.ep.MailboxMem != nil && c.ep.FetchQP != nil {
				c.stats.FetchSearches.Inc()
				results[i].Method = MethodFetch
				wireOps = append(wireOps, wireOp{op: i, fetch: true})
			} else {
				if wireMethod == MethodTCP {
					c.stats.TCPSearches.Inc()
				} else {
					c.stats.FastSearches.Inc()
				}
				wireOps = append(wireOps, wireOp{op: i})
			}
		case wire.MsgSearch:
			m := c.cfg.Forced
			if c.cfg.Adaptive {
				m = c.decide(p)
			}
			switch {
			case m == MethodOffload:
				c.stats.OffloadSearches.Inc()
				results[i].Method = MethodOffload
				offload = append(offload, i)
			case m == MethodFetch && !useTCP && c.ep.MailboxMem != nil && c.ep.FetchQP != nil:
				// The request rides the same container, retyped; its result
				// comes back as a descriptor (or inline segments) and the
				// mailbox pulls run after the batch collect completes.
				c.stats.FetchSearches.Inc()
				results[i].Method = MethodFetch
				wireOps = append(wireOps, wireOp{op: i, fetch: true})
			default:
				if wireMethod == MethodTCP {
					c.stats.TCPSearches.Inc()
				} else {
					c.stats.FastSearches.Inc()
				}
				wireOps = append(wireOps, wireOp{op: i})
			}
		default:
			results[i].Err = fmt.Errorf("%w: unsupported batch op type %d", ErrServer, op.Type)
		}
	}

	// Send the messaging group as one container, then run the offloaded
	// traversals while the batch is in flight, then collect.
	if len(wireOps) > 0 {
		enc := &c.benc
		enc.Reset(c.encBuf[:0])
		for j := range wireOps {
			wireOps[j].id = c.nextID()
			op := ops[wireOps[j].op]
			typ := op.Type
			if wireOps[j].fetch {
				if typ == wire.MsgKNN {
					typ = wire.MsgKNNFetch
				} else {
					typ = wire.MsgSearchFetch
				}
			} else {
				results[wireOps[j].op].Method = wireMethod
			}
			enc.Begin()
			enc.Buf = wire.Request{Type: typ, ID: wireOps[j].id, Rect: op.Rect, Ref: op.Ref,
				Rect2: op.Rect2}.Encode(enc.Buf)
			enc.End()
		}
		payload := enc.Bytes()
		c.stats.BatchesSent.Inc()
		c.stats.BatchedOps.Add(uint64(len(wireOps)))
		if useTCP {
			c.ep.TCP.Send(p, payload)
		} else if err := c.ep.ReqWriter.Send(p, payload, wireOps[0].id, true); err != nil {
			for _, w := range wireOps {
				results[w.op].Err = err
			}
			wireOps = nil
		}
		c.encBuf = enc.Buf[:0]
	}

	for _, i := range offload {
		items, err := c.searchOffload(p, ops[i].Rect)
		results[i].Items = items
		results[i].Err = err
	}

	if len(wireOps) > 0 {
		c.collectBatch(p, ops, results, wireOps, useTCP)
	}
	return results
}

// wireOp ties a messaging-group request ID back to its batch slot.
type wireOp struct {
	op    int // index into ops/results
	id    uint64
	fetch bool // search routed to remote result fetching
}

// collectBatch folds batch response frames into results until every
// messaging-group operation has received its END segment.
func (c *Client) collectBatch(p *sim.Proc, ops []BatchOp, results []BatchResult,
	wireOps []wireOp, useTCP bool) {
	idx := make(map[uint64]int, len(wireOps))
	for _, w := range wireOps {
		idx[w.id] = w.op
	}
	remaining := len(wireOps)
	// Descriptors of fetch-routed searches, pulled after the collect loop so
	// the batch exchange itself never blocks on mailbox reads.
	type pendingDesc struct {
		op   int
		desc wire.FetchDesc
	}
	var descs []pendingDesc

	// handle folds one response segment; fold unwraps one transport frame.
	handle := func(msg []byte) error {
		t, err := wire.PeekType(msg)
		if err != nil {
			return err
		}
		if t == wire.MsgFetchDesc {
			d, derr := wire.DecodeFetchDesc(msg)
			if derr != nil {
				return derr
			}
			i, ok := idx[d.ID]
			if !ok {
				return nil // descriptor from an abandoned exchange
			}
			descs = append(descs, pendingDesc{op: i, desc: d})
			delete(idx, d.ID)
			remaining--
			return nil
		}
		if t != wire.MsgResponse {
			return nil // stray non-response message
		}
		if err := wire.DecodeResponseInto(msg, &c.respBuf); err != nil {
			return err
		}
		i, ok := idx[c.respBuf.ID]
		if !ok {
			return nil // stale segment from an aborted exchange
		}
		results[i].Items = append(results[i].Items, c.respBuf.Items...)
		if c.respBuf.Final {
			results[i].Err = opError(ops[i].Type, c.respBuf.Status)
			if results[i].Method == MethodFetch {
				c.stats.FetchInline.Inc()
			}
			delete(idx, c.respBuf.ID)
			remaining--
		}
		return nil
	}
	fold := func(payload []byte) error {
		typ, err := wire.PeekType(payload)
		if err != nil {
			return err
		}
		if typ != wire.MsgBatch {
			return handle(payload)
		}
		it, err := wire.DecodeBatch(payload)
		if err != nil {
			return err
		}
		for {
			msg, ok := it.Next()
			if !ok {
				break
			}
			if err := handle(msg); err != nil {
				return err
			}
		}
		return it.Err()
	}
	failAll := func(err error) {
		for _, i := range idx {
			if results[i].Err == nil {
				results[i].Err = err
			}
		}
		for _, pd := range descs {
			if results[pd.op].Err == nil {
				results[pd.op].Err = err
			}
		}
	}

	for remaining > 0 {
		if useTCP {
			if err := fold(c.ep.TCP.Recv(p)); err != nil {
				failAll(err)
				return
			}
			continue
		}
		c.ep.RespReader.CQ().Pop(p)
		for {
			payload, err, ok := c.ep.RespReader.TryRecv()
			if err != nil {
				failAll(err)
				return
			}
			if !ok {
				break
			}
			if err := fold(payload); err != nil {
				failAll(err)
				return
			}
		}
		if err := c.ep.RespReader.ReportHead(p); err != nil {
			failAll(err)
			return
		}
	}

	// Pull phase: resolve every descriptor against the mailbox, in batch
	// order for determinism. A pull past its retry budget re-executes the
	// search over fast messaging, exactly like the unbatched fetch path.
	sort.Slice(descs, func(i, j int) bool { return descs[i].op < descs[j].op })
	for _, pd := range descs {
		i := pd.op
		if pd.desc.Status != wire.StatusOK {
			results[i].Err = opError(ops[i].Type, pd.desc.Status)
			continue
		}
		items, err := c.pullMailbox(p, pd.desc)
		if err != nil {
			c.stats.FetchFallbacks.Inc()
			if ops[i].Type == wire.MsgKNN {
				x, y := ops[i].Rect.Center()
				items, err = c.knnFast(p, int(ops[i].Ref), x, y)
			} else {
				items, err = c.searchFast(p, ops[i].Rect)
			}
		}
		results[i].Items = append(results[i].Items, items...)
		results[i].Err = err
	}
}

// itemsFromNeighbors converts a neighbor list back to response items
// (preserving ascending distance order) for the batched result surface.
func itemsFromNeighbors(nbrs []rtree.Neighbor) []wire.Item {
	if len(nbrs) == 0 {
		return nil
	}
	items := make([]wire.Item, len(nbrs))
	for i, nb := range nbrs {
		items[i] = wire.Item{Rect: nb.Rect, Ref: nb.Ref}
	}
	return items
}

// opError maps a response status to the unbatched API's error for the
// given operation type.
func opError(t wire.MsgType, status uint8) error {
	if rerr := replica.StatusError(status); rerr != nil {
		return rerr
	}
	switch {
	case status == wire.StatusOK:
		return nil
	case t == wire.MsgDelete && status == wire.StatusNotFound:
		return ErrNotFound
	case t == wire.MsgSearch:
		return fmt.Errorf("%w: search status %d", ErrServer, status)
	case t == wire.MsgInsert:
		return fmt.Errorf("%w: insert status %d", ErrServer, status)
	case t == wire.MsgMove:
		return fmt.Errorf("%w: move status %d", ErrServer, status)
	case t == wire.MsgKNN:
		return fmt.Errorf("%w: knn status %d", ErrServer, status)
	default:
		return fmt.Errorf("%w: delete status %d", ErrServer, status)
	}
}
