package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
)

func TestNodeCacheSavesReads(t *testing.T) {
	// With the node cache enabled, repeated searches over a static tree must
	// serve internal nodes locally: strictly fewer chunk fetches than the
	// plain client, identical results. Covers both traversal pipelines.
	for _, multi := range []bool{false, true} {
		name := "single-issue"
		if multi {
			name = "multi-issue"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
			plain := r.newClient(t, "plain", Config{Forced: MethodOffload, MultiIssue: multi})
			cached := r.newClient(t, "cached", Config{Forced: MethodOffload, MultiIssue: multi, NodeCache: 256})
			rng := rand.New(rand.NewSource(3))
			const searches = 40
			r.e.Spawn("driver", func(p *sim.Proc) {
				defer r.e.Stop()
				for i := 0; i < searches; i++ {
					q := randRect(rng, 0.05)
					want := expected(t, r.tree, q)
					a, _, err := plain.Search(p, q)
					if err != nil {
						t.Error(err)
						return
					}
					b, _, err := cached.Search(p, q)
					if err != nil {
						t.Error(err)
						return
					}
					if !sameItems(a, want) || !sameItems(b, want) {
						t.Errorf("query %d: cached/plain results diverge from oracle", i)
					}
				}
			})
			if err := r.e.Run(); err != nil {
				t.Fatal(err)
			}
			ps, cs := plain.Stats(), cached.Stats()
			if cs.CacheHits+cs.CacheVerifiedHits == 0 {
				t.Error("node cache never hit")
			}
			if cs.NodesFetched >= ps.NodesFetched {
				t.Errorf("cached fetched %d nodes, plain %d — cache saved nothing",
					cs.NodesFetched, ps.NodesFetched)
			}
			if cs.CacheBytesSaved == 0 {
				t.Error("no bytes saved recorded")
			}
			t.Logf("plain fetched %d, cached fetched %d (hits=%d verified=%d saved=%dB)",
				ps.NodesFetched, cs.NodesFetched, cs.CacheHits, cs.CacheVerifiedHits, cs.CacheBytesSaved)
		})
	}
}

func TestNodeCacheCapacityZeroMatchesPlain(t *testing.T) {
	// NodeCache: 0 must reproduce the uncached client bit-for-bit: same
	// fetch counts, no cache activity, no version reads.
	for _, multi := range []bool{false, true} {
		r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
		plain := r.newClient(t, "plain", Config{Forced: MethodOffload, MultiIssue: multi})
		zero := r.newClient(t, "zero", Config{Forced: MethodOffload, MultiIssue: multi, NodeCache: 0})
		rng := rand.New(rand.NewSource(11))
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer r.e.Stop()
			for i := 0; i < 25; i++ {
				q := randRect(rng, 0.05)
				if _, _, err := plain.Search(p, q); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := zero.Search(p, q); err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		ps, zs := plain.Stats(), zero.Stats()
		if ps.NodesFetched != zs.NodesFetched {
			t.Errorf("multi=%v: capacity 0 fetched %d nodes, plain %d",
				multi, zs.NodesFetched, ps.NodesFetched)
		}
		if zs.VersionReads != 0 || zs.CacheHits != 0 || zs.CacheMisses != 0 || zs.CacheBytesSaved != 0 {
			t.Errorf("multi=%v: capacity 0 produced cache activity: %+v", multi, zs)
		}
	}
}

func TestNodeCacheConcurrentWriterCorrectness(t *testing.T) {
	// A server-side writer splits nodes (staged publishes open real torn
	// windows) while a cached multi-issue client searches. Every result must
	// be phantom-free, and once writes quiesce and the lease expires the
	// cached client must observe the complete tree.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000, staged: true, heartbeat: time.Millisecond})
	writer := r.newClient(t, "writer", Config{Forced: MethodFast})
	reader := r.newClient(t, "reader", Config{
		Forced: MethodOffload, MultiIssue: true,
		NodeCache: 256, HeartbeatInv: time.Millisecond,
	})
	rng := rand.New(rand.NewSource(8))
	const inserts = 400
	wg := sim.NewWaitGroup(r.e)
	wg.Add(2)
	r.e.Spawn("writer", func(p *sim.Proc) {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			if err := writer.Insert(p, randRect(rng, 0.01), uint64(100000+i)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.e.Spawn("reader", func(p *sim.Proc) {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			q := randRect(rng, 0.05)
			items, _, err := reader.Search(p, q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			seen := map[uint64]bool{}
			for _, it := range items {
				if !q.Intersects(it.Rect) {
					t.Errorf("query %d: phantom rect %v outside %v", i, it.Rect, q)
				}
				if it.Ref >= 2000 && (it.Ref < 100000 || it.Ref >= 100000+inserts) {
					t.Errorf("query %d: phantom ref %d", i, it.Ref)
				}
				if seen[it.Ref] {
					t.Errorf("query %d: duplicate ref %d", i, it.Ref)
				}
				seen[it.Ref] = true
			}
		}
	})
	r.e.Spawn("finalizer", func(p *sim.Proc) {
		wg.Wait(p)
		// Wait out the staleness lease (one heartbeat interval) so every
		// cached node must revalidate against the post-split tree.
		p.Sleep(3 * time.Millisecond)
		items, _, err := reader.Search(p, geo.NewRect(0, 0, 1, 1))
		if err != nil {
			t.Error(err)
		} else if len(items) != r.tree.Len() {
			t.Errorf("post-quiesce search found %d of %d", len(items), r.tree.Len())
		}
		r.e.Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	st := reader.Stats()
	t.Logf("stale restarts: %d, torn retries: %d, hits=%d verified=%d misses=%d",
		st.StaleRestarts, st.TornRetries, st.CacheHits, st.CacheVerifiedHits, st.CacheMisses)
}

func TestMultiIssueTornExhaustionDrainsCQ(t *testing.T) {
	// Wedge one internal chunk in a permanently-torn state: the multi-issue
	// traversal must exhaust its per-chunk retry budget, surface ErrGaveUp,
	// and drain every outstanding completion so the next search cannot
	// consume a stale one. After the writer finishes, searches must recover.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000})
	c := r.newClient(t, "c0", Config{Forced: MethodOffload, MultiIssue: true, MaxChunkRetries: 3})
	reg := r.tree.Region()
	q := geo.NewRect(0, 0, 1, 1)
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		// Pick a child of the root to wedge, so the failing traversal has
		// sibling reads in flight when it gives up.
		raw := make([]byte, reg.ChunkSize())
		if err := reg.ReadChunkRaw(r.tree.RootChunk(), raw); err != nil {
			t.Error(err)
			return
		}
		payload, _, err := region.DecodeChunk(raw, nil)
		if err != nil {
			t.Error(err)
			return
		}
		var root rtree.Node
		if err := rtree.DecodeNode(payload, &root, 16); err != nil {
			t.Error(err)
			return
		}
		if root.IsLeaf() || len(root.Entries) < 2 {
			t.Errorf("tree too small for the test (leaf root or %d children)", len(root.Entries))
			return
		}
		victim := int(root.Entries[0].Ref)
		if err := reg.ReadChunkRaw(victim, raw); err != nil {
			t.Error(err)
			return
		}
		victimPayload, _, err := region.DecodeChunk(raw, nil)
		if err != nil {
			t.Error(err)
			return
		}
		w, err := reg.BeginWrite(victim, victimPayload)
		if err != nil {
			t.Error(err)
			return
		}
		if _, _, err := c.Search(p, q); !errors.Is(err, ErrGaveUp) {
			t.Errorf("search with wedged chunk: err = %v, want ErrGaveUp", err)
		}
		if n := c.ep.DataQP.CQ().Len(); n != 0 {
			t.Errorf("CQ holds %d stale completions after aborted traversal", n)
		}
		if st := c.Stats(); st.TornRetries == 0 {
			t.Error("no torn retries recorded")
		}
		w.Finish()
		want := expected(t, r.tree, q)
		items, _, err := c.Search(p, q)
		if err != nil {
			t.Errorf("search after recovery: %v", err)
			return
		}
		if !sameItems(items, want) {
			t.Error("post-recovery results diverge from oracle")
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
