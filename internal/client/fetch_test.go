package client

import (
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// TestSearchFetchAgrees forces the fetch access method and checks every
// result against the brute-force tree search: mailbox delivery for large
// results, inline fallback for small ones, both correct.
func TestSearchFetchAgrees(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, fetchSlots: 8})
	c := r.newClient(t, "c0", Config{Forced: MethodFetch, Fetch: true})
	rng := rand.New(rand.NewSource(3))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			q := randRect(rng, rng.Float64()*0.2)
			want := expected(t, r.tree, q)
			items, used, err := c.Search(p, q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if used != MethodFetch {
				t.Errorf("used %v, want fetch", used)
			}
			if !sameItems(items, want) {
				t.Errorf("query %d: %d items, want %d", i, len(items), lenTotal(want))
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FetchSearches != 40 {
		t.Errorf("fetch searches = %d, want 40", st.FetchSearches)
	}
	if st.FetchBytes == 0 || st.FetchPulls == 0 {
		t.Errorf("no mailbox pulls recorded: %+v", st)
	}
	if st.FetchInline == 0 {
		t.Error("no inline fallback despite small-result queries")
	}
	if st.FetchFallbacks != 0 {
		t.Errorf("fetch fallbacks = %d, want 0 on a read-only run", st.FetchFallbacks)
	}
	srvStats := r.srv.Stats()
	if srvStats.FetchSearches != 40 {
		t.Errorf("server fetch searches = %d", srvStats.FetchSearches)
	}
	if srvStats.FetchBytes == 0 {
		t.Error("server delivered no mailbox bytes")
	}
	if used, _ := r.srv.Mailbox().Occupancy(); used != 0 {
		t.Errorf("mailbox leaked %d slots", used)
	}
}

// TestSearchFetchInlineThreshold pins the inline decision: with the inline
// threshold forced to 1 item, everything above it travels via the mailbox.
func TestSearchFetchInlineThreshold(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 3000, fetchSlots: 4, fetchInline: 1})
	c := r.newClient(t, "c0", Config{Forced: MethodFetch, Fetch: true})
	rng := rand.New(rand.NewSource(5))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			q := randRect(rng, 0.1+rng.Float64()*0.2)
			want := expected(t, r.tree, q)
			if lenTotal(want) <= 1 {
				continue
			}
			items, _, err := c.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			if !sameItems(items, want) {
				t.Errorf("query %d mismatch", i)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FetchInline != 0 {
		t.Errorf("inline = %d with threshold 1 and multi-item results", st.FetchInline)
	}
	if st.FetchBytes == 0 {
		t.Error("no mailbox deliveries")
	}
}

// TestSearchFetchWithoutMailboxDegrades checks that forcing fetch against a
// server with no mailbox silently degrades to fast messaging — fetch is
// never a correctness dependency.
func TestSearchFetchWithoutMailboxDegrades(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000})
	c := r.newClient(t, "c0", Config{Forced: MethodFetch, Fetch: true})
	rng := rand.New(rand.NewSource(6))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			q := randRect(rng, rng.Float64()*0.2)
			want := expected(t, r.tree, q)
			items, _, err := c.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			if !sameItems(items, want) {
				t.Errorf("query %d mismatch", i)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.FetchBytes != 0 || st.FetchPulls != 0 {
		t.Errorf("pulled a mailbox that does not exist: %+v", st)
	}
}

// TestBatchWithFetch routes a batch's searches through the fetch method and
// checks results against a fast-messaging batch of the same operations.
func TestBatchWithFetch(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, fetchSlots: 8})
	cFetch := r.newClient(t, "c0", Config{Forced: MethodFetch, Fetch: true})
	cFast := r.newClient(t, "c1", Config{Forced: MethodFast})
	rng := rand.New(rand.NewSource(9))
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{Type: wire.MsgSearch, Rect: randRect(rng, rng.Float64()*0.2)}
	}
	r.e.Spawn("driver", func(p *sim.Proc) {
		var fetchRes, fastRes []BatchResult
		fetchRes = cFetch.ExecBatch(p, ops, fetchRes)
		fastRes = cFast.ExecBatch(p, ops, fastRes)
		for i := range ops {
			if fetchRes[i].Err != nil || fastRes[i].Err != nil {
				t.Errorf("op %d: fetch err=%v fast err=%v", i, fetchRes[i].Err, fastRes[i].Err)
				continue
			}
			if fetchRes[i].Method != MethodFetch {
				t.Errorf("op %d method %v", i, fetchRes[i].Method)
			}
			want := map[uint64]int{}
			for _, it := range fastRes[i].Items {
				want[it.Ref]++
			}
			if !sameItems(fetchRes[i].Items, want) {
				t.Errorf("op %d: %d items, fast got %d", i, len(fetchRes[i].Items), len(fastRes[i].Items))
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if st := cFetch.Stats(); st.FetchSearches != 8 {
		t.Errorf("fetch searches = %d, want 8", st.FetchSearches)
	}
	if used, _ := r.srv.Mailbox().Occupancy(); used != 0 {
		t.Errorf("mailbox leaked %d slots", used)
	}
}
