// Package client implements the Catfish client: fast-messaging requests
// over ring buffers, client-side R-tree traversal over one-sided RDMA Reads
// (single-issue baseline and the multi-issue pipeline of §IV-C), and the
// adaptive back-off coordination of Algorithm 1 that switches each search
// between the two based on the server's heartbeat-reported CPU utilization.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// Method identifies how a search was executed.
type Method int

// Search methods.
const (
	// MethodFast is RDMA-Write fast messaging (server executes the search).
	MethodFast Method = iota + 1
	// MethodOffload is client-side traversal over RDMA Reads.
	MethodOffload
	// MethodTCP is the kernel-TCP baseline path.
	MethodTCP
	// MethodFetch is RFP-style remote result fetching: the server executes
	// the search and deposits the result in a mailbox slot; the client pulls
	// it with one-sided RDMA Reads (DESIGN.md §5.10).
	MethodFetch
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodFast:
		return "fast"
	case MethodOffload:
		return "offload"
	case MethodTCP:
		return "tcp"
	case MethodFetch:
		return "fetch"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Errors.
var (
	ErrServer   = errors.New("client: server reported an error")
	ErrGaveUp   = errors.New("client: offloaded search exceeded retry budget")
	ErrNotFound = errors.New("client: entry not found")
)

// Config configures a Client.
type Config struct {
	Engine   *sim.Engine
	Host     *fabric.Host
	Endpoint *server.Endpoint
	Cost     netmodel.CostModel

	// Adaptive enables Algorithm 1; otherwise every search uses Forced.
	Adaptive bool
	Forced   Method

	// N is the back-off window unit (paper: 8).
	N int
	// T is the busy threshold on server CPU utilization (paper: 0.95).
	T float64
	// HeartbeatInv is the agreed heartbeat interval Inv (paper: 10 ms).
	HeartbeatInv time.Duration

	// MultiIssue fetches all intersecting children concurrently during
	// offloaded traversal; otherwise nodes are fetched one at a time
	// (the FaRM-style baseline).
	MultiIssue bool

	// PredSmoothing enables an EWMA utilization predictor with the given
	// coefficient α ∈ (0, 1]: predUtil = α·latest + (1−α)·previous. Zero
	// keeps the paper's predictor (the most recent heartbeat value); the
	// paper's §VI names smarter prediction as an extension point.
	PredSmoothing float64

	// Fetch arms the third access method in the adaptive switch: when the
	// request is outside any offload window and the heartbeat's predicted
	// send-engine TX utilization exceeds TxT, the search is executed by the
	// server but its result is pulled from a mailbox slot with one-sided
	// reads instead of being streamed back (DESIGN.md §5.10). Off, the
	// decision sequence is bit-for-bit the binary Algorithm 1 policy.
	Fetch bool
	// TxT is the busy threshold on predicted TX utilization (default 0.8).
	TxT float64

	// CacheRoot keeps the last consistently-read root node and starts
	// offloaded traversals from it, saving one RDMA Read per search (the
	// top-level caching idea of the Cell B-tree store the paper cites).
	// The cache is invalidated whenever a traversal observes staleness.
	CacheRoot bool

	// NodeCache is the capacity, in nodes, of the client-side
	// version-validated cache of decoded internal nodes (0 disables it,
	// leaving the read path identical to an uncached client). Entries are
	// lease-fresh for one HeartbeatInv after validation — the same
	// bounded-staleness contract as CacheRoot — and past the lease are
	// revalidated with a version-only read (an eighth of a chunk) before
	// being trusted. See internal/nodecache.
	NodeCache int

	// Prefetch is the token-bucket capacity for speculative grandchild
	// reads during multi-issue offloaded traversal (0 disables
	// prefetching, leaving the read path bit-for-bit identical). While a
	// fetched internal node decodes, its most query-overlapping children
	// get speculative span reads posted into the same doorbell batch; the
	// bucket refills at a rate proportional to the heartbeat-reported idle
	// fraction of the server fabric, so speculation backs off exactly when
	// the adaptive switch says the system is busy. See DESIGN.md §5.9.
	Prefetch int

	// MaxRestarts bounds full-search restarts after structural staleness
	// (default 8); MaxChunkRetries bounds per-chunk torn-read retries
	// (default 64).
	MaxRestarts     int
	MaxChunkRetries int

	// Metrics, when non-nil, exposes the client's counters, the predicted
	// server utilization, and a search-latency histogram on the registry
	// under catfish_client_* names. Callers running several clients against
	// one registry should hand each client a scoped view (Registry.With) or
	// accept that callback metrics register first-wins.
	Metrics *telemetry.Registry

	// Trace, when non-nil, receives one telemetry.Trace per search
	// recording the adaptive decision path (method, back-off state,
	// predicted utilization, reads issued, retries, latency).
	Trace *telemetry.Tracer

	// Shard is the shard index stamped into trace records (routers set it;
	// 0 for unsharded clients).
	Shard int
}

// Client is one Catfish client (the paper runs up to 32 per machine).
type Client struct {
	cfg Config
	ep  *server.Endpoint

	reqID  uint64
	tagSeq uint64

	// Algorithm 1 state machine (shared with every framework client).
	sw *adaptive.Switch

	// rootCache holds the last consistent root image (CacheRoot);
	// rootVerSeen is the root version last observed in the heartbeat
	// mailbox's second word, used for lease-like invalidation of both
	// rootCache and ncache.
	rootCache   *rtree.Node
	rootVerSeen uint64

	// ncache is the bounded version-validated cache of decoded internal
	// nodes (nil when Config.NodeCache is 0: every lookup misses).
	ncache *nodecache.Cache

	// Prefetch token bucket: prefTokens tokens remain (≤ Config.Prefetch),
	// refilled lazily at refill time proportional to fabric idleness.
	prefTokens     float64
	prefLastRefill time.Duration

	encBuf  []byte
	payload []byte
	node    rtree.Node
	nodeVer uint64 // region version of the chunk last decoded into node

	// Reused batching state: the doorbell batch under construction during
	// multi-issue traversal, the batch container encoder, and the decoded
	// per-op results of ExecBatch.
	readBatch []fabric.ReadReq
	benc      wire.BatchEncoder
	respBuf   wire.Response

	stats   telemetry.ClientMetrics
	latHist *telemetry.Histogram
}

// New validates the configuration and returns a client.
func New(cfg Config) (*Client, error) {
	if cfg.Engine == nil || cfg.Host == nil || cfg.Endpoint == nil {
		return nil, errors.New("client: Engine, Host and Endpoint are required")
	}
	if cfg.N == 0 {
		cfg.N = 8
	}
	if cfg.T == 0 {
		cfg.T = 0.95
	}
	if cfg.HeartbeatInv == 0 {
		cfg.HeartbeatInv = 10 * time.Millisecond
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.MaxChunkRetries == 0 {
		cfg.MaxChunkRetries = 64
	}
	if !cfg.Adaptive && cfg.Forced == 0 {
		if cfg.Endpoint.TCP != nil {
			cfg.Forced = MethodTCP
		} else {
			cfg.Forced = MethodFast
		}
	}
	c := &Client{cfg: cfg, ep: cfg.Endpoint}
	c.prefTokens = float64(cfg.Prefetch) // start full: idle fabric until told otherwise
	if cfg.NodeCache > 0 && cfg.Endpoint.RegionVers != nil {
		c.ncache = nodecache.New(cfg.NodeCache, cfg.HeartbeatInv,
			cfg.Endpoint.ChunkSize, cfg.Endpoint.RegionVers.VersionsSize())
	}
	c.sw = adaptive.New(adaptive.Config{
		N:             cfg.N,
		T:             cfg.T,
		Inv:           cfg.HeartbeatInv,
		PredSmoothing: cfg.PredSmoothing,
		EnableFetch:   cfg.Fetch,
		TxT:           cfg.TxT,
	}, cfg.Engine.Rand())
	if cfg.Metrics != nil {
		c.stats.Register(cfg.Metrics)
		telemetry.RegisterCacheFuncs(cfg.Metrics, func() telemetry.CacheStats {
			ns := c.ncache.Stats()
			return telemetry.CacheStats{Hits: ns.Hits, VerifiedHits: ns.VerifiedHits,
				Misses: ns.Misses, Evictions: ns.Evictions, BytesSaved: ns.BytesSaved,
				PrefetchHits: ns.PrefetchHits, PrefetchWaste: ns.PrefetchWaste}
		})
		cfg.Metrics.GaugeFunc("catfish_client_pred_util", c.sw.PredictedUtil)
		c.latHist = cfg.Metrics.Histogram("catfish_client_search_latency_seconds")
	}
	return c, nil
}

// Stats returns a snapshot of the client counters. Counters are mutated
// atomically, so the snapshot is safe to take while the simulation runs
// (progress meters, tests under -race).
func (c *Client) Stats() telemetry.ClientSnapshot {
	out := c.stats.Snapshot()
	ns := c.ncache.Stats()
	out.CacheHits = ns.Hits
	out.CacheVerifiedHits = ns.VerifiedHits
	out.CacheMisses = ns.Misses
	out.CacheEvictions = ns.Evictions
	out.CacheBytesSaved = ns.BytesSaved
	out.CachePrefetchHits = ns.PrefetchHits
	out.CachePrefetchWaste = ns.PrefetchWaste
	return out
}

// prefetchBudget refills the token bucket and returns how many speculative
// reads the current wave may post (≤ the remaining whole tokens). The
// refill rate is Prefetch tokens per heartbeat interval scaled by the
// fabric's idle fraction (1 − u_serv): an idle server earns the full rate,
// a server past the busy threshold T earns nothing — RFP-style speculation
// that never recreates the congestion the adaptive switch avoids.
func (c *Client) prefetchBudget(now time.Duration) int {
	if c.cfg.Prefetch <= 0 {
		return 0
	}
	elapsed := now - c.prefLastRefill
	c.prefLastRefill = now
	util := c.readHeartbeat()
	if util < c.cfg.T && elapsed > 0 {
		rate := float64(c.cfg.Prefetch) * (1 - util) / float64(c.cfg.HeartbeatInv)
		c.prefTokens += rate * float64(elapsed)
		if c.prefTokens > float64(c.cfg.Prefetch) {
			c.prefTokens = float64(c.cfg.Prefetch)
		}
	}
	return int(c.prefTokens)
}

// spendPrefetch consumes n tokens after a wave posted n speculative reads.
func (c *Client) spendPrefetch(n int) {
	c.prefTokens -= float64(n)
	if c.prefTokens < 0 {
		c.prefTokens = 0
	}
}

func (c *Client) nextID() uint64 {
	c.reqID++
	return c.reqID
}

// Search executes a rectangle search, choosing the method adaptively
// (Algorithm 1) or as forced by the configuration, and returns the matching
// items along with the method used.
func (c *Client) Search(p *sim.Proc, q geo.Rect) ([]wire.Item, Method, error) {
	m := c.cfg.Forced
	if c.cfg.Adaptive {
		m = c.decide(p)
	}
	tracing := c.cfg.Trace != nil
	var start time.Duration
	var readsBefore, tornBefore uint64
	if tracing || c.latHist != nil {
		start = p.Now()
	}
	if tracing {
		readsBefore = c.stats.NodesFetched.Load()
		tornBefore = c.stats.TornRetries.Load()
	}
	var items []wire.Item
	var err error
	switch m {
	case MethodOffload:
		c.stats.OffloadSearches.Inc()
		items, err = c.searchOffload(p, q)
	case MethodTCP:
		c.stats.TCPSearches.Inc()
		items, err = c.searchTCP(p, q)
	case MethodFetch:
		c.stats.FetchSearches.Inc()
		items, err = c.searchFetch(p, q)
	default:
		m = MethodFast
		c.stats.FastSearches.Inc()
		items, err = c.searchFast(p, q)
	}
	if tracing || c.latHist != nil {
		lat := p.Now() - start
		c.latHist.Record(lat)
		if tracing {
			rbusy, roff := c.sw.State()
			tr := telemetry.Trace{
				Start:        start,
				Method:       m.String(),
				Shard:        c.cfg.Shard,
				RBusy:        rbusy,
				ROff:         roff,
				PredUtil:     c.sw.PredictedUtil(),
				PredTX:       c.sw.PredictedTX(),
				OffloadReads: uint32(c.stats.NodesFetched.Load() - readsBefore),
				TornRetries:  uint32(c.stats.TornRetries.Load() - tornBefore),
				Latency:      lat,
			}
			if err != nil {
				tr.Err = err.Error()
			}
			c.cfg.Trace.Record(tr)
		}
	}
	return items, m, err
}

// Insert adds a rectangle; R-tree writes always travel by messaging so the
// server's lock discipline covers them (§III-B).
func (c *Client) Insert(p *sim.Proc, r geo.Rect, ref uint64) error {
	c.stats.Inserts.Inc()
	resp, err := c.roundTrip(p, wire.Request{Type: wire.MsgInsert, ID: c.nextID(), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return rerr
		}
		return fmt.Errorf("%w: insert status %d", ErrServer, resp.Status)
	}
	return nil
}

// Delete removes an exact (rect, ref) entry.
func (c *Client) Delete(p *sim.Proc, r geo.Rect, ref uint64) error {
	c.stats.Deletes.Inc()
	resp, err := c.roundTrip(p, wire.Request{Type: wire.MsgDelete, ID: c.nextID(), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	default:
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return rerr
		}
		return fmt.Errorf("%w: delete status %d", ErrServer, resp.Status)
	}
}

// Promote asks the server to adopt epoch and start accepting writes — the
// router's failover control message. It travels as a plain request so a
// killed server answers StatusUnavailable and the router moves on to the
// next candidate.
func (c *Client) Promote(p *sim.Proc, epoch uint64) error {
	resp, err := c.roundTrip(p, wire.Request{Type: wire.MsgPromote, ID: c.nextID(), Ref: epoch})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return rerr
		}
		return fmt.Errorf("%w: promote status %d", ErrServer, resp.Status)
	}
	return nil
}

// decide runs the client module of the adaptive coordination
// (Algorithm 1 extended with the 3-way fetch branch), delegating to the
// shared adaptive.Switch state machine — see that package for the policy
// and its one documented deviation from the paper's pseudocode. A fetch
// verdict against an endpoint without a mailbox (server started with
// FetchSlots = 0) degrades to fast messaging.
func (c *Client) decide(p *sim.Proc) Method {
	switch c.sw.DecideMethod(p.Now(), c.readHeartbeatBoth, c.clearHeartbeat) {
	case adaptive.ChooseOffload:
		return MethodOffload
	case adaptive.ChooseFetch:
		if c.ep.MailboxMem != nil {
			return MethodFetch
		}
		return MethodFast
	default:
		return MethodFast
	}
}

// readHeartbeat returns the mailbox utilization (0 = no heartbeat, per the
// paper's u_serv != 0 check).
func (c *Client) readHeartbeat() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(c.ep.HeartbeatM.Bytes()))
}

// readHeartbeatBoth additionally returns the heartbeat's TX-utilization
// word (0 against servers whose mailboxes predate the widened layout).
func (c *Client) readHeartbeatBoth() (float64, float64) {
	b := c.ep.HeartbeatM.Bytes()
	cpu := math.Float64frombits(binary.LittleEndian.Uint64(b))
	tx := 0.0
	if len(b) >= server.HeartbeatMailboxSize {
		tx = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
	}
	return cpu, tx
}

// clearHeartbeat is the paper's memset(u_serv, 0). Only the utilization
// word is cleared: the mailbox's second word carries the root version and
// must persist for the root-cache invalidation check. The switch invokes it
// exactly once per consumed heartbeat, so it doubles as the counting point.
func (c *Client) clearHeartbeat() {
	c.stats.HeartbeatsSeen.Inc()
	b := c.ep.HeartbeatM.Bytes()
	for i := 0; i < 8 && i < len(b); i++ {
		b[i] = 0
	}
}

// HeartbeatSeq returns the sequence number of the last heartbeat written
// into this client's mailbox (0 before the first one). Unlike the
// utilization word — which Algorithm 1 clears after reading and
// non-adaptive clients never clear — the sequence advances exactly once
// per heartbeat arrival, so liveness trackers poll it for changes.
func (c *Client) HeartbeatSeq() uint64 {
	if c.ep.HeartbeatM == nil {
		return 0
	}
	b := c.ep.HeartbeatM.Bytes()
	if len(b) < 24 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[16:])
}

// heartbeatRootVersion reads the root version published alongside the
// utilization (0 when the server has not heartbeated yet).
func (c *Client) heartbeatRootVersion() uint64 {
	b := c.ep.HeartbeatM.Bytes()
	if len(b) < 16 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[8:])
}

// searchFast sends the search over the request ring and collects the
// (possibly segmented) response.
func (c *Client) searchFast(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	resp, err := c.roundTrip(p, wire.Request{Type: wire.MsgSearch, ID: c.nextID(), Rect: q})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return nil, rerr
		}
		return nil, fmt.Errorf("%w: search status %d", ErrServer, resp.Status)
	}
	return resp.Items, nil
}

// roundTrip performs one fast-messaging request/response exchange,
// accumulating response segments until END.
func (c *Client) roundTrip(p *sim.Proc, req wire.Request) (wire.Response, error) {
	if c.ep.TCP != nil {
		return c.roundTripTCP(p, req)
	}
	c.encBuf = req.Encode(c.encBuf[:0])
	if err := c.ep.ReqWriter.Send(p, c.encBuf, req.ID, true); err != nil {
		return wire.Response{}, err
	}
	var out wire.Response
	for {
		c.ep.RespReader.CQ().Pop(p)
		done, err := c.drainResponses(req.ID, &out)
		if rerr := c.ep.RespReader.ReportHead(p); rerr != nil {
			return out, rerr
		}
		if err != nil {
			return out, err
		}
		if done {
			return out, nil
		}
	}
}

// drainResponses consumes every complete frame in the response ring,
// folding segments of request id into out. It reports whether the final
// segment has arrived.
func (c *Client) drainResponses(id uint64, out *wire.Response) (bool, error) {
	done := false
	for {
		payload, err, ok := c.ep.RespReader.TryRecv()
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		typ, err := wire.PeekType(payload)
		if err != nil {
			return done, err
		}
		if typ != wire.MsgResponse {
			continue // stray frame (unused message kinds); ignore
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return done, err
		}
		if resp.ID != id {
			continue // stale segment from an aborted exchange
		}
		out.ID = resp.ID
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			out.Final = true
			done = true
		}
	}
}

// roundTripTCP is the socket-baseline exchange.
func (c *Client) roundTripTCP(p *sim.Proc, req wire.Request) (wire.Response, error) {
	c.encBuf = req.Encode(c.encBuf[:0])
	c.ep.TCP.Send(p, c.encBuf)
	var out wire.Response
	for {
		payload := c.ep.TCP.Recv(p)
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return out, err
		}
		if resp.ID != req.ID {
			continue
		}
		out.ID = resp.ID
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			return out, nil
		}
	}
}

// searchTCP runs the search over the TCP baseline.
func (c *Client) searchTCP(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	resp, err := c.roundTripTCP(p, wire.Request{Type: wire.MsgSearch, ID: c.nextID(), Rect: q})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		if rerr := replica.StatusError(resp.Status); rerr != nil {
			return nil, rerr
		}
		return nil, fmt.Errorf("%w: search status %d", ErrServer, resp.Status)
	}
	return resp.Items, nil
}
