package client

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
)

// algoClient builds a client whose heartbeat mailbox the test writes
// directly, isolating Algorithm 1 from the rest of the system.
func algoClient(t *testing.T, e *sim.Engine, n int, thr float64) *Client {
	t.Helper()
	return algoClientSmoothed(t, e, n, thr, 0)
}

func algoClientSmoothed(t *testing.T, e *sim.Engine, n int, thr, smoothing float64) *Client {
	t.Helper()
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	host := net.NewHost("c", sim.NewCPU(e, 2))
	ep := &server.Endpoint{HeartbeatM: host.RegisterMemory(8)}
	c, err := New(Config{
		Engine: e, Host: host, Endpoint: ep,
		Cost:     netmodel.DefaultCostModel(),
		Adaptive: true, N: n, T: thr,
		HeartbeatInv:  time.Millisecond,
		PredSmoothing: smoothing,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func setHeartbeat(c *Client, util float64) {
	binary.LittleEndian.PutUint64(c.ep.HeartbeatM.Bytes(), math.Float64bits(util))
}

func TestAlgorithm1StaysFastWhenIdle(t *testing.T) {
	e := sim.New(1)
	c := algoClient(t, e, 8, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(2 * time.Millisecond)
			setHeartbeat(c, 0.30) // below threshold
			if m := c.decide(p); m != MethodFast {
				t.Errorf("step %d: method %v with idle server", i, m)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1FirstWindowWithinN(t *testing.T) {
	e := sim.New(1)
	const n = 8
	c := algoClient(t, e, n, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		setHeartbeat(c, 0.99)
		offloads := 0
		for i := 0; i < 3*n; i++ {
			// No further heartbeats: the window must drain and stay fast.
			if c.decide(p) == MethodOffload {
				offloads++
			}
		}
		if offloads >= n {
			t.Errorf("first back-off window = %d, want < N=%d", offloads, n)
		}
		if rbusy, _ := c.sw.State(); rbusy != 1 {
			t.Errorf("rbusy = %d after one busy heartbeat", rbusy)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1BacksOffExponentially(t *testing.T) {
	e := sim.New(1)
	const n = 8
	c := algoClient(t, e, n, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		// Keep the server busy across many heartbeat rounds; the offload
		// window must extend to [(k-1)N, kN).
		for round := 1; round <= 5; round++ {
			p.Sleep(2 * time.Millisecond)
			setHeartbeat(c, 1.0)
			m := c.decide(p)
			if round >= 2 && m != MethodOffload {
				t.Errorf("round %d: expected offloading to continue", round)
			}
			rbusy, roff := c.sw.State()
			lo, hi := (rbusy-1)*n, rbusy*n
			if roff < lo-1 || roff >= hi {
				t.Errorf("round %d: roff=%d outside [%d, %d)", round, roff, lo, hi)
			}
			// Drain a few requests between heartbeats (fewer than the
			// window so the busy streak keeps extending).
			for i := 0; i < 3; i++ {
				if _, roff := c.sw.State(); roff > 0 {
					c.decide(p)
				}
			}
		}
		if rbusy, _ := c.sw.State(); rbusy < 3 {
			t.Errorf("rbusy = %d after 5 busy rounds, want back-off growth", rbusy)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1ResetsOnIdleHeartbeat(t *testing.T) {
	e := sim.New(1)
	c := algoClient(t, e, 8, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		setHeartbeat(c, 1.0)
		c.decide(p)
		if rbusy, _ := c.sw.State(); rbusy != 1 {
			t.Fatalf("rbusy = %d", rbusy)
		}
		p.Sleep(2 * time.Millisecond)
		setHeartbeat(c, 0.10)
		c.decide(p)
		if rbusy, _ := c.sw.State(); rbusy != 0 {
			t.Errorf("rbusy = %d after idle heartbeat, want 0", rbusy)
		}
		// The remaining window still drains (the paper lets queued
		// offloads finish).
		_, remaining := c.sw.State()
		for i := 0; i < remaining; i++ {
			if c.decide(p) != MethodOffload {
				t.Errorf("offload window cut short at %d of %d", i, remaining)
				return
			}
		}
		if c.decide(p) != MethodFast {
			t.Error("did not return to fast messaging after window drained")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1IgnoresMissingHeartbeat(t *testing.T) {
	// Paper: a missing heartbeat (u_serv == 0) is ignored — the delay may
	// mean the network is saturated, where offloading would make it worse.
	e := sim.New(1)
	c := algoClient(t, e, 8, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		// Mailbox still zero: no state change, stay fast.
		if m := c.decide(p); m != MethodFast {
			t.Errorf("method %v with no heartbeat", m)
		}
		if rbusy, roff := c.sw.State(); rbusy != 0 || roff != 0 {
			t.Errorf("state changed without heartbeat: rbusy=%d roff=%d", rbusy, roff)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1ConsumesHeartbeat(t *testing.T) {
	// decide must memset u_serv after reading (the paper's line 9).
	e := sim.New(1)
	c := algoClient(t, e, 8, 0.95)
	e.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		setHeartbeat(c, 1.0)
		c.decide(p)
		if got := c.readHeartbeat(); got != 0 {
			t.Errorf("u_serv = %v after decide, want 0", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
