package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// rig is a one-server test cluster.
type rig struct {
	e    *sim.Engine
	net  *fabric.Network
	srv  *server.Server
	tree *rtree.Tree
	host *fabric.Host // server host
}

type rigOpts struct {
	mode        server.Mode
	heartbeat   time.Duration
	staged      bool
	items       int
	tcpNet      bool
	cores       int // server cores (default 28)
	mergeSpan   int // fabric merge span (0 = merging off)
	fetchSlots  int // result-mailbox slots (0 = fetch disabled)
	fetchInline int // inline threshold in items (0 = server default)
}

func newRig(t testing.TB, o rigOpts) *rig {
	t.Helper()
	e := sim.New(1)
	prof := netmodel.InfiniBand100G
	if o.tcpNet {
		prof = netmodel.Ethernet1G
	}
	prof.MergeSpan = o.mergeSpan
	net := fabric.NewNetwork(e, prof)
	cores := o.cores
	if cores == 0 {
		cores = 28
	}
	serverCPU := sim.NewCPU(e, cores)
	host := net.NewHost("server", serverCPU)
	reg, err := region.New(1<<14, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if o.items > 0 {
		rng := rand.New(rand.NewSource(7))
		items := make([]rtree.Entry, o.items)
		for i := range items {
			items[i] = rtree.Entry{Rect: randRect(rng, 0.01), Ref: uint64(i)}
		}
		if err := tree.BulkLoad(items, 0); err != nil {
			t.Fatal(err)
		}
	}
	cfg := server.Config{
		Engine:            e,
		Host:              host,
		Tree:              tree,
		Cost:              netmodel.DefaultCostModel(),
		Mode:              o.mode,
		HeartbeatInterval: o.heartbeat,
		StagedNodeWrites:  o.staged,
		FetchSlots:        o.fetchSlots,
		FetchInlineMax:    o.fetchInline,
	}
	if o.mode == server.ModePolling {
		cfg.PollCPU = sim.NewPollCPU(e, 28, 5*time.Microsecond)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, net: net, srv: srv, tree: tree, host: host}
}

func randRect(rng *rand.Rand, maxEdge float64) geo.Rect {
	w, h := rng.Float64()*maxEdge, rng.Float64()*maxEdge
	x, y := rng.Float64()*(1-w), rng.Float64()*(1-h)
	return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
}

// newClient attaches an RDMA client to the rig.
func (r *rig) newClient(t testing.TB, name string, cfg Config) *Client {
	t.Helper()
	clientCPU := sim.NewCPU(r.e, 4)
	host := r.net.NewHost(name, clientCPU)
	ep, err := r.srv.Connect(host, r.net, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = r.e
	cfg.Host = host
	cfg.Endpoint = ep
	if cfg.Cost == (netmodel.CostModel{}) {
		cfg.Cost = netmodel.DefaultCostModel()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newTCPClient attaches a TCP client.
func (r *rig) newTCPClient(t testing.TB, name string) *Client {
	t.Helper()
	host := r.net.NewHost(name, sim.NewCPU(r.e, 4))
	ep, err := r.srv.ConnectTCP(host, r.net)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Engine: r.e, Host: host, Endpoint: ep, Cost: netmodel.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// expected returns the brute-force result refs for q.
func expected(t testing.TB, tree *rtree.Tree, q geo.Rect) map[uint64]int {
	t.Helper()
	got, _, err := tree.SearchCollect(q)
	if err != nil {
		t.Fatal(err)
	}
	out := map[uint64]int{}
	for _, e := range got {
		out[e.Ref]++
	}
	return out
}

func sameItems(items []wire.Item, want map[uint64]int) bool {
	if len(items) != lenTotal(want) {
		return false
	}
	got := map[uint64]int{}
	for _, it := range items {
		got[it.Ref]++
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

func lenTotal(m map[uint64]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestSearchMethodsAgree(t *testing.T) {
	for _, method := range []Method{MethodFast, MethodOffload} {
		for _, multi := range []bool{false, true} {
			if method == MethodFast && multi {
				continue
			}
			name := method.String()
			if multi {
				name += "-multi"
			}
			t.Run(name, func(t *testing.T) {
				r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
				c := r.newClient(t, "c0", Config{Forced: method, MultiIssue: multi})
				rng := rand.New(rand.NewSource(3))
				r.e.Spawn("driver", func(p *sim.Proc) {
					for i := 0; i < 40; i++ {
						q := randRect(rng, rng.Float64()*0.2)
						want := expected(t, r.tree, q)
						items, used, err := c.Search(p, q)
						if err != nil {
							t.Errorf("query %d: %v", i, err)
							return
						}
						if used != method {
							t.Errorf("used %v, want %v", used, method)
						}
						if !sameItems(items, want) {
							t.Errorf("query %d: %d items, want %d", i, len(items), lenTotal(want))
						}
					}
					p.Engine().Stop()
				})
				if err := r.e.Run(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestSearchTCPAgrees(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000, tcpNet: true})
	c := r.newTCPClient(t, "c0")
	rng := rand.New(rand.NewSource(4))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			q := randRect(rng, rng.Float64()*0.3)
			want := expected(t, r.tree, q)
			items, used, err := c.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			if used != MethodTCP {
				t.Errorf("used %v", used)
			}
			if !sameItems(items, want) {
				t.Errorf("query %d mismatch", i)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeResponseSegmented(t *testing.T) {
	// A whole-space query on 5000 items needs many CONT segments.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	r.e.Spawn("driver", func(p *sim.Proc) {
		items, _, err := c.Search(p, geo.NewRect(0, 0, 1, 1))
		if err != nil {
			t.Error(err)
		}
		if len(items) != 5000 {
			t.Errorf("got %d items, want 5000", len(items))
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.srv.Stats().Segments < 10 {
		t.Errorf("segments = %d, expected many for a 5000-item response", r.srv.Stats().Segments)
	}
}

func TestInsertDeleteThroughMessaging(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 100})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	target := geo.NewRect(0.40, 0.40, 0.41, 0.41)
	r.e.Spawn("driver", func(p *sim.Proc) {
		if err := c.Insert(p, target, 999999); err != nil {
			t.Error(err)
			return
		}
		items, _, err := c.Search(p, target)
		if err != nil {
			t.Error(err)
			return
		}
		found := false
		for _, it := range items {
			if it.Ref == 999999 {
				found = true
			}
		}
		if !found {
			t.Error("inserted item not found")
		}
		if err := c.Delete(p, target, 999999); err != nil {
			t.Error(err)
		}
		if err := c.Delete(p, target, 999999); !errors.Is(err, ErrNotFound) {
			t.Errorf("second delete err = %v, want ErrNotFound", err)
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPollingModeServes(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModePolling, items: 1000})
	c := r.newClient(t, "c0", Config{Forced: MethodFast})
	rng := rand.New(rand.NewSource(5))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			q := randRect(rng, 0.1)
			want := expected(t, r.tree, q)
			items, _, err := c.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			if !sameItems(items, want) {
				t.Errorf("query %d mismatch", i)
			}
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSwitchesUnderLoad(t *testing.T) {
	// Saturate a tiny event-mode server; adaptive clients must start
	// offloading after heartbeats report high utilization.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 3000, heartbeat: time.Millisecond, cores: 1})
	var clients []*Client
	for i := 0; i < 8; i++ {
		clients = append(clients, r.newClient(t, "c", Config{
			Adaptive:     true,
			MultiIssue:   true,
			HeartbeatInv: time.Millisecond,
			T:            0.5,
		}))
	}
	rng := rand.New(rand.NewSource(6))
	wg := sim.NewWaitGroup(r.e)
	for i, c := range clients {
		c := c
		seed := int64(i)
		wg.Add(1)
		r.e.Spawn("driver", func(p *sim.Proc) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(seed))
			_ = lrng
			for j := 0; j < 300; j++ {
				q := randRect(rng, 0.001)
				if _, _, err := c.Search(p, q); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	r.e.Spawn("stopper", func(p *sim.Proc) {
		wg.Wait(p)
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	var fast, off, hb uint64
	for _, c := range clients {
		st := c.Stats()
		fast += st.FastSearches
		off += st.OffloadSearches
		hb += st.HeartbeatsSeen
	}
	if hb == 0 {
		t.Fatal("no heartbeats observed")
	}
	if off == 0 {
		t.Errorf("adaptive clients never offloaded (fast=%d)", fast)
	}
	if fast == 0 {
		t.Errorf("adaptive clients never used fast messaging (off=%d)", off)
	}
}

func TestOffloadTornReadRetryUnderInserts(t *testing.T) {
	// Staged node writes open real torn windows; a hammering offload
	// client must retry versions yet always return consistent results.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000, staged: true})
	writer := r.newClient(t, "writer", Config{Forced: MethodFast})
	reader := r.newClient(t, "reader", Config{Forced: MethodOffload, MultiIssue: true})
	rng := rand.New(rand.NewSource(8))
	wg := sim.NewWaitGroup(r.e)
	wg.Add(2)
	r.e.Spawn("writer", func(p *sim.Proc) {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			if err := writer.Insert(p, randRect(rng, 0.01), uint64(100000+i)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.e.Spawn("reader", func(p *sim.Proc) {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			q := randRect(rng, 0.05)
			items, _, err := reader.Search(p, q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			for _, it := range items {
				if !q.Intersects(it.Rect) {
					t.Errorf("result %v does not intersect query %v", it.Rect, q)
				}
			}
		}
	})
	r.e.Spawn("stopper", func(p *sim.Proc) {
		wg.Wait(p)
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	t.Logf("torn retries: %d, stale restarts: %d",
		reader.Stats().TornRetries, reader.Stats().StaleRestarts)
}

func TestMultiIssueFasterThanSingle(t *testing.T) {
	// On a broad query touching many subtrees, multi-issue must finish in
	// less virtual time than single-issue (§IV-C).
	measure := func(multi bool) time.Duration {
		r := newRig(t, rigOpts{mode: server.ModeEvent, items: 8000})
		c := r.newClient(t, "c0", Config{Forced: MethodOffload, MultiIssue: multi})
		var elapsed time.Duration
		r.e.Spawn("driver", func(p *sim.Proc) {
			q := geo.NewRect(0.2, 0.2, 0.6, 0.6)
			start := p.Now()
			if _, _, err := c.Search(p, q); err != nil {
				t.Error(err)
			}
			elapsed = p.Now() - start
			p.Engine().Stop()
		})
		if err := r.e.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	single := measure(false)
	multi := measure(true)
	if multi >= single {
		t.Errorf("multi-issue %v not faster than single-issue %v", multi, single)
	}
	t.Logf("single=%v multi=%v speedup=%.2fx", single, multi, float64(single)/float64(multi))
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestMethodString(t *testing.T) {
	if MethodFast.String() != "fast" || MethodOffload.String() != "offload" ||
		MethodTCP.String() != "tcp" || Method(9).String() == "" {
		t.Error("Method.String broken")
	}
}

func TestOffloadAfterTreeGrowth(t *testing.T) {
	// The root chunk is stable; an offload client created before inserts
	// grow the tree must still search correctly afterwards.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 0})
	writer := r.newClient(t, "writer", Config{Forced: MethodFast})
	reader := r.newClient(t, "reader", Config{Forced: MethodOffload, MultiIssue: true})
	rng := rand.New(rand.NewSource(9))
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if err := writer.Insert(p, randRect(rng, 0.02), uint64(i)); err != nil {
				t.Error(err)
				return
			}
		}
		q := geo.NewRect(0, 0, 1, 1)
		items, _, err := reader.Search(p, q)
		if err != nil {
			t.Error(err)
			return
		}
		if len(items) != 500 {
			t.Errorf("found %d of 500 after growth", len(items))
		}
		p.Engine().Stop()
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.tree.Height() < 2 {
		t.Fatalf("tree did not grow (height %d)", r.tree.Height())
	}
}

var _ = region.ErrTornRead // keep import for documentation cross-reference
