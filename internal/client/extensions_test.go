package client

import (
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
)

func TestPredSmoothingDampsSpike(t *testing.T) {
	// One spiky heartbeat above T must not trigger offloading when the
	// EWMA is configured and history is calm.
	e := sim.New(1)
	c := algoClientSmoothed(t, e, 8, 0.95, 0.3)
	e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(2 * time.Millisecond)
			setHeartbeat(c, 0.2)
			c.decide(p)
		}
		p.Sleep(2 * time.Millisecond)
		setHeartbeat(c, 1.0) // spike
		if m := c.decide(p); m != MethodFast {
			t.Errorf("EWMA let a single spike trigger offloading")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRootCacheSavesReads(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000})
	plain := r.newClient(t, "plain", Config{Forced: MethodOffload, MultiIssue: true})
	cached := r.newClient(t, "cached", Config{Forced: MethodOffload, MultiIssue: true, CacheRoot: true})
	rng := rand.New(rand.NewSource(3))
	const searches = 40
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		for i := 0; i < searches; i++ {
			q := randRect(rng, 0.05)
			want := expected(t, r.tree, q)
			a, _, err := plain.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			b, _, err := cached.Search(p, q)
			if err != nil {
				t.Error(err)
				return
			}
			if !sameItems(a, want) || !sameItems(b, want) {
				t.Errorf("query %d: cached/plain results diverge from oracle", i)
			}
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	ps, cs := plain.Stats(), cached.Stats()
	if cs.RootCacheHits < searches-1 {
		t.Errorf("root cache hits = %d, want >= %d", cs.RootCacheHits, searches-1)
	}
	// The cached client reads ~height-1 levels per search: strictly fewer
	// chunk fetches overall.
	if cs.NodesFetched >= ps.NodesFetched {
		t.Errorf("cached fetched %d nodes, plain %d — cache saved nothing",
			cs.NodesFetched, ps.NodesFetched)
	}
}

func TestRootCacheInvalidatedByGrowth(t *testing.T) {
	// Grow the tree until the root splits; within one heartbeat interval
	// the cached-root client must observe the new root version, drop its
	// cache, and find everything again.
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 200, heartbeat: time.Millisecond})
	writer := r.newClient(t, "writer", Config{Forced: MethodFast})
	reader := r.newClient(t, "reader", Config{
		Forced: MethodOffload, MultiIssue: true, CacheRoot: true,
		HeartbeatInv: time.Millisecond,
	})
	rng := rand.New(rand.NewSource(5))
	startHeight := r.tree.Height()
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		// Prime the cache.
		if _, _, err := reader.Search(p, geo.NewRect(0, 0, 1, 1)); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3000 && r.tree.Height() == startHeight; i++ {
			if err := writer.Insert(p, randRect(rng, 0.01), uint64(10_000+i)); err != nil {
				t.Error(err)
				return
			}
		}
		if r.tree.Height() == startHeight {
			t.Error("tree never grew; test needs more inserts")
			return
		}
		// Wait out the staleness lease (one heartbeat interval).
		p.Sleep(3 * time.Millisecond)
		items, _, err := reader.Search(p, geo.NewRect(0, 0, 1, 1))
		if err != nil {
			t.Error(err)
			return
		}
		if len(items) != r.tree.Len() {
			t.Errorf("post-growth search found %d of %d", len(items), r.tree.Len())
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}
