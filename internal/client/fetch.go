package client

import (
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// searchFetch executes a search by remote result fetching (DESIGN.md §5.10):
// the server runs the search and deposits the result in a mailbox slot of
// its dedicated registered region, replying only with a 30-byte descriptor;
// the client pulls the slot with one-sided RDMA Reads and acknowledges so
// the slot can be reused. Small results arrive inline (the server declines
// the mailbox below FetchInlineMax items), and a pull that exhausts its
// torn-read budget falls back to a fast-messaging re-execution — fetch is
// an optimization, never a correctness dependency.
func (c *Client) searchFetch(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	if c.ep.MailboxMem == nil || c.ep.FetchQP == nil {
		return c.searchFast(p, q)
	}
	desc, resp, haveDesc, err := c.roundTripFetch(p, wire.Request{Type: wire.MsgSearchFetch, ID: c.nextID(), Rect: q})
	if err != nil {
		return nil, err
	}
	if !haveDesc {
		// Inline fallback: the server answered with ordinary response
		// segments (small result, or mailbox slots exhausted).
		if resp.Status != wire.StatusOK {
			return nil, fmt.Errorf("%w: fetch search status %d", ErrServer, resp.Status)
		}
		c.stats.FetchInline.Inc()
		return resp.Items, nil
	}
	if desc.Status != wire.StatusOK {
		return nil, fmt.Errorf("%w: fetch search status %d", ErrServer, desc.Status)
	}
	items, err := c.pullMailbox(p, desc)
	if err != nil {
		// The slot was overwritten under us past the retry budget (or the
		// pull failed outright): re-execute over fast messaging. The stale
		// slot is NOT acked — the server already moved its seq on, and
		// Reclaim ignores stale acknowledgements anyway.
		c.stats.FetchFallbacks.Inc()
		return c.searchFast(p, q)
	}
	return items, nil
}

// roundTripFetch performs the request half of a fetch search: it sends req
// over the ring and waits for either a fetch descriptor or a complete
// inline response, whichever the server chose.
func (c *Client) roundTripFetch(p *sim.Proc, req wire.Request) (wire.FetchDesc, wire.Response, bool, error) {
	var (
		desc     wire.FetchDesc
		out      wire.Response
		haveDesc bool
	)
	c.encBuf = req.Encode(c.encBuf[:0])
	if err := c.ep.ReqWriter.Send(p, c.encBuf, req.ID, true); err != nil {
		return desc, out, false, err
	}
	for {
		c.ep.RespReader.CQ().Pop(p)
		done, err := c.drainFetch(req.ID, &out, &desc, &haveDesc)
		if rerr := c.ep.RespReader.ReportHead(p); rerr != nil {
			return desc, out, haveDesc, rerr
		}
		if err != nil {
			return desc, out, haveDesc, err
		}
		if done {
			return desc, out, haveDesc, nil
		}
	}
}

// drainFetch consumes every complete frame in the response ring, folding
// inline segments of request id into out and capturing a matching fetch
// descriptor. It reports whether the exchange is complete (descriptor seen
// or final inline segment arrived).
func (c *Client) drainFetch(id uint64, out *wire.Response, desc *wire.FetchDesc, haveDesc *bool) (bool, error) {
	done := false
	for {
		payload, err, ok := c.ep.RespReader.TryRecv()
		if err != nil {
			return done, err
		}
		if !ok {
			return done, nil
		}
		typ, err := wire.PeekType(payload)
		if err != nil {
			return done, err
		}
		switch typ {
		case wire.MsgFetchDesc:
			d, derr := wire.DecodeFetchDesc(payload)
			if derr != nil {
				return done, derr
			}
			if d.ID != id {
				continue // descriptor from an abandoned exchange
			}
			*desc = d
			*haveDesc = true
			done = true
		case wire.MsgResponse:
			resp, derr := wire.DecodeResponse(payload)
			if derr != nil {
				return done, derr
			}
			if resp.ID != id {
				continue
			}
			out.ID = resp.ID
			out.Status = resp.Status
			out.Items = append(out.Items, resp.Items...)
			if resp.Final {
				out.Final = true
				done = true
			}
		default:
			continue // stray frame; ignore
		}
	}
}

// errTornPull signals that a mailbox pull observed torn chunks or a stale
// slot header and should be retried.
var errTornPull = errors.New("client: torn mailbox pull")

// pullMailbox reads the slot named by desc with one doorbell-batched span
// of one-sided RDMA Reads on the dedicated fetch QP, validates it through
// the region's seqlock surface plus the slot header's sequence stamp, and
// decodes the packed items. Chunk reads target physically-consecutive
// chunks, so on merging fabrics the whole pull usually collapses into a
// single READ. Torn or stale snapshots retry up to MaxChunkRetries.
func (c *Client) pullMailbox(p *sim.Proc, desc wire.FetchDesc) ([]wire.Item, error) {
	mem := c.ep.MailboxMem
	reg := mem.Region()
	chunks := region.MailboxChunks(int(desc.Bytes), reg.PayloadSize())
	base := int(desc.Slot) * c.ep.FetchSlotChunks
	if chunks > c.ep.FetchSlotChunks || base+chunks > reg.NumChunks() {
		return nil, fmt.Errorf("%w: descriptor slot %d/%d B out of mailbox bounds", ErrServer, desc.Slot, desc.Bytes)
	}
	payloads := make([][]byte, chunks)
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		items, err := c.pullOnce(p, mem, base, chunks, desc, payloads)
		if err == nil {
			c.stats.FetchBytes.Add(uint64(desc.Bytes))
			c.sendFetchAck(p, desc)
			if cpu := c.cfg.Host.CPU(); cpu != nil {
				cpu.Run(p, c.cfg.Cost.ClientFetchDemand(len(items)))
			}
			return items, nil
		}
		if !errors.Is(err, errTornPull) {
			return nil, err
		}
		c.stats.FetchRetries.Inc()
	}
	return nil, ErrGaveUp
}

// pullOnce posts one read wave over the slot and assembles the snapshot,
// returning errTornPull when any chunk tore or the slot header disagrees
// with the descriptor (the slot was already reused).
func (c *Client) pullOnce(p *sim.Proc, mem *fabric.RegionMemory, base, chunks int, desc wire.FetchDesc, payloads [][]byte) ([]wire.Item, error) {
	reg := mem.Region()
	cs := reg.ChunkSize()
	firstTag := c.tagSeq + 1
	c.readBatch = c.readBatch[:0]
	for i := 0; i < chunks; i++ {
		c.tagSeq++
		c.readBatch = append(c.readBatch, fabric.ReadReq{
			Src: mem, Off: (base + i) * cs, Size: cs, Tag: c.tagSeq,
		})
	}
	posted, wqes, err := c.ep.FetchQP.ReadBatch(p, c.readBatch)
	c.stats.FetchPulls.Add(uint64(posted))
	c.stats.ReadWQEs.Add(uint64(wqes))
	torn := false
	var readErr error
	for i := 0; i < posted; i++ {
		comp := c.ep.FetchQP.CQ().Pop(p)
		idx := int(comp.Tag - firstTag)
		if idx < 0 || idx >= chunks {
			i-- // completion from an abandoned pull; not part of this wave
			continue
		}
		if comp.Err != nil {
			readErr = comp.Err
			continue
		}
		payload, _, derr := region.DecodeChunk(comp.Data, nil)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				torn = true
				continue
			}
			readErr = derr
			continue
		}
		payloads[idx] = payload
	}
	if err != nil {
		return nil, err
	}
	if readErr != nil {
		return nil, readErr
	}
	if torn {
		return nil, errTornPull
	}
	buf, err := region.AssembleMailbox(payloads[:chunks], desc.Seq, int(desc.Bytes))
	if err != nil {
		if errors.Is(err, region.ErrStaleSlot) {
			return nil, errTornPull
		}
		return nil, err
	}
	return wire.DecodeItems(buf, int(desc.Count))
}

// sendFetchAck returns the slot to the server, fire-and-forget: the ack
// carries the slot's sequence stamp, so a delayed ack for an already-reused
// slot is ignored server-side and losing one merely delays reuse until the
// allocator cycles back (bounded by the slot count).
func (c *Client) sendFetchAck(p *sim.Proc, desc wire.FetchDesc) {
	ack := wire.FetchAck{Slot: desc.Slot, Seq: desc.Seq}
	c.encBuf = ack.Encode(c.encBuf[:0])
	_ = c.ep.ReqWriter.Send(p, c.encBuf, 0, true)
}
