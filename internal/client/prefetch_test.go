package client

import (
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
)

// driveSearches runs n random searches against every client, asserting each
// result against the oracle, and returns only after the engine drains.
func driveSearches(t *testing.T, r *rig, n int, scale float64, seed int64, cls ...*Client) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		for i := 0; i < n; i++ {
			q := randRect(rng, scale)
			want := expected(t, r.tree, q)
			for ci, cl := range cls {
				got, _, err := cl.Search(p, q)
				if err != nil {
					t.Errorf("query %d client %d: %v", i, ci, err)
					return
				}
				if !sameItems(got, want) {
					t.Errorf("query %d client %d: results diverge from oracle", i, ci)
					return
				}
			}
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMergedReadsReduceWQEs: with a widened merge span the same workload
// posts measurably fewer work requests — sibling leaves laid out adjacently
// by the preorder bulk loader coalesce — while demand chunk reads and
// results stay identical to the unmerged run.
func TestMergedReadsReduceWQEs(t *testing.T) {
	run := func(span int) (uint64, uint64) {
		r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, mergeSpan: span})
		cl := r.newClient(t, "c", Config{Forced: MethodOffload, MultiIssue: true})
		driveSearches(t, r, 40, 0.05, 3, cl)
		s := cl.Stats()
		return s.NodesFetched, s.ReadWQEs
	}
	plainReads, plainWQEs := run(0)
	mergedReads, mergedWQEs := run(8)
	if mergedReads != plainReads {
		t.Errorf("merging changed demand reads: %d vs %d", mergedReads, plainReads)
	}
	if mergedWQEs >= plainWQEs {
		t.Errorf("merge span 8 posted %d WQEs, unmerged %d — no coalescing", mergedWQEs, plainWQEs)
	}
	t.Logf("reads=%d  wqes: unmerged=%d merged=%d (ratio %.2f)",
		plainReads, plainWQEs, mergedWQEs, float64(mergedReads)/float64(mergedWQEs))
}

// TestMergeSpanOneMatchesBaseline: span 1 must leave the read path
// bit-for-bit identical to span 0 (the client skips the pre-post sort and
// the fabric never coalesces).
func TestMergeSpanOneMatchesBaseline(t *testing.T) {
	run := func(span int) (uint64, uint64) {
		r := newRig(t, rigOpts{mode: server.ModeEvent, items: 3000, mergeSpan: span})
		cl := r.newClient(t, "c", Config{Forced: MethodOffload, MultiIssue: true, NodeCache: 64})
		driveSearches(t, r, 25, 0.05, 7, cl)
		s := cl.Stats()
		return s.NodesFetched, s.ReadWQEs
	}
	reads0, wqes0 := run(0)
	reads1, wqes1 := run(1)
	if reads0 != reads1 || wqes0 != wqes1 {
		t.Errorf("span 1 diverged from baseline: reads %d/%d wqes %d/%d",
			reads1, reads0, wqes1, wqes0)
	}
}

// TestPrefetchSpeculationPaysOff: queries wide enough to CONTAIN level-1
// subtrees trigger containment-gated spans behind their demand reads —
// speculative reads are issued, adopted by the visits that follow, and
// the demand read count drops below an identically-configured client
// without prefetching. The cache is off so every wave demand-reads its
// internal nodes, the precondition for a span to ride one. Results stay
// oracle-exact throughout.
func TestPrefetchSpeculationPaysOff(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, mergeSpan: 8})
	plain := r.newClient(t, "plain", Config{Forced: MethodOffload, MultiIssue: true})
	pref := r.newClient(t, "pref", Config{Forced: MethodOffload, MultiIssue: true, Prefetch: 64})
	driveSearches(t, r, 25, 0.5, 5, plain, pref)
	ps, fs := plain.Stats(), pref.Stats()
	if fs.PrefetchIssued == 0 {
		t.Fatal("no speculative reads issued")
	}
	if fs.PrefetchHits == 0 && fs.CachePrefetchHits == 0 {
		t.Error("no speculative read was ever adopted or credited")
	}
	if fs.NodesFetched >= ps.NodesFetched {
		t.Errorf("prefetching client fetched %d demand chunks, plain %d — speculation saved nothing",
			fs.NodesFetched, ps.NodesFetched)
	}
	t.Logf("issued=%d adopted=%d cache-credited=%d waste=%d+%d  demand reads %d vs %d",
		fs.PrefetchIssued, fs.PrefetchHits, fs.CachePrefetchHits,
		fs.PrefetchWaste, fs.CachePrefetchWaste, fs.NodesFetched, ps.NodesFetched)
}

// TestHintedPrefetchRidesRevalidation: when a cached internal node falls
// past its lease, the demoted copy's entries seed speculative reads for
// exactly the children the next wave will demand if the fingerprint
// confirms. With a lease far shorter than a traversal, every cached
// lookup revalidates, so hints fire constantly — and on a static tree
// every hinted chunk is adopted: hits with zero waste, and strictly fewer
// demand reads than the identically-leased client without prefetching.
func TestHintedPrefetchRidesRevalidation(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, mergeSpan: 8})
	lease := 10 * time.Microsecond
	plain := r.newClient(t, "plain", Config{Forced: MethodOffload, MultiIssue: true,
		NodeCache: 256, HeartbeatInv: lease})
	pref := r.newClient(t, "pref", Config{Forced: MethodOffload, MultiIssue: true,
		NodeCache: 256, HeartbeatInv: lease, Prefetch: 64})
	driveSearches(t, r, 40, 0.05, 5, plain, pref)
	ps, fs := plain.Stats(), pref.Stats()
	if fs.PrefetchIssued == 0 {
		t.Fatal("no hinted speculative reads issued")
	}
	if fs.PrefetchHits == 0 {
		t.Error("no hinted read was adopted by the wave it anticipated")
	}
	if fs.PrefetchWaste != 0 {
		t.Errorf("hinted speculation wasted %d reads on a static tree; hints must "+
			"target only children the traversal will visit", fs.PrefetchWaste)
	}
	if fs.NodesFetched >= ps.NodesFetched {
		t.Errorf("hinting client fetched %d demand chunks, plain %d — hints saved nothing",
			fs.NodesFetched, ps.NodesFetched)
	}
	t.Logf("issued=%d adopted=%d  demand reads %d vs %d  version reads %d",
		fs.PrefetchIssued, fs.PrefetchHits, fs.NodesFetched, ps.NodesFetched, fs.VersionReads)
}

// TestPrefetchBudgetBounds: the token bucket caps speculation — a capacity-2
// bucket issues strictly fewer speculative reads than a capacity-64 one over
// the same workload, exhaustion mid-wave simply stops further spans, and
// correctness is unaffected either way.
func TestPrefetchBudgetBounds(t *testing.T) {
	run := func(budget int) uint64 {
		r := newRig(t, rigOpts{mode: server.ModeEvent, items: 5000, mergeSpan: 8})
		cl := r.newClient(t, "c", Config{Forced: MethodOffload, MultiIssue: true, Prefetch: budget})
		driveSearches(t, r, 25, 0.5, 9, cl)
		return cl.Stats().PrefetchIssued
	}
	small, large := run(2), run(64)
	if small == 0 {
		t.Error("capacity 2 never issued a speculative read")
	}
	if small >= large {
		t.Errorf("capacity 2 issued %d speculative reads, capacity 64 issued %d — budget not binding",
			small, large)
	}
	t.Logf("issued: budget2=%d budget64=%d", small, large)
}

// TestStaleBetweenIssueAndFlush is the regression test for the mid-wave
// cleanup in traverseMultiIssue: a child hitting a poisoned (wrong-level)
// cache entry aborts the wave AFTER a sibling's read was issued into the
// batch but BEFORE the batch was posted. fail() must drop the never-posted
// read instead of draining the CQ for a completion that cannot arrive, and
// the restart must then answer the query correctly.
func TestStaleBetweenIssueAndFlush(t *testing.T) {
	r := newRig(t, rigOpts{mode: server.ModeEvent, items: 2000})
	// Decode the real root straight from the region to find its children.
	reg := r.tree.Region()
	raw := make([]byte, reg.ChunkSize())
	if err := reg.ReadChunkRaw(r.tree.RootChunk(), raw); err != nil {
		t.Fatal(err)
	}
	payload, _, err := region.DecodeChunk(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	var root rtree.Node
	if err := rtree.DecodeNode(payload, &root, r.tree.MaxEntries()); err != nil {
		t.Fatal(err)
	}
	if root.IsLeaf() || len(root.Entries) < 2 {
		t.Fatalf("need an internal root with >= 2 children, got level %d with %d entries",
			root.Level, len(root.Entries))
	}
	cl := r.newClient(t, "c", Config{Forced: MethodOffload, MultiIssue: true, NodeCache: 64})
	// Poison the SECOND child with an impossible level: the whole-space
	// query makes the wave issue child one's read first, then trip over
	// this entry while the batch is still unposted.
	victim := int(root.Entries[1].Ref)
	cl.ncache.Put(victim, &rtree.Node{Level: root.Level}, 1, 0)
	whole := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	want := expected(t, r.tree, whole)
	r.e.Spawn("driver", func(p *sim.Proc) {
		defer r.e.Stop()
		got, _, err := cl.Search(p, whole)
		if err != nil {
			t.Error(err)
			return
		}
		if !sameItems(got, want) {
			t.Error("post-restart results diverge from oracle")
		}
		// The CQ must be clean: a second search popping a stray completion
		// from the aborted wave would corrupt or hang here.
		got, _, err = cl.Search(p, whole)
		if err != nil || !sameItems(got, want) {
			t.Errorf("second search after aborted wave: err=%v", err)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := cl.Stats(); s.StaleRestarts == 0 {
		t.Error("poisoned entry never triggered a restart")
	}
}
