package client

import (
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// searchOffload traverses the server's R-tree from the client with
// one-sided RDMA Reads (§III-B). Each fetched chunk is validated against
// its cacheline versions; a torn read is retried. A node whose level
// disagrees with the traversal's expectation indicates the structure
// changed under the reader (split/condense re-used the chunk); the whole
// search restarts from the root, bounded by MaxRestarts.
func (c *Client) searchOffload(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	for attempt := 0; attempt <= c.cfg.MaxRestarts; attempt++ {
		var (
			items []wire.Item
			err   error
		)
		if c.cfg.MultiIssue {
			items, err = c.traverseMultiIssue(p, q)
		} else {
			items, err = c.traverseSingleIssue(p, q)
		}
		if err == nil {
			return items, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		// The tree changed shape under us: drop the cached root too.
		c.rootCache = nil
		c.stats.StaleRestarts++
	}
	return nil, ErrGaveUp
}

// cachedRoot returns the cached root node when root caching is enabled,
// refreshing it with one validated read when absent or when the heartbeat
// mailbox's root version shows the root was rewritten since the cache was
// filled. Staleness is therefore bounded by one heartbeat interval —
// lease-like semantics in the spirit of the Cell B-tree store the paper
// cites; CacheRoot without server heartbeats has unbounded staleness and
// should not be used with concurrent writers.
func (c *Client) cachedRoot(p *sim.Proc) (*rtree.Node, error) {
	if !c.cfg.CacheRoot {
		return nil, nil
	}
	if ver := c.heartbeatRootVersion(); ver != c.rootVerSeen {
		c.rootVerSeen = ver
		c.rootCache = nil
	}
	if c.rootCache != nil {
		c.stats.RootCacheHits++
		return c.rootCache, nil
	}
	if err := c.fetchChunk(p, c.ep.RootChunk, -1); err != nil {
		return nil, err
	}
	root := &rtree.Node{
		Level:   c.node.Level,
		Entries: append([]rtree.Entry(nil), c.node.Entries...),
	}
	// A leaf root is never invalidated by child-level mismatches (there
	// are no child reads), so growth would go unnoticed; serve it fresh
	// but do not retain it.
	if !root.IsLeaf() {
		c.rootCache = root
	}
	return root, nil
}

// errStale signals that the traversal observed a structurally inconsistent
// node and must restart from the root.
var errStale = errors.New("client: stale node during offloaded traversal")

// fetchChunk reads chunk id with validation and decodes it into c.node,
// retrying torn reads up to the configured budget. expectLevel >= 0 asserts
// the node's level (-1 skips the check, used for the root whose level the
// client learns as the tree grows).
func (c *Client) fetchChunk(p *sim.Proc, id int, expectLevel int) error {
	qp := c.ep.DataQP
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		c.stats.NodesFetched++
		raw, err := qp.ReadSync(p, c.ep.RegionMem, c.ep.RegionMem.ChunkOffset(id), c.ep.ChunkSize)
		if err != nil {
			return fmt.Errorf("client: chunk %d read: %w", id, err)
		}
		payload, _, derr := region.DecodeChunk(raw, c.payload)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				c.stats.TornRetries++
				continue
			}
			return derr
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			// A freed-and-reused chunk can decode as garbage; treat it as
			// staleness rather than corruption.
			return errStale
		}
		if expectLevel >= 0 && c.node.Level != expectLevel {
			return errStale
		}
		// Client-side traversal work (decode + intersection checks).
		if cpu := c.cfg.Host.CPU(); cpu != nil {
			cpu.Run(p, c.cfg.Cost.ClientTraversalDemand(1))
		}
		return nil
	}
	return ErrGaveUp
}

// traverseSingleIssue is the FaRM-style baseline: a breadth-first walk
// fetching one node per RDMA Read round trip.
func (c *Client) traverseSingleIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	type ref struct {
		id    int
		level int
	}
	var items []wire.Item
	var stack []ref
	if root, err := c.cachedRoot(p); err != nil {
		return nil, err
	} else if root != nil {
		if root.IsLeaf() {
			for _, e := range root.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			return items, nil
		}
		for _, e := range root.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, ref{id: int(e.Ref), level: root.Level - 1})
			}
		}
	} else {
		stack = []ref{{id: c.ep.RootChunk, level: -1}}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := c.fetchChunk(p, r.id, r.level); err != nil {
			return nil, err
		}
		n := &c.node
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, ref{id: int(e.Ref), level: n.Level - 1})
			}
		}
	}
	return items, nil
}

// traverseMultiIssue implements §IV-C: after checking a node, RDMA Reads
// for all intersecting children are posted at once; completions are
// processed as they arrive, so the round trips of independent subtrees
// overlap in a pipeline. The send-queue depth of the data QP bounds the
// number of outstanding reads.
func (c *Client) traverseMultiIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	type pending struct {
		id    int
		level int
		tries int
	}
	qp := c.ep.DataQP
	var items []wire.Item
	inflight := make(map[uint64]pending)

	issue := func(id, level, tries int) error {
		c.tagSeq++
		tag := c.tagSeq
		inflight[tag] = pending{id: id, level: level, tries: tries}
		c.stats.NodesFetched++
		return qp.Read(p, c.ep.RegionMem, c.ep.RegionMem.ChunkOffset(id), c.ep.ChunkSize, tag)
	}
	// Drain every outstanding completion before returning so a restart (or
	// the next search) starts with an empty CQ.
	fail := func(err error) ([]wire.Item, error) {
		for len(inflight) > 0 {
			comp := qp.CQ().Pop(p)
			delete(inflight, comp.Tag)
		}
		return nil, err
	}

	if root, err := c.cachedRoot(p); err != nil {
		return fail(err)
	} else if root != nil {
		if root.IsLeaf() {
			for _, e := range root.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			return items, nil
		}
		for _, e := range root.Entries {
			if q.Intersects(e.Rect) {
				if err := issue(int(e.Ref), root.Level-1, 0); err != nil {
					return fail(err)
				}
			}
		}
	} else if err := issue(c.ep.RootChunk, -1, 0); err != nil {
		return fail(err)
	}
	for len(inflight) > 0 {
		comp := qp.CQ().Pop(p)
		ctx, ok := inflight[comp.Tag]
		if !ok {
			continue // completion from an abandoned traversal
		}
		delete(inflight, comp.Tag)
		if comp.Err != nil {
			return fail(fmt.Errorf("client: chunk %d read: %w", ctx.id, comp.Err))
		}
		payload, _, derr := region.DecodeChunk(comp.Data, c.payload)
		if derr != nil {
			if !errors.Is(derr, region.ErrTornRead) {
				return fail(derr)
			}
			c.stats.TornRetries++
			if ctx.tries >= c.cfg.MaxChunkRetries {
				return fail(ErrGaveUp)
			}
			if err := issue(ctx.id, ctx.level, ctx.tries+1); err != nil {
				return fail(err)
			}
			continue
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			return fail(errStale)
		}
		if ctx.level >= 0 && c.node.Level != ctx.level {
			return fail(errStale)
		}
		if cpu := c.cfg.Host.CPU(); cpu != nil {
			cpu.Run(p, c.cfg.Cost.ClientTraversalDemand(1))
		}
		n := &c.node
		if n.IsLeaf() {
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				if err := issue(int(e.Ref), n.Level-1, 0); err != nil {
					return fail(err)
				}
			}
		}
	}
	return items, nil
}
