package client

import (
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// searchOffload traverses the server's R-tree from the client with
// one-sided RDMA Reads (§III-B). Each fetched chunk is validated against
// its cacheline versions; a torn read is retried. A node whose level
// disagrees with the traversal's expectation indicates the structure
// changed under the reader (split/condense re-used the chunk); the whole
// search restarts from the root, bounded by MaxRestarts.
func (c *Client) searchOffload(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	for attempt := 0; attempt <= c.cfg.MaxRestarts; attempt++ {
		var (
			items []wire.Item
			err   error
		)
		if c.cfg.MultiIssue {
			items, err = c.traverseMultiIssue(p, q)
		} else {
			items, err = c.traverseSingleIssue(p, q)
		}
		if err == nil {
			return items, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		// The tree changed shape under us: drop the cached root and flush
		// the node cache — the stale entry's ancestors are unknown, so the
		// full flush conservatively covers them all.
		c.rootCache = nil
		c.ncache.Flush()
		c.stats.StaleRestarts.Inc()
	}
	return nil, ErrGaveUp
}

// syncLease applies the heartbeat mailbox's root-version word to both
// client-side caches: a changed root version drops the cached root and
// demotes every node-cache entry to the revalidation tier. The word is
// refreshed every heartbeat interval, so cache staleness is bounded by
// one heartbeat — lease-like semantics in the spirit of the Cell B-tree
// store the paper cites. Without server heartbeats the root cache has
// unbounded staleness; the node cache stays sound because its lease also
// expires on the clock (see nodecache).
func (c *Client) syncLease() {
	if ver := c.heartbeatRootVersion(); ver != c.rootVerSeen {
		c.rootVerSeen = ver
		c.rootCache = nil
		c.ncache.DemoteAll()
	}
}

// cachedRoot returns the cached root node when root caching is enabled,
// refreshing it with one validated read when absent (syncLease has
// already applied heartbeat invalidation).
func (c *Client) cachedRoot(p *sim.Proc) (*rtree.Node, error) {
	if !c.cfg.CacheRoot {
		return nil, nil
	}
	if c.rootCache != nil {
		c.stats.RootCacheHits.Inc()
		return c.rootCache, nil
	}
	if err := c.fetchChunk(p, c.ep.RootChunk, -1); err != nil {
		return nil, err
	}
	root := &rtree.Node{
		Level:   c.node.Level,
		Entries: append([]rtree.Entry(nil), c.node.Entries...),
	}
	// A leaf root is never invalidated by child-level mismatches (there
	// are no child reads), so growth would go unnoticed; serve it fresh
	// but do not retain it.
	if !root.IsLeaf() {
		c.rootCache = root
	}
	return root, nil
}

// nodeRef identifies a node awaiting traversal: its chunk and the level
// the parent says it should decode to (-1 for the root, whose level the
// client learns as the tree grows).
type nodeRef struct {
	id    int
	level int
}

// rootFrontier resolves the start of an offloaded traversal, shared by the
// single-issue and multi-issue paths. With a usable cached root, its
// query-intersecting children form the initial frontier (a leaf root
// answers the query outright: items are collected and the frontier stays
// empty); otherwise the frontier is the root chunk itself, fetched by the
// traversal like any other node.
func (c *Client) rootFrontier(p *sim.Proc, q geo.Rect) ([]wire.Item, []nodeRef, error) {
	root, err := c.cachedRoot(p)
	if err != nil {
		return nil, nil, err
	}
	if root == nil {
		return nil, []nodeRef{{id: c.ep.RootChunk, level: -1}}, nil
	}
	if root.IsLeaf() {
		return collectLeaf(root, q, nil), nil, nil
	}
	var frontier []nodeRef
	for _, e := range root.Entries {
		if q.Intersects(e.Rect) {
			frontier = append(frontier, nodeRef{id: int(e.Ref), level: root.Level - 1})
		}
	}
	return nil, frontier, nil
}

// collectLeaf appends the leaf's query-matching entries to items.
func collectLeaf(n *rtree.Node, q geo.Rect, items []wire.Item) []wire.Item {
	for _, e := range n.Entries {
		if q.Intersects(e.Rect) {
			items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
		}
	}
	return items
}

// errStale signals that the traversal observed a structurally inconsistent
// node and must restart from the root.
var errStale = errors.New("client: stale node during offloaded traversal")

// chargeTraversal accounts the client-side work of examining one node
// (decode + intersection checks).
func (c *Client) chargeTraversal(p *sim.Proc) {
	if cpu := c.cfg.Host.CPU(); cpu != nil {
		cpu.Run(p, c.cfg.Cost.ClientTraversalDemand(1))
	}
}

// fetchChunk reads chunk id with validation and decodes it into c.node,
// retrying torn reads up to the configured budget. expectLevel >= 0 asserts
// the node's level (-1 skips the check, used for the root whose level the
// client learns as the tree grows). The observed chunk version is left in
// c.nodeVer for cache population.
func (c *Client) fetchChunk(p *sim.Proc, id int, expectLevel int) error {
	qp := c.ep.DataQP
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		c.stats.NodesFetched.Inc()
		raw, err := qp.ReadSync(p, c.ep.RegionMem, c.ep.RegionMem.ChunkOffset(id), c.ep.ChunkSize)
		if err != nil {
			return fmt.Errorf("client: chunk %d read: %w", id, err)
		}
		payload, ver, derr := region.DecodeChunk(raw, c.payload)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				c.stats.TornRetries.Inc()
				continue
			}
			return derr
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			// A freed-and-reused chunk can decode as garbage; treat it as
			// staleness rather than corruption.
			return errStale
		}
		if expectLevel >= 0 && c.node.Level != expectLevel {
			return errStale
		}
		c.nodeVer = ver
		c.chargeTraversal(p)
		return nil
	}
	return ErrGaveUp
}

// readVersions performs a version-only read of chunk id (an eighth of a
// full chunk for the default geometry) and returns its fingerprint, or
// region.ErrTornRead when a writer is mid-publish.
func (c *Client) readVersions(p *sim.Proc, id int) (uint64, error) {
	c.stats.VersionReads.Inc()
	rv := c.ep.RegionVers
	raw, err := c.ep.DataQP.ReadSync(p, rv, rv.VersionsOffset(id), rv.VersionsSize())
	if err != nil {
		return 0, err
	}
	return region.DecodeVersions(raw)
}

// cachePut retains the node just decoded into c.node when it is internal
// (leaves absorb every insert and would thrash the cache). The cache gets
// its own copy: c.node's entry slice is a reused decode buffer.
func (c *Client) cachePut(p *sim.Proc, id int) {
	if c.ncache == nil || c.node.IsLeaf() {
		return
	}
	n := &rtree.Node{
		Level:   c.node.Level,
		Entries: append([]rtree.Entry(nil), c.node.Entries...),
	}
	c.ncache.Put(id, n, c.nodeVer, p.Now())
}

// lookupNode resolves one traversal step through the node cache: a
// lease-fresh entry is served with zero network, a demoted entry is
// revalidated with a version-only read, and a miss (or failed
// revalidation) falls back to a full validated fetch that repopulates the
// cache. The returned node is valid until the next lookupNode call.
func (c *Client) lookupNode(p *sim.Proc, r nodeRef) (*rtree.Node, error) {
	if c.ncache != nil {
		switch v, out := c.ncache.Lookup(r.id, p.Now()); out {
		case nodecache.Fresh:
			n := v.(*rtree.Node)
			if r.level >= 0 && n.Level != r.level {
				c.ncache.Evict(r.id)
				return nil, errStale
			}
			c.chargeTraversal(p)
			return n, nil
		case nodecache.Verify:
			if ver, err := c.readVersions(p, r.id); err == nil {
				if v, ok := c.ncache.Confirm(r.id, ver, p.Now()); ok {
					n := v.(*rtree.Node)
					if r.level >= 0 && n.Level != r.level {
						c.ncache.Evict(r.id)
						return nil, errStale
					}
					c.chargeTraversal(p)
					return n, nil
				}
			}
			// Fingerprint torn or changed: fall through to a full fetch.
		}
	}
	if err := c.fetchChunk(p, r.id, r.level); err != nil {
		return nil, err
	}
	c.cachePut(p, r.id)
	return &c.node, nil
}

// traverseSingleIssue is the FaRM-style baseline: a depth-first walk
// fetching one node per RDMA Read round trip (cache hits skip the trip).
func (c *Client) traverseSingleIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	c.syncLease()
	items, stack, err := c.rootFrontier(p, q)
	if err != nil {
		return nil, err
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := c.lookupNode(p, r)
		if err != nil {
			return nil, err
		}
		if n.IsLeaf() {
			items = collectLeaf(n, q, items)
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, nodeRef{id: int(e.Ref), level: n.Level - 1})
			}
		}
	}
	return items, nil
}

// traverseMultiIssue implements §IV-C: after checking a node, RDMA Reads
// for all intersecting children are posted at once; completions are
// processed as they arrive, so the round trips of independent subtrees
// overlap in a pipeline. The send-queue depth of the data QP bounds the
// number of outstanding reads. Cache-fresh children are expanded
// immediately without touching the network; demoted entries revalidate
// with pipelined version-only reads, and only misses cost a full read.
//
// Reads are accumulated per expansion wave and posted as ONE doorbell
// batch (fabric.ReadBatch): the full child fetches and the version-only
// revalidation reads of a traversal level share a single SQ submission,
// so the batch pays one doorbell/setup cost plus per-read wire cost
// instead of per-message NIC overhead on every child.
func (c *Client) traverseMultiIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	c.syncLease()
	type pending struct {
		id     int
		level  int
		tries  int
		verify bool // a version-only revalidation read
	}
	qp := c.ep.DataQP
	inflight := make(map[uint64]pending)
	var stack []*rtree.Node // cache-served nodes awaiting expansion
	batch := c.readBatch[:0]

	issue := func(id, level, tries int) {
		c.tagSeq++
		inflight[c.tagSeq] = pending{id: id, level: level, tries: tries}
		c.stats.NodesFetched.Inc()
		batch = append(batch, fabric.ReadReq{
			Src: c.ep.RegionMem, Off: c.ep.RegionMem.ChunkOffset(id),
			Size: c.ep.ChunkSize, Tag: c.tagSeq,
		})
	}
	issueVerify := func(id, level int) {
		c.tagSeq++
		inflight[c.tagSeq] = pending{id: id, level: level, verify: true}
		c.stats.VersionReads.Inc()
		rv := c.ep.RegionVers
		batch = append(batch, fabric.ReadReq{
			Src: rv, Off: rv.VersionsOffset(id), Size: rv.VersionsSize(), Tag: c.tagSeq,
		})
	}
	// flushReads posts the accumulated wave as one doorbell batch.
	flushReads := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := qp.ReadBatch(p, batch)
		batch = batch[:0]
		return err
	}
	// Drain every outstanding completion before returning so a restart (or
	// the next search) starts with an empty CQ. Unposted batch entries are
	// dropped first: no completion will ever arrive for them.
	fail := func(err error) ([]wire.Item, error) {
		for _, r := range batch {
			delete(inflight, r.Tag)
		}
		batch = batch[:0]
		for len(inflight) > 0 {
			comp := qp.CQ().Pop(p)
			delete(inflight, comp.Tag)
		}
		c.readBatch = batch
		return nil, err
	}

	items, frontier, err := c.rootFrontier(p, q)
	if err != nil {
		return fail(err)
	}

	// visit dispatches one child: cache-fresh nodes expand locally via the
	// stack, demoted entries post a version-only read, misses post a full
	// read.
	visit := func(r nodeRef) error {
		if c.ncache != nil {
			switch v, out := c.ncache.Lookup(r.id, p.Now()); out {
			case nodecache.Fresh:
				n := v.(*rtree.Node)
				if r.level >= 0 && n.Level != r.level {
					c.ncache.Evict(r.id)
					return errStale
				}
				stack = append(stack, n)
				return nil
			case nodecache.Verify:
				issueVerify(r.id, r.level)
				return nil
			}
		}
		issue(r.id, r.level, 0)
		return nil
	}
	// expand examines one consistent node: leaf entries fold into the
	// result set, internal entries are dispatched.
	expand := func(n *rtree.Node) error {
		c.chargeTraversal(p)
		if n.IsLeaf() {
			items = collectLeaf(n, q, items)
			return nil
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				if err := visit(nodeRef{id: int(e.Ref), level: n.Level - 1}); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, r := range frontier {
		if err := visit(r); err != nil {
			return fail(err)
		}
	}
	for {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := expand(n); err != nil {
				return fail(err)
			}
		}
		// Post the whole wave — full fetches and revalidations alike — as
		// one doorbell-batched submission.
		if err := flushReads(); err != nil {
			return fail(err)
		}
		if len(inflight) == 0 {
			break
		}
		comp := qp.CQ().Pop(p)
		ctx, ok := inflight[comp.Tag]
		if !ok {
			continue // completion from an abandoned traversal
		}
		delete(inflight, comp.Tag)
		if comp.Err != nil {
			return fail(fmt.Errorf("client: chunk %d read: %w", ctx.id, comp.Err))
		}
		if ctx.verify {
			if ver, derr := region.DecodeVersions(comp.Data); derr == nil {
				if v, ok := c.ncache.Confirm(ctx.id, ver, p.Now()); ok {
					n := v.(*rtree.Node)
					if ctx.level >= 0 && n.Level != ctx.level {
						c.ncache.Evict(ctx.id)
						return fail(errStale)
					}
					stack = append(stack, n)
					continue
				}
			}
			// Fingerprint torn or changed: pay for the full read.
			issue(ctx.id, ctx.level, 0)
			continue
		}
		payload, ver, derr := region.DecodeChunk(comp.Data, c.payload)
		if derr != nil {
			if !errors.Is(derr, region.ErrTornRead) {
				return fail(derr)
			}
			c.stats.TornRetries.Inc()
			if ctx.tries >= c.cfg.MaxChunkRetries {
				return fail(ErrGaveUp)
			}
			issue(ctx.id, ctx.level, ctx.tries+1)
			continue
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			return fail(errStale)
		}
		if ctx.level >= 0 && c.node.Level != ctx.level {
			return fail(errStale)
		}
		c.nodeVer = ver
		c.cachePut(p, ctx.id)
		if err := expand(&c.node); err != nil {
			return fail(err)
		}
	}
	c.readBatch = batch[:0]
	return items, nil
}
