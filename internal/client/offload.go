package client

import (
	"errors"
	"fmt"
	"sort"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// searchOffload traverses the server's R-tree from the client with
// one-sided RDMA Reads (§III-B). Each fetched chunk is validated against
// its cacheline versions; a torn read is retried. A node whose level
// disagrees with the traversal's expectation indicates the structure
// changed under the reader (split/condense re-used the chunk); the whole
// search restarts from the root, bounded by MaxRestarts.
func (c *Client) searchOffload(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	for attempt := 0; attempt <= c.cfg.MaxRestarts; attempt++ {
		var (
			items []wire.Item
			err   error
		)
		if c.cfg.MultiIssue {
			items, err = c.traverseMultiIssue(p, q)
		} else {
			items, err = c.traverseSingleIssue(p, q)
		}
		if err == nil {
			return items, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		// The tree changed shape under us: drop the cached root and flush
		// the node cache — the stale entry's ancestors are unknown, so the
		// full flush conservatively covers them all.
		c.rootCache = nil
		c.ncache.Flush()
		c.stats.StaleRestarts.Inc()
	}
	return nil, ErrGaveUp
}

// syncLease applies the heartbeat mailbox's root-version word to both
// client-side caches: a changed root version drops the cached root and
// demotes every node-cache entry to the revalidation tier. The word is
// refreshed every heartbeat interval, so cache staleness is bounded by
// one heartbeat — lease-like semantics in the spirit of the Cell B-tree
// store the paper cites. Without server heartbeats the root cache has
// unbounded staleness; the node cache stays sound because its lease also
// expires on the clock (see nodecache).
func (c *Client) syncLease() {
	if ver := c.heartbeatRootVersion(); ver != c.rootVerSeen {
		c.rootVerSeen = ver
		c.rootCache = nil
		c.ncache.DemoteAll()
	}
}

// cachedRoot returns the cached root node when root caching is enabled,
// refreshing it with one validated read when absent (syncLease has
// already applied heartbeat invalidation).
func (c *Client) cachedRoot(p *sim.Proc) (*rtree.Node, error) {
	if !c.cfg.CacheRoot {
		return nil, nil
	}
	if c.rootCache != nil {
		c.stats.RootCacheHits.Inc()
		// Examining the cached root costs the same decode/intersection work
		// as any other node visit; without this charge the cached-leaf-root
		// fast path would collect items at zero CPU cost, skewing sim
		// fairness against the uncached path (which pays in fetchChunk).
		c.chargeTraversal(p)
		return c.rootCache, nil
	}
	if err := c.fetchChunk(p, c.ep.RootChunk, -1); err != nil {
		return nil, err
	}
	root := &rtree.Node{
		Level:   c.node.Level,
		Entries: append([]rtree.Entry(nil), c.node.Entries...),
	}
	// A leaf root is never invalidated by child-level mismatches (there
	// are no child reads), so growth would go unnoticed; serve it fresh
	// but do not retain it.
	if !root.IsLeaf() {
		c.rootCache = root
	}
	return root, nil
}

// nodeRef identifies a node awaiting traversal: its chunk and the level
// the parent says it should decode to (-1 for the root, whose level the
// client learns as the tree grows).
type nodeRef struct {
	id    int
	level int
}

// rootFrontier resolves the start of an offloaded traversal, shared by the
// single-issue and multi-issue paths. With a usable cached root, its
// query-intersecting children form the initial frontier (a leaf root
// answers the query outright: items are collected and the frontier stays
// empty); otherwise the frontier is the root chunk itself, fetched by the
// traversal like any other node.
func (c *Client) rootFrontier(p *sim.Proc, q geo.Rect) ([]wire.Item, []nodeRef, error) {
	root, err := c.cachedRoot(p)
	if err != nil {
		return nil, nil, err
	}
	if root == nil {
		return nil, []nodeRef{{id: c.ep.RootChunk, level: -1}}, nil
	}
	if root.IsLeaf() {
		return collectLeaf(root, q, nil), nil, nil
	}
	var frontier []nodeRef
	for _, e := range root.Entries {
		if q.Intersects(e.Rect) {
			frontier = append(frontier, nodeRef{id: int(e.Ref), level: root.Level - 1})
		}
	}
	return nil, frontier, nil
}

// collectLeaf appends the leaf's query-matching entries to items.
func collectLeaf(n *rtree.Node, q geo.Rect, items []wire.Item) []wire.Item {
	for _, e := range n.Entries {
		if q.Intersects(e.Rect) {
			items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
		}
	}
	return items
}

// errStale signals that the traversal observed a structurally inconsistent
// node and must restart from the root.
var errStale = errors.New("client: stale node during offloaded traversal")

// chargeTraversal accounts the client-side work of examining one node
// (decode + intersection checks).
func (c *Client) chargeTraversal(p *sim.Proc) {
	if cpu := c.cfg.Host.CPU(); cpu != nil {
		cpu.Run(p, c.cfg.Cost.ClientTraversalDemand(1))
	}
}

// fetchChunk reads chunk id with validation and decodes it into c.node,
// retrying torn reads up to the configured budget. expectLevel >= 0 asserts
// the node's level (-1 skips the check, used for the root whose level the
// client learns as the tree grows). The observed chunk version is left in
// c.nodeVer for cache population.
func (c *Client) fetchChunk(p *sim.Proc, id int, expectLevel int) error {
	qp := c.ep.DataQP
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		c.stats.NodesFetched.Inc()
		c.stats.ReadWQEs.Inc()
		raw, err := qp.ReadSync(p, c.ep.RegionMem, c.ep.RegionMem.ChunkOffset(id), c.ep.ChunkSize)
		if err != nil {
			return fmt.Errorf("client: chunk %d read: %w", id, err)
		}
		payload, ver, derr := region.DecodeChunk(raw, c.payload)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				c.stats.TornRetries.Inc()
				continue
			}
			return derr
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			// A freed-and-reused chunk can decode as garbage; treat it as
			// staleness rather than corruption.
			return errStale
		}
		if expectLevel >= 0 && c.node.Level != expectLevel {
			return errStale
		}
		c.nodeVer = ver
		c.chargeTraversal(p)
		return nil
	}
	return ErrGaveUp
}

// readVersions performs a version-only read of chunk id (an eighth of a
// full chunk for the default geometry) and returns its fingerprint, or
// region.ErrTornRead when a writer is mid-publish.
func (c *Client) readVersions(p *sim.Proc, id int) (uint64, error) {
	c.stats.VersionReads.Inc()
	c.stats.ReadWQEs.Inc()
	rv := c.ep.RegionVers
	raw, err := c.ep.DataQP.ReadSync(p, rv, rv.VersionsOffset(id), rv.VersionsSize())
	if err != nil {
		return 0, err
	}
	return region.DecodeVersions(raw)
}

// cachePut retains the node just decoded into c.node when it is internal
// (leaves absorb every insert and would thrash the cache). The cache gets
// its own copy: c.node's entry slice is a reused decode buffer.
func (c *Client) cachePut(p *sim.Proc, id int) {
	if c.ncache == nil || c.node.IsLeaf() {
		return
	}
	n := &rtree.Node{
		Level:   c.node.Level,
		Entries: append([]rtree.Entry(nil), c.node.Entries...),
	}
	c.ncache.Put(id, n, c.nodeVer, p.Now())
}

// lookupNode resolves one traversal step through the node cache: a
// lease-fresh entry is served with zero network, a demoted entry is
// revalidated with a version-only read, and a miss (or failed
// revalidation) falls back to a full validated fetch that repopulates the
// cache. The returned node is valid until the next lookupNode call.
func (c *Client) lookupNode(p *sim.Proc, r nodeRef) (*rtree.Node, error) {
	if c.ncache != nil {
		switch v, out := c.ncache.Lookup(r.id, p.Now()); out {
		case nodecache.Fresh:
			n := v.(*rtree.Node)
			if r.level >= 0 && n.Level != r.level {
				c.ncache.Evict(r.id)
				return nil, errStale
			}
			c.chargeTraversal(p)
			return n, nil
		case nodecache.Verify:
			if ver, err := c.readVersions(p, r.id); err == nil {
				if v, ok := c.ncache.Confirm(r.id, ver, p.Now()); ok {
					n := v.(*rtree.Node)
					if r.level >= 0 && n.Level != r.level {
						c.ncache.Evict(r.id)
						return nil, errStale
					}
					c.chargeTraversal(p)
					return n, nil
				}
			}
			// Fingerprint torn or changed: fall through to a full fetch.
		}
	}
	if err := c.fetchChunk(p, r.id, r.level); err != nil {
		return nil, err
	}
	c.cachePut(p, r.id)
	return &c.node, nil
}

// traverseSingleIssue is the FaRM-style baseline: a depth-first walk
// fetching one node per RDMA Read round trip (cache hits skip the trip).
func (c *Client) traverseSingleIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	c.syncLease()
	items, stack, err := c.rootFrontier(p, q)
	if err != nil {
		return nil, err
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := c.lookupNode(p, r)
		if err != nil {
			return nil, err
		}
		if n.IsLeaf() {
			items = collectLeaf(n, q, items)
			continue
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, nodeRef{id: int(e.Ref), level: n.Level - 1})
			}
		}
	}
	return items, nil
}

// traverseMultiIssue implements §IV-C: after checking a node, RDMA Reads
// for all intersecting children are posted at once; completions are
// processed as they arrive, so the round trips of independent subtrees
// overlap in a pipeline. The send-queue depth of the data QP bounds the
// number of outstanding reads. Cache-fresh children are expanded
// immediately without touching the network; demoted entries revalidate
// with pipelined version-only reads, and only misses cost a full read.
//
// Reads are accumulated per expansion wave and posted as ONE doorbell
// batch (fabric.ReadBatch): the full child fetches and the version-only
// revalidation reads of a traversal level share a single SQ submission,
// so the batch pays one doorbell/setup cost plus per-read wire cost
// instead of per-message NIC overhead on every child.
//
// Two further read-path optimizations ride on the batch (DESIGN.md §5.9):
//
//   - Merged adjacent reads: when the fabric's MergeSpan exceeds 1, the
//     wave is sorted by (source, offset) before posting, so reads of
//     physically-adjacent chunks — which the STR bulk loader's preorder
//     layout makes the common case for sibling leaves — coalesce into a
//     single larger RDMA Read inside ReadBatch.
//   - Speculative grandchild prefetch: while an internal node at level >= 2
//     expands, its most query-overlapping children get span reads posted
//     for the chunks directly behind them (preorder layout puts a child's
//     own children exactly there), bounded by the utilization-gated token
//     bucket. A later visit() of a chunk whose speculative read is still
//     in flight adopts it — re-labelling it as a demand read — instead of
//     posting a duplicate; completions nobody adopted park internal nodes
//     in the node cache and count leaves/garbage as prefetch waste.
func (c *Client) traverseMultiIssue(p *sim.Proc, q geo.Rect) ([]wire.Item, error) {
	c.syncLease()
	type pending struct {
		id       int
		level    int
		tries    int
		verify   bool // a version-only revalidation read
		prefetch bool // speculative; not yet claimed by the traversal
	}
	qp := c.ep.DataQP
	mergeSpan := qp.Profile().MergeSpan
	inflight := make(map[uint64]pending)
	// chunkTag tracks the in-flight full-chunk read (demand or speculative)
	// per chunk id, for duplicate suppression and prefetch adoption.
	chunkTag := make(map[int]uint64)
	// spare holds speculative chunks that completed before any demand visit
	// claimed them: with merging on, the pre-post sort can deliver a
	// speculative read ahead of the revalidation that hinted it, so bytes
	// are parked here for same-traversal adoption instead of being written
	// off on arrival. Leftovers are absorbed when the traversal ends.
	var spare map[int][]byte
	var stack []*rtree.Node // cache-served nodes awaiting expansion
	batch := c.readBatch[:0]
	// absorbSpare drains the unadopted speculative chunks in deterministic
	// order (map iteration order must not leak into cache state).
	absorbSpare := func() {
		if len(spare) == 0 {
			return
		}
		ids := make([]int, 0, len(spare))
		for id := range spare {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			c.absorbPrefetch(p, id, spare[id])
		}
		spare = nil
	}

	issue := func(id, level, tries int) {
		c.tagSeq++
		inflight[c.tagSeq] = pending{id: id, level: level, tries: tries}
		chunkTag[id] = c.tagSeq
		c.stats.NodesFetched.Inc()
		batch = append(batch, fabric.ReadReq{
			Src: c.ep.RegionMem, Off: c.ep.RegionMem.ChunkOffset(id),
			Size: c.ep.ChunkSize, Tag: c.tagSeq,
		})
	}
	issueSpec := func(id int) {
		c.tagSeq++
		inflight[c.tagSeq] = pending{id: id, level: -1, prefetch: true}
		chunkTag[id] = c.tagSeq
		c.stats.PrefetchIssued.Inc()
		batch = append(batch, fabric.ReadReq{
			Src: c.ep.RegionMem, Off: c.ep.RegionMem.ChunkOffset(id),
			Size: c.ep.ChunkSize, Tag: c.tagSeq,
		})
	}
	issueVerify := func(id, level int) {
		c.tagSeq++
		inflight[c.tagSeq] = pending{id: id, level: level, verify: true}
		c.stats.VersionReads.Inc()
		rv := c.ep.RegionVers
		batch = append(batch, fabric.ReadReq{
			Src: rv, Off: rv.VersionsOffset(id), Size: rv.VersionsSize(), Tag: c.tagSeq,
		})
	}
	// flushReads posts the accumulated wave as one doorbell batch. When
	// merging is on, the wave is first sorted by (source, offset) so
	// adjacent chunks sit next to each other in the submission — ReadBatch
	// only coalesces consecutive requests. With merging off the wave posts
	// in issue order, bit-for-bit identical to the pre-merge client.
	flushReads := func() error {
		if len(batch) == 0 {
			return nil
		}
		if mergeSpan > 1 {
			sort.Slice(batch, func(i, j int) bool {
				if batch[i].Src != batch[j].Src {
					return batch[i].Src == fabric.Readable(c.ep.RegionMem)
				}
				return batch[i].Off < batch[j].Off
			})
		}
		posted, wqes, err := qp.ReadBatch(p, batch)
		c.stats.ReadWQEs.Add(uint64(wqes))
		if err != nil {
			// The unposted suffix will never complete: drop its tracking
			// now so fail()'s CQ drain terminates instead of waiting for
			// completions that cannot arrive.
			for _, r := range batch[posted:] {
				if pd, ok := inflight[r.Tag]; ok && !pd.verify && chunkTag[pd.id] == r.Tag {
					delete(chunkTag, pd.id)
				}
				delete(inflight, r.Tag)
			}
		}
		batch = batch[:0]
		return err
	}
	// Drain every outstanding completion before returning so a restart (or
	// the next search) starts with an empty CQ. Unposted batch entries are
	// dropped first: no completion will ever arrive for them.
	fail := func(err error) ([]wire.Item, error) {
		for _, r := range batch {
			delete(inflight, r.Tag)
		}
		batch = batch[:0]
		for len(inflight) > 0 {
			comp := qp.CQ().Pop(p)
			if pd, ok := inflight[comp.Tag]; ok && pd.prefetch {
				c.stats.PrefetchWaste.Inc()
			}
			delete(inflight, comp.Tag)
		}
		absorbSpare()
		c.readBatch = batch
		return nil, err
	}

	items, frontier, err := c.rootFrontier(p, q)
	if err != nil {
		return fail(err)
	}

	// rankChildren returns n's query-intersecting child refs, largest
	// overlap first: the biggest overlap is the subtree most likely to be
	// traversed entirely, so its chunks repay speculation best.
	type cand struct {
		ref     int
		rect    geo.Rect
		overlap float64
	}
	var cands []cand // reused scratch
	rankChildren := func(n *rtree.Node) []cand {
		cands = cands[:0]
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				cands = append(cands, cand{ref: int(e.Ref), rect: e.Rect, overlap: q.OverlapArea(e.Rect)})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].overlap > cands[j].overlap })
		return cands
	}
	numChunks := c.ep.RegionMem.Region().NumChunks()
	// hintSpans posts targeted speculative reads for the children of a
	// cache-demoted node that is being revalidated: the (possibly stale)
	// cached copy's entries say exactly which chunks the next wave will
	// demand if the fingerprint confirms, so those reads ride the same
	// doorbell batch as the version read instead of waiting a full round
	// trip behind it. A failed confirm leaves them as bounded waste — the
	// demand path re-reads from scratch, so correctness never leans on the
	// hint.
	hintSpans := func(n *rtree.Node) {
		if c.cfg.Prefetch <= 0 || n.IsLeaf() {
			return
		}
		budget := c.prefetchBudget(p.Now())
		if budget <= 0 {
			return
		}
		spent := 0
		for _, cd := range rankChildren(n) {
			if spent >= budget {
				break
			}
			if cd.ref >= numChunks {
				continue
			}
			if _, busy := chunkTag[cd.ref]; busy {
				continue
			}
			if c.ncache.Peek(cd.ref) {
				continue
			}
			issueSpec(cd.ref)
			spent++
		}
		c.spendPrefetch(spent)
	}

	// visit dispatches one child: an in-flight speculative read for the
	// chunk is adopted as the demand read, cache-fresh nodes expand locally
	// via the stack, demoted entries post a version-only read (with the
	// cached entries as prefetch hints), and misses post a full read.
	visit := func(r nodeRef) error {
		if raw, ok := spare[r.id]; ok {
			delete(spare, r.id)
			if n := c.adoptSpare(p, r.id, r.level, raw); n != nil {
				stack = append(stack, n)
				return nil
			}
			// Torn or mismatched speculation: fall through to the demand
			// path, which re-reads and restarts on genuine staleness.
		}
		if tag, ok := chunkTag[r.id]; ok {
			if pd := inflight[tag]; pd.prefetch {
				pd.prefetch = false
				pd.level = r.level
				inflight[tag] = pd
				c.stats.PrefetchHits.Inc()
			}
			return nil // already being fetched
		}
		if c.ncache != nil {
			switch v, out := c.ncache.Lookup(r.id, p.Now()); out {
			case nodecache.Fresh:
				n := v.(*rtree.Node)
				if r.level >= 0 && n.Level != r.level {
					c.ncache.Evict(r.id)
					return errStale
				}
				stack = append(stack, n)
				return nil
			case nodecache.Verify:
				issueVerify(r.id, r.level)
				hintSpans(v.(*rtree.Node))
				return nil
			}
		}
		issue(r.id, r.level, 0)
		return nil
	}
	// prefetchSpans posts speculative reads behind n's most promising
	// children. Under the preorder layout a child at chunk r keeps its own
	// children at r+1, r+2, ...; a span of those merges with the demand
	// read of r itself into one WQE when sorting brings them together.
	spanK := 2
	if mergeSpan > 1 {
		spanK = mergeSpan - 1
	}
	prefetchSpans := func(n *rtree.Node) {
		if c.cfg.Prefetch <= 0 || n.Level < 2 {
			return
		}
		budget := c.prefetchBudget(p.Now())
		if budget <= 0 {
			return
		}
		spent := 0
	rank:
		for _, cd := range rankChildren(n) {
			// Speculation rides a demand read: a span is only posted behind a
			// child whose own chunk is being fetched in full this wave, so
			// the pre-post sort lands the span directly after that read and
			// ReadBatch folds both into one WQE. A cache-served child is
			// skipped — speculating behind it would post a WQE of its own
			// for chunks the next wave will demand (and merge) anyway.
			if _, busy := chunkTag[cd.ref]; !busy {
				continue
			}
			// Only span behind a child the query CONTAINS: containment
			// means every descendant intersects, so under the preorder
			// layout the chunks right after the child are all wanted —
			// speculation with guaranteed adoption. A partially-overlapped
			// child would gamble on which of its leaves the query clips.
			if !q.Contains(cd.rect) {
				continue
			}
			for d := 1; d <= spanK; d++ {
				if spent >= budget {
					break rank
				}
				id := cd.ref + d
				if id >= numChunks {
					break
				}
				if _, busy := chunkTag[id]; busy {
					continue
				}
				if c.ncache.Peek(id) {
					continue
				}
				issueSpec(id)
				spent++
			}
		}
		c.spendPrefetch(spent)
	}
	// expand examines one consistent node: leaf entries fold into the
	// result set, internal entries are dispatched.
	expand := func(n *rtree.Node) error {
		c.chargeTraversal(p)
		if n.IsLeaf() {
			items = collectLeaf(n, q, items)
			return nil
		}
		for _, e := range n.Entries {
			if q.Intersects(e.Rect) {
				if err := visit(nodeRef{id: int(e.Ref), level: n.Level - 1}); err != nil {
					return err
				}
			}
		}
		prefetchSpans(n)
		return nil
	}

	for _, r := range frontier {
		if err := visit(r); err != nil {
			return fail(err)
		}
	}
	for {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if err := expand(n); err != nil {
				return fail(err)
			}
		}
		// Post the whole wave — full fetches, revalidations, and
		// speculative spans alike — as one doorbell-batched submission.
		if err := flushReads(); err != nil {
			return fail(err)
		}
		if len(inflight) == 0 {
			break
		}
		comp := qp.CQ().Pop(p)
		ctx, ok := inflight[comp.Tag]
		if !ok {
			continue // completion from an abandoned traversal
		}
		delete(inflight, comp.Tag)
		if !ctx.verify && chunkTag[ctx.id] == comp.Tag {
			delete(chunkTag, ctx.id)
		}
		if ctx.prefetch {
			// Speculation never fails the search. With merging on, the
			// batch sort can deliver a speculative chunk before the
			// revalidation that hinted it, so completed bytes are parked
			// for same-traversal adoption by visit; whatever is left when
			// the traversal ends is absorbed into the cache or written off.
			if comp.Err != nil {
				c.stats.PrefetchWaste.Inc()
				continue
			}
			if spare == nil {
				spare = make(map[int][]byte)
			}
			spare[ctx.id] = append([]byte(nil), comp.Data...)
			continue
		}
		if comp.Err != nil {
			return fail(fmt.Errorf("client: chunk %d read: %w", ctx.id, comp.Err))
		}
		if ctx.verify {
			if ver, derr := region.DecodeVersions(comp.Data); derr == nil {
				if v, ok := c.ncache.Confirm(ctx.id, ver, p.Now()); ok {
					n := v.(*rtree.Node)
					if ctx.level >= 0 && n.Level != ctx.level {
						c.ncache.Evict(ctx.id)
						return fail(errStale)
					}
					stack = append(stack, n)
					continue
				}
			}
			// Fingerprint torn or changed: pay for the full read.
			issue(ctx.id, ctx.level, 0)
			continue
		}
		payload, ver, derr := region.DecodeChunk(comp.Data, c.payload)
		if derr != nil {
			if !errors.Is(derr, region.ErrTornRead) {
				return fail(derr)
			}
			c.stats.TornRetries.Inc()
			if ctx.tries >= c.cfg.MaxChunkRetries {
				return fail(ErrGaveUp)
			}
			issue(ctx.id, ctx.level, ctx.tries+1)
			continue
		}
		c.payload = payload
		if err := rtree.DecodeNode(payload, &c.node, c.ep.MaxEntries); err != nil {
			return fail(errStale)
		}
		if ctx.level >= 0 && c.node.Level != ctx.level {
			return fail(errStale)
		}
		c.nodeVer = ver
		c.cachePut(p, ctx.id)
		if err := expand(&c.node); err != nil {
			return fail(err)
		}
	}
	absorbSpare()
	c.readBatch = batch[:0]
	return items, nil
}

// adoptSpare turns the parked bytes of a completed speculative read into
// the node a demand visit asked for, skipping the read that visit would
// otherwise post. Torn chunks, garbage, and level mismatches return nil
// (counted as waste) and the caller falls back to the demand path —
// speculation never surfaces errStale itself. Adopted internal nodes
// enter the cache demand-attributed: they are being used right now.
func (c *Client) adoptSpare(p *sim.Proc, id, level int, raw []byte) *rtree.Node {
	payload, ver, derr := region.DecodeChunk(raw, c.payload)
	if derr != nil {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	c.payload = payload
	var spec rtree.Node
	if err := rtree.DecodeNode(payload, &spec, c.ep.MaxEntries); err != nil {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	if level >= 0 && spec.Level != level {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	c.stats.PrefetchHits.Inc()
	n := &rtree.Node{
		Level:   spec.Level,
		Entries: append([]rtree.Entry(nil), spec.Entries...),
	}
	if !n.IsLeaf() {
		c.ncache.Put(id, n, ver, p.Now())
	}
	return n
}

// absorbPrefetch consumes the bytes of a speculative read no demand
// visit adopted. A consistent internal node is parked in the node cache
// (flagged so its eventual hit or eviction is attributed to prefetching);
// torn reads, garbage, leaves — and internal nodes with no cache to park
// them in — count as prefetch waste. Speculation never propagates a
// failure: the traversal's correctness comes solely from demand reads.
func (c *Client) absorbPrefetch(p *sim.Proc, id int, raw []byte) {
	payload, ver, derr := region.DecodeChunk(raw, c.payload)
	if derr != nil {
		c.stats.PrefetchWaste.Inc()
		return
	}
	c.payload = payload
	var spec rtree.Node
	if err := rtree.DecodeNode(payload, &spec, c.ep.MaxEntries); err != nil || spec.IsLeaf() {
		c.stats.PrefetchWaste.Inc()
		return
	}
	if c.ncache == nil {
		c.stats.PrefetchWaste.Inc()
		return
	}
	n := &rtree.Node{
		Level:   spec.Level,
		Entries: append([]rtree.Entry(nil), spec.Entries...),
	}
	c.ncache.PutPrefetched(id, n, ver, p.Now())
}
