// Package netmodel defines the performance parameters of the simulated
// fabrics and the CPU cost model for R-tree request processing.
//
// The paper's testbed offers three interconnects per node: an Intel I350
// 1 Gbps Ethernet controller, a Mellanox ConnectX-3 40 Gbps Ethernet
// adapter, and a Mellanox ConnectX-5 EDR 100 Gbps InfiniBand adapter, on
// dual-socket 28-core Broadwell servers. The constants below are calibrated
// against public microbenchmark figures for that hardware generation
// (verbs RTTs of a few microseconds, kernel TCP per-message costs of
// several microseconds) and against the shapes in the paper's own Figures 2,
// 7, and 9. Absolute agreement with the authors' cluster is not the goal;
// preserving which resource saturates first — server CPU, server NIC, or
// client-side RTT chains — is.
package netmodel

import "time"

// Profile describes one fabric.
type Profile struct {
	// Name labels the fabric in experiment output.
	Name string
	// BandwidthBps is the NIC line rate per direction, in bits per second.
	BandwidthBps float64
	// PropagationDelay is the one-way wire plus switch latency.
	PropagationDelay time.Duration
	// NICOverhead is per-message NIC processing time on each side
	// (doorbell handling, DMA setup, completion generation).
	NICOverhead time.Duration
	// WireOverheadBytes is added to every message on the wire (headers,
	// CRCs; for TCP it covers Ethernet+IP+TCP framing).
	WireOverheadBytes int
	// Kernel models the OS network stack and is zero for RDMA fabrics.
	KernelLatency   time.Duration // extra per-message latency per side
	KernelCPUPerMsg time.Duration // CPU demand per message per side
	KernelCPUPerKB  time.Duration // CPU demand per KB copied per side
	// RDMA reports whether the fabric supports one-sided verbs.
	RDMA bool
	// DoorbellPerWQE is the posting cost of each work request after the
	// first in a doorbell-batched submission: the NIC fetches the extra
	// WQEs over one doorbell ring instead of paying full per-message setup
	// (RDMAbox-style doorbell batching). Zero means the fabric does not
	// batch doorbells and every WQE pays NICOverhead.
	DoorbellPerWQE time.Duration
	// MergeSpan is the maximum number of physically-adjacent reads a
	// doorbell batch may coalesce into one larger RDMA Read (one WQE, one
	// completion, demuxed per-request on the requester). RDMAbox-style
	// request merging: the merged read pays a single per-message setup and
	// completion cost while still serializing every byte on the wire.
	// 0 or 1 disables merging, leaving ReadBatch identical to posting each
	// read separately.
	MergeSpan int
}

// The three fabrics of the paper's evaluation cluster.
var (
	// Ethernet1G models the Intel I350 with kernel TCP.
	Ethernet1G = Profile{
		Name:              "tcp-1g",
		BandwidthBps:      1e9,
		PropagationDelay:  25 * time.Microsecond,
		NICOverhead:       500 * time.Nanosecond,
		WireOverheadBytes: 66,
		KernelLatency:     15 * time.Microsecond,
		KernelCPUPerMsg:   4 * time.Microsecond,
		KernelCPUPerKB:    400 * time.Nanosecond,
	}
	// Ethernet40G models the ConnectX-3 with kernel TCP.
	Ethernet40G = Profile{
		Name:              "tcp-40g",
		BandwidthBps:      40e9,
		PropagationDelay:  5 * time.Microsecond,
		NICOverhead:       300 * time.Nanosecond,
		WireOverheadBytes: 66,
		KernelLatency:     15 * time.Microsecond,
		KernelCPUPerMsg:   4 * time.Microsecond,
		KernelCPUPerKB:    400 * time.Nanosecond,
	}
	// InfiniBand100G models the ConnectX-5 EDR with RC verbs.
	InfiniBand100G = Profile{
		Name:              "ib-100g",
		BandwidthBps:      100e9,
		PropagationDelay:  1 * time.Microsecond,
		NICOverhead:       300 * time.Nanosecond,
		WireOverheadBytes: 30,
		RDMA:              true,
		DoorbellPerWQE:    60 * time.Nanosecond,
	}
)

// CostModel converts R-tree operation work (rtree.OpStats) into CPU service
// demands. The constants are calibrated so that a small-scope search on the
// paper's 2M-rectangle tree costs ~40-50 µs of server CPU — which makes 28
// cores saturate near the paper's fast-messaging plateau — and so that
// client-side traversal work is an order of magnitude cheaper than a
// server-side request (idle client CPUs are the resource Catfish harvests).
type CostModel struct {
	// Server-side request processing.
	SearchFixed   time.Duration // parse request + build/send response
	InsertFixed   time.Duration // parse + lock + respond
	PerNodeRead   time.Duration // per tree node visited
	PerNodeWrite  time.Duration // per tree node republished
	PerResultItem time.Duration // per result rectangle serialized

	// PerFetchItem replaces PerResultItem when the result is delivered by
	// remote fetch (RFP, arXiv:1512.07805): the server memcpys rectangles
	// into the local mailbox slot instead of marshalling them into response
	// frames and feeding the send engine, so the per-item CPU cost is a
	// fraction of the messaging cost. The NIC's responder hardware serves
	// the client's one-sided pull without server CPU involvement.
	PerFetchItem time.Duration

	// Client-side offloaded traversal.
	ClientFixed   time.Duration // per-search setup
	ClientPerNode time.Duration // decode + intersection checks per node

	// BatchedOpFixed replaces SearchFixed/InsertFixed for the second and
	// later operations executed under one batch charge: the wakeup, latch
	// acquisition, completion event, and response doorbell are paid once
	// per batch, leaving only request parsing and response marshalling as
	// per-operation fixed work.
	BatchedOpFixed time.Duration

	// PollSlice is the CPU time one idle busy-polling thread burns per
	// scheduling rotation (poll loop + context switch); it drives the
	// polling-mode oversubscription penalty of Fig 7.
	PollSlice time.Duration
}

// DefaultCostModel returns the calibrated cost model (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{
		SearchFixed:    35 * time.Microsecond,
		InsertFixed:    40 * time.Microsecond,
		PerNodeRead:    1200 * time.Nanosecond,
		PerNodeWrite:   2 * time.Microsecond,
		PerResultItem:  60 * time.Nanosecond,
		PerFetchItem:   15 * time.Nanosecond,
		ClientFixed:    2 * time.Microsecond,
		ClientPerNode:  1500 * time.Nanosecond,
		BatchedOpFixed: 6 * time.Microsecond,
		PollSlice:      5 * time.Microsecond,
	}
}

// batchedFixed returns the fixed demand of the i-th (0-based) operation in
// a batch: the first pays the full per-request fixed cost, later ones only
// the amortized share. A zero BatchedOpFixed disables the discount.
func (c CostModel) batchedFixed(i int, full time.Duration) time.Duration {
	if i == 0 || c.BatchedOpFixed == 0 {
		return full
	}
	return c.BatchedOpFixed
}

// SearchDemandBatched is SearchDemand for the i-th operation of a batch
// executed under a single latch acquisition and charge.
func (c CostModel) SearchDemandBatched(i, nodesRead, results int) time.Duration {
	return c.batchedFixed(i, c.SearchFixed) +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(results)*c.PerResultItem
}

// InsertDemandBatched is InsertDemand for the i-th operation of a batch.
func (c CostModel) InsertDemandBatched(i, nodesRead, nodesWritten int) time.Duration {
	return c.batchedFixed(i, c.InsertFixed) +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(nodesWritten)*c.PerNodeWrite
}

// SearchDemand returns the server CPU demand of a search that visited nodes
// and produced results.
func (c CostModel) SearchDemand(nodesRead, results int) time.Duration {
	return c.SearchFixed +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(results)*c.PerResultItem
}

// InsertDemand returns the server CPU demand of an insert (or delete) that
// visited nodesRead nodes and republished nodesWritten.
func (c CostModel) InsertDemand(nodesRead, nodesWritten int) time.Duration {
	return c.InsertFixed +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(nodesWritten)*c.PerNodeWrite
}

// ClientTraversalDemand returns the client CPU demand of processing one
// fetched node during offloaded traversal.
func (c CostModel) ClientTraversalDemand(nodes int) time.Duration {
	return time.Duration(nodes) * c.ClientPerNode
}

// FetchDemand returns the server CPU demand of a fetch-delivered search:
// the traversal is identical to fast messaging, but results are copied
// into the mailbox slot at PerFetchItem instead of marshalled and sent at
// PerResultItem.
func (c CostModel) FetchDemand(nodesRead, results int) time.Duration {
	return c.SearchFixed +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(results)*c.PerFetchItem
}

// FetchDemandBatched is FetchDemand for the i-th operation of a batch.
func (c CostModel) FetchDemandBatched(i, nodesRead, results int) time.Duration {
	return c.batchedFixed(i, c.SearchFixed) +
		time.Duration(nodesRead)*c.PerNodeRead +
		time.Duration(results)*c.PerFetchItem
}

// ClientFetchDemand returns the client CPU demand of pulling and decoding
// a fetch result of the given item count — the work the client takes over
// from the server in exchange for the server's TX/CPU savings.
func (c CostModel) ClientFetchDemand(results int) time.Duration {
	return c.ClientFixed + time.Duration(results)*c.PerResultItem
}
