package netmodel

import (
	"testing"
	"time"
)

func TestProfileOrdering(t *testing.T) {
	// The three fabrics must be ordered as on the paper's testbed.
	if !(Ethernet1G.BandwidthBps < Ethernet40G.BandwidthBps &&
		Ethernet40G.BandwidthBps < InfiniBand100G.BandwidthBps) {
		t.Error("bandwidth ordering broken")
	}
	if InfiniBand100G.PropagationDelay >= Ethernet1G.PropagationDelay {
		t.Error("IB propagation should undercut 1G Ethernet")
	}
	if !InfiniBand100G.RDMA || Ethernet1G.RDMA || Ethernet40G.RDMA {
		t.Error("RDMA capability flags wrong")
	}
}

func TestKernelCostsOnlyOnTCP(t *testing.T) {
	for _, p := range []Profile{Ethernet1G, Ethernet40G} {
		if p.KernelCPUPerMsg <= 0 || p.KernelLatency <= 0 {
			t.Errorf("%s: kernel costs missing", p.Name)
		}
	}
	if InfiniBand100G.KernelCPUPerMsg != 0 || InfiniBand100G.KernelLatency != 0 {
		t.Error("InfiniBand must not carry kernel costs")
	}
}

func TestCostModelCalibration(t *testing.T) {
	cm := DefaultCostModel()
	// A small-scope search on the 2M tree visits ~5-9 nodes with ~0-1
	// results; its demand must sit in the 35-55µs band that makes 28 cores
	// saturate near the paper's fast-messaging plateau (~400-900 Kops).
	small := cm.SearchDemand(7, 1)
	if small < 35*time.Microsecond || small > 55*time.Microsecond {
		t.Errorf("small search demand = %v, want 35-55µs", small)
	}
	// Client-side per-node work must be far below a server request: idle
	// client CPUs are the resource Catfish harvests.
	if cm.ClientTraversalDemand(1)*10 > small {
		t.Errorf("client per-node work %v too close to server demand %v",
			cm.ClientTraversalDemand(1), small)
	}
	if cm.PollSlice <= 0 {
		t.Error("poll slice must be positive")
	}
	// Inserts cost at least as much as small searches (they also write).
	if cm.InsertDemand(7, 2) <= cm.SearchDemand(7, 0) {
		t.Error("insert demand should exceed a result-free search")
	}
}

func TestDemandZeroWork(t *testing.T) {
	cm := DefaultCostModel()
	if cm.SearchDemand(0, 0) != cm.SearchFixed {
		t.Error("zero-work search demand should be the fixed cost")
	}
	if cm.InsertDemand(0, 0) != cm.InsertFixed {
		t.Error("zero-work insert demand should be the fixed cost")
	}
	if cm.ClientTraversalDemand(0) != 0 {
		t.Error("zero nodes should cost nothing on the client")
	}
}
