package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/sim"
)

// Move relocates entry (from, ref) to (to, ref). When both positions are
// owned by the same shard it is a single MsgMove round trip, atomic under
// that server's tree latch. When the move crosses an ownership boundary no
// single latch covers it: the router inserts at the destination owner
// first and then deletes at the source owner, so a concurrent search may
// transiently observe the object twice but never absent. The source delete
// tolerates ErrNotFound — a move is an upsert, exactly like the
// single-shard MsgMove, so moving an object that was never inserted (or
// whose source copy a repaired retry already removed) degrades to a plain
// insert.
func (r *Router) Move(p *sim.Proc, from, to geo.Rect, ref uint64) error {
	atomic.AddUint64(&r.stats.Moves, 1)
	if r.m.Owner(from) == r.m.Owner(to) {
		owner, err := r.writeTarget(p, to)
		if err != nil {
			return err
		}
		return r.writeShard(p, owner, func(c *client.Client) error {
			return c.Move(p, from, to, ref)
		})
	}
	owner, err := r.writeTarget(p, to)
	if err != nil {
		return err
	}
	if err := r.writeShard(p, owner, func(c *client.Client) error {
		return c.Insert(p, to, ref)
	}); err != nil {
		return err
	}
	owner, err = r.writeTarget(p, from)
	if err != nil {
		return err
	}
	err = r.writeShard(p, owner, func(c *client.Client) error {
		return c.Delete(p, from, ref)
	})
	if errors.Is(err, client.ErrNotFound) {
		err = nil
	}
	return err
}

// Nearest answers a k-nearest-neighbor query across the shards with a
// best-first gather: shards are visited in ascending order of CoverDistSq
// — the lower bound on any entry a shard can own — and the gather stops as
// soon as k results are held and the next shard's bound exceeds the
// current kth distance. On typical point queries that prunes the scatter
// to one or two shards, versus the full fan-out a range search needs.
// Partial results merge in (distance, ref) order and dedup by identity, so
// an entry dual-written during a reshard window counts once. An unhealthy
// shard without backups is skipped (counted in Stats().Skipped): kNN
// availability degrades like Search availability rather than blocking.
func (r *Router) Nearest(p *sim.Proc, k int, x, y float64) ([]rtree.Neighbor, error) {
	atomic.AddUint64(&r.stats.KNNs, 1)
	if k <= 0 {
		return nil, rtree.ErrBadK
	}
	order := make([]int, r.m.K())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := r.m.CoverDistSq(order[a], x, y), r.m.CoverDistSq(order[b], x, y)
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	var best []rtree.Neighbor
	for _, s := range order {
		if len(best) >= k && r.m.CoverDistSq(s, x, y) > best[k-1].DistSq {
			break
		}
		if r.health != nil && len(r.cands[s]) <= 1 && !r.health.Healthy(s, p.Now()) {
			atomic.AddUint64(&r.stats.Skipped, 1)
			continue
		}
		nbrs, err := r.knnShard(p, s, k, x, y)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		atomic.AddUint64(&r.stats.Fanout, 1)
		best = MergeNeighbors(best, nbrs, k)
	}
	return best, nil
}

// knnShard runs one sub-query on shard s, retrying on the shard's other
// replicas when the active server refuses service — the same backup-read
// fallback searchShard gives range queries.
func (r *Router) knnShard(p *sim.Proc, s, k int, x, y float64) ([]rtree.Neighbor, error) {
	nbrs, _, err := r.shardClient(s).Nearest(p, k, x, y)
	if err == nil || !replica.Failover(err) {
		return nbrs, err
	}
	for idx, c := range r.cands[s] {
		if idx == r.active[s] {
			continue
		}
		bn, _, berr := c.Nearest(p, k, x, y)
		if berr == nil {
			atomic.AddUint64(&r.stats.BackupReads, 1)
			return bn, nil
		}
		if !replica.Failover(berr) {
			return bn, berr
		}
	}
	return nil, err
}

// MergeNeighbors merges two ascending-distance neighbor lists, keeping at
// most k. Ties break by (ref, rect) so the merge is a total order and
// identical entries land adjacent, where the dedup drops the copy a
// reshard dual-write window may have produced. Shared with the real-socket
// router, whose best-first gather is the same algorithm over TCP.
func MergeNeighbors(a, b []rtree.Neighbor, k int) []rtree.Neighbor {
	out := make([]rtree.Neighbor, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var n rtree.Neighbor
		switch {
		case j >= len(b):
			n, i = a[i], i+1
		case i >= len(a):
			n, j = b[j], j+1
		case neighborLess(a[i], b[j]):
			n, i = a[i], i+1
		default:
			n, j = b[j], j+1
		}
		if len(out) > 0 && sameNeighbor(out[len(out)-1], n) {
			continue
		}
		out = append(out, n)
		if len(out) == k {
			break
		}
	}
	return out
}

func neighborLess(a, b rtree.Neighbor) bool {
	if a.DistSq != b.DistSq {
		return a.DistSq < b.DistSq
	}
	if a.Ref != b.Ref {
		return a.Ref < b.Ref
	}
	if a.Rect.MinX != b.Rect.MinX {
		return a.Rect.MinX < b.Rect.MinX
	}
	return a.Rect.MinY < b.Rect.MinY
}

func sameNeighbor(a, b rtree.Neighbor) bool {
	return a.Ref == b.Ref && a.Rect == b.Rect
}
