package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultHealthMultiple is the default liveness window as a multiple of the
// heartbeat interval: a shard with no heartbeat for this many intervals is
// considered unhealthy.
const DefaultHealthMultiple = 10

// Health tracks per-shard liveness from heartbeat arrivals. A shard is
// healthy while a heartbeat has been observed within multiple×interval; a
// router skips unhealthy shards for searches and refuses writes to them
// with UnhealthyError. The zero interval disables tracking (every shard is
// always healthy). All methods are safe for concurrent use.
type Health struct {
	window   time.Duration
	lastSeen []atomic.Int64 // nanoseconds of most recent heartbeat
}

// NewHealth creates a tracker for k shards with the given heartbeat
// interval and window multiple (0 means DefaultHealthMultiple). Shards
// start with now as their last-seen time, granting a full window of grace
// before the first heartbeat must arrive. interval 0 disables tracking.
func NewHealth(k int, interval time.Duration, multiple int, now time.Duration) *Health {
	if multiple <= 0 {
		multiple = DefaultHealthMultiple
	}
	h := &Health{
		window:   interval * time.Duration(multiple),
		lastSeen: make([]atomic.Int64, k),
	}
	for i := range h.lastSeen {
		h.lastSeen[i].Store(int64(now))
	}
	return h
}

// Observe records a heartbeat arrival from shard i at time now.
func (h *Health) Observe(i int, now time.Duration) {
	if h == nil {
		return
	}
	h.lastSeen[i].Store(int64(now))
}

// Healthy reports whether shard i has heartbeated within the window. A nil
// tracker or a zero interval reports every shard healthy.
func (h *Health) Healthy(i int, now time.Duration) bool {
	if h == nil || h.window == 0 {
		return true
	}
	return now-time.Duration(h.lastSeen[i].Load()) <= h.window
}

// ErrUnhealthy is the sentinel matched by errors.Is for writes routed to a
// shard that has stopped heartbeating.
var ErrUnhealthy = errors.New("shard unhealthy: no recent heartbeat")

// UnhealthyError reports a write whose owning shard is unhealthy. It
// matches ErrUnhealthy under errors.Is and carries the shard index.
type UnhealthyError struct {
	Shard int
}

func (e *UnhealthyError) Error() string {
	return fmt.Sprintf("shard %d unhealthy: no recent heartbeat", e.Shard)
}

// Is makes errors.Is(err, ErrUnhealthy) succeed.
func (e *UnhealthyError) Unwrap() error { return ErrUnhealthy }
