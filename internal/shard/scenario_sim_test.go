package shard

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/scenario"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// moveStep is one scripted geo-serving op on the simulated fabric: a MOVE
// (sometimes of a never-seeded ref — the upsert case) or a window search.
type moveStep struct {
	search   bool
	q        geo.Rect
	from, to geo.Rect
	ref      uint64
}

func genSimMoveScript(seed int64, ticks int) []moveStep {
	rng := rand.New(rand.NewSource(seed))
	fleet := scenario.NewMovingObjects(rng, scenario.MovingConfig{
		N: 20, Speed: 0.2, RefBase: 1 << 30,
	})
	var steps []moveStep
	for tick := 0; tick < ticks; tick++ {
		for _, mv := range fleet.Tick(rng, nil) {
			steps = append(steps, moveStep{from: mv.From, to: mv.To, ref: mv.Ref})
			if rng.Float64() < 0.3 {
				steps = append(steps, moveStep{search: true, q: randRect(rng, 0.15)})
			}
		}
		ghost := uint64(1<<40) + uint64(tick)
		pos := scenario.NewMovingObjects(rng, scenario.MovingConfig{N: 1, RefBase: ghost})
		steps = append(steps, moveStep{from: pos.Rect(0), to: pos.Rect(0), ref: ghost})
	}
	return steps
}

// moveGroundTruth replays the script against a linear scan over the base
// data plus the tracked fleet positions (moves are upserts).
func moveGroundTruth(data []rtree.Entry, steps []moveStep) [][]uint64 {
	pos := make(map[uint64]geo.Rect)
	out := make([][]uint64, len(steps))
	for i, st := range steps {
		if !st.search {
			pos[st.ref] = st.to
			continue
		}
		var items []wire.Item
		for _, e := range data {
			if st.q.Intersects(e.Rect) {
				items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
			}
		}
		for ref, r := range pos {
			if st.q.Intersects(r) {
				items = append(items, wire.Item{Rect: r, Ref: ref})
			}
		}
		out[i] = sortedRefs(items)
	}
	return out
}

// runSimMoveScript replays the script through a deployment's router in the
// given move dialect and returns each search's sorted refs.
func runSimMoveScript(t *testing.T, d *simDeploy, steps []moveStep, dialect string) [][]uint64 {
	t.Helper()
	out := make([][]uint64, len(steps))
	var runErr error
	d.e.Spawn("scenario-script", func(p *sim.Proc) {
		defer p.Engine().Stop()
		var batch []client.BatchOp
		var idx []int
		var results []client.BatchResult
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			results = d.router.ExecBatch(p, batch, results)
			for j, res := range results {
				if res.Err != nil {
					runErr = res.Err
					return false
				}
				if batch[j].Type == wire.MsgSearch {
					out[idx[j]] = sortedRefs(res.Items)
				}
			}
			batch, idx = batch[:0], idx[:0]
			return true
		}
		for i, st := range steps {
			switch {
			case dialect == "batched-move":
				if st.search {
					batch = append(batch, client.BatchOp{Type: wire.MsgSearch, Rect: st.q})
				} else {
					batch = append(batch, client.BatchOp{Type: wire.MsgMove, Rect: st.from, Rect2: st.to, Ref: st.ref})
				}
				idx = append(idx, i)
				if len(batch) >= 8 && !flush() {
					return
				}
			case st.search:
				items, _, err := d.router.Search(p, st.q)
				if err != nil {
					runErr = err
					return
				}
				out[i] = sortedRefs(items)
			case dialect == "move":
				if err := d.router.Move(p, st.from, st.to, st.ref); err != nil {
					runErr = err
					return
				}
			default: // del+ins
				if err := d.router.Delete(p, st.from, st.ref); err != nil && !errors.Is(err, client.ErrNotFound) {
					runErr = err
					return
				}
				if err := d.router.Insert(p, st.to, st.ref); err != nil {
					runErr = err
					return
				}
			}
		}
		flush()
	})
	if err := d.e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// TestMoveEquivalenceSim checks the randomized MOVE-equivalence claim on
// the simulated fabric: a scripted MOVE stream (upserts included) yields
// exactly the linear-scan ground truth whether expressed as MOVE ops,
// batched MOVE ops, or tolerated-delete+insert pairs, on K=1 and K=4
// (cross-shard move chains), over both the ring and TCP transports.
func TestMoveEquivalenceSim(t *testing.T) {
	const hbInv = 2 * time.Millisecond
	rng := rand.New(rand.NewSource(61))
	data := make([]rtree.Entry, 600)
	for i := range data {
		data[i] = rtree.Entry{Rect: randRect(rng, 0.002), Ref: uint64(i)}
	}
	script := genSimMoveScript(99, 5)
	// Batched interleaving reorders ops inside a flight relative to the
	// script, so the batched dialect is only compared on the final state:
	// the trailing whole-plane scan every dialect's script ends with.
	script = append(script, moveStep{search: true, q: geo.Rect{MinX: -1, MaxX: 2, MinY: -1, MaxY: 2}})
	want := moveGroundTruth(data, script)
	for _, tr := range []simTransport{simTransports[0], simTransports[2]} {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			for _, k := range []int{1, 4} {
				for _, dialect := range []string{"move", "del+ins", "batched-move"} {
					d := buildSimDeploy(t, data, k, tr, hbInv, 0)
					got := runSimMoveScript(t, d, script, dialect)
					if dialect == "batched-move" {
						last := len(script) - 1
						if _, ok := equalResults([][]uint64{got[last]}, [][]uint64{want[last]}); !ok {
							t.Fatalf("K=%d %s: final scan diverged from ground truth (%d vs %d refs)",
								k, dialect, len(got[last]), len(want[last]))
						}
						continue
					}
					if i, ok := equalResults(got, want); !ok {
						t.Fatalf("K=%d %s: search step %d diverged from ground truth", k, dialect, i)
					}
				}
			}
		})
	}
}

// TestKNNEquivalenceSim checks remote kNN on the simulated fabric: the
// sharded router's best-first cross-shard gather reproduces a local
// rtree.Tree.Nearest over the union dataset exactly, and prunes — the
// average fanout at small k stays far below the shard count.
func TestKNNEquivalenceSim(t *testing.T) {
	const hbInv = 2 * time.Millisecond
	rng := rand.New(rand.NewSource(71))
	data := make([]rtree.Entry, 3000)
	for i := range data {
		data[i] = rtree.Entry{Rect: randRect(rng, 0.002), Ref: uint64(i)}
	}
	reg, err := region.New(1<<14, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BulkLoad(append([]rtree.Entry(nil), data...), 0); err != nil {
		t.Fatal(err)
	}
	type query struct {
		k    int
		x, y float64
	}
	queries := make([]query, 150)
	for i := range queries {
		queries[i] = query{k: []int{1, 5, 32}[i%3], x: rng.Float64(), y: rng.Float64()}
	}
	d := buildSimDeploy(t, data, 4, simTransports[0], hbInv, 0)
	got := make([][]rtree.Neighbor, len(queries))
	var runErr error
	d.e.Spawn("knn-script", func(p *sim.Proc) {
		defer p.Engine().Stop()
		for i, q := range queries {
			nbrs, err := d.router.Nearest(p, q.k, q.x, q.y)
			if err != nil {
				runErr = err
				return
			}
			got[i] = nbrs
		}
	})
	if err := d.e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i, q := range queries {
		want, _, err := ref.Nearest(q.k, q.x, q.y)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("query %d (k=%d): %d neighbors, want %d", i, q.k, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d (k=%d) neighbor %d: %+v, want %+v", i, q.k, j, got[i][j], want[j])
			}
		}
	}
	st := d.router.Stats()
	if st.KNNs == 0 {
		t.Fatal("router recorded no kNN searches")
	}
	if avg := float64(st.Fanout) / float64(st.KNNs); avg >= 3.5 {
		t.Errorf("best-first gather averaged %.2f shard visits of 4 — pruning is not engaging", avg)
	}
}
