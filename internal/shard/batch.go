package shard

import (
	"fmt"
	"sync/atomic"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// ExecBatch routes a batch through the shards: each search is duplicated
// into the sub-batch of every healthy shard whose coverage intersects it,
// each write goes into its owner's sub-batch (or fails immediately with
// UnhealthyError when the owner is down), and the per-shard sub-batches
// execute as parallel client batches — each one a single ring write / TCP
// frame on its shard, exactly the batched fast path — before the partial
// result sets are merged back into submission order. Results reuses the
// caller's slice.
func (r *Router) ExecBatch(p *sim.Proc, ops []client.BatchOp, results []client.BatchResult) []client.BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, client.BatchResult{Method: client.MethodFast})
	}
	if len(ops) == 0 {
		return results
	}
	now := p.Now()
	k := len(r.clients)
	r.subOps = resize(r.subOps, k)
	r.subIdx = resize(r.subIdx, k)
	for s := 0; s < k; s++ {
		r.subOps[s] = r.subOps[s][:0]
		r.subIdx[s] = r.subIdx[s][:0]
	}
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert, wire.MsgDelete:
			owner, err := r.writeTarget(p, op.Rect)
			if err != nil {
				results[i].Err = err
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		default:
			atomic.AddUint64(&r.stats.Searches, 1)
			targets, ok := r.healthyTargets(op.Rect, now)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		}
	}
	// Issue every non-empty sub-batch in parallel: the driving process
	// takes the first busy shard, one spawned process per further shard.
	busy := make([]int, 0, k)
	for s := 0; s < k; s++ {
		if len(r.subOps[s]) > 0 {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return results
	}
	r.subRes = resize(r.subRes, k)
	wg := sim.NewWaitGroup(p.Engine())
	wg.Add(len(busy) - 1)
	for _, s := range busy[1:] {
		s := s
		p.Spawn("shard-batch", func(sp *sim.Proc) {
			r.subRes[s] = r.shardClient(s).ExecBatch(sp, r.subOps[s], r.subRes[s])
			wg.Done()
		})
	}
	s0 := busy[0]
	r.subRes[s0] = r.shardClient(s0).ExecBatch(p, r.subOps[s0], r.subRes[s0])
	wg.Wait(p)
	// Merge in shard order; sub-ops of one original op keep shard order
	// too, so merged item order is deterministic.
	for _, s := range busy {
		for j, res := range r.subRes[s] {
			i := r.subIdx[s][j]
			if res.Err != nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("shard %d: %w", s, res.Err)
			}
			results[i].Items = append(results[i].Items, res.Items...)
			// Offloading is sticky so the merged method reports whether any
			// shard's sub-search ran as a client-side traversal.
			if results[i].Method != client.MethodOffload {
				results[i].Method = res.Method
			}
		}
	}
	// Failover repair: operations that hit a server refusing service retry
	// individually through the routed single-op paths, which promote a
	// backup (writes) or fall back to one (reads). Replica-class errors
	// only occur on replicated deployments, so this loop is inert at R=1.
	for i := range results {
		if results[i].Err == nil || !replica.Failover(results[i].Err) {
			continue
		}
		op := ops[i]
		results[i].Items = results[i].Items[:0]
		switch op.Type {
		case wire.MsgInsert:
			results[i].Err = r.Insert(p, op.Rect, op.Ref)
		case wire.MsgDelete:
			results[i].Err = r.Delete(p, op.Rect, op.Ref)
		default:
			items, m, err := r.Search(p, op.Rect)
			results[i].Items = append(results[i].Items, items...)
			results[i].Method = m
			results[i].Err = err
		}
	}
	return results
}
