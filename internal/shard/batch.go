package shard

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// ExecBatch routes a batch through the shards: each search is duplicated
// into the sub-batch of every healthy shard whose coverage intersects it,
// each write goes into its owner's sub-batch (or fails immediately with
// UnhealthyError when the owner is down), and the per-shard sub-batches
// execute as parallel client batches — each one a single ring write / TCP
// frame on its shard, exactly the batched fast path — before the partial
// result sets are merged back into submission order. Results reuses the
// caller's slice.
func (r *Router) ExecBatch(p *sim.Proc, ops []client.BatchOp, results []client.BatchResult) []client.BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, client.BatchResult{Method: client.MethodFast})
	}
	if len(ops) == 0 {
		return results
	}
	now := p.Now()
	k := len(r.clients)
	r.subOps = resize(r.subOps, k)
	r.subIdx = resize(r.subIdx, k)
	for s := 0; s < k; s++ {
		r.subOps[s] = r.subOps[s][:0]
		r.subIdx[s] = r.subIdx[s][:0]
	}
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert, wire.MsgDelete:
			owner, err := r.writeTarget(p, op.Rect)
			if err != nil {
				results[i].Err = err
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		case wire.MsgMove:
			if r.m.Owner(op.Rect) != r.m.Owner(op.Rect2) {
				// A cross-owner move spans two shards' sub-batches, which no
				// single latch covers: run it through the routed two-write
				// path (insert at destination, delete at source) right away.
				// This executes ahead of the batch's deferred same-owner
				// sub-ops, so a cross-owner move is ordered against other
				// ops on the same entry only across ExecBatch calls — a
				// caller chaining several moves of one entry through a
				// single batch must keep the chain within one owner.
				results[i].Err = r.Move(p, op.Rect, op.Rect2, op.Ref)
				continue
			}
			atomic.AddUint64(&r.stats.Moves, 1)
			owner, err := r.writeTarget(p, op.Rect2)
			if err != nil {
				results[i].Err = err
				continue
			}
			r.subOps[owner] = append(r.subOps[owner], op)
			r.subIdx[owner] = append(r.subIdx[owner], i)
		case wire.MsgKNN:
			// A kNN's result set is not bounded by its (degenerate) query
			// rect, so it cannot ride the coverage-intersection scatter: fan
			// it to every healthy shard for a local k-best each, reduced to
			// the global k-best after the merge below. The batch trades the
			// single-op path's best-first pruning for staying on the batched
			// fast path.
			atomic.AddUint64(&r.stats.KNNs, 1)
			targets, ok := r.healthyTargets(everything(), now)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		default:
			atomic.AddUint64(&r.stats.Searches, 1)
			targets, ok := r.healthyTargets(op.Rect, now)
			if !ok {
				atomic.AddUint64(&r.stats.Skipped, 1)
				continue
			}
			atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
			for _, t := range targets {
				r.subOps[t] = append(r.subOps[t], op)
				r.subIdx[t] = append(r.subIdx[t], i)
			}
		}
	}
	// Issue every non-empty sub-batch in parallel: the driving process
	// takes the first busy shard, one spawned process per further shard.
	busy := make([]int, 0, k)
	for s := 0; s < k; s++ {
		if len(r.subOps[s]) > 0 {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return results
	}
	r.subRes = resize(r.subRes, k)
	wg := sim.NewWaitGroup(p.Engine())
	wg.Add(len(busy) - 1)
	for _, s := range busy[1:] {
		s := s
		p.Spawn("shard-batch", func(sp *sim.Proc) {
			r.subRes[s] = r.shardClient(s).ExecBatch(sp, r.subOps[s], r.subRes[s])
			wg.Done()
		})
	}
	s0 := busy[0]
	r.subRes[s0] = r.shardClient(s0).ExecBatch(p, r.subOps[s0], r.subRes[s0])
	wg.Wait(p)
	// Merge in shard order; sub-ops of one original op keep shard order
	// too, so merged item order is deterministic.
	for _, s := range busy {
		for j, res := range r.subRes[s] {
			i := r.subIdx[s][j]
			if res.Err != nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("shard %d: %w", s, res.Err)
			}
			results[i].Items = append(results[i].Items, res.Items...)
			// Offloading is sticky so the merged method reports whether any
			// shard's sub-search ran as a client-side traversal.
			if results[i].Method != client.MethodOffload {
				results[i].Method = res.Method
			}
		}
	}
	// Each shard answered a batched kNN with its own ascending k-best; the
	// global k-best is the distance-ordered, deduplicated head of the merged
	// union. Distances recompute bit-exactly from the round-tripped rects,
	// so the reduction matches a local Nearest over the union of the shards.
	for i := range results {
		if ops[i].Type == wire.MsgKNN && results[i].Err == nil {
			results[i].Items = KBestItems(results[i].Items, int(ops[i].Ref), ops[i].Rect)
		}
	}
	// Failover repair: operations that hit a server refusing service retry
	// individually through the routed single-op paths, which promote a
	// backup (writes) or fall back to one (reads). Replica-class errors
	// only occur on replicated deployments, so this loop is inert at R=1.
	for i := range results {
		if results[i].Err == nil || !replica.Failover(results[i].Err) {
			continue
		}
		op := ops[i]
		results[i].Items = results[i].Items[:0]
		switch op.Type {
		case wire.MsgInsert:
			results[i].Err = r.Insert(p, op.Rect, op.Ref)
		case wire.MsgDelete:
			results[i].Err = r.Delete(p, op.Rect, op.Ref)
		case wire.MsgMove:
			results[i].Err = r.Move(p, op.Rect, op.Rect2, op.Ref)
		case wire.MsgKNN:
			x, y := op.Rect.Center()
			nbrs, err := r.Nearest(p, int(op.Ref), x, y)
			for _, n := range nbrs {
				results[i].Items = append(results[i].Items, wire.Item{Rect: n.Rect, Ref: n.Ref})
			}
			results[i].Err = err
		default:
			items, m, err := r.Search(p, op.Rect)
			results[i].Items = append(results[i].Items, items...)
			results[i].Method = m
			results[i].Err = err
		}
	}
	return results
}

// KBestItems reduces the concatenation of per-shard ascending k-best lists
// to the global k nearest: sort by recomputed distance (ties by ref, then
// rect, the same total order MergeNeighbors uses), dedup identical entries
// from reshard dual-write windows, keep k. Shared with the real-socket
// router's batched kNN reduction.
func KBestItems(items []wire.Item, k int, q geo.Rect) []wire.Item {
	x, y := q.Center()
	sort.Slice(items, func(a, b int) bool {
		da, db := items[a].Rect.DistSqToPoint(x, y), items[b].Rect.DistSqToPoint(x, y)
		if da != db {
			return da < db
		}
		if items[a].Ref != items[b].Ref {
			return items[a].Ref < items[b].Ref
		}
		if items[a].Rect.MinX != items[b].Rect.MinX {
			return items[a].Rect.MinX < items[b].Rect.MinX
		}
		return items[a].Rect.MinY < items[b].Rect.MinY
	})
	out := items[:0]
	for _, it := range items {
		if len(out) > 0 {
			if last := out[len(out)-1]; last.Ref == it.Ref && last.Rect == it.Rect {
				continue
			}
		}
		out = append(out, it)
		if len(out) == k {
			break
		}
	}
	return out
}
