// Package shard implements spatial partitioning for a multi-server
// ("sharded") Catfish deployment: a recursive longest-axis partitioner that
// splits the dataset into K shard cells, a versioned shard map distributed
// to clients, heartbeat-driven shard liveness, and scatter-gather routers
// (the simulated-fabric Router here, its real-socket sibling in
// internal/rpcnet) that fan each search out to every shard whose coverage
// intersects the query and route each write to the unique owning shard.
//
// Ownership is by center point: an entry belongs to the one cell containing
// its rectangle's center, so inserts and deletes always agree on a single
// owner. Cells tile the whole plane (boundary cells extend to infinity),
// which makes ownership total. Because an owned rectangle may protrude past
// its cell, each cell is expanded by the map's pads — half the largest
// entry extent the deployment accepts — into its search coverage; a query
// intersecting an entry always intersects the owner's coverage, so
// scatter-gather search over coverage intersections is exact.
//
// Each shard runs an ordinary single-server Catfish instance with its own
// heartbeat stream, and a router keeps one adaptive.Switch per shard (via
// one client per shard), so the paper's Algorithm 1 back-off runs
// independently per server: a hot shard offloads while idle shards keep
// fast messaging — the per-server CPU framing that RFP (Su et al.) gives
// the fast-messaging-vs-remote-read tradeoff.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

// Config parametrizes Build.
type Config struct {
	// K is the shard count (>= 1).
	K int
	// MaxInsertEdge is the largest rectangle edge future inserts may carry;
	// it widens the coverage pads so an insert owned by a cell can never
	// protrude beyond the coverage searches consult. Zero accepts inserts
	// no larger than the dataset's own largest entry.
	MaxInsertEdge float64
}

// Map is the versioned shard map a deployment distributes to every client.
// All servers and routers of one deployment must hold maps with the same
// Version; the version doubles as a content checksum (see FromParts).
type Map struct {
	// Version identifies the partition (an FNV-1a digest of the cells and
	// pads, so it is reproducible across processes building from the same
	// dataset).
	Version uint64
	// Cells tile the plane: boundary cells extend to infinity, so every
	// rectangle has exactly one owner. Cell index is shard index.
	Cells []geo.Rect
	// PadX and PadY expand each cell into its search coverage: an entry
	// owned by a cell protrudes at most PadX (PadY) beyond it per axis.
	PadX, PadY float64

	cover []geo.Rect // Cells expanded by the pads
}

// ErrVersionMismatch reports a transported map whose content does not match
// its claimed version (or routers/servers disagreeing on the map version).
var ErrVersionMismatch = errors.New("shard: map version mismatch")

// everything is the root cell: the entire plane.
func everything() geo.Rect {
	inf := math.Inf(1)
	return geo.Rect{MinX: -inf, MaxX: inf, MinY: -inf, MaxY: inf}
}

// Build partitions entries into cfg.K shard cells by recursive longest-axis
// splits: each step splits the current subset's minimum bounding rectangle
// along its longer axis at a count-proportional median, so shards own
// near-equal entry counts even under skew. K=1 yields the trivial
// single-cell map.
func Build(entries []rtree.Entry, cfg Config) (*Map, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("shard: K must be >= 1, got %d", cfg.K)
	}
	padX, padY := cfg.MaxInsertEdge/2, cfg.MaxInsertEdge/2
	pts := make([]point, len(entries))
	for i, e := range entries {
		cx, cy := e.Rect.Center()
		pts[i] = point{x: cx, y: cy}
		if hw := e.Rect.Width() / 2; hw > padX {
			padX = hw
		}
		if hh := e.Rect.Height() / 2; hh > padY {
			padY = hh
		}
	}
	m := &Map{PadX: padX, PadY: padY, Cells: make([]geo.Rect, 0, cfg.K)}
	m.split(everything(), pts, cfg.K)
	m.finish()
	return m, nil
}

// Single returns the trivial one-shard map (the whole plane, no pads
// needed: with one shard nothing can be missed).
func Single() *Map {
	m := &Map{Cells: []geo.Rect{everything()}}
	m.finish()
	return m
}

// FromParts assembles a map from its transported parts (wire.ShardMapData),
// recomputing the coverage rectangles and verifying that the content hashes
// to the claimed version.
func FromParts(version uint64, padX, padY float64, cells []geo.Rect) (*Map, error) {
	if len(cells) == 0 {
		return nil, errors.New("shard: map with no cells")
	}
	m := &Map{Cells: cells, PadX: padX, PadY: padY}
	m.finish()
	if m.Version != version {
		return nil, fmt.Errorf("%w: content hashes to %#x, header says %#x",
			ErrVersionMismatch, m.Version, version)
	}
	return m, nil
}

// Validate recomputes the content digest over the cells and pads and
// verifies it matches the claimed Version — the integrity check both
// routers run on any map that crossed a trust boundary (a wire fetch, a
// mid-run reshard adoption).
func (m *Map) Validate() error {
	cp := Map{Cells: m.Cells, PadX: m.PadX, PadY: m.PadY}
	cp.finish()
	if cp.Version != m.Version {
		return fmt.Errorf("%w: content hashes to %#x, header says %#x",
			ErrVersionMismatch, cp.Version, m.Version)
	}
	return nil
}

// SplitCell returns a copy of m with cell idx split in two — the live
// resharding step that peels half a hot shard onto a new server. The split
// runs along the longer axis of the entries' bounding box (the cell's
// finite footprint when entries is empty), at the count-median of the
// entries' centers, exactly like Build's partitioner. The lower half keeps
// index idx; the upper half becomes the new last cell (shard index K). The
// pads carry over so coverage stays exact, and the recomputed Version is
// the bumped MapVersion routers converge to.
func (m *Map) SplitCell(idx int, entries []rtree.Entry) (*Map, error) {
	if idx < 0 || idx >= len(m.Cells) {
		return nil, fmt.Errorf("shard: split cell %d of %d", idx, len(m.Cells))
	}
	pts := make([]point, len(entries))
	for i, e := range entries {
		cx, cy := e.Rect.Center()
		pts[i] = point{x: cx, y: cy}
	}
	cell := m.Cells[idx]
	nm := &Map{PadX: m.PadX, PadY: m.PadY, Cells: append([]geo.Rect(nil), m.Cells...)}
	axisX := nm.longestAxisX(cell, pts)
	coord := func(p point) float64 {
		if axisX {
			return p.x
		}
		return p.y
	}
	var s float64
	if len(pts) >= 2 {
		sort.Slice(pts, func(i, j int) bool {
			if coord(pts[i]) != coord(pts[j]) {
				return coord(pts[i]) < coord(pts[j])
			}
			if axisX {
				return pts[i].y < pts[j].y
			}
			return pts[i].x < pts[j].x
		})
		nl := len(pts) / 2
		s = (coord(pts[nl-1]) + coord(pts[nl])) / 2
	} else {
		f := finite(cell)
		if axisX {
			s = (f.MinX + f.MaxX) / 2
		} else {
			s = (f.MinY + f.MaxY) / 2
		}
	}
	left, right := cell, cell
	if axisX {
		left.MaxX, right.MinX = s, s
	} else {
		left.MaxY, right.MinY = s, s
	}
	nm.Cells[idx] = left
	nm.Cells = append(nm.Cells, right)
	nm.finish()
	return nm, nil
}

type point struct{ x, y float64 }

// split recursively partitions cell (holding pts) into k cells, appending
// leaves left-to-right so cell order — and therefore shard numbering — is
// deterministic for a given dataset.
func (m *Map) split(cell geo.Rect, pts []point, k int) {
	if k == 1 {
		m.Cells = append(m.Cells, cell)
		return
	}
	kl := k / 2
	axisX := m.longestAxisX(cell, pts)
	coord := func(p point) float64 {
		if axisX {
			return p.x
		}
		return p.y
	}
	// Sort along the split axis (ties broken by the other axis so the
	// order, and hence the split coordinate, is deterministic).
	sort.Slice(pts, func(i, j int) bool {
		if coord(pts[i]) != coord(pts[j]) {
			return coord(pts[i]) < coord(pts[j])
		}
		if axisX {
			return pts[i].y < pts[j].y
		}
		return pts[i].x < pts[j].x
	})
	var s float64
	if len(pts) >= 2 {
		// Count-proportional median: kl/k of the points go left; split
		// halfway between the straddling pair.
		nl := len(pts) * kl / k
		if nl < 1 {
			nl = 1
		}
		if nl >= len(pts) {
			nl = len(pts) - 1
		}
		s = (coord(pts[nl-1]) + coord(pts[nl])) / 2
	} else {
		// No points to balance: halve the cell's finite footprint.
		f := finite(cell)
		if axisX {
			s = (f.MinX + f.MaxX) / 2
		} else {
			s = (f.MinY + f.MaxY) / 2
		}
	}
	left, right := cell, cell
	if axisX {
		left.MaxX, right.MinX = s, s
	} else {
		left.MaxY, right.MinY = s, s
	}
	var lp, rp []point
	for _, p := range pts {
		if coord(p) < s {
			lp = append(lp, p)
		} else {
			rp = append(rp, p)
		}
	}
	m.split(left, lp, kl)
	m.split(right, rp, k-kl)
}

// longestAxisX picks the split axis: the longer side of the points' MBR
// (or of the cell's finite footprint when the subset is empty). True means
// split along x.
func (m *Map) longestAxisX(cell geo.Rect, pts []point) bool {
	if len(pts) > 0 {
		minX, maxX := pts[0].x, pts[0].x
		minY, maxY := pts[0].y, pts[0].y
		for _, p := range pts[1:] {
			minX = math.Min(minX, p.x)
			maxX = math.Max(maxX, p.x)
			minY = math.Min(minY, p.y)
			maxY = math.Max(maxY, p.y)
		}
		return maxX-minX >= maxY-minY
	}
	f := finite(cell)
	return f.Width() >= f.Height()
}

// finite clips a possibly-infinite cell to the unit square the workloads
// live in, for midpoint computations only.
func finite(cell geo.Rect) geo.Rect {
	f := cell
	if math.IsInf(f.MinX, -1) {
		f.MinX = 0
	}
	if math.IsInf(f.MaxX, 1) {
		f.MaxX = 1
	}
	if math.IsInf(f.MinY, -1) {
		f.MinY = 0
	}
	if math.IsInf(f.MaxY, 1) {
		f.MaxY = 1
	}
	return f
}

// finish computes the coverage rectangles and the content version.
func (m *Map) finish() {
	m.cover = make([]geo.Rect, len(m.Cells))
	for i, c := range m.Cells {
		m.cover[i] = geo.Rect{
			MinX: c.MinX - m.PadX, MaxX: c.MaxX + m.PadX,
			MinY: c.MinY - m.PadY, MaxY: c.MaxY + m.PadY,
		}
	}
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(len(m.Cells)))
	word(math.Float64bits(m.PadX))
	word(math.Float64bits(m.PadY))
	for _, c := range m.Cells {
		word(math.Float64bits(c.MinX))
		word(math.Float64bits(c.MaxX))
		word(math.Float64bits(c.MinY))
		word(math.Float64bits(c.MaxY))
	}
	m.Version = h.Sum64()
}

// K returns the shard count.
func (m *Map) K() int { return len(m.Cells) }

// Owner returns the index of the shard owning r: the first cell containing
// r's center (cells tile the plane; centers on a shared boundary go to the
// lower-indexed cell, deterministically).
func (m *Map) Owner(r geo.Rect) int {
	cx, cy := r.Center()
	for i, c := range m.Cells {
		if c.ContainsPoint(cx, cy) {
			return i
		}
	}
	return 0 // unreachable for valid rects: the cells tile the plane
}

// Targets appends to out the indices of every shard whose coverage
// intersects q — the scatter set for a search. out is reused scratch.
func (m *Map) Targets(q geo.Rect, out []int) []int {
	out = out[:0]
	for i, c := range m.cover {
		if c.Intersects(q) {
			out = append(out, i)
		}
	}
	return out
}

// CoverDistSq returns the squared distance from (x, y) to shard s's
// coverage rectangle. An entry owned by a cell never protrudes past the
// cell's coverage, so this is a lower bound on the distance from (x, y) to
// any entry shard s can hold — the ordering and pruning bound of the
// routers' best-first cross-shard kNN gather.
func (m *Map) CoverDistSq(s int, x, y float64) float64 {
	return m.cover[s].DistSqToPoint(x, y)
}

// Assign buckets entries by owner; the i-th slice is shard i's bulk-load
// set. Every server of a deployment derives the identical assignment from
// the identical dataset.
func (m *Map) Assign(entries []rtree.Entry) [][]rtree.Entry {
	out := make([][]rtree.Entry, len(m.Cells))
	for _, e := range entries {
		i := m.Owner(e.Rect)
		out[i] = append(out[i], e)
	}
	return out
}
