package shard

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

func randRect(rng *rand.Rand, maxEdge float64) geo.Rect {
	w, h := rng.Float64()*maxEdge, rng.Float64()*maxEdge
	x, y := rng.Float64()*(1-w), rng.Float64()*(1-h)
	return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
}

func dataset(n int, maxEdge float64, seed int64) []rtree.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rtree.Entry, n)
	for i := range out {
		out[i] = rtree.Entry{Rect: randRect(rng, maxEdge), Ref: uint64(i)}
	}
	return out
}

func TestBuildTilesThePlane(t *testing.T) {
	data := dataset(5000, 0.001, 1)
	for _, k := range []int{1, 2, 3, 4, 7, 8} {
		m, err := Build(data, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if m.K() != k {
			t.Fatalf("K=%d: got %d cells", k, m.K())
		}
		// Every point of a probe grid (and far outside the unit square) is
		// owned by exactly one cell.
		probe := func(x, y float64) {
			owners := 0
			for _, c := range m.Cells {
				if c.ContainsPoint(x, y) {
					owners++
				}
			}
			if owners == 0 {
				t.Fatalf("K=%d: point (%g,%g) has no owner", k, x, y)
			}
		}
		for x := -1.0; x <= 2.0; x += 0.13 {
			for y := -1.0; y <= 2.0; y += 0.13 {
				probe(x, y)
			}
		}
		probe(-1e9, 1e9) // far outside any dataset: boundary cells are infinite
	}
}

func TestOwnerCoverInvariant(t *testing.T) {
	// The partition's core guarantee: every entry is contained in its
	// owner's coverage rectangle, so coverage-intersection scatter can
	// never miss an entry.
	data := dataset(20000, 0.002, 2)
	for _, k := range []int{2, 4, 8} {
		m, err := Build(data, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		cover := make([]geo.Rect, k)
		for i, c := range m.Cells {
			cover[i] = geo.Rect{
				MinX: c.MinX - m.PadX, MaxX: c.MaxX + m.PadX,
				MinY: c.MinY - m.PadY, MaxY: c.MaxY + m.PadY,
			}
		}
		for _, e := range data {
			o := m.Owner(e.Rect)
			if !cover[o].Contains(e.Rect) {
				t.Fatalf("K=%d: entry %v owned by %d but not inside its coverage %v", k, e.Rect, o, cover[o])
			}
		}
	}
}

func TestTargetsNeverMiss(t *testing.T) {
	// Scatter exactness: for random queries, every shard owning a matching
	// entry is in the target set.
	data := dataset(10000, 0.002, 3)
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{2, 4, 8} {
		m, err := Build(data, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		var scratch []int
		for q := 0; q < 500; q++ {
			query := randRect(rng, 0.05)
			scratch = m.Targets(query, scratch)
			in := make(map[int]bool, len(scratch))
			for _, s := range scratch {
				in[s] = true
			}
			for _, e := range data {
				if query.Intersects(e.Rect) && !in[m.Owner(e.Rect)] {
					t.Fatalf("K=%d: query %v misses shard %d holding %v", k, query, m.Owner(e.Rect), e.Rect)
				}
			}
		}
	}
}

func TestMaxInsertEdgeWidensPads(t *testing.T) {
	data := dataset(1000, 0.001, 5)
	m, err := Build(data, Config{K: 4, MaxInsertEdge: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if m.PadX < 0.125 || m.PadY < 0.125 {
		t.Fatalf("pads (%g,%g) smaller than MaxInsertEdge/2", m.PadX, m.PadY)
	}
}

func TestAssignBalanced(t *testing.T) {
	data := dataset(8000, 0.001, 6)
	for _, k := range []int{2, 4, 8} {
		m, err := Build(data, Config{K: k})
		if err != nil {
			t.Fatal(err)
		}
		assign := m.Assign(data)
		total, min, max := 0, len(data), 0
		for _, a := range assign {
			total += len(a)
			if len(a) < min {
				min = len(a)
			}
			if len(a) > max {
				max = len(a)
			}
		}
		if total != len(data) {
			t.Fatalf("K=%d: assigned %d of %d entries", k, total, len(data))
		}
		// Count-proportional medians keep shards within 2x of the mean.
		mean := len(data) / k
		if min < mean/2 || max > mean*2 {
			t.Errorf("K=%d: shard sizes [%d,%d] far from mean %d", k, min, max, mean)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	data := dataset(3000, 0.001, 7)
	a, err := Build(data, Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(append([]rtree.Entry(nil), data...), Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != b.Version {
		t.Fatalf("same dataset built different maps: %#x vs %#x", a.Version, b.Version)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestFromPartsRoundTripAndCorruption(t *testing.T) {
	data := dataset(1000, 0.001, 8)
	m, err := Build(data, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromParts(m.Version, m.PadX, m.PadY, append([]geo.Rect(nil), m.Cells...))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version {
		t.Fatal("round trip changed the version")
	}
	// A tampered cell must fail the checksum.
	bad := append([]geo.Rect(nil), m.Cells...)
	bad[1].MinX += 1e-9
	if _, err := FromParts(m.Version, m.PadX, m.PadY, bad); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("tampered map accepted: %v", err)
	}
	if _, err := FromParts(m.Version, m.PadX, m.PadY, nil); err == nil {
		t.Fatal("empty map accepted")
	}
}

func TestSingle(t *testing.T) {
	m := Single()
	if m.K() != 1 {
		t.Fatalf("K = %d", m.K())
	}
	if m.Owner(geo.Rect{MinX: 0.4, MaxX: 0.5, MinY: 0.4, MaxY: 0.5}) != 0 {
		t.Fatal("single map must own everything")
	}
	if got := m.Targets(geo.Rect{MinX: -5, MaxX: 5, MinY: -5, MaxY: 5}, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("targets = %v", got)
	}
}

func TestBuildEmptyAndDegenerate(t *testing.T) {
	// No entries: geometric splits still tile the plane.
	m, err := Build(nil, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 4 {
		t.Fatalf("K = %d", m.K())
	}
	if _, err := Build(nil, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	// All entries at one point: splits degenerate but ownership stays total.
	same := make([]rtree.Entry, 100)
	for i := range same {
		same[i] = rtree.Entry{Rect: geo.Rect{MinX: 0.5, MaxX: 0.5, MinY: 0.5, MaxY: 0.5}, Ref: uint64(i)}
	}
	m, err = Build(same, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(same)
	total := 0
	for _, a := range assign {
		total += len(a)
	}
	if total != len(same) {
		t.Fatalf("assigned %d of %d degenerate entries", total, len(same))
	}
}

func TestHealth(t *testing.T) {
	const inv = 10 * time.Millisecond
	h := NewHealth(2, inv, 0, 0) // default multiple = 10 -> 100ms window
	if !h.Healthy(0, 50*time.Millisecond) {
		t.Fatal("within grace window must be healthy")
	}
	if h.Healthy(0, 150*time.Millisecond) {
		t.Fatal("past the window with no heartbeat must be unhealthy")
	}
	h.Observe(0, 140*time.Millisecond)
	if !h.Healthy(0, 200*time.Millisecond) {
		t.Fatal("observed heartbeat must restore health")
	}
	if !h.Healthy(1, 90*time.Millisecond) || h.Healthy(1, 101*time.Millisecond) {
		t.Fatal("per-shard windows must be independent")
	}
	// Custom multiple.
	h2 := NewHealth(1, inv, 3, 0)
	if h2.Healthy(0, 31*time.Millisecond) {
		t.Fatal("3x multiple must expire at 30ms")
	}
	// Disabled tracking.
	var nilH *Health
	if !nilH.Healthy(0, time.Hour) {
		t.Fatal("nil tracker must report healthy")
	}
	h3 := NewHealth(1, 0, 0, 0)
	if !h3.Healthy(0, time.Hour) {
		t.Fatal("zero interval must disable tracking")
	}
}

func TestUnhealthyError(t *testing.T) {
	err := error(&UnhealthyError{Shard: 3})
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatal("UnhealthyError must match ErrUnhealthy")
	}
	var ue *UnhealthyError
	if !errors.As(err, &ue) || ue.Shard != 3 {
		t.Fatalf("errors.As failed: %v", err)
	}
	wrapped := errors.Join(errors.New("ctx"), err)
	if !errors.Is(wrapped, ErrUnhealthy) {
		t.Fatal("wrapped UnhealthyError must still match")
	}
}
