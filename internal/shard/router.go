package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// RouterConfig parametrizes a simulated-fabric Router.
type RouterConfig struct {
	// Engine is the simulation the clients run in.
	Engine *sim.Engine
	// Map is the deployment's shard map.
	Map *Map
	// Clients holds one connected client per shard, in shard order. Each
	// client owns its own adaptive.Switch, so Algorithm 1's back-off runs
	// independently per shard: a hot shard offloads while idle shards keep
	// fast messaging.
	Clients []*client.Client
	// HeartbeatInterval is the servers' heartbeat period; liveness tracking
	// is disabled when zero.
	HeartbeatInterval time.Duration
	// HealthMultiple is the liveness window in heartbeat intervals
	// (DefaultHealthMultiple when 0).
	HealthMultiple int
	// Backups holds, per shard, connected clients to that shard's backup
	// servers in preference order. Nil (or empty inner slices) disables
	// failover for that shard, leaving routing bit-for-bit identical to an
	// unreplicated deployment.
	Backups [][]*client.Client
}

// RouterStats counts router-level outcomes. Per-shard transport and
// offloading counters live in each shard client's Stats.
type RouterStats struct {
	// Searches and Writes count routed operations. A move counts toward
	// Writes once per shard it touches (once same-owner, twice cross-owner)
	// on top of its Moves count; a kNN counts only in KNNs.
	Searches uint64
	Writes   uint64
	Moves    uint64
	KNNs     uint64
	// Fanout is the total number of shard sub-searches issued; divided by
	// Searches it gives the mean fan-out per search.
	Fanout uint64
	// Skipped counts searches whose every target shard was unhealthy; they
	// return empty result sets rather than blocking.
	Skipped uint64
	// UnhealthyWrites counts writes rejected with UnhealthyError.
	UnhealthyWrites uint64
	// Promotions counts successful backup promotions (failovers).
	Promotions uint64
	// BackupReads counts sub-searches answered by a backup replica after
	// the active server refused service.
	BackupReads uint64
	// MapAdoptions counts successor shard maps adopted mid-run during live
	// resharding (real-socket router only; the simulated fabric has no
	// resharding path).
	MapAdoptions uint64
}

// Router scatters searches across the shards whose coverage intersects the
// query, gathers and merges the partial result sets, and routes each write
// to its unique owning shard. Sub-searches of one query run as parallel
// simulation processes, mirroring the goroutine fan-out of the real-socket
// router. A router serves one driving process; per-search scatter
// concurrency is internal.
type Router struct {
	m       *Map
	clients []*client.Client
	health  *Health
	lastSeq []uint64 // per-shard heartbeat sequence last observed
	stats   RouterStats

	// Failover state (inert when no shard has backups): per-shard candidate
	// clients in preference order ([primary, backups...]), the index of the
	// currently serving replica, and the epoch this router last promoted the
	// shard to — the fencing token carried by MsgPromote.
	cands  [][]*client.Client
	active []int
	epochs []uint64

	// Reused scatter/batch scratch (single driving proc, so no locking).
	targets  []int
	subOps   [][]client.BatchOp
	subIdx   [][]int // original op index per sub-op
	subRes   [][]client.BatchResult
	gatherI  [][]wire.Item
	gatherM  []client.Method
	gatherE  []error
	gatherTg []int
}

// NewRouter builds a router over one connected client per shard and starts
// its heartbeat monitor process. Call before sim.Engine.Run (or from a
// running process).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("shard: router needs a map")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Clients) != cfg.Map.K() {
		return nil, fmt.Errorf("shard: %d clients for %d shards", len(cfg.Clients), cfg.Map.K())
	}
	r := &Router{
		m:       cfg.Map,
		clients: cfg.Clients,
		lastSeq: make([]uint64, cfg.Map.K()),
		cands:   make([][]*client.Client, cfg.Map.K()),
		active:  make([]int, cfg.Map.K()),
		epochs:  make([]uint64, cfg.Map.K()),
	}
	for s := range r.cands {
		r.cands[s] = append(r.cands[s], cfg.Clients[s])
		if s < len(cfg.Backups) {
			r.cands[s] = append(r.cands[s], cfg.Backups[s]...)
		}
		r.epochs[s] = 1
	}
	if cfg.HeartbeatInterval > 0 {
		r.health = NewHealth(cfg.Map.K(), cfg.HeartbeatInterval, cfg.HealthMultiple, cfg.Engine.Now())
		cfg.Engine.Spawn("shard-hb-monitor", r.monitor(cfg.HeartbeatInterval))
	}
	return r, nil
}

// monitor polls each shard client's heartbeat mailbox sequence once per
// heartbeat interval; a sequence change means a heartbeat arrived since the
// last poll.
func (r *Router) monitor(interval time.Duration) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			for i := range r.cands {
				if seq := r.shardClient(i).HeartbeatSeq(); seq != r.lastSeq[i] {
					r.lastSeq[i] = seq
					r.health.Observe(i, p.Now())
				}
			}
		}
	}
}

// shardClient returns the client serving shard s — the primary until a
// failover swaps in a promoted backup.
func (r *Router) shardClient(s int) *client.Client {
	return r.cands[s][r.active[s]]
}

// failover promotes the best remaining candidate of shard s to a bumped
// epoch and makes it the serving replica. Candidates are tried in
// preference order; a dead one answers StatusUnavailable and is skipped.
// Reports whether a promotion succeeded.
func (r *Router) failover(p *sim.Proc, s int) bool {
	if len(r.cands[s]) <= 1 {
		return false
	}
	epoch := r.epochs[s] + 1
	for idx, c := range r.cands[s] {
		if err := c.Promote(p, epoch); err != nil {
			continue
		}
		r.epochs[s] = epoch
		r.active[s] = idx
		if r.health != nil {
			// The promoted replica gets a fresh liveness window; its own
			// heartbeats take over from here.
			r.lastSeq[s] = c.HeartbeatSeq()
			r.health.Observe(s, p.Now())
		}
		atomic.AddUint64(&r.stats.Promotions, 1)
		return true
	}
	return false
}

// Healthy reports shard i's current liveness.
func (r *Router) Healthy(i int, now time.Duration) bool {
	return r.health.Healthy(i, now)
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Searches:        atomic.LoadUint64(&r.stats.Searches),
		Writes:          atomic.LoadUint64(&r.stats.Writes),
		Moves:           atomic.LoadUint64(&r.stats.Moves),
		KNNs:            atomic.LoadUint64(&r.stats.KNNs),
		Fanout:          atomic.LoadUint64(&r.stats.Fanout),
		Skipped:         atomic.LoadUint64(&r.stats.Skipped),
		UnhealthyWrites: atomic.LoadUint64(&r.stats.UnhealthyWrites),
		Promotions:      atomic.LoadUint64(&r.stats.Promotions),
		BackupReads:     atomic.LoadUint64(&r.stats.BackupReads),
	}
}

// Snapshot aggregates every per-shard client's counters into one unified
// snapshot.
func (r *Router) Snapshot() telemetry.ClientSnapshot {
	var agg telemetry.ClientSnapshot
	for _, cs := range r.cands {
		for _, c := range cs {
			agg = agg.Add(c.Stats())
		}
	}
	return agg
}

// healthyTargets computes the scatter set for q, dropping unhealthy shards.
// The second result is false when every target was unhealthy.
func (r *Router) healthyTargets(q geo.Rect, now time.Duration) ([]int, bool) {
	r.targets = r.m.Targets(q, r.targets)
	if r.health == nil {
		return r.targets, true
	}
	healthy := r.targets[:0]
	for _, t := range r.targets {
		// A replicated shard stays in the scatter set even when its active
		// server looks dead: searchShard falls back to a backup replica.
		if len(r.cands[t]) > 1 || r.health.Healthy(t, now) {
			healthy = append(healthy, t)
		}
	}
	r.targets = healthy
	return r.targets, len(healthy) > 0
}

// searchShard runs one sub-search on shard s. When the active server
// refuses service (killed, fenced, demoted) the search retries on the
// shard's other replicas — backups answer reads without promotion, so read
// availability outlives a dying primary.
func (r *Router) searchShard(p *sim.Proc, s int, q geo.Rect) ([]wire.Item, client.Method, error) {
	items, m, err := r.shardClient(s).Search(p, q)
	if err == nil || !replica.Failover(err) {
		return items, m, err
	}
	for idx, c := range r.cands[s] {
		if idx == r.active[s] {
			continue
		}
		bItems, bm, berr := c.Search(p, q)
		if berr == nil {
			atomic.AddUint64(&r.stats.BackupReads, 1)
			return bItems, bm, nil
		}
		if !replica.Failover(berr) {
			return bItems, bm, berr
		}
	}
	return nil, m, err
}

// Search scatters q to every healthy shard whose coverage intersects it and
// merges the partial result sets in shard order. When every target shard is
// unhealthy the search returns an empty set (the router cannot answer it,
// but read availability degrades gracefully rather than blocking). The
// returned method is the first target's; per-shard methods are visible in
// the shard clients' Stats.
func (r *Router) Search(p *sim.Proc, q geo.Rect) ([]wire.Item, client.Method, error) {
	atomic.AddUint64(&r.stats.Searches, 1)
	targets, ok := r.healthyTargets(q, p.Now())
	if !ok {
		atomic.AddUint64(&r.stats.Skipped, 1)
		return nil, client.MethodFast, nil
	}
	atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
	if len(targets) == 1 {
		return r.searchShard(p, targets[0], q)
	}
	// Parallel scatter: the driving process takes the first target, one
	// spawned process per remaining target, a wait group as the gather
	// barrier.
	n := len(targets)
	r.gatherI = resize(r.gatherI, n)
	r.gatherM = resize(r.gatherM, n)
	r.gatherE = resize(r.gatherE, n)
	r.gatherTg = append(r.gatherTg[:0], targets...)
	wg := sim.NewWaitGroup(p.Engine())
	wg.Add(n - 1)
	for slot := 1; slot < n; slot++ {
		slot := slot
		shard := r.gatherTg[slot]
		p.Spawn("shard-scatter", func(sp *sim.Proc) {
			r.gatherI[slot], r.gatherM[slot], r.gatherE[slot] = r.searchShard(sp, shard, q)
			wg.Done()
		})
	}
	r.gatherI[0], r.gatherM[0], r.gatherE[0] = r.searchShard(p, r.gatherTg[0], q)
	wg.Wait(p)
	var items []wire.Item
	for slot := 0; slot < n; slot++ {
		if err := r.gatherE[slot]; err != nil {
			return nil, r.gatherM[slot], fmt.Errorf("shard %d: %w", r.gatherTg[slot], err)
		}
		items = append(items, r.gatherI[slot]...)
	}
	return items, r.gatherM[0], nil
}

// Insert routes the insert to the owning shard, failing with
// UnhealthyError when that shard has stopped heartbeating and no backup
// could be promoted in its place.
func (r *Router) Insert(p *sim.Proc, rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(p, rect)
	if err != nil {
		return err
	}
	return r.writeShard(p, owner, func(c *client.Client) error {
		return c.Insert(p, rect, ref)
	})
}

// Delete routes the delete to the owning shard, failing with
// UnhealthyError when that shard has stopped heartbeating and no backup
// could be promoted in its place.
func (r *Router) Delete(p *sim.Proc, rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(p, rect)
	if err != nil {
		return err
	}
	return r.writeShard(p, owner, func(c *client.Client) error {
		return c.Delete(p, rect, ref)
	})
}

// writeShard runs op against shard s's active replica, promoting a backup
// and retrying when the server refuses service. Attempts are bounded by
// the candidate count so a fully dead shard terminates with the unified
// UnhealthyError rather than looping.
func (r *Router) writeShard(p *sim.Proc, s int, op func(*client.Client) error) error {
	for attempt := 0; ; attempt++ {
		err := op(r.shardClient(s))
		if err == nil || !replica.Failover(err) {
			return err
		}
		if attempt >= len(r.cands[s]) || !r.failover(p, s) {
			atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
			return &UnhealthyError{Shard: s}
		}
	}
}

func (r *Router) writeTarget(p *sim.Proc, rect geo.Rect) (int, error) {
	atomic.AddUint64(&r.stats.Writes, 1)
	owner := r.m.Owner(rect)
	if r.health != nil && !r.health.Healthy(owner, p.Now()) {
		// A lapsed liveness window is the failover trigger: promote the
		// best backup and write there. Without backups the write fails
		// with the unified unhealthy error.
		if !r.failover(p, owner) {
			atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
			return 0, &UnhealthyError{Shard: owner}
		}
	}
	return owner, nil
}

func resize[T any](s []T, n int) []T {
	var zero T
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, zero)
	}
	return s
}
