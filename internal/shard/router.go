package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// RouterConfig parametrizes a simulated-fabric Router.
type RouterConfig struct {
	// Engine is the simulation the clients run in.
	Engine *sim.Engine
	// Map is the deployment's shard map.
	Map *Map
	// Clients holds one connected client per shard, in shard order. Each
	// client owns its own adaptive.Switch, so Algorithm 1's back-off runs
	// independently per shard: a hot shard offloads while idle shards keep
	// fast messaging.
	Clients []*client.Client
	// HeartbeatInterval is the servers' heartbeat period; liveness tracking
	// is disabled when zero.
	HeartbeatInterval time.Duration
	// HealthMultiple is the liveness window in heartbeat intervals
	// (DefaultHealthMultiple when 0).
	HealthMultiple int
}

// RouterStats counts router-level outcomes. Per-shard transport and
// offloading counters live in each shard client's Stats.
type RouterStats struct {
	// Searches and Writes count routed operations.
	Searches uint64
	Writes   uint64
	// Fanout is the total number of shard sub-searches issued; divided by
	// Searches it gives the mean fan-out per search.
	Fanout uint64
	// Skipped counts searches whose every target shard was unhealthy; they
	// return empty result sets rather than blocking.
	Skipped uint64
	// UnhealthyWrites counts writes rejected with UnhealthyError.
	UnhealthyWrites uint64
}

// Router scatters searches across the shards whose coverage intersects the
// query, gathers and merges the partial result sets, and routes each write
// to its unique owning shard. Sub-searches of one query run as parallel
// simulation processes, mirroring the goroutine fan-out of the real-socket
// router. A router serves one driving process; per-search scatter
// concurrency is internal.
type Router struct {
	m       *Map
	clients []*client.Client
	health  *Health
	lastSeq []uint64 // per-shard heartbeat sequence last observed
	stats   RouterStats

	// Reused scatter/batch scratch (single driving proc, so no locking).
	targets  []int
	subOps   [][]client.BatchOp
	subIdx   [][]int // original op index per sub-op
	subRes   [][]client.BatchResult
	gatherI  [][]wire.Item
	gatherM  []client.Method
	gatherE  []error
	gatherTg []int
}

// NewRouter builds a router over one connected client per shard and starts
// its heartbeat monitor process. Call before sim.Engine.Run (or from a
// running process).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil {
		return nil, fmt.Errorf("shard: router needs a map")
	}
	if len(cfg.Clients) != cfg.Map.K() {
		return nil, fmt.Errorf("shard: %d clients for %d shards", len(cfg.Clients), cfg.Map.K())
	}
	r := &Router{
		m:       cfg.Map,
		clients: cfg.Clients,
		lastSeq: make([]uint64, cfg.Map.K()),
	}
	if cfg.HeartbeatInterval > 0 {
		r.health = NewHealth(cfg.Map.K(), cfg.HeartbeatInterval, cfg.HealthMultiple, cfg.Engine.Now())
		cfg.Engine.Spawn("shard-hb-monitor", r.monitor(cfg.HeartbeatInterval))
	}
	return r, nil
}

// monitor polls each shard client's heartbeat mailbox sequence once per
// heartbeat interval; a sequence change means a heartbeat arrived since the
// last poll.
func (r *Router) monitor(interval time.Duration) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			for i, c := range r.clients {
				if seq := c.HeartbeatSeq(); seq != r.lastSeq[i] {
					r.lastSeq[i] = seq
					r.health.Observe(i, p.Now())
				}
			}
		}
	}
}

// Healthy reports shard i's current liveness.
func (r *Router) Healthy(i int, now time.Duration) bool {
	return r.health.Healthy(i, now)
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Searches:        atomic.LoadUint64(&r.stats.Searches),
		Writes:          atomic.LoadUint64(&r.stats.Writes),
		Fanout:          atomic.LoadUint64(&r.stats.Fanout),
		Skipped:         atomic.LoadUint64(&r.stats.Skipped),
		UnhealthyWrites: atomic.LoadUint64(&r.stats.UnhealthyWrites),
	}
}

// Snapshot aggregates every per-shard client's counters into one unified
// snapshot.
func (r *Router) Snapshot() telemetry.ClientSnapshot {
	var agg telemetry.ClientSnapshot
	for _, c := range r.clients {
		agg = agg.Add(c.Stats())
	}
	return agg
}

// healthyTargets computes the scatter set for q, dropping unhealthy shards.
// The second result is false when every target was unhealthy.
func (r *Router) healthyTargets(q geo.Rect, now time.Duration) ([]int, bool) {
	r.targets = r.m.Targets(q, r.targets)
	if r.health == nil {
		return r.targets, true
	}
	healthy := r.targets[:0]
	for _, t := range r.targets {
		if r.health.Healthy(t, now) {
			healthy = append(healthy, t)
		}
	}
	r.targets = healthy
	return r.targets, len(healthy) > 0
}

// Search scatters q to every healthy shard whose coverage intersects it and
// merges the partial result sets in shard order. When every target shard is
// unhealthy the search returns an empty set (the router cannot answer it,
// but read availability degrades gracefully rather than blocking). The
// returned method is the first target's; per-shard methods are visible in
// the shard clients' Stats.
func (r *Router) Search(p *sim.Proc, q geo.Rect) ([]wire.Item, client.Method, error) {
	atomic.AddUint64(&r.stats.Searches, 1)
	targets, ok := r.healthyTargets(q, p.Now())
	if !ok {
		atomic.AddUint64(&r.stats.Skipped, 1)
		return nil, client.MethodFast, nil
	}
	atomic.AddUint64(&r.stats.Fanout, uint64(len(targets)))
	if len(targets) == 1 {
		return r.clients[targets[0]].Search(p, q)
	}
	// Parallel scatter: the driving process takes the first target, one
	// spawned process per remaining target, a wait group as the gather
	// barrier.
	n := len(targets)
	r.gatherI = resize(r.gatherI, n)
	r.gatherM = resize(r.gatherM, n)
	r.gatherE = resize(r.gatherE, n)
	r.gatherTg = append(r.gatherTg[:0], targets...)
	wg := sim.NewWaitGroup(p.Engine())
	wg.Add(n - 1)
	for slot := 1; slot < n; slot++ {
		slot := slot
		shard := r.gatherTg[slot]
		p.Spawn("shard-scatter", func(sp *sim.Proc) {
			r.gatherI[slot], r.gatherM[slot], r.gatherE[slot] = r.clients[shard].Search(sp, q)
			wg.Done()
		})
	}
	r.gatherI[0], r.gatherM[0], r.gatherE[0] = r.clients[r.gatherTg[0]].Search(p, q)
	wg.Wait(p)
	var items []wire.Item
	for slot := 0; slot < n; slot++ {
		if err := r.gatherE[slot]; err != nil {
			return nil, r.gatherM[slot], fmt.Errorf("shard %d: %w", r.gatherTg[slot], err)
		}
		items = append(items, r.gatherI[slot]...)
	}
	return items, r.gatherM[0], nil
}

// Insert routes the insert to the owning shard, failing with
// UnhealthyError when that shard has stopped heartbeating.
func (r *Router) Insert(p *sim.Proc, rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(rect, p.Now())
	if err != nil {
		return err
	}
	return r.clients[owner].Insert(p, rect, ref)
}

// Delete routes the delete to the owning shard, failing with
// UnhealthyError when that shard has stopped heartbeating.
func (r *Router) Delete(p *sim.Proc, rect geo.Rect, ref uint64) error {
	owner, err := r.writeTarget(rect, p.Now())
	if err != nil {
		return err
	}
	return r.clients[owner].Delete(p, rect, ref)
}

func (r *Router) writeTarget(rect geo.Rect, now time.Duration) (int, error) {
	atomic.AddUint64(&r.stats.Writes, 1)
	owner := r.m.Owner(rect)
	if r.health != nil && !r.health.Healthy(owner, now) {
		atomic.AddUint64(&r.stats.UnhealthyWrites, 1)
		return 0, &UnhealthyError{Shard: owner}
	}
	return owner, nil
}

func resize[T any](s []T, n int) []T {
	var zero T
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, zero)
	}
	return s
}
