package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// simTransport names one (transport, method) combination under test.
type simTransport struct {
	name       string
	tcp        bool
	mode       server.Mode
	forced     client.Method
	multiIssue bool
}

var simTransports = []simTransport{
	{name: "ring-fast", mode: server.ModeEvent, forced: client.MethodFast},
	{name: "ring-offload-multi", mode: server.ModePolling, forced: client.MethodOffload, multiIssue: true},
	{name: "tcp", tcp: true, mode: server.ModeEvent, forced: client.MethodTCP},
}

// simDeploy is a K-shard simulated deployment plus its router.
type simDeploy struct {
	e       *sim.Engine
	servers []*server.Server
	router  *Router
}

// buildSimDeploy assembles K sharded servers over the simulated fabric and
// one router driving them. K=1 still routes (trivially) through the map.
func buildSimDeploy(t *testing.T, data []rtree.Entry, k int, tr simTransport, hbInv time.Duration, healthMultiple int) *simDeploy {
	t.Helper()
	m, err := Build(data, Config{K: k, MaxInsertEdge: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(data)

	e := sim.New(42)
	profile := netmodel.InfiniBand100G
	if tr.tcp {
		profile = netmodel.Ethernet40G
	}
	net := fabric.NewNetwork(e, profile)
	cost := netmodel.DefaultCostModel()
	clientHost := net.NewHost("client-host", sim.NewCPU(e, 8))

	d := &simDeploy{e: e}
	clients := make([]*client.Client, k)
	for s := 0; s < k; s++ {
		cpu := sim.NewCPU(e, 8)
		host := net.NewHost(fmt.Sprintf("shard-%d", s), cpu)
		reg, err := region.New(1<<13, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(assign[s]) > 0 {
			cp := append([]rtree.Entry(nil), assign[s]...)
			if err := tree.BulkLoad(cp, 0); err != nil {
				t.Fatal(err)
			}
		}
		scfg := server.Config{
			Engine:            e,
			Host:              host,
			Tree:              tree,
			Cost:              cost,
			Mode:              tr.mode,
			RingSize:          64 << 10,
			HeartbeatInterval: hbInv,
		}
		if tr.mode == server.ModePolling {
			scfg.PollCPU = sim.NewPollCPU(e, 8, cost.PollSlice)
		}
		srv, err := server.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		d.servers = append(d.servers, srv)

		ccfg := client.Config{
			Engine:       e,
			Host:         clientHost,
			Cost:         cost,
			Forced:       tr.forced,
			MultiIssue:   tr.multiIssue,
			HeartbeatInv: hbInv,
		}
		if tr.tcp {
			ep, err := srv.ConnectTCP(clientHost, net)
			if err != nil {
				t.Fatal(err)
			}
			ccfg.Endpoint = ep
		} else {
			ep, err := srv.Connect(clientHost, net, 16)
			if err != nil {
				t.Fatal(err)
			}
			ccfg.Endpoint = ep
		}
		clients[s], err = client.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	d.router, err = NewRouter(RouterConfig{
		Engine:            e,
		Map:               m,
		Clients:           clients,
		HeartbeatInterval: hbInv,
		HealthMultiple:    healthMultiple,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Randomized mixed workloads: searches interleaved with inserts and
// deletes, generated ahead of execution so the same script drives every
// deployment shape.
const (
	opSearch = iota
	opInsert
	opDelete
)

type scriptOp struct {
	kind int
	rect geo.Rect
	ref  uint64
}

func genScript(data []rtree.Entry, n int, seed int64) []scriptOp {
	rng := rand.New(rand.NewSource(seed))
	live := append([]rtree.Entry(nil), data...)
	nextRef := uint64(len(data)) + 1<<20
	ops := make([]scriptOp, 0, n)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.6:
			ops = append(ops, scriptOp{kind: opSearch, rect: randRect(rng, 0.08)})
		case r < 0.8:
			e := rtree.Entry{Rect: randRect(rng, 0.002), Ref: nextRef}
			nextRef++
			live = append(live, e)
			ops = append(ops, scriptOp{kind: opInsert, rect: e.Rect, ref: e.Ref})
		default:
			j := rng.Intn(len(live))
			e := live[j]
			live = append(live[:j], live[j+1:]...)
			ops = append(ops, scriptOp{kind: opDelete, rect: e.Rect, ref: e.Ref})
		}
	}
	return ops
}

func sortedRefs(items []wire.Item) []uint64 {
	refs := make([]uint64, 0, len(items))
	for _, it := range items {
		refs = append(refs, it.Ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	return refs
}

// runScriptRouter executes the script through a sharded router and returns
// the sorted result-set refs of each search (writes recorded as nil).
func runScriptRouter(t *testing.T, d *simDeploy, script []scriptOp, batchSize int) [][]uint64 {
	t.Helper()
	out := make([][]uint64, len(script))
	var runErr error
	d.e.Spawn("script", func(p *sim.Proc) {
		defer p.Engine().Stop()
		if batchSize > 1 {
			var batch []client.BatchOp
			var idx []int
			var results []client.BatchResult
			flush := func() {
				if len(batch) == 0 {
					return
				}
				results = d.router.ExecBatch(p, batch, results)
				for j, res := range results {
					if res.Err != nil {
						runErr = res.Err
						return
					}
					if batch[j].Type == wire.MsgSearch {
						out[idx[j]] = sortedRefs(res.Items)
					}
				}
				batch, idx = batch[:0], idx[:0]
			}
			for i, op := range script {
				switch op.kind {
				case opInsert:
					batch = append(batch, client.BatchOp{Type: wire.MsgInsert, Rect: op.rect, Ref: op.ref})
				case opDelete:
					batch = append(batch, client.BatchOp{Type: wire.MsgDelete, Rect: op.rect, Ref: op.ref})
				default:
					batch = append(batch, client.BatchOp{Type: wire.MsgSearch, Rect: op.rect})
				}
				idx = append(idx, i)
				if len(batch) == batchSize {
					flush()
					if runErr != nil {
						return
					}
				}
			}
			flush()
			return
		}
		for i, op := range script {
			switch op.kind {
			case opInsert:
				if err := d.router.Insert(p, op.rect, op.ref); err != nil {
					runErr = fmt.Errorf("op %d insert: %w", i, err)
					return
				}
			case opDelete:
				if err := d.router.Delete(p, op.rect, op.ref); err != nil {
					runErr = fmt.Errorf("op %d delete: %w", i, err)
					return
				}
			default:
				items, _, err := d.router.Search(p, op.rect)
				if err != nil {
					runErr = fmt.Errorf("op %d search: %w", i, err)
					return
				}
				out[i] = sortedRefs(items)
			}
		}
	})
	if err := d.e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

// groundTruth replays the script against a plain linear scan.
func groundTruth(data []rtree.Entry, script []scriptOp) [][]uint64 {
	live := append([]rtree.Entry(nil), data...)
	out := make([][]uint64, len(script))
	for i, op := range script {
		switch op.kind {
		case opInsert:
			live = append(live, rtree.Entry{Rect: op.rect, Ref: op.ref})
		case opDelete:
			for j, e := range live {
				if e.Ref == op.ref && e.Rect == op.rect {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		default:
			var items []wire.Item
			for _, e := range live {
				if op.rect.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			out[i] = sortedRefs(items)
		}
	}
	return out
}

func equalResults(a, b [][]uint64) (int, bool) {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

func TestRouterEquivalenceSim(t *testing.T) {
	// The sharded deployment must return exactly the same result sets as a
	// single-server run (K=1 routed through the trivial map) and as the
	// linear-scan ground truth, for every K and transport, under a
	// randomized mixed workload of searches, inserts, and deletes.
	data := dataset(4000, 0.002, 11)
	script := genScript(data, 400, 12)
	truth := groundTruth(data, script)
	for _, tr := range simTransports {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			var single [][]uint64
			for _, k := range []int{1, 2, 4, 8} {
				d := buildSimDeploy(t, data, k, tr, 10*time.Millisecond, 0)
				got := runScriptRouter(t, d, script, 1)
				if i, ok := equalResults(truth, got); !ok {
					t.Fatalf("K=%d: search %d diverges from ground truth:\n want %v\n got  %v",
						k, i, truth[i], got[i])
				}
				if k == 1 {
					single = got
				} else if i, ok := equalResults(single, got); !ok {
					t.Fatalf("K=%d: search %d diverges from single-server run at op %d", k, i, i)
				}
			}
		})
	}
}

func TestRouterBatchedEquivalenceSim(t *testing.T) {
	// The batched scatter path (per-shard sub-containers) must agree with
	// ground truth too.
	data := dataset(3000, 0.002, 13)
	script := genScript(data, 320, 14)
	truth := groundTruth(data, script)
	for _, tr := range simTransports {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			for _, k := range []int{2, 4} {
				d := buildSimDeploy(t, data, k, tr, 10*time.Millisecond, 0)
				got := runScriptRouter(t, d, script, 8)
				if i, ok := equalResults(truth, got); !ok {
					t.Fatalf("K=%d B=8: search %d diverges:\n want %v\n got  %v", k, i, truth[i], got[i])
				}
			}
		})
	}
}

// singleTargetRect finds a probe rectangle targeted at exactly the given
// shard, by scanning a grid of tiny rects over the unit square.
func singleTargetRect(m *Map, want int) (geo.Rect, bool) {
	var scratch []int
	for x := 0.05; x < 1; x += 0.05 {
		for y := 0.05; y < 1; y += 0.05 {
			r := geo.Rect{MinX: x, MaxX: x + 1e-6, MinY: y, MaxY: y + 1e-6}
			scratch = m.Targets(r, scratch)
			if len(scratch) == 1 && scratch[0] == want {
				return r, true
			}
		}
	}
	return geo.Rect{}, false
}

func TestRouterDroppedHeartbeatSim(t *testing.T) {
	// When a shard stops heartbeating, the router must (a) keep answering
	// searches from the surviving shards, (b) return empty for searches
	// whose every target is down, (c) reject writes owned by the dead shard
	// with the typed UnhealthyError, and (d) recover once heartbeats resume.
	const hbInv = 1 * time.Millisecond
	const multiple = 5 // 5ms window
	data := dataset(2000, 0.002, 15)
	for _, tr := range simTransports {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			d := buildSimDeploy(t, data, 2, tr, hbInv, multiple)
			m := d.router.m
			probe1, ok := singleTargetRect(m, 1)
			if !ok {
				t.Fatal("no single-target probe rect for shard 1")
			}
			probe0, ok := singleTargetRect(m, 0)
			if !ok {
				t.Fatal("no single-target probe rect for shard 0")
			}
			wide := geo.Rect{MinX: 0, MaxX: 1, MinY: 0, MaxY: 1}
			var failure error
			check := func(cond bool, format string, args ...any) {
				if !cond && failure == nil {
					failure = fmt.Errorf(format, args...)
				}
			}
			d.e.Spawn("script", func(p *sim.Proc) {
				defer p.Engine().Stop()
				// Warm up: everything healthy.
				p.Sleep(3 * hbInv)
				items, _, err := d.router.Search(p, wide)
				check(err == nil && len(items) > 0, "warmup search failed: %v (%d items)", err, len(items))
				check(d.router.Healthy(1, p.Now()), "shard 1 should start healthy")

				// Drop shard 1's heartbeats and let the window lapse.
				d.servers[1].PauseHeartbeats(true)
				p.Sleep(time.Duration(multiple+3) * hbInv)
				check(!d.router.Healthy(1, p.Now()), "shard 1 should be unhealthy after %d missed heartbeats", multiple+3)
				check(d.router.Healthy(0, p.Now()), "shard 0 should stay healthy")

				// (a) Wide search still answers from shard 0 alone.
				items, _, err = d.router.Search(p, wide)
				check(err == nil && len(items) > 0, "degraded search failed: %v (%d items)", err, len(items))
				for _, it := range items {
					check(m.Owner(it.Rect) == 0, "degraded search returned shard-1 item %v", it.Rect)
				}
				// (b) A search aimed only at the dead shard returns empty.
				before := d.router.Stats().Skipped
				items, _, err = d.router.Search(p, probe1)
				check(err == nil && len(items) == 0, "dead-shard search: err=%v items=%d", err, len(items))
				check(d.router.Stats().Skipped == before+1, "skipped counter did not advance")

				// (c) Writes owned by the dead shard fail typed; the live
				// shard still accepts writes.
				err = d.router.Insert(p, probe1, 1<<40)
				check(errors.Is(err, ErrUnhealthy), "dead-shard insert error = %v, want ErrUnhealthy", err)
				var ue *UnhealthyError
				check(errors.As(err, &ue) && ue.Shard == 1, "error should carry shard index: %v", err)
				check(d.router.Insert(p, probe0, 1<<41) == nil, "live-shard insert should succeed")
				// Batched writes surface the same typed error.
				res := d.router.ExecBatch(p, []client.BatchOp{
					{Type: wire.MsgInsert, Rect: probe1, Ref: 1 << 42},
				}, nil)
				check(errors.Is(res[0].Err, ErrUnhealthy), "batched dead-shard insert error = %v", res[0].Err)

				// (d) Resume heartbeats: the next beat restores health.
				d.servers[1].PauseHeartbeats(false)
				p.Sleep(3 * hbInv)
				check(d.router.Healthy(1, p.Now()), "shard 1 should recover after heartbeats resume")
				check(d.router.Insert(p, probe1, 1<<43) == nil, "recovered-shard insert should succeed")
			})
			if err := d.e.Run(); err != nil {
				t.Fatal(err)
			}
			if failure != nil {
				t.Fatal(failure)
			}
		})
	}
}
