// Package nodecache is a bounded, version-validated LRU cache of decoded
// internal index nodes, shared by every remote reader of a Catfish region:
// the simulated R-tree client, the real-TCP rpcnet client, and the B+-tree
// remote Reader backing the KV service.
//
// DESIGN.md §5.3 pins the offloading path's throughput ceiling at
// NIC bandwidth / (nodesRead · chunkSize): on a height-4 tree every
// offloaded search burns four full-chunk RDMA Reads. Upper tree levels
// change rarely, so caching their decoded form converts most of those
// reads into local lookups. Validation is two-tier:
//
//  1. Lease tier — an entry validated within the last lease window (one
//     heartbeat interval) is served with zero network. This is the same
//     bounded-staleness contract the root cache provides: a reader may
//     act on an image at most one heartbeat old.
//  2. Version tier — past the lease, the entry must be revalidated by a
//     version-only read (the chunk's per-cacheline version words, 512 B
//     instead of 4 KB for the default geometry; see region.ReadVersions).
//     If the fingerprint still matches, the cached node is trusted and
//     the lease renewed; otherwise the entry is dropped and the caller
//     falls back to a full fetch.
//
// DemoteAll demotes every entry to the version tier immediately — callers
// invoke it when the heartbeat mailbox's root-version word changes, so a
// structural change observed at the root shortens the lease of everything
// below it. Flush drops the whole cache; callers invoke it on stale
// restarts (level mismatch / garbage decode), which conservatively covers
// "evict the affected entries and flush their ancestors".
//
// Only internal (non-leaf) nodes belong in the cache: leaves absorb every
// insert and would thrash, and the existing root cache sets the precedent.
// Callers enforce this at Put time.
//
// A nil *Cache is a valid always-miss cache: every method is a no-op and
// Lookup reports Miss, so wiring a capacity-0 configuration leaves the
// read path bit-for-bit identical to an uncached client.
package nodecache

import (
	"sync"
	"time"
)

// Outcome classifies a Lookup.
type Outcome int

// Lookup outcomes.
const (
	// Miss: not cached; the caller performs a full fetch (and may Put).
	Miss Outcome = iota
	// Fresh: cached and inside the lease window; serve with zero network.
	Fresh
	// Verify: cached but past the lease; the caller must revalidate the
	// version fingerprint (a version-only read) and call Confirm.
	Verify
)

// Stats counts cache events. BytesSaved credits a full chunk for every
// lease hit and chunk-minus-versions for every verified hit.
type Stats struct {
	Hits          uint64 // lease-tier hits (zero network)
	VerifiedHits  uint64 // version-tier hits (512 B read instead of 4 KB)
	Misses        uint64 // absent entries and failed revalidations
	Evictions     uint64 // entries displaced by capacity pressure
	Invalidations uint64 // entries dropped by Evict/Flush/failed Confirm
	BytesSaved    uint64 // network bytes avoided vs. always-full-fetch
	PrefetchHits  uint64 // speculative entries later served to a demand lookup
	PrefetchWaste uint64 // speculative entries dropped or overwritten unused
}

type entry struct {
	chunk      int
	node       any
	version    uint64
	validated  time.Duration // clock reading of the last validation
	epoch      uint64        // cache epoch at the last validation
	prefetched bool          // inserted speculatively; unset at first demand hit
	prev       *entry
	next       *entry
}

// Cache is the bounded LRU. It is safe for concurrent use (the rpcnet
// multi-issue traversal fetches from real goroutines).
type Cache struct {
	mu       sync.Mutex
	capacity int
	lease    time.Duration
	chunk    int // full-chunk read size, for BytesSaved accounting
	versions int // version-only read size
	entries  map[int]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	// epoch demotes in bulk: entries validated in an older epoch are
	// Verify regardless of lease age (see DemoteAll).
	epoch uint64
	stats Stats
}

// New returns a cache holding up to capacity decoded nodes, or nil (the
// always-miss cache) when capacity <= 0. lease is the zero-network
// freshness window, normally the heartbeat interval; a zero lease makes
// every hit take the version tier, which keeps the cache sound even when
// no heartbeats flow. chunkSize and versionsSize calibrate BytesSaved.
func New(capacity int, lease time.Duration, chunkSize, versionsSize int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		lease:    lease,
		chunk:    chunkSize,
		versions: versionsSize,
		entries:  make(map[int]*entry, capacity),
	}
}

// Lookup consults the cache for chunk at clock reading now. The node is
// returned only with Fresh; a Verify outcome means the caller should
// issue a version-only read and Confirm.
func (c *Cache) Lookup(chunk int, now time.Duration) (any, Outcome) {
	if c == nil {
		return nil, Miss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[chunk]
	if !ok {
		c.stats.Misses++
		return nil, Miss
	}
	if e.epoch == c.epoch && now-e.validated <= c.lease {
		c.moveFront(e)
		c.stats.Hits++
		c.stats.BytesSaved += uint64(c.chunk)
		c.creditPrefetch(e)
		return e.node, Fresh
	}
	// The demoted node rides along as a hint: its fingerprint has not been
	// reconfirmed, so the caller must not serve it — but its entries may
	// seed speculative reads that overlap the revalidation (DESIGN.md
	// §5.9). Only Confirm promotes it back to servable.
	return e.node, Verify
}

// creditPrefetch records the first demand hit on a speculative entry.
func (c *Cache) creditPrefetch(e *entry) {
	if e.prefetched {
		e.prefetched = false
		c.stats.PrefetchHits++
	}
}

// Confirm resolves a Verify outcome: if the freshly-read version
// fingerprint still matches the cached entry, the lease is renewed and
// the node returned; otherwise the entry is dropped (the structure
// changed) and the caller falls back to a full fetch.
func (c *Cache) Confirm(chunk int, version uint64, now time.Duration) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[chunk]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if e.version != version {
		c.removeLocked(e)
		c.stats.Invalidations++
		c.stats.Misses++
		return nil, false
	}
	e.validated = now
	e.epoch = c.epoch
	c.moveFront(e)
	c.stats.VerifiedHits++
	if c.chunk > c.versions {
		c.stats.BytesSaved += uint64(c.chunk - c.versions)
	}
	c.creditPrefetch(e)
	return e.node, true
}

// Put inserts or refreshes the decoded node for chunk, stamped as
// validated at now. The least recently used entry is evicted on overflow.
// Callers must only Put internal (non-leaf) nodes, and must pass a node
// the cache may retain (not a reused decode buffer).
func (c *Cache) Put(chunk int, node any, version uint64, now time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[chunk]; ok {
		// A demand fetch replacing a still-unused speculative entry means
		// the prefetched bytes never saved a read.
		if e.prefetched {
			e.prefetched = false
			c.stats.PrefetchWaste++
		}
		e.node = node
		e.version = version
		e.validated = now
		e.epoch = c.epoch
		c.moveFront(e)
		return
	}
	if len(c.entries) >= c.capacity {
		c.stats.Evictions++
		c.removeLocked(c.tail)
	}
	e := &entry{chunk: chunk, node: node, version: version, validated: now, epoch: c.epoch}
	c.entries[chunk] = e
	c.pushFront(e)
}

// PutPrefetched inserts a speculatively fetched node, marked so the stats
// can attribute its eventual hit or waste to prefetching. An existing
// entry is refreshed in place and keeps its current attribution.
func (c *Cache) PutPrefetched(chunk int, node any, version uint64, now time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[chunk]; ok {
		e.node = node
		e.version = version
		e.validated = now
		e.epoch = c.epoch
		c.moveFront(e)
		return
	}
	if len(c.entries) >= c.capacity {
		c.stats.Evictions++
		c.removeLocked(c.tail)
	}
	e := &entry{chunk: chunk, node: node, version: version, validated: now,
		epoch: c.epoch, prefetched: true}
	c.entries[chunk] = e
	c.pushFront(e)
}

// Peek reports whether chunk is cached, without touching LRU order or
// stats. The prefetcher uses it to avoid speculating on chunks already
// resident.
func (c *Cache) Peek(chunk int) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[chunk]
	return ok
}

// Evict drops a single entry (level mismatch on a cached node).
func (c *Cache) Evict(chunk int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[chunk]; ok {
		c.removeLocked(e)
		c.stats.Invalidations++
	}
}

// DemoteAll moves every entry to the version tier: nothing is served
// lease-fresh until revalidated. Callers invoke it when the heartbeat's
// root-version word changes.
func (c *Cache) DemoteAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
}

// Flush drops every entry. Callers invoke it on stale restarts, which
// conservatively evicts the affected entries along with all ancestors.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Invalidations += uint64(len(c.entries))
	for _, e := range c.entries {
		if e.prefetched {
			c.stats.PrefetchWaste++
		}
	}
	c.entries = make(map[int]*entry, c.capacity)
	c.head, c.tail = nil, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// moveFront makes e the most recently used entry.
func (c *Cache) moveFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) removeLocked(e *entry) {
	if e.prefetched {
		c.stats.PrefetchWaste++
	}
	c.unlink(e)
	delete(c.entries, e.chunk)
}
