package nodecache

import (
	"testing"
	"time"
)

func newPrefCache(capacity int) *Cache {
	return New(capacity, 10*time.Millisecond, 4096, 512)
}

// TestPrefetchCreditOnFreshHit: the first demand lookup of a speculative
// entry counts one prefetch hit, exactly once.
func TestPrefetchCreditOnFreshHit(t *testing.T) {
	c := newPrefCache(4)
	c.PutPrefetched(7, "n7", 1, 0)
	if _, out := c.Lookup(7, time.Millisecond); out != Fresh {
		t.Fatalf("outcome = %v, want Fresh", out)
	}
	if s := c.Stats(); s.PrefetchHits != 1 || s.PrefetchWaste != 0 {
		t.Errorf("stats = %+v, want one hit", s)
	}
	// Attribution is one-shot: later hits are ordinary cache hits.
	c.Lookup(7, 2*time.Millisecond)
	if s := c.Stats(); s.PrefetchHits != 1 {
		t.Errorf("second lookup re-credited prefetch: %+v", s)
	}
}

// TestPrefetchCreditOnConfirm: an entry demoted past its lease that
// revalidates successfully still credits the speculation.
func TestPrefetchCreditOnConfirm(t *testing.T) {
	c := newPrefCache(4)
	c.PutPrefetched(3, "n3", 42, 0)
	if _, out := c.Lookup(3, time.Hour); out != Verify {
		t.Fatalf("outcome = %v, want Verify past the lease", out)
	}
	if _, ok := c.Confirm(3, 42, time.Hour); !ok {
		t.Fatal("confirm with matching version failed")
	}
	if s := c.Stats(); s.PrefetchHits != 1 || s.PrefetchWaste != 0 {
		t.Errorf("stats = %+v, want one hit via confirm", s)
	}
}

// TestPrefetchWasteTransitions: a speculative entry that is overwritten by
// a demand Put, dropped by Evict, displaced by capacity, invalidated by a
// version mismatch, or flushed — all before any demand hit — counts as
// waste exactly once per entry.
func TestPrefetchWasteTransitions(t *testing.T) {
	t.Run("overwritten-by-demand-put", func(t *testing.T) {
		c := newPrefCache(4)
		c.PutPrefetched(1, "spec", 1, 0)
		c.Put(1, "demand", 2, 0)
		if s := c.Stats(); s.PrefetchWaste != 1 || s.PrefetchHits != 0 {
			t.Errorf("stats = %+v, want one waste", s)
		}
		// The refreshed entry is now demand-attributed: a hit is ordinary.
		c.Lookup(1, time.Millisecond)
		if s := c.Stats(); s.PrefetchHits != 0 {
			t.Errorf("demand-overwritten entry credited prefetch: %+v", s)
		}
	})
	t.Run("evicted", func(t *testing.T) {
		c := newPrefCache(4)
		c.PutPrefetched(1, "spec", 1, 0)
		c.Evict(1)
		if s := c.Stats(); s.PrefetchWaste != 1 {
			t.Errorf("stats = %+v, want one waste", s)
		}
	})
	t.Run("capacity-displaced", func(t *testing.T) {
		c := newPrefCache(2)
		c.PutPrefetched(1, "spec", 1, 0)
		c.Put(2, "a", 1, 0)
		c.Put(3, "b", 1, 0) // displaces chunk 1, the LRU
		if s := c.Stats(); s.PrefetchWaste != 1 || s.Evictions != 1 {
			t.Errorf("stats = %+v, want one waste + one eviction", s)
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		c := newPrefCache(4)
		c.PutPrefetched(1, "spec", 1, 0)
		if _, ok := c.Confirm(1, 99, time.Hour); ok {
			t.Fatal("confirm with wrong version succeeded")
		}
		if s := c.Stats(); s.PrefetchWaste != 1 {
			t.Errorf("stats = %+v, want one waste", s)
		}
	})
	t.Run("flushed", func(t *testing.T) {
		c := newPrefCache(4)
		c.PutPrefetched(1, "spec", 1, 0)
		c.PutPrefetched(2, "spec", 1, 0)
		c.Put(3, "demand", 1, 0)
		c.Flush()
		if s := c.Stats(); s.PrefetchWaste != 2 {
			t.Errorf("stats = %+v, want two waste (demand entries don't count)", s)
		}
	})
}

// TestPeekIsInvisible: Peek reports residency without disturbing stats,
// attribution, or LRU order.
func TestPeekIsInvisible(t *testing.T) {
	c := newPrefCache(2)
	c.PutPrefetched(1, "spec", 1, 0)
	c.Put(2, "demand", 1, 0)
	if !c.Peek(1) || !c.Peek(2) || c.Peek(3) {
		t.Error("peek residency wrong")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("peek mutated stats: %+v", s)
	}
	// Peeking chunk 1 must not have promoted it: inserting a third entry
	// still displaces the LRU by insertion/use order (chunk 1).
	c.Put(3, "c", 1, 0)
	if c.Peek(1) {
		t.Error("peek promoted the entry in LRU order")
	}
}
