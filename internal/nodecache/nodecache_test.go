package nodecache

import (
	"sync"
	"testing"
	"time"
)

const (
	chunkSize    = 4096
	versionsSize = 512
	lease        = 10 * time.Millisecond
)

func newCache(capacity int) *Cache {
	return New(capacity, lease, chunkSize, versionsSize)
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if c2 := New(0, lease, chunkSize, versionsSize); c2 != nil {
		t.Fatal("capacity 0 should return the nil cache")
	}
	if n, out := c.Lookup(1, 0); n != nil || out != Miss {
		t.Fatalf("nil Lookup = (%v, %v)", n, out)
	}
	c.Put(1, "x", 2, 0)
	if _, ok := c.Confirm(1, 2, 0); ok {
		t.Fatal("nil Confirm succeeded")
	}
	c.Evict(1)
	c.DemoteAll()
	c.Flush()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache accumulated state")
	}
}

func TestLeaseTiers(t *testing.T) {
	c := newCache(4)
	c.Put(7, "node7", 42, 0)

	// Inside the lease: Fresh, zero network.
	n, out := c.Lookup(7, lease)
	if out != Fresh || n != "node7" {
		t.Fatalf("in-lease Lookup = (%v, %v), want Fresh", n, out)
	}
	// Past the lease: Verify.
	if _, out := c.Lookup(7, lease+1); out != Verify {
		t.Fatalf("post-lease Lookup outcome = %v, want Verify", out)
	}
	// Matching fingerprint renews the lease.
	n, ok := c.Confirm(7, 42, lease+1)
	if !ok || n != "node7" {
		t.Fatalf("Confirm(match) = (%v, %v)", n, ok)
	}
	if _, out := c.Lookup(7, 2*lease+1); out != Fresh {
		t.Fatal("lease not renewed by Confirm")
	}
	// Changed fingerprint drops the entry.
	if _, ok := c.Confirm(7, 43, 3*lease); ok {
		t.Fatal("Confirm accepted a changed version")
	}
	if _, out := c.Lookup(7, 3*lease); out != Miss {
		t.Fatal("entry survived a failed Confirm")
	}
	st := c.Stats()
	if st.Hits != 2 || st.VerifiedHits != 1 || st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	wantSaved := uint64(2*chunkSize + chunkSize - versionsSize)
	if st.BytesSaved != wantSaved {
		t.Fatalf("BytesSaved = %d, want %d", st.BytesSaved, wantSaved)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(2)
	c.Put(1, "a", 1, 0)
	c.Put(2, "b", 1, 0)
	c.Lookup(1, 0) // 1 becomes MRU
	c.Put(3, "c", 1, 0)
	if _, out := c.Lookup(2, 0); out != Miss {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	for _, id := range []int{1, 3} {
		if _, out := c.Lookup(id, 0); out != Fresh {
			t.Fatalf("entry %d missing after eviction of 2", id)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestDemoteAllForcesVerify(t *testing.T) {
	c := newCache(4)
	now := time.Millisecond
	c.Put(1, "a", 9, now)
	c.DemoteAll()
	if _, out := c.Lookup(1, now); out != Verify {
		t.Fatal("DemoteAll did not demote a lease-fresh entry")
	}
	if n, ok := c.Confirm(1, 9, now+1); !ok || n != "a" {
		t.Fatal("Confirm after DemoteAll failed")
	}
	if _, out := c.Lookup(1, now+2); out != Fresh {
		t.Fatal("Confirm did not restore freshness after DemoteAll")
	}
}

func TestFlushAndEvict(t *testing.T) {
	c := newCache(4)
	c.Put(1, "a", 1, 0)
	c.Put(2, "b", 1, 0)
	c.Evict(1)
	if _, out := c.Lookup(1, 0); out != Miss {
		t.Fatal("Evict left the entry behind")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d", c.Len())
	}
	if _, out := c.Lookup(2, 0); out != Miss {
		t.Fatal("Flush left an entry behind")
	}
	// 1 by Evict, 1 by Flush.
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", st.Invalidations)
	}
}

func TestPutRefreshesInPlace(t *testing.T) {
	c := newCache(2)
	c.Put(1, "old", 1, 0)
	c.Put(2, "b", 1, 0)
	c.Put(1, "new", 5, time.Millisecond)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	n, out := c.Lookup(1, time.Millisecond)
	if out != Fresh || n != "new" {
		t.Fatalf("refreshed entry = (%v, %v)", n, out)
	}
	if _, ok := c.Confirm(2, 1, lease*2); !ok {
		t.Fatal("untouched entry lost by refresh")
	}
}

// Concurrent mixed operations; run with -race.
func TestConcurrentAccess(t *testing.T) {
	c := newCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := (g*31 + i) % 64
				now := time.Duration(i) * time.Microsecond
				switch _, out := c.Lookup(id, now); out {
				case Miss:
					c.Put(id, id, uint64(id), now)
				case Verify:
					c.Confirm(id, uint64(id), now)
				}
				if i%97 == 0 {
					c.DemoteAll()
				}
				if i%193 == 0 {
					c.Evict(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}
