package wire

import (
	"errors"
	"math"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestFetchDescRoundtrip(t *testing.T) {
	d := FetchDesc{ID: 99, Status: StatusOK, Slot: 7, Bytes: 4000, Count: 100, Seq: 1 << 40}
	buf := d.Encode(nil)
	if len(buf) != FetchDescSize {
		t.Fatalf("encoded size %d, want %d", len(buf), FetchDescSize)
	}
	got, err := DecodeFetchDesc(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("roundtrip %+v != %+v", got, d)
	}
	if typ, err := PeekType(buf); err != nil || typ != MsgFetchDesc {
		t.Fatalf("peek = %v, %v", typ, err)
	}
	if _, err := DecodeFetchDesc(buf[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated decode error = %v", err)
	}
}

func TestFetchAckAndReadMailboxRoundtrip(t *testing.T) {
	a := FetchAck{Slot: 3, Seq: 12345}
	got, err := DecodeFetchAck(a.Encode(nil))
	if err != nil || got != a {
		t.Fatalf("ack roundtrip %+v, %v", got, err)
	}
	r := ReadMailbox{ID: 8, Chunk: 640, Count: 16}
	rgot, err := DecodeReadMailbox(r.Encode(nil))
	if err != nil || rgot != r {
		t.Fatalf("read-mailbox roundtrip %+v, %v", rgot, err)
	}
}

func TestPackedItemsRoundtrip(t *testing.T) {
	items := []Item{
		{Rect: geo.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4}, Ref: 11},
		{Rect: geo.Rect{MinX: 0.5, MinY: 0.6, MaxX: 0.7, MaxY: 0.8}, Ref: 22},
	}
	buf := EncodeItems(nil, items)
	if len(buf) != len(items)*ItemSize {
		t.Fatalf("packed size %d, want %d", len(buf), len(items)*ItemSize)
	}
	got, err := DecodeItems(buf, len(items))
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: %+v != %+v", i, got[i], items[i])
		}
	}
	if _, err := DecodeItems(buf, len(items)+1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-count decode error = %v", err)
	}
}

// TestHeartbeatLegacyLayout pins the widened heartbeat frame against the
// pre-fetch layout: a legacy-length frame still decodes (TXUtil zero), and
// the widened frame decodes the legacy words identically.
func TestHeartbeatLegacyLayout(t *testing.T) {
	h := Heartbeat{Util: 0.5, RootVer: 9, TXUtil: 0.25}
	buf := h.Encode(nil)
	if len(buf) != HeartbeatSize {
		t.Fatalf("encoded size %d, want %d", len(buf), HeartbeatSize)
	}
	wide, err := DecodeHeartbeat(buf)
	if err != nil || wide != h {
		t.Fatalf("wide decode %+v, %v", wide, err)
	}
	legacy, err := DecodeHeartbeat(buf[:HeartbeatSizeLegacy])
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Util != h.Util || legacy.RootVer != h.RootVer {
		t.Fatalf("legacy words changed: %+v", legacy)
	}
	if legacy.TXUtil != 0 {
		t.Fatalf("legacy TXUtil = %v, want 0", legacy.TXUtil)
	}
}

// TestHelloLegacyLayout pins the widened hello against the pre-fetch layout:
// a legacy-length hello reads as fetch-unsupported.
func TestHelloLegacyLayout(t *testing.T) {
	h := Hello{
		RootChunk: 5, ChunkSize: 4096, MaxEntries: 64, NumChunks: 1000,
		HeartbeatMs: 10, ServerEpoch: math.MaxUint64, ShardIndex: 1,
		ShardCount: 4, MapVersion: 77, FetchSlots: 32, FetchSlotChunks: 64,
	}
	buf := h.Encode(nil)
	if len(buf) != HelloSize {
		t.Fatalf("encoded size %d, want %d", len(buf), HelloSize)
	}
	wide, err := DecodeHello(buf)
	if err != nil || wide != h {
		t.Fatalf("wide decode %+v, %v", wide, err)
	}
	legacy, err := DecodeHello(buf[:helloSizeLegacy])
	if err != nil {
		t.Fatal(err)
	}
	want := h
	want.FetchSlots, want.FetchSlotChunks = 0, 0
	if legacy != want {
		t.Fatalf("legacy decode %+v, want %+v", legacy, want)
	}
}
