package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/catfish-db/catfish/internal/geo"
)

// rectSize is the encoded size of one cell rectangle (4 float64 words).
const rectSize = 32

// Shard-map message types, appended after the batch container so existing
// on-wire values never change. A router fetches the deployment's versioned
// shard map from any member server at connection time; the Hello already
// carries the map version, so a fetch is only needed once per deployment
// and mismatches are detected before any data op is issued.
const (
	// MsgShardMap requests the server's shard map.
	MsgShardMap MsgType = iota + MsgBatch + 1
	// MsgShardMapData carries the encoded map back to the router.
	MsgShardMapData
)

// ShardMapRequest asks a server for its shard map.
type ShardMapRequest struct {
	ID uint64 // request tag
}

// ShardMapRequestSize is the encoded size of a ShardMapRequest.
const ShardMapRequestSize = 1 + 8

// Encode appends the request encoding to buf and returns it.
func (r ShardMapRequest) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ShardMapRequestSize)...)
	b := buf[off:]
	b[0] = byte(MsgShardMap)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	return buf
}

// DecodeShardMapRequest parses a shard-map request.
func DecodeShardMapRequest(b []byte) (ShardMapRequest, error) {
	if len(b) < ShardMapRequestSize || MsgType(b[0]) != MsgShardMap {
		return ShardMapRequest{}, fmt.Errorf("%w: shard-map request", ErrCorrupt)
	}
	return ShardMapRequest{ID: binary.LittleEndian.Uint64(b[1:])}, nil
}

// ShardMapData answers a ShardMapRequest: the map version, the coverage
// pads, and the K cells in shard order. Infinite coordinates (the boundary
// cells extend to infinity) round-trip exactly through the IEEE-754 bits.
type ShardMapData struct {
	ID      uint64
	Status  uint8
	Version uint64
	PadX    float64
	PadY    float64
	Cells   []geo.Rect
	// Addrs is an optional per-cell address table (empty, or one address
	// per cell, in shard order). Servers that know their deployment's
	// addresses append it so a router adopting a resharded map mid-run can
	// discover and dial the new shard without out-of-band configuration.
	// It trails the cells: pre-replication decoders ignored trailing bytes,
	// so the frame stays backward compatible.
	Addrs []string
}

const shardMapDataHeader = 1 + 8 + 1 + 8 + 8 + 8 + 4

// EncodedSize returns the encoded size of the shard-map data message.
func (m ShardMapData) EncodedSize() int {
	n := shardMapDataHeader + rectSize*len(m.Cells)
	if len(m.Addrs) > 0 {
		n += 2
		for _, a := range m.Addrs {
			n += 2 + len(a)
		}
	}
	return n
}

// Encode appends the shard-map data encoding to buf and returns it.
func (m ShardMapData) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, m.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgShardMapData)
	binary.LittleEndian.PutUint64(b[1:], m.ID)
	b[9] = m.Status
	binary.LittleEndian.PutUint64(b[10:], m.Version)
	binary.LittleEndian.PutUint64(b[18:], math.Float64bits(m.PadX))
	binary.LittleEndian.PutUint64(b[26:], math.Float64bits(m.PadY))
	binary.LittleEndian.PutUint32(b[34:], uint32(len(m.Cells)))
	p := shardMapDataHeader
	for _, c := range m.Cells {
		putRect(b[p:], c)
		p += rectSize
	}
	if len(m.Addrs) > 0 {
		binary.LittleEndian.PutUint16(b[p:], uint16(len(m.Addrs)))
		p += 2
		for _, a := range m.Addrs {
			binary.LittleEndian.PutUint16(b[p:], uint16(len(a)))
			p += 2
			copy(b[p:], a)
			p += len(a)
		}
	}
	return buf
}

// DecodeShardMapData parses a shard-map data message. The trailing address
// table is optional; a frame that ends at the cells decodes with no Addrs.
func DecodeShardMapData(b []byte) (ShardMapData, error) {
	if len(b) < shardMapDataHeader || MsgType(b[0]) != MsgShardMapData {
		return ShardMapData{}, fmt.Errorf("%w: shard-map data", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[34:]))
	if n > MaxShardCells || len(b) < shardMapDataHeader+rectSize*n {
		return ShardMapData{}, fmt.Errorf("%w: shard-map data truncated", ErrCorrupt)
	}
	m := ShardMapData{
		ID:      binary.LittleEndian.Uint64(b[1:]),
		Status:  b[9],
		Version: binary.LittleEndian.Uint64(b[10:]),
		PadX:    math.Float64frombits(binary.LittleEndian.Uint64(b[18:])),
		PadY:    math.Float64frombits(binary.LittleEndian.Uint64(b[26:])),
	}
	p := shardMapDataHeader
	for i := 0; i < n; i++ {
		m.Cells = append(m.Cells, getRect(b[p:]))
		p += rectSize
	}
	if len(b) >= p+2 {
		na := int(binary.LittleEndian.Uint16(b[p:]))
		p += 2
		for i := 0; i < na; i++ {
			if len(b) < p+2 {
				return ShardMapData{}, fmt.Errorf("%w: shard-map address table truncated", ErrCorrupt)
			}
			la := int(binary.LittleEndian.Uint16(b[p:]))
			p += 2
			if len(b) < p+la {
				return ShardMapData{}, fmt.Errorf("%w: shard-map address table truncated", ErrCorrupt)
			}
			m.Addrs = append(m.Addrs, string(b[p:p+la]))
			p += la
		}
	}
	return m, nil
}

// MaxShardCells bounds a decoded shard map's cell count, rejecting corrupt
// length words before they drive a huge allocation.
const MaxShardCells = 1 << 16
