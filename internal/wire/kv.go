package wire

import (
	"encoding/binary"
	"fmt"
)

// KV message types extend the protocol for the §VI framework's key-value
// service (B+-tree backend): the same ring buffers and heartbeats carry
// point gets, upserts, deletes, and ordered range scans.
const (
	MsgKVGet MsgType = iota + MsgChunkData + 1
	MsgKVPut
	MsgKVDelete
	MsgKVRange
	MsgKVResponse
)

// KVRequest is one key-value operation. End is the inclusive range bound
// (MsgKVRange only); Val is the payload (MsgKVPut only).
type KVRequest struct {
	Type MsgType
	ID   uint64
	Key  uint64
	Val  uint64
	End  uint64
}

// KVRequestSize is the encoded size of a KVRequest.
const KVRequestSize = 1 + 8*4

// Encode appends the request encoding to buf and returns it.
func (r KVRequest) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, KVRequestSize)...)
	b := buf[off:]
	b[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint64(b[9:], r.Key)
	binary.LittleEndian.PutUint64(b[17:], r.Val)
	binary.LittleEndian.PutUint64(b[25:], r.End)
	return buf
}

// DecodeKVRequest parses a key-value request.
func DecodeKVRequest(b []byte) (KVRequest, error) {
	if len(b) < KVRequestSize {
		return KVRequest{}, fmt.Errorf("%w: kv request %d bytes", ErrCorrupt, len(b))
	}
	typ := MsgType(b[0])
	if typ < MsgKVGet || typ > MsgKVRange {
		return KVRequest{}, fmt.Errorf("%w: kv request type %d", ErrCorrupt, typ)
	}
	return KVRequest{
		Type: typ,
		ID:   binary.LittleEndian.Uint64(b[1:]),
		Key:  binary.LittleEndian.Uint64(b[9:]),
		Val:  binary.LittleEndian.Uint64(b[17:]),
		End:  binary.LittleEndian.Uint64(b[25:]),
	}, nil
}

// KVPair is one key-value result.
type KVPair struct {
	Key uint64
	Val uint64
}

// KVResponse carries (a segment of) a key-value operation's results, with
// the same CONT/END segmentation as spatial responses.
type KVResponse struct {
	ID     uint64
	Final  bool
	Status uint8
	Pairs  []KVPair
}

const kvRespHeader = 1 + 8 + 1 + 1 + 4

// EncodedSize returns the encoded size of the response.
func (r KVResponse) EncodedSize() int { return kvRespHeader + len(r.Pairs)*16 }

// Encode appends the response encoding to buf and returns it.
func (r KVResponse) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, r.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgKVResponse)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	if r.Final {
		b[9] = 1
	}
	b[10] = r.Status
	binary.LittleEndian.PutUint32(b[11:], uint32(len(r.Pairs)))
	p := kvRespHeader
	for _, kv := range r.Pairs {
		binary.LittleEndian.PutUint64(b[p:], kv.Key)
		binary.LittleEndian.PutUint64(b[p+8:], kv.Val)
		p += 16
	}
	return buf
}

// DecodeKVResponse parses a key-value response.
func DecodeKVResponse(b []byte) (KVResponse, error) {
	if len(b) < kvRespHeader || MsgType(b[0]) != MsgKVResponse {
		return KVResponse{}, fmt.Errorf("%w: kv response header", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[11:]))
	if len(b) < kvRespHeader+count*16 {
		return KVResponse{}, fmt.Errorf("%w: kv response truncated", ErrCorrupt)
	}
	r := KVResponse{
		ID:     binary.LittleEndian.Uint64(b[1:]),
		Final:  b[9] == 1,
		Status: b[10],
	}
	if count > 0 {
		r.Pairs = make([]KVPair, count)
		p := kvRespHeader
		for i := range r.Pairs {
			r.Pairs[i] = KVPair{
				Key: binary.LittleEndian.Uint64(b[p:]),
				Val: binary.LittleEndian.Uint64(b[p+8:]),
			}
			p += 16
		}
	}
	return r, nil
}
