package wire

import (
	"encoding/binary"
	"fmt"
)

// Version-read message types (the rpcnet READ_VERSIONS op), appended after
// the KV types so existing on-wire values never change.
const (
	// MsgReadVersions requests only a chunk's per-cacheline version words
	// (region.ReadVersions): the node cache's cheap revalidation read,
	// 512 B instead of a 4 KB chunk for the default geometry.
	MsgReadVersions MsgType = iota + MsgKVResponse + 1
	// MsgVersionData carries the raw version vector back to the reader.
	MsgVersionData
)

// ReadVersions requests the version vector of a chunk. Like ReadChunk it
// is answered from the region without taking the tree lock.
type ReadVersions struct {
	ID    uint64 // request tag
	Chunk uint32
}

// ReadVersionsSize is the encoded size of a ReadVersions.
const ReadVersionsSize = 1 + 8 + 4

// Encode appends the read-versions encoding to buf and returns it.
func (r ReadVersions) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ReadVersionsSize)...)
	b := buf[off:]
	b[0] = byte(MsgReadVersions)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint32(b[9:], r.Chunk)
	return buf
}

// DecodeReadVersions parses a read-versions request.
func DecodeReadVersions(b []byte) (ReadVersions, error) {
	if len(b) < ReadVersionsSize || MsgType(b[0]) != MsgReadVersions {
		return ReadVersions{}, fmt.Errorf("%w: read-versions", ErrCorrupt)
	}
	return ReadVersions{
		ID:    binary.LittleEndian.Uint64(b[1:]),
		Chunk: binary.LittleEndian.Uint32(b[9:]),
	}, nil
}

// VersionData answers a ReadVersions with the raw version words; the
// client validates cross-line agreement with region.DecodeVersions exactly
// as it would over RDMA.
type VersionData struct {
	ID       uint64
	Status   uint8
	Versions []byte
}

const versionDataHeader = 1 + 8 + 1 + 4

// EncodedSize returns the encoded size of the version-data message.
func (v VersionData) EncodedSize() int { return versionDataHeader + len(v.Versions) }

// Encode appends the version-data encoding to buf and returns it.
func (v VersionData) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, v.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgVersionData)
	binary.LittleEndian.PutUint64(b[1:], v.ID)
	b[9] = v.Status
	binary.LittleEndian.PutUint32(b[10:], uint32(len(v.Versions)))
	copy(b[versionDataHeader:], v.Versions)
	return buf
}

// DecodeVersionData parses a version-data message. The Versions slice
// aliases b.
func DecodeVersionData(b []byte) (VersionData, error) {
	if len(b) < versionDataHeader || MsgType(b[0]) != MsgVersionData {
		return VersionData{}, fmt.Errorf("%w: version-data", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[10:]))
	if len(b) < versionDataHeader+n {
		return VersionData{}, fmt.Errorf("%w: version-data truncated", ErrCorrupt)
	}
	return VersionData{
		ID:       binary.LittleEndian.Uint64(b[1:]),
		Status:   b[9],
		Versions: b[versionDataHeader : versionDataHeader+n],
	}, nil
}
