// Pooled encode/decode buffers for the fast-messaging hot path. Encoding
// a request or response into a pooled, already-grown buffer performs zero
// heap allocations per message; callers return buffers once the bytes
// have been copied onto the wire (or the decoded fields copied out).
package wire

import "sync"

// bufCap seeds pooled buffers at one response segment (~4 KB) so steady
// state never grows them.
const bufCap = 4096

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, bufCap)
		return &b
	},
}

// GetBuf returns a zero-length pooled buffer. Pass the pointer back to
// PutBuf when done; the pointer indirection keeps the pool allocation-free.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	bufPool.Put(b)
}
