package wire

import (
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestMoveRequestRoundTrip(t *testing.T) {
	want := MoveRequest(42, geo.NewRect(0.1, 0.2, 0.3, 0.4), geo.NewRect(0.5, 0.6, 0.7, 0.8), 99)
	buf := want.Encode(nil)
	if len(buf) != MoveRequestSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), MoveRequestSize)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestMoveRequestDeadline(t *testing.T) {
	want := MoveRequest(7, geo.PointRect(0.25, 0.25), geo.PointRect(0.26, 0.25), 3)
	want.DeadlineUS = 1500
	buf := want.Encode(nil)
	if len(buf) != MoveRequestSize+4 {
		t.Fatalf("encoded %d bytes, want %d", len(buf), MoveRequestSize+4)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	// A truncated move (no destination rectangle) must be rejected, not
	// silently parsed as a legacy request.
	if _, err := DecodeRequest(buf[:RequestSize]); err == nil {
		t.Error("truncated move decoded without error")
	}
}

func TestKNNRequestRoundTrip(t *testing.T) {
	want := KNNRequest(11, 5, 0.5, 0.75)
	buf := want.Encode(nil)
	if len(buf) != RequestSize {
		t.Fatalf("kNN encoded %d bytes, want legacy %d", len(buf), RequestSize)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	if got.Ref != 5 {
		t.Errorf("k = %d, want 5", got.Ref)
	}
	if x, y := got.Rect.Center(); x != 0.5 || y != 0.75 {
		t.Errorf("query point = (%g,%g), want (0.5,0.75)", x, y)
	}

	fetch := want
	fetch.Type = MsgKNNFetch
	if got, err := DecodeRequest(fetch.Encode(nil)); err != nil || got.Type != MsgKNNFetch {
		t.Errorf("kNN-fetch round trip: %+v, %v", got, err)
	}
}

func TestPeekTypeGeoOps(t *testing.T) {
	for _, typ := range []MsgType{MsgMove, MsgKNN, MsgKNNFetch} {
		if got, err := PeekType([]byte{byte(typ)}); err != nil || got != typ {
			t.Errorf("PeekType(%d) = %d, %v", typ, got, err)
		}
	}
	if _, err := PeekType([]byte{byte(MsgKNNFetch + 1)}); err == nil {
		t.Error("PeekType accepted a type past MsgKNNFetch")
	}
}

func TestMoveInBatch(t *testing.T) {
	var enc BatchEncoder
	enc.Reset(nil)
	enc.Begin()
	enc.Buf = MoveRequest(1, geo.PointRect(0.1, 0.1), geo.PointRect(0.2, 0.2), 8).Encode(enc.Buf)
	enc.End()
	enc.Begin()
	enc.Buf = KNNRequest(2, 3, 0.5, 0.5).Encode(enc.Buf)
	enc.End()
	it, err := DecodeBatch(enc.Bytes())
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	sub, ok := it.Next()
	if !ok {
		t.Fatal("missing first sub-message")
	}
	if req, err := DecodeRequest(sub); err != nil || req.Type != MsgMove || req.Rect2 != geo.PointRect(0.2, 0.2) {
		t.Errorf("move sub-message: %+v, %v", req, err)
	}
	sub, ok = it.Next()
	if !ok {
		t.Fatal("missing second sub-message")
	}
	if req, err := DecodeRequest(sub); err != nil || req.Type != MsgKNN || req.Ref != 3 {
		t.Errorf("knn sub-message: %+v, %v", req, err)
	}
}
