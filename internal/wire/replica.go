// Replication messages: the primary→backup stream that keeps each shard's
// backups warm (DESIGN.md §5.11). A primary ships every applied index
// mutation as a sequenced, epoch-stamped record; a batch of records rides
// one MsgReplicate frame (the TCP analogue of a merged one-sided span
// write), and the backup answers with a MsgReplAck carrying its epoch and
// highest applied sequence so the primary can detect fencing and re-send
// across gaps.
package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/catfish-db/catfish/internal/geo"
)

// Replication message types, appended after the fetch group so existing
// on-wire values never change.
const (
	// MsgReplicate carries a batch of sequenced op-log records from a
	// shard primary to one of its backups.
	MsgReplicate MsgType = iota + MsgReadMailbox + 1
	// MsgReplAck answers a MsgReplicate with the backup's replication
	// epoch and highest contiguously-applied sequence number.
	MsgReplAck
	// MsgPromote rides the Request layout (Ref = new epoch): a router
	// promotes a backup to primary, fencing lower epochs.
	MsgPromote
)

// ReplRecord is one sequenced index mutation in the primary's op-log.
type ReplRecord struct {
	Epoch uint64
	Seq   uint64
	Op    MsgType // MsgInsert or MsgDelete
	Rect  geo.Rect
	Ref   uint64
}

// ReplRecordSize is the encoded size of one op-log record.
const ReplRecordSize = 8 + 8 + 1 + 32 + 8

const replicateHeader = 1 + 8 + 4

// Replicate is a batch of op-log records streamed to a backup.
type Replicate struct {
	ID      uint64 // request tag
	Records []ReplRecord
}

// EncodedSize returns the encoded size of the replicate message.
func (r Replicate) EncodedSize() int { return replicateHeader + len(r.Records)*ReplRecordSize }

// Encode appends the replicate encoding to buf and returns it.
func (r Replicate) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, r.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgReplicate)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint32(b[9:], uint32(len(r.Records)))
	p := replicateHeader
	for _, rec := range r.Records {
		binary.LittleEndian.PutUint64(b[p:], rec.Epoch)
		binary.LittleEndian.PutUint64(b[p+8:], rec.Seq)
		b[p+16] = byte(rec.Op)
		putRect(b[p+17:], rec.Rect)
		binary.LittleEndian.PutUint64(b[p+49:], rec.Ref)
		p += ReplRecordSize
	}
	return buf
}

// MaxReplRecords bounds a decoded record batch, rejecting corrupt length
// words before they drive a huge allocation.
const MaxReplRecords = 1 << 16

// DecodeReplicate parses a replicate message.
func DecodeReplicate(b []byte) (Replicate, error) {
	if len(b) < replicateHeader || MsgType(b[0]) != MsgReplicate {
		return Replicate{}, fmt.Errorf("%w: replicate", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[9:]))
	if n > MaxReplRecords || len(b) < replicateHeader+n*ReplRecordSize {
		return Replicate{}, fmt.Errorf("%w: replicate truncated", ErrCorrupt)
	}
	r := Replicate{ID: binary.LittleEndian.Uint64(b[1:])}
	p := replicateHeader
	for i := 0; i < n; i++ {
		r.Records = append(r.Records, ReplRecord{
			Epoch: binary.LittleEndian.Uint64(b[p:]),
			Seq:   binary.LittleEndian.Uint64(b[p+8:]),
			Op:    MsgType(b[p+16]),
			Rect:  getRect(b[p+17:]),
			Ref:   binary.LittleEndian.Uint64(b[p+49:]),
		})
		p += ReplRecordSize
	}
	return r, nil
}

// ReplAck acknowledges a record batch. Status is StatusOK when every record
// applied, StatusFenced when the sender's epoch is stale (Epoch carries the
// backup's higher epoch), or StatusError on a sequence gap — in which case
// AppliedSeq tells the primary where to resume.
type ReplAck struct {
	ID         uint64
	Status     uint8
	Epoch      uint64
	AppliedSeq uint64
}

// ReplAckSize is the encoded size of a ReplAck.
const ReplAckSize = 1 + 8 + 1 + 8 + 8

// Encode appends the ack encoding to buf and returns it.
func (a ReplAck) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ReplAckSize)...)
	b := buf[off:]
	b[0] = byte(MsgReplAck)
	binary.LittleEndian.PutUint64(b[1:], a.ID)
	b[9] = a.Status
	binary.LittleEndian.PutUint64(b[10:], a.Epoch)
	binary.LittleEndian.PutUint64(b[18:], a.AppliedSeq)
	return buf
}

// DecodeReplAck parses a replication ack.
func DecodeReplAck(b []byte) (ReplAck, error) {
	if len(b) < ReplAckSize || MsgType(b[0]) != MsgReplAck {
		return ReplAck{}, fmt.Errorf("%w: repl-ack", ErrCorrupt)
	}
	return ReplAck{
		ID:         binary.LittleEndian.Uint64(b[1:]),
		Status:     b[9],
		Epoch:      binary.LittleEndian.Uint64(b[10:]),
		AppliedSeq: binary.LittleEndian.Uint64(b[18:]),
	}, nil
}
