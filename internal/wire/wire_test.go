package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestRequestRoundTrip(t *testing.T) {
	tests := []Request{
		{Type: MsgSearch, ID: 1, Rect: geo.NewRect(0.1, 0.2, 0.3, 0.4)},
		{Type: MsgInsert, ID: 1 << 60, Rect: geo.NewRect(0, 0, 1, 1), Ref: 77},
		{Type: MsgDelete, ID: 0, Rect: geo.PointRect(0.5, 0.5), Ref: 1},
	}
	for _, want := range tests {
		buf := want.Encode(nil)
		if len(buf) != RequestSize {
			t.Errorf("encoded %d bytes, want %d", len(buf), RequestSize)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestRequestDeadlineRoundTrip(t *testing.T) {
	want := Request{Type: MsgSearch, ID: 7, Rect: geo.NewRect(0.1, 0.2, 0.3, 0.4), DeadlineUS: 1500}
	buf := want.Encode(nil)
	if len(buf) != RequestSizeDeadline {
		t.Errorf("encoded %d bytes, want %d", len(buf), RequestSizeDeadline)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	// A legacy decoder truncating at RequestSize must still see the same
	// request (sans deadline), and a deadline-free request must stay
	// byte-identical to the legacy layout.
	legacy, err := DecodeRequest(buf[:RequestSize])
	if err != nil {
		t.Fatal(err)
	}
	want.DeadlineUS = 0
	if legacy != want {
		t.Errorf("legacy decode: got %+v, want %+v", legacy, want)
	}
	if n := len(want.Encode(nil)); n != RequestSize {
		t.Errorf("deadline-free request encodes %d bytes, want %d", n, RequestSize)
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil err = %v", err)
	}
	if _, err := DecodeRequest(make([]byte, 10)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short err = %v", err)
	}
	buf := Request{Type: MsgSearch, ID: 1}.Encode(nil)
	buf[0] = 99
	if _, err := DecodeRequest(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad type err = %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, count := range []int{0, 1, 50} {
		items := make([]Item, count)
		for i := range items {
			items[i] = Item{Rect: geo.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()), Ref: rng.Uint64()}
		}
		want := Response{ID: 42, Final: count%2 == 0, Status: StatusOK, Items: items}
		buf := want.Encode(nil)
		if len(buf) != want.EncodedSize() {
			t.Errorf("size %d != %d", len(buf), want.EncodedSize())
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Final != want.Final || got.Status != want.Status ||
			len(got.Items) != count {
			t.Fatalf("got %+v", got)
		}
		for i := range items {
			if got.Items[i] != items[i] {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
}

func TestResponseDecodeErrors(t *testing.T) {
	if _, err := DecodeResponse(make([]byte, 3)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short err = %v", err)
	}
	buf := Response{ID: 1, Items: []Item{{Ref: 1}}}.Encode(nil)
	if _, err := DecodeResponse(buf[:len(buf)-8]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated err = %v", err)
	}
	buf[0] = byte(MsgSearch)
	if _, err := DecodeResponse(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong type err = %v", err)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, util := range []float64{0, 0.5, 0.987, 1} {
		buf := Heartbeat{Util: util}.Encode(nil)
		got, err := DecodeHeartbeat(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Util != util {
			t.Errorf("util = %v, want %v", got.Util, util)
		}
	}
	if _, err := DecodeHeartbeat(nil); !errors.Is(err, ErrCorrupt) {
		t.Error("nil heartbeat should fail")
	}
}

func TestPeekType(t *testing.T) {
	req := Request{Type: MsgInsert, ID: 9}.Encode(nil)
	typ, err := PeekType(req)
	if err != nil || typ != MsgInsert {
		t.Errorf("PeekType = %v, %v", typ, err)
	}
	hb := Heartbeat{Util: 0.5}.Encode(nil)
	typ, err = PeekType(hb)
	if err != nil || typ != MsgHeartbeat {
		t.Errorf("PeekType(hb) = %v, %v", typ, err)
	}
	if _, err := PeekType(nil); !errors.Is(err, ErrCorrupt) {
		t.Error("empty PeekType should fail")
	}
	if _, err := PeekType([]byte{200}); !errors.Is(err, ErrCorrupt) {
		t.Error("unknown PeekType should fail")
	}
}

// Property: request encode/decode is the identity.
func TestPropRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []MsgType{MsgSearch, MsgInsert, MsgDelete}
	f := func() bool {
		want := Request{
			Type: types[rng.Intn(3)],
			ID:   rng.Uint64(),
			Rect: geo.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()),
			Ref:  rng.Uint64(),
		}
		got, err := DecodeRequest(want.Encode(nil))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Encoding into a shared buffer must support appending multiple messages.
func TestEncodeAppends(t *testing.T) {
	buf := Request{Type: MsgSearch, ID: 1}.Encode(nil)
	buf = Heartbeat{Util: 0.25}.Encode(buf)
	if len(buf) != RequestSize+HeartbeatSize {
		t.Fatalf("len = %d", len(buf))
	}
	if _, err := DecodeRequest(buf[:RequestSize]); err != nil {
		t.Error(err)
	}
	if hb, err := DecodeHeartbeat(buf[RequestSize:]); err != nil || hb.Util != 0.25 {
		t.Errorf("hb = %+v, %v", hb, err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	want := Hello{
		RootChunk:   3,
		ChunkSize:   4096,
		MaxEntries:  64,
		NumChunks:   1 << 20,
		HeartbeatMs: 10,
		ServerEpoch: 0xDEADBEEF12345678,
	}
	buf := want.Encode(nil)
	if len(buf) != HelloSize {
		t.Errorf("size = %d, want %d", len(buf), HelloSize)
	}
	got, err := DecodeHello(buf)
	if err != nil || got != want {
		t.Errorf("got %+v, %v", got, err)
	}
	if _, err := DecodeHello(buf[:4]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short err = %v", err)
	}
	buf[0] = byte(MsgSearch)
	if _, err := DecodeHello(buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("type err = %v", err)
	}
}

func TestReadChunkRoundTrip(t *testing.T) {
	want := ReadChunk{ID: 777, Chunk: 42}
	buf := want.Encode(nil)
	if len(buf) != ReadChunkSize {
		t.Errorf("size = %d", len(buf))
	}
	got, err := DecodeReadChunk(buf)
	if err != nil || got != want {
		t.Errorf("got %+v, %v", got, err)
	}
	if _, err := DecodeReadChunk(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil err = %v", err)
	}
}

func TestChunkDataRoundTrip(t *testing.T) {
	raw := []byte{1, 2, 3, 4, 5}
	want := ChunkData{ID: 9, Status: StatusOK, Raw: raw}
	buf := want.Encode(nil)
	if len(buf) != want.EncodedSize() {
		t.Errorf("size = %d, want %d", len(buf), want.EncodedSize())
	}
	got, err := DecodeChunkData(buf)
	if err != nil || got.ID != 9 || got.Status != StatusOK {
		t.Fatalf("got %+v, %v", got, err)
	}
	for i := range raw {
		if got.Raw[i] != raw[i] {
			t.Fatal("raw mismatch")
		}
	}
	// Raw aliases the input frame (documented).
	buf[len(buf)-1] = 99
	if got.Raw[4] != 99 {
		t.Error("Raw should alias the frame")
	}
	if _, err := DecodeChunkData(buf[:8]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short err = %v", err)
	}
	trunc := want.Encode(nil)
	if _, err := DecodeChunkData(trunc[:len(trunc)-2]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated err = %v", err)
	}
}

func TestChunkDataEmpty(t *testing.T) {
	buf := ChunkData{ID: 1, Status: StatusError}.Encode(nil)
	got, err := DecodeChunkData(buf)
	if err != nil || len(got.Raw) != 0 || got.Status != StatusError {
		t.Errorf("got %+v, %v", got, err)
	}
}
