//go:build !race

// Race instrumentation inserts allocations of its own, so the hard
// zero-allocation assertions only run in non-race builds; the benchmarks in
// bench_test.go report the same numbers under `go test -bench . -benchmem`.
package wire

import "testing"

func TestFastMessageHotPathZeroAlloc(t *testing.T) {
	f := newFastMessageRound()
	if _, err := f.run(16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := f.run(16); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fast-messaging round allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDecodeResponseIntoZeroAlloc(t *testing.T) {
	items := make([]Item, 8)
	buf := Response{ID: 9, Status: StatusOK, Final: true, Items: items}.Encode(nil)
	var resp Response
	if err := DecodeResponseInto(buf, &resp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeResponseInto(buf, &resp); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeResponseInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestBufPoolRoundTripZeroAlloc(t *testing.T) {
	// A Get/Put cycle on a warmed pool must not allocate (modulo GC clearing
	// the pool, which AllocsPerRun's single-goroutine run does not trigger).
	b := GetBuf()
	PutBuf(b)
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuf()
		*b = append((*b)[:0], 1, 2, 3)
		PutBuf(b)
	})
	if allocs != 0 {
		t.Errorf("pooled buffer round trip allocates %.1f objects/op, want 0", allocs)
	}
}
