package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestReadVersionsRoundTrip(t *testing.T) {
	buf := ReadVersions{ID: 77, Chunk: 1234}.Encode(nil)
	typ, err := PeekType(buf)
	if err != nil || typ != MsgReadVersions {
		t.Fatalf("PeekType = %v, %v", typ, err)
	}
	got, err := DecodeReadVersions(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 77 || got.Chunk != 1234 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeReadVersions(buf[:4]); !errors.Is(err, ErrCorrupt) {
		t.Error("short read-versions should fail")
	}
	if _, err := DecodeReadVersions(ReadChunk{}.Encode(nil)); !errors.Is(err, ErrCorrupt) {
		t.Error("wrong type should fail")
	}
}

func TestVersionDataRoundTrip(t *testing.T) {
	versions := make([]byte, 512)
	for i := range versions {
		versions[i] = byte(i)
	}
	buf := VersionData{ID: 9, Status: StatusOK, Versions: versions}.Encode(nil)
	typ, err := PeekType(buf)
	if err != nil || typ != MsgVersionData {
		t.Fatalf("PeekType = %v, %v", typ, err)
	}
	got, err := DecodeVersionData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Status != StatusOK || !bytes.Equal(got.Versions, versions) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Empty payload (error replies) and truncation.
	empty := VersionData{ID: 1, Status: StatusError}.Encode(nil)
	if got, err := DecodeVersionData(empty); err != nil || len(got.Versions) != 0 {
		t.Errorf("empty version-data = %+v, %v", got, err)
	}
	if _, err := DecodeVersionData(buf[:len(buf)-1]); !errors.Is(err, ErrCorrupt) {
		t.Error("truncated version-data should fail")
	}
}

func TestHeartbeatCarriesRootVersion(t *testing.T) {
	buf := Heartbeat{Util: 0.25, RootVer: 4242}.Encode(nil)
	got, err := DecodeHeartbeat(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Util != 0.25 || got.RootVer != 4242 {
		t.Errorf("round trip = %+v", got)
	}
}
