// Batch container: one physical message carrying many logical messages.
//
// Fast-messaging batching (RDMAbox-style request merging) coalesces up to
// B pending requests into a single ring write, so the batch pays one RDMA
// Write, one doorbell, and one immediate-data completion event instead of
// B of each. The container is transport-neutral: the same layout travels
// in a ring-buffer frame and in an rpcnet TCP frame, and the sub-messages
// are ordinary encoded wire messages (Request, Response, KVRequest, ...),
// so CONT/END response segmentation nests unchanged inside a batch.
//
// Layout (little-endian):
//
//	[MsgBatch u8][count u16][ [size u32][sub-message] ... ]
//
// BatchEncoder builds the container append-only with no allocation beyond
// the caller's (reusable) buffer; BatchIter walks it without copying.
package wire

import (
	"encoding/binary"
	"fmt"
)

// MsgBatch frames a batch container holding count length-prefixed
// sub-messages.
const MsgBatch MsgType = MsgVersionData + 1

const (
	// batchHeader is the container header: type byte + count.
	batchHeader = 1 + 2
	// batchSubHeader is the per-sub-message length prefix.
	batchSubHeader = 4
	// MaxBatch is the largest sub-message count a container can carry.
	MaxBatch = 1<<16 - 1
)

// BatchOverhead returns the container bytes added around n sub-messages,
// letting senders size flush thresholds against ring capacity.
func BatchOverhead(n int) int { return batchHeader + n*batchSubHeader }

// BatchEncoder builds a batch container into a reusable buffer. Usage:
//
//	enc.Reset(buf[:0])
//	for each message { enc.Begin(); enc.Buf = msg.Encode(enc.Buf); enc.End() }
//	payload := enc.Bytes()
//
// The zero value is invalid until Reset. Encoding allocates only when the
// underlying buffer must grow, so a warmed buffer encodes batches with
// zero allocations.
type BatchEncoder struct {
	// Buf is the buffer under construction; sub-message encoders append to
	// it between Begin and End.
	Buf   []byte
	start int // offset of the container header in Buf
	mark  int // offset of the open sub-message's length prefix
	count int
	open  bool
}

// Reset starts a new container appended to buf (normally buf[:0] of a
// reused backing array).
func (e *BatchEncoder) Reset(buf []byte) {
	e.start = len(buf)
	e.Buf = append(buf, byte(MsgBatch), 0, 0)
	e.mark = 0
	e.count = 0
	e.open = false
}

// Begin opens the next sub-message: everything appended to e.Buf before
// the matching End becomes its body.
func (e *BatchEncoder) Begin() {
	if e.open {
		panic("wire: BatchEncoder.Begin without End")
	}
	e.mark = len(e.Buf)
	e.Buf = append(e.Buf, 0, 0, 0, 0)
	e.open = true
}

// End closes the sub-message opened by Begin, patching its length prefix.
func (e *BatchEncoder) End() {
	if !e.open {
		panic("wire: BatchEncoder.End without Begin")
	}
	binary.LittleEndian.PutUint32(e.Buf[e.mark:], uint32(len(e.Buf)-e.mark-batchSubHeader))
	e.count++
	e.open = false
}

// Count returns the number of committed sub-messages.
func (e *BatchEncoder) Count() int { return e.count }

// Len returns the container size so far, including the open sub-message.
func (e *BatchEncoder) Len() int { return len(e.Buf) - e.start }

// Bytes patches the container count and returns the encoded container.
func (e *BatchEncoder) Bytes() []byte {
	if e.open {
		panic("wire: BatchEncoder.Bytes with open sub-message")
	}
	if e.count > MaxBatch {
		panic("wire: batch sub-message count overflow")
	}
	binary.LittleEndian.PutUint16(e.Buf[e.start+1:], uint16(e.count))
	return e.Buf[e.start:]
}

// BatchIter walks a batch container without copying. It is a value type:
//
//	it, err := DecodeBatch(payload)
//	for { msg, ok := it.Next(); if !ok { break }; ... }
//	if it.Err() != nil { ... }
type BatchIter struct {
	b         []byte
	remaining int
	err       error
}

// DecodeBatch validates the container header of b and returns an iterator
// over its sub-messages. Sub-message bodies alias b.
func DecodeBatch(b []byte) (BatchIter, error) {
	if len(b) < batchHeader || MsgType(b[0]) != MsgBatch {
		return BatchIter{}, fmt.Errorf("%w: batch header", ErrCorrupt)
	}
	return BatchIter{
		b:         b[batchHeader:],
		remaining: int(binary.LittleEndian.Uint16(b[1:])),
	}, nil
}

// Len returns the number of sub-messages not yet returned by Next.
func (it *BatchIter) Len() int { return it.remaining }

// Next returns the next sub-message body, or false when the container is
// exhausted or corrupt (check Err to distinguish).
func (it *BatchIter) Next() ([]byte, bool) {
	if it.remaining == 0 || it.err != nil {
		return nil, false
	}
	if len(it.b) < batchSubHeader {
		it.err = fmt.Errorf("%w: batch truncated with %d sub-messages left", ErrCorrupt, it.remaining)
		return nil, false
	}
	sz := int(binary.LittleEndian.Uint32(it.b))
	if sz < 0 || len(it.b)-batchSubHeader < sz {
		it.err = fmt.Errorf("%w: batch sub-message size %d of %d bytes", ErrCorrupt, sz, len(it.b)-batchSubHeader)
		return nil, false
	}
	msg := it.b[batchSubHeader : batchSubHeader+sz]
	it.b = it.b[batchSubHeader+sz:]
	it.remaining--
	return msg, true
}

// Err reports a container corruption encountered by Next.
func (it *BatchIter) Err() error { return it.err }

// DecodeResponseInto parses a response into *r, reusing r.Items' capacity
// instead of allocating a fresh slice — the zero-copy hot path's decoder.
// The previous contents of *r are overwritten.
func DecodeResponseInto(b []byte, r *Response) error {
	if len(b) < respHeader || MsgType(b[0]) != MsgResponse {
		return fmt.Errorf("%w: response header", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[11:]))
	if len(b) < respHeader+count*ItemSize {
		return fmt.Errorf("%w: response truncated (%d items)", ErrCorrupt, count)
	}
	r.ID = binary.LittleEndian.Uint64(b[1:])
	r.Final = b[9] == 1
	r.Status = b[10]
	if cap(r.Items) < count {
		r.Items = make([]Item, count)
	} else {
		r.Items = r.Items[:count]
	}
	p := respHeader
	for i := range r.Items {
		r.Items[i] = Item{
			Rect: getRect(b[p:]),
			Ref:  binary.LittleEndian.Uint64(b[p+32:]),
		}
		p += ItemSize
	}
	return nil
}
