// Geo-serving operation types: MOVE (relocate one entry under a single
// exclusive latch) and kNN (k nearest neighbors, best-first), the two
// first-class operations of the scenario subsystem (DESIGN.md §5.13).
//
// A MOVE travels as a widened Request — the legacy 49-byte layout plus the
// 32-byte destination rectangle (and the optional trailing deadline word):
//
//	[type u8][id u64][from 32B][ref u64][to 32B][deadline u32?]
//
// A kNN rides the unmodified Request layout: Rect degenerates to the query
// point and Ref carries k, so no new encoder is needed and kNN requests
// batch, queue, and deadline-stamp exactly like searches. MsgKNNFetch is to
// MsgKNN what MsgSearchFetch is to MsgSearch: the same query, answered
// through the mailbox fetch path when the result set is large enough that
// the server's send engine would otherwise become the bottleneck.
package wire

import "github.com/catfish-db/catfish/internal/geo"

// Geo-serving message types, appended after the replication types so every
// earlier MsgType keeps its wire value.
const (
	// MsgMove relocates the entry (Rect, Ref) to (Rect2, Ref): a delete of
	// the old position and an insert of the new one under one exclusive
	// tree latch, so no concurrent search observes the object absent. A
	// MOVE whose source entry does not exist degrades to a plain insert —
	// exactly the state the equivalent delete-then-insert stream reaches.
	MsgMove MsgType = iota + MsgPromote + 1
	// MsgKNN asks for the Ref nearest entries to the point at Rect's
	// center, returned in ascending distance order.
	MsgKNN
	// MsgKNNFetch is a kNN answered via the fetch/mailbox path: the server
	// deposits the neighbor list in a mailbox slot and returns a
	// FetchDesc, falling back to an inline response when no slot is free.
	MsgKNNFetch
)

// MoveRequestSize is the encoded size of a MsgMove request without a
// deadline word; the deadline, when present, follows the destination
// rectangle.
const MoveRequestSize = RequestSize + 32

// KNNRequest builds the request encoding a k-nearest-neighbor query for
// the point (x, y).
func KNNRequest(id uint64, k int, x, y float64) Request {
	return Request{Type: MsgKNN, ID: id, Rect: geo.PointRect(x, y), Ref: uint64(k)}
}

// MoveRequest builds the request relocating entry ref from rectangle from
// to rectangle to.
func MoveRequest(id uint64, from, to geo.Rect, ref uint64) Request {
	return Request{Type: MsgMove, ID: id, Rect: from, Ref: ref, Rect2: to}
}
