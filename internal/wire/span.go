package wire

import (
	"encoding/binary"
	"fmt"
)

// Span-read message types (the rpcnet READ_SPAN op), appended after the
// shard-map types so existing on-wire values never change. A span read is
// the TCP analogue of a merged adjacent RDMA Read: one round trip fetches
// Count physically-consecutive chunks starting at Chunk, which the client
// demuxes — and validates — per chunk, exactly as it would the individual
// completions of a coalesced one-sided read.
const (
	// MsgReadSpan requests Count consecutive raw chunks in one round trip.
	MsgReadSpan MsgType = iota + MsgShardMapData + 1
	// MsgSpanData carries the concatenated raw chunk images back.
	MsgSpanData
)

// ReadSpan requests chunks [Chunk, Chunk+Count). Like ReadChunk it is
// answered from the region without taking the tree lock; each chunk is
// snapshotted independently, so a torn chunk taints only itself.
type ReadSpan struct {
	ID    uint64 // request tag
	Chunk uint32 // first chunk of the span
	Count uint32
}

// ReadSpanSize is the encoded size of a ReadSpan.
const ReadSpanSize = 1 + 8 + 4 + 4

// Encode appends the read-span encoding to buf and returns it.
func (r ReadSpan) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ReadSpanSize)...)
	b := buf[off:]
	b[0] = byte(MsgReadSpan)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint32(b[9:], r.Chunk)
	binary.LittleEndian.PutUint32(b[13:], r.Count)
	return buf
}

// DecodeReadSpan parses a read-span request.
func DecodeReadSpan(b []byte) (ReadSpan, error) {
	if len(b) < ReadSpanSize || MsgType(b[0]) != MsgReadSpan {
		return ReadSpan{}, fmt.Errorf("%w: read-span", ErrCorrupt)
	}
	return ReadSpan{
		ID:    binary.LittleEndian.Uint64(b[1:]),
		Chunk: binary.LittleEndian.Uint32(b[9:]),
		Count: binary.LittleEndian.Uint32(b[13:]),
	}, nil
}

// SpanData answers a ReadSpan with Count consecutive raw chunk images,
// concatenated in chunk order. The client slices and validates each chunk
// with region.DecodeChunk exactly as it would a single-chunk read.
type SpanData struct {
	ID     uint64
	Status uint8
	Raw    []byte // Count × chunkSize bytes
}

const spanDataHeader = 1 + 8 + 1 + 4

// EncodedSize returns the encoded size of the span-data message.
func (s SpanData) EncodedSize() int { return spanDataHeader + len(s.Raw) }

// Encode appends the span-data encoding to buf and returns it.
func (s SpanData) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, s.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgSpanData)
	binary.LittleEndian.PutUint64(b[1:], s.ID)
	b[9] = s.Status
	binary.LittleEndian.PutUint32(b[10:], uint32(len(s.Raw)))
	copy(b[spanDataHeader:], s.Raw)
	return buf
}

// DecodeSpanData parses a span-data message. The Raw slice aliases b.
func DecodeSpanData(b []byte) (SpanData, error) {
	if len(b) < spanDataHeader || MsgType(b[0]) != MsgSpanData {
		return SpanData{}, fmt.Errorf("%w: span-data", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[10:]))
	if len(b) < spanDataHeader+n {
		return SpanData{}, fmt.Errorf("%w: span-data truncated", ErrCorrupt)
	}
	return SpanData{
		ID:     binary.LittleEndian.Uint64(b[1:]),
		Status: b[9],
		Raw:    b[spanDataHeader : spanDataHeader+n],
	}, nil
}
