package wire

import (
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

// fastMessageRound is one fast-messaging exchange on the pooled zero-copy
// hot path: encode a request batch container, decode it server-side,
// encode the response batch, and fold it back client-side with
// DecodeResponseInto. All buffers are reused; steady state allocates
// nothing (asserted by TestFastMessageHotPathZeroAlloc, reported by
// BenchmarkFastMessage).
type fastMessageRound struct {
	reqBuf, respBuf []byte
	reqEnc, respEnc BatchEncoder
	resp            Response
	items           []Item
}

func newFastMessageRound() *fastMessageRound {
	f := &fastMessageRound{items: make([]Item, 4)}
	for i := range f.items {
		f.items[i] = Item{Rect: geo.NewRect(0.1, 0.1, 0.2, 0.2), Ref: uint64(i)}
	}
	return f
}

func (f *fastMessageRound) run(ops int) (results int, err error) {
	f.reqEnc.Reset(f.reqBuf[:0])
	q := geo.NewRect(0.4, 0.4, 0.6, 0.6)
	for i := 0; i < ops; i++ {
		f.reqEnc.Begin()
		f.reqEnc.Buf = Request{Type: MsgSearch, ID: uint64(i + 1), Rect: q}.Encode(f.reqEnc.Buf)
		f.reqEnc.End()
	}
	payload := f.reqEnc.Bytes()
	f.reqBuf = f.reqEnc.Buf

	it, err := DecodeBatch(payload)
	if err != nil {
		return 0, err
	}
	f.respEnc.Reset(f.respBuf[:0])
	for {
		msg, ok := it.Next()
		if !ok {
			break
		}
		req, err := DecodeRequest(msg)
		if err != nil {
			return 0, err
		}
		f.respEnc.Begin()
		f.respEnc.Buf = Response{ID: req.ID, Status: StatusOK, Final: true, Items: f.items}.Encode(f.respEnc.Buf)
		f.respEnc.End()
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	respPayload := f.respEnc.Bytes()
	f.respBuf = f.respEnc.Buf

	rit, err := DecodeBatch(respPayload)
	if err != nil {
		return 0, err
	}
	for {
		msg, ok := rit.Next()
		if !ok {
			break
		}
		if err := DecodeResponseInto(msg, &f.resp); err != nil {
			return 0, err
		}
		results += len(f.resp.Items)
	}
	return results, rit.Err()
}

func BenchmarkFastMessage(b *testing.B) {
	const ops = 16
	f := newFastMessageRound()
	if _, err := f.run(ops); err != nil { // warm buffer capacities
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		results, err := f.run(ops)
		if err != nil {
			b.Fatal(err)
		}
		if results != ops*len(f.items) {
			b.Fatalf("results = %d", results)
		}
	}
}

func BenchmarkFastMessageUnbatched(b *testing.B) {
	// The per-operation baseline: 16 independent request/response encodes
	// and allocation-free decodes, no containers. Comparing ns/op against
	// BenchmarkFastMessage shows the container overhead is marginal.
	const ops = 16
	f := newFastMessageRound()
	q := geo.NewRect(0.4, 0.4, 0.6, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := 0; i < ops; i++ {
			f.reqBuf = Request{Type: MsgSearch, ID: uint64(i + 1), Rect: q}.Encode(f.reqBuf[:0])
			req, err := DecodeRequest(f.reqBuf)
			if err != nil {
				b.Fatal(err)
			}
			f.respBuf = Response{ID: req.ID, Status: StatusOK, Final: true, Items: f.items}.Encode(f.respBuf[:0])
			if err := DecodeResponseInto(f.respBuf, &f.resp); err != nil {
				b.Fatal(err)
			}
		}
	}
}
