// Package wire defines the message formats Catfish exchanges over ring
// buffers and TCP connections: R-tree requests, segmented responses
// (the paper's CONT/END scheme for variable-sized results), and the server
// CPU-utilization heartbeats that drive the adaptive algorithm.
//
// All encodings are little-endian and fixed-layout; they are the payloads
// that ring-buffer frames (internal/ringbuf) and TCP messages carry.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/catfish-db/catfish/internal/geo"
)

// MsgType discriminates wire messages.
type MsgType uint8

// Message types.
const (
	MsgSearch MsgType = iota + 1
	MsgInsert
	MsgDelete
	MsgResponse
	MsgHeartbeat
	// MsgHello is the rpcnet connection bootstrap (root chunk, geometry).
	MsgHello
	// MsgReadChunk is the rpcnet emulation of a one-sided chunk read.
	MsgReadChunk
	// MsgChunkData carries a raw chunk image back to the reader.
	MsgChunkData
)

// Response status codes.
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusError
	// StatusUnavailable means the server is up but refusing service (it
	// has been killed or is draining); routers fail over on it.
	StatusUnavailable
	// StatusFenced means the operation carried a replication epoch below
	// the server's current one — a zombie primary's write, rejected.
	StatusFenced
	// StatusNotPrimary means a client write reached a backup that has not
	// been promoted; routers redirect to the shard's primary.
	StatusNotPrimary
	// StatusOverloaded means the server's admission controller shed the
	// request (utilization past the configured threshold, or the request's
	// deadline expired while queued). The operation was NOT executed;
	// clients surface it distinctly from transport errors and routers
	// retry against replicas with backoff.
	StatusOverloaded
)

// ErrCorrupt is returned when a message fails to decode.
var ErrCorrupt = errors.New("wire: corrupt message")

// Request is an R-tree operation request. Ref is meaningful for insert,
// delete, and move; for MsgKNN/MsgKNNFetch it carries k and Rect degenerates
// to the query point. Rect2 is the destination rectangle of a MsgMove and is
// encoded only for that type, so every other request keeps its legacy
// layout. DeadlineUS, when nonzero, is the client's remaining latency
// budget in microseconds (relative, so no clock synchronization is needed);
// an admission-controlled server sheds the request if it cannot start
// executing within that budget.
type Request struct {
	Type       MsgType
	ID         uint64
	Rect       geo.Rect
	Ref        uint64
	Rect2      geo.Rect
	DeadlineUS uint32
}

// RequestSize is the encoded size of a Request without a deadline word.
const RequestSize = 1 + 8 + 32 + 8

// RequestSizeDeadline is the encoded size of a Request carrying a deadline
// word. Encode appends the word only when DeadlineUS is nonzero, so
// deadline-free requests stay byte-identical to the legacy layout.
const RequestSizeDeadline = RequestSize + 4

// Encode appends the request encoding to buf and returns it.
func (r Request) Encode(buf []byte) []byte {
	off := len(buf)
	size := RequestSize
	if r.Type == MsgMove {
		size = MoveRequestSize
	}
	if r.DeadlineUS != 0 {
		size += 4
	}
	buf = append(buf, make([]byte, size)...)
	b := buf[off:]
	b[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	putRect(b[9:], r.Rect)
	binary.LittleEndian.PutUint64(b[41:], r.Ref)
	p := RequestSize
	if r.Type == MsgMove {
		putRect(b[49:], r.Rect2)
		p = MoveRequestSize
	}
	if r.DeadlineUS != 0 {
		binary.LittleEndian.PutUint32(b[p:], r.DeadlineUS)
	}
	return buf
}

// DecodeRequest parses a request, tolerating both the legacy layout and
// the widened layout with a trailing deadline word.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < RequestSize {
		return Request{}, fmt.Errorf("%w: request %d bytes", ErrCorrupt, len(b))
	}
	typ := MsgType(b[0])
	switch typ {
	case MsgSearch, MsgInsert, MsgDelete, MsgSearchFetch, MsgPromote, MsgMove, MsgKNN,
		MsgKNNFetch:
	default:
		return Request{}, fmt.Errorf("%w: request type %d", ErrCorrupt, typ)
	}
	r := Request{
		Type: typ,
		ID:   binary.LittleEndian.Uint64(b[1:]),
		Rect: getRect(b[9:]),
		Ref:  binary.LittleEndian.Uint64(b[41:]),
	}
	deadlineOff := RequestSize
	if typ == MsgMove {
		if len(b) < MoveRequestSize {
			return Request{}, fmt.Errorf("%w: move request %d bytes", ErrCorrupt, len(b))
		}
		r.Rect2 = getRect(b[49:])
		deadlineOff = MoveRequestSize
	}
	if len(b) >= deadlineOff+4 {
		r.DeadlineUS = binary.LittleEndian.Uint32(b[deadlineOff:])
	}
	return r, nil
}

// Item is one result rectangle.
type Item struct {
	Rect geo.Rect
	Ref  uint64
}

// ItemSize is the encoded size of one result item.
const ItemSize = 40

// Response carries (a segment of) an operation's results. The paper flags
// segments of a large response with CONT and terminates with END; Final
// plays the END role here.
type Response struct {
	ID     uint64
	Final  bool
	Status uint8
	Items  []Item
}

const respHeader = 1 + 8 + 1 + 1 + 4

// EncodedSize returns the encoded size of the response.
func (r Response) EncodedSize() int { return respHeader + len(r.Items)*ItemSize }

// Encode appends the response encoding to buf and returns it.
func (r Response) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, r.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgResponse)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	if r.Final {
		b[9] = 1
	}
	b[10] = r.Status
	binary.LittleEndian.PutUint32(b[11:], uint32(len(r.Items)))
	p := respHeader
	for _, it := range r.Items {
		putRect(b[p:], it.Rect)
		binary.LittleEndian.PutUint64(b[p+32:], it.Ref)
		p += ItemSize
	}
	return buf
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < respHeader || MsgType(b[0]) != MsgResponse {
		return Response{}, fmt.Errorf("%w: response header", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(b[11:]))
	if len(b) < respHeader+count*ItemSize {
		return Response{}, fmt.Errorf("%w: response truncated (%d items)", ErrCorrupt, count)
	}
	r := Response{
		ID:     binary.LittleEndian.Uint64(b[1:]),
		Final:  b[9] == 1,
		Status: b[10],
	}
	if count > 0 {
		r.Items = make([]Item, count)
		p := respHeader
		for i := range r.Items {
			r.Items[i] = Item{
				Rect: getRect(b[p:]),
				Ref:  binary.LittleEndian.Uint64(b[p+32:]),
			}
			p += ItemSize
		}
	}
	return r, nil
}

// Heartbeat carries the server's windowed CPU utilization (0..1) and the
// root chunk's region version, sent every heartbeat interval to all
// connected clients (paper §IV-A). The root version plays the same role
// as the second word of the simulated heartbeat mailbox: it lets clients
// invalidate cached tree nodes within one heartbeat of a root rewrite.
type Heartbeat struct {
	Util    float64
	RootVer uint64
	TXUtil  float64 // windowed send-engine (TX NIC) utilization, 0..1
	// Replication words (zero against servers that predate them): the
	// server's per-shard replication epoch and highest applied op-log
	// sequence — routers pick the most-caught-up backup during failover —
	// and the shard-map version the server currently serves, so routers
	// detect a live reshard mid-run without polling MsgShardMap.
	Epoch      uint64
	AppliedSeq uint64
	MapVersion uint64
}

// HeartbeatSize is the encoded size of a Heartbeat (with the replication
// words).
const HeartbeatSize = 1 + 8 + 8 + 8 + 8 + 8 + 8

// heartbeatSizeTX is the pre-replication layout (TX word, no replication
// words); DecodeHeartbeat still accepts it.
const heartbeatSizeTX = 1 + 8 + 8 + 8

// HeartbeatSizeLegacy is the pre-fetch layout without the TX word.
// DecodeHeartbeat still accepts it (later words read as zero) so widened
// servers interoperate with clients speaking the old frame length and
// vice versa.
const HeartbeatSizeLegacy = 1 + 8 + 8

// Encode appends the heartbeat encoding to buf and returns it.
func (h Heartbeat) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, HeartbeatSize)...)
	b := buf[off:]
	b[0] = byte(MsgHeartbeat)
	binary.LittleEndian.PutUint64(b[1:], math.Float64bits(h.Util))
	binary.LittleEndian.PutUint64(b[9:], h.RootVer)
	binary.LittleEndian.PutUint64(b[17:], math.Float64bits(h.TXUtil))
	binary.LittleEndian.PutUint64(b[25:], h.Epoch)
	binary.LittleEndian.PutUint64(b[33:], h.AppliedSeq)
	binary.LittleEndian.PutUint64(b[41:], h.MapVersion)
	return buf
}

// DecodeHeartbeat parses a heartbeat, tolerating the legacy layouts (no TX
// word; no replication words).
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	if len(b) < HeartbeatSizeLegacy || MsgType(b[0]) != MsgHeartbeat {
		return Heartbeat{}, fmt.Errorf("%w: heartbeat", ErrCorrupt)
	}
	h := Heartbeat{
		Util:    math.Float64frombits(binary.LittleEndian.Uint64(b[1:])),
		RootVer: binary.LittleEndian.Uint64(b[9:]),
	}
	if len(b) >= heartbeatSizeTX {
		h.TXUtil = math.Float64frombits(binary.LittleEndian.Uint64(b[17:]))
	}
	if len(b) >= HeartbeatSize {
		h.Epoch = binary.LittleEndian.Uint64(b[25:])
		h.AppliedSeq = binary.LittleEndian.Uint64(b[33:])
		h.MapVersion = binary.LittleEndian.Uint64(b[41:])
	}
	return h, nil
}

// PeekType returns the type of an encoded message.
func PeekType(b []byte) (MsgType, error) {
	if len(b) == 0 {
		return 0, ErrCorrupt
	}
	t := MsgType(b[0])
	if t < MsgSearch || t > MsgKNNFetch {
		return 0, fmt.Errorf("%w: type %d", ErrCorrupt, t)
	}
	return t, nil
}

// Hello is the rpcnet connection bootstrap: everything the paper's client
// learns at connection initialization (the registered region's address and
// geometry, here expressed as chunk coordinates).
type Hello struct {
	RootChunk   uint32
	ChunkSize   uint32
	MaxEntries  uint32
	NumChunks   uint32
	HeartbeatMs uint32
	ServerEpoch uint64 // lets clients detect server restarts
	ShardIndex  uint32 // this server's shard in the deployment
	ShardCount  uint32 // total shards (0 or 1 = unsharded)
	MapVersion  uint64 // shard-map version; routers verify agreement
	// Fetch mailbox geometry: the mailbox region has FetchSlots slots of
	// FetchSlotChunks chunks each (chunk size = ChunkSize). Zero slots
	// means the server does not support result fetching.
	FetchSlots      uint32
	FetchSlotChunks uint32
	// ReplicaEpoch is the server's replication epoch at connection time
	// (0 against servers that predate replication). A router cross-checks
	// it against heartbeats so a fenced zombie is recognizable from the
	// hello alone.
	ReplicaEpoch uint64
}

// HelloSize is the encoded size of a Hello (with the replica epoch).
const HelloSize = 1 + 4*5 + 8 + 4 + 4 + 8 + 4 + 4 + 8

// helloSizeFetch is the pre-replication layout (fetch geometry, no replica
// epoch); DecodeHello still accepts it.
const helloSizeFetch = 1 + 4*5 + 8 + 4 + 4 + 8 + 4 + 4

// helloSizeLegacy is the pre-fetch layout; DecodeHello still accepts it
// (fetch geometry reads as zero → fetch unsupported).
const helloSizeLegacy = 1 + 4*5 + 8 + 4 + 4 + 8

// Encode appends the hello encoding to buf and returns it.
func (h Hello) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, HelloSize)...)
	b := buf[off:]
	b[0] = byte(MsgHello)
	binary.LittleEndian.PutUint32(b[1:], h.RootChunk)
	binary.LittleEndian.PutUint32(b[5:], h.ChunkSize)
	binary.LittleEndian.PutUint32(b[9:], h.MaxEntries)
	binary.LittleEndian.PutUint32(b[13:], h.NumChunks)
	binary.LittleEndian.PutUint32(b[17:], h.HeartbeatMs)
	binary.LittleEndian.PutUint64(b[21:], h.ServerEpoch)
	binary.LittleEndian.PutUint32(b[29:], h.ShardIndex)
	binary.LittleEndian.PutUint32(b[33:], h.ShardCount)
	binary.LittleEndian.PutUint64(b[37:], h.MapVersion)
	binary.LittleEndian.PutUint32(b[45:], h.FetchSlots)
	binary.LittleEndian.PutUint32(b[49:], h.FetchSlotChunks)
	binary.LittleEndian.PutUint64(b[53:], h.ReplicaEpoch)
	return buf
}

// DecodeHello parses a hello, tolerating the legacy layout without the
// fetch geometry words.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < helloSizeLegacy || MsgType(b[0]) != MsgHello {
		return Hello{}, fmt.Errorf("%w: hello", ErrCorrupt)
	}
	h := Hello{
		RootChunk:   binary.LittleEndian.Uint32(b[1:]),
		ChunkSize:   binary.LittleEndian.Uint32(b[5:]),
		MaxEntries:  binary.LittleEndian.Uint32(b[9:]),
		NumChunks:   binary.LittleEndian.Uint32(b[13:]),
		HeartbeatMs: binary.LittleEndian.Uint32(b[17:]),
		ServerEpoch: binary.LittleEndian.Uint64(b[21:]),
		ShardIndex:  binary.LittleEndian.Uint32(b[29:]),
		ShardCount:  binary.LittleEndian.Uint32(b[33:]),
		MapVersion:  binary.LittleEndian.Uint64(b[37:]),
	}
	if len(b) >= helloSizeFetch {
		h.FetchSlots = binary.LittleEndian.Uint32(b[45:])
		h.FetchSlotChunks = binary.LittleEndian.Uint32(b[49:])
	}
	if len(b) >= HelloSize {
		h.ReplicaEpoch = binary.LittleEndian.Uint64(b[53:])
	}
	return h, nil
}

// ReadChunk requests a raw chunk image (the rpcnet stand-in for a one-sided
// RDMA Read: the server answers from the region without taking the tree
// lock).
type ReadChunk struct {
	ID    uint64 // request tag
	Chunk uint32
}

// ReadChunkSize is the encoded size of a ReadChunk.
const ReadChunkSize = 1 + 8 + 4

// Encode appends the read-chunk encoding to buf and returns it.
func (r ReadChunk) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ReadChunkSize)...)
	b := buf[off:]
	b[0] = byte(MsgReadChunk)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint32(b[9:], r.Chunk)
	return buf
}

// DecodeReadChunk parses a read-chunk request.
func DecodeReadChunk(b []byte) (ReadChunk, error) {
	if len(b) < ReadChunkSize || MsgType(b[0]) != MsgReadChunk {
		return ReadChunk{}, fmt.Errorf("%w: read-chunk", ErrCorrupt)
	}
	return ReadChunk{
		ID:    binary.LittleEndian.Uint64(b[1:]),
		Chunk: binary.LittleEndian.Uint32(b[9:]),
	}, nil
}

// ChunkData answers a ReadChunk with the raw chunk bytes (versions
// included; the client validates consistency exactly as over RDMA).
type ChunkData struct {
	ID     uint64
	Status uint8
	Raw    []byte
}

const chunkDataHeader = 1 + 8 + 1 + 4

// EncodedSize returns the encoded size of the chunk data message.
func (c ChunkData) EncodedSize() int { return chunkDataHeader + len(c.Raw) }

// Encode appends the chunk-data encoding to buf and returns it.
func (c ChunkData) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, c.EncodedSize())...)
	b := buf[off:]
	b[0] = byte(MsgChunkData)
	binary.LittleEndian.PutUint64(b[1:], c.ID)
	b[9] = c.Status
	binary.LittleEndian.PutUint32(b[10:], uint32(len(c.Raw)))
	copy(b[chunkDataHeader:], c.Raw)
	return buf
}

// DecodeChunkData parses a chunk-data message. The Raw slice aliases b.
func DecodeChunkData(b []byte) (ChunkData, error) {
	if len(b) < chunkDataHeader || MsgType(b[0]) != MsgChunkData {
		return ChunkData{}, fmt.Errorf("%w: chunk-data", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b[10:]))
	if len(b) < chunkDataHeader+n {
		return ChunkData{}, fmt.Errorf("%w: chunk-data truncated", ErrCorrupt)
	}
	return ChunkData{
		ID:     binary.LittleEndian.Uint64(b[1:]),
		Status: b[9],
		Raw:    b[chunkDataHeader : chunkDataHeader+n],
	}, nil
}

func putRect(b []byte, r geo.Rect) {
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.MaxY))
}

func getRect(b []byte) geo.Rect {
	return geo.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}
}
