package wire

import (
	"encoding/binary"
	"fmt"
)

// Remote-result-fetch message types (the RFP-style third access method),
// appended after the span-read types so existing on-wire values never
// change. A fetch search is executed by the server like a fast-messaging
// search, but instead of streaming the result rectangles back in response
// frames, the server writes them into a mailbox slot of its registered
// mailbox region and answers with a tiny (slot, length, version)
// descriptor; the client then pulls the slot with one-sided reads (merged
// adjacent RDMA Reads on the simulated fabric, MsgReadMailbox spans over
// TCP) and releases the slot with a fetch ack.
const (
	// MsgSearchFetch is a search request asking for mailbox delivery. Its
	// body is a plain Request; the server may still answer inline with
	// MsgResponse segments when the result is small or no slot is free.
	MsgSearchFetch MsgType = iota + MsgSpanData + 1
	// MsgFetchDesc is the descriptor reply: where the result landed.
	MsgFetchDesc
	// MsgFetchAck releases a mailbox slot after the client has pulled it.
	// Fire-and-forget: the server sends no reply.
	MsgFetchAck
	// MsgReadMailbox requests Count consecutive raw mailbox-region chunks
	// (the TCP emulation of the one-sided result pull); answered with a
	// MsgSpanData frame exactly like a tree-region span read.
	MsgReadMailbox
)

// FetchDesc tells the client where a fetch search's result landed: slot
// (the mailbox slot index; the slot's first chunk is Slot × slot-chunks in
// the mailbox region), length in payload bytes (Count × ItemSize), and the
// slot's write sequence number, which the client checks against the slot
// header after pulling to detect a stale or torn observation.
type FetchDesc struct {
	ID     uint64
	Status uint8
	Slot   uint32
	Bytes  uint32
	Count  uint32
	Seq    uint64
}

// FetchDescSize is the encoded size of a FetchDesc.
const FetchDescSize = 1 + 8 + 1 + 4 + 4 + 4 + 8

// Encode appends the descriptor encoding to buf and returns it.
func (d FetchDesc) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, FetchDescSize)...)
	b := buf[off:]
	b[0] = byte(MsgFetchDesc)
	binary.LittleEndian.PutUint64(b[1:], d.ID)
	b[9] = d.Status
	binary.LittleEndian.PutUint32(b[10:], d.Slot)
	binary.LittleEndian.PutUint32(b[14:], d.Bytes)
	binary.LittleEndian.PutUint32(b[18:], d.Count)
	binary.LittleEndian.PutUint64(b[22:], d.Seq)
	return buf
}

// DecodeFetchDesc parses a fetch descriptor.
func DecodeFetchDesc(b []byte) (FetchDesc, error) {
	if len(b) < FetchDescSize || MsgType(b[0]) != MsgFetchDesc {
		return FetchDesc{}, fmt.Errorf("%w: fetch-desc", ErrCorrupt)
	}
	return FetchDesc{
		ID:     binary.LittleEndian.Uint64(b[1:]),
		Status: b[9],
		Slot:   binary.LittleEndian.Uint32(b[10:]),
		Bytes:  binary.LittleEndian.Uint32(b[14:]),
		Count:  binary.LittleEndian.Uint32(b[18:]),
		Seq:    binary.LittleEndian.Uint64(b[22:]),
	}, nil
}

// FetchAck releases mailbox slot Slot. Seq echoes the descriptor so the
// server can ignore a stale ack after a slot was force-reclaimed.
type FetchAck struct {
	Slot uint32
	Seq  uint64
}

// FetchAckSize is the encoded size of a FetchAck.
const FetchAckSize = 1 + 4 + 8

// Encode appends the ack encoding to buf and returns it.
func (a FetchAck) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, FetchAckSize)...)
	b := buf[off:]
	b[0] = byte(MsgFetchAck)
	binary.LittleEndian.PutUint32(b[1:], a.Slot)
	binary.LittleEndian.PutUint64(b[5:], a.Seq)
	return buf
}

// DecodeFetchAck parses a fetch ack.
func DecodeFetchAck(b []byte) (FetchAck, error) {
	if len(b) < FetchAckSize || MsgType(b[0]) != MsgFetchAck {
		return FetchAck{}, fmt.Errorf("%w: fetch-ack", ErrCorrupt)
	}
	return FetchAck{
		Slot: binary.LittleEndian.Uint32(b[1:]),
		Seq:  binary.LittleEndian.Uint64(b[5:]),
	}, nil
}

// ReadMailbox requests mailbox-region chunks [Chunk, Chunk+Count) in one
// round trip — the TCP stand-in for the one-sided result pull. Answered
// with a MsgSpanData frame carrying the concatenated raw chunk images.
type ReadMailbox struct {
	ID    uint64
	Chunk uint32
	Count uint32
}

// ReadMailboxSize is the encoded size of a ReadMailbox.
const ReadMailboxSize = 1 + 8 + 4 + 4

// Encode appends the read-mailbox encoding to buf and returns it.
func (r ReadMailbox) Encode(buf []byte) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, ReadMailboxSize)...)
	b := buf[off:]
	b[0] = byte(MsgReadMailbox)
	binary.LittleEndian.PutUint64(b[1:], r.ID)
	binary.LittleEndian.PutUint32(b[9:], r.Chunk)
	binary.LittleEndian.PutUint32(b[13:], r.Count)
	return buf
}

// DecodeReadMailbox parses a read-mailbox request.
func DecodeReadMailbox(b []byte) (ReadMailbox, error) {
	if len(b) < ReadMailboxSize || MsgType(b[0]) != MsgReadMailbox {
		return ReadMailbox{}, fmt.Errorf("%w: read-mailbox", ErrCorrupt)
	}
	return ReadMailbox{
		ID:    binary.LittleEndian.Uint64(b[1:]),
		Chunk: binary.LittleEndian.Uint32(b[9:]),
		Count: binary.LittleEndian.Uint32(b[13:]),
	}, nil
}

// EncodeItems appends the packed encoding of items (ItemSize bytes each,
// no header — the descriptor carries the count) and returns the buffer.
// This is the mailbox slot payload format.
func EncodeItems(buf []byte, items []Item) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, len(items)*ItemSize)...)
	b := buf[off:]
	for i, it := range items {
		putRect(b[i*ItemSize:], it.Rect)
		binary.LittleEndian.PutUint64(b[i*ItemSize+32:], it.Ref)
	}
	return buf
}

// DecodeItems parses count packed items from b (the mailbox payload
// format written by EncodeItems).
func DecodeItems(b []byte, count int) ([]Item, error) {
	if count < 0 || len(b) < count*ItemSize {
		return nil, fmt.Errorf("%w: packed items truncated (%d of %d)", ErrCorrupt, len(b)/ItemSize, count)
	}
	items := make([]Item, count)
	for i := range items {
		p := b[i*ItemSize:]
		items[i] = Item{Rect: getRect(p), Ref: binary.LittleEndian.Uint64(p[32:])}
	}
	return items, nil
}
