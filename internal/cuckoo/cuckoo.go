// Package cuckoo implements a two-choice cuckoo hash table stored
// bucket-per-chunk in the version-protected memory region, the third
// link-based structure of the paper's §VI framework claim (after the
// R-tree and B+-tree): a server executes writes, and remote readers look
// keys up with one or two one-sided chunk reads — the access pattern of
// the RDMA key-value stores the paper builds on (Pilaf, FaRM).
//
// Each bucket occupies one region chunk, so a remote lookup is one chunk
// read per candidate bucket, validated by cacheline versions. Displacement
// ("kicking") during inserts writes the destination bucket before erasing
// the source, so a concurrent reader always finds a live key in at least
// one of its two buckets.
package cuckoo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/catfish-db/catfish/internal/region"
)

// Errors.
var (
	ErrNotFound = errors.New("cuckoo: key not found")
	ErrExists   = errors.New("cuckoo: key already exists")
	ErrFull     = errors.New("cuckoo: table full (kick budget exhausted)")
	ErrCorrupt  = errors.New("cuckoo: corrupt bucket")
)

// Slot layout: key uint64, val uint64; key 0 marks a free slot, so keys
// are offset by one on disk (the stored key is key+1).
const slotSize = 16

// maxKicks bounds displacement chains before the table reports full.
const maxKicks = 256

// Config tunes a Table.
type Config struct {
	// SlotsPerBucket caps slots per bucket (0 selects the chunk capacity).
	SlotsPerBucket int
	// Seed permutes the two hash functions.
	Seed uint64
}

// Table is a cuckoo hash table over a region. One writer at a time; remote
// readers go through Reader.
type Table struct {
	reg     *region.Region
	buckets int
	slots   int
	seed    uint64
	size    int

	chunkIDs []int // bucket -> chunk
	scratch  []byte
	raw      []byte
}

// New builds a table using every chunk of reg as one bucket. A region with
// small chunks (e.g. 256 B = 14 slots) keeps remote reads cheap.
func New(reg *region.Region, cfg Config) (*Table, error) {
	capacity := reg.PayloadSize() / slotSize
	slots := cfg.SlotsPerBucket
	if slots == 0 {
		slots = capacity
	}
	if slots < 1 || slots > capacity {
		return nil, fmt.Errorf("cuckoo: SlotsPerBucket %d out of [1, %d]", slots, capacity)
	}
	if reg.NumChunks() < 2 {
		return nil, errors.New("cuckoo: need at least 2 buckets")
	}
	t := &Table{
		reg:     reg,
		buckets: reg.NumChunks(),
		slots:   slots,
		seed:    cfg.Seed,
		scratch: make([]byte, 0, reg.PayloadSize()),
		raw:     make([]byte, reg.ChunkSize()),
	}
	t.chunkIDs = make([]int, t.buckets)
	for i := range t.chunkIDs {
		id, err := reg.Alloc()
		if err != nil {
			return nil, fmt.Errorf("cuckoo: alloc bucket %d: %w", i, err)
		}
		t.chunkIDs[i] = id
		if err := t.writeBucket(id, make([]uint64, slots*2)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// Buckets returns the bucket count.
func (t *Table) Buckets() int { return t.buckets }

// SlotsPerBucket returns the per-bucket slot count.
func (t *Table) SlotsPerBucket() int { return t.slots }

// Region returns the backing region.
func (t *Table) Region() *region.Region { return t.reg }

// BucketChunk returns the chunk ID of bucket b (clients learn the mapping
// at connection setup; with a fresh region it is the identity).
func (t *Table) BucketChunk(b int) int { return t.chunkIDs[b] }

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash1 and Hash2 return a key's two candidate buckets; exported so remote
// readers compute the same addresses.
func Hash1(key, seed uint64, buckets int) int {
	return int(mix64(key^seed) % uint64(buckets))
}

// Hash2 is the second hash; when it collides with Hash1 the next bucket is
// used so the two candidates always differ.
func Hash2(key, seed uint64, buckets int) int {
	h := int(mix64(key^(seed+0x9e3779b97f4a7c15)) % uint64(buckets))
	if h == Hash1(key, seed, buckets) {
		h = (h + 1) % buckets
	}
	return h
}

// bucket I/O: a bucket is slots*2 uint64 words (storedKey, val). The stored
// key is key+1 so zero means empty.
func (t *Table) readBucket(chunkID int) ([]uint64, error) {
	payload, _, err := t.reg.ReadChunk(chunkID, t.raw, t.scratch)
	if err != nil {
		return nil, err
	}
	t.scratch = payload
	return decodeBucket(payload, t.slots)
}

func decodeBucket(payload []byte, slots int) ([]uint64, error) {
	if len(payload) < slots*slotSize {
		return nil, fmt.Errorf("%w: %d bytes for %d slots", ErrCorrupt, len(payload), slots)
	}
	words := make([]uint64, slots*2)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(payload[i*8:])
	}
	return words, nil
}

func (t *Table) writeBucket(chunkID int, words []uint64) error {
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	return t.reg.WriteChunkPrefix(chunkID, buf)
}

// findSlot returns the slot index of key in words, or -1.
func findSlot(words []uint64, slots int, key uint64) int {
	stored := key + 1
	for i := 0; i < slots; i++ {
		if words[i*2] == stored {
			return i
		}
	}
	return -1
}

func freeSlot(words []uint64, slots int) int {
	for i := 0; i < slots; i++ {
		if words[i*2] == 0 {
			return i
		}
	}
	return -1
}

// Get returns the value stored under key.
func (t *Table) Get(key uint64) (uint64, error) {
	for _, b := range []int{Hash1(key, t.seed, t.buckets), Hash2(key, t.seed, t.buckets)} {
		words, err := t.readBucket(t.chunkIDs[b])
		if err != nil {
			return 0, err
		}
		if i := findSlot(words, t.slots, key); i >= 0 {
			return words[i*2+1], nil
		}
	}
	return 0, ErrNotFound
}

// Put stores key -> val, displacing residents as needed. It fails with
// ErrExists for duplicate keys and ErrFull when the kick budget runs out
// (the table is effectively at capacity).
func (t *Table) Put(key, val uint64) error {
	b1 := Hash1(key, t.seed, t.buckets)
	b2 := Hash2(key, t.seed, t.buckets)
	w1, err := t.readBucket(t.chunkIDs[b1])
	if err != nil {
		return err
	}
	if findSlot(w1, t.slots, key) >= 0 {
		return ErrExists
	}
	w2, err := t.readBucket(t.chunkIDs[b2])
	if err != nil {
		return err
	}
	if findSlot(w2, t.slots, key) >= 0 {
		return ErrExists
	}
	if i := freeSlot(w1, t.slots); i >= 0 {
		w1[i*2], w1[i*2+1] = key+1, val
		if err := t.writeBucket(t.chunkIDs[b1], w1); err != nil {
			return err
		}
		t.size++
		return nil
	}
	if i := freeSlot(w2, t.slots); i >= 0 {
		w2[i*2], w2[i*2+1] = key+1, val
		if err := t.writeBucket(t.chunkIDs[b2], w2); err != nil {
			return err
		}
		t.size++
		return nil
	}
	// Both candidates full: displace a resident of b1 to its alternate
	// bucket, destination-first so readers never lose sight of a live key.
	if err := t.kick(b1, 0, key, val); err != nil {
		return err
	}
	t.size++
	return nil
}

// kick inserts (key, val) into bucket b by displacing the resident in slot
// victim, recursively moving residents destination-first.
func (t *Table) kick(b, depth int, key, val uint64) error {
	if depth >= maxKicks {
		return ErrFull
	}
	words, err := t.readBucket(t.chunkIDs[b])
	if err != nil {
		return err
	}
	if i := freeSlot(words, t.slots); i >= 0 {
		words[i*2], words[i*2+1] = key+1, val
		return t.writeBucket(t.chunkIDs[b], words)
	}
	// Choose a victim deterministically by depth for reproducibility.
	vi := depth % t.slots
	vKey := words[vi*2] - 1
	vVal := words[vi*2+1]
	alt := Hash1(vKey, t.seed, t.buckets)
	if alt == b {
		alt = Hash2(vKey, t.seed, t.buckets)
	}
	// Move the victim into its alternate bucket first...
	if err := t.kick(alt, depth+1, vKey, vVal); err != nil {
		return err
	}
	// ...then overwrite its old slot with the new key. Between the two
	// writes the victim exists in both buckets, which lookups tolerate.
	words, err = t.readBucket(t.chunkIDs[b])
	if err != nil {
		return err
	}
	vi2 := findSlot(words, t.slots, vKey)
	if vi2 < 0 {
		// The recursive kick rearranged this bucket; place in any free slot.
		vi2 = freeSlot(words, t.slots)
		if vi2 < 0 {
			return ErrFull
		}
	}
	words[vi2*2], words[vi2*2+1] = key+1, val
	return t.writeBucket(t.chunkIDs[b], words)
}

// Update overwrites an existing binding.
func (t *Table) Update(key, val uint64) error {
	for _, b := range []int{Hash1(key, t.seed, t.buckets), Hash2(key, t.seed, t.buckets)} {
		words, err := t.readBucket(t.chunkIDs[b])
		if err != nil {
			return err
		}
		if i := findSlot(words, t.slots, key); i >= 0 {
			words[i*2+1] = val
			return t.writeBucket(t.chunkIDs[b], words)
		}
	}
	return ErrNotFound
}

// Delete removes key.
func (t *Table) Delete(key uint64) error {
	for _, b := range []int{Hash1(key, t.seed, t.buckets), Hash2(key, t.seed, t.buckets)} {
		words, err := t.readBucket(t.chunkIDs[b])
		if err != nil {
			return err
		}
		if i := findSlot(words, t.slots, key); i >= 0 {
			words[i*2], words[i*2+1] = 0, 0
			if err := t.writeBucket(t.chunkIDs[b], words); err != nil {
				return err
			}
			t.size--
			return nil
		}
	}
	return ErrNotFound
}

// LoadFactor returns size / capacity.
func (t *Table) LoadFactor() float64 {
	return float64(t.size) / float64(t.buckets*t.slots)
}
