package cuckoo

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/region"
)

// newTable builds a table over a region of small (256 B) chunks: one bucket
// per chunk, 14 slots each.
func newTable(t testing.TB, buckets int, cfg Config) *Table {
	t.Helper()
	reg, err := region.New(buckets, 256)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	reg, err := region.New(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(reg, Config{}); err == nil {
		t.Error("single-bucket table should fail")
	}
	reg2, _ := region.New(4, 256)
	if _, err := New(reg2, Config{SlotsPerBucket: 1000}); err == nil {
		t.Error("oversized SlotsPerBucket should fail")
	}
	tbl := newTable(t, 8, Config{})
	if tbl.SlotsPerBucket() != 14 { // 256 B chunk = 224 B payload = 14 slots
		t.Errorf("slots = %d, want 14", tbl.SlotsPerBucket())
	}
}

func TestPutGetDelete(t *testing.T) {
	tbl := newTable(t, 64, Config{Seed: 1})
	for k := uint64(0); k < 100; k++ {
		if err := tbl.Put(k, k*k); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if tbl.Len() != 100 {
		t.Errorf("Len = %d", tbl.Len())
	}
	for k := uint64(0); k < 100; k++ {
		v, err := tbl.Get(k)
		if err != nil || v != k*k {
			t.Fatalf("get %d = %d, %v", k, v, err)
		}
	}
	if _, err := tbl.Get(1000); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get err = %v", err)
	}
	if err := tbl.Put(5, 1); !errors.Is(err, ErrExists) {
		t.Errorf("dup put err = %v", err)
	}
	if err := tbl.Update(5, 999); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Get(5); v != 999 {
		t.Errorf("after update = %d", v)
	}
	if err := tbl.Update(1000, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing err = %v", err)
	}
	if err := tbl.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if tbl.Len() != 99 {
		t.Errorf("Len after delete = %d", tbl.Len())
	}
}

func TestHashesDiffer(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		for key := uint64(0); key < 1000; key++ {
			h1 := Hash1(key, seed, 64)
			h2 := Hash2(key, seed, 64)
			if h1 == h2 {
				t.Fatalf("hashes collide for key %d seed %d", key, seed)
			}
			if h1 < 0 || h1 >= 64 || h2 < 0 || h2 >= 64 {
				t.Fatalf("hash out of range")
			}
		}
	}
}

func TestKickingReachesHighLoad(t *testing.T) {
	tbl := newTable(t, 32, Config{Seed: 2})
	capacity := tbl.Buckets() * tbl.SlotsPerBucket()
	inserted := 0
	for k := uint64(0); ; k++ {
		err := tbl.Put(k, k)
		if errors.Is(err, ErrFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
		if inserted == capacity {
			break
		}
	}
	load := tbl.LoadFactor()
	if load < 0.8 {
		t.Errorf("load factor at first failure = %.2f, want >= 0.8", load)
	}
	// Everything inserted must still be retrievable after all the kicks.
	for k := uint64(0); k < uint64(inserted); k++ {
		if v, err := tbl.Get(k); err != nil || v != k {
			t.Fatalf("get %d after kicks = %d, %v", k, v, err)
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	tbl := newTable(t, 256, Config{Seed: 3})
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(4))
	var keys []uint64
	for step := 0; step < 5000; step++ {
		op := rng.Float64()
		switch {
		case op < 0.5 || len(keys) == 0:
			k := uint64(rng.Intn(5000))
			v := rng.Uint64()
			err := tbl.Put(k, v)
			if _, exists := oracle[k]; exists {
				if !errors.Is(err, ErrExists) {
					t.Fatalf("step %d: dup err = %v", step, err)
				}
			} else if errors.Is(err, ErrFull) {
				continue // acceptable near capacity
			} else if err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			} else {
				oracle[k] = v
				keys = append(keys, k)
			}
		case op < 0.7:
			i := rng.Intn(len(keys))
			k := keys[i]
			if err := tbl.Delete(k); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			delete(oracle, k)
			keys = append(keys[:i], keys[i+1:]...)
		default:
			k := uint64(rng.Intn(5000))
			v, err := tbl.Get(k)
			want, exists := oracle[k]
			if exists && (err != nil || v != want) {
				t.Fatalf("step %d: get %d = %d, %v; want %d", step, k, v, err, want)
			}
			if !exists && !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d: get %d err = %v", step, k, err)
			}
		}
		if step%1000 == 999 && tbl.Len() != len(oracle) {
			t.Fatalf("step %d: Len %d != oracle %d", step, tbl.Len(), len(oracle))
		}
	}
}

func localFetch(reg *region.Region) FetchFunc {
	return func(id int) ([]byte, error) {
		raw := make([]byte, reg.ChunkSize())
		if err := reg.ReadChunkRaw(id, raw); err != nil {
			return nil, err
		}
		return raw, nil
	}
}

func TestReaderAgreesWithTable(t *testing.T) {
	tbl := newTable(t, 128, Config{Seed: 5})
	for k := uint64(0); k < 800; k++ {
		if err := tbl.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	r := &Reader{
		Fetch:       localFetch(tbl.Region()),
		Buckets:     tbl.Buckets(),
		Slots:       tbl.SlotsPerBucket(),
		Seed:        5,
		BucketChunk: tbl.BucketChunk,
	}
	for k := uint64(0); k < 800; k += 13 {
		v, err := r.Get(k)
		if err != nil || v != k+1 {
			t.Fatalf("remote get %d = %d, %v", k, v, err)
		}
	}
	if _, err := r.Get(99_999); !errors.Is(err, ErrNotFound) {
		t.Errorf("remote missing err = %v", err)
	}
}

func TestReaderTornRetry(t *testing.T) {
	tbl := newTable(t, 8, Config{Seed: 6})
	if err := tbl.Put(1, 42); err != nil {
		t.Fatal(err)
	}
	b := Hash1(1, 6, tbl.Buckets())
	chunk := tbl.BucketChunk(b)
	// Hold a torn window open on the key's primary bucket.
	w, err := tbl.Region().BeginWrite(chunk, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	r := &Reader{
		Fetch:       localFetch(tbl.Region()),
		Buckets:     tbl.Buckets(),
		Slots:       tbl.SlotsPerBucket(),
		Seed:        6,
		BucketChunk: tbl.BucketChunk,
		MaxRetries:  3,
	}
	if _, err := r.Get(1); !errors.Is(err, ErrGaveUp) {
		t.Errorf("torn-forever get err = %v", err)
	}
	if r.TornRetries == 0 {
		t.Error("no torn retries counted")
	}
	w.Finish()
	// The bucket was clobbered by the staged write of zeros; re-insert via
	// the table and confirm the reader recovers.
	if err := tbl.Update(1, 43); err != nil {
		// Key destroyed by the zero write: put it back.
		if err := tbl.Put(1, 43); err != nil && !errors.Is(err, ErrExists) {
			t.Fatal(err)
		}
	}
	if v, err := r.Get(1); err != nil || v != 43 {
		t.Fatalf("post-finish get = %d, %v", v, err)
	}
}

func BenchmarkPut(b *testing.B) {
	reg, err := region.New(b.N/10+64, 256)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := New(reg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Put(uint64(i), uint64(i)); err != nil && !errors.Is(err, ErrFull) {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tbl := newTable(b, 8192, Config{})
	const n = 50_000
	for i := 0; i < n; i++ {
		if err := tbl.Put(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Get(uint64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}
