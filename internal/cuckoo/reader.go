package cuckoo

import (
	"errors"

	"github.com/catfish-db/catfish/internal/region"
)

// FetchFunc returns the raw image of one region chunk (versions included) —
// an RDMA Read over the simulated fabric, a READ_CHUNK over rpcnet.
type FetchFunc func(chunkID int) ([]byte, error)

// Reader performs one-sided lookups against a remote cuckoo table: one or
// two chunk reads per Get, validated by cacheline versions. Because the
// writer moves keys destination-first, a live key is always present in at
// least one candidate bucket; a reader that misses both buckets retries a
// bounded number of times to cover in-motion keys before reporting
// ErrNotFound.
type Reader struct {
	Fetch   FetchFunc
	Buckets int
	Slots   int
	Seed    uint64
	// BucketChunk maps bucket index to chunk ID (nil = identity).
	BucketChunk func(b int) int
	// MaxRetries bounds torn-read and in-motion retries (0 selects 16).
	MaxRetries int

	// TornRetries and MotionRetries count recovery events.
	TornRetries   uint64
	MotionRetries uint64

	payload []byte
}

// ErrGaveUp reports an exhausted retry budget.
var ErrGaveUp = errors.New("cuckoo: lookup exceeded retry budget")

func (r *Reader) retries() int {
	if r.MaxRetries == 0 {
		return 16
	}
	return r.MaxRetries
}

func (r *Reader) chunkOf(b int) int {
	if r.BucketChunk != nil {
		return r.BucketChunk(b)
	}
	return b
}

// readBucket fetches and validates one bucket, retrying torn reads.
func (r *Reader) readBucket(b int) ([]uint64, error) {
	for retry := 0; retry <= r.retries(); retry++ {
		raw, err := r.Fetch(r.chunkOf(b))
		if err != nil {
			return nil, err
		}
		payload, _, derr := region.DecodeChunk(raw, r.payload)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				r.TornRetries++
				continue
			}
			return nil, derr
		}
		r.payload = payload
		return decodeBucket(payload, r.Slots)
	}
	return nil, ErrGaveUp
}

// Get returns the value stored under key in the remote table.
func (r *Reader) Get(key uint64) (uint64, error) {
	b1 := Hash1(key, r.Seed, r.Buckets)
	b2 := Hash2(key, r.Seed, r.Buckets)
	for attempt := 0; attempt <= r.retries(); attempt++ {
		w1, err := r.readBucket(b1)
		if err != nil {
			return 0, err
		}
		if i := findSlot(w1, r.Slots, key); i >= 0 {
			return w1[i*2+1], nil
		}
		w2, err := r.readBucket(b2)
		if err != nil {
			return 0, err
		}
		if i := findSlot(w2, r.Slots, key); i >= 0 {
			return w2[i*2+1], nil
		}
		if attempt == 0 {
			// Plausibly absent; one more pass covers a key in motion
			// between our two snapshots.
			r.MotionRetries++
			continue
		}
		return 0, ErrNotFound
	}
	return 0, ErrNotFound
}
