package cluster

import (
	"reflect"
	"testing"

	"github.com/catfish-db/catfish/internal/workload"
)

// TestNeverFetchMatchesBinaryBaseline pins the 3-way switch's compatibility
// guarantee: with the fetch branch unreachable (TX threshold far above any
// attainable utilization), catfish-3way must reproduce the binary catfish
// baseline bit-for-bit — same makespan, same latency histogram, same counter
// values — across batching and sharding variants.
func TestNeverFetchMatchesBinaryBaseline(t *testing.T) {
	cases := []struct {
		name    string
		seed    int64
		clients int
		batch   int
		shards  int
	}{
		{"plain", 1, 4, 0, 1},
		{"batched", 7, 3, 4, 1},
		{"sharded", 11, 4, 0, 4},
		{"sharded-batched", 3, 2, 4, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := smallConfig(SchemeCatfish, tc.clients)
			base.Seed = tc.seed
			base.BatchSize = tc.batch
			base.Shards = tc.shards

			resBin, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}

			cfg3 := base
			cfg3.Scheme = SchemeCatfish3
			cfg3.TxT = 10 // unreachable: the fetch branch never fires
			res3, err := Run(cfg3)
			if err != nil {
				t.Fatal(err)
			}
			if res3.FetchSearches != 0 {
				t.Fatalf("never-fetch run routed %d searches to fetch", res3.FetchSearches)
			}

			res3.Scheme = resBin.Scheme // the only field allowed to differ
			if !reflect.DeepEqual(resBin, res3) {
				t.Errorf("results diverged:\n  binary: makespan=%v kops=%v lat=%+v offload=%v\n  3-way:  makespan=%v kops=%v lat=%+v offload=%v",
					resBin.Makespan, resBin.Kops, resBin.Latency, resBin.OffloadFraction,
					res3.Makespan, res3.Kops, res3.Latency, res3.OffloadFraction)
			}
		})
	}
}

// TestTCPSchemeIgnoresFetch checks the other compatibility edge: a TCP
// scheme with the fetch flag set has no registered mailbox at the endpoint,
// so the flag must be inert.
func TestTCPSchemeIgnoresFetch(t *testing.T) {
	base := smallConfig(SchemeTCP40G, 3)
	resPlain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withFetch := base
	withFetch.Scheme.Fetch = true
	resFetch, err := Run(withFetch)
	if err != nil {
		t.Fatal(err)
	}
	if resFetch.FetchSearches != 0 {
		t.Fatalf("TCP run routed %d searches to fetch", resFetch.FetchSearches)
	}
	if !reflect.DeepEqual(resPlain, resFetch) {
		t.Errorf("fetch flag changed a TCP run: %+v vs %+v", resPlain, resFetch)
	}
}

// TestSchemeFetchDelivers runs the forced-fetch scheme with a query scale
// big enough for multi-item results and an inline threshold of one item, so
// mailbox delivery must actually happen and show up in both the client
// counters and the responder-engine NIC split.
func TestSchemeFetchDelivers(t *testing.T) {
	cfg := smallConfig(SchemeFetch, 4)
	cfg.Workload = workload.NewMix(workload.UniformScale{Scale: 0.02}, workload.SkewedInserts{Edge: 0.0001}, 0, 1<<32)
	cfg.FetchInlineMax = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 4*50 {
		t.Errorf("ops = %d, want 200", res.Ops)
	}
	if res.FetchSearches == 0 {
		t.Fatal("forced-fetch run recorded no fetch searches")
	}
	if res.FetchFraction != 1 {
		t.Errorf("fetch fraction = %v, want 1 under forced fetch", res.FetchFraction)
	}
	if res.FetchBytes == 0 {
		t.Error("no mailbox bytes delivered despite inline threshold 1")
	}
	if res.Client.FetchFallbacks != 0 {
		t.Errorf("fetch fallbacks = %d", res.Client.FetchFallbacks)
	}
	if res.ServerReadTXGbps <= 0 {
		t.Errorf("responder-engine TX = %v, want > 0 (mailbox pulls)", res.ServerReadTXGbps)
	}
	if res.ServerStats.FetchSearches == 0 || res.ServerStats.FetchBytes == 0 {
		t.Errorf("server fetch counters empty: %+v", res.ServerStats)
	}
}

// TestSchemeCatfish3Runs exercises the 3-way scheme end to end with the
// default thresholds — the adaptive path with fetch armed must complete and
// stay correct regardless of which methods the switch picks.
func TestSchemeCatfish3Runs(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := smallConfig(SchemeCatfish3, 4)
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 4*50 {
			t.Errorf("shards=%d: ops = %d, want 200", shards, res.Ops)
		}
		if res.Kops <= 0 || res.Makespan <= 0 {
			t.Errorf("shards=%d: empty result %+v", shards, res)
		}
	}
}
