package cluster

import (
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/workload"
)

// smallConfig returns a quick experiment configuration.
func smallConfig(scheme Scheme, clients int) Config {
	return Config{
		Scheme:            scheme,
		Dataset:           workload.UniformRects(20000, 0.0001, 1),
		Workload:          workload.NewMix(workload.UniformScale{Scale: 0.001}, workload.SkewedInserts{Edge: 0.0001}, 0, 1<<32),
		NumClients:        clients,
		RequestsPerClient: 50,
		Seed:              1,
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{
		SchemeTCP1G, SchemeTCP40G, SchemeFastMessaging,
		SchemeOffloading, SchemeCatfish, SchemeFastEvent, SchemeOffloadMulti,
	} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			res, err := Run(smallConfig(scheme, 4))
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4*50 {
				t.Errorf("ops = %d, want 200", res.Ops)
			}
			if res.Kops <= 0 {
				t.Errorf("throughput = %v", res.Kops)
			}
			if res.Latency.Count == 0 || res.Latency.Mean <= 0 {
				t.Errorf("latency summary empty: %+v", res.Latency)
			}
			if res.Makespan <= 0 {
				t.Error("zero makespan")
			}
			if res.Scheme != scheme.Name {
				t.Errorf("scheme name %q", res.Scheme)
			}
		})
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	_, err := Run(Config{Scheme: SchemeCatfish})
	if err == nil {
		t.Fatal("missing workload should error")
	}
}

func TestHybridWorkloadRuns(t *testing.T) {
	cfg := smallConfig(SchemeCatfish, 4)
	cfg.Workload = workload.NewMix(workload.UniformScale{Scale: 0.001},
		workload.SkewedInserts{Edge: 0.0001}, 0.1, 1<<32)
	cfg.StagedWrites = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerStats.Inserts == 0 {
		t.Error("no inserts reached the server")
	}
	if res.InsertLat.Count == 0 {
		t.Error("no insert latency recorded")
	}
	if res.ServerStats.Inserts+res.ServerStats.Searches < 190 {
		t.Errorf("server stats account for too few ops: %+v", res.ServerStats)
	}
}

func TestOffloadFractionReflectsScheme(t *testing.T) {
	offRes, err := Run(smallConfig(SchemeOffloading, 2))
	if err != nil {
		t.Fatal(err)
	}
	if offRes.OffloadFraction != 1.0 {
		t.Errorf("offloading scheme offload fraction = %v, want 1", offRes.OffloadFraction)
	}
	if offRes.NodesFetched == 0 {
		t.Error("offloading fetched no nodes")
	}
	fastRes, err := Run(smallConfig(SchemeFastMessaging, 2))
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.OffloadFraction != 0 {
		t.Errorf("fast messaging offload fraction = %v, want 0", fastRes.OffloadFraction)
	}
	if fastRes.ServerStats.Searches != 100 {
		t.Errorf("server searches = %d, want 100", fastRes.ServerStats.Searches)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(smallConfig(SchemeCatfish, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(SchemeCatfish, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Kops != b.Kops || a.Latency.Mean != b.Latency.Mean {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestServerCPUSaturatesUnderLoad(t *testing.T) {
	// Small-scope searches with enough clients should push the event-mode
	// server CPU toward saturation (the Fig 2b / Fig 10a regime).
	cfg := smallConfig(SchemeFastEvent, 32)
	cfg.ServerCores = 2
	cfg.Workload = workload.NewMix(workload.UniformScale{Scale: 0.00001}, workload.SkewedInserts{}, 0, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerCPUUtil < 0.8 {
		t.Errorf("server CPU util = %.2f, want near saturation", res.ServerCPUUtil)
	}
}

func TestAdaptiveOffloadsUnderSaturation(t *testing.T) {
	cfg := smallConfig(SchemeCatfish, 32)
	cfg.ServerCores = 2
	cfg.RequestsPerClient = 200
	cfg.HeartbeatInv = time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffloadFraction == 0 {
		t.Error("catfish never offloaded despite a saturated server")
	}
	if res.OffloadFraction == 1 {
		t.Error("catfish never used fast messaging")
	}
}

func TestMicroTCP(t *testing.T) {
	pts, err := RunMicro(netmodel.Ethernet1G, MicroTCP, []int{2, 1024, 65536}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Latency grows with size; throughput grows toward line rate.
	if pts[2].Latency <= pts[0].Latency {
		t.Errorf("latency not increasing: %v vs %v", pts[0].Latency, pts[2].Latency)
	}
	if pts[2].Gbps <= pts[0].Gbps {
		t.Errorf("throughput not increasing: %v vs %v", pts[0].Gbps, pts[2].Gbps)
	}
	if pts[2].Gbps > 1.0 {
		t.Errorf("throughput %v exceeds 1G line rate", pts[2].Gbps)
	}
}

func TestMicroRDMAReadVsWrite(t *testing.T) {
	sizes := []int{64, 4096}
	reads, err := RunMicro(netmodel.InfiniBand100G, MicroRDMARead, sizes, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	writes, err := RunMicro(netmodel.InfiniBand100G, MicroRDMAWrite, sizes, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 9a: RDMA Read needs a round trip, Write is one-directional, so
	// Read latency exceeds Write latency at small sizes.
	if reads[0].Latency <= writes[0].Latency {
		t.Errorf("read %v should exceed write %v at small size",
			reads[0].Latency, writes[0].Latency)
	}
}

func TestMicroValidation(t *testing.T) {
	if _, err := RunMicro(netmodel.Ethernet1G, MicroRDMARead, []int{64}, 5, 1); err == nil {
		t.Error("RDMA micro on a TCP fabric should error")
	}
	if _, err := RunMicro(netmodel.InfiniBand100G, "bogus", []int{64}, 5, 1); err == nil {
		t.Error("unknown method should error")
	}
}
