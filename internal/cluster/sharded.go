package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
	"github.com/catfish-db/catfish/internal/workload"
)

// runSharded executes a K-shard deployment: the dataset is partitioned by
// the recursive longest-axis splitter, each shard gets its own server
// (host, CPU, NIC, region, tree, heartbeat stream), and every simulated
// client drives a shard.Router holding one connected client — and therefore
// one adaptive.Switch — per shard. Searches scatter to all shards whose
// coverage intersects the query and merge the partials; writes go to the
// unique owner.
func runSharded(cfg Config) (Result, error) {
	if cfg.PrebuiltTree != nil {
		return Result{}, errors.New("cluster: PrebuiltTree is incompatible with Shards > 1 (each K partitions the dataset differently)")
	}
	k := cfg.Shards

	smap, err := shard.Build(cfg.Dataset, shard.Config{K: k, MaxInsertEdge: cfg.Workload.Inserts.Edge})
	if err != nil {
		return Result{}, err
	}
	assign := smap.Assign(cfg.Dataset)

	e := sim.New(cfg.Seed)
	// Scheme is held by value; see the identical line in Run.
	cfg.Scheme.Profile.MergeSpan = cfg.MergeSpan
	net := fabric.NewNetwork(e, cfg.Scheme.Profile)

	// One full server stack per shard. Regions keep the single-server
	// insert headroom: ownership skew means one shard can absorb most of
	// the write stream. With Replicas > 1 each shard additionally gets
	// backup stacks bulk-loaded from the same partition; the primary's
	// Replicate hook keeps them synchronously updated under its write
	// latch, so an acknowledged write is always on every live backup.
	reps := cfg.Replicas
	if reps < 1 {
		reps = 1
	}
	serverCPUs := make([]*sim.CPU, k)
	serverHosts := make([]*fabric.Host, k)
	pollCPUs := make([]*sim.PollCPU, k)
	servers := make([]*server.Server, k)
	backupSrvs := make([][]*server.Server, k)
	buildStack := func(s int, name string, rep *replica.State,
		hook func(*sim.Proc, replica.Record) error) (*server.Server, *sim.CPU, *fabric.Host, *sim.PollCPU, error) {
		cpu := sim.NewCPU(e, cfg.ServerCores)
		host := net.NewHost(name, cpu)
		reg, err := region.New(cfg.regionChunks(), cfg.ChunkSize)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: cfg.MaxEntries})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if len(assign[s]) > 0 {
			data := append([]rtree.Entry(nil), assign[s]...)
			if err := tree.BulkLoad(data, 0); err != nil {
				return nil, nil, nil, nil, fmt.Errorf("cluster: shard %d bulk load: %w", s, err)
			}
		}
		srvCfg := server.Config{
			Engine:           e,
			Host:             host,
			Tree:             tree,
			Cost:             cfg.Cost,
			Mode:             cfg.Scheme.ServerMode,
			RingSize:         cfg.RingSize,
			StagedNodeWrites: cfg.StagedWrites,
			Replica:          rep,
			Replicate:        hook,
		}
		if cfg.Scheme.Heartbeats {
			srvCfg.HeartbeatInterval = cfg.HeartbeatInv
		}
		if cfg.Scheme.fetchEnabled() {
			srvCfg.FetchSlots = cfg.FetchSlots
			srvCfg.FetchSlotChunks = cfg.FetchSlotChunks
			srvCfg.FetchInlineMax = cfg.FetchInlineMax
		}
		var pollCPU *sim.PollCPU
		if cfg.Scheme.ServerMode == server.ModePolling {
			pollCPU = sim.NewPollCPU(e, cfg.ServerCores, cfg.Cost.PollSlice)
			srvCfg.PollCPU = pollCPU
		}
		srv, err := server.New(srvCfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return srv, cpu, host, pollCPU, nil
	}
	for s := 0; s < k; s++ {
		var rep *replica.State
		var hook func(*sim.Proc, replica.Record) error
		if reps > 1 {
			s := s
			rep = replica.NewState(1, true)
			// The hook runs under the primary's exclusive latch before the
			// write is acknowledged. A killed backup is dropped from the
			// stream; a fencing rejection (the backup was promoted past us)
			// surfaces to the client, which never acks the write.
			hook = func(p *sim.Proc, rec replica.Record) error {
				var firstErr error
				for _, b := range backupSrvs[s] {
					if err := b.ApplyReplica(p, rec); err != nil {
						if errors.Is(err, replica.ErrUnavailable) {
							continue
						}
						if firstErr == nil {
							firstErr = err
						}
					}
				}
				return firstErr
			}
		}
		srv, cpu, host, pollCPU, err := buildStack(s, fmt.Sprintf("shard-%d", s), rep, hook)
		if err != nil {
			return Result{}, err
		}
		servers[s], serverCPUs[s], serverHosts[s], pollCPUs[s] = srv, cpu, host, pollCPU
		for b := 1; b < reps; b++ {
			bsrv, _, _, _, err := buildStack(s, fmt.Sprintf("shard-%d-backup-%d", s, b),
				replica.NewState(1, false), nil)
			if err != nil {
				return Result{}, err
			}
			backupSrvs[s] = append(backupSrvs[s], bsrv)
		}
	}

	numHosts := (cfg.NumClients + cfg.ClientsPerHost - 1) / cfg.ClientsPerHost
	hosts := make([]*fabric.Host, numHosts)
	for i := range hosts {
		hosts[i] = net.NewHost(fmt.Sprintf("client-host-%d", i), sim.NewCPU(e, cfg.ClientCores))
	}

	// Each simulated client connects to every shard (one client.Client per
	// shard, each with its own adaptive switch) and drives them through a
	// router.
	hbForHealth := time.Duration(0)
	if cfg.Scheme.Heartbeats {
		hbForHealth = cfg.HeartbeatInv
	}
	routers := make([]*shard.Router, cfg.NumClients)
	shardClients := make([][]*client.Client, cfg.NumClients)
	for i := 0; i < cfg.NumClients; i++ {
		host := hosts[i/cfg.ClientsPerHost]
		mkClient := func(srv *server.Server) (*client.Client, error) {
			ccfg := client.Config{
				Engine:        e,
				Host:          host,
				Cost:          cfg.Cost,
				Adaptive:      cfg.Scheme.Adaptive,
				Forced:        cfg.Scheme.Forced,
				MultiIssue:    cfg.Scheme.MultiIssue,
				N:             cfg.N,
				T:             cfg.T,
				HeartbeatInv:  cfg.HeartbeatInv,
				CacheRoot:     cfg.CacheRoot,
				NodeCache:     cfg.NodeCache,
				PredSmoothing: cfg.PredSmoothing,
				Prefetch:      cfg.Prefetch,
				Fetch:         cfg.Scheme.fetchEnabled(),
				TxT:           cfg.TxT,
			}
			if cfg.Scheme.TCP {
				ep, err := srv.ConnectTCP(host, net)
				if err != nil {
					return nil, err
				}
				ccfg.Endpoint = ep
			} else {
				ep, err := srv.Connect(host, net, cfg.MultiIssueDepth)
				if err != nil {
					return nil, err
				}
				ccfg.Endpoint = ep
			}
			return client.New(ccfg)
		}
		cs := make([]*client.Client, k)
		var bcs [][]*client.Client
		if reps > 1 {
			bcs = make([][]*client.Client, k)
		}
		for s := 0; s < k; s++ {
			c, err := mkClient(servers[s])
			if err != nil {
				return Result{}, err
			}
			cs[s] = c
			for _, bsrv := range backupSrvs[s] {
				bc, err := mkClient(bsrv)
				if err != nil {
					return Result{}, err
				}
				bcs[s] = append(bcs[s], bc)
			}
		}
		shardClients[i] = cs
		routers[i], err = shard.NewRouter(shard.RouterConfig{
			Engine:            e,
			Map:               smap,
			Clients:           cs,
			HeartbeatInterval: hbForHealth,
			HealthMultiple:    cfg.HealthMultiple,
			Backups:           bcs,
		})
		if err != nil {
			return Result{}, err
		}
	}

	searchLat := stats.NewHistogram()
	insertLat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	wg := sim.NewWaitGroup(e)

	// Per-driver acknowledged inserts, recorded only when the post-run
	// equivalence check is armed: an acked write that a later search cannot
	// find is a lost write.
	var acked [][]rtree.Entry
	if cfg.VerifyQueries > 0 {
		acked = make([][]rtree.Entry, cfg.NumClients)
	}

	for i := range routers {
		i, r := i, routers[i]
		wg.Add(1)
		e.Spawn(fmt.Sprintf("driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			mix := *cfg.Workload
			if cfg.BatchSize >= 1 {
				batch := make([]client.BatchOp, 0, cfg.BatchSize)
				results := make([]client.BatchResult, 0, cfg.BatchSize)
				for req := 0; req < cfg.RequestsPerClient; {
					batch = batch[:0]
					for len(batch) < cfg.BatchSize && req < cfg.RequestsPerClient {
						op := mix.Next(rng)
						if op.Type == workload.OpInsert {
							batch = append(batch, client.BatchOp{
								Type: wire.MsgInsert, Rect: op.Rect, Ref: op.Ref + uint64(i)<<32})
						} else {
							batch = append(batch, client.BatchOp{Type: wire.MsgSearch, Rect: op.Rect})
						}
						req++
					}
					start := p.Now()
					results = r.ExecBatch(p, batch, results)
					elapsed := p.Now() - start
					for j := range results {
						if err := results[j].Err; err != nil {
							runErr = fmt.Errorf("client %d batched op: %w", i, err)
							return
						}
						if batch[j].Type == wire.MsgInsert {
							insertLat.Record(elapsed)
							if acked != nil {
								acked[i] = append(acked[i], rtree.Entry{Rect: batch[j].Rect, Ref: batch[j].Ref})
							}
						} else {
							searchLat.Record(elapsed)
						}
					}
					ops += uint64(len(batch))
					if p.Now() > makespan {
						makespan = p.Now()
					}
				}
				return
			}
			for req := 0; req < cfg.RequestsPerClient; req++ {
				op := mix.Next(rng)
				start := p.Now()
				switch op.Type {
				case workload.OpInsert:
					if err := r.Insert(p, op.Rect, op.Ref+uint64(i)<<32); err != nil {
						runErr = fmt.Errorf("client %d insert: %w", i, err)
						return
					}
					insertLat.Record(p.Now() - start)
					if acked != nil {
						acked[i] = append(acked[i], rtree.Entry{Rect: op.Rect, Ref: op.Ref + uint64(i)<<32})
					}
				default:
					if _, _, err := r.Search(p, op.Rect); err != nil {
						runErr = fmt.Errorf("client %d search: %w", i, err)
						return
					}
					searchLat.Record(p.Now() - start)
				}
				ops++
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
		})
	}
	if cfg.FailAfter > 0 {
		e.Spawn("fault-injector", func(p *sim.Proc) {
			p.Sleep(cfg.FailAfter)
			servers[cfg.FailShard].Kill()
		})
	}
	e.Spawn("coordinator", func(p *sim.Proc) {
		wg.Wait(p)
		if runErr == nil && cfg.VerifyQueries > 0 {
			want := append([]rtree.Entry(nil), cfg.Dataset...)
			for _, a := range acked {
				want = append(want, a...)
			}
			runErr = verifySharded(p, routers[0], cfg, want)
		}
		p.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		return Result{}, err
	}
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{
		Scheme:    cfg.Scheme.Name,
		Clients:   cfg.NumClients,
		Ops:       ops,
		Makespan:  makespan,
		Latency:   searchLat.Summarize(),
		InsertLat: insertLat.Summarize(),
	}
	if makespan > 0 {
		res.Kops = float64(ops) / makespan.Seconds() / 1e3
	}

	// Per-shard split plus the single-server-shaped aggregates: server
	// stats summed, CPU utilization averaged, NIC bandwidth summed.
	var aggAll telemetry.ClientSnapshot
	res.PerShard = make([]ShardResult, k)
	for s := 0; s < k; s++ {
		st := servers[s].Stats()
		sr := ShardResult{
			Shard:   s,
			Entries: len(assign[s]),
			Ops:     st.Searches + st.Inserts + st.Deletes,
		}
		if makespan > 0 {
			sr.TXGbps = serverHosts[s].TXGbps(makespan)
			sr.ReadTXGbps = serverHosts[s].ReadTXGbps(makespan)
			sr.RXGbps = serverHosts[s].RXGbps(makespan)
		}
		if cfg.Scheme.ServerMode == server.ModePolling {
			sr.CPUUtil = 1.0
			res.ServerUsefulCPU += pollCPUs[s].UsefulUtilizationTotal() / float64(k)
		} else {
			sr.CPUUtil = serverCPUs[s].UtilizationTotal()
		}
		var agg telemetry.ClientSnapshot
		for i := range shardClients {
			agg = agg.Add(shardClients[i][s].Stats())
		}
		sr.Client = agg
		sr.OffloadFraction = agg.OffloadFraction()
		aggAll = aggAll.Add(agg)

		res.ServerStats.Searches += st.Searches
		res.ServerStats.Inserts += st.Inserts
		res.ServerStats.Deletes += st.Deletes
		res.ServerStats.Results += st.Results
		res.ServerStats.Heartbeat += st.Heartbeat
		res.ServerStats.Segments += st.Segments
		res.ServerStats.Batches += st.Batches
		res.ServerStats.BatchedOps += st.BatchedOps
		res.ServerStats.FetchSearches += st.FetchSearches
		res.ServerStats.FetchInline += st.FetchInline
		res.ServerStats.FetchBytes += st.FetchBytes
		res.ServerCPUUtil += sr.CPUUtil / float64(k)
		res.ServerTXGbps += sr.TXGbps
		res.ServerReadTXGbps += sr.ReadTXGbps
		res.ServerRXGbps += sr.RXGbps
		res.PerShard[s] = sr
	}
	if cfg.Scheme.ServerMode != server.ModePolling {
		res.ServerUsefulCPU = res.ServerCPUUtil
	}
	res.applyClientSnapshot(aggAll)

	// Router-level routing counters.
	var searches, fanout uint64
	for _, r := range routers {
		rs := r.Stats()
		searches += rs.Searches
		fanout += rs.Fanout
		res.SkippedSearches += rs.Skipped
		res.UnhealthyWrites += rs.UnhealthyWrites
		res.Promotions += rs.Promotions
		res.BackupReads += rs.BackupReads
	}
	for s := range backupSrvs {
		for _, b := range backupSrvs[s] {
			res.ReplRecords += b.Stats().ReplRecords
		}
	}
	if searches > 0 {
		res.FanoutPerSearch = float64(fanout) / float64(searches)
	}
	return res, nil
}

// verifySharded replays VerifyQueries random range queries through r and
// compares every merged result against a brute-force scan of want — the
// post-failover ground-truth equivalence check: each acknowledged write
// must be visible, and nothing else.
func verifySharded(p *sim.Proc, r *shard.Router, cfg Config, want []rtree.Entry) error {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7ef1ca))
	mix := *cfg.Workload
	done := 0
	for attempts := 0; done < cfg.VerifyQueries && attempts < cfg.VerifyQueries*100; attempts++ {
		op := mix.Next(rng)
		if op.Type != workload.OpSearch {
			continue
		}
		done++
		items, _, err := r.Search(p, op.Rect)
		if err != nil {
			return fmt.Errorf("cluster: verify query %d: %w", done, err)
		}
		got := make(map[uint64]int, len(items))
		for _, it := range items {
			got[it.Ref]++
		}
		n := 0
		for _, e := range want {
			if e.Rect.Intersects(op.Rect) {
				n++
				if got[e.Ref] == 0 {
					return fmt.Errorf("cluster: verify query %d: ref %#x missing — acknowledged write lost", done, e.Ref)
				}
				got[e.Ref]--
			}
		}
		if len(items) != n {
			return fmt.Errorf("cluster: verify query %d: %d items, brute force says %d", done, len(items), n)
		}
	}
	return nil
}
