package cluster

import (
	"reflect"
	"testing"
	"time"
)

func TestReplicasOneEquivalence(t *testing.T) {
	// Replicas <= 1 must leave the sharded path bit for bit unchanged:
	// no backup stacks, no replica state, no hook — same makespan, same
	// latency distribution, same counters. Randomized via per-seed runs on
	// both transports, plain and batched.
	for _, tc := range []struct {
		name  string
		sch   Scheme
		batch int
	}{
		{"catfish", SchemeCatfish, 0},
		{"tcp", SchemeTCP40G, 0},
		{"catfish-batched", SchemeFastEvent, 8},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42} {
				base := hybridConfig(tc.sch, 4)
				base.Shards = 2
				base.BatchSize = tc.batch
				base.Seed = seed
				a, err := Run(base)
				if err != nil {
					t.Fatal(err)
				}
				rep := base
				rep.Replicas = 1
				b, err := Run(rep)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("seed %d: Replicas=1 diverges from baseline:\nbase: %+v\nR=1:  %+v", seed, a, b)
				}
			}
		})
	}
}

func TestShardedFailoverKillPrimary(t *testing.T) {
	// Kill shard 0's primary early in the run. Every write must still be
	// acknowledged (the router promotes the synchronously updated backup),
	// searches keep answering from backups, and the post-run equivalence
	// check proves no acknowledged write was lost.
	for _, tc := range []struct {
		name  string
		sch   Scheme
		batch int
	}{
		{"catfish", SchemeCatfish, 0},
		{"tcp", SchemeTCP40G, 0},
		{"catfish-batched", SchemeFastEvent, 8},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := hybridConfig(tc.sch, 4)
			cfg.Shards = 2
			cfg.Replicas = 2
			cfg.BatchSize = tc.batch
			cfg.FailAfter = 50 * time.Microsecond
			cfg.FailShard = 0
			cfg.VerifyQueries = 40
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4*50 {
				t.Errorf("ops = %d, want 200", res.Ops)
			}
			if res.Promotions == 0 {
				t.Error("no promotions recorded after killing a primary")
			}
			if res.ReplRecords == 0 {
				t.Error("no replicated records applied on backups")
			}
		})
	}
}

func TestShardedFailoverDeterminism(t *testing.T) {
	cfg := hybridConfig(SchemeCatfish, 4)
	cfg.Shards = 2
	cfg.Replicas = 2
	cfg.FailAfter = 50 * time.Microsecond
	cfg.VerifyQueries = 10
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("failover runs nondeterministic:\na: %+v\nb: %+v", a, b)
	}
}
