package cluster

import (
	"reflect"
	"testing"

	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
)

func TestShardedK1Delegation(t *testing.T) {
	// Shards <= 1 must run the existing single-server path bit for bit:
	// same makespan, same latency distribution, same counters.
	for _, scheme := range []Scheme{SchemeCatfish, SchemeTCP40G} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			base, err := Run(hybridConfig(scheme, 4))
			if err != nil {
				t.Fatal(err)
			}
			cfg := hybridConfig(scheme, 4)
			cfg.Shards = 1
			one, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, one) {
				t.Errorf("Shards=1 diverges from single-server run:\nbase: %+v\nK=1:  %+v", base, one)
			}
		})
	}
}

func TestShardedRunCounts(t *testing.T) {
	// A K=4 sharded run executes every op, splits the dataset across the
	// shards, and reports coherent per-shard stats — on the ring (adaptive
	// Catfish) and over TCP.
	for _, scheme := range []Scheme{SchemeCatfish, SchemeTCP40G} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			cfg := hybridConfig(scheme, 4)
			cfg.Shards = 4
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4*50 {
				t.Errorf("ops = %d, want 200", res.Ops)
			}
			if res.Kops <= 0 || res.Makespan <= 0 {
				t.Errorf("kops=%v makespan=%v", res.Kops, res.Makespan)
			}
			if len(res.PerShard) != 4 {
				t.Fatalf("PerShard has %d entries", len(res.PerShard))
			}
			entries, shardOps := 0, uint64(0)
			for _, sr := range res.PerShard {
				entries += sr.Entries
				shardOps += sr.Ops
			}
			if entries != len(cfg.Dataset) {
				t.Errorf("shards own %d entries, dataset has %d", entries, len(cfg.Dataset))
			}
			if shardOps == 0 {
				t.Error("no server-side ops recorded")
			}
			if res.FanoutPerSearch < 1 {
				t.Errorf("fan-out per search = %v, want >= 1", res.FanoutPerSearch)
			}
			if res.SkippedSearches != 0 || res.UnhealthyWrites != 0 {
				t.Errorf("healthy run skipped %d searches, rejected %d writes",
					res.SkippedSearches, res.UnhealthyWrites)
			}
			if res.ServerStats.Searches == 0 {
				t.Error("aggregate server stats empty")
			}
		})
	}
}

func TestShardedBatchedRun(t *testing.T) {
	cfg := hybridConfig(SchemeFastEvent, 4)
	cfg.Shards = 2
	cfg.BatchSize = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 4*50 {
		t.Errorf("ops = %d, want 200", res.Ops)
	}
	if res.Batches == 0 {
		t.Error("batched sharded run shipped no containers")
	}
}

func TestShardedDeterminism(t *testing.T) {
	cfg := hybridConfig(SchemeCatfish, 4)
	cfg.Shards = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded runs nondeterministic:\na: %+v\nb: %+v", a, b)
	}
}

func TestShardedRejectsPrebuiltTree(t *testing.T) {
	// A prebuilt tree holds the whole dataset; every K partitions it
	// differently, so reuse across sharded runs is impossible.
	reg, err := region.New(1<<10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	bad := smallConfig(SchemeCatfish, 2)
	bad.Shards = 2
	bad.PrebuiltTree = tree
	if _, err := Run(bad); err == nil {
		t.Fatal("PrebuiltTree with Shards > 1 must be rejected")
	}
}
