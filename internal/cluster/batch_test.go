package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/workload"
)

// hybridConfig is smallConfig plus a 10% insert fraction so batches mix
// reads and writes.
func hybridConfig(scheme Scheme, clients int) Config {
	cfg := smallConfig(scheme, clients)
	cfg.Workload = workload.NewMix(workload.UniformScale{Scale: 0.001},
		workload.SkewedInserts{Edge: 0.0001}, 0.1, 1<<32)
	return cfg
}

func TestBatchSizeOneEquivalence(t *testing.T) {
	// B=1 issues single-operation batches through ExecBatch, which must
	// delegate to the unbatched path and reproduce the unbatched run
	// bit-for-bit — same makespan, same latency distribution, same server
	// counters — on both the simulated ring and the TCP transport.
	for _, scheme := range []Scheme{SchemeFastEvent, SchemeTCP40G} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			base, err := Run(hybridConfig(scheme, 4))
			if err != nil {
				t.Fatal(err)
			}
			cfg := hybridConfig(scheme, 4)
			cfg.BatchSize = 1
			one, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, one) {
				t.Errorf("B=1 diverges from unbatched:\nunbatched: %+v\nB=1:       %+v", base, one)
			}
			if one.Batches != 0 {
				t.Errorf("B=1 shipped %d containers; single-op batches must delegate", one.Batches)
			}
		})
	}
}

func TestBatchedRunCounts(t *testing.T) {
	// Every operation of a B=16 run travels inside a container, on the ring
	// and over TCP, and server-side accounting agrees with the clients'.
	for _, scheme := range []Scheme{SchemeFastEvent, SchemeTCP40G} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			cfg := hybridConfig(scheme, 4)
			cfg.BatchSize = 16
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 4*50 {
				t.Errorf("ops = %d, want 200", res.Ops)
			}
			if res.Batches == 0 || res.BatchedOps != res.Ops {
				t.Errorf("batching did not cover the run: %d containers, %d of %d ops",
					res.Batches, res.BatchedOps, res.Ops)
			}
			if res.ServerStats.Batches != res.Batches ||
				res.ServerStats.BatchedOps != res.BatchedOps {
				t.Errorf("server saw %d/%d, clients sent %d/%d",
					res.ServerStats.Batches, res.ServerStats.BatchedOps,
					res.Batches, res.BatchedOps)
			}
			if res.Latency.Count == 0 || res.InsertLat.Count == 0 {
				t.Errorf("latency summaries empty: %+v / %+v", res.Latency, res.InsertLat)
			}
		})
	}
}

func TestBatchedAdaptiveClusterSplits(t *testing.T) {
	// Adaptive scheme with batching under saturation: searches still split
	// between messaging and offloading (per-search switch consultation
	// inside ExecBatch), and containers actually flow.
	cfg := smallConfig(SchemeCatfish, 32)
	cfg.ServerCores = 2
	cfg.RequestsPerClient = 200
	cfg.HeartbeatInv = time.Millisecond
	cfg.BatchSize = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffloadFraction == 0 {
		t.Error("batched catfish never offloaded despite a saturated server")
	}
	if res.OffloadFraction == 1 {
		t.Error("batched catfish never used fast messaging")
	}
	if res.Batches == 0 {
		t.Error("no batch containers sent")
	}
	if res.BatchedOps >= res.Ops {
		t.Errorf("batched ops %d should exclude the %d offloaded searches (total %d)",
			res.BatchedOps, res.NodesFetched, res.Ops)
	}
}
