package cluster

import (
	"fmt"
	"time"

	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/sim"
)

// MicroMethod selects the transport of the Fig 9 micro-benchmark.
type MicroMethod string

// Micro-benchmark transports.
const (
	MicroTCP       MicroMethod = "tcp"
	MicroRDMARead  MicroMethod = "rdma-read"
	MicroRDMAWrite MicroMethod = "rdma-write"
)

// MicroPoint is one (chunk size, latency, throughput) measurement.
type MicroPoint struct {
	Size    int
	Latency time.Duration
	Gbps    float64
}

// RunMicro reproduces the paper's micro-benchmark (Fig 9): data chunks of
// the given sizes are transferred one at a time (a transfer begins only
// after the previous one finished), measuring mean latency and achieved
// throughput per size.
//
// For TCP the exchange is a 1-byte request answered with a size-byte
// response (client-server echo). For RDMA Read the client fetches size
// bytes from registered server memory; for RDMA Write it writes size bytes
// with a signaled completion, matching perftest semantics.
func RunMicro(prof netmodel.Profile, method MicroMethod, sizes []int, iters int, seed int64) ([]MicroPoint, error) {
	if iters <= 0 {
		iters = 100
	}
	out := make([]MicroPoint, 0, len(sizes))
	for _, size := range sizes {
		pt, err := microPoint(prof, method, size, iters, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func microPoint(prof netmodel.Profile, method MicroMethod, size, iters int, seed int64) (MicroPoint, error) {
	e := sim.New(seed)
	net := fabric.NewNetwork(e, prof)
	clientCPU := sim.NewCPU(e, 4)
	serverCPU := sim.NewCPU(e, 28)
	clientHost := net.NewHost("client", clientCPU)
	serverHost := net.NewHost("server", serverCPU)

	var total time.Duration
	var benchErr error

	switch method {
	case MicroTCP:
		cEnd, sEnd := net.DialTCP(clientHost, serverHost)
		e.Spawn("server", func(p *sim.Proc) {
			resp := make([]byte, size)
			for {
				sEnd.Recv(p)
				sEnd.Send(p, resp)
			}
		})
		e.Spawn("client", func(p *sim.Proc) {
			req := []byte{1}
			for i := 0; i < iters; i++ {
				start := p.Now()
				cEnd.Send(p, req)
				cEnd.Recv(p)
				total += p.Now() - start
			}
			p.Engine().Stop()
		})

	case MicroRDMARead:
		if !prof.RDMA {
			return MicroPoint{}, fmt.Errorf("cluster: %s is not an RDMA fabric", prof.Name)
		}
		mem := serverHost.RegisterMemory(size)
		qp, _ := net.ConnectQP(clientHost, serverHost, 1)
		e.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				start := p.Now()
				if _, err := qp.ReadSync(p, mem, 0, size); err != nil {
					benchErr = err
					break
				}
				total += p.Now() - start
			}
			p.Engine().Stop()
		})

	case MicroRDMAWrite:
		if !prof.RDMA {
			return MicroPoint{}, fmt.Errorf("cluster: %s is not an RDMA fabric", prof.Name)
		}
		mem := serverHost.RegisterMemory(size)
		qp, _ := net.ConnectQP(clientHost, serverHost, 1)
		e.Spawn("client", func(p *sim.Proc) {
			buf := make([]byte, size)
			for i := 0; i < iters; i++ {
				start := p.Now()
				if err := qp.Write(p, mem, 0, buf, fabric.WriteOpts{Signaled: true}); err != nil {
					benchErr = err
					break
				}
				c := qp.CQ().Pop(p)
				if c.Op != fabric.OpWriteDone {
					benchErr = fmt.Errorf("cluster: unexpected completion %v", c.Op)
					break
				}
				total += p.Now() - start
			}
			p.Engine().Stop()
		})

	default:
		return MicroPoint{}, fmt.Errorf("cluster: unknown micro method %q", method)
	}

	if err := e.Run(); err != nil {
		return MicroPoint{}, err
	}
	if benchErr != nil {
		return MicroPoint{}, benchErr
	}
	lat := total / time.Duration(iters)
	pt := MicroPoint{Size: size, Latency: lat}
	if lat > 0 {
		pt.Gbps = float64(size) * 8 / lat.Seconds() / 1e9
	}
	return pt, nil
}
