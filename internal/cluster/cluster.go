// Package cluster assembles full Catfish experiments: one server plus up to
// hundreds of clients spread over simulated hosts, running the paper's
// workloads under one of the five evaluated schemes, and collecting the
// metrics the paper plots — throughput (Kops), request latency, server CPU
// utilization, and server NIC bandwidth.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/stats"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
	"github.com/catfish-db/catfish/internal/workload"
)

// Scheme is one of the systems under evaluation (§V: the two TCP baselines,
// the two FaRM-style RDMA baselines, and Catfish).
type Scheme struct {
	Name    string
	Profile netmodel.Profile
	// TCP selects the socket transport (fast-messaging semantics over the
	// kernel stack).
	TCP bool
	// ServerMode picks polling or event-based request processing.
	ServerMode server.Mode
	// Adaptive enables Algorithm 1; otherwise Forced is used for searches.
	Adaptive bool
	Forced   client.Method
	// MultiIssue enables the §IV-C pipeline during offloaded traversal.
	MultiIssue bool
	// Heartbeats enables the utilization heartbeat (needed by Adaptive).
	Heartbeats bool
	// Fetch enables remote result fetching (DESIGN.md §5.10): the server
	// registers a result mailbox and, with Adaptive, the switch runs the
	// 3-way policy keyed on both the CPU and the TX heartbeat words. A
	// Forced of client.MethodFetch implies the mailbox too.
	Fetch bool
}

// fetchEnabled reports whether the server must register a result mailbox.
func (s Scheme) fetchEnabled() bool { return s.Fetch || s.Forced == client.MethodFetch }

// The paper's five schemes.
var (
	// SchemeTCP1G is the socket baseline on 1 Gbps Ethernet.
	SchemeTCP1G = Scheme{Name: "tcp-1g", Profile: netmodel.Ethernet1G, TCP: true, ServerMode: server.ModeEvent, Forced: client.MethodTCP}
	// SchemeTCP40G is the socket baseline on 40 Gbps Ethernet.
	SchemeTCP40G = Scheme{Name: "tcp-40g", Profile: netmodel.Ethernet40G, TCP: true, ServerMode: server.ModeEvent, Forced: client.MethodTCP}
	// SchemeFastMessaging is the FaRM-style RDMA-Write messaging baseline
	// (polling workers, §III-A).
	SchemeFastMessaging = Scheme{Name: "fastmsg", Profile: netmodel.InfiniBand100G, ServerMode: server.ModePolling, Forced: client.MethodFast}
	// SchemeOffloading is the FaRM-style one-sided-read baseline
	// (single-issue traversal, §III-B).
	SchemeOffloading = Scheme{Name: "offload", Profile: netmodel.InfiniBand100G, ServerMode: server.ModePolling, Forced: client.MethodOffload}
	// SchemeCatfish combines event-based fast messaging, multi-issue
	// offloading, and the adaptive switch (§IV).
	SchemeCatfish = Scheme{Name: "catfish", Profile: netmodel.InfiniBand100G, ServerMode: server.ModeEvent, Adaptive: true, MultiIssue: true, Heartbeats: true}
	// SchemeFastEvent isolates the event-based fast-messaging fix of §IV-B
	// (used in the Fig 7 comparison and ablations).
	SchemeFastEvent = Scheme{Name: "fastmsg-event", Profile: netmodel.InfiniBand100G, ServerMode: server.ModeEvent, Forced: client.MethodFast}
	// SchemeOffloadMulti isolates multi-issue offloading (§IV-C ablation).
	SchemeOffloadMulti = Scheme{Name: "offload-multi", Profile: netmodel.InfiniBand100G, ServerMode: server.ModePolling, Forced: client.MethodOffload, MultiIssue: true}
	// SchemeFetch forces the RFP-style fetch access method for every search
	// (DESIGN.md §5.10): server-executed searches, mailbox delivery, client
	// pulls by one-sided READ.
	SchemeFetch = Scheme{Name: "fetch", Profile: netmodel.InfiniBand100G, ServerMode: server.ModeEvent, Forced: client.MethodFetch, Fetch: true}
	// SchemeCatfish3 is Catfish with the 3-way adaptive switch: fast
	// messaging, offloading, or remote result fetching, keyed on the
	// heartbeat's CPU and TX utilization words.
	SchemeCatfish3 = Scheme{Name: "catfish-3way", Profile: netmodel.InfiniBand100G, ServerMode: server.ModeEvent, Adaptive: true, MultiIssue: true, Heartbeats: true, Fetch: true}
)

// Config describes one experiment run.
type Config struct {
	Scheme Scheme

	// Dataset is bulk-loaded into the tree before the run.
	Dataset []rtree.Entry
	// Workload generates each client's operations.
	Workload *workload.Mix
	// NumClients and RequestsPerClient shape the closed-loop load
	// (paper: 32–256 clients, 10,000 requests each).
	NumClients        int
	RequestsPerClient int
	// BatchSize coalesces up to B consecutive requests per client into one
	// batch container (one ring write / TCP frame, one server latch and
	// charge). 0 runs the unbatched driver loop; 1 issues single-operation
	// batches, which delegate to the unbatched path and reproduce it
	// bit-for-bit (asserted by TestBatchSizeOneEquivalence).
	BatchSize int
	// ClientsPerHost is how many client processes share one machine
	// (paper: up to 32 per node).
	ClientsPerHost int

	// ServerCores and ClientCores are per-machine core counts (paper
	// nodes: 2x14-core Broadwell).
	ServerCores int
	ClientCores int

	// RingSize is the per-direction ring size (paper: 256 KB).
	RingSize int
	// ChunkSize and MaxEntries shape the region/tree (defaults 4096/64).
	ChunkSize  int
	MaxEntries int

	// Adaptive parameters (paper: N=8, T=0.95, Inv=10ms).
	N            int
	T            float64
	HeartbeatInv time.Duration

	// TxT is the TX-utilization threshold of the 3-way switch's fetch
	// branch (0 selects the adaptive package default). Only meaningful on a
	// scheme with Fetch and Adaptive set.
	TxT float64
	// FetchSlots / FetchSlotChunks / FetchInlineMax shape the server's
	// result mailbox on fetch-enabled schemes (0 selects the server
	// defaults: slots = 4×NumClients capped to 256, 64-chunk slots,
	// inline below one response segment).
	FetchSlots      int
	FetchSlotChunks int
	FetchInlineMax  int

	// MultiIssueDepth is the data QP send-queue depth (outstanding reads).
	MultiIssueDepth int

	// CacheRoot enables client-side root caching with heartbeat-versioned
	// invalidation (extension; see client.Config.CacheRoot).
	CacheRoot bool
	// NodeCache is the per-client capacity (in nodes) of the version-
	// validated internal-node cache on the offloading read path; 0 disables
	// it (extension; see client.Config.NodeCache).
	NodeCache int
	// PredSmoothing enables the EWMA utilization predictor (extension;
	// see client.Config.PredSmoothing).
	PredSmoothing float64

	// MergeSpan caps how many physically-adjacent chunk reads one doorbell
	// batch coalesces into a single RDMA read (0 or 1 disables merging;
	// extension, see netmodel.Profile.MergeSpan and DESIGN.md §5.9).
	MergeSpan int
	// Prefetch is the per-client token-bucket capacity for speculative
	// grandchild span reads on the offload path; 0 disables prefetching
	// (extension; see client.Config.Prefetch).
	Prefetch int

	// StagedWrites opens real torn-read windows during server-side node
	// publishes (meaningful for workloads with inserts).
	StagedWrites bool

	// Cost overrides the CPU cost model (zero value selects the default).
	Cost netmodel.CostModel

	// PrebuiltTree reuses an already-loaded tree (and its region) instead
	// of bulk-loading Dataset. Only valid for workloads with no inserts:
	// mutations would leak between runs. The benchmark harness uses this
	// to amortize the 2M-rectangle load across a sweep. Incompatible with
	// Shards > 1 (each K partitions the dataset differently).
	PrebuiltTree *rtree.Tree

	// Shards partitions the dataset across K independent servers (each with
	// its own host, CPU, NIC, and heartbeat stream); clients route through
	// a scatter-gather shard.Router with one adaptive switch per shard.
	// 0 or 1 runs the existing single-server path unchanged.
	Shards int
	// HealthMultiple is the shard-liveness window in heartbeat intervals
	// (shard.DefaultHealthMultiple when 0). Only meaningful with Shards > 1
	// on a heartbeating scheme.
	HealthMultiple int

	// Replicas is the per-shard replication factor: each shard gets
	// Replicas-1 synchronously updated backup servers, and routers promote
	// the best backup when the primary refuses service or its health window
	// lapses. 0 or 1 disables replication, leaving the sharded path
	// bit-for-bit unchanged. Only meaningful with Shards > 1.
	Replicas int
	// FailAfter > 0 injects a primary crash: shard FailShard's primary is
	// killed at that virtual time (heartbeats freeze, requests answer
	// StatusUnavailable). Zero disables fault injection.
	FailAfter time.Duration
	FailShard int
	// VerifyQueries > 0 replays that many random queries through a router
	// after the workload drains and compares each result against a
	// brute-force scan of the dataset plus every acknowledged insert; a
	// mismatch fails the run. This is the zero-lost-acknowledged-writes
	// check of the failover tests.
	VerifyQueries int

	Seed int64
}

// Result aggregates one run's measurements.
type Result struct {
	Scheme    string
	Clients   int
	Ops       uint64
	Makespan  time.Duration
	Kops      float64
	Latency   stats.Summary // search latency
	InsertLat stats.Summary

	ServerCPUUtil   float64 // mean utilization over the run (0..1)
	ServerUsefulCPU float64 // polling mode: fraction doing request work
	// ServerTXGbps is the server NIC's send-engine rate — bytes the server
	// CPU posted. ServerReadTXGbps is the responder-engine rate: READ
	// response data (offload traversals, mailbox pulls) the NIC serves
	// without CPU involvement. Their sum is the port rate.
	ServerTXGbps     float64
	ServerReadTXGbps float64
	ServerRXGbps     float64

	// Client is the unified client counter snapshot aggregated over every
	// client in the run; the flattened counter fields below are derived
	// from it (kept so existing sweeps and reports read unchanged).
	Client telemetry.ClientSnapshot

	OffloadFraction float64
	TornRetries     uint64
	StaleRestarts   uint64
	NodesFetched    uint64

	// FetchFraction is the share of searches served by remote result
	// fetching; FetchSearches/FetchBytes flatten the corresponding Client
	// counters for sweeps (zero on non-fetch schemes).
	FetchFraction float64
	FetchSearches uint64
	FetchBytes    uint64

	// Batches / BatchedOps aggregate the clients' batch containers sent and
	// the operations they carried (zero when BatchSize <= 1).
	Batches    uint64
	BatchedOps uint64

	// OffloadReadsPerSearch is NodesFetched divided by the number of
	// offloaded searches — the mean one-sided chunk reads each offloaded
	// traversal issued (lower is better; the node cache drives it down).
	OffloadReadsPerSearch float64
	// OffloadWQEsPerSearch is ReadWQEs divided by the number of offloaded
	// searches — the mean one-sided work requests actually posted per
	// traversal. With merging and prefetching this drops below the read
	// count: adjacent reads share a WQE (the §5.9 target is < 1.2).
	OffloadWQEsPerSearch float64
	// MergeRatio is logical reads per posted WQE (≥ 1; 1 = no merging).
	MergeRatio float64
	// Prefetch aggregates over all clients (zero when disabled).
	PrefetchIssued uint64
	PrefetchHits   uint64
	PrefetchWaste  uint64
	// Node-cache aggregates over all clients (zero when disabled).
	VersionReads    uint64
	CacheHits       uint64
	CacheVerified   uint64
	CacheMisses     uint64
	CacheEvictions  uint64
	CacheBytesSaved uint64

	ServerStats server.Stats

	// Sharded-run extras (empty/zero for single-server runs). ServerStats,
	// CPU, and NIC figures above aggregate across shards (stats summed,
	// utilizations averaged, bandwidths summed); PerShard keeps the split
	// so sweeps can plot load skew.
	PerShard []ShardResult
	// FanoutPerSearch is the mean number of shards each search scattered to.
	FanoutPerSearch float64
	// SkippedSearches counts searches whose every target shard was
	// unhealthy; UnhealthyWrites counts writes rejected for a dead owner.
	SkippedSearches uint64
	UnhealthyWrites uint64
	// Promotions counts backup promotions routers performed (failovers);
	// BackupReads the sub-searches a backup replica answered while its
	// primary refused service; ReplRecords the replicated mutations the
	// backups applied. All zero at Replicas <= 1.
	Promotions  uint64
	BackupReads uint64
	ReplRecords uint64
}

// ShardResult is one shard's share of a sharded run.
type ShardResult struct {
	Shard   int
	Entries int    // dataset entries owned at load time
	Ops     uint64 // server-side searches+inserts+deletes executed
	// Client aggregates the per-shard client counters of every router's
	// connection to this shard.
	Client telemetry.ClientSnapshot
	// OffloadFraction is the fraction of this shard's sub-searches that ran
	// as client-side traversals — per-shard Algorithm 1 state made visible.
	OffloadFraction float64
	CPUUtil         float64
	TXGbps          float64
	ReadTXGbps      float64
	RXGbps          float64
}

// applyClientSnapshot stores the aggregated client counters on the result
// and derives the legacy flattened fields from them.
func (r *Result) applyClientSnapshot(agg telemetry.ClientSnapshot) {
	r.Client = agg
	r.OffloadFraction = agg.OffloadFraction()
	r.TornRetries = agg.TornRetries
	r.StaleRestarts = agg.StaleRestarts
	r.NodesFetched = agg.NodesFetched
	r.Batches = agg.BatchesSent
	r.BatchedOps = agg.BatchedOps
	r.FetchFraction = agg.FetchFraction()
	r.FetchSearches = agg.FetchSearches
	r.FetchBytes = agg.FetchBytes
	r.VersionReads = agg.VersionReads
	r.CacheHits = agg.CacheHits
	r.CacheVerified = agg.CacheVerifiedHits
	r.CacheMisses = agg.CacheMisses
	r.CacheEvictions = agg.CacheEvictions
	r.CacheBytesSaved = agg.CacheBytesSaved
	r.PrefetchIssued = agg.PrefetchIssued
	r.PrefetchHits = agg.PrefetchHits
	r.PrefetchWaste = agg.PrefetchWaste
	if agg.OffloadSearches > 0 {
		r.OffloadReadsPerSearch = float64(agg.NodesFetched) / float64(agg.OffloadSearches)
		r.OffloadWQEsPerSearch = float64(agg.ReadWQEs) / float64(agg.OffloadSearches)
	}
	if agg.ReadWQEs > 0 {
		r.MergeRatio = float64(agg.NodesFetched+agg.VersionReads+agg.PrefetchIssued) / float64(agg.ReadWQEs)
	}
}

func (c *Config) applyDefaults() {
	if c.NumClients == 0 {
		c.NumClients = 16
	}
	if c.RequestsPerClient == 0 {
		c.RequestsPerClient = 1000
	}
	if c.ClientsPerHost == 0 {
		c.ClientsPerHost = 32
	}
	if c.ServerCores == 0 {
		c.ServerCores = 28
	}
	if c.ClientCores == 0 {
		c.ClientCores = 28
	}
	if c.RingSize == 0 {
		c.RingSize = 256 << 10
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 4096
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 64
	}
	if c.N == 0 {
		c.N = 8
	}
	if c.T == 0 {
		c.T = 0.95
	}
	if c.HeartbeatInv == 0 {
		c.HeartbeatInv = 10 * time.Millisecond
	}
	if c.MultiIssueDepth == 0 {
		c.MultiIssueDepth = 16
	}
	if c.Cost == (netmodel.CostModel{}) {
		c.Cost = netmodel.DefaultCostModel()
	}
	if c.Scheme.fetchEnabled() && c.FetchSlots == 0 {
		// Enough slots that a full client population in fetch mode rarely
		// exhausts the mailbox, without registering an unbounded region.
		c.FetchSlots = 4 * c.NumClients
		if c.FetchSlots > 256 {
			c.FetchSlots = 256
		}
	}
}

// regionChunks sizes the region for the dataset plus insert headroom.
func (c *Config) regionChunks() int {
	items := len(c.Dataset) + c.NumClients*c.RequestsPerClient/4
	perLeaf := c.MaxEntries / 2
	if perLeaf < 1 {
		perLeaf = 1
	}
	nodes := items/perLeaf + items/(perLeaf*perLeaf) + 1024
	return nodes * 2
}

// Run executes the experiment and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	if cfg.Workload == nil {
		return Result{}, errors.New("cluster: Workload is required")
	}
	// K>1 runs the sharded deployment; K<=1 stays on this single-server
	// path, bit for bit.
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}

	e := sim.New(cfg.Seed)
	// Scheme is held by value, so widening the merge span here never leaks
	// into the shared scheme definitions.
	cfg.Scheme.Profile.MergeSpan = cfg.MergeSpan
	net := fabric.NewNetwork(e, cfg.Scheme.Profile)

	serverCPU := sim.NewCPU(e, cfg.ServerCores)
	serverHost := net.NewHost("server", serverCPU)

	var tree *rtree.Tree
	if cfg.PrebuiltTree != nil {
		tree = cfg.PrebuiltTree
		// The previous run's server may have left its staged publisher
		// installed; restore the default before re-serving.
		tree.SetPublisher(nil)
	} else {
		reg, err := region.New(cfg.regionChunks(), cfg.ChunkSize)
		if err != nil {
			return Result{}, err
		}
		tree, err = rtree.New(reg, rtree.Config{MaxEntries: cfg.MaxEntries})
		if err != nil {
			return Result{}, err
		}
		if len(cfg.Dataset) > 0 {
			data := append([]rtree.Entry(nil), cfg.Dataset...)
			if err := tree.BulkLoad(data, 0); err != nil {
				return Result{}, fmt.Errorf("cluster: bulk load: %w", err)
			}
		}
	}

	srvCfg := server.Config{
		Engine:           e,
		Host:             serverHost,
		Tree:             tree,
		Cost:             cfg.Cost,
		Mode:             cfg.Scheme.ServerMode,
		RingSize:         cfg.RingSize,
		StagedNodeWrites: cfg.StagedWrites,
	}
	if cfg.Scheme.Heartbeats {
		srvCfg.HeartbeatInterval = cfg.HeartbeatInv
	}
	if cfg.Scheme.fetchEnabled() {
		srvCfg.FetchSlots = cfg.FetchSlots
		srvCfg.FetchSlotChunks = cfg.FetchSlotChunks
		srvCfg.FetchInlineMax = cfg.FetchInlineMax
	}
	if cfg.Scheme.ServerMode == server.ModePolling {
		srvCfg.PollCPU = sim.NewPollCPU(e, cfg.ServerCores, cfg.Cost.PollSlice)
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return Result{}, err
	}

	// Client hosts: ClientsPerHost clients share each machine.
	numHosts := (cfg.NumClients + cfg.ClientsPerHost - 1) / cfg.ClientsPerHost
	hosts := make([]*fabric.Host, numHosts)
	for i := range hosts {
		hosts[i] = net.NewHost(fmt.Sprintf("client-host-%d", i), sim.NewCPU(e, cfg.ClientCores))
	}

	clients := make([]*client.Client, cfg.NumClients)
	for i := range clients {
		host := hosts[i/cfg.ClientsPerHost]
		ccfg := client.Config{
			Engine:        e,
			Host:          host,
			Cost:          cfg.Cost,
			Adaptive:      cfg.Scheme.Adaptive,
			Forced:        cfg.Scheme.Forced,
			MultiIssue:    cfg.Scheme.MultiIssue,
			N:             cfg.N,
			T:             cfg.T,
			HeartbeatInv:  cfg.HeartbeatInv,
			CacheRoot:     cfg.CacheRoot,
			NodeCache:     cfg.NodeCache,
			PredSmoothing: cfg.PredSmoothing,
			Prefetch:      cfg.Prefetch,
			Fetch:         cfg.Scheme.fetchEnabled(),
			TxT:           cfg.TxT,
		}
		if cfg.Scheme.TCP {
			ep, err := srv.ConnectTCP(host, net)
			if err != nil {
				return Result{}, err
			}
			ccfg.Endpoint = ep
		} else {
			ep, err := srv.Connect(host, net, cfg.MultiIssueDepth)
			if err != nil {
				return Result{}, err
			}
			ccfg.Endpoint = ep
		}
		c, err := client.New(ccfg)
		if err != nil {
			return Result{}, err
		}
		clients[i] = c
	}

	searchLat := stats.NewHistogram()
	insertLat := stats.NewHistogram()
	var ops uint64
	var makespan time.Duration
	var runErr error
	wg := sim.NewWaitGroup(e)

	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		e.Spawn(fmt.Sprintf("driver-%d", i), func(p *sim.Proc) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			// Re-seed the per-client workload stream by cloning the mix.
			mix := *cfg.Workload
			if cfg.BatchSize >= 1 {
				batch := make([]client.BatchOp, 0, cfg.BatchSize)
				results := make([]client.BatchResult, 0, cfg.BatchSize)
				for r := 0; r < cfg.RequestsPerClient; {
					batch = batch[:0]
					for len(batch) < cfg.BatchSize && r < cfg.RequestsPerClient {
						op := mix.Next(rng)
						if op.Type == workload.OpInsert {
							batch = append(batch, client.BatchOp{
								Type: wire.MsgInsert, Rect: op.Rect, Ref: op.Ref + uint64(i)<<32})
						} else {
							batch = append(batch, client.BatchOp{Type: wire.MsgSearch, Rect: op.Rect})
						}
						r++
					}
					start := p.Now()
					results = c.ExecBatch(p, batch, results)
					elapsed := p.Now() - start
					// Batched ops complete together; each observes the
					// batch's latency.
					for j := range results {
						if err := results[j].Err; err != nil {
							runErr = fmt.Errorf("client %d batched op: %w", i, err)
							return
						}
						if batch[j].Type == wire.MsgInsert {
							insertLat.Record(elapsed)
						} else {
							searchLat.Record(elapsed)
						}
					}
					ops += uint64(len(batch))
					if p.Now() > makespan {
						makespan = p.Now()
					}
				}
				return
			}
			for r := 0; r < cfg.RequestsPerClient; r++ {
				op := mix.Next(rng)
				start := p.Now()
				switch op.Type {
				case workload.OpInsert:
					if err := c.Insert(p, op.Rect, op.Ref+uint64(i)<<32); err != nil {
						runErr = fmt.Errorf("client %d insert: %w", i, err)
						return
					}
					insertLat.Record(p.Now() - start)
				default:
					if _, _, err := c.Search(p, op.Rect); err != nil {
						runErr = fmt.Errorf("client %d search: %w", i, err)
						return
					}
					searchLat.Record(p.Now() - start)
				}
				ops++
				if p.Now() > makespan {
					makespan = p.Now()
				}
			}
		})
	}
	e.Spawn("coordinator", func(p *sim.Proc) {
		wg.Wait(p)
		p.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		return Result{}, err
	}
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{
		Scheme:      cfg.Scheme.Name,
		Clients:     cfg.NumClients,
		Ops:         ops,
		Makespan:    makespan,
		Latency:     searchLat.Summarize(),
		InsertLat:   insertLat.Summarize(),
		ServerStats: srv.Stats(),
	}
	if makespan > 0 {
		res.Kops = float64(ops) / makespan.Seconds() / 1e3
		res.ServerTXGbps = serverHost.TXGbps(makespan)
		res.ServerReadTXGbps = serverHost.ReadTXGbps(makespan)
		res.ServerRXGbps = serverHost.RXGbps(makespan)
	}
	if cfg.Scheme.ServerMode == server.ModePolling {
		res.ServerCPUUtil = 1.0
		res.ServerUsefulCPU = srvCfg.PollCPU.UsefulUtilizationTotal()
	} else {
		res.ServerCPUUtil = serverCPU.UtilizationTotal()
		res.ServerUsefulCPU = res.ServerCPUUtil
	}
	var agg telemetry.ClientSnapshot
	for _, c := range clients {
		agg = agg.Add(c.Stats())
	}
	res.applyClientSnapshot(agg)
	return res, nil
}
