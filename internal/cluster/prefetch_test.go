package cluster

import (
	"reflect"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/workload"
)

// TestMergeSpanOneEquivalence: Prefetch off with MergeSpan 1 must reproduce
// the unconfigured baseline bit-for-bit — same makespan, same latency
// distribution, same counters — across the offload-heavy ring scheme, the
// full adaptive scheme, the TCP transport, and a sharded deployment. Span 1
// disables coalescing in the fabric and skips the client's pre-post sort,
// so the read path is untouched.
func TestMergeSpanOneEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{SchemeOffloadMulti, SchemeCatfish, SchemeTCP40G} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			base, err := Run(smallConfig(scheme, 4))
			if err != nil {
				t.Fatal(err)
			}
			cfg := smallConfig(scheme, 4)
			cfg.MergeSpan = 1
			cfg.Prefetch = 0
			one, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, one) {
				t.Errorf("merge span 1 diverges from baseline:\nbase: %+v\nspan1: %+v", base, one)
			}
		})
	}
	t.Run("sharded", func(t *testing.T) {
		mk := func() Config {
			cfg := smallConfig(SchemeCatfish, 4)
			cfg.Shards = 2
			return cfg
		}
		base, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		cfg := mk()
		cfg.MergeSpan = 1
		one, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, one) {
			t.Error("sharded merge span 1 diverges from baseline")
		}
	})
}

// TestPrefetchAndMergeReduceWQEs: the full §5.9 configuration posts fewer
// WQEs per offloaded search than the plain offload run, speculation is
// visible in the counters, and the merge ratio exceeds one. The workload is
// scan-style (queries wide enough to walk whole leaf runs) with a node
// cache whose lease is far shorter than a traversal, so every cached
// internal node revalidates — the regime hinted speculation exists for:
// the demoted copy's entries say exactly which preorder-adjacent leaves
// the next wave will demand, and reading them alongside the version read
// skips a full pipeline level while the merge span folds the run into a
// handful of WQEs.
func TestPrefetchAndMergeReduceWQEs(t *testing.T) {
	mk := func() Config {
		cfg := smallConfig(SchemeOffloadMulti, 8)
		cfg.Workload = workload.NewMix(workload.UniformScale{Scale: 0.05},
			workload.SkewedInserts{Edge: 0.0001}, 0, 1<<32)
		cfg.RequestsPerClient = 100
		cfg.NodeCache = 256
		cfg.HeartbeatInv = 50 * time.Microsecond
		return cfg
	}
	base, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.MergeSpan = 8
	cfg.Prefetch = 64
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != base.Ops {
		t.Fatalf("ops diverged: %d vs %d", res.Ops, base.Ops)
	}
	if res.PrefetchIssued == 0 {
		t.Error("no speculative reads issued")
	}
	if res.OffloadWQEsPerSearch >= base.OffloadWQEsPerSearch {
		t.Errorf("WQEs/search %.3f did not improve on baseline %.3f",
			res.OffloadWQEsPerSearch, base.OffloadWQEsPerSearch)
	}
	if res.MergeRatio <= 1 {
		t.Errorf("merge ratio = %.3f, want > 1", res.MergeRatio)
	}
	t.Logf("wqes/search %.3f -> %.3f, merge ratio %.2f, prefetch issued=%d hits=%d waste=%d",
		base.OffloadWQEsPerSearch, res.OffloadWQEsPerSearch, res.MergeRatio,
		res.PrefetchIssued, res.PrefetchHits, res.PrefetchWaste)
}
