package region

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Mailbox carves a registered region into fixed-size result slots for the
// RFP-style fetch access method (PAPERS.md, arXiv:1512.07805): the server
// executes a search, writes the result items into a granted slot, and
// replies with a tiny (slot, length, version) descriptor; the client pulls
// the slot's chunks with one-sided reads and releases the slot with an ack.
//
// Each slot is a run of physically consecutive chunks, so a pull is a
// single merged span read (fabric.ReadBatch/MergeSpan on the simulated
// fabric, MsgReadMailbox over TCP) against the same seqlocked chunk format
// as the tree itself. The first chunk's payload begins with a
// MailboxHeaderSize-byte slot header:
//
//	[0:8)  seq   — the slot's write sequence number (descriptor "version")
//	[8:12) len   — payload length in bytes
//	[12:16)      — reserved
//
// followed by the payload, which continues across the payloads of the
// remaining chunks of the slot. Per-chunk seqlock versions protect each
// chunk against torn reads; the header seq protects the *slot* against a
// stale read (a pull that raced a reuse of the slot observes a different
// seq than its descriptor promised and retries).
//
// Grant/Reclaim are safe for concurrent use. Writes to distinct slots may
// proceed concurrently (distinct chunks); a slot is written only between
// Grant and Reclaim, so no two writers ever share a chunk.
type Mailbox struct {
	reg        *Region
	slots      int
	slotChunks int
	base       int // first chunk id of slot 0; slot i starts at base+i*slotChunks

	mu      sync.Mutex
	free    []int    // free slot indices (LIFO)
	seq     []uint64 // current write seq per slot, 0 = never written
	nextSeq uint64

	granted   uint64 // total successful grants
	exhausted uint64 // grants denied for want of a free slot
}

// MailboxHeaderSize is the size of the slot header preceding the payload
// in the first chunk of each slot.
const MailboxHeaderSize = 16

// ErrStaleSlot reports that a pulled slot's header does not match the
// descriptor: the slot was reused (or not yet visibly written) when read.
var ErrStaleSlot = errors.New("region: mailbox slot stale")

// SlotRef locates a written result: the descriptor the server returns to
// the client in place of the result itself.
type SlotRef struct {
	Slot   int    // slot index
	Chunks int    // chunks the client must read (header + payload)
	Bytes  int    // payload length
	Seq    uint64 // slot write sequence; client verifies after the pull
}

// NewMailbox allocates slots×slotChunks chunks from reg and divides them
// into slots of slotChunks physically consecutive chunks each. reg must be
// freshly created for the mailbox (no prior allocations), so that slot 0
// starts at chunk 0 and clients can locate slot i at chunk i×slotChunks
// from the descriptor alone.
func NewMailbox(reg *Region, slots, slotChunks int) (*Mailbox, error) {
	if slots <= 0 || slotChunks <= 0 {
		return nil, fmt.Errorf("region: mailbox needs positive geometry (slots=%d slotChunks=%d)", slots, slotChunks)
	}
	if reg.Allocated() != 0 {
		return nil, fmt.Errorf("region: mailbox region must be fresh (has %d allocated chunks)", reg.Allocated())
	}
	need := slots * slotChunks
	if need > reg.NumChunks() {
		return nil, fmt.Errorf("region: mailbox needs %d chunks, region has %d", need, reg.NumChunks())
	}
	reg.SortFreeList()
	base := -1
	for i := 0; i < need; i++ {
		id, err := reg.Alloc()
		if err != nil {
			return nil, fmt.Errorf("region: mailbox alloc: %w", err)
		}
		if base < 0 {
			base = id
		} else if id != base+i {
			return nil, fmt.Errorf("region: mailbox chunks not contiguous (%d after %d)", id, base+i-1)
		}
	}
	if base != 0 {
		return nil, fmt.Errorf("region: mailbox base chunk %d, want 0", base)
	}
	m := &Mailbox{
		reg:        reg,
		slots:      slots,
		slotChunks: slotChunks,
		base:       base,
		free:       make([]int, 0, slots),
		seq:        make([]uint64, slots),
	}
	for i := slots - 1; i >= 0; i-- {
		m.free = append(m.free, i)
	}
	return m, nil
}

// Slots returns the number of slots.
func (m *Mailbox) Slots() int { return m.slots }

// SlotChunks returns the chunks per slot.
func (m *Mailbox) SlotChunks() int { return m.slotChunks }

// Capacity returns the payload bytes one slot can hold.
func (m *Mailbox) Capacity() int {
	return m.slots2bytes() - MailboxHeaderSize
}

func (m *Mailbox) slots2bytes() int { return m.slotChunks * m.reg.PayloadSize() }

// Grant reserves a free slot for a result write. It returns false when
// every slot is in flight; the caller falls back to inline delivery.
func (m *Mailbox) Grant() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		m.exhausted++
		return 0, false
	}
	slot := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.granted++
	return slot, true
}

// Cancel returns a granted slot without writing it (the server chose the
// inline fallback after all).
func (m *Mailbox) Cancel(slot int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.free = append(m.free, slot)
}

// WriteResult writes payload into the granted slot under a fresh sequence
// number and returns the descriptor to send to the client. Concurrent
// calls on distinct slots are safe.
func (m *Mailbox) WriteResult(slot int, payload []byte) (SlotRef, error) {
	if slot < 0 || slot >= m.slots {
		return SlotRef{}, fmt.Errorf("region: mailbox slot %d out of range", slot)
	}
	total := MailboxHeaderSize + len(payload)
	if total > m.slots2bytes() {
		return SlotRef{}, fmt.Errorf("region: result %d bytes exceeds slot capacity %d", len(payload), m.Capacity())
	}
	m.mu.Lock()
	m.nextSeq++
	seq := m.nextSeq
	m.seq[slot] = seq
	m.mu.Unlock()

	per := m.reg.PayloadSize()
	var hdr [MailboxHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))

	chunks := (total + per - 1) / per
	first := m.base + slot*m.slotChunks
	// First chunk: header + leading payload bytes.
	n := per - MailboxHeaderSize
	if n > len(payload) {
		n = len(payload)
	}
	buf := make([]byte, MailboxHeaderSize+n)
	copy(buf, hdr[:])
	copy(buf[MailboxHeaderSize:], payload[:n])
	if err := m.reg.WriteChunkPrefix(first, buf); err != nil {
		return SlotRef{}, err
	}
	// Remaining chunks: raw payload continuation.
	off := n
	for c := 1; c < chunks; c++ {
		n = per
		if n > len(payload)-off {
			n = len(payload) - off
		}
		if err := m.reg.WriteChunkPrefix(first+c, payload[off:off+n]); err != nil {
			return SlotRef{}, err
		}
		off += n
	}
	return SlotRef{Slot: slot, Chunks: chunks, Bytes: len(payload), Seq: seq}, nil
}

// Reclaim frees a slot after the client's ack. The ack echoes the
// descriptor's seq; a stale ack (slot already force-reclaimed and reused)
// is ignored. Returns whether the slot was freed.
func (m *Mailbox) Reclaim(slot int, seq uint64) bool {
	if slot < 0 || slot >= m.slots {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seq[slot] != seq {
		return false
	}
	m.seq[slot] = 0
	m.free = append(m.free, slot)
	return true
}

// Occupancy returns the number of slots currently in flight and the total.
func (m *Mailbox) Occupancy() (used, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slots - len(m.free), m.slots
}

// Granted returns the number of successful grants so far.
func (m *Mailbox) Granted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.granted
}

// Exhausted returns the number of grants denied for want of a free slot.
func (m *Mailbox) Exhausted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exhausted
}

// MailboxChunks returns how many chunks of a slot the client must read to
// cover a payload of wantBytes, given the region's per-chunk payload size.
func MailboxChunks(wantBytes, payloadSize int) int {
	total := MailboxHeaderSize + wantBytes
	return (total + payloadSize - 1) / payloadSize
}

// AssembleMailbox validates and assembles a pulled slot from its decoded
// per-chunk payloads (each already version-checked with DecodeChunk). It
// verifies the slot header against the descriptor — seq must match wantSeq
// and the recorded length must match wantBytes — and returns the payload.
// A mismatch returns ErrStaleSlot: the pull raced a reuse of the slot and
// must be retried against a fresh descriptor or fall back.
func AssembleMailbox(payloads [][]byte, wantSeq uint64, wantBytes int) ([]byte, error) {
	if len(payloads) == 0 || len(payloads[0]) < MailboxHeaderSize {
		return nil, fmt.Errorf("%w: missing slot header", ErrStaleSlot)
	}
	hdr := payloads[0]
	seq := binary.LittleEndian.Uint64(hdr[0:])
	length := int(binary.LittleEndian.Uint32(hdr[8:]))
	if seq != wantSeq || length != wantBytes {
		return nil, fmt.Errorf("%w: header (seq=%d len=%d) vs descriptor (seq=%d len=%d)",
			ErrStaleSlot, seq, length, wantSeq, wantBytes)
	}
	out := make([]byte, 0, wantBytes)
	out = append(out, hdr[MailboxHeaderSize:]...)
	for _, p := range payloads[1:] {
		out = append(out, p...)
	}
	if len(out) < wantBytes {
		return nil, fmt.Errorf("%w: assembled %d of %d bytes", ErrStaleSlot, len(out), wantBytes)
	}
	return out[:wantBytes], nil
}
