package region

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func mustRegion(t *testing.T, nchunks, chunkSize int) *Region {
	t.Helper()
	r, err := New(nchunks, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name             string
		nchunks, chunkSz int
		wantErr          bool
	}{
		{"ok", 4, 256, false},
		{"zeroChunks", 0, 256, true},
		{"zeroSize", 4, 0, true},
		{"notMultiple", 4, 100, true},
		{"single", 1, CacheLine, false},
	}
	for _, tt := range tests {
		_, err := New(tt.nchunks, tt.chunkSz)
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: New(%d,%d) err = %v", tt.name, tt.nchunks, tt.chunkSz, err)
		}
	}
}

func TestGeometry(t *testing.T) {
	r := mustRegion(t, 8, 4096)
	if r.ChunkSize() != 4096 || r.NumChunks() != 8 {
		t.Errorf("geometry %d x %d", r.NumChunks(), r.ChunkSize())
	}
	if r.PayloadSize() != 64*LineData {
		t.Errorf("payload size = %d, want %d", r.PayloadSize(), 64*LineData)
	}
	if r.Size() != 8*4096 {
		t.Errorf("size = %d", r.Size())
	}
}

func TestAllocFree(t *testing.T) {
	r := mustRegion(t, 3, CacheLine)
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := r.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if r.Allocated() != 3 {
		t.Errorf("allocated = %d", r.Allocated())
	}
	if _, err := r.Alloc(); !errors.Is(err, ErrOutOfChunks) {
		t.Errorf("exhausted Alloc err = %v", err)
	}
	if err := r.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(ids[1]); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free err = %v", err)
	}
	if err := r.Free(99); !errors.Is(err, ErrBadChunk) {
		t.Errorf("bad id free err = %v", err)
	}
	id, err := r.Alloc()
	if err != nil || id != ids[1] {
		t.Errorf("realloc = %d, %v; want %d", id, err, ids[1])
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := mustRegion(t, 4, 256)
	payload := make([]byte, r.PayloadSize())
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)
	if err := r.WriteChunk(2, payload); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.ChunkSize())
	got, ver, err := r.ReadChunk(2, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Errorf("version = %d, want 2", ver)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload mismatch after round trip")
	}
}

func TestWriteShortPayloadZeroFills(t *testing.T) {
	r := mustRegion(t, 1, 256)
	if err := r.WriteChunk(0, bytes.Repeat([]byte{0xFF}, r.PayloadSize())); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChunk(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.ChunkSize())
	got, _, err := r.ReadChunk(0, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Error("prefix not written")
	}
	for i := 3; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %x, want zero-fill", i, got[i])
		}
	}
}

func TestWriteErrors(t *testing.T) {
	r := mustRegion(t, 2, CacheLine)
	if err := r.WriteChunk(5, nil); !errors.Is(err, ErrBadChunk) {
		t.Errorf("bad id err = %v", err)
	}
	big := make([]byte, r.PayloadSize()+1)
	if err := r.WriteChunk(0, big); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("oversize err = %v", err)
	}
	if _, err := r.BeginWrite(-1, nil); !errors.Is(err, ErrBadChunk) {
		t.Errorf("staged bad id err = %v", err)
	}
	if _, err := r.BeginWrite(0, big); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("staged oversize err = %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	r := mustRegion(t, 2, 256)
	raw := make([]byte, 256)
	if err := r.ReadChunkRaw(9, raw); !errors.Is(err, ErrBadChunk) {
		t.Errorf("bad id err = %v", err)
	}
	if err := r.ReadChunkRaw(0, raw[:100]); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("size mismatch err = %v", err)
	}
	if _, _, err := DecodeChunk(nil, nil); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("empty decode err = %v", err)
	}
	if _, _, err := DecodeChunk(make([]byte, 100), nil); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("ragged decode err = %v", err)
	}
}

func TestVersionsBumpByTwo(t *testing.T) {
	r := mustRegion(t, 1, 128)
	for want := uint64(2); want <= 8; want += 2 {
		if err := r.WriteChunk(0, []byte{byte(want)}); err != nil {
			t.Fatal(err)
		}
		v, err := r.Version(0)
		if err != nil || v != want {
			t.Fatalf("version = %d, %v; want %d", v, err, want)
		}
	}
	if _, err := r.Version(77); !errors.Is(err, ErrBadChunk) {
		t.Errorf("bad id Version err = %v", err)
	}
}

func TestStagedWriteTornThenConsistent(t *testing.T) {
	r := mustRegion(t, 1, 256) // 4 cachelines
	if err := r.WriteChunk(0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	w, err := r.BeginWrite(0, []byte("newpayload"))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.ChunkSize())
	if err := r.ReadChunkRaw(0, raw); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeChunk(raw, nil); !errors.Is(err, ErrTornRead) {
		t.Errorf("mid-write read err = %v, want ErrTornRead", err)
	}
	w.Finish()
	w.Finish() // idempotent
	got, ver, err := r.ReadChunk(0, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 4 {
		t.Errorf("final version = %d, want 4", ver)
	}
	if !bytes.HasPrefix(got, []byte("newpayload")) {
		t.Error("payload not fully published after Finish")
	}
}

func TestDecodeRejectsOddVersion(t *testing.T) {
	raw := make([]byte, CacheLine)
	raw[0] = 3 // odd version: write in progress
	if _, _, err := DecodeChunk(raw, nil); !errors.Is(err, ErrTornRead) {
		t.Errorf("odd-version decode err = %v", err)
	}
}

func TestDecodeReusesDst(t *testing.T) {
	r := mustRegion(t, 1, 128)
	if err := r.WriteChunk(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.ChunkSize())
	if err := r.ReadChunkRaw(0, raw); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 4096)
	got, _, err := DecodeChunk(raw, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("DecodeChunk did not reuse dst capacity")
	}
}

// Property: any write/read sequence round-trips payloads exactly.
func TestPropRoundTrip(t *testing.T) {
	r := mustRegion(t, 16, 512)
	rng := rand.New(rand.NewSource(9))
	raw := make([]byte, r.ChunkSize())
	f := func() bool {
		id := rng.Intn(16)
		n := rng.Intn(r.PayloadSize() + 1)
		payload := make([]byte, n)
		rng.Read(payload)
		if err := r.WriteChunk(id, payload); err != nil {
			return false
		}
		got, _, err := r.ReadChunk(id, raw, nil)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:n], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Under real goroutine concurrency, a reader must never decode a chunk whose
// payload mixes two writes: every successful decode sees one of the written
// generations intact. Run with -race to also prove memory safety.
func TestConcurrentReadersNeverSeeMixedPayload(t *testing.T) {
	r := mustRegion(t, 1, 512)
	const writes = 2000
	gen := func(g byte) []byte {
		return bytes.Repeat([]byte{g}, r.PayloadSize())
	}
	if err := r.WriteChunk(0, gen(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw := make([]byte, r.ChunkSize())
			var payload []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				payload, _, err = r.ReadChunk(0, raw, payload)
				if errors.Is(err, ErrTornRead) {
					continue
				}
				if err != nil {
					errCh <- err
					return
				}
				first := payload[0]
				for _, b := range payload {
					if b != first {
						errCh <- errors.New("mixed-generation payload decoded as consistent")
						return
					}
				}
			}
		}()
	}
	for g := 1; g <= writes; g++ {
		if err := r.WriteChunk(0, gen(byte(g%251))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func BenchmarkWriteChunk(b *testing.B) {
	r, err := New(64, 4096)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, r.PayloadSize())
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteChunk(i%64, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadChunk(b *testing.B) {
	r, err := New(64, 4096)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, r.PayloadSize())
	for i := 0; i < 64; i++ {
		if err := r.WriteChunk(i, payload); err != nil {
			b.Fatal(err)
		}
	}
	raw := make([]byte, r.ChunkSize())
	var out []byte
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = r.ReadChunk(i%64, raw, out)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteChunkPrefix(t *testing.T) {
	r := mustRegion(t, 1, 256)
	full := bytes.Repeat([]byte{0xEE}, r.PayloadSize())
	if err := r.WriteChunk(0, full); err != nil {
		t.Fatal(err)
	}
	// Prefix write covers only the first line's payload; the tail keeps
	// stale bytes but all versions must agree.
	if err := r.WriteChunkPrefix(0, bytes.Repeat([]byte{0x11}, LineData)); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.ChunkSize())
	got, ver, err := r.ReadChunk(0, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 4 {
		t.Errorf("version = %d, want 4", ver)
	}
	for i := 0; i < LineData; i++ {
		if got[i] != 0x11 {
			t.Fatalf("prefix byte %d = %x", i, got[i])
		}
	}
	for i := LineData; i < len(got); i++ {
		if got[i] != 0xEE {
			t.Fatalf("stale tail byte %d = %x, want 0xEE", i, got[i])
		}
	}
	if err := r.WriteChunkPrefix(7, nil); !errors.Is(err, ErrBadChunk) {
		t.Errorf("bad id err = %v", err)
	}
	if err := r.WriteChunkPrefix(0, make([]byte, r.PayloadSize()+1)); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("oversize err = %v", err)
	}
}
