// Package region implements the server's RDMA-registered memory region.
//
// Following the paper's memory-management design (§III-B), the region is a
// single flat buffer, registered with the NIC once, and divided into
// fixed-size chunks — one chunk per R-tree node. A client addresses any node
// as (region base, chunk ID × chunk size) with a one-sided RDMA Read.
//
// Concurrency between server-side writers (CPU) and client-side readers
// (RDMA Read, which bypasses the server CPU entirely) uses the FaRM-style
// version-number scheme the paper adopts: every 64-byte cacheline carries an
// 8-byte version in its first word, leaving 56 bytes of payload. A writer
// bumps the version of every cacheline it rewrites; a reader accepts a chunk
// only when all cacheline versions agree. On hardware this is sound because
// both RDMA Reads and CPU writes are cacheline-atomic. Go cannot express
// cacheline atomicity, so this package backs the region with a []uint64
// accessed via sync/atomic and gives each cacheline seqlock semantics
// (odd version = write in progress); the observable property — a reader
// either sees a fully consistent chunk or detects the tear and retries — is
// identical, and it holds both in the single-threaded simulation and under
// real goroutine concurrency in the rpcnet mode.
//
// To exercise the retry path deterministically in simulation, writers can
// stage a write across a virtual-time window (BeginWrite/Finish): the first
// half of the cachelines is published at the start of the window and the
// rest at the end, so an RDMA Read landing inside the window observes
// genuinely mixed versions.
package region

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

const (
	// CacheLine is the coherence unit: RDMA Reads and CPU writes are atomic
	// at this granularity on real hardware.
	CacheLine = 64
	// VersionSize is the per-cacheline version word prepended to payload.
	VersionSize = 8
	// LineData is the payload capacity of one cacheline.
	LineData = CacheLine - VersionSize

	wordsPerLine   = CacheLine / 8
	payloadWords   = wordsPerLine - 1
	stableAttempts = 1 << 16
)

// Errors returned by region operations.
var (
	ErrTornRead     = errors.New("region: torn read: cacheline versions differ")
	ErrBadChunk     = errors.New("region: chunk id out of range")
	ErrPayloadSize  = errors.New("region: payload exceeds chunk capacity")
	ErrOutOfChunks  = errors.New("region: no free chunks")
	ErrDoubleFree   = errors.New("region: chunk already free")
	ErrSizeMismatch = errors.New("region: buffer size mismatch")
)

// Region is a registered memory region divided into equally sized chunks.
// Raw reads may run concurrently with writes from other goroutines (readers
// validate versions and retry), but writers to the same chunk must be
// externally serialized — exactly the guarantee the server's tree latch
// provides. The chunk allocator must likewise be serialized by the caller.
type Region struct {
	words     []uint64
	chunkSize int
	lines     int // cachelines per chunk
	nchunks   int

	freeHead int32
	freeNext []int32
	allocs   int

	// dirty, when attached via Track, records every chunk mutated through
	// the write paths so a replication stream can coalesce the touched
	// chunks into merged spans (DESIGN.md §5.11).
	dirty *DirtyTracker
}

// Track attaches a DirtyTracker that is marked on every chunk write
// (WriteChunk, WriteChunkPrefix, and staged writes). Nil detaches. Attach
// before the region sees writes; the tracker itself is safe for concurrent
// marking.
func (r *Region) Track(t *DirtyTracker) { r.dirty = t }

// New returns a region with nchunks chunks of chunkSize bytes each.
// chunkSize must be a positive multiple of CacheLine.
func New(nchunks, chunkSize int) (*Region, error) {
	if nchunks <= 0 || chunkSize <= 0 || chunkSize%CacheLine != 0 {
		return nil, fmt.Errorf("region: invalid geometry %d x %d", nchunks, chunkSize)
	}
	r := &Region{
		words:     make([]uint64, nchunks*chunkSize/8),
		chunkSize: chunkSize,
		lines:     chunkSize / CacheLine,
		nchunks:   nchunks,
		freeNext:  make([]int32, nchunks),
	}
	for i := 0; i < nchunks-1; i++ {
		r.freeNext[i] = int32(i + 1)
	}
	r.freeNext[nchunks-1] = -1
	r.freeHead = 0
	return r, nil
}

// ChunkSize returns the size in bytes of one chunk (versions included).
func (r *Region) ChunkSize() int { return r.chunkSize }

// NumChunks returns the number of chunks in the region.
func (r *Region) NumChunks() int { return r.nchunks }

// PayloadSize returns the usable payload bytes per chunk.
func (r *Region) PayloadSize() int { return r.lines * LineData }

// Allocated returns the number of currently allocated chunks.
func (r *Region) Allocated() int { return r.allocs }

// Size returns the total registered bytes.
func (r *Region) Size() int { return r.nchunks * r.chunkSize }

// Alloc takes a chunk from the free list.
func (r *Region) Alloc() (int, error) {
	if r.freeHead < 0 {
		return 0, ErrOutOfChunks
	}
	id := int(r.freeHead)
	r.freeHead = r.freeNext[id]
	r.freeNext[id] = -2 // allocated marker
	r.allocs++
	return id, nil
}

// Free returns a chunk to the free list.
func (r *Region) Free(id int) error {
	if id < 0 || id >= r.nchunks {
		return ErrBadChunk
	}
	if r.freeNext[id] != -2 {
		return ErrDoubleFree
	}
	r.freeNext[id] = r.freeHead
	r.freeHead = int32(id)
	r.allocs--
	return nil
}

// SortFreeList relinks the free list in ascending chunk-id order, so a run
// of subsequent Allocs hands out the lowest free ids sequentially. Bulk
// loaders call this before laying out a tree: with an ascending allocator,
// preorder allocation makes sibling subtrees physically contiguous, which
// is what lets adjacent-read merging and subtree prefetching find whole
// runs of children at consecutive chunk offsets.
func (r *Region) SortFreeList() {
	prev := int32(-1)
	for id := r.nchunks - 1; id >= 0; id-- {
		if r.freeNext[id] == -2 {
			continue
		}
		r.freeNext[id] = prev
		prev = int32(id)
	}
	r.freeHead = prev
}

func (r *Region) checkID(id int) error {
	if id < 0 || id >= r.nchunks {
		return ErrBadChunk
	}
	return nil
}

// lineBase returns the word offset of cacheline l of chunk id.
func (r *Region) lineBase(id, l int) int {
	return (id*r.chunkSize)/8 + l*wordsPerLine
}

// Version returns the current version of chunk id (the version of its first
// cacheline, which a completed write shares across all lines).
func (r *Region) Version(id int) (uint64, error) {
	if err := r.checkID(id); err != nil {
		return 0, err
	}
	return atomic.LoadUint64(&r.words[r.lineBase(id, 0)]), nil
}

// writeLine publishes cacheline l with its slice of payload using seqlock
// ordering: version goes odd, payload words land, version goes even (new).
func (r *Region) writeLine(id, l int, newVersion uint64, payload []byte) {
	base := r.lineBase(id, l)
	old := atomic.LoadUint64(&r.words[base])
	atomic.StoreUint64(&r.words[base], old|1) // mark write in progress
	start := l * LineData
	for w := 0; w < payloadWords; w++ {
		var word uint64
		off := start + w*8
		for b := 0; b < 8; b++ {
			if off+b < len(payload) {
				word |= uint64(payload[off+b]) << (8 * b)
			}
		}
		atomic.StoreUint64(&r.words[base+1+w], word)
	}
	atomic.StoreUint64(&r.words[base], newVersion)
}

// nextVersion returns the version a fresh write of chunk id should publish:
// the current (even) version plus 2.
func (r *Region) nextVersion(id int) uint64 {
	v := atomic.LoadUint64(&r.words[r.lineBase(id, 0)])
	return (v &^ 1) + 2
}

// WriteChunk publishes payload into chunk id, bumping every cacheline's
// version. Payload shorter than the chunk's capacity zero-fills the rest.
// All lines are published in one call; in the simulation this is a single
// virtual instant.
func (r *Region) WriteChunk(id int, payload []byte) error {
	if err := r.checkID(id); err != nil {
		return err
	}
	if len(payload) > r.PayloadSize() {
		return ErrPayloadSize
	}
	v := r.nextVersion(id)
	for l := 0; l < r.lines; l++ {
		r.writeLine(id, l, v, payload)
	}
	if r.dirty != nil {
		r.dirty.Mark(id)
	}
	return nil
}

// WriteChunkPrefix publishes payload into the leading cachelines of chunk id
// and bumps the version of every line in the chunk without rewriting the
// trailing payload bytes (which keep stale data). Decoders that consume only
// a length-prefixed prefix of the payload — such as R-tree nodes, which read
// exactly count entries — can use this to avoid rewriting a mostly empty
// 4 KB chunk on every small update. Consistency detection is unaffected: all
// lines still share one version.
func (r *Region) WriteChunkPrefix(id int, payload []byte) error {
	if err := r.checkID(id); err != nil {
		return err
	}
	if len(payload) > r.PayloadSize() {
		return ErrPayloadSize
	}
	v := r.nextVersion(id)
	covered := (len(payload) + LineData - 1) / LineData
	for l := 0; l < covered; l++ {
		r.writeLine(id, l, v, payload)
	}
	for l := covered; l < r.lines; l++ {
		base := r.lineBase(id, l)
		atomic.StoreUint64(&r.words[base], v)
	}
	if r.dirty != nil {
		r.dirty.Mark(id)
	}
	return nil
}

// StagedWrite is an in-progress chunk write split into two publication
// steps, used by the simulation to create a real torn-read window: between
// BeginWrite and Finish, the chunk's first half is at the new version and
// the second half at the old one.
type StagedWrite struct {
	r       *Region
	id      int
	payload []byte
	version uint64
	half    int
	done    bool
}

// BeginWrite starts a staged write of payload to chunk id and publishes the
// first half of the cachelines. Call Finish to publish the rest.
func (r *Region) BeginWrite(id int, payload []byte) (*StagedWrite, error) {
	if err := r.checkID(id); err != nil {
		return nil, err
	}
	if len(payload) > r.PayloadSize() {
		return nil, ErrPayloadSize
	}
	w := &StagedWrite{
		r:       r,
		id:      id,
		payload: append([]byte(nil), payload...),
		version: r.nextVersion(id),
		half:    (r.lines + 1) / 2,
	}
	for l := 0; l < w.half; l++ {
		r.writeLine(id, l, w.version, w.payload)
	}
	if r.dirty != nil {
		r.dirty.Mark(id)
	}
	return w, nil
}

// Finish publishes the remaining cachelines, completing the write. Finish is
// idempotent.
func (w *StagedWrite) Finish() {
	if w.done {
		return
	}
	w.done = true
	for l := w.half; l < w.r.lines; l++ {
		w.r.writeLine(w.id, l, w.version, w.payload)
	}
}

// readLineStable copies cacheline l of chunk id into dst (CacheLine bytes),
// retrying while a writer holds the line's seqlock so the line image is
// internally consistent. Cross-line consistency is the caller's concern
// (DecodeChunk).
func (r *Region) readLineStable(id, l int, dst []byte) {
	base := r.lineBase(id, l)
	for attempt := 0; ; attempt++ {
		v1 := atomic.LoadUint64(&r.words[base])
		var words [payloadWords]uint64
		for w := 0; w < payloadWords; w++ {
			words[w] = atomic.LoadUint64(&r.words[base+1+w])
		}
		v2 := atomic.LoadUint64(&r.words[base])
		if (v1&1) == 0 && v1 == v2 || attempt >= stableAttempts {
			binary.LittleEndian.PutUint64(dst, v1)
			for w := 0; w < payloadWords; w++ {
				binary.LittleEndian.PutUint64(dst[8+w*8:], words[w])
			}
			return
		}
	}
}

// ReadChunkRaw copies the raw bytes of chunk id (versions included) into
// dst, which must be exactly ChunkSize long. This models what an RDMA Read
// returns; it performs no cross-line consistency validation.
func (r *Region) ReadChunkRaw(id int, dst []byte) error {
	if err := r.checkID(id); err != nil {
		return err
	}
	if len(dst) != r.chunkSize {
		return ErrSizeMismatch
	}
	for l := 0; l < r.lines; l++ {
		r.readLineStable(id, l, dst[l*CacheLine:(l+1)*CacheLine])
	}
	return nil
}

// VersionsSize returns the size in bytes of one chunk's version vector:
// one VersionSize word per cacheline (512 B for the default 4 KB geometry,
// an eighth of a full chunk).
func (r *Region) VersionsSize() int { return r.lines * VersionSize }

// ReadVersions copies only the per-cacheline version words of chunk id
// into dst, which must be exactly VersionsSize long. This models the
// version-only RDMA Read the node cache uses to revalidate an entry
// without paying for the full chunk; like ReadChunkRaw it performs no
// cross-line consistency validation (see DecodeVersions).
func (r *Region) ReadVersions(id int, dst []byte) error {
	if err := r.checkID(id); err != nil {
		return err
	}
	if len(dst) != r.VersionsSize() {
		return ErrSizeMismatch
	}
	for l := 0; l < r.lines; l++ {
		v := atomic.LoadUint64(&r.words[r.lineBase(id, l)])
		binary.LittleEndian.PutUint64(dst[l*VersionSize:], v)
	}
	return nil
}

// DecodeVersions validates a raw version vector (as read by ReadVersions)
// and returns the chunk's version fingerprint. It returns ErrTornRead when
// the lines disagree or a write was in progress — the caller then falls
// back to a full validated chunk read.
func DecodeVersions(raw []byte) (uint64, error) {
	if len(raw) == 0 || len(raw)%VersionSize != 0 {
		return 0, ErrSizeMismatch
	}
	version := binary.LittleEndian.Uint64(raw)
	if version&1 != 0 {
		return version, ErrTornRead
	}
	for off := VersionSize; off < len(raw); off += VersionSize {
		if binary.LittleEndian.Uint64(raw[off:]) != version {
			return version, ErrTornRead
		}
	}
	return version, nil
}

// DecodeChunk validates the version consistency of a raw chunk image and,
// when consistent, writes the payload bytes into dst (reusing its capacity)
// and returns the payload and the observed version. It returns ErrTornRead
// when cacheline versions disagree or a line was mid-write.
func DecodeChunk(raw []byte, dst []byte) ([]byte, uint64, error) {
	if len(raw) == 0 || len(raw)%CacheLine != 0 {
		return nil, 0, ErrSizeMismatch
	}
	lines := len(raw) / CacheLine
	version := binary.LittleEndian.Uint64(raw)
	if version&1 != 0 {
		return nil, version, ErrTornRead
	}
	for l := 1; l < lines; l++ {
		if binary.LittleEndian.Uint64(raw[l*CacheLine:]) != version {
			return nil, version, ErrTornRead
		}
	}
	if cap(dst) < lines*LineData {
		dst = make([]byte, 0, lines*LineData)
	}
	dst = dst[:0]
	for l := 0; l < lines; l++ {
		dst = append(dst, raw[l*CacheLine+VersionSize:(l+1)*CacheLine]...)
	}
	return dst, version, nil
}

// ReadChunk performs a validated read of chunk id directly (the server-local
// fast path): raw copy plus decode. Retrying on ErrTornRead is the caller's
// concern.
func (r *Region) ReadChunk(id int, raw, payload []byte) ([]byte, uint64, error) {
	if err := r.ReadChunkRaw(id, raw); err != nil {
		return nil, 0, err
	}
	return DecodeChunk(raw, payload)
}
