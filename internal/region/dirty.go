package region

import "sync"

// Span is a contiguous run of chunks [Start, Start+Count) — the unit the
// replication stream ships: coalescing adjacent dirty chunks into one span
// turns many small backup writes into few large ones, the same merged-read
// trick the offload path plays on its fetch side.
type Span struct {
	Start int
	Count int
}

// End returns the first chunk past the span.
func (s Span) End() int { return s.Start + s.Count }

// DirtyTracker accumulates the chunk IDs a primary's writes touch between
// replication rounds and drains them as merged spans. It is safe for
// concurrent use: the write path marks under the tree latch while the
// replication stream drains from its own goroutine.
type DirtyTracker struct {
	mu    sync.Mutex
	dirty map[int]struct{}
	marks uint64
}

// NewDirtyTracker returns an empty tracker.
func NewDirtyTracker() *DirtyTracker {
	return &DirtyTracker{dirty: make(map[int]struct{})}
}

// Mark records chunk id as dirty.
func (t *DirtyTracker) Mark(id int) {
	t.mu.Lock()
	t.dirty[id] = struct{}{}
	t.marks++
	t.mu.Unlock()
}

// Marks returns the total number of Mark calls — pairs with Len to expose
// how much coalescing the tracker achieved.
func (t *DirtyTracker) Marks() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.marks
}

// Len returns the number of distinct dirty chunks pending.
func (t *DirtyTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.dirty)
}

// TakeSpans drains the tracker, returning the pending dirty chunks merged
// into sorted, maximally coalesced spans. Returns nil when clean.
func (t *DirtyTracker) TakeSpans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.dirty) == 0 {
		return nil
	}
	ids := make([]int, 0, len(t.dirty))
	for id := range t.dirty {
		ids = append(ids, id)
	}
	clear(t.dirty)
	// Insertion sort: span batches are small and usually nearly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	spans := []Span{{Start: ids[0], Count: 1}}
	for _, id := range ids[1:] {
		if last := &spans[len(spans)-1]; id == last.End() {
			last.Count++
		} else {
			spans = append(spans, Span{Start: id, Count: 1})
		}
	}
	return spans
}
