package region

import (
	"reflect"
	"testing"
)

func TestDirtyTrackerCoalesce(t *testing.T) {
	tr := NewDirtyTracker()
	if got := tr.TakeSpans(); got != nil {
		t.Fatalf("clean tracker TakeSpans = %v", got)
	}
	for _, id := range []int{7, 3, 4, 5, 9, 3, 12, 11} {
		tr.Mark(id)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7 distinct", tr.Len())
	}
	if tr.Marks() != 8 {
		t.Fatalf("Marks = %d, want 8", tr.Marks())
	}
	want := []Span{{3, 3}, {7, 1}, {9, 1}, {11, 2}}
	if got := tr.TakeSpans(); !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeSpans = %v, want %v", got, want)
	}
	// Drained: next take is clean, and marks keep accumulating.
	if got := tr.TakeSpans(); got != nil {
		t.Fatalf("drained tracker TakeSpans = %v", got)
	}
	tr.Mark(0)
	if got := tr.TakeSpans(); !reflect.DeepEqual(got, []Span{{0, 1}}) {
		t.Fatalf("second round TakeSpans = %v", got)
	}
}
