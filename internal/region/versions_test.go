package region

import (
	"errors"
	"testing"
)

func TestReadVersionsMatchesChunkVersion(t *testing.T) {
	r, err := New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.VersionsSize(), 4096/CacheLine*VersionSize; got != want {
		t.Fatalf("VersionsSize = %d, want %d", got, want)
	}
	if err := r.WriteChunk(1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChunk(1, []byte("payload2")); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.VersionsSize())
	if err := r.ReadVersions(1, raw); err != nil {
		t.Fatal(err)
	}
	fp, err := DecodeVersions(raw)
	if err != nil {
		t.Fatal(err)
	}
	ver, err := r.Version(1)
	if err != nil {
		t.Fatal(err)
	}
	if fp != ver {
		t.Fatalf("fingerprint %d != chunk version %d", fp, ver)
	}

	// The fingerprint must match what a full validated read observes.
	chunk := make([]byte, r.ChunkSize())
	_, fullVer, err := r.ReadChunk(1, chunk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp != fullVer {
		t.Fatalf("fingerprint %d != DecodeChunk version %d", fp, fullVer)
	}
}

func TestReadVersionsErrors(t *testing.T) {
	r, err := New(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReadVersions(-1, make([]byte, r.VersionsSize())); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("bad id err = %v", err)
	}
	if err := r.ReadVersions(0, make([]byte, 8)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short dst err = %v", err)
	}
	if _, err := DecodeVersions(nil); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("empty raw err = %v", err)
	}
	if _, err := DecodeVersions(make([]byte, 12)); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("ragged raw err = %v", err)
	}
}

func TestDecodeVersionsDetectsTornWindow(t *testing.T) {
	r, err := New(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChunk(0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	w, err := r.BeginWrite(0, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, r.VersionsSize())
	if err := r.ReadVersions(0, raw); err != nil {
		t.Fatal(err)
	}
	if _, derr := DecodeVersions(raw); !errors.Is(derr, ErrTornRead) {
		t.Fatalf("mid-write DecodeVersions err = %v, want ErrTornRead", derr)
	}
	w.Finish()
	if err := r.ReadVersions(0, raw); err != nil {
		t.Fatal(err)
	}
	if _, derr := DecodeVersions(raw); derr != nil {
		t.Fatalf("post-write DecodeVersions err = %v", derr)
	}
}
