package region

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func newTestMailbox(t *testing.T, slots, slotChunks, chunkSize int) *Mailbox {
	t.Helper()
	reg, err := New(slots*slotChunks, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMailbox(reg, slots, slotChunks)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pullSlot reads a slot the way a client does: DecodeChunk per chunk, then
// AssembleMailbox against the descriptor.
func pullSlot(t *testing.T, m *Mailbox, ref SlotRef) ([]byte, error) {
	t.Helper()
	reg := m.reg
	cs := reg.ChunkSize()
	first := ref.Slot * m.SlotChunks()
	payloads := make([][]byte, ref.Chunks)
	raw := make([]byte, cs)
	for i := 0; i < ref.Chunks; i++ {
		if err := reg.ReadChunkRaw(first+i, raw); err != nil {
			return nil, err
		}
		p, _, err := DecodeChunk(raw, nil)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	return AssembleMailbox(payloads, ref.Seq, ref.Bytes)
}

func TestMailboxRoundtrip(t *testing.T) {
	m := newTestMailbox(t, 4, 4, 256)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		n := rng.Intn(m.Capacity() + 1)
		payload := make([]byte, n)
		rng.Read(payload)
		slot, ok := m.Grant()
		if !ok {
			t.Fatalf("round %d: grant failed with free slots", round)
		}
		ref, err := m.WriteResult(slot, payload)
		if err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		if ref.Slot != slot || ref.Bytes != n {
			t.Fatalf("round %d: descriptor %+v for slot %d / %d bytes", round, ref, slot, n)
		}
		if ref.Chunks != MailboxChunks(n, m.reg.PayloadSize()) {
			t.Fatalf("round %d: descriptor chunks %d, MailboxChunks says %d",
				round, ref.Chunks, MailboxChunks(n, m.reg.PayloadSize()))
		}
		got, err := pullSlot(t, m, ref)
		if err != nil {
			t.Fatalf("round %d: pull: %v", round, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: payload mismatch (%d bytes)", round, n)
		}
		if !m.Reclaim(slot, ref.Seq) {
			t.Fatalf("round %d: reclaim rejected fresh seq", round)
		}
	}
}

func TestMailboxStaleSlot(t *testing.T) {
	m := newTestMailbox(t, 2, 2, 256)
	slot, _ := m.Grant()
	ref1, err := m.WriteResult(slot, bytes.Repeat([]byte{0xAA}, 100))
	if err != nil {
		t.Fatal(err)
	}
	// The slot is reused before the first descriptor's pull lands.
	m.Reclaim(slot, ref1.Seq)
	slot2, _ := m.Grant()
	if _, err := m.WriteResult(slot2, bytes.Repeat([]byte{0xBB}, 50)); err != nil {
		t.Fatal(err)
	}
	if slot2 == slot {
		if _, err := pullSlot(t, m, ref1); !errors.Is(err, ErrStaleSlot) {
			t.Fatalf("stale pull error = %v, want ErrStaleSlot", err)
		}
	}
	// A stale ack must not free the reused slot.
	if m.Reclaim(slot, ref1.Seq) {
		t.Fatal("stale ack reclaimed a reused slot")
	}
}

func TestMailboxExhaustionAndCancel(t *testing.T) {
	m := newTestMailbox(t, 2, 2, 256)
	a, ok := m.Grant()
	if !ok {
		t.Fatal("grant a")
	}
	b, ok := m.Grant()
	if !ok {
		t.Fatal("grant b")
	}
	if _, ok := m.Grant(); ok {
		t.Fatal("grant succeeded with no free slots")
	}
	if m.Exhausted() != 1 {
		t.Fatalf("exhausted = %d, want 1", m.Exhausted())
	}
	used, total := m.Occupancy()
	if used != 2 || total != 2 {
		t.Fatalf("occupancy = %d/%d, want 2/2", used, total)
	}
	m.Cancel(a)
	if used, _ := m.Occupancy(); used != 1 {
		t.Fatalf("occupancy after cancel = %d, want 1", used)
	}
	ref, err := m.WriteResult(b, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Reclaim(b, ref.Seq) {
		t.Fatal("reclaim b")
	}
	if m.Granted() != 2 {
		t.Fatalf("granted = %d, want 2", m.Granted())
	}
}

func TestMailboxCapacityEnforced(t *testing.T) {
	m := newTestMailbox(t, 1, 2, 256)
	slot, _ := m.Grant()
	if _, err := m.WriteResult(slot, make([]byte, m.Capacity()+1)); err == nil {
		t.Fatal("over-capacity write accepted")
	}
	if _, err := m.WriteResult(slot, make([]byte, m.Capacity())); err != nil {
		t.Fatalf("at-capacity write rejected: %v", err)
	}
}

func TestMailboxRequiresFreshContiguousRegion(t *testing.T) {
	reg, err := New(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMailbox(reg, 2, 2); err == nil {
		t.Fatal("mailbox accepted a region with prior allocations")
	}
	reg2, err := New(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMailbox(reg2, 3, 4); err == nil {
		t.Fatal("mailbox accepted a region too small for its geometry")
	}
}

// TestMailboxConcurrentHammer drives Grant/WriteResult/pull/Reclaim from
// many goroutines; run under -race this pins the allocator's and the
// write path's synchronization (distinct slots touch distinct chunks).
func TestMailboxConcurrentHammer(t *testing.T) {
	m := newTestMailbox(t, 8, 2, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				slot, ok := m.Grant()
				if !ok {
					continue // every slot in flight; the server would go inline
				}
				n := rng.Intn(m.Capacity() + 1)
				payload := make([]byte, n)
				rng.Read(payload)
				ref, err := m.WriteResult(slot, payload)
				if err != nil {
					t.Errorf("goroutine %d: write: %v", g, err)
					m.Cancel(slot)
					return
				}
				got, err := pullSlot(t, m, ref)
				if err == nil && !bytes.Equal(got, payload) {
					t.Errorf("goroutine %d: payload mismatch", g)
					return
				}
				m.Reclaim(slot, ref.Seq)
			}
		}()
	}
	wg.Wait()
	if used, _ := m.Occupancy(); used != 0 {
		t.Fatalf("slots leaked: %d still in flight", used)
	}
}
