package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the text exposition format byte-for-byte.
// Histogram samples below 16ns map to exact buckets, so the summary
// quantiles are deterministic.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("alpha_total").Add(3)
	reg.Gauge("beta").Set(0.5)
	reg.With("shard", "0").Counter("gamma_total").Add(7)
	h := reg.Histogram("lat_seconds")
	for i := 0; i < 4; i++ {
		h.Record(10 * time.Nanosecond)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE alpha_total counter
alpha_total 3
# TYPE beta gauge
beta 0.5
# TYPE gamma_total counter
gamma_total{shard="0"} 7
# TYPE lat_seconds summary
lat_seconds{quantile="0.5"} 1e-08
lat_seconds{quantile="0.95"} 1e-08
lat_seconds{quantile="0.99"} 1e-08
lat_seconds_sum 4e-08
lat_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusLabelledSummary checks that quantile labels splice into
// an existing label set and that _sum/_count keep the labels after the
// suffix.
func TestWritePrometheusLabelledSummary(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("req_seconds", "op", "search").Record(8 * time.Nanosecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`# TYPE req_seconds summary`,
		`req_seconds{op="search",quantile="0.5"} 8e-09`,
		`req_seconds_sum{op="search"} 8e-09`,
		`req_seconds_count{op="search"} 1`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestRegistryGetOrCreate: fetching the same name twice must return the same
// underlying metric, and scoped views must share the root's metric set.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total")
	a.Inc()
	b := reg.Counter("x_total")
	b.Inc()
	if a != b {
		t.Error("same name returned distinct counters")
	}
	if got := a.Load(); got != 2 {
		t.Errorf("counter = %d, want 2", got)
	}

	v1 := reg.With("shard", "1")
	v2 := reg.With("shard", "1")
	c1 := v1.Counter("y_total")
	c2 := v2.Counter("y_total")
	if c1 != c2 {
		t.Error("equal-labelled views returned distinct counters")
	}
	c1.Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `y_total{shard="1"} 1`) {
		t.Errorf("root scrape missing scoped counter:\n%s", sb.String())
	}
}

// TestRegistryKindMismatchPanics: re-registering a name as a different kind
// is a programming error and must fail loudly.
func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("z_total")
}

// TestNilSinks: a nil registry, histogram, and tracer must be valid no-op
// sinks so instrumented code never branches on telemetry being wired.
func TestNilSinks(t *testing.T) {
	var reg *Registry
	reg.Counter("a_total").Inc()
	reg.Gauge("b").Set(1)
	reg.Histogram("c").Record(time.Millisecond)
	reg.CounterFunc("d_total", func() uint64 { return 0 })
	reg.GaugeFunc("e", func() float64 { return 0 })
	if pts := reg.Snapshot(); pts != nil {
		t.Errorf("nil registry snapshot = %v, want nil", pts)
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if reg.With("k", "v") != nil {
		t.Error("nil registry With != nil")
	}

	var h *Histogram
	h.Record(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}

	var tr *Tracer
	tr.Record(Trace{})
	if tr.Total() != 0 || tr.Len() != 0 || tr.Cap() != 0 || tr.Dump() != nil {
		t.Error("nil tracer is not a no-op")
	}
}

// TestCounterFuncSamplesLive: function metrics must read through to the
// backing counter at scrape time.
func TestCounterFuncSamplesLive(t *testing.T) {
	reg := NewRegistry()
	var m ClientMetrics
	m.Register(reg)
	m.FastSearches.Add(5)
	m.OffloadSearches.Add(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"catfish_client_fast_searches_total 5",
		"catfish_client_offload_searches_total 2",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestHistogramConcurrent hammers Record against Snapshot; run under -race
// this exercises the atomic-swap shard design, and the final snapshot must
// not lose a single sample to the swap window.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		writers = 8
		perG    = 5000
	)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper racing the recorders
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(i%97) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := h.Snapshot().Count; got != writers*perG {
		t.Fatalf("samples lost to the swap window: have %d, want %d", got, writers*perG)
	}
}

// TestRegistryConcurrent hammers get-or-create, counter increments, and
// scrapes from many goroutines; meaningful under -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			view := reg.With("shard", string(rune('0'+g%4)))
			for i := 0; i < 2000; i++ {
				view.Counter("ops_total").Inc()
				view.Gauge("util").Set(float64(i))
				view.Histogram("lat_seconds").Record(time.Duration(i) * time.Nanosecond)
				if i%100 == 0 {
					var b strings.Builder
					if err := reg.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, p := range reg.Snapshot() {
		if strings.HasPrefix(p.Name, "ops_total") && p.Kind == KindCounter {
			total += uint64(p.Value)
		}
	}
	if total != 8*2000 {
		t.Errorf("ops_total sum = %d, want %d", total, 8*2000)
	}
}

// TestClientSnapshotAdd checks the field-by-field aggregation helper.
func TestClientSnapshotAdd(t *testing.T) {
	a := ClientSnapshot{FastSearches: 1, OffloadSearches: 2, NodesFetched: 3, CacheBytesSaved: 4}
	b := ClientSnapshot{FastSearches: 10, TCPSearches: 5, NodesFetched: 30, BatchedOps: 7}
	sum := a.Add(b)
	if sum.FastSearches != 11 || sum.OffloadSearches != 2 || sum.TCPSearches != 5 ||
		sum.NodesFetched != 33 || sum.CacheBytesSaved != 4 || sum.BatchedOps != 7 {
		t.Errorf("Add = %+v", sum)
	}
	if got := sum.Searches(); got != 18 {
		t.Errorf("Searches = %d, want 18", got)
	}
	if got := sum.OffloadFraction(); got != 2.0/18.0 {
		t.Errorf("OffloadFraction = %g", got)
	}
	if (ClientSnapshot{}).OffloadFraction() != 0 {
		t.Error("empty OffloadFraction != 0")
	}
}
