package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace is one per-search record of the adaptive decision path: which
// method Algorithm 1 chose, the back-off window state at decision time, the
// utilization prediction that drove it, and what the search then cost.
// Server-side request traces reuse the shape with the adaptive fields zero.
type Trace struct {
	// Seq is the global sequence number of the traced operation (assigned
	// by the Tracer; counts every offered record, sampled or not).
	Seq uint64 `json:"seq"`
	// Start is the operation start time — virtual time on the simulated
	// fabric, time since process start over real sockets (nanoseconds).
	Start time.Duration `json:"start_ns"`
	// Method is the executed path: "fast", "offload", "fetch", or "tcp".
	Method string `json:"method"`
	// Shard is the shard index the operation ran against (0 unsharded).
	Shard int `json:"shard"`
	// RBusy and ROff are Algorithm 1's state after the decision: the
	// consecutive-busy-heartbeat streak k and the remaining length n of the
	// randomized offload window drawn from [(k−1)·N, k·N).
	RBusy int `json:"r_busy"`
	ROff  int `json:"r_off"`
	// PredUtil is the predicted server CPU utilization the decision used
	// (the latest consumed heartbeat, or the EWMA when smoothing is on).
	PredUtil float64 `json:"pred_util"`
	// PredTX is the predicted server send-engine TX utilization the 3-way
	// decision used (0 against servers without the widened heartbeat).
	PredTX float64 `json:"pred_tx"`
	// OffloadReads is the number of chunk reads this search issued;
	// TornRetries the version-check retries among them.
	OffloadReads uint32 `json:"offload_reads"`
	TornRetries  uint32 `json:"torn_retries"`
	// Latency is the end-to-end duration of the operation.
	Latency time.Duration `json:"latency_ns"`
	// Err carries the error text for failed operations.
	Err string `json:"err,omitempty"`
}

// Tracer is a bounded-memory sampler of Traces: a fixed-capacity ring that
// overwrites the oldest record, with optional 1-in-every sampling so tracing
// a million-search run keeps both memory and CPU constant. Safe for
// concurrent use; a nil *Tracer is a valid no-op sink.
type Tracer struct {
	mu    sync.Mutex
	ring  []Trace
	next  int // ring write position
	size  int // records currently held (≤ cap)
	seq   uint64
	every uint64
}

// DefaultTraceCapacity bounds the trace ring when the caller passes 0.
const DefaultTraceCapacity = 1024

// NewTracer returns a tracer holding the last capacity records (rounded up
// to 1; DefaultTraceCapacity when 0), keeping 1 in every `every` offered
// records (every ≤ 1 keeps all).
func NewTracer(capacity, every int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{ring: make([]Trace, capacity), every: uint64(every)}
}

// Record offers one trace. The tracer assigns Seq; sampled-out records
// advance the sequence but are not retained. Never allocates.
func (t *Tracer) Record(tr Trace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	tr.Seq = t.seq
	if t.seq%t.every == 0 {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
		if t.size < len(t.ring) {
			t.size++
		}
	}
	t.mu.Unlock()
}

// Total returns the number of records offered so far (including sampled-out
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Len returns the number of records currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dump returns the retained records, oldest first.
func (t *Tracer) Dump() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.size)
	start := t.next - t.size
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// WriteJSON streams the retained records as a JSON document:
// {"total": N, "retained": M, "traces": [...]} — the shape served by the
// admin endpoint's /traces.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Total    uint64  `json:"total"`
		Retained int     `json:"retained"`
		Traces   []Trace `json:"traces"`
	}{Total: t.Total(), Retained: t.Len(), Traces: t.Dump()}
	if doc.Traces == nil {
		doc.Traces = []Trace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
