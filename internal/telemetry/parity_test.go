package telemetry_test

import (
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rpcnet"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/telemetry"
)

// parityWorkload is a fixed, deterministic operation sequence both
// transports replay: searches, then inserts, then deletes of the inserted
// rectangles.
type parityWorkload struct {
	items   []rtree.Entry
	queries []geo.Rect
	writes  []geo.Rect
}

func newParityWorkload() parityWorkload {
	rng := rand.New(rand.NewSource(42))
	rect := func(maxEdge float64) geo.Rect {
		w, h := rng.Float64()*maxEdge, rng.Float64()*maxEdge
		x, y := rng.Float64()*(1-w), rng.Float64()*(1-h)
		return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
	}
	var w parityWorkload
	w.items = make([]rtree.Entry, 3000)
	for i := range w.items {
		w.items[i] = rtree.Entry{Rect: rect(0.01), Ref: uint64(i)}
	}
	for i := 0; i < 40; i++ {
		w.queries = append(w.queries, rect(0.05))
	}
	for i := 0; i < 10; i++ {
		w.writes = append(w.writes, rect(1e-5))
	}
	return w
}

func (w parityWorkload) buildTree(t *testing.T) *rtree.Tree {
	t.Helper()
	reg, err := region.New(1<<14, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	data := append([]rtree.Entry(nil), w.items...)
	if err := tree.BulkLoad(data, 0); err != nil {
		t.Fatal(err)
	}
	return tree
}

// simSnapshot replays the workload on the simulated RDMA fabric.
func (w parityWorkload) simSnapshot(t *testing.T, forced client.Method) telemetry.ClientSnapshot {
	t.Helper()
	e := sim.New(1)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	host := net.NewHost("server", sim.NewCPU(e, 28))
	srv, err := server.New(server.Config{
		Engine: e,
		Host:   host,
		Tree:   w.buildTree(t),
		Cost:   netmodel.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	chost := net.NewHost("client", sim.NewCPU(e, 4))
	ep, err := srv.Connect(chost, net, 16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(client.Config{
		Engine:   e,
		Host:     chost,
		Endpoint: ep,
		Cost:     netmodel.DefaultCostModel(),
		Forced:   forced,
	})
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	e.Spawn("driver", func(p *sim.Proc) {
		defer p.Engine().Stop()
		for _, q := range w.queries {
			if _, _, err := c.Search(p, q); err != nil {
				runErr = err
				return
			}
		}
		for i, r := range w.writes {
			if err := c.Insert(p, r, uint64(1_000_000+i)); err != nil {
				runErr = err
				return
			}
		}
		for i, r := range w.writes {
			if err := c.Delete(p, r, uint64(1_000_000+i)); err != nil {
				runErr = err
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return c.Stats()
}

// tcpSnapshot replays the workload over real localhost TCP.
func (w parityWorkload) tcpSnapshot(t *testing.T, forced rpcnet.Method) telemetry.ClientSnapshot {
	t.Helper()
	srv, err := rpcnet.Listen("127.0.0.1:0", w.buildTree(t), rpcnet.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // returns on Close
	defer srv.Close()
	c, err := rpcnet.Dial(srv.Addr().String(), rpcnet.ClientConfig{Forced: forced})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, q := range w.queries {
		if _, _, err := c.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range w.writes {
		if err := c.Insert(r, uint64(1_000_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range w.writes {
		if err := c.Delete(r, uint64(1_000_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	return c.Stats()
}

// TestTransportSnapshotParity asserts the acceptance criterion of the
// unified snapshot: the simulated fabric and the real-TCP transport populate
// identical ClientSnapshot fields for the same workload. Timing-dependent
// counters (heartbeats) are excluded; everything the workload determines
// must match exactly.
func TestTransportSnapshotParity(t *testing.T) {
	w := newParityWorkload()

	t.Run("fast", func(t *testing.T) {
		simS := w.simSnapshot(t, client.MethodFast)
		tcpS := w.tcpSnapshot(t, rpcnet.MethodFast)
		assertParity(t, simS, tcpS)
		if simS.FastSearches != uint64(len(w.queries)) {
			t.Errorf("fast searches = %d, want %d", simS.FastSearches, len(w.queries))
		}
		if simS.NodesFetched != 0 || tcpS.NodesFetched != 0 {
			t.Errorf("fast path fetched nodes: sim=%d tcp=%d", simS.NodesFetched, tcpS.NodesFetched)
		}
	})

	t.Run("offload", func(t *testing.T) {
		simS := w.simSnapshot(t, client.MethodOffload)
		tcpS := w.tcpSnapshot(t, rpcnet.MethodOffload)
		assertParity(t, simS, tcpS)
		if simS.OffloadSearches != uint64(len(w.queries)) {
			t.Errorf("offload searches = %d, want %d", simS.OffloadSearches, len(w.queries))
		}
		if simS.NodesFetched == 0 || tcpS.NodesFetched == 0 {
			t.Errorf("offload path fetched no nodes: sim=%d tcp=%d", simS.NodesFetched, tcpS.NodesFetched)
		}
	})
}

// assertParity compares every workload-determined snapshot field. The two
// transports traverse identical trees with identical queries, so even the
// chunk-read counts must agree.
func assertParity(t *testing.T, sim, tcp telemetry.ClientSnapshot) {
	t.Helper()
	cmp := []struct {
		name     string
		sim, tcp uint64
	}{
		{"FastSearches", sim.FastSearches, tcp.FastSearches},
		{"OffloadSearches", sim.OffloadSearches, tcp.OffloadSearches},
		{"TCPSearches", sim.TCPSearches, tcp.TCPSearches},
		{"Inserts", sim.Inserts, tcp.Inserts},
		{"Deletes", sim.Deletes, tcp.Deletes},
		{"TornRetries", sim.TornRetries, tcp.TornRetries},
		{"StaleRestarts", sim.StaleRestarts, tcp.StaleRestarts},
		{"NodesFetched", sim.NodesFetched, tcp.NodesFetched},
		{"VersionReads", sim.VersionReads, tcp.VersionReads},
		{"CacheHits", sim.CacheHits, tcp.CacheHits},
		{"CacheMisses", sim.CacheMisses, tcp.CacheMisses},
		{"BatchesSent", sim.BatchesSent, tcp.BatchesSent},
		{"BatchedOps", sim.BatchedOps, tcp.BatchedOps},
	}
	for _, c := range cmp {
		if c.sim != c.tcp {
			t.Errorf("%s: sim=%d tcp=%d", c.name, c.sim, c.tcp)
		}
	}
}
