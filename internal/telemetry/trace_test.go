package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerBounded drives a million searches' worth of records through a
// small ring and asserts memory stays bounded: retention never exceeds
// capacity while the total keeps counting.
func TestTracerBounded(t *testing.T) {
	const n = 1_000_000
	tr := NewTracer(512, 1)
	for i := 0; i < n; i++ {
		tr.Record(Trace{Method: "fast", Latency: time.Duration(i)})
	}
	if got := tr.Total(); got != n {
		t.Errorf("Total = %d, want %d", got, n)
	}
	if tr.Cap() != 512 {
		t.Errorf("Cap = %d, want 512", tr.Cap())
	}
	if got := tr.Len(); got != 512 {
		t.Errorf("Len = %d, want 512 (bounded retention)", got)
	}
	dump := tr.Dump()
	if len(dump) != 512 {
		t.Fatalf("Dump len = %d, want 512", len(dump))
	}
	// Oldest-first, contiguous, ending at the last assigned sequence.
	for i, rec := range dump {
		want := uint64(n - 512 + 1 + i)
		if rec.Seq != want {
			t.Fatalf("dump[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

// TestTracerSampling: with 1-in-10 sampling only every tenth offered record
// is retained, but the total still counts all of them.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(1000, 10)
	for i := 0; i < 95; i++ {
		tr.Record(Trace{})
	}
	if got := tr.Total(); got != 95 {
		t.Errorf("Total = %d, want 95", got)
	}
	if got := tr.Len(); got != 9 {
		t.Errorf("Len = %d, want 9", got)
	}
	for _, rec := range tr.Dump() {
		if rec.Seq%10 != 0 {
			t.Errorf("retained seq %d not a sampling multiple", rec.Seq)
		}
	}
}

// TestTracerPartialRing: fewer records than capacity dump in insertion order.
func TestTracerPartialRing(t *testing.T) {
	tr := NewTracer(8, 1)
	tr.Record(Trace{Method: "fast"})
	tr.Record(Trace{Method: "offload"})
	dump := tr.Dump()
	if len(dump) != 2 || dump[0].Seq != 1 || dump[1].Seq != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump[0].Method != "fast" || dump[1].Method != "offload" {
		t.Errorf("order wrong: %+v", dump)
	}
}

// TestTracerConcurrent records from many goroutines; meaningful under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Record(Trace{Method: "fast"})
				if i%50 == 0 {
					tr.Dump()
					tr.Len()
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != 8*2000 {
		t.Errorf("Total = %d, want %d", got, 8*2000)
	}
	if tr.Len() > tr.Cap() {
		t.Errorf("Len %d exceeds Cap %d", tr.Len(), tr.Cap())
	}
}

// TestTracerWriteJSON pins the /traces document shape.
func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(4, 1)
	tr.Record(Trace{Method: "offload", RBusy: 2, ROff: 5, PredUtil: 0.9,
		OffloadReads: 3, Latency: 1500, Shard: 1})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Traces   []struct {
			Seq      uint64  `json:"seq"`
			Method   string  `json:"method"`
			Shard    int     `json:"shard"`
			RBusy    int     `json:"r_busy"`
			ROff     int     `json:"r_off"`
			PredUtil float64 `json:"pred_util"`
			Reads    uint32  `json:"offload_reads"`
			Latency  int64   `json:"latency_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b.String())
	}
	if doc.Total != 1 || doc.Retained != 1 || len(doc.Traces) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	rec := doc.Traces[0]
	if rec.Method != "offload" || rec.RBusy != 2 || rec.ROff != 5 ||
		rec.PredUtil != 0.9 || rec.Reads != 3 || rec.Latency != 1500 || rec.Shard != 1 {
		t.Errorf("trace = %+v", rec)
	}

	// Empty tracer still emits a well-formed document with an empty array.
	var eb strings.Builder
	if err := NewTracer(4, 1).WriteJSON(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), `"traces": []`) {
		t.Errorf("empty dump not an array:\n%s", eb.String())
	}
}
