package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// NewAdminMux returns the admin HTTP surface served by -metrics-addr:
//
//	/metrics      Prometheus text exposition of reg
//	/traces       JSON dump of the trace ring (oldest first)
//	/debug/pprof  the standard net/http/pprof handlers
//
// Either argument may be nil; the corresponding endpoint then serves an
// empty document.
func NewAdminMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = tr.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
