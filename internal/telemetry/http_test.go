package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAdminMux serves the admin surface over httptest and checks the three
// endpoints respond with the right content.
func TestAdminMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("catfish_client_fast_searches_total").Add(9)
	reg.Histogram("catfish_client_search_latency_seconds").Record(10 * time.Nanosecond)
	tr := NewTracer(16, 1)
	tr.Record(Trace{Method: "fast"})

	srv := httptest.NewServer(NewAdminMux(reg, tr))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"catfish_client_fast_searches_total 9",
		`catfish_client_search_latency_seconds{quantile="0.99"}`,
		"catfish_client_search_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get("/traces")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/traces content type = %q", ctype)
	}
	if !strings.Contains(body, `"method": "fast"`) {
		t.Errorf("/traces missing record:\n%s", body)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
