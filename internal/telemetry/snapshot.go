package telemetry

// ClientMetrics is the live, atomically updated counter set shared by every
// Catfish client transport: the simulated ring-buffer client and the
// real-TCP rpcnet client mutate the same fields on the same hot-path
// events, so the two counter surfaces cannot drift apart again. A client
// embeds one ClientMetrics and calls Snapshot() to export it.
type ClientMetrics struct {
	FastSearches    Counter
	OffloadSearches Counter
	TCPSearches     Counter
	Inserts         Counter
	Deletes         Counter
	Moves           Counter // MOVE ops (single-latch delete+insert relocations)
	KNNSearches     Counter // k-nearest-neighbor queries (always server-side)
	TornRetries     Counter // version-check failures on one-sided reads
	StaleRestarts   Counter // traversals restarted after structural change
	NodesFetched    Counter // chunk reads issued for traversal
	HeartbeatsSeen  Counter
	RootCacheHits   Counter // traversals served from the cached root
	VersionReads    Counter // version-only revalidation reads issued
	BatchesSent     Counter // fast-messaging batch containers sent
	BatchedOps      Counter // operations carried in those containers
	PrefetchIssued  Counter // speculative chunk reads posted
	PrefetchHits    Counter // speculative reads a demand lookup later used
	PrefetchWaste   Counter // speculative reads discarded unused
	ReadWQEs        Counter // read messages posted (merged spans count once)

	// Remote-result-fetch counters (the RFP-style third access method).
	FetchSearches  Counter // searches routed to the fetch method
	FetchPulls     Counter // mailbox chunk reads issued for result pulls
	FetchBytes     Counter // result payload bytes delivered via mailbox pulls
	FetchRetries   Counter // pulls retried after a torn or stale slot read
	FetchInline    Counter // fetch searches the server answered inline
	FetchFallbacks Counter // fetch searches that gave up and re-ran as fast
}

// Snapshot exports the counters. Cache fields and HeartbeatsSeen come from
// subsystems that own their counts (node cache, adaptive switch); callers
// overlay them on the returned snapshot.
func (m *ClientMetrics) Snapshot() ClientSnapshot {
	return ClientSnapshot{
		FastSearches:    m.FastSearches.Load(),
		OffloadSearches: m.OffloadSearches.Load(),
		TCPSearches:     m.TCPSearches.Load(),
		Inserts:         m.Inserts.Load(),
		Deletes:         m.Deletes.Load(),
		Moves:           m.Moves.Load(),
		KNNSearches:     m.KNNSearches.Load(),
		TornRetries:     m.TornRetries.Load(),
		StaleRestarts:   m.StaleRestarts.Load(),
		NodesFetched:    m.NodesFetched.Load(),
		HeartbeatsSeen:  m.HeartbeatsSeen.Load(),
		RootCacheHits:   m.RootCacheHits.Load(),
		VersionReads:    m.VersionReads.Load(),
		BatchesSent:     m.BatchesSent.Load(),
		BatchedOps:      m.BatchedOps.Load(),
		PrefetchIssued:  m.PrefetchIssued.Load(),
		PrefetchHits:    m.PrefetchHits.Load(),
		PrefetchWaste:   m.PrefetchWaste.Load(),
		ReadWQEs:        m.ReadWQEs.Load(),
		FetchSearches:   m.FetchSearches.Load(),
		FetchPulls:      m.FetchPulls.Load(),
		FetchBytes:      m.FetchBytes.Load(),
		FetchRetries:    m.FetchRetries.Load(),
		FetchInline:     m.FetchInline.Load(),
		FetchFallbacks:  m.FetchFallbacks.Load(),
	}
}

// MergeRatio returns reads-per-WQE: how many logical chunk or version
// reads each posted read message carried on average. 1.0 means no merging;
// higher means adjacent reads coalesced. Zero when no WQEs were posted.
func (m *ClientMetrics) MergeRatio() float64 {
	wqes := m.ReadWQEs.Load()
	if wqes == 0 {
		return 0
	}
	reads := m.NodesFetched.Load() + m.VersionReads.Load() + m.PrefetchIssued.Load()
	return float64(reads) / float64(wqes)
}

// Register exposes every counter on reg under the catfish_client_* names
// (labels come from the registry scope; routers pass shard-labelled views).
func (m *ClientMetrics) Register(reg *Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("catfish_client_fast_searches_total", m.FastSearches.Load)
	reg.CounterFunc("catfish_client_offload_searches_total", m.OffloadSearches.Load)
	reg.CounterFunc("catfish_client_tcp_searches_total", m.TCPSearches.Load)
	reg.CounterFunc("catfish_client_inserts_total", m.Inserts.Load)
	reg.CounterFunc("catfish_client_deletes_total", m.Deletes.Load)
	reg.CounterFunc("catfish_client_moves_total", m.Moves.Load)
	reg.CounterFunc("catfish_client_knn_total", m.KNNSearches.Load)
	reg.CounterFunc("catfish_client_torn_retries_total", m.TornRetries.Load)
	reg.CounterFunc("catfish_client_stale_restarts_total", m.StaleRestarts.Load)
	reg.CounterFunc("catfish_client_nodes_fetched_total", m.NodesFetched.Load)
	reg.CounterFunc("catfish_client_heartbeats_seen_total", m.HeartbeatsSeen.Load)
	reg.CounterFunc("catfish_client_root_cache_hits_total", m.RootCacheHits.Load)
	reg.CounterFunc("catfish_client_version_reads_total", m.VersionReads.Load)
	reg.CounterFunc("catfish_client_batches_sent_total", m.BatchesSent.Load)
	reg.CounterFunc("catfish_client_batched_ops_total", m.BatchedOps.Load)
	reg.CounterFunc("catfish_prefetch_issued_total", m.PrefetchIssued.Load)
	reg.CounterFunc("catfish_prefetch_hits_total", m.PrefetchHits.Load)
	reg.CounterFunc("catfish_prefetch_waste_total", m.PrefetchWaste.Load)
	reg.CounterFunc("catfish_client_read_wqes_total", m.ReadWQEs.Load)
	reg.GaugeFunc("catfish_client_merge_ratio", m.MergeRatio)
	reg.CounterFunc("catfish_client_fetch_searches_total", m.FetchSearches.Load)
	reg.CounterFunc("catfish_client_fetch_pulls_total", m.FetchPulls.Load)
	reg.CounterFunc("catfish_client_fetch_bytes_total", m.FetchBytes.Load)
	reg.CounterFunc("catfish_client_fetch_retries_total", m.FetchRetries.Load)
	reg.CounterFunc("catfish_client_fetch_inline_total", m.FetchInline.Load)
	reg.CounterFunc("catfish_client_fetch_fallbacks_total", m.FetchFallbacks.Load)
	// Per-method totals under one name, method-labelled, so dashboards and
	// the fetch ablation can attribute traffic across the access methods.
	reg.CounterFunc("catfish_method_total", m.FastSearches.Load, "method", "fast")
	reg.CounterFunc("catfish_method_total", m.OffloadSearches.Load, "method", "offload")
	reg.CounterFunc("catfish_method_total", m.TCPSearches.Load, "method", "tcp")
	reg.CounterFunc("catfish_method_total", m.FetchSearches.Load, "method", "fetch")
}

// CacheStats is the node-cache counter subset sampled by RegisterCacheFuncs
// (mirrors nodecache.Stats without importing it).
type CacheStats struct {
	Hits, VerifiedHits, Misses, Evictions, BytesSaved uint64
	PrefetchHits, PrefetchWaste                       uint64
}

// RegisterCacheFuncs exposes the node-cache counters on reg, sampling f at
// scrape time — both transports share it so the cache series can't drift.
func RegisterCacheFuncs(reg *Registry, f func() CacheStats) {
	if reg == nil {
		return
	}
	reg.CounterFunc("catfish_client_cache_hits_total", func() uint64 { return f().Hits })
	reg.CounterFunc("catfish_client_cache_verified_hits_total", func() uint64 { return f().VerifiedHits })
	reg.CounterFunc("catfish_client_cache_misses_total", func() uint64 { return f().Misses })
	reg.CounterFunc("catfish_client_cache_evictions_total", func() uint64 { return f().Evictions })
	reg.CounterFunc("catfish_client_cache_bytes_saved_total", func() uint64 { return f().BytesSaved })
	reg.CounterFunc("catfish_client_cache_prefetch_hits_total", func() uint64 { return f().PrefetchHits })
	reg.CounterFunc("catfish_client_cache_prefetch_waste_total", func() uint64 { return f().PrefetchWaste })
}

// ClientSnapshot is the unified client counter snapshot shared by both
// transports. NodesFetched counts traversal chunk reads — RDMA Reads on
// the simulated fabric, READ_CHUNK round trips over TCP (formerly rpcnet's
// "ChunksFetched"; the two were always the same quantity).
type ClientSnapshot struct {
	FastSearches    uint64
	OffloadSearches uint64
	TCPSearches     uint64
	Inserts         uint64
	Deletes         uint64
	Moves           uint64 // MOVE ops (single-latch delete+insert relocations)
	KNNSearches     uint64 // k-nearest-neighbor queries (always server-side)
	TornRetries     uint64 // version-check failures on one-sided reads
	StaleRestarts   uint64 // traversals restarted after structural change
	NodesFetched    uint64 // chunk reads issued for traversal
	HeartbeatsSeen  uint64
	RootCacheHits   uint64 // traversals served from the cached root

	// Node-cache counters (see internal/nodecache).
	VersionReads      uint64 // version-only revalidation reads issued
	CacheHits         uint64 // nodes served lease-fresh, zero network
	CacheVerifiedHits uint64 // nodes served after fingerprint revalidation
	CacheMisses       uint64
	CacheEvictions    uint64 // entries displaced by capacity pressure
	CacheBytesSaved   uint64 // network bytes avoided vs. always-full-fetch

	// Batching counters (see the transports' ExecBatch).
	BatchesSent uint64 // fast-messaging batch containers sent
	BatchedOps  uint64 // operations carried in those containers

	// Prefetch and read-merging counters (see DESIGN.md §5.9).
	PrefetchIssued     uint64 // speculative chunk reads posted
	PrefetchHits       uint64 // speculative reads a demand lookup later used
	PrefetchWaste      uint64 // speculative reads discarded unused
	ReadWQEs           uint64 // read messages posted (merged spans count once)
	CachePrefetchHits  uint64 // prefetched cache entries later demanded
	CachePrefetchWaste uint64 // prefetched cache entries dropped unused

	// Remote-result-fetch counters (see DESIGN.md §5.10).
	FetchSearches  uint64 // searches routed to the fetch method
	FetchPulls     uint64 // mailbox chunk reads issued for result pulls
	FetchBytes     uint64 // result payload bytes delivered via mailbox pulls
	FetchRetries   uint64 // pulls retried after a torn or stale slot read
	FetchInline    uint64 // fetch searches the server answered inline
	FetchFallbacks uint64 // fetch searches that gave up and re-ran as fast
}

// Add accumulates other into s, field by field, and returns the sum —
// routers and experiment drivers aggregate per-shard and per-client
// snapshots with it instead of hand-copied loops.
func (s ClientSnapshot) Add(other ClientSnapshot) ClientSnapshot {
	s.FastSearches += other.FastSearches
	s.OffloadSearches += other.OffloadSearches
	s.TCPSearches += other.TCPSearches
	s.Inserts += other.Inserts
	s.Deletes += other.Deletes
	s.Moves += other.Moves
	s.KNNSearches += other.KNNSearches
	s.TornRetries += other.TornRetries
	s.StaleRestarts += other.StaleRestarts
	s.NodesFetched += other.NodesFetched
	s.HeartbeatsSeen += other.HeartbeatsSeen
	s.RootCacheHits += other.RootCacheHits
	s.VersionReads += other.VersionReads
	s.CacheHits += other.CacheHits
	s.CacheVerifiedHits += other.CacheVerifiedHits
	s.CacheMisses += other.CacheMisses
	s.CacheEvictions += other.CacheEvictions
	s.CacheBytesSaved += other.CacheBytesSaved
	s.BatchesSent += other.BatchesSent
	s.BatchedOps += other.BatchedOps
	s.PrefetchIssued += other.PrefetchIssued
	s.PrefetchHits += other.PrefetchHits
	s.PrefetchWaste += other.PrefetchWaste
	s.ReadWQEs += other.ReadWQEs
	s.CachePrefetchHits += other.CachePrefetchHits
	s.CachePrefetchWaste += other.CachePrefetchWaste
	s.FetchSearches += other.FetchSearches
	s.FetchPulls += other.FetchPulls
	s.FetchBytes += other.FetchBytes
	s.FetchRetries += other.FetchRetries
	s.FetchInline += other.FetchInline
	s.FetchFallbacks += other.FetchFallbacks
	return s
}

// Searches returns the total searches across all four paths.
func (s ClientSnapshot) Searches() uint64 {
	return s.FastSearches + s.OffloadSearches + s.TCPSearches + s.FetchSearches
}

// FetchFraction returns the fraction of searches delivered by remote fetch
// (0 when no searches ran).
func (s ClientSnapshot) FetchFraction() float64 {
	if t := s.Searches(); t > 0 {
		return float64(s.FetchSearches) / float64(t)
	}
	return 0
}

// OffloadFraction returns the fraction of searches that ran as client-side
// traversals (0 when no searches ran).
func (s ClientSnapshot) OffloadFraction() float64 {
	if t := s.Searches(); t > 0 {
		return float64(s.OffloadSearches) / float64(t)
	}
	return 0
}
