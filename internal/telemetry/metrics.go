// Package telemetry is the unified observability layer of the repo: a
// race-safe registry of named counters, gauges, and latency histograms, the
// shared client counter surface (ClientMetrics / ClientSnapshot) used by
// both the simulated and the real-TCP transports, and a bounded-memory
// per-search trace ring recording the adaptive decision path of Algorithm 1.
//
// The registry is deliberately small: metrics are identified by a
// Prometheus-style name plus optional label pairs, values are either owned
// by the registry (Counter/Gauge/Histogram) or sampled at scrape time from
// a callback (CounterFunc/GaugeFunc) reading counters that live elsewhere —
// the latter is how the transports expose their existing atomic counters
// without double bookkeeping. WritePrometheus renders the text exposition
// format; see NewAdminMux for the live HTTP surface.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically updated float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a race-safe latency histogram built on stats.Histogram
// behind an atomic-swap snapshot: recorders lock only the active shard,
// and Snapshot swaps in a fresh shard before merging the retired one into
// the cumulative distribution, so a snapshot observes a consistent
// histogram without stalling the hot path for the duration of the merge.
type Histogram struct {
	active atomic.Pointer[histShard]

	// snapMu serializes snapshots and guards cum.
	snapMu sync.Mutex
	cum    *stats.Histogram
}

type histShard struct {
	mu      sync.Mutex
	retired bool
	h       *stats.Histogram
}

// NewHistogram returns an empty race-safe histogram.
func NewHistogram() *Histogram {
	h := &Histogram{cum: stats.NewHistogram()}
	h.active.Store(&histShard{h: stats.NewHistogram()})
	return h
}

// Record adds one sample. Safe for concurrent use with other Records and
// with Snapshot; a nil *Histogram is a valid no-op sink.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	for {
		s := h.active.Load()
		s.mu.Lock()
		if s.retired {
			// A snapshot swapped and merged this shard between our load and
			// lock; recording into it would lose the sample. Retry against
			// the fresh shard.
			s.mu.Unlock()
			continue
		}
		s.h.Record(d)
		s.mu.Unlock()
		return
	}
}

// Snapshot folds the active shard into the cumulative distribution and
// returns its summary.
func (h *Histogram) Snapshot() stats.Summary {
	if h == nil {
		return stats.Summary{}
	}
	h.snapMu.Lock()
	defer h.snapMu.Unlock()
	old := h.active.Swap(&histShard{h: stats.NewHistogram()})
	old.mu.Lock()
	old.retired = true
	h.cum.Merge(old.h)
	old.mu.Unlock()
	return h.cum.Summarize()
}

// Kind classifies a registered metric for exposition.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// Point is one scraped metric value (histograms expand to several Points in
// the Prometheus exposition; Snapshot reports them as one Point with the
// summary attached).
type Point struct {
	Name    string // full name including labels
	Kind    Kind
	Value   float64       // counter/gauge value
	Summary stats.Summary // histogram summary (KindHistogram only)
}

type metric struct {
	base    string // name without labels (for TYPE comments and sorting)
	kind    Kind
	counter func() uint64
	gauge   func() float64
	hist    *Histogram
	owned   any // the *Counter/*Gauge created by the registry, if any
}

// Registry is a race-safe set of named metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid no-op sink: every
// getter returns a live (but unregistered) metric, so instrumented code
// never branches on whether telemetry is wired.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order for stable iteration

	// labels are appended to every metric registered through this handle
	// (scoped views created by With share the underlying maps).
	labels string
	root   *Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// With returns a scoped view of the registry that appends the given
// label key/value pairs to every metric name registered through it. The
// view shares the underlying metric set; scraping the root sees everything.
func (r *Registry) With(kv ...string) *Registry {
	if r == nil {
		return nil
	}
	root := r.base()
	return &Registry{labels: joinLabels(r.labels, kv), root: root}
}

func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

func joinLabels(prev string, kv []string) string {
	var b strings.Builder
	b.WriteString(prev)
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

// fullName renders name plus the scope's labels and any extra pairs.
func (r *Registry) fullName(name string, kv []string) (full, base string) {
	labels := joinLabels(r.labels, kv)
	if labels == "" {
		return name, name
	}
	return name + "{" + labels + "}", name
}

// register installs m under full, or returns the existing metric of the
// same name (get-or-create semantics; kinds must agree).
func (r *Registry) register(full, base string, m *metric) *metric {
	root := r.base()
	root.mu.Lock()
	defer root.mu.Unlock()
	if have, ok := root.metrics[full]; ok {
		if have.kind != m.kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", full))
		}
		return have
	}
	m.base = base
	root.metrics[full] = m
	root.order = append(root.order, full)
	return m
}

// Counter returns the counter registered under name (+ optional label
// pairs), creating it on first use. On a nil registry the counter is live
// but unregistered.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	c := &Counter{}
	if r == nil {
		return c
	}
	full, base := r.fullName(name, kv)
	m := r.register(full, base, &metric{kind: KindCounter, counter: c.Load, owned: c})
	// An existing registration keeps its own counter.
	if got, ok := m.owned.(*Counter); ok {
		return got
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	g := &Gauge{}
	if r == nil {
		return g
	}
	full, base := r.fullName(name, kv)
	m := r.register(full, base, &metric{kind: KindGauge, gauge: g.Load, owned: g})
	if got, ok := m.owned.(*Gauge); ok {
		return got
	}
	return g
}

// Histogram returns the latency histogram registered under name, creating
// it on first use.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	full, base := r.fullName(name, kv)
	h := NewHistogram()
	m := r.register(full, base, &metric{kind: KindHistogram, hist: h})
	return m.hist
}

// CounterFunc registers a counter sampled from f at scrape time — the hook
// for exposing counters that live elsewhere (client/server atomic stats).
// Re-registering the same name replaces nothing and keeps the first hook.
func (r *Registry) CounterFunc(name string, f func() uint64, kv ...string) {
	if r == nil {
		return
	}
	full, base := r.fullName(name, kv)
	r.register(full, base, &metric{kind: KindCounter, counter: f})
}

// GaugeFunc registers a gauge sampled from f at scrape time.
func (r *Registry) GaugeFunc(name string, f func() float64, kv ...string) {
	if r == nil {
		return
	}
	full, base := r.fullName(name, kv)
	r.register(full, base, &metric{kind: KindGauge, gauge: f})
}

// Snapshot scrapes every metric into a sorted []Point.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	root := r.base()
	root.mu.Lock()
	names := append([]string(nil), root.order...)
	ms := make([]*metric, len(names))
	for i, n := range names {
		ms[i] = root.metrics[n]
	}
	root.mu.Unlock()

	pts := make([]Point, 0, len(names))
	for i, m := range ms {
		p := Point{Name: names[i], Kind: m.kind}
		switch m.kind {
		case KindCounter:
			p.Value = float64(m.counter())
		case KindGauge:
			p.Value = m.gauge()
		case KindHistogram:
			p.Summary = m.hist.Snapshot()
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
	return pts
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries with
// quantile labels, a _sum (seconds), and a _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	pts := r.Snapshot()
	typed := make(map[string]bool)
	root := r.base()
	for _, p := range pts {
		base := p.Name
		root.mu.Lock()
		if m, ok := root.metrics[p.Name]; ok {
			base = m.base
		}
		root.mu.Unlock()
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typeName(p.Kind)); err != nil {
				return err
			}
		}
		switch p.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", p.Name, uint64(p.Value)); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %g\n", p.Name, p.Value); err != nil {
				return err
			}
		case KindHistogram:
			if err := writeSummary(w, p.Name, base, p.Summary); err != nil {
				return err
			}
		}
	}
	return nil
}

func typeName(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// writeSummary renders one histogram as Prometheus summary series. full is
// the labelled name, base the bare one; quantile labels merge with any
// existing label set.
func writeSummary(w io.Writer, full, base string, s stats.Summary) error {
	q := func(label string, v time.Duration) string {
		return withLabel(full, base, fmt.Sprintf("quantile=%q", label)) +
			fmt.Sprintf(" %g\n", v.Seconds())
	}
	var b strings.Builder
	b.WriteString(q("0.5", s.P50))
	b.WriteString(q("0.95", s.P95))
	b.WriteString(q("0.99", s.P99))
	fmt.Fprintf(&b, "%s %g\n", suffixed(full, base, "_sum"),
		(time.Duration(s.Count) * s.Mean).Seconds())
	fmt.Fprintf(&b, "%s %d\n", suffixed(full, base, "_count"), s.Count)
	_, err := io.WriteString(w, b.String())
	return err
}

// withLabel inserts an extra label pair into a (possibly already labelled)
// metric name.
func withLabel(full, base, label string) string {
	if full == base {
		return base + "{" + label + "}"
	}
	// full = base{...}: splice before the closing brace.
	return full[:len(full)-1] + "," + label + "}"
}

// suffixed appends suffix to the base name, preserving the label set.
func suffixed(full, base, suffix string) string {
	if full == base {
		return base + suffix
	}
	return base + suffix + full[len(base):]
}
