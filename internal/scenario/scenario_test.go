package scenario

import (
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
)

func TestMovingObjectsStayInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMovingObjects(rng, MovingConfig{N: 64, Speed: 0.1})
	var moves []Move
	for tick := 0; tick < 200; tick++ {
		moves = m.Tick(rng, moves)
		if len(moves) != m.Len() {
			t.Fatalf("tick emitted %d moves, want %d", len(moves), m.Len())
		}
		for i, mv := range moves {
			if !mv.To.Valid() || mv.To.MinX < 0 || mv.To.MaxX > 1 || mv.To.MinY < 0 || mv.To.MaxY > 1 {
				t.Fatalf("tick %d object %d left the unit square: %v", tick, i, mv.To)
			}
			if mv.Ref != m.Ref(i) {
				t.Fatalf("object %d emitted ref %d, want %d", i, mv.Ref, m.Ref(i))
			}
		}
	}
}

func TestMovingObjectsDeterministic(t *testing.T) {
	run := func() []Move {
		rng := rand.New(rand.NewSource(7))
		m := NewMovingObjects(rng, MovingConfig{N: 16})
		var moves []Move
		for tick := 0; tick < 50; tick++ {
			moves = m.Tick(rng, nil)
		}
		return moves
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at object %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMovingObjectsMoveChainsAreContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMovingObjects(rng, MovingConfig{N: 8})
	prev := m.Seed()
	for tick := 0; tick < 20; tick++ {
		moves := m.Tick(rng, nil)
		for i, mv := range moves {
			if mv.From != prev[i].Rect {
				t.Fatalf("tick %d object %d: From %v does not chain from previous To %v",
					tick, i, mv.From, prev[i].Rect)
			}
			prev[i].Rect = mv.To
		}
	}
}

func TestZipfGridSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfGrid(rng, 8, 1.4)
	hot := z.HotCell()
	const n = 20000
	inHot := 0
	for i := 0; i < n; i++ {
		x, y := z.Point(rng)
		if x < 0 || x > 1 || y < 0 || y > 1 {
			t.Fatalf("sample %d outside unit square: (%g, %g)", i, x, y)
		}
		if hot.ContainsPoint(x, y) {
			inHot++
		}
	}
	// The rank-1 cell of a 64-cell Zipf(1.4) draws far more than the
	// uniform 1/64 ≈ 1.6% share; require a conservative 10×.
	if frac := float64(inHot) / n; frac < 0.16 {
		t.Fatalf("hot cell drew %.1f%% of traffic, want >= 16%%", frac*100)
	}
}

func TestZipfGridMigrateMovesHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := NewZipfGrid(rng, 8, 1.4)
	before := z.HotCell()
	moved := false
	for i := 0; i < 10; i++ {
		z.Migrate(rng)
		if z.HotCell() != before {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("10 migrations never moved the hotspot")
	}
}

func TestFlashCrowdPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := &FlashCrowd{Grid: NewZipfGrid(rng, 8, 1.4), PhaseOps: 100}
	for i := 0; i < 350; i++ {
		f.Next(rng)
	}
	if f.Phase() != 3 {
		t.Fatalf("350 ops with 100-op phases fired %d migrations, want 3", f.Phase())
	}
}

func TestNearbyWindowCentersOnObject(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMovingObjects(rng, MovingConfig{N: 4})
	for i := 0; i < m.Len(); i++ {
		q := m.Nearby(i, 0.01)
		if !q.Valid() {
			t.Fatalf("object %d nearby window invalid: %v", i, q)
		}
		if !q.ContainsPoint(m.X[i], m.Y[i]) {
			t.Fatalf("object %d at (%g, %g) outside its own window %v", i, m.X[i], m.Y[i], q)
		}
	}
	// Windows clamp at the boundary rather than spilling outside.
	m.X[0], m.Y[0] = 0, 1
	q := m.Nearby(0, 0.5)
	if q.MinX < 0 || q.MaxY > 1 {
		t.Fatalf("boundary window spilled outside the unit square: %v", q)
	}
	var _ geo.Rect = q
}
