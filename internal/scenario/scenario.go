// Package scenario turns the repo into a geo serving testbed (DESIGN.md
// §5.13): a fleet of moving objects updating their positions through
// first-class MOVE operations, nearby-window and k-nearest-neighbor query
// generation around those objects, and skewed spatial traffic — Zipfian
// hotspots over grid cells plus flash-crowd traces whose hotspot migrates
// abruptly — to drive the autoscaler and resharder the way a real geo
// service (ride hailing, fleet tracking, "restaurants near me") would.
//
// Every generator draws from a caller-provided *rand.Rand, so a scenario
// replays deterministically under a seed and each simulated or real loader
// gets an independent stream.
package scenario

import (
	"math"
	"math/rand"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
)

// Move is one position update: the entry (From, Ref) relocates to (To,
// Ref). It maps 1:1 onto wire.MsgMove / Client.Move on both transports.
type Move struct {
	From, To geo.Rect
	Ref      uint64
}

// MovingObjects is a fleet of point objects — vehicles, couriers, phones —
// random-walking the unit square. Each Tick advances every object by one
// step of its velocity and emits the corresponding MOVE operations;
// objects reflect off the data-space boundary so the fleet never leaves
// the unit square.
type MovingObjects struct {
	// X, Y are the current positions, indexed by object.
	X, Y []float64
	// vx, vy are per-object velocities in unit-square units per tick.
	vx, vy []float64
	// refBase offsets the object index into the entry ref space, so a
	// fleet can coexist with a static dataset.
	refBase uint64
	// edge is the indexed rectangle's edge length (objects are near-point
	// rects, like the dataset's street segments).
	edge float64
}

// MovingConfig shapes a fleet.
type MovingConfig struct {
	// N is the object count.
	N int
	// Speed is the per-tick step length drawn uniform in (0, Speed]
	// (default 0.002 — a vehicle crossing the city in ~500 ticks).
	Speed float64
	// Edge is the indexed rectangle edge (default 1e-5, matching the
	// paper's dataset scale).
	Edge float64
	// RefBase offsets object refs (default 0).
	RefBase uint64
}

// NewMovingObjects scatters a fleet uniformly with uniformly-oriented
// velocities drawn from rng.
func NewMovingObjects(rng *rand.Rand, cfg MovingConfig) *MovingObjects {
	if cfg.Speed == 0 {
		cfg.Speed = 0.002
	}
	if cfg.Edge == 0 {
		cfg.Edge = 1e-5
	}
	m := &MovingObjects{
		X:       make([]float64, cfg.N),
		Y:       make([]float64, cfg.N),
		vx:      make([]float64, cfg.N),
		vy:      make([]float64, cfg.N),
		refBase: cfg.RefBase,
		edge:    cfg.Edge,
	}
	for i := 0; i < cfg.N; i++ {
		m.X[i] = rng.Float64()
		m.Y[i] = rng.Float64()
		speed := rng.Float64() * cfg.Speed
		theta := rng.Float64() * 2 * math.Pi
		m.vx[i] = speed * math.Cos(theta)
		m.vy[i] = speed * math.Sin(theta)
	}
	return m
}

// Len returns the fleet size.
func (m *MovingObjects) Len() int { return len(m.X) }

// Ref returns object i's entry ref.
func (m *MovingObjects) Ref(i int) uint64 { return m.refBase + uint64(i) }

// Rect returns the indexed rectangle of object i at its current position.
func (m *MovingObjects) Rect(i int) geo.Rect {
	return m.rectAt(m.X[i], m.Y[i])
}

func (m *MovingObjects) rectAt(x, y float64) geo.Rect {
	return geo.Rect{MinX: x, MinY: y,
		MaxX: math.Min(x+m.edge, 1), MaxY: math.Min(y+m.edge, 1)}
}

// Seed returns the fleet's initial entries, for bulk loading or streaming
// inserts before the first tick.
func (m *MovingObjects) Seed() []rtree.Entry {
	out := make([]rtree.Entry, m.Len())
	for i := range out {
		out[i] = rtree.Entry{Rect: m.Rect(i), Ref: m.Ref(i)}
	}
	return out
}

// Tick advances every object one step and appends its MOVE to out
// (reused when non-nil). Objects reflect off the unit-square walls; rng
// injects a small heading jitter so trajectories decorrelate over time.
func (m *MovingObjects) Tick(rng *rand.Rand, out []Move) []Move {
	out = out[:0]
	for i := range m.X {
		from := m.Rect(i)
		x := m.X[i] + m.vx[i]
		y := m.Y[i] + m.vy[i]
		if x < 0 {
			x, m.vx[i] = -x, -m.vx[i]
		} else if x > 1 {
			x, m.vx[i] = 2-x, -m.vx[i]
		}
		if y < 0 {
			y, m.vy[i] = -y, -m.vy[i]
		} else if y > 1 {
			y, m.vy[i] = 2-y, -m.vy[i]
		}
		// ~1% per-tick heading perturbation: enough to break the perfect
		// billiard orbits, small enough to keep trajectories smooth.
		m.vx[i] += (rng.Float64() - 0.5) * 0.02 * m.vx[i]
		m.vy[i] += (rng.Float64() - 0.5) * 0.02 * m.vy[i]
		m.X[i], m.Y[i] = x, y
		out = append(out, Move{From: from, To: m.Rect(i), Ref: m.Ref(i)})
	}
	return out
}

// Nearby returns a nearby-window query rect of the given span centered on
// object i — "what's around this vehicle right now".
func (m *MovingObjects) Nearby(i int, span float64) geo.Rect {
	x, y := m.X[i], m.Y[i]
	return geo.Rect{
		MinX: math.Max(x-span/2, 0), MaxX: math.Min(x+span/2, 1),
		MinY: math.Max(y-span/2, 0), MaxY: math.Min(y+span/2, 1),
	}
}

// ZipfGrid samples query points with Zipfian spatial skew: the unit square
// is divided into Grid×Grid cells, a random permutation assigns each cell
// a popularity rank, and points are drawn by sampling a rank from a Zipf
// distribution and then a uniform position inside the ranked cell. The
// rank-1 cell is the hotspot; Migrate re-permutes the ranks, moving the
// hotspot abruptly — the flash-crowd event.
type ZipfGrid struct {
	grid int
	zipf *rand.Zipf
	perm []int // rank -> cell index
}

// NewZipfGrid builds a sampler over grid×grid cells with Zipf exponent s
// (> 1; larger is more skewed — 1.2 puts roughly half the traffic in the
// top few cells). The permutation and all sampling use rng.
func NewZipfGrid(rng *rand.Rand, grid int, s float64) *ZipfGrid {
	if grid < 1 {
		grid = 1
	}
	if s <= 1 {
		s = 1.2
	}
	return &ZipfGrid{
		grid: grid,
		zipf: rand.NewZipf(rng, s, 1, uint64(grid*grid-1)),
		perm: rng.Perm(grid * grid),
	}
}

// HotCell returns the current rank-1 (hottest) cell as a rect.
func (z *ZipfGrid) HotCell() geo.Rect {
	return z.cellRect(z.perm[0])
}

func (z *ZipfGrid) cellRect(cell int) geo.Rect {
	cw := 1.0 / float64(z.grid)
	cx := float64(cell%z.grid) * cw
	cy := float64(cell/z.grid) * cw
	return geo.Rect{MinX: cx, MinY: cy, MaxX: cx + cw, MaxY: cy + cw}
}

// Point samples one query point: Zipf rank → permuted cell → uniform
// position inside it.
func (z *ZipfGrid) Point(rng *rand.Rand) (x, y float64) {
	cell := z.cellRect(z.perm[z.zipf.Uint64()])
	return cell.MinX + rng.Float64()*cell.Width(), cell.MinY + rng.Float64()*cell.Height()
}

// Rect samples a query rect of the given edge anchored at a sampled point
// (clamped to the unit square).
func (z *ZipfGrid) Rect(rng *rand.Rand, edge float64) geo.Rect {
	x, y := z.Point(rng)
	return geo.Rect{MinX: x, MinY: y,
		MaxX: math.Min(x+edge, 1), MaxY: math.Min(y+edge, 1)}
}

// Migrate re-permutes the cell ranks — the hotspot jumps to a new random
// cell in one step, with no ramp. This is the flash-crowd event: a stadium
// lets out, a concert starts, and the traffic center of mass moves faster
// than any gradual controller assumption allows.
func (z *ZipfGrid) Migrate(rng *rand.Rand) {
	z.perm = rng.Perm(z.grid * z.grid)
}

// FlashCrowd drives a ZipfGrid through a phased trace: every PhaseOps
// samples the hotspot migrates. Sharing one FlashCrowd across loaders is
// not goroutine-safe; give each loader its own (same seed ⇒ same phases).
type FlashCrowd struct {
	// Grid is the underlying skewed sampler.
	Grid *ZipfGrid
	// PhaseOps is the number of samples between migrations.
	PhaseOps int

	ops    int
	phases int
}

// Next samples the next query point, migrating the hotspot at phase
// boundaries.
func (f *FlashCrowd) Next(rng *rand.Rand) (x, y float64) {
	if f.PhaseOps > 0 && f.ops > 0 && f.ops%f.PhaseOps == 0 {
		f.Grid.Migrate(rng)
		f.phases++
	}
	f.ops++
	return f.Grid.Point(rng)
}

// Phase returns how many migrations have fired.
func (f *FlashCrowd) Phase() int { return f.phases }
