// Package replica is the availability core shared by both transports: the
// sequenced op-log a shard primary streams to its backups, the per-server
// replication state machine (epoch fencing, gap detection, promotion), and
// the successor-election helper routers use during failover.
//
// The protocol (DESIGN.md §5.11) follows the RDMA LSM index-replication
// recipe: every applied index mutation becomes a Record stamped with the
// shard's epoch and a dense sequence number. A backup applies records in
// sequence order; a gap makes it ask the primary to resume from its last
// applied sequence, and a record from a lower epoch is fenced — the sender
// is a deposed zombie. Promotion bumps the epoch, so exactly one lineage of
// writes survives a failover.
package replica

import (
	"errors"
	"fmt"
	"sync"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/wire"
)

// Sentinel errors shared across transports, so routers can failover on
// errors.Is checks regardless of which stack produced them.
var (
	// ErrFenced means an operation carried an epoch below the server's
	// current one: the sender lost a failover election and must stop.
	ErrFenced = errors.New("replica: fenced: epoch is stale")
	// ErrNotPrimary means a client write reached an unpromoted backup.
	ErrNotPrimary = errors.New("replica: not primary")
	// ErrUnavailable means the server is up but refusing service.
	ErrUnavailable = errors.New("replica: server unavailable")
)

// GapError reports a sequence discontinuity: the backup has applied
// everything through Applied and received Got instead of Applied+1.
type GapError struct {
	Applied uint64
	Got     uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("replica: sequence gap: applied %d, got %d", e.Applied, e.Got)
}

// Record is one sequenced index mutation (Op is wire.MsgInsert or
// wire.MsgDelete).
type Record struct {
	Epoch uint64
	Seq   uint64
	Op    wire.MsgType
	Rect  geo.Rect
	Ref   uint64
}

// Wire converts the record to its wire encoding struct.
func (r Record) Wire() wire.ReplRecord {
	return wire.ReplRecord{Epoch: r.Epoch, Seq: r.Seq, Op: r.Op, Rect: r.Rect, Ref: r.Ref}
}

// FromWire converts a decoded wire record.
func FromWire(w wire.ReplRecord) Record {
	return Record{Epoch: w.Epoch, Seq: w.Seq, Op: w.Op, Rect: w.Rect, Ref: w.Ref}
}

// Log is the primary's in-memory op-log: an append-only sequence of records
// a backup can be re-sent from after a gap. It is safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	recs []Record
}

// Append adds a record to the log.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// LastSeq returns the sequence number of the newest record (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return 0
	}
	return l.recs[len(l.recs)-1].Seq
}

// Since returns a copy of every record with Seq > seq, in order.
func (l *Log) Since(seq uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Sequences are dense and ascending, so binary-search by offset.
	lo, hi := 0, len(l.recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.recs[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(l.recs) {
		return nil
	}
	return append([]Record(nil), l.recs[lo:]...)
}

// State is one server's replication state machine. The zero value is not
// useful; construct with NewState.
type State struct {
	mu      sync.Mutex
	epoch   uint64
	applied uint64
	primary bool
}

// NewState returns a state at the given epoch. A primary assigns sequence
// numbers; a backup validates them.
func NewState(epoch uint64, primary bool) *State {
	if epoch == 0 {
		epoch = 1
	}
	return &State{epoch: epoch, primary: primary}
}

// Epoch returns the current epoch.
func (s *State) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Applied returns the highest applied sequence number.
func (s *State) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Primary reports whether this server currently accepts client writes.
func (s *State) Primary() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// Next stamps the next mutation on the primary: it increments the applied
// sequence and returns (epoch, seq). Callers must hold the tree latch so
// sequence order matches apply order. Fails with ErrNotPrimary on a backup
// — a deposed primary stops acknowledging writes the moment it learns of
// the new epoch.
func (s *State) Next() (epoch, seq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.primary {
		return 0, 0, ErrNotPrimary
	}
	s.applied++
	return s.epoch, s.applied, nil
}

// Promote moves the state to epoch as primary. It is idempotent: an epoch
// at or below the current one (with the server already primary) is a no-op,
// and a promotion never lowers the epoch. It reports whether the state
// changed.
func (s *State) Promote(epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch || (epoch == s.epoch && s.primary) {
		return false
	}
	s.epoch = epoch
	s.primary = true
	return true
}

// Fence records that a higher epoch exists: the server demotes itself to
// backup at that epoch. Used when a primary's replication is rejected by a
// promoted backup. Lower epochs are ignored.
func (s *State) Fence(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.epoch {
		s.epoch = epoch
		s.primary = false
	}
}

// Accept validates one incoming record's (epoch, seq) on a backup and, on
// success, advances the applied sequence. The caller applies the mutation
// under the same latch. Errors:
//
//   - ErrFenced: the record's epoch is below the backup's — zombie sender.
//   - GapError: the sequence is not applied+1; the sender should resend
//     from Applied.
//
// A record from a higher epoch adopts that epoch (the new primary's first
// record after promotion) and demotes this server to backup.
func (s *State) Accept(epoch, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch {
		return fmt.Errorf("%w: record epoch %d, current %d", ErrFenced, epoch, s.epoch)
	}
	if epoch > s.epoch {
		s.epoch = epoch
		s.primary = false
	}
	if seq != s.applied+1 {
		return &GapError{Applied: s.applied, Got: seq}
	}
	s.applied = seq
	return nil
}

// Snapshot returns (epoch, applied) atomically — the pair heartbeats carry.
func (s *State) Snapshot() (epoch, applied uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, s.applied
}

// PickSuccessor elects the failover target among a shard's candidates:
// the healthy candidate with the highest applied sequence, ties broken by
// lowest index (deterministic across routers). Returns -1 when no healthy
// candidate exists.
func PickSuccessor(applied []uint64, healthy []bool) int {
	best := -1
	for i := range applied {
		if i < len(healthy) && !healthy[i] {
			continue
		}
		if best == -1 || applied[i] > applied[best] {
			best = i
		}
	}
	return best
}

// StatusError maps a wire response status to the replica sentinel it
// encodes, or nil when the status carries no replication meaning. Both
// transports' clients route through this so errors.Is works identically.
func StatusError(status uint8) error {
	switch status {
	case wire.StatusUnavailable:
		return ErrUnavailable
	case wire.StatusFenced:
		return ErrFenced
	case wire.StatusNotPrimary:
		return ErrNotPrimary
	}
	return nil
}

// Failover reports whether err is a condition a router should respond to by
// promoting a backup (server refusing service, deposed primary, or an
// unpromoted backup holding the active slot).
func Failover(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrFenced) ||
		errors.Is(err, ErrNotPrimary)
}
