package replica

import (
	"errors"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/wire"
)

func TestLogSince(t *testing.T) {
	var l Log
	if l.LastSeq() != 0 {
		t.Fatalf("empty log LastSeq = %d", l.LastSeq())
	}
	if got := l.Since(0); got != nil {
		t.Fatalf("empty log Since(0) = %v", got)
	}
	for i := uint64(1); i <= 10; i++ {
		l.Append(Record{Epoch: 1, Seq: i, Op: wire.MsgInsert, Ref: i})
	}
	if l.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l.LastSeq())
	}
	for _, tc := range []struct {
		since uint64
		first uint64
		n     int
	}{
		{0, 1, 10}, {1, 2, 9}, {5, 6, 5}, {9, 10, 1}, {10, 0, 0}, {99, 0, 0},
	} {
		got := l.Since(tc.since)
		if len(got) != tc.n {
			t.Fatalf("Since(%d): %d records, want %d", tc.since, len(got), tc.n)
		}
		if tc.n > 0 && got[0].Seq != tc.first {
			t.Fatalf("Since(%d): first seq %d, want %d", tc.since, got[0].Seq, tc.first)
		}
	}
}

func TestStateSequencing(t *testing.T) {
	s := NewState(1, true)
	for i := uint64(1); i <= 3; i++ {
		ep, seq, err := s.Next()
		if err != nil || ep != 1 || seq != i {
			t.Fatalf("Next = (%d, %d, %v), want (1, %d, nil)", ep, seq, err, i)
		}
	}
	b := NewState(1, false)
	if _, _, err := b.Next(); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("backup Next err = %v, want ErrNotPrimary", err)
	}
}

func TestAcceptFencingAndGaps(t *testing.T) {
	b := NewState(2, false)
	if err := b.Accept(1, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale epoch: err = %v, want ErrFenced", err)
	}
	if err := b.Accept(2, 1); err != nil {
		t.Fatalf("seq 1: %v", err)
	}
	// Gap: seq 3 with only 1 applied.
	err := b.Accept(2, 3)
	var gap *GapError
	if !errors.As(err, &gap) || gap.Applied != 1 || gap.Got != 3 {
		t.Fatalf("gap err = %v", err)
	}
	if err := b.Accept(2, 2); err != nil {
		t.Fatalf("seq 2: %v", err)
	}
	// Higher epoch adopts and demotes.
	b.Promote(3)
	if !b.Primary() {
		t.Fatal("promote failed")
	}
	if err := b.Accept(4, 3); err != nil {
		t.Fatalf("higher-epoch record: %v", err)
	}
	if b.Primary() || b.Epoch() != 4 {
		t.Fatalf("after higher-epoch record: primary=%v epoch=%d", b.Primary(), b.Epoch())
	}
}

func TestPromoteIdempotent(t *testing.T) {
	s := NewState(1, false)
	if !s.Promote(2) {
		t.Fatal("first promote should change state")
	}
	if s.Promote(2) {
		t.Fatal("same-epoch re-promote should be a no-op")
	}
	if s.Promote(1) {
		t.Fatal("lower-epoch promote should be a no-op")
	}
	if s.Epoch() != 2 || !s.Primary() {
		t.Fatalf("epoch=%d primary=%v", s.Epoch(), s.Primary())
	}
	// A demoted server can be re-promoted at the same epoch it was fenced
	// to only via a higher epoch.
	s.Fence(3)
	if s.Primary() {
		t.Fatal("fence should demote")
	}
	if !s.Promote(3) {
		t.Fatal("promote at fenced epoch should succeed (not primary yet)")
	}
}

func TestPickSuccessor(t *testing.T) {
	for _, tc := range []struct {
		applied []uint64
		healthy []bool
		want    int
	}{
		{[]uint64{5, 7, 7}, []bool{true, true, true}, 1},
		{[]uint64{5, 7, 9}, []bool{true, true, false}, 1},
		{[]uint64{5, 7, 9}, []bool{false, false, false}, -1},
		{[]uint64{0, 0}, []bool{true, true}, 0},
		{nil, nil, -1},
	} {
		if got := PickSuccessor(tc.applied, tc.healthy); got != tc.want {
			t.Fatalf("PickSuccessor(%v, %v) = %d, want %d", tc.applied, tc.healthy, got, tc.want)
		}
	}
}

func TestStatusError(t *testing.T) {
	if err := StatusError(wire.StatusOK); err != nil {
		t.Fatalf("StatusOK → %v", err)
	}
	if err := StatusError(wire.StatusUnavailable); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("unavailable → %v", err)
	}
	if err := StatusError(wire.StatusFenced); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced → %v", err)
	}
	if err := StatusError(wire.StatusNotPrimary); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("not-primary → %v", err)
	}
	for _, err := range []error{ErrUnavailable, ErrFenced, ErrNotPrimary} {
		if !Failover(err) {
			t.Fatalf("Failover(%v) = false", err)
		}
	}
	if Failover(errors.New("other")) {
		t.Fatal("Failover(other) = true")
	}
}

func TestRecordWireRoundTrip(t *testing.T) {
	rec := Record{Epoch: 3, Seq: 42, Op: wire.MsgDelete,
		Rect: geo.Rect{MinX: 1, MaxX: 2, MinY: 3, MaxY: 4}, Ref: 99}
	enc := wire.Replicate{ID: 7, Records: []wire.ReplRecord{rec.Wire()}}.Encode(nil)
	dec, err := wire.DecodeReplicate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 7 || len(dec.Records) != 1 {
		t.Fatalf("decoded %+v", dec)
	}
	if got := FromWire(dec.Records[0]); got != rec {
		t.Fatalf("round trip: got %+v, want %+v", got, rec)
	}
}
