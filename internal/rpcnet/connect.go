package rpcnet

import (
	"errors"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// Conn is the unified client-side handle of a Catfish deployment: the
// method set shared by the single-server Client and the scatter-gather
// Router, so callers write to one interface whether they connected to one
// server, a sharded deployment, or a replicated one. Connect is the
// constructor; like the concrete types, a Conn serves one goroutine at a
// time.
type Conn interface {
	// Search returns every indexed item intersecting q and the access
	// method that served it (a router reports the method of the slowest
	// sub-search).
	Search(q geo.Rect) ([]wire.Item, Method, error)
	// Insert adds an entry (routed to its owning shard).
	Insert(r geo.Rect, ref uint64) error
	// Delete removes an entry by rectangle and ref.
	Delete(r geo.Rect, ref uint64) error
	// Move relocates entry (from, ref) to (to, ref) — atomic under one
	// tree latch when one shard owns both positions, insert-then-delete
	// across an ownership boundary. Upsert semantics: moving an unknown
	// entry degrades to a plain insert.
	Move(from, to geo.Rect, ref uint64) error
	// Nearest returns the k entries nearest to (x, y) in ascending
	// distance order, exactly matching a local rtree.Tree.Nearest over
	// the deployment's union (a router gathers shards best-first). kNN is
	// pinned to server-side execution, so the method is fast or fetch.
	Nearest(k int, x, y float64) ([]rtree.Neighbor, Method, error)
	// ExecBatch executes ops in one multiplexed flight; results is
	// reused when non-nil. Per-op errors land in the results.
	ExecBatch(ops []BatchOp, results []BatchResult) []BatchResult
	// Snapshot returns the connection's accumulated client metrics
	// (summed across shards for a router).
	Snapshot() telemetry.ClientSnapshot
	// Close releases the connection's streams; pooled transports stay
	// open for their other users.
	Close() error
}

// Both concrete handles satisfy Conn.
var (
	_ Conn = (*Client)(nil)
	_ Conn = (*Router)(nil)
)

// Snapshot returns the client's accumulated metrics (Conn's name for
// Stats).
func (c *Client) Snapshot() telemetry.ClientSnapshot { return c.Stats() }

// connectOptions is the merged option state Connect resolves into either
// a Client or a Router.
type connectOptions struct {
	client ClientConfig
	router RouterConfig
	pool   *MuxPool
}

// routed reports whether any router-only behavior was requested, forcing
// the Router shape even for a single address.
func (o *connectOptions) routed() bool {
	return len(o.router.Backups) > 0 || o.router.HealthMultiple > 0 ||
		o.router.ReadReplicaUtil > 0
}

// Option tunes Connect. Options apply in order, so later options override
// earlier ones (put WithClientConfig first when combining it with finer
// options).
type Option func(*connectOptions)

// WithClientConfig replaces the base per-connection client configuration
// wholesale — the escape hatch for knobs without a dedicated option
// (MultiIssue, restart budgets, ...). Finer options applied after it still
// override individual fields.
func WithClientConfig(cfg ClientConfig) Option {
	return func(o *connectOptions) { o.client = cfg }
}

// WithAdaptive runs Algorithm 1's adaptive method switch with back-off
// window unit n and busy threshold t (0 values keep the defaults 8 and
// 0.95).
func WithAdaptive(n int, t float64) Option {
	return func(o *connectOptions) {
		o.client.Adaptive = true
		o.client.N = n
		o.client.T = t
	}
}

// WithForced pins every search to one access method, disabling the
// adaptive switch.
func WithForced(m Method) Option {
	return func(o *connectOptions) {
		o.client.Adaptive = false
		o.client.Forced = m
	}
}

// WithFetch arms the adaptive switch's third branch — RFP-style mailbox
// fetching — with busy threshold txT on predicted TX utilization (0 keeps
// the default 0.8).
func WithFetch(txT float64) Option {
	return func(o *connectOptions) {
		o.client.Fetch = true
		o.client.TxT = txT
	}
}

// WithNodeCache enables the version-validated client-side node cache with
// the given capacity in nodes.
func WithNodeCache(capacity int) Option {
	return func(o *connectOptions) { o.client.NodeCache = capacity }
}

// WithMergeSpan folds up to span physically-adjacent chunk reads of one
// multi-issue frontier into a single READ_SPAN round trip.
func WithMergeSpan(span int) Option {
	return func(o *connectOptions) { o.client.MergeSpan = span }
}

// WithPrefetch sets the token-bucket capacity for speculative span
// extensions during offloaded traversal.
func WithPrefetch(budget int) Option {
	return func(o *connectOptions) { o.client.Prefetch = budget }
}

// WithMetrics exposes the connection's client counters on reg (per-shard
// labelled views for a router).
func WithMetrics(reg *telemetry.Registry) Option {
	return func(o *connectOptions) { o.client.Metrics = reg }
}

// WithTrace streams one telemetry.Trace per search to tr.
func WithTrace(tr *telemetry.Tracer) Option {
	return func(o *connectOptions) { o.client.Trace = tr }
}

// WithSeed seeds the connection's back-off randomness (a router offsets it
// per shard so draws decorrelate).
func WithSeed(seed int64) Option {
	return func(o *connectOptions) { o.client.Seed = seed }
}

// WithDeadline stamps every fast-messaging operation with a relative
// latency budget; an admission-controlled server sheds the operation with
// ErrOverloaded when it cannot start within the budget.
func WithDeadline(d time.Duration) Option {
	return func(o *connectOptions) { o.client.Deadline = d }
}

// WithBackups configures per-shard backup replicas in preference order,
// arming read fallback and write failover (DESIGN.md §5.11). Forces the
// Router shape even for a single address.
func WithBackups(backups [][]string) Option {
	return func(o *connectOptions) { o.router.Backups = backups }
}

// WithHealthMultiple sets the shard-liveness window in heartbeat
// intervals. Forces the Router shape even for a single address.
func WithHealthMultiple(n int) Option {
	return func(o *connectOptions) { o.router.HealthMultiple = n }
}

// WithReadReplicaUtil routes sub-searches to the least-loaded replica
// whenever the active server's predicted utilization exceeds u. Forces the
// Router shape even for a single address.
func WithReadReplicaUtil(u float64) Option {
	return func(o *connectOptions) { o.router.ReadReplicaUtil = u }
}

// WithMuxPool attaches the connection's logical clients to pooled
// multiplexed transports instead of dedicated sockets, so thousands of
// Conns share a bounded set of TCP connections (the C10K shape). The pool
// outlives the Conn: Close detaches streams but leaves pooled connections
// open for their other users.
func WithMuxPool(p *MuxPool) Option {
	return func(o *connectOptions) { o.pool = p }
}

// Connect is the unified entry point to a Catfish deployment over real
// sockets: one address yields a direct client, several (or any
// router-only option — backups, health tracking, read replicas) yield a
// scatter-gather router, and a MuxPool multiplexes either shape over
// shared connections. It subsumes Dial and DialRouter, which remain as
// thin deprecated wrappers.
func Connect(addrs []string, opts ...Option) (Conn, error) {
	if len(addrs) == 0 {
		return nil, errors.New("rpcnet: connect needs at least one address")
	}
	var o connectOptions
	for _, opt := range opts {
		opt(&o)
	}
	if len(addrs) == 1 && !o.routed() {
		if o.pool != nil {
			m, err := o.pool.Mux(addrs[0])
			if err != nil {
				return nil, err
			}
			return m.Client(o.client)
		}
		return Dial(addrs[0], o.client)
	}
	rc := o.router
	rc.Client = o.client
	rc.Pool = o.pool
	return DialRouter(addrs, rc)
}
