package rpcnet

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/wire"
)

// TestMuxSharedConnection runs many logical clients over one TCP
// connection and checks every stream's answers against the tree.
func TestMuxSharedConnection(t *testing.T) {
	srv, tree := startServer(t, 500, ServerConfig{})
	m, err := DialMux(srv.Addr().String(), MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const clients = 16
	const opsPer = 30
	// The local reference tree is not safe for concurrent searches, so
	// expected answers are computed up front, before the fan-out.
	type probe struct {
		q    geo.Rect
		want int
	}
	plans := make([][]probe, clients)
	for i := range plans {
		rng := rand.New(rand.NewSource(int64(i + 100)))
		plans[i] = make([]probe, opsPer)
		for j := range plans[i] {
			q := randRect(rng, 0.05)
			want, _, err := tree.SearchCollect(q)
			if err != nil {
				t.Fatal(err)
			}
			plans[i][j] = probe{q: q, want: len(want)}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		c, err := m.Client(ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *Client, plan []probe) {
			defer wg.Done()
			for _, p := range plan {
				items, _, err := c.Search(p.q)
				if err != nil {
					errc <- err
					return
				}
				if len(items) != p.want {
					errc <- fmt.Errorf("stream got %d items, want %d", len(items), p.want)
					return
				}
			}
		}(c, plans[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := m.Streams(); got != clients {
		t.Errorf("Streams() = %d, want %d", got, clients)
	}
}

// TestStreamIDExhaustion caps the stream space at 4, checks the 5th
// attach fails typed, and that closing a client returns its id for reuse.
func TestStreamIDExhaustion(t *testing.T) {
	srv, _ := startServer(t, 50, ServerConfig{})
	m, err := DialMux(srv.Addr().String(), MuxConfig{MaxStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cs := make([]*Client, 4)
	for i := range cs {
		if cs[i], err = m.Client(ClientConfig{}); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if _, err := m.Client(ClientConfig{}); !errors.Is(err, ErrStreamsExhausted) {
		t.Fatalf("5th client: err = %v, want ErrStreamsExhausted", err)
	}
	freed := cs[1].stream
	cs[1].Close()
	c, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatalf("attach after close: %v", err)
	}
	if c.stream != freed {
		t.Errorf("reused stream id %d, want freed id %d", c.stream, freed)
	}
	if _, _, err := c.Search(geo.NewRect(0, 0, 0.2, 0.2)); err != nil {
		t.Errorf("search on reused stream: %v", err)
	}
}

// TestStreamSeqWraparound presets a stream's sequence counter to the top
// of the 32-bit space and drives operations across the wrap: request ids
// stay unique per in-flight window because the stream id occupies the
// high bits, so the wrap must be invisible.
func TestStreamSeqWraparound(t *testing.T) {
	srv, tree := startServer(t, 200, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	c.seq.Store(^uint32(0) - 3) // 4 ops before wrap, then seq 0, 1, ...

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		q := randRect(rng, 0.05)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		items, _, err := c.Search(q)
		if err != nil {
			t.Fatalf("op %d (seq %d): %v", i, c.seq.Load(), err)
		}
		if len(items) != len(want) {
			t.Fatalf("op %d: got %d items, want %d", i, len(items), len(want))
		}
	}
	if got := c.seq.Load(); got >= ^uint32(0)-3 {
		t.Fatalf("sequence did not wrap: %d", got)
	}
}

// TestMuxInterleavedBatchedUnbatched interleaves ExecBatch traffic and
// unbatched operations from two streams of one shared connection, then
// verifies reads stayed exact and every write landed.
func TestMuxInterleavedBatchedUnbatched(t *testing.T) {
	srv, tree := startServer(t, 300, ServerConfig{})
	m, err := DialMux(srv.Addr().String(), MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cb, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Reads query the lower-left quadrant; writes land as points in a
	// far corner cell no query touches, so reads verify against the
	// static tree while writes race on the same wire.
	queryArea := geo.NewRect(0, 0, 0.5, 0.5)
	writeCell := func(i int) geo.Rect {
		x := 0.9 + float64(i%100)*1e-4
		y := 0.9 + float64(i/100)*1e-4
		return geo.NewRect(x, y, x+1e-5, y+1e-5)
	}
	const perSide = 120
	// Reference answers are computed before any traffic: the server's
	// dispatcher searches this same tree, and the local read path is not
	// concurrency-safe against it.
	type probe struct {
		q    geo.Rect
		want int
	}
	uRng := rand.New(rand.NewSource(22))
	var uPlan []probe
	for i := 0; i < perSide; i++ {
		if i%3 == 0 {
			uPlan = append(uPlan, probe{}) // placeholder: insert slot
			continue
		}
		q := randRectIn(uRng, queryArea, 0.05)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		uPlan = append(uPlan, probe{q: q, want: len(want)})
	}

	var wg sync.WaitGroup
	errc := make(chan error, 2)
	wg.Add(2)
	go func() { // batched: mixed search + insert containers
		defer wg.Done()
		rng := rand.New(rand.NewSource(21))
		var results []BatchResult
		for i := 0; i < perSide; i += 4 {
			ops := []BatchOp{
				{Type: wire.MsgSearch, Rect: randRectIn(rng, queryArea, 0.05)},
				{Type: wire.MsgInsert, Rect: writeCell(i), Ref: uint64(1<<20 + i)},
				{Type: wire.MsgInsert, Rect: writeCell(i + 1), Ref: uint64(1<<20 + i + 1)},
				{Type: wire.MsgSearch, Rect: randRectIn(rng, queryArea, 0.05)},
			}
			results = cb.ExecBatch(ops, results)
			for j, r := range results {
				if r.Err != nil {
					errc <- fmt.Errorf("batch op %d: %w", j, r.Err)
					return
				}
			}
			ops[2], ops[3] = ops[3], ops[2] // also cover insert-last layout
		}
	}()
	go func() { // unbatched on the sibling stream
		defer wg.Done()
		for i := 0; i < perSide; i++ {
			if i%3 == 0 {
				if err := cu.Insert(writeCell(512+i), uint64(1<<21+i)); err != nil {
					errc <- err
					return
				}
				continue
			}
			items, _, err := cu.Search(uPlan[i].q)
			if err != nil {
				errc <- err
				return
			}
			if len(items) != uPlan[i].want {
				errc <- fmt.Errorf("unbatched got %d items, want %d", len(items), uPlan[i].want)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every interleaved write must be present exactly once.
	items, _, err := cu.Search(geo.NewRect(0.9, 0.9, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, it := range items {
		seen[it.Ref]++
	}
	for i := 0; i < perSide; i += 4 {
		for _, ref := range []uint64{uint64(1<<20 + i), uint64(1<<20 + i + 1)} {
			if seen[ref] != 1 {
				t.Errorf("batched insert ref %d seen %d times", ref, seen[ref])
			}
		}
	}
	for i := 0; i < perSide; i += 3 {
		if ref := uint64(1<<21 + i); seen[ref] != 1 {
			t.Errorf("unbatched insert ref %d seen %d times", ref, seen[ref])
		}
	}
}

// randRectIn draws a query rectangle inside area with the given max edge.
func randRectIn(rng *rand.Rand, area geo.Rect, maxEdge float64) geo.Rect {
	w := rng.Float64() * maxEdge
	h := rng.Float64() * maxEdge
	x := area.MinX + rng.Float64()*(area.MaxX-area.MinX-w)
	y := area.MinY + rng.Float64()*(area.MaxY-area.MinY-h)
	return geo.NewRect(x, y, x+w, y+h)
}

// TestSlowReaderNoHOL parks hundreds of responses on one stream whose
// reader never consumes them and asserts a sibling stream's latency on
// the same connection stays bounded: readLoop delivery must never block
// on a slow stream (per-stream queues, no head-of-line blocking).
func TestSlowReaderNoHOL(t *testing.T) {
	srv, _ := startServer(t, 500, ServerConfig{})
	m, err := DialMux(srv.Addr().String(), MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	slow, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// The slow stream: fire 256 searches whose responses land in a
	// waiter nobody drains. A blocking readLoop would stall here.
	const parked = 256
	w := newWaiter()
	ids := make([]uint64, parked)
	for i := range ids {
		ids[i] = slow.nextID()
	}
	if err := m.registerAll(ids, w); err != nil {
		t.Fatal(err)
	}
	q := geo.NewRect(0.2, 0.2, 0.4, 0.4)
	for _, id := range ids {
		if err := m.send(wire.Request{Type: wire.MsgSearch, ID: id, Rect: q}.Encode(nil)); err != nil {
			t.Fatal(err)
		}
	}

	// The fast stream must keep answering with ordinary latency while
	// the slow stream's backlog accumulates. The bound is deliberately
	// loose for CI noise — a blocked readLoop fails by timeout, not by
	// a few milliseconds.
	var worst time.Duration
	for i := 0; i < 100; i++ {
		start := time.Now()
		if _, _, err := fast.Search(q); err != nil {
			t.Fatalf("fast stream op %d: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	if worst > 2*time.Second {
		t.Fatalf("fast stream worst latency %v with a slow sibling stream", worst)
	}

	// The parked responses really were delivered and never consumed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		n := len(w.queue)
		w.mu.Unlock()
		if n == parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow stream holds %d undrained responses, want %d", n, parked)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.unregisterAll(ids)
}

// TestShutdownConcurrentDials hammers Close against racing Accepts: the
// drain must reap every connection goroutine, including ones accepted in
// the shutdown window. Run with -race; the goroutine count check catches
// the leak the registration-before-spawn ordering fixed.
func TestShutdownConcurrentDials(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		reg, err := region.New(1<<12, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := Listen("127.0.0.1:0", tree, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck // returns on Close
		addr := srv.Addr().String()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, err := Dial(addr, ClientConfig{})
					if err != nil {
						return // server gone
					}
					c.Search(geo.NewRect(0, 0, 0.1, 0.1)) //nolint:errcheck // racing Close
					c.Close()
				}
			}()
		}
		time.Sleep(time.Duration(2+round) * time.Millisecond)
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		close(stop)
		wg.Wait()
	}

	// Every serveConn/dispatcher/heartbeat goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionShedsTyped arms admission control at a threshold any load
// exceeds, saturates a tiny dispatch queue with microsecond deadlines,
// and asserts shed operations surface as ErrOverloaded — typed, distinct
// from transport errors — while the server counts them. Run with -race.
func TestAdmissionShedsTyped(t *testing.T) {
	srv, _ := startServer(t, 500, ServerConfig{
		HeartbeatInterval: time.Millisecond,
		AdmissionUtil:     1e-9, // arms on the first busy heartbeat window
		DispatchWorkers:   2,
		DispatchQueue:     4,
	})

	var overloaded, ok atomic.Uint64
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	stop := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String(), ClientConfig{Deadline: time.Microsecond})
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := c.Search(randRect(rng, 0.2))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				default:
					errc <- fmt.Errorf("untyped error under overload: %w", err)
					return
				}
			}
		}(int64(i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for overloaded.Load() < 50 && time.Now().Before(deadline) && len(errc) == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := overloaded.Load(); got < 50 {
		t.Fatalf("saw %d ErrOverloaded, want >= 50 (ok=%d)", got, ok.Load())
	}
	if st := srv.Stats(); st.Overloaded == 0 {
		t.Fatal("server Stats().Overloaded = 0 after shedding")
	}
}

// TestMuxOffAdmissionOffMatchesBaseline drives an identical seeded
// workload through a dedicated connection (the PR-8 baseline shape) and
// through a stream of a shared connection against identically-built
// servers with admission control off, and requires bit-for-bit equal
// results: same items, same order, same errors.
func TestMuxOffAdmissionOffMatchesBaseline(t *testing.T) {
	srvA, _ := startServer(t, 400, ServerConfig{})
	srvB, _ := startServer(t, 400, ServerConfig{})

	base := dial(t, srvA, ClientConfig{}) // owns its connection: baseline
	m, err := DialMux(srvB.Addr().String(), MuxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Extra attached streams prove sharing itself doesn't perturb results.
	if _, err := m.Client(ClientConfig{}); err != nil {
		t.Fatal(err)
	}
	mux, err := m.Client(ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	type op struct {
		kind wire.MsgType
		rect geo.Rect
		ref  uint64
	}
	rng := rand.New(rand.NewSource(33))
	var ops []op
	for i := 0; i < 200; i++ {
		switch {
		case i%5 == 1:
			ops = append(ops, op{wire.MsgInsert, randRect(rng, 0.001), uint64(1<<30 + i)})
		case i%11 == 2:
			ops = append(ops, op{wire.MsgDelete, randRect(rng, 0.001), uint64(1<<30 + i - 4)})
		default:
			ops = append(ops, op{kind: wire.MsgSearch, rect: randRect(rng, 0.05)})
		}
	}

	run := func(c *Client, o op) ([]wire.Item, error) {
		switch o.kind {
		case wire.MsgInsert:
			return nil, c.Insert(o.rect, o.ref)
		case wire.MsgDelete:
			return nil, c.Delete(o.rect, o.ref)
		default:
			items, _, err := c.Search(o.rect)
			return items, err
		}
	}
	for i, o := range ops {
		wantItems, wantErr := run(base, o)
		gotItems, gotErr := run(mux, o)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("op %d: baseline err %v, mux err %v", i, wantErr, gotErr)
		}
		if len(wantItems) != len(gotItems) {
			t.Fatalf("op %d: baseline %d items, mux %d", i, len(wantItems), len(gotItems))
		}
		for j := range wantItems {
			if wantItems[j] != gotItems[j] {
				t.Fatalf("op %d item %d: baseline %+v, mux %+v", i, j, wantItems[j], gotItems[j])
			}
		}
	}

	// A batch through each shape must fold identically too.
	var batch []BatchOp
	for i := 0; i < 16; i++ {
		batch = append(batch, BatchOp{Type: wire.MsgSearch, Rect: randRect(rng, 0.05)})
	}
	wantRes := base.ExecBatch(batch, nil)
	gotRes := mux.ExecBatch(batch, nil)
	for i := range wantRes {
		if (wantRes[i].Err == nil) != (gotRes[i].Err == nil) || len(wantRes[i].Items) != len(gotRes[i].Items) {
			t.Fatalf("batch op %d diverged: %+v vs %+v", i, wantRes[i], gotRes[i])
		}
		for j := range wantRes[i].Items {
			if wantRes[i].Items[j] != gotRes[i].Items[j] {
				t.Fatalf("batch op %d item %d diverged", i, j)
			}
		}
	}
}

// TestC10K attaches ten thousand logical clients through a capped pool —
// at most 64 TCP connections — and requires every operation to succeed
// with a bounded tail. The scale drops under -short.
func TestC10K(t *testing.T) {
	clients := 10_000
	if testing.Short() {
		clients = 1_000
	}
	srv, _ := startServer(t, 1_000, ServerConfig{})
	pool := NewMuxPool(64, MuxConfig{})
	defer pool.Close()
	addr := srv.Addr().String()

	// Attach everything first: C10K is about concurrent logical clients,
	// not cumulative ones.
	cs := make([]*Client, clients)
	for i := range cs {
		c, err := pool.Client(addr, ClientConfig{})
		if err != nil {
			t.Fatalf("attach client %d: %v", i, err)
		}
		cs[i] = c
	}
	if n := pool.Conns(); n > 64 {
		t.Fatalf("pool used %d TCP connections, cap 64", n)
	}

	var failures atomic.Uint64
	lat := make([]int64, clients)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 2048)
	for i, c := range cs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c *Client) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			start := time.Now()
			for j := 0; j < 2; j++ {
				if _, _, err := c.Search(randRect(rng, 0.01)); err != nil {
					failures.Add(1)
					return
				}
			}
			lat[i] = int64(time.Since(start))
		}(i, c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d clients failed", n, clients)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	p99 := time.Duration(lat[clients*99/100])
	t.Logf("%d clients over %d conns: p50 %v p99 %v",
		clients, pool.Conns(), time.Duration(lat[clients/2]), p99)
	if p99 > 10*time.Second {
		t.Fatalf("p99 %v unbounded", p99)
	}
	for _, c := range cs {
		c.Close()
	}
}
