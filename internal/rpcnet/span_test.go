package rpcnet

import (
	"math/rand"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/wire"
)

func sortedRefs(items []wire.Item) map[uint64]int {
	m := make(map[uint64]int, len(items))
	for _, it := range items {
		m[it.Ref]++
	}
	return m
}

// TestSpanReadsOverTCP: a merge-span client answers every query exactly
// like the per-chunk client while the server actually serves READ_SPAN —
// the TCP analogue of merged adjacent RDMA reads over the preorder layout.
func TestSpanReadsOverTCP(t *testing.T) {
	srv, tree := startServer(t, 5000, ServerConfig{})
	plain := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true})
	span := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true, MergeSpan: 8})

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		q := randRect(rng, 0.5)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := plain.Search(q)
		if err != nil {
			t.Fatalf("query %d plain: %v", i, err)
		}
		b, _, err := span.Search(q)
		if err != nil {
			t.Fatalf("query %d span: %v", i, err)
		}
		if len(a) != len(want) || len(b) != len(want) {
			t.Fatalf("query %d: plain %d, span %d, oracle %d items", i, len(a), len(b), len(want))
		}
		br := sortedRefs(b)
		for _, e := range want {
			if br[e.Ref] == 0 {
				t.Fatalf("query %d: span client missed ref %d", i, e.Ref)
			}
			br[e.Ref]--
		}
	}
	ss := srv.Stats()
	if ss.SpanReads == 0 {
		t.Fatal("server served no span reads")
	}
	if ss.SpanChunks <= ss.SpanReads {
		t.Errorf("span reads carried %d chunks over %d round trips — no merging",
			ss.SpanChunks, ss.SpanReads)
	}
	ps, zs := plain.Stats(), span.Stats()
	if zs.ReadWQEs >= ps.ReadWQEs {
		t.Errorf("span client made %d round trips, per-chunk client %d", zs.ReadWQEs, ps.ReadWQEs)
	}
	t.Logf("round trips: per-chunk=%d span=%d (server spans=%d chunks=%d)",
		ps.ReadWQEs, zs.ReadWQEs, ss.SpanReads, ss.SpanChunks)
}

// TestPrefetchOverTCP: behind a demand run ending on a subtree the query
// fully contains, span extension parks speculative chunks for the next
// frontier round; adoption and waste are both accounted, results stay
// oracle-exact, and speculation never fails a search. Queries are wide
// enough to CONTAIN level-1 subtrees — the containment gate skips
// partially-overlapped children whose leaf demand is a gamble — and the
// node cache is off so every wave demand-reads its internal nodes, the
// precondition for a span to ride one.
func TestPrefetchOverTCP(t *testing.T) {
	srv, tree := startServer(t, 5000, ServerConfig{HeartbeatInterval: 5 * time.Millisecond})
	pref := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true,
		MergeSpan: 8, Prefetch: 64, T: 0.95})

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		q := randRect(rng, 0.5)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		items, _, err := pref.Search(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(items) != len(want) {
			t.Fatalf("query %d: got %d items, want %d", i, len(items), len(want))
		}
	}
	s := pref.Stats()
	if s.PrefetchIssued == 0 {
		t.Fatal("no speculative span extensions issued")
	}
	if s.PrefetchHits+s.PrefetchWaste == 0 {
		t.Error("speculative chunks neither adopted nor written off")
	}
	t.Logf("prefetch issued=%d hits=%d waste=%d round trips=%d",
		s.PrefetchIssued, s.PrefetchHits, s.PrefetchWaste, s.ReadWQEs)
}

// TestSpanOutOfRangeRejected: the server bounds-checks spans.
func TestSpanOutOfRangeRejected(t *testing.T) {
	srv, tree := startServer(t, 100, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	n := tree.Region().NumChunks()
	for _, bad := range []wire.ReadSpan{
		{Chunk: uint32(n - 1), Count: 2}, // crosses the region end
		{Chunk: 0, Count: 0},
		{Chunk: 0, Count: maxSpanChunks + 1},
	} {
		bad.ID = c.nextID()
		frame, err := c.call(bad.ID, bad.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := wire.DecodeSpanData(frame)
		if err != nil {
			t.Fatal(err)
		}
		if sd.Status == wire.StatusOK {
			t.Errorf("span %+v accepted, want rejection", bad)
		}
	}
	// The connection survives: a normal search still works.
	if _, _, err := c.Search(geo.NewRect(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
}
