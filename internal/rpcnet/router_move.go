// Router-side MOVE and remote kNN over real TCP — the sharded geo serving
// operations of DESIGN.md §5.13, mirroring the simulated router's
// internal/shard/move.go.
package rpcnet

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
)

// Move relocates entry (from, ref) to (to, ref). When both positions are
// owned by the same shard it is a single MsgMove round trip, atomic under
// that server's tree latch. When the move crosses an ownership boundary no
// single latch covers it: the router inserts at the destination owner
// first and then deletes at the source owner, so a concurrent search may
// transiently observe the object twice but never absent. The source delete
// tolerates ErrNotFound — a move is an upsert, exactly like the
// single-shard MsgMove, so moving an object that was never inserted (or
// whose source copy a repaired retry already removed) degrades to a plain
// insert.
func (r *Router) Move(from, to geo.Rect, ref uint64) error {
	atomic.AddUint64(&r.stats.Moves, 1)
	r.maybeAdopt()
	if r.m.Owner(from) == r.m.Owner(to) {
		owner, err := r.writeTarget(to)
		if err != nil {
			return err
		}
		return r.writeShard(owner, func(c *Client) error {
			return c.Move(from, to, ref)
		})
	}
	owner, err := r.writeTarget(to)
	if err != nil {
		return err
	}
	if err := r.writeShard(owner, func(c *Client) error {
		return c.Insert(to, ref)
	}); err != nil {
		return err
	}
	owner, err = r.writeTarget(from)
	if err != nil {
		return err
	}
	err = r.writeShard(owner, func(c *Client) error {
		return c.Delete(from, ref)
	})
	if errors.Is(err, ErrNotFound) {
		err = nil
	}
	return err
}

// Nearest answers a k-nearest-neighbor query across the shards with a
// best-first gather: shards are visited in ascending order of CoverDistSq
// — the lower bound on any entry a shard can own — and the gather stops as
// soon as k results are held and the next shard's bound exceeds the
// current kth distance. On typical point queries that prunes the scatter
// to one or two shards, versus the full fan-out a range search needs.
// Partial results merge in (distance, ref) order and dedup by identity, so
// an entry dual-written during a reshard window counts once. An unhealthy
// shard without backups is skipped (counted in Stats().Skipped): kNN
// availability degrades like Search availability rather than blocking.
// The reported method is the first visited shard's (kNN never offloads, so
// it is fast or fetch).
func (r *Router) Nearest(k int, x, y float64) ([]rtree.Neighbor, Method, error) {
	atomic.AddUint64(&r.stats.KNNs, 1)
	if k <= 0 {
		return nil, MethodFast, rtree.ErrBadK
	}
	r.maybeAdopt()
	order := make([]int, r.m.K())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := r.m.CoverDistSq(order[a], x, y), r.m.CoverDistSq(order[b], x, y)
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	method := MethodFast
	visited := false
	var best []rtree.Neighbor
	for _, s := range order {
		if len(best) >= k && r.m.CoverDistSq(s, x, y) > best[k-1].DistSq {
			break
		}
		if r.health != nil && len(r.cands[s]) <= 1 && !r.healthy(s) {
			atomic.AddUint64(&r.stats.Skipped, 1)
			continue
		}
		nbrs, m, err := r.knnShard(s, k, x, y)
		if err != nil {
			return nil, m, fmt.Errorf("shard %d: %w", s, err)
		}
		atomic.AddUint64(&r.stats.Fanout, 1)
		if !visited {
			method, visited = m, true
		}
		best = shard.MergeNeighbors(best, nbrs, k)
	}
	return best, method, nil
}

// knnShard runs one sub-query on shard s, retrying on the shard's other
// replicas when the active server refuses service — the same backup-read
// fallback searchShard gives range queries. An admission shed backs off on
// the active replica like a write: kNN cannot ride searchOverloaded's
// rect-shaped retry, so it reuses the bounded-backoff loop inline.
func (r *Router) knnShard(s, k int, x, y float64) ([]rtree.Neighbor, Method, error) {
	nbrs, m, err := r.shardClient(s).Nearest(k, x, y)
	if errors.Is(err, ErrOverloaded) {
		backoff := overloadBackoff
		for attempt := 0; attempt < overloadAttempts && errors.Is(err, ErrOverloaded); attempt++ {
			time.Sleep(backoff)
			backoff *= 2
			nbrs, m, err = r.shardClient(s).Nearest(k, x, y)
		}
	}
	if err == nil || !failoverErr(err) {
		return nbrs, m, err
	}
	for idx, c := range r.cands[s] {
		if idx == r.active[s] {
			continue
		}
		bn, bm, berr := c.Nearest(k, x, y)
		if berr == nil {
			atomic.AddUint64(&r.stats.BackupReads, 1)
			return bn, bm, nil
		}
		if !failoverErr(berr) {
			return bn, bm, berr
		}
	}
	return nil, m, err
}
