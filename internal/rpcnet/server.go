// Package rpcnet runs Catfish over real TCP sockets (stdlib net), letting
// the library serve actual processes and machines rather than the simulated
// fabric. The wire protocol is the same as the simulation's; one-sided RDMA
// Reads are emulated by READ_CHUNK requests the server answers directly
// from the registered region without taking the tree lock, so the FaRM
// version-check concurrency (§III-B) is exercised under real goroutine
// parallelism: a reader can genuinely race a writer and must retry torn
// chunks.
//
// Framing: every message travels as [length uint32 LE][payload], where
// payload is one internal/wire message.
package rpcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// MaxFrame bounds a single frame (16 MiB), protecting against corrupt
// length prefixes.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports an over-limit frame length prefix.
var ErrFrameTooLarge = errors.New("rpcnet: frame exceeds limit")

// writeFrame writes one length-prefixed frame. The caller must serialize
// writers per connection.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it has capacity.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ServerConfig configures a real-network server.
type ServerConfig struct {
	// HeartbeatInterval between utilization pushes (0 disables).
	HeartbeatInterval time.Duration
	// MaxSegmentItems caps items per response segment (0 selects ~4 KB).
	MaxSegmentItems int
	// MaxBatch caps operations per batch container; an oversized batch is
	// answered with a single error response (0 selects the wire limit).
	MaxBatch int

	// FetchSlots enables remote result fetching (DESIGN.md §5.10): the
	// server keeps that many mailbox slots in a dedicated region and
	// answers SEARCH_FETCH requests with a descriptor instead of streaming
	// items, the client pulling the slot with READ_MAILBOX requests. 0
	// disables fetch (the hello advertises no mailbox).
	FetchSlots int
	// FetchSlotChunks is the size of one mailbox slot in region chunks
	// (0 selects 64).
	FetchSlotChunks int
	// FetchInlineMax is the result size, in items, at or below which a
	// SEARCH_FETCH is answered inline (0 selects MaxSegmentItems).
	FetchInlineMax int
	// TXLineRateBps is the NIC line rate, in bits per second, used to turn
	// the server's measured outbound byte rate into the heartbeat's
	// TX-utilization word. 0 reports 0 TX utilization (the 3-way switch
	// never picks fetch adaptively; forced fetch still works).
	TXLineRateBps float64

	// MaxConns caps concurrently-accepted connections; excess accepts are
	// closed immediately (0 = unlimited). Pair with client-side connection
	// multiplexing (MuxPool) to keep thousands of logical clients under
	// the cap.
	MaxConns int
	// AdmissionUtil arms deadline-aware admission control (DESIGN.md
	// §5.12): once the smoothed heartbeat utilization — CPU or TX — meets
	// this threshold, requests queue earliest-deadline-first and the
	// server sheds (typed StatusOverloaded, nothing executed) any request
	// whose deadline expired while queued or that arrives at a full
	// queue. 0 disables shedding on queue pressure; expired deadlines are
	// always shed. Requires heartbeats (the utilization signal).
	AdmissionUtil float64
	// DispatchWorkers sizes the shared request-execution pool replacing
	// the per-connection serial model (0 = NumCPU, min 2).
	DispatchWorkers int
	// DispatchQueue bounds the admission queue in tasks (0 = 1024).
	DispatchQueue int
	// WriteBuffer bounds each connection's pending outbound bytes before
	// responders block (0 = 1 MiB).
	WriteBuffer int
	// PaceTX, when true, enforces TXLineRateBps as an actual outbound
	// budget: each connection's flusher sleeps out the wire time its bytes
	// would occupy at that rate. Loopback deployments (bench, tests) use
	// it to give every server a real per-server TX capacity, so the
	// TX-utilization gauge the autoscaler scrapes corresponds to a
	// resource that can genuinely saturate.
	PaceTX bool

	// ShardMap and ShardIndex identify this server's place in a sharded
	// deployment: the hello advertises the map version and shard position,
	// and MsgShardMap requests are answered with the full map so routers
	// can bootstrap from any member. Nil runs the server unsharded.
	ShardMap   *shard.Map
	ShardIndex int
	// ShardAddrs optionally lists every shard's client-reachable address,
	// in cell order. It is served with the shard map so routers can dial
	// shards that appear mid-run (live resharding), and it seeds the
	// address table PrepareReshard extends.
	ShardAddrs []string

	// Replica arms shard replication (DESIGN.md §5.11): a primary streams
	// its op-log to the configured backups before acknowledging writes; a
	// backup validates the stream and rejects client writes until promoted.
	// Nil disables replication entirely.
	Replica *ReplicaConfig

	// Metrics, when non-nil, exposes the server counters, per-op request
	// latency histograms, and the heartbeat utilization on the registry
	// under catfish_server_* / catfish_request_latency_seconds names
	// (catfish-server serves it at -metrics-addr).
	Metrics *telemetry.Registry

	// Trace, when non-nil, receives one telemetry.Trace per fast-messaging
	// search request (adaptive fields zero — the server doesn't see the
	// client's decision state).
	Trace *telemetry.Tracer
}

// Server serves a Catfish R-tree over TCP.
type Server struct {
	cfg  ServerConfig
	tree *rtree.Tree
	ln   net.Listener

	latch sync.RWMutex // the tree latch (writers exclusive)

	mu     sync.Mutex // guards conns
	conns  map[*srvConn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
	disp   *dispatcher
	pacer  *txPacer // shared outbound budget (nil unless PaceTX)

	// Admission control: smoothed heartbeat utilizations (float bits) the
	// armed check reads, and the shed-operation counter.
	admitUtilBits atomic.Uint64
	admitTXBits   atomic.Uint64
	overloaded    atomic.Uint64

	epoch      uint64
	hbPaused   atomic.Bool
	busyNanos  atomic.Int64 // request-processing time, for heartbeats
	hbWindow   atomic.Int64 // busyNanos at last heartbeat
	searches   atomic.Uint64
	inserts    atomic.Uint64
	deletes    atomic.Uint64
	moves      atomic.Uint64
	knns       atomic.Uint64
	reads      atomic.Uint64
	verReads   atomic.Uint64
	spanReads  atomic.Uint64
	spanChunks atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64

	// Remote result fetching: the mailbox lives in its own region so slot
	// traffic never touches the tree region's allocator. txBytes counts
	// every outbound frame byte (the send-engine analogue the heartbeat's
	// TX word reports); hbTXBytes is its value at the last heartbeat.
	mailbox       *region.Mailbox
	mreg          *region.Region
	txBytes       atomic.Uint64
	hbTXBytes     atomic.Uint64
	fetchSearches atomic.Uint64
	fetchInline   atomic.Uint64
	fetchBytes    atomic.Uint64
	mailboxReads  atomic.Uint64
	lastTXUtil    telemetry.Gauge

	// offloadEst estimates offloaded searches: every client traversal
	// starts with a READ_CHUNK of the root, so root reads ≈ offloaded
	// searches (root-cache hits aside). rootChunkA mirrors the current root
	// chunk id (refreshed by heartbeatLoop) so the lock-free read path
	// doesn't race tree.RootChunk().
	offloadEst atomic.Uint64
	rootChunkA atomic.Int64
	lastUtil   telemetry.Gauge // utilization as last published by heartbeatLoop

	latSearch *telemetry.Histogram
	latInsert *telemetry.Histogram
	latDelete *telemetry.Histogram
	latMove   *telemetry.Histogram
	latKNN    *telemetry.Histogram
	start     time.Time

	// Replication and failover state (nil repl = replication disabled);
	// the machinery lives in replica.go.
	repl        *replica.State
	rlog        *replica.Log
	dirty       *region.DirtyTracker
	replMu      sync.Mutex // serializes the backup stream (send order = seq order)
	replSess    []*replSess
	replDialed  bool
	killed      atomic.Bool
	promotions  atomic.Uint64
	replRecords atomic.Uint64 // records applied as a backup
	replShipped atomic.Uint64 // records shipped to backups
	replResends atomic.Uint64 // gap-triggered op-log re-sends
	replSpans   atomic.Uint64 // coalesced dirty spans behind the stream
	replSpanCh  atomic.Uint64 // chunks those spans covered

	// Live resharding state (PrepareReshard/CommitReshard/DrainSplit in
	// replica.go). served is the shard identity currently advertised —
	// hello, MsgShardMap, and heartbeats all read it — swapped atomically
	// when a reshard commits or a fresh server adopts a map.
	served       atomic.Pointer[servedMap]
	shardIdx     atomic.Int32
	split        atomic.Pointer[splitState]
	reshardPhase atomic.Int64
	reshardMoved atomic.Uint64
}

// servedMap is the shard identity a server advertises: the map plus the
// optional per-cell address table.
type servedMap struct {
	m     *shard.Map
	addrs []string
}

// servedShardMap returns the currently-advertised map (nil when unsharded).
func (s *Server) servedShardMap() *servedMap { return s.served.Load() }

type srvConn struct {
	c net.Conn
	w *connWriter
	// ready gates the heartbeat broadcast: a connection joins it only
	// once its hello frame is in the writer queue, so a tick between
	// accept and the handshake cannot push a heartbeat ahead of the
	// hello and corrupt the client's first read.
	ready atomic.Bool
}

func (sc *srvConn) send(payload []byte) error { return sc.w.enqueue(payload) }

// close tears the connection down: the net.Conn first (unsticking a
// blocked flush against a dead peer), then the writer. Idempotent.
func (sc *srvConn) close() {
	sc.c.Close()
	sc.w.close()
}

// Listen binds addr and returns a server ready to Serve. The tree (and its
// region) must outlive the server; the server becomes the tree's writer.
func Listen(addr string, tree *rtree.Tree, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.MaxSegmentItems == 0 {
		cfg.MaxSegmentItems = 4096 / wire.ItemSize
	}
	if cfg.FetchSlotChunks == 0 {
		cfg.FetchSlotChunks = 64
	}
	if cfg.FetchInlineMax == 0 {
		cfg.FetchInlineMax = cfg.MaxSegmentItems
	}
	s := &Server{
		cfg:   cfg,
		tree:  tree,
		ln:    ln,
		conns: make(map[*srvConn]struct{}),
		epoch: uint64(time.Now().UnixNano()),
		start: time.Now(),
	}
	s.rootChunkA.Store(int64(tree.RootChunk()))
	s.shardIdx.Store(int32(cfg.ShardIndex))
	if cfg.ShardMap != nil {
		s.served.Store(&servedMap{m: cfg.ShardMap, addrs: cfg.ShardAddrs})
	}
	if cfg.Replica != nil {
		s.repl = replica.NewState(cfg.Replica.Epoch, cfg.Replica.Primary)
		s.rlog = &replica.Log{}
		// Every chunk the tree mutates is recorded so the replication
		// stream can coalesce the touched chunks into merged spans.
		s.dirty = region.NewDirtyTracker()
		tree.Region().Track(s.dirty)
	}
	if cfg.FetchSlots > 0 {
		mreg, err := region.New(cfg.FetchSlots*cfg.FetchSlotChunks, tree.Region().ChunkSize())
		if err != nil {
			ln.Close()
			return nil, err
		}
		mb, err := region.NewMailbox(mreg, cfg.FetchSlots, cfg.FetchSlotChunks)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.mreg = mreg
		s.mailbox = mb
	}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("catfish_server_fast_searches_total", s.searches.Load)
		reg.CounterFunc("catfish_server_offload_searches_total", s.offloadEst.Load)
		reg.CounterFunc("catfish_server_offload_chunk_reads_total", s.reads.Load)
		reg.CounterFunc("catfish_server_version_reads_total", s.verReads.Load)
		reg.CounterFunc("catfish_server_span_reads_total", s.spanReads.Load)
		reg.CounterFunc("catfish_server_span_chunks_total", s.spanChunks.Load)
		reg.CounterFunc("catfish_server_inserts_total", s.inserts.Load)
		reg.CounterFunc("catfish_server_deletes_total", s.deletes.Load)
		reg.CounterFunc("catfish_server_moves_total", s.moves.Load)
		reg.CounterFunc("catfish_server_knn_total", s.knns.Load)
		reg.CounterFunc("catfish_server_batches_total", s.batches.Load)
		reg.CounterFunc("catfish_server_batched_ops_total", s.batchedOps.Load)
		reg.GaugeFunc("catfish_server_utilization", s.lastUtil.Load)
		reg.GaugeFunc("catfish_server_tx_utilization", s.lastTXUtil.Load)
		reg.CounterFunc("catfish_server_fetch_searches_total", s.fetchSearches.Load)
		reg.CounterFunc("catfish_server_fetch_inline_total", s.fetchInline.Load)
		reg.CounterFunc("catfish_server_fetch_bytes_total", s.fetchBytes.Load)
		reg.CounterFunc("catfish_server_mailbox_reads_total", s.mailboxReads.Load)
		if s.mailbox != nil {
			reg.CounterFunc("catfish_server_fetch_exhausted_total", s.mailbox.Exhausted)
			reg.GaugeFunc("catfish_server_mailbox_slots_used", func() float64 {
				used, _ := s.mailbox.Occupancy()
				return float64(used)
			})
			reg.GaugeFunc("catfish_server_mailbox_slots_total", func() float64 {
				_, total := s.mailbox.Occupancy()
				return float64(total)
			})
		}
		s.latSearch = reg.Histogram("catfish_request_latency_seconds", "op", "search")
		s.latInsert = reg.Histogram("catfish_request_latency_seconds", "op", "insert")
		s.latDelete = reg.Histogram("catfish_request_latency_seconds", "op", "delete")
		s.latMove = reg.Histogram("catfish_request_latency_seconds", "op", "move")
		s.latKNN = reg.Histogram("catfish_request_latency_seconds", "op", "knn")
		if s.repl != nil {
			reg.CounterFunc("catfish_server_promotions_total", s.promotions.Load)
			reg.CounterFunc("catfish_server_repl_records_total", s.replRecords.Load)
			reg.CounterFunc("catfish_server_repl_shipped_total", s.replShipped.Load)
			reg.CounterFunc("catfish_server_repl_resends_total", s.replResends.Load)
			reg.CounterFunc("catfish_server_repl_spans_total", s.replSpans.Load)
			reg.CounterFunc("catfish_server_repl_span_chunks_total", s.replSpanCh.Load)
			reg.GaugeFunc("catfish_server_repl_lag", s.replLag)
		}
		reg.CounterFunc("catfish_server_reshard_moved_total", s.reshardMoved.Load)
		reg.GaugeFunc("catfish_server_reshard_state", func() float64 {
			return float64(s.reshardPhase.Load())
		})
		reg.CounterFunc("catfish_server_overloaded_total", s.overloaded.Load)
		reg.GaugeFunc("catfish_server_dispatch_queue", func() float64 {
			return float64(s.disp.depth())
		})
		reg.GaugeFunc("catfish_server_admission_armed", func() float64 {
			if s.admissionArmed() {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("catfish_server_connections", func() float64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return float64(n)
		})
	}
	s.disp = newDispatcher(s, cfg.DispatchQueue, cfg.DispatchWorkers)
	if cfg.PaceTX && cfg.TXLineRateBps > 0 {
		s.pacer = newTXPacer(cfg.TXLineRateBps)
	}
	if cfg.HeartbeatInterval > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Close. It always returns a non-nil error
// (net.ErrClosed after a clean shutdown).
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		// Register the connection and join the WaitGroup under s.mu
		// BEFORE spawning the reader: a goroutine spawned after Close's
		// sweep would otherwise escape both the connection sweep and
		// wg.Wait (the shutdown leak window).
		s.mu.Lock()
		if s.closed.Load() || (s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns) {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		sc := &srvConn{c: conn, w: newConnWriter(conn, &s.txBytes, s.cfg.WriteBuffer, s.pacer)}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(sc)
	}
}

// Close stops accepting, closes every connection, drains the dispatcher,
// and waits for every server goroutine — readers, writers, workers, the
// heartbeat loop — to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed.Store(true)
	err := s.ln.Close()
	for sc := range s.conns {
		sc.close()
	}
	s.mu.Unlock()
	s.closeReplSessions()
	s.disp.close()
	s.wg.Wait()
	return err
}

// ServerStats is a server counter snapshot.
type ServerStats struct {
	Searches     uint64
	Inserts      uint64
	Deletes      uint64
	Moves        uint64
	KNNs         uint64
	ChunkReads   uint64
	VersionReads uint64
	// SpanReads counts READ_SPAN round trips; SpanChunks the chunks they
	// carried (merged adjacent reads plus speculative prefetch extensions).
	SpanReads  uint64
	SpanChunks uint64
	// OffloadSearches estimates client-side traversals from root-chunk
	// reads (every traversal starts at the root; root-cache hits make this
	// a lower bound).
	OffloadSearches uint64
	// Batches counts batch containers executed; BatchedOps the operations
	// they carried (each also counted in its per-type counter above).
	Batches    uint64
	BatchedOps uint64
	// FetchSearches counts SEARCH_FETCH requests; FetchInline the ones
	// answered inline; FetchBytes the payload bytes deposited in mailbox
	// slots; MailboxReads the READ_MAILBOX pulls served.
	FetchSearches uint64
	FetchInline   uint64
	FetchBytes    uint64
	MailboxReads  uint64
	// TXBytes counts every outbound frame byte the server sent (payload
	// plus length prefixes) — the send-engine signal behind the
	// heartbeat's TX-utilization word.
	TXBytes uint64
	// Promotions counts accepted MsgPromote requests; ReplRecords the
	// op-log records applied as a backup; ReplShipped the records streamed
	// to backups as a primary; ReshardMoved the entries streamed off this
	// server by PrepareReshard.
	Promotions   uint64
	ReplRecords  uint64
	ReplShipped  uint64
	ReshardMoved uint64
	// Overloaded counts operations the admission controller shed with
	// StatusOverloaded (never executed).
	Overloaded uint64
}

// Stats returns a snapshot of the op counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Searches:        s.searches.Load(),
		Inserts:         s.inserts.Load(),
		Deletes:         s.deletes.Load(),
		Moves:           s.moves.Load(),
		KNNs:            s.knns.Load(),
		ChunkReads:      s.reads.Load(),
		VersionReads:    s.verReads.Load(),
		SpanReads:       s.spanReads.Load(),
		SpanChunks:      s.spanChunks.Load(),
		OffloadSearches: s.offloadEst.Load(),
		Batches:         s.batches.Load(),
		BatchedOps:      s.batchedOps.Load(),
		FetchSearches:   s.fetchSearches.Load(),
		FetchInline:     s.fetchInline.Load(),
		FetchBytes:      s.fetchBytes.Load(),
		MailboxReads:    s.mailboxReads.Load(),
		TXBytes:         s.txBytes.Load(),
		Promotions:      s.promotions.Load(),
		ReplRecords:     s.replRecords.Load(),
		ReplShipped:     s.replShipped.Load(),
		ReshardMoved:    s.reshardMoved.Load(),
		Overloaded:      s.overloaded.Load(),
	}
}

func (s *Server) serveConn(sc *srvConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.close()
	}()

	hello := wire.Hello{
		RootChunk:   uint32(s.tree.RootChunk()),
		ChunkSize:   uint32(s.tree.Region().ChunkSize()),
		MaxEntries:  uint32(s.tree.MaxEntries()),
		NumChunks:   uint32(s.tree.Region().NumChunks()),
		HeartbeatMs: uint32(s.cfg.HeartbeatInterval / time.Millisecond),
		ServerEpoch: s.epoch,
	}
	if sm := s.servedShardMap(); sm != nil {
		hello.ShardIndex = uint32(s.shardIdx.Load())
		hello.ShardCount = uint32(sm.m.K())
		hello.MapVersion = sm.m.Version
	}
	if s.repl != nil {
		hello.ReplicaEpoch, _ = s.repl.Snapshot()
	}
	if s.mailbox != nil {
		hello.FetchSlots = uint32(s.mailbox.Slots())
		hello.FetchSlotChunks = uint32(s.mailbox.SlotChunks())
	}
	if err := sc.send(hello.Encode(nil)); err != nil {
		return
	}
	// The hello is in the writer queue; heartbeats enqueued after this
	// point are ordered behind it, so the broadcast may now include us.
	sc.ready.Store(true)

	var frame []byte
	var out []byte
	for {
		var err error
		frame, err = readFrame(sc.c, frame)
		if err != nil {
			return // EOF or closed
		}
		typ, err := wire.PeekType(frame)
		if err != nil {
			return
		}
		start := time.Now()
		switch typ {
		case wire.MsgReadChunk:
			// One-sided read emulation: answered from the region without
			// the tree latch — concurrency is resolved by version checks
			// on the client, exactly as over RDMA.
			req, err := wire.DecodeReadChunk(frame)
			if err != nil {
				return
			}
			s.reads.Add(1)
			if int64(req.Chunk) == s.rootChunkA.Load() {
				s.offloadEst.Add(1)
			}
			out = s.handleReadChunk(req, out[:0])
			if err := sc.send(out); err != nil {
				return
			}
		case wire.MsgReadSpan:
			// Merged adjacent read: Count consecutive chunks in one round
			// trip, answered latch-free like READ_CHUNK; the client
			// validates each chunk's versions independently.
			req, err := wire.DecodeReadSpan(frame)
			if err != nil {
				return
			}
			s.spanReads.Add(1)
			s.spanChunks.Add(uint64(req.Count))
			if rc := s.rootChunkA.Load(); int64(req.Chunk) <= rc && rc < int64(req.Chunk)+int64(req.Count) {
				s.offloadEst.Add(1)
			}
			out = s.handleReadSpan(req, out[:0])
			if err := sc.send(out); err != nil {
				return
			}
		case wire.MsgReadVersions:
			// Version-only read: 8 B per cacheline instead of the full
			// chunk, used by the client node cache to revalidate entries.
			req, err := wire.DecodeReadVersions(frame)
			if err != nil {
				return
			}
			s.verReads.Add(1)
			out = s.handleReadVersions(req, out[:0])
			if err := sc.send(out); err != nil {
				return
			}
		case wire.MsgPromote:
			// Failover promotion stays inline: it must not sit behind a
			// backed-up admission queue while the router is fencing a
			// failed primary.
			req, err := wire.DecodeRequest(frame)
			if err != nil {
				return
			}
			if err := s.handleRequest(sc, req); err != nil {
				return
			}
		case wire.MsgSearch, wire.MsgInsert, wire.MsgDelete, wire.MsgSearchFetch,
			wire.MsgMove, wire.MsgKNN, wire.MsgKNNFetch:
			// Data operations go through the shared dispatcher (workers
			// account their own busy time).
			if err := s.disp.submit(sc, typ, frame); err != nil {
				return
			}
			continue
		case wire.MsgReplicate:
			if err := s.handleReplicate(sc, frame); err != nil {
				return
			}
		case wire.MsgReadMailbox:
			// Mailbox pull: the TCP stand-in for the one-sided reads of the
			// fetch path, answered from the mailbox region latch-free.
			req, err := wire.DecodeReadMailbox(frame)
			if err != nil {
				return
			}
			s.mailboxReads.Add(1)
			out = s.handleReadMailbox(req, out[:0])
			if err := sc.send(out); err != nil {
				return
			}
		case wire.MsgFetchAck:
			ack, err := wire.DecodeFetchAck(frame)
			if err != nil {
				return
			}
			if s.mailbox != nil {
				s.mailbox.Reclaim(int(ack.Slot), ack.Seq)
			}
		case wire.MsgBatch:
			if err := s.disp.submit(sc, typ, frame); err != nil {
				return
			}
			continue
		case wire.MsgShardMap:
			req, err := wire.DecodeShardMapRequest(frame)
			if err != nil {
				return
			}
			out = s.handleShardMap(req, out[:0])
			if err := sc.send(out); err != nil {
				return
			}
		default:
			return // protocol violation
		}
		s.busyNanos.Add(int64(time.Since(start)))
	}
}

// handleShardMap answers a shard-map fetch with the currently-served map —
// the successor map once a reshard commits — plus the per-cell address
// table when the deployment's addresses are known; an unsharded server
// reports an error status so misdirected routers fail loudly.
func (s *Server) handleShardMap(req wire.ShardMapRequest, out []byte) []byte {
	sm := s.servedShardMap()
	if sm == nil || s.killed.Load() {
		return wire.ShardMapData{ID: req.ID, Status: wire.StatusError}.Encode(out)
	}
	md := wire.ShardMapData{
		ID:      req.ID,
		Status:  wire.StatusOK,
		Version: sm.m.Version,
		PadX:    sm.m.PadX,
		PadY:    sm.m.PadY,
		Cells:   sm.m.Cells,
	}
	if len(sm.addrs) == sm.m.K() {
		md.Addrs = sm.addrs
	}
	return md.Encode(out)
}

// PauseHeartbeats suspends (true) or resumes (false) heartbeat pushes,
// simulating a wedged or partitioned server for liveness tests. The data
// path keeps serving.
func (s *Server) PauseHeartbeats(paused bool) { s.hbPaused.Store(paused) }

// Kill makes the server refuse all service: every data request answers
// StatusUnavailable and heartbeats stop, simulating a failed primary while
// keeping the TCP endpoint alive so the failure is observed as a missed
// liveness window rather than a connection reset. Irreversible.
func (s *Server) Kill() { s.killed.Store(true) }

// Killed reports whether Kill has been called.
func (s *Server) Killed() bool { return s.killed.Load() }

func (s *Server) handleReadChunk(req wire.ReadChunk, out []byte) []byte {
	raw := make([]byte, s.tree.Region().ChunkSize())
	resp := wire.ChunkData{ID: req.ID, Status: wire.StatusOK}
	if s.killed.Load() {
		resp.Status = wire.StatusUnavailable
		return resp.Encode(out)
	}
	if err := s.tree.Region().ReadChunkRaw(int(req.Chunk), raw); err != nil {
		resp.Status = wire.StatusError
	} else {
		resp.Raw = raw
	}
	return resp.Encode(out)
}

// maxSpanChunks bounds one READ_SPAN (a corrupt count would otherwise ask
// the server to allocate Count × chunkSize bytes).
const maxSpanChunks = 64

func (s *Server) handleReadSpan(req wire.ReadSpan, out []byte) []byte {
	reg := s.tree.Region()
	cs := reg.ChunkSize()
	resp := wire.SpanData{ID: req.ID, Status: wire.StatusOK}
	if s.killed.Load() {
		resp.Status = wire.StatusUnavailable
		return resp.Encode(out)
	}
	if req.Count == 0 || req.Count > maxSpanChunks ||
		int(req.Chunk)+int(req.Count) > reg.NumChunks() {
		resp.Status = wire.StatusError
		return resp.Encode(out)
	}
	raw := make([]byte, int(req.Count)*cs)
	for i := 0; i < int(req.Count); i++ {
		if err := reg.ReadChunkRaw(int(req.Chunk)+i, raw[i*cs:(i+1)*cs]); err != nil {
			resp.Status = wire.StatusError
			return resp.Encode(out)
		}
	}
	resp.Raw = raw
	return resp.Encode(out)
}

// tryMailboxDeliver writes items into a granted mailbox slot and returns
// the descriptor for them. It declines — sending the caller down the inline
// path — when fetch is disabled, the result is small enough that inline
// delivery is cheaper, the payload exceeds a slot, or every slot is taken.
func (s *Server) tryMailboxDeliver(id uint64, items []wire.Item) (wire.FetchDesc, bool) {
	if s.mailbox == nil || len(items) <= s.cfg.FetchInlineMax {
		return wire.FetchDesc{}, false
	}
	if len(items)*wire.ItemSize+region.MailboxHeaderSize > s.mailbox.Capacity() {
		return wire.FetchDesc{}, false
	}
	slot, ok := s.mailbox.Grant()
	if !ok {
		return wire.FetchDesc{}, false
	}
	payload := wire.EncodeItems(nil, items)
	ref, err := s.mailbox.WriteResult(slot, payload)
	if err != nil {
		s.mailbox.Cancel(slot)
		return wire.FetchDesc{}, false
	}
	return wire.FetchDesc{
		ID:     id,
		Status: wire.StatusOK,
		Slot:   uint32(ref.Slot),
		Bytes:  uint32(ref.Bytes),
		Count:  uint32(len(items)),
		Seq:    ref.Seq,
	}, true
}

// handleReadMailbox answers a mailbox pull with a SPAN_DATA frame carrying
// the requested chunks of the mailbox region, latch-free like READ_SPAN.
func (s *Server) handleReadMailbox(req wire.ReadMailbox, out []byte) []byte {
	resp := wire.SpanData{ID: req.ID, Status: wire.StatusOK}
	if s.killed.Load() {
		resp.Status = wire.StatusUnavailable
		return resp.Encode(out)
	}
	if s.mreg == nil {
		resp.Status = wire.StatusError
		return resp.Encode(out)
	}
	cs := s.mreg.ChunkSize()
	if req.Count == 0 || req.Count > maxSpanChunks ||
		int(req.Chunk)+int(req.Count) > s.mreg.NumChunks() {
		resp.Status = wire.StatusError
		return resp.Encode(out)
	}
	raw := make([]byte, int(req.Count)*cs)
	for i := 0; i < int(req.Count); i++ {
		if err := s.mreg.ReadChunkRaw(int(req.Chunk)+i, raw[i*cs:(i+1)*cs]); err != nil {
			resp.Status = wire.StatusError
			return resp.Encode(out)
		}
	}
	resp.Raw = raw
	return resp.Encode(out)
}

func (s *Server) handleReadVersions(req wire.ReadVersions, out []byte) []byte {
	reg := s.tree.Region()
	raw := make([]byte, reg.VersionsSize())
	resp := wire.VersionData{ID: req.ID, Status: wire.StatusOK}
	if s.killed.Load() {
		resp.Status = wire.StatusUnavailable
		return resp.Encode(out)
	}
	if err := reg.ReadVersions(int(req.Chunk), raw); err != nil {
		resp.Status = wire.StatusError
	} else {
		resp.Versions = raw
	}
	return resp.Encode(out)
}

func (s *Server) handleRequest(sc *srvConn, req wire.Request) error {
	if s.killed.Load() {
		return sc.send(wire.Response{ID: req.ID, Status: wire.StatusUnavailable, Final: true}.Encode(nil))
	}
	switch req.Type {
	case wire.MsgPromote:
		// Router-driven failover: promote this backup to primary at the
		// epoch carried in Ref, fencing the deposed primary's lineage.
		if s.repl == nil {
			return sc.send(wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}.Encode(nil))
		}
		if s.repl.Promote(req.Ref) {
			s.promotions.Add(1)
		}
		return sc.send(wire.Response{ID: req.ID, Status: wire.StatusOK, Final: true}.Encode(nil))

	case wire.MsgSearchFetch:
		s.fetchSearches.Add(1)
		opStart := time.Now()
		var items []wire.Item
		s.latch.RLock()
		_, err := s.tree.SearchShared(req.Rect, func(r geo.Rect, ref uint64) bool {
			items = append(items, wire.Item{Rect: r, Ref: ref})
			return true
		})
		s.latch.RUnlock()
		lat := time.Since(opStart)
		s.latSearch.Record(lat)
		if s.cfg.Trace != nil {
			tr := telemetry.Trace{
				Start:   time.Since(s.start) - lat,
				Method:  "fetch",
				Shard:   int(s.shardIdx.Load()),
				Latency: lat,
			}
			if err != nil {
				tr.Err = err.Error()
			}
			s.cfg.Trace.Record(tr)
		}
		if err != nil {
			return sc.send(wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}.Encode(nil))
		}
		if desc, ok := s.tryMailboxDeliver(req.ID, items); ok {
			s.fetchBytes.Add(uint64(desc.Bytes))
			return sc.send(desc.Encode(nil))
		}
		s.fetchInline.Add(1)
		return s.sendSegmented(sc, req.ID, items)

	case wire.MsgSearch:
		s.searches.Add(1)
		opStart := time.Now()
		var items []wire.Item
		// SearchShared touches no tree scratch state, so concurrent
		// server-side searches proceed in parallel under the read latch.
		s.latch.RLock()
		_, err := s.tree.SearchShared(req.Rect, func(r geo.Rect, ref uint64) bool {
			items = append(items, wire.Item{Rect: r, Ref: ref})
			return true
		})
		s.latch.RUnlock()
		lat := time.Since(opStart)
		s.latSearch.Record(lat)
		if s.cfg.Trace != nil {
			tr := telemetry.Trace{
				Start:   time.Since(s.start) - lat,
				Method:  "fast",
				Shard:   int(s.shardIdx.Load()),
				Latency: lat,
			}
			if err != nil {
				tr.Err = err.Error()
			}
			s.cfg.Trace.Record(tr)
		}
		if err != nil {
			return sc.send(wire.Response{ID: req.ID, Status: wire.StatusError, Final: true}.Encode(nil))
		}
		return s.sendSegmented(sc, req.ID, items)

	case wire.MsgInsert:
		s.inserts.Add(1)
		opStart := time.Now()
		s.latch.Lock()
		status := wire.StatusOK
		if s.repl != nil && !s.repl.Primary() {
			status = wire.StatusNotPrimary
		} else if _, err := s.tree.Insert(req.Rect, req.Ref); err != nil {
			status = wire.StatusError
		} else if s.repl != nil {
			// Stream to the backups before the latch drops: an acknowledged
			// write is on every live backup, so failover loses nothing.
			if rerr := s.replicate(wire.MsgInsert, req.Rect, req.Ref); rerr != nil {
				status = replStatus(rerr)
			}
		}
		if status == wire.StatusOK {
			if ferr := s.forwardSplit(wire.MsgInsert, req.Rect, req.Ref); ferr != nil {
				status = wire.StatusError
			}
		}
		s.latch.Unlock()
		s.latInsert.Record(time.Since(opStart))
		return sc.send(wire.Response{ID: req.ID, Status: status, Final: true}.Encode(nil))

	case wire.MsgDelete:
		s.deletes.Add(1)
		opStart := time.Now()
		s.latch.Lock()
		status := wire.StatusOK
		if s.repl != nil && !s.repl.Primary() {
			status = wire.StatusNotPrimary
		} else {
			ok, _, err := s.tree.Delete(req.Rect, req.Ref)
			switch {
			case err != nil:
				status = wire.StatusError
			case !ok:
				status = wire.StatusNotFound
			default:
				if s.repl != nil {
					if rerr := s.replicate(wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
						status = replStatus(rerr)
					}
				}
			}
		}
		if status == wire.StatusOK {
			if ferr := s.forwardSplit(wire.MsgDelete, req.Rect, req.Ref); ferr != nil {
				status = wire.StatusError
			}
		}
		s.latch.Unlock()
		s.latDelete.Record(time.Since(opStart))
		return sc.send(wire.Response{ID: req.ID, Status: status, Final: true}.Encode(nil))

	case wire.MsgMove:
		s.moves.Add(1)
		opStart := time.Now()
		s.latch.Lock()
		var status uint8
		if s.repl != nil && !s.repl.Primary() {
			status = wire.StatusNotPrimary
		} else {
			status = s.moveLocked(req)
		}
		s.latch.Unlock()
		s.latMove.Record(time.Since(opStart))
		return sc.send(wire.Response{ID: req.ID, Status: status, Final: true}.Encode(nil))

	case wire.MsgKNN:
		s.knns.Add(1)
		opStart := time.Now()
		items, status := s.knnShared(req)
		lat := time.Since(opStart)
		s.latKNN.Record(lat)
		if s.cfg.Trace != nil {
			tr := telemetry.Trace{
				Start:   time.Since(s.start) - lat,
				Method:  "fast",
				Shard:   int(s.shardIdx.Load()),
				Latency: lat,
			}
			if status != wire.StatusOK {
				tr.Err = fmt.Sprintf("knn status %d", status)
			}
			s.cfg.Trace.Record(tr)
		}
		if status != wire.StatusOK {
			return sc.send(wire.Response{ID: req.ID, Status: status, Final: true}.Encode(nil))
		}
		return s.sendSegmented(sc, req.ID, items)

	case wire.MsgKNNFetch:
		// The fetch twin of MsgKNN: the ascending-distance result lands in a
		// mailbox slot (slot packing preserves item order, so the client
		// pulls the neighbors already sorted) or inline when small.
		s.knns.Add(1)
		opStart := time.Now()
		items, status := s.knnShared(req)
		s.latKNN.Record(time.Since(opStart))
		if status != wire.StatusOK {
			return sc.send(wire.Response{ID: req.ID, Status: status, Final: true}.Encode(nil))
		}
		if desc, ok := s.tryMailboxDeliver(req.ID, items); ok {
			s.fetchBytes.Add(uint64(desc.Bytes))
			return sc.send(desc.Encode(nil))
		}
		s.fetchInline.Add(1)
		return s.sendSegmented(sc, req.ID, items)
	}
	return fmt.Errorf("rpcnet: unhandled request type %d", req.Type)
}

// moveLocked runs the delete+insert pair of a MOVE with the exclusive
// latch already held, so no concurrent search can observe the entry
// absent. A miss on the delete degrades the move to a plain insert (upsert
// semantics — the exact state the equivalent delete-then-insert stream
// reaches). Replication streams the pair as two op-log records under the
// same latch hold: the delete record only when a source entry existed, the
// insert record always.
func (s *Server) moveLocked(req wire.Request) uint8 {
	deleted, _, err := s.tree.Delete(req.Rect, req.Ref)
	if err != nil {
		return wire.StatusError
	}
	if deleted {
		if s.repl != nil {
			if rerr := s.replicate(wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
				return replStatus(rerr)
			}
		}
		if ferr := s.forwardSplit(wire.MsgDelete, req.Rect, req.Ref); ferr != nil {
			return wire.StatusError
		}
	}
	if _, err := s.tree.Insert(req.Rect2, req.Ref); err != nil {
		return wire.StatusError
	}
	if s.repl != nil {
		if rerr := s.replicate(wire.MsgInsert, req.Rect2, req.Ref); rerr != nil {
			return replStatus(rerr)
		}
	}
	if ferr := s.forwardSplit(wire.MsgInsert, req.Rect2, req.Ref); ferr != nil {
		return wire.StatusError
	}
	return wire.StatusOK
}

// knnShared answers a kNN request under the shared read latch: the query
// point is the degenerate rect's center, k rides Ref, and NearestShared
// keeps all statistics in locals so parallel kNNs race nothing.
func (s *Server) knnShared(req wire.Request) ([]wire.Item, uint8) {
	if s.killed.Load() {
		return nil, wire.StatusUnavailable
	}
	x, y := req.Rect.Center()
	s.latch.RLock()
	nbrs, _, err := s.tree.NearestShared(int(req.Ref), x, y)
	s.latch.RUnlock()
	if err != nil {
		return nil, wire.StatusError
	}
	items := make([]wire.Item, len(nbrs))
	for i, n := range nbrs {
		items[i] = wire.Item{Rect: n.Rect, Ref: n.Ref}
	}
	return items, wire.StatusOK
}

func (s *Server) sendSegmented(sc *srvConn, id uint64, items []wire.Item) error {
	max := s.cfg.MaxSegmentItems
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	for {
		seg := wire.Response{ID: id, Status: wire.StatusOK}
		if len(items) > max {
			seg.Items = items[:max]
			items = items[max:]
		} else {
			seg.Items = items
			items = nil
			seg.Final = true
		}
		*buf = seg.Encode((*buf)[:0])
		if err := sc.send(*buf); err != nil {
			return err
		}
		if seg.Final {
			return nil
		}
	}
}

// heartbeatLoop pushes the server's busy fraction to every client.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	cores := float64(runtime.NumCPU())
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for range ticker.C {
		if s.closed.Load() {
			return
		}
		if s.hbPaused.Load() || s.killed.Load() {
			// A killed server freezes its heartbeats so routers observe a
			// missed liveness window, exactly like a crashed process.
			continue
		}
		busy := s.busyNanos.Load()
		window := busy - s.hbWindow.Load()
		s.hbWindow.Store(busy)
		util := float64(window) / (float64(s.cfg.HeartbeatInterval) * cores)
		if util > 1 {
			util = 1
		}
		if util < 1e-6 {
			util = 1e-6
		}
		txUtil := 0.0
		if s.cfg.TXLineRateBps > 0 {
			tx := s.txBytes.Load()
			window := tx - s.hbTXBytes.Load()
			s.hbTXBytes.Store(tx)
			txUtil = float64(window) * 8 / (s.cfg.HeartbeatInterval.Seconds() * s.cfg.TXLineRateBps)
			if txUtil > 1 {
				txUtil = 1
			}
		}
		// Exponentially-smoothed copies for the admission controller, so a
		// single idle (or busy) tick doesn't flap the armed state.
		const alpha = 0.5
		smUtil := alpha*math.Float64frombits(s.admitUtilBits.Load()) + (1-alpha)*util
		smTX := alpha*math.Float64frombits(s.admitTXBits.Load()) + (1-alpha)*txUtil
		s.admitUtilBits.Store(math.Float64bits(smUtil))
		s.admitTXBits.Store(math.Float64bits(smTX))
		// The scrape gauges publish the smoothed copies: the autoscaler
		// compares shards against each other to nominate the hottest, and
		// a single-window sample would make that comparison a coin flip
		// whenever the scrape lands on an idle beat. Heartbeat wire values
		// stay raw — the client's adaptive switch wants the instantaneous
		// signal.
		s.lastUtil.Set(smUtil)
		s.lastTXUtil.Set(smTX)
		// Heartbeats are the liveness signal: never block them on the
		// latch, which PrepareReshard holds exclusively for the whole
		// snapshot-and-stream. Under contention the last published root
		// chunk serves — the tree cannot change while the latch is held.
		rootChunk := int(s.rootChunkA.Load())
		if s.latch.TryRLock() {
			rootChunk = s.tree.RootChunk()
			s.latch.RUnlock()
			s.rootChunkA.Store(int64(rootChunk))
		}
		rootVer, _ := s.tree.Region().Version(rootChunk)
		hb := wire.Heartbeat{Util: util, RootVer: rootVer, TXUtil: txUtil}
		if s.repl != nil {
			hb.Epoch, hb.AppliedSeq = s.repl.Snapshot()
		}
		if sm := s.servedShardMap(); sm != nil {
			hb.MapVersion = sm.m.Version
		}
		payload := hb.Encode(nil)
		s.mu.Lock()
		for sc := range s.conns {
			if !sc.ready.Load() {
				continue // handshake not yet queued
			}
			// Best effort and non-blocking: a connection whose writer is
			// full (slow reader) skips this beat rather than stalling the
			// broadcast for everyone else.
			_ = sc.w.tryEnqueue(payload)
		}
		s.mu.Unlock()
	}
}

// admissionArmed reports whether the admission controller currently sheds
// on queue pressure: a threshold is configured and the smoothed heartbeat
// utilization (CPU or TX) has reached it.
func (s *Server) admissionArmed() bool {
	th := s.cfg.AdmissionUtil
	if th <= 0 {
		return false
	}
	return math.Float64frombits(s.admitUtilBits.Load()) >= th ||
		math.Float64frombits(s.admitTXBits.Load()) >= th
}
