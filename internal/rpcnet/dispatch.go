// Shared request dispatcher: instead of each connection executing its
// requests serially on its own reader goroutine, readers hand request
// frames to one server-wide queue drained by a fixed worker pool, so ten
// thousand mostly-idle connections cost ten thousand parked readers but
// only DispatchWorkers running stacks — the C10K half of DESIGN.md §5.12.
//
// The queue doubles as the admission controller: tasks are ordered
// earliest-deadline-first (deadline-free tasks keep FIFO order among
// themselves), and once the heartbeat utilization — CPU or TX — pegs past
// ServerConfig.AdmissionUtil the server sheds rather than queues: a task
// whose deadline expired while queued, or any task arriving at a full
// queue, is answered with StatusOverloaded instead of being executed.
// Below the threshold a full queue blocks the reader (lossless TCP
// backpressure), and expired deadlines are still shed — that is the
// contract of setting a deadline at all.
package rpcnet

import (
	"math"
	"net"
	"runtime"
	"sync"
	"time"

	"github.com/catfish-db/catfish/internal/wire"
)

// defaultDispatchQueue bounds the admission queue (tasks, not bytes).
const defaultDispatchQueue = 1024

// noDeadline marks a task without a latency budget; it sorts after every
// deadline-carrying task.
const noDeadline = math.MaxInt64

// dispTask is one queued request frame awaiting a worker.
type dispTask struct {
	sc       *srvConn
	typ      wire.MsgType
	frame    []byte // owned copy of the request frame
	seq      uint64 // submission order; tie-break for equal deadlines
	deadline int64  // absolute UnixNano, noDeadline when unset
}

type dispatcher struct {
	s        *Server
	mu       sync.Mutex
	nonEmpty sync.Cond
	notFull  sync.Cond
	heap     []dispTask // min-heap on (deadline, seq)
	seq      uint64
	max      int
	closed   bool
}

func newDispatcher(s *Server, queue, workers int) *dispatcher {
	if queue <= 0 {
		queue = defaultDispatchQueue
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 2 {
		workers = 2
	}
	d := &dispatcher{s: s, max: queue}
	d.nonEmpty.L = &d.mu
	d.notFull.L = &d.mu
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go d.worker()
	}
	return d
}

// depth returns the current queue length (metrics).
func (d *dispatcher) depth() int {
	d.mu.Lock()
	n := len(d.heap)
	d.mu.Unlock()
	return n
}

// submit queues one request frame for execution. The frame is copied, so
// the caller may reuse its buffer. When the queue is full an armed
// admission controller sheds the incoming task with StatusOverloaded;
// otherwise the caller blocks until a slot frees (backpressure).
func (d *dispatcher) submit(sc *srvConn, typ wire.MsgType, frame []byte) error {
	t := dispTask{
		sc:       sc,
		typ:      typ,
		frame:    append([]byte(nil), frame...),
		deadline: frameDeadline(typ, frame),
	}
	d.mu.Lock()
	for len(d.heap) >= d.max && !d.closed {
		if d.s.admissionArmed() {
			d.mu.Unlock()
			return d.shed(t)
		}
		d.notFull.Wait()
	}
	if d.closed {
		d.mu.Unlock()
		return net.ErrClosed
	}
	d.seq++
	t.seq = d.seq
	d.push(t)
	d.nonEmpty.Signal()
	d.mu.Unlock()
	return nil
}

// close wakes every worker and blocked submitter; workers drain the queue
// before exiting.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.nonEmpty.Broadcast()
	d.notFull.Broadcast()
	d.mu.Unlock()
}

func (d *dispatcher) worker() {
	defer d.s.wg.Done()
	for {
		d.mu.Lock()
		for len(d.heap) == 0 && !d.closed {
			d.nonEmpty.Wait()
		}
		if len(d.heap) == 0 && d.closed {
			d.mu.Unlock()
			return
		}
		t := d.pop()
		d.notFull.Signal()
		d.mu.Unlock()

		if t.deadline != noDeadline && time.Now().UnixNano() > t.deadline {
			_ = d.shed(t)
			continue
		}
		start := time.Now()
		err := d.exec(t)
		d.s.busyNanos.Add(int64(time.Since(start)))
		if err != nil {
			// The connection is unusable (its writer failed); close it so
			// the reader reaps it.
			t.sc.close()
		}
	}
}

func (d *dispatcher) exec(t dispTask) error {
	if t.typ == wire.MsgBatch {
		return d.s.handleBatch(t.sc, t.frame)
	}
	req, err := wire.DecodeRequest(t.frame)
	if err != nil {
		return err
	}
	return d.s.handleRequest(t.sc, req)
}

// shed answers every operation in the task with StatusOverloaded without
// executing anything.
func (d *dispatcher) shed(t dispTask) error {
	s := d.s
	if t.typ == wire.MsgBatch {
		it, err := wire.DecodeBatch(t.frame)
		if err != nil {
			return t.sc.send(wire.Response{Status: wire.StatusError, Final: true}.Encode(nil))
		}
		res := make([]batchResult, 0, it.Len())
		for {
			msg, ok := it.Next()
			if !ok {
				break
			}
			req, err := wire.DecodeRequest(msg)
			if err != nil {
				req = wire.Request{}
			}
			res = append(res, batchResult{id: req.ID, status: wire.StatusOverloaded})
		}
		s.overloaded.Add(uint64(len(res)))
		return s.respondBatch(t.sc, res)
	}
	req, err := wire.DecodeRequest(t.frame)
	if err != nil {
		return err
	}
	s.overloaded.Add(1)
	return t.sc.send(wire.Response{ID: req.ID, Status: wire.StatusOverloaded, Final: true}.Encode(nil))
}

// frameDeadline extracts the earliest absolute deadline carried by the
// frame (the minimum across a batch's operations), or noDeadline.
func frameDeadline(typ wire.MsgType, frame []byte) int64 {
	minUS := uint32(0)
	if typ == wire.MsgBatch {
		it, err := wire.DecodeBatch(frame)
		if err != nil {
			return noDeadline
		}
		for {
			msg, ok := it.Next()
			if !ok {
				break
			}
			req, err := wire.DecodeRequest(msg)
			if err != nil || req.DeadlineUS == 0 {
				continue
			}
			if minUS == 0 || req.DeadlineUS < minUS {
				minUS = req.DeadlineUS
			}
		}
	} else if req, err := wire.DecodeRequest(frame); err == nil {
		minUS = req.DeadlineUS
	}
	if minUS == 0 {
		return noDeadline
	}
	return time.Now().Add(time.Duration(minUS) * time.Microsecond).UnixNano()
}

// min-heap on (deadline, seq): earliest deadline first, FIFO within equal
// deadlines (deadline-free traffic is all noDeadline, so it stays FIFO).
func taskLess(a, b dispTask) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

func (d *dispatcher) push(t dispTask) {
	d.heap = append(d.heap, t)
	i := len(d.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !taskLess(d.heap[i], d.heap[parent]) {
			break
		}
		d.heap[i], d.heap[parent] = d.heap[parent], d.heap[i]
		i = parent
	}
}

func (d *dispatcher) pop() dispTask {
	t := d.heap[0]
	last := len(d.heap) - 1
	d.heap[0] = d.heap[last]
	d.heap[last] = dispTask{}
	d.heap = d.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(d.heap) && taskLess(d.heap[l], d.heap[small]) {
			small = l
		}
		if r < len(d.heap) && taskLess(d.heap[r], d.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		d.heap[i], d.heap[small] = d.heap[small], d.heap[i]
		i = small
	}
	return t
}
