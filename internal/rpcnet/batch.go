// Batched fast messaging over real TCP: the same batch containers the
// simulated transports use, so a multiplexed connection pays one frame
// write, one syscall, and one latch acquisition per batch instead of per
// operation.
package rpcnet

import (
	"fmt"
	"sort"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/wire"
)

// batchResult buffers one operation's outcome until the batch latch is
// released and the segmented batch response can be written. A fetch-routed
// search that made it into a mailbox slot carries its descriptor instead
// of items.
type batchResult struct {
	id      uint64
	status  uint8
	items   []wire.Item
	desc    wire.FetchDesc
	hasDesc bool
}

// handleBatch executes a batch container under one latch acquisition: a
// batch carrying any write takes the exclusive latch, a read-only batch
// shares the read latch. Results are buffered until the latch drops, then
// written back as batch containers of response segments. The caller's
// per-frame busy-time accounting naturally charges the whole batch once.
func (s *Server) handleBatch(sc *srvConn, payload []byte) error {
	it, err := wire.DecodeBatch(payload)
	if err != nil {
		return sc.send(wire.Response{Status: wire.StatusError, Final: true}.Encode(nil))
	}
	reqs := make([]wire.Request, 0, it.Len())
	hasWrite := false
	for {
		msg, ok := it.Next()
		if !ok {
			break
		}
		req, err := wire.DecodeRequest(msg)
		if err != nil {
			req = wire.Request{} // answered with an error response below
		} else if req.Type != wire.MsgSearch && req.Type != wire.MsgSearchFetch &&
			req.Type != wire.MsgKNN && req.Type != wire.MsgKNNFetch {
			hasWrite = true
		}
		reqs = append(reqs, req)
	}
	if it.Err() != nil {
		return sc.send(wire.Response{Status: wire.StatusError, Final: true}.Encode(nil))
	}
	if s.cfg.MaxBatch > 0 && len(reqs) > s.cfg.MaxBatch {
		// Answer every operation ID so the client's collector terminates.
		res := make([]batchResult, 0, len(reqs))
		for _, req := range reqs {
			res = append(res, batchResult{id: req.ID, status: wire.StatusError})
		}
		return s.respondBatch(sc, res)
	}
	if len(reqs) == 0 {
		return nil
	}
	if s.killed.Load() {
		res := make([]batchResult, 0, len(reqs))
		for _, req := range reqs {
			res = append(res, batchResult{id: req.ID, status: wire.StatusUnavailable})
		}
		return s.respondBatch(sc, res)
	}
	s.batches.Add(1)
	s.batchedOps.Add(uint64(len(reqs)))

	if hasWrite {
		s.latch.Lock()
	} else {
		s.latch.RLock()
	}
	res := make([]batchResult, 0, len(reqs))
	for _, req := range reqs {
		out := batchResult{id: req.ID, status: wire.StatusError}
		switch req.Type {
		case wire.MsgSearch:
			s.searches.Add(1)
			var items []wire.Item
			_, err := s.tree.SearchShared(req.Rect, func(r geo.Rect, ref uint64) bool {
				items = append(items, wire.Item{Rect: r, Ref: ref})
				return true
			})
			if err == nil {
				out.status = wire.StatusOK
				out.items = items
			}
		case wire.MsgSearchFetch:
			s.fetchSearches.Add(1)
			var items []wire.Item
			_, err := s.tree.SearchShared(req.Rect, func(r geo.Rect, ref uint64) bool {
				items = append(items, wire.Item{Rect: r, Ref: ref})
				return true
			})
			if err == nil {
				out.status = wire.StatusOK
				if desc, ok := s.tryMailboxDeliver(req.ID, items); ok {
					s.fetchBytes.Add(uint64(desc.Bytes))
					out.desc = desc
					out.hasDesc = true
				} else {
					s.fetchInline.Add(1)
					out.items = items
				}
			}
		case wire.MsgKNN:
			s.knns.Add(1)
			x, y := req.Rect.Center()
			nbrs, _, err := s.tree.NearestShared(int(req.Ref), x, y)
			if err == nil {
				out.status = wire.StatusOK
				out.items = itemsOfNeighbors(nbrs)
			}
		case wire.MsgKNNFetch:
			s.knns.Add(1)
			x, y := req.Rect.Center()
			nbrs, _, err := s.tree.NearestShared(int(req.Ref), x, y)
			if err == nil {
				out.status = wire.StatusOK
				items := itemsOfNeighbors(nbrs)
				if desc, ok := s.tryMailboxDeliver(req.ID, items); ok {
					s.fetchBytes.Add(uint64(desc.Bytes))
					out.desc = desc
					out.hasDesc = true
				} else {
					s.fetchInline.Add(1)
					out.items = items
				}
			}
		case wire.MsgMove:
			s.moves.Add(1)
			if s.repl != nil && !s.repl.Primary() {
				out.status = wire.StatusNotPrimary
			} else {
				out.status = s.moveLocked(req)
			}
		case wire.MsgInsert:
			s.inserts.Add(1)
			switch {
			case s.repl != nil && !s.repl.Primary():
				out.status = wire.StatusNotPrimary
			default:
				if _, err := s.tree.Insert(req.Rect, req.Ref); err == nil {
					out.status = wire.StatusOK
					if s.repl != nil {
						if rerr := s.replicate(wire.MsgInsert, req.Rect, req.Ref); rerr != nil {
							out.status = replStatus(rerr)
						}
					}
				}
				if out.status == wire.StatusOK {
					if ferr := s.forwardSplit(wire.MsgInsert, req.Rect, req.Ref); ferr != nil {
						out.status = wire.StatusError
					}
				}
			}
		case wire.MsgDelete:
			s.deletes.Add(1)
			switch {
			case s.repl != nil && !s.repl.Primary():
				out.status = wire.StatusNotPrimary
			default:
				ok, _, err := s.tree.Delete(req.Rect, req.Ref)
				switch {
				case err != nil:
				case !ok:
					out.status = wire.StatusNotFound
				default:
					out.status = wire.StatusOK
					if s.repl != nil {
						if rerr := s.replicate(wire.MsgDelete, req.Rect, req.Ref); rerr != nil {
							out.status = replStatus(rerr)
						}
					}
				}
				if out.status == wire.StatusOK {
					if ferr := s.forwardSplit(wire.MsgDelete, req.Rect, req.Ref); ferr != nil {
						out.status = wire.StatusError
					}
				}
			}
		}
		res = append(res, out)
	}
	if hasWrite {
		s.latch.Unlock()
	} else {
		s.latch.RUnlock()
	}
	return s.respondBatch(sc, res)
}

// respondBatch writes buffered batch results back as batch containers of
// response segments, flushing below a 16 KB frame budget. Each operation
// keeps its own CONT/END segmentation inside the containers.
func (s *Server) respondBatch(sc *srvConn, res []batchResult) error {
	const limit = 16 << 10
	maxItems := s.cfg.MaxSegmentItems
	hdr := wire.Response{}.EncodedSize()
	if fit := (limit - wire.BatchOverhead(1) - hdr) / wire.ItemSize; fit < maxItems {
		maxItems = fit
	}
	if maxItems < 1 {
		maxItems = 1
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	var enc wire.BatchEncoder
	enc.Reset((*buf)[:0])
	flush := func() error {
		if enc.Count() == 0 {
			return nil
		}
		err := sc.send(enc.Bytes())
		*buf = enc.Buf[:0]
		enc.Reset(*buf)
		return err
	}
	for _, r := range res {
		if r.hasDesc {
			if enc.Count() > 0 && enc.Len()+wire.FetchDescSize+wire.BatchOverhead(1) > limit {
				if err := flush(); err != nil {
					return err
				}
			}
			enc.Begin()
			enc.Buf = r.desc.Encode(enc.Buf)
			enc.End()
			continue
		}
		items := r.items
		for {
			seg := wire.Response{ID: r.id, Status: r.status}
			if len(items) > maxItems {
				seg.Items = items[:maxItems]
				items = items[maxItems:]
			} else {
				seg.Items = items
				items = nil
				seg.Final = true
			}
			if enc.Count() > 0 && enc.Len()+seg.EncodedSize()+wire.BatchOverhead(1) > limit {
				if err := flush(); err != nil {
					return err
				}
			}
			enc.Begin()
			enc.Buf = seg.Encode(enc.Buf)
			enc.End()
			if seg.Final {
				break
			}
		}
	}
	err := flush()
	*buf = enc.Buf
	return err
}

// BatchOp is one operation submitted through ExecBatch.
type BatchOp struct {
	Type wire.MsgType // MsgSearch, MsgInsert, MsgDelete, MsgMove or MsgKNN
	Rect geo.Rect     // query rect; move source; kNN query point (degenerate rect)
	Ref  uint64       // insert/delete/move payload; k for MsgKNN
	// Rect2 is the move destination (MsgMove only).
	Rect2 geo.Rect
}

// BatchResult is the outcome of one batched operation, in submission order.
type BatchResult struct {
	Method Method
	Items  []wire.Item
	Err    error
}

// wireOp ties a messaging-group request ID back to its batch slot.
type wireOp struct {
	op    int // index into ops/results
	id    uint64
	fetch bool // search routed to remote result fetching
}

// ExecBatch executes ops as one client batch over the multiplexed TCP
// connection: writes and messaging-routed searches coalesce into a single
// batch container (one frame write, one server latch), while searches that
// Algorithm 1 routes to offloading traverse with chunk reads overlapped
// with the in-flight batch. Every search consults the switch individually,
// preserving the per-search back-off accounting, and a batch of one
// delegates to the unbatched path bit-for-bit.
func (c *Client) ExecBatch(ops []BatchOp, results []BatchResult) []BatchResult {
	results = results[:0]
	for range ops {
		results = append(results, BatchResult{})
	}
	if len(ops) == 0 {
		return results
	}
	if len(ops) == 1 {
		op := ops[0]
		switch op.Type {
		case wire.MsgInsert:
			results[0] = BatchResult{Method: MethodFast, Err: c.Insert(op.Rect, op.Ref)}
		case wire.MsgDelete:
			results[0] = BatchResult{Method: MethodFast, Err: c.Delete(op.Rect, op.Ref)}
		case wire.MsgMove:
			results[0] = BatchResult{Method: MethodFast, Err: c.Move(op.Rect, op.Rect2, op.Ref)}
		case wire.MsgKNN:
			x, y := op.Rect.Center()
			nbrs, m, err := c.Nearest(int(op.Ref), x, y)
			results[0] = BatchResult{Method: m, Items: itemsOfNeighbors(nbrs), Err: err}
		default:
			items, m, err := c.Search(op.Rect)
			results[0] = BatchResult{Method: m, Items: items, Err: err}
		}
		return results
	}

	var wireOps []wireOp
	var offload []int
	for i, op := range ops {
		switch op.Type {
		case wire.MsgInsert, wire.MsgDelete, wire.MsgMove:
			wireOps = append(wireOps, wireOp{op: i})
		case wire.MsgKNN:
			// kNN is pinned to server-side execution (no offload arm): it
			// rides the container over fast messaging, or — when the switch
			// picks fetch — retyped to MsgKNNFetch with its result pulled
			// from a mailbox slot after the collect.
			m := c.pinServerSide(c.cfg.Forced)
			if c.cfg.Adaptive {
				m = c.decideServerSide()
			}
			c.stats.KNNSearches.Inc()
			if m == MethodFetch && c.hello.FetchSlots > 0 {
				c.stats.FetchSearches.Inc()
				results[i].Method = MethodFetch
				wireOps = append(wireOps, wireOp{op: i, fetch: true})
			} else {
				c.stats.FastSearches.Inc()
				wireOps = append(wireOps, wireOp{op: i})
			}
		case wire.MsgSearch:
			m := c.cfg.Forced
			if c.cfg.Adaptive {
				m = c.decide()
			}
			switch {
			case m == MethodOffload:
				c.stats.OffloadSearches.Inc()
				results[i].Method = MethodOffload
				offload = append(offload, i)
			case m == MethodFetch && c.hello.FetchSlots > 0:
				// The request rides the same container, retyped; its result
				// comes back as a descriptor (or inline segments) and the
				// mailbox pulls run after the batch collect completes.
				c.stats.FetchSearches.Inc()
				results[i].Method = MethodFetch
				wireOps = append(wireOps, wireOp{op: i, fetch: true})
			default:
				c.stats.FastSearches.Inc()
				wireOps = append(wireOps, wireOp{op: i})
			}
		default:
			results[i].Err = fmt.Errorf("%w: unsupported batch op type %d", ErrServer, op.Type)
		}
	}

	// Register every operation on one shared waiter before the single
	// frame write, so no response can slip past, then collect concurrently
	// with the offloaded traversals (a blocked collector would stall the
	// connection's read loop and deadlock the chunk reads).
	var done chan struct{}
	var descs []pendingDesc
	var ids []uint64
	if len(wireOps) > 0 {
		w := newWaiter()
		ids = make([]uint64, 0, len(wireOps))
		for j := range wireOps {
			wireOps[j].id = c.nextID()
			ids = append(ids, wireOps[j].id)
		}
		if err := c.mx.registerAll(ids, w); err != nil {
			for _, wo := range wireOps {
				results[wo.op].Err = err
			}
			wireOps = nil
		}
		if len(wireOps) > 0 {
			buf := wire.GetBuf()
			var enc wire.BatchEncoder
			enc.Reset((*buf)[:0])
			dl := deadlineUS(c.cfg.Deadline)
			for _, wo := range wireOps {
				op := ops[wo.op]
				typ := op.Type
				if wo.fetch {
					typ = wire.MsgSearchFetch
					if op.Type == wire.MsgKNN {
						typ = wire.MsgKNNFetch
					}
				} else {
					results[wo.op].Method = MethodFast
				}
				enc.Begin()
				enc.Buf = wire.Request{Type: typ, ID: wo.id, Rect: op.Rect, Ref: op.Ref,
					Rect2: op.Rect2, DeadlineUS: dl}.Encode(enc.Buf)
				enc.End()
			}
			payload := enc.Bytes()
			c.stats.BatchesSent.Inc()
			c.stats.BatchedOps.Add(uint64(len(wireOps)))
			err := c.mx.send(payload)
			*buf = enc.Buf
			wire.PutBuf(buf)
			if err != nil {
				for _, wo := range wireOps {
					results[wo.op].Err = err
				}
			} else {
				done = make(chan struct{})
				go c.collectBatch(w, ops, results, wireOps, &descs, done)
			}
		}
	}

	for _, i := range offload {
		items, err := c.searchOffload(ops[i].Rect)
		results[i].Items = items
		results[i].Err = err
	}

	if done != nil {
		<-done
	}
	if len(ids) > 0 {
		c.mx.unregisterAll(ids)
	}

	// Pull phase: resolve every fetch descriptor against the mailbox, in
	// batch order for determinism. A pull past its retry budget re-executes
	// the search over fast messaging, exactly like the unbatched fetch path.
	sort.Slice(descs, func(i, j int) bool { return descs[i].op < descs[j].op })
	for _, pd := range descs {
		i := pd.op
		if pd.desc.Status != wire.StatusOK {
			results[i].Err = batchOpError(ops[i].Type, pd.desc.Status)
			continue
		}
		items, err := c.pullMailbox(pd.desc)
		if err != nil {
			c.stats.FetchFallbacks.Inc()
			if ops[i].Type == wire.MsgKNN {
				x, y := ops[i].Rect.Center()
				items, err = c.knnFast(int(ops[i].Ref), x, y)
			} else {
				items, err = c.searchFast(ops[i].Rect)
			}
		}
		results[i].Items = append(results[i].Items, items...)
		results[i].Err = err
	}
	return results
}

// pendingDesc is a fetch descriptor collected during the batch exchange,
// pulled after the collect loop completes so the batch itself never blocks
// on mailbox reads.
type pendingDesc struct {
	op   int
	desc wire.FetchDesc
}

// collectBatch folds delivered response segments into results until every
// messaging-group operation has received its END segment or, for a
// fetch-routed search, its mailbox descriptor (recorded into descs for the
// pull phase that runs after this collector finishes).
func (c *Client) collectBatch(w *waiter, ops []BatchOp, results []BatchResult,
	wireOps []wireOp, descs *[]pendingDesc, done chan struct{}) {
	defer close(done)
	idx := make(map[uint64]int, len(wireOps))
	for _, wo := range wireOps {
		idx[wo.id] = wo.op
	}
	remaining := len(wireOps)
	for remaining > 0 {
		frame, ok := w.recv()
		if !ok {
			for _, i := range idx {
				if results[i].Err == nil {
					results[i].Err = ErrClosed
				}
			}
			for _, pd := range *descs {
				if results[pd.op].Err == nil {
					results[pd.op].Err = ErrClosed
				}
			}
			return
		}
		typ, terr := wire.PeekType(frame)
		if terr != nil {
			continue
		}
		if typ == wire.MsgFetchDesc {
			d, derr := wire.DecodeFetchDesc(frame)
			if derr != nil {
				continue
			}
			i, ok := idx[d.ID]
			if !ok {
				continue
			}
			*descs = append(*descs, pendingDesc{op: i, desc: d})
			delete(idx, d.ID)
			remaining--
			continue
		}
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			continue
		}
		i, ok := idx[resp.ID]
		if !ok {
			continue
		}
		results[i].Items = append(results[i].Items, resp.Items...)
		if resp.Final {
			results[i].Err = batchOpError(ops[i].Type, resp.Status)
			if results[i].Method == MethodFetch {
				c.stats.FetchInline.Inc()
			}
			delete(idx, resp.ID)
			remaining--
		}
	}
}

// batchOpError maps a response status to the unbatched API's error for the
// given operation type.
func batchOpError(t wire.MsgType, status uint8) error {
	if status == wire.StatusOverloaded {
		return ErrOverloaded
	}
	if rerr := replica.StatusError(status); rerr != nil {
		return rerr
	}
	switch {
	case status == wire.StatusOK:
		return nil
	case t == wire.MsgDelete && status == wire.StatusNotFound:
		return ErrNotFound
	case t == wire.MsgInsert:
		return fmt.Errorf("%w: insert status %d", ErrServer, status)
	case t == wire.MsgDelete:
		return fmt.Errorf("%w: delete status %d", ErrServer, status)
	case t == wire.MsgMove:
		return fmt.Errorf("%w: move status %d", ErrServer, status)
	case t == wire.MsgKNN:
		return fmt.Errorf("%w: knn status %d", ErrServer, status)
	default:
		return fmt.Errorf("%w: status %d", ErrServer, status)
	}
}
