package rpcnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// Method mirrors the simulation client's search methods.
type Method int

// Search methods.
const (
	MethodFast Method = iota + 1
	MethodOffload
	// MethodFetch is RFP-style remote result fetching: the server executes
	// the search into a mailbox slot and the client pulls the slot with
	// READ_MAILBOX requests (DESIGN.md §5.10).
	MethodFetch
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodOffload:
		return "offload"
	case MethodFetch:
		return "fetch"
	default:
		return "fast"
	}
}

// Errors.
var (
	ErrClosed   = errors.New("rpcnet: connection closed")
	ErrServer   = errors.New("rpcnet: server reported an error")
	ErrNotFound = errors.New("rpcnet: entry not found")
	ErrGaveUp   = errors.New("rpcnet: traversal exceeded retry budget")
	// ErrOverloaded surfaces a typed StatusOverloaded shed: the server's
	// admission controller refused the operation without executing it.
	// Distinct from transport errors and from the failover sentinels —
	// the server is alive, just saturated; retry (ideally elsewhere)
	// with backoff.
	ErrOverloaded = errors.New("rpcnet: server overloaded")
)

// ClientConfig tunes the real-network client.
type ClientConfig struct {
	// Adaptive runs Algorithm 1; otherwise Forced is used.
	Adaptive bool
	Forced   Method
	// N and T are Algorithm 1's parameters (defaults 8 and 0.95).
	N int
	T float64
	// Fetch arms the 3-way switch's fetch branch (effective only against a
	// server whose hello advertises mailbox slots); TxT is its threshold on
	// the heartbeat's predicted TX utilization (default 0.8).
	Fetch bool
	TxT   float64
	// MultiIssue pipelines chunk reads during offloaded traversal.
	MultiIssue bool
	// MaxRestarts / MaxChunkRetries bound staleness recovery.
	MaxRestarts     int
	MaxChunkRetries int
	// Seed drives the back-off randomness.
	Seed int64
	// NodeCache is the capacity, in nodes, of the client-side
	// version-validated cache of decoded internal nodes (0 disables it).
	// Entries are lease-fresh for one heartbeat interval; past the lease
	// they are revalidated with a READ_VERSIONS round trip (an eighth of
	// a chunk) before being trusted. See internal/nodecache.
	NodeCache int

	// MergeSpan is the maximum number of physically-adjacent chunk reads
	// one multi-issue frontier folds into a single READ_SPAN round trip —
	// the TCP analogue of merged adjacent RDMA reads. 0 or 1 disables
	// merging, leaving the read path identical to per-chunk READ_CHUNK.
	MergeSpan int

	// Prefetch is the token-bucket capacity for speculative span
	// extensions: a span read behind an internal node is stretched past
	// its demand chunks to cover the node's preorder-contiguous children,
	// and the extra raw chunks are kept for the next frontier round. The
	// bucket refills proportionally to the heartbeat-reported idle
	// fraction. 0 disables prefetching.
	Prefetch int

	// Metrics, when non-nil, exposes the client counters, the predicted
	// server utilization, and a search-latency histogram on the registry
	// under catfish_client_* names (DialRouter hands each per-shard client
	// a shard-labelled view).
	Metrics *telemetry.Registry

	// Trace, when non-nil, receives one telemetry.Trace per search.
	Trace *telemetry.Tracer

	// Shard is the shard index stamped into trace records (DialRouter sets
	// it; 0 for unsharded clients).
	Shard int

	// Deadline, when positive, stamps every fast-messaging operation with
	// a relative latency budget (microsecond resolution on the wire). An
	// admission-controlled server sheds the operation with ErrOverloaded
	// if it cannot start executing within the budget.
	Deadline time.Duration
}

// Client is a Catfish client over real TCP — one logical stream on a
// (possibly shared) multiplexed connection. It is safe for use by one
// goroutine at a time (like net.Conn-based request/response clients); the
// connection's reader goroutine handles asynchronous heartbeats. Request
// ids are stream<<32 | seq, so many clients demultiplex over one Mux.
type Client struct {
	mx      *Mux
	stream  uint32
	seq     atomic.Uint32
	ownsMux bool // Dial-created: closing the client closes the connection
	hello   wire.Hello

	// u_serv: the latest unconsumed heartbeat (0 = none); heartbeatTX is
	// the TX-utilization word riding the same frame (0 against servers
	// that predate it).
	heartbeat   atomic.Uint64 // float64 bits
	heartbeatTX atomic.Uint64 // float64 bits
	// lastHB is the arrival time of the most recent heartbeat frame (as
	// nanoseconds since c.start; 0 = none yet). Unlike the u_serv word,
	// which Algorithm 1 consumes, arrival time survives reads — it is what
	// liveness tracking wants.
	lastHB atomic.Int64
	start  time.Time
	sw     *adaptive.Switch

	// Replication words riding the heartbeat (0 against servers that
	// predate them): the shard's epoch, the server's applied sequence, and
	// the version of the shard map it serves. Routers read these to elect
	// failover successors and to notice a resharding's map bump mid-run.
	hbEpoch   atomic.Uint64
	hbApplied atomic.Uint64
	hbMapVer  atomic.Uint64

	// ncache is the version-validated internal-node cache (nil when
	// disabled); rootVer tracks the heartbeat's root version so a root
	// rewrite demotes every entry within one heartbeat.
	ncache  *nodecache.Cache
	rootVer atomic.Uint64

	// Prefetch token bucket, touched only by the single search goroutine.
	prefTokens float64
	prefLast   time.Duration

	cfg     ClientConfig
	stats   telemetry.ClientMetrics
	latHist *telemetry.Histogram
}

// Dial connects to a server and performs the hello exchange. The client
// owns its connection; use DialMux + (*Mux).Client (or a MuxPool) to
// share one connection among many logical clients.
//
// Deprecated: use Connect, which unifies single-server and routed
// construction behind functional options.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	m, err := DialMux(addr, MuxConfig{})
	if err != nil {
		return nil, err
	}
	c, err := m.Client(cfg)
	if err != nil {
		m.Close()
		return nil, err
	}
	c.ownsMux = true
	return c, nil
}

// Client attaches a new logical client to the multiplexed connection,
// allocating it a stream id. Fails with ErrStreamsExhausted once
// MaxStreams clients are attached (detached ids are reused).
func (m *Mux) Client(cfg ClientConfig) (*Client, error) {
	if cfg.N == 0 {
		cfg.N = 8
	}
	if cfg.T == 0 {
		cfg.T = 0.95
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.MaxChunkRetries == 0 {
		cfg.MaxChunkRetries = 64
	}
	if !cfg.Adaptive && cfg.Forced == 0 {
		cfg.Forced = MethodFast
	}
	stream, err := m.allocStream()
	if err != nil {
		return nil, err
	}
	c := &Client{
		mx:     m,
		stream: stream,
		hello:  m.hello,
		start:  time.Now(),
		cfg:    cfg,
	}
	c.prefTokens = float64(cfg.Prefetch) // start full: idle until told otherwise
	hello := m.hello
	if cfg.NodeCache > 0 {
		versionsSize := int(hello.ChunkSize) / region.CacheLine * region.VersionSize
		c.ncache = nodecache.New(cfg.NodeCache,
			time.Duration(hello.HeartbeatMs)*time.Millisecond,
			int(hello.ChunkSize), versionsSize)
	}
	c.sw = adaptive.New(adaptive.Config{
		N:           cfg.N,
		T:           cfg.T,
		Inv:         time.Duration(hello.HeartbeatMs) * time.Millisecond,
		EnableFetch: cfg.Fetch && hello.FetchSlots > 0,
		TxT:         cfg.TxT,
	}, rand.New(rand.NewSource(cfg.Seed+time.Now().UnixNano())))
	if cfg.Metrics != nil {
		c.stats.Register(cfg.Metrics)
		telemetry.RegisterCacheFuncs(cfg.Metrics, func() telemetry.CacheStats {
			ns := c.ncache.Stats()
			return telemetry.CacheStats{Hits: ns.Hits, VerifiedHits: ns.VerifiedHits,
				Misses: ns.Misses, Evictions: ns.Evictions, BytesSaved: ns.BytesSaved,
				PrefetchHits: ns.PrefetchHits, PrefetchWaste: ns.PrefetchWaste}
		})
		cfg.Metrics.GaugeFunc("catfish_client_pred_util", c.sw.PredictedUtil)
		c.latHist = cfg.Metrics.Histogram("catfish_client_search_latency_seconds")
	}
	m.mu.Lock()
	if m.readerr != nil {
		err := m.readerr
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	m.streams[stream] = c
	m.mu.Unlock()
	return c, nil
}

// nextID stamps the next request id: this client's stream in the high 32
// bits, a wrapping per-stream sequence in the low 32.
func (c *Client) nextID() uint64 {
	return uint64(c.stream)<<32 | uint64(c.seq.Add(1))
}

// Close detaches the logical client from its connection (pending calls
// fail with ErrClosed, the stream id returns to the pool) and, when the
// client was created by Dial and owns the connection, closes it.
func (c *Client) Close() error {
	c.mx.detach(c)
	if c.ownsMux {
		return c.mx.Close()
	}
	return nil
}

// noteHeartbeat applies one heartbeat frame to this stream's adaptive
// state (called by the connection read loop for every attached client).
func (c *Client) noteHeartbeat(hb wire.Heartbeat) {
	c.heartbeat.Store(floatBits(hb.Util))
	c.heartbeatTX.Store(floatBits(hb.TXUtil))
	c.hbEpoch.Store(hb.Epoch)
	c.hbApplied.Store(hb.AppliedSeq)
	c.hbMapVer.Store(hb.MapVersion)
	c.lastHB.Store(int64(time.Since(c.start)))
	c.stats.HeartbeatsSeen.Inc()
	// A root rewrite demotes every cached node to the revalidation tier
	// within one heartbeat.
	if old := c.rootVer.Swap(hb.RootVer); old != hb.RootVer {
		c.ncache.DemoteAll()
	}
}

// Stats returns a snapshot of the counters.
func (c *Client) Stats() telemetry.ClientSnapshot {
	out := c.stats.Snapshot()
	ns := c.ncache.Stats()
	out.CacheHits = ns.Hits
	out.CacheVerifiedHits = ns.VerifiedHits
	out.CacheMisses = ns.Misses
	out.CacheEvictions = ns.Evictions
	out.CacheBytesSaved = ns.BytesSaved
	out.CachePrefetchHits = ns.PrefetchHits
	out.CachePrefetchWaste = ns.PrefetchWaste
	return out
}

// Hello returns the server's connection bootstrap info.
func (c *Client) Hello() wire.Hello { return c.hello }

// HeartbeatAge returns the time since the last heartbeat frame arrived,
// and false if none has arrived yet.
func (c *Client) HeartbeatAge() (time.Duration, bool) {
	last := c.lastHB.Load()
	if last == 0 {
		return 0, false
	}
	return time.Since(c.start) - time.Duration(last), true
}

// FetchShardMap retrieves and verifies the server's shard map (the server
// must be part of a sharded deployment).
func (c *Client) FetchShardMap() (*shard.Map, error) {
	m, _, err := c.FetchShardMapFull()
	return m, err
}

// FetchShardMapFull retrieves the server's shard map plus, when the server
// knows it, the per-cell address table — what a router needs to dial a
// shard that appeared mid-run. The addrs slice is nil when the server has
// no address table.
func (c *Client) FetchShardMapFull() (*shard.Map, []string, error) {
	tag := c.nextID()
	frame, err := c.call(tag, wire.ShardMapRequest{ID: tag}.Encode(nil))
	if err != nil {
		return nil, nil, err
	}
	md, err := wire.DecodeShardMapData(frame)
	if err != nil {
		return nil, nil, err
	}
	if md.Status != wire.StatusOK {
		return nil, nil, fmt.Errorf("%w: shard map status %d (server not sharded?)", ErrServer, md.Status)
	}
	m, err := shard.FromParts(md.Version, md.PadX, md.PadY, md.Cells)
	if err != nil {
		return nil, nil, err
	}
	return m, md.Addrs, nil
}

// Promote asks the server to become its shard's primary at the given epoch,
// fencing lower-epoch lineages. Idempotent on the server.
func (c *Client) Promote(epoch uint64) error {
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgPromote, ID: c.nextID(), Ref: epoch})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return statusErr(resp.Status, "promote")
	}
	return nil
}

// ReplicaState returns the replication epoch and applied sequence from the
// most recent heartbeat (0, 0 before the first one, or against a server
// without replication).
func (c *Client) ReplicaState() (epoch, applied uint64) {
	return c.hbEpoch.Load(), c.hbApplied.Load()
}

// HeartbeatMapVersion returns the shard-map version the server most
// recently advertised in a heartbeat (0 before the first heartbeat).
func (c *Client) HeartbeatMapVersion() uint64 { return c.hbMapVer.Load() }

// Addr returns the address this client's connection dialed.
func (c *Client) Addr() string { return c.mx.addr }

// PredictedUtil returns the adaptive switch's decayed estimate of the
// server's utilization — the signal the router's read-replica policy keys
// on.
func (c *Client) PredictedUtil() float64 { return c.sw.PredictedUtil() }

// statusErr maps a response status to the typed error clients surface: the
// replica sentinels first, so errors.Is failover checks work identically
// across transports, then the generic server-error wrap.
func statusErr(status uint8, what string) error {
	if status == wire.StatusOverloaded {
		return ErrOverloaded
	}
	if rerr := replica.StatusError(status); rerr != nil {
		return rerr
	}
	return fmt.Errorf("%w: %s status %d", ErrServer, what, status)
}

// call sends payload and waits for one frame addressed to id.
func (c *Client) call(id uint64, payload []byte) ([]byte, error) {
	w := newWaiter()
	if err := c.mx.register(id, w); err != nil {
		return nil, err
	}
	defer c.mx.unregister(id)
	if err := c.mx.send(payload); err != nil {
		return nil, err
	}
	frame, ok := w.recv()
	if !ok {
		return nil, ErrClosed
	}
	return frame, nil
}

// waitMore re-reads from an already-registered waiter (for multi-segment
// responses).
func waitMore(w *waiter) ([]byte, error) {
	frame, ok := w.recv()
	if !ok {
		return nil, ErrClosed
	}
	return frame, nil
}

// roundTrip performs one request and folds segmented responses. The
// configured deadline is stamped here so every fast-messaging operation
// carries its latency budget.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	if req.DeadlineUS == 0 {
		req.DeadlineUS = deadlineUS(c.cfg.Deadline)
	}
	id := req.ID
	w := newWaiter()
	if err := c.mx.register(id, w); err != nil {
		return wire.Response{}, err
	}
	defer c.mx.unregister(id)

	buf := wire.GetBuf()
	*buf = req.Encode((*buf)[:0])
	err := c.mx.send(*buf)
	wire.PutBuf(buf)
	if err != nil {
		return wire.Response{}, err
	}
	var out wire.Response
	for {
		frame, err := waitMore(w)
		if err != nil {
			return out, err
		}
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			return out, err
		}
		out.ID = resp.ID
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			return out, nil
		}
	}
}

// Search executes a range query, adaptively or as forced.
func (c *Client) Search(q geo.Rect) ([]wire.Item, Method, error) {
	m := c.cfg.Forced
	if c.cfg.Adaptive {
		m = c.decide()
	}
	tracing := c.cfg.Trace != nil
	var start time.Duration
	var readsBefore, tornBefore uint64
	if tracing || c.latHist != nil {
		start = time.Since(c.start)
	}
	if tracing {
		readsBefore = c.stats.NodesFetched.Load()
		tornBefore = c.stats.TornRetries.Load()
	}
	var items []wire.Item
	var err error
	switch m {
	case MethodOffload:
		c.stats.OffloadSearches.Inc()
		items, err = c.searchOffload(q)
	case MethodFetch:
		c.stats.FetchSearches.Inc()
		items, err = c.searchFetch(q)
	default:
		c.stats.FastSearches.Inc()
		items, err = c.searchFast(q)
	}
	if tracing || c.latHist != nil {
		lat := time.Since(c.start) - start
		c.latHist.Record(lat)
		if tracing {
			rbusy, roff := c.sw.State()
			tr := telemetry.Trace{
				Start:        start,
				Method:       m.String(),
				Shard:        c.cfg.Shard,
				RBusy:        rbusy,
				ROff:         roff,
				PredUtil:     c.sw.PredictedUtil(),
				PredTX:       c.sw.PredictedTX(),
				OffloadReads: uint32(c.stats.NodesFetched.Load() - readsBefore),
				TornRetries:  uint32(c.stats.TornRetries.Load() - tornBefore),
				Latency:      lat,
			}
			if err != nil {
				tr.Err = err.Error()
			}
			c.cfg.Trace.Record(tr)
		}
	}
	if err != nil {
		return nil, m, err
	}
	return items, m, nil
}

// Insert adds an entry (always by messaging, like the paper).
func (c *Client) Insert(r geo.Rect, ref uint64) error {
	c.stats.Inserts.Inc()
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgInsert, ID: c.nextID(), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return statusErr(resp.Status, "insert")
	}
	return nil
}

// Delete removes an exact entry.
func (c *Client) Delete(r geo.Rect, ref uint64) error {
	c.stats.Deletes.Inc()
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgDelete, ID: c.nextID(), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	default:
		return statusErr(resp.Status, "delete")
	}
}

// decide runs Algorithm 1 (extended with the 3-way fetch branch) against
// wall-clock time via the shared adaptive.Switch (see that package for the
// policy).
func (c *Client) decide() Method {
	switch c.sw.DecideMethod(time.Since(c.start),
		func() (float64, float64) {
			return floatFromBits(c.heartbeat.Load()), floatFromBits(c.heartbeatTX.Load())
		},
		func() { c.heartbeat.Store(0) }) {
	case adaptive.ChooseOffload:
		return MethodOffload
	case adaptive.ChooseFetch:
		if c.hello.FetchSlots > 0 {
			return MethodFetch
		}
		return MethodFast
	default:
		return MethodFast
	}
}

// searchFast runs a plain fast-messaging search round trip.
func (c *Client) searchFast(q geo.Rect) ([]wire.Item, error) {
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgSearch, ID: c.nextID(), Rect: q})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, statusErr(resp.Status, "search")
	}
	return resp.Items, nil
}

// searchFetch executes a search by remote result fetching: SEARCH_FETCH,
// then either an inline response or a descriptor followed by READ_MAILBOX
// pulls of the slot (DESIGN.md §5.10). A pull past its retry budget falls
// back to a fast-messaging re-execution.
func (c *Client) searchFetch(q geo.Rect) ([]wire.Item, error) {
	if c.hello.FetchSlots == 0 {
		return c.searchFast(q)
	}
	id := c.nextID()
	w := newWaiter()
	if err := c.mx.register(id, w); err != nil {
		return nil, err
	}
	defer c.mx.unregister(id)

	buf := wire.GetBuf()
	*buf = wire.Request{Type: wire.MsgSearchFetch, ID: id, Rect: q,
		DeadlineUS: deadlineUS(c.cfg.Deadline)}.Encode((*buf)[:0])
	err := c.mx.send(*buf)
	wire.PutBuf(buf)
	if err != nil {
		return nil, err
	}
	var out wire.Response
	for {
		frame, err := waitMore(w)
		if err != nil {
			return nil, err
		}
		typ, err := wire.PeekType(frame)
		if err != nil {
			return nil, err
		}
		if typ == wire.MsgFetchDesc {
			desc, derr := wire.DecodeFetchDesc(frame)
			if derr != nil {
				return nil, derr
			}
			if desc.Status != wire.StatusOK {
				return nil, statusErr(desc.Status, "fetch")
			}
			items, perr := c.pullMailbox(desc)
			if perr != nil {
				c.stats.FetchFallbacks.Inc()
				return c.searchFast(q)
			}
			return items, nil
		}
		resp, derr := wire.DecodeResponse(frame)
		if derr != nil {
			return nil, derr
		}
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			if out.Status != wire.StatusOK {
				return nil, statusErr(out.Status, "fetch")
			}
			c.stats.FetchInline.Inc()
			return out.Items, nil
		}
	}
}

// pullMailbox reads the slot named by desc with READ_MAILBOX round trips
// (the TCP stand-in for one-sided reads), validating each chunk through the
// seqlock surface and the slot header, and acknowledges the slot on
// success. Torn or stale snapshots retry up to MaxChunkRetries.
func (c *Client) pullMailbox(desc wire.FetchDesc) ([]wire.Item, error) {
	cs := int(c.hello.ChunkSize)
	payloadSize := cs / region.CacheLine * region.LineData
	chunks := region.MailboxChunks(int(desc.Bytes), payloadSize)
	slotChunks := int(c.hello.FetchSlotChunks)
	if chunks > slotChunks {
		return nil, fmt.Errorf("%w: descriptor %d B exceeds slot", ErrServer, desc.Bytes)
	}
	base := int(desc.Slot) * slotChunks
	payloads := make([][]byte, chunks)
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		torn := false
		for at := 0; at < chunks; {
			cnt := chunks - at
			if cnt > maxSpanChunks {
				cnt = maxSpanChunks
			}
			tag := c.nextID()
			c.stats.FetchPulls.Add(uint64(cnt))
			c.stats.ReadWQEs.Inc()
			frame, err := c.call(tag, wire.ReadMailbox{ID: tag, Chunk: uint32(base + at), Count: uint32(cnt)}.Encode(nil))
			if err != nil {
				return nil, err
			}
			sd, err := wire.DecodeSpanData(frame)
			if err != nil {
				return nil, err
			}
			if sd.Status != wire.StatusOK {
				return nil, statusErr(sd.Status, "mailbox read")
			}
			if len(sd.Raw) != cnt*cs {
				return nil, fmt.Errorf("%w: mailbox read short reply", ErrServer)
			}
			for k := 0; k < cnt; k++ {
				payload, _, derr := region.DecodeChunk(sd.Raw[k*cs:(k+1)*cs], nil)
				if derr != nil {
					if errors.Is(derr, region.ErrTornRead) {
						torn = true
						continue
					}
					return nil, derr
				}
				payloads[at+k] = payload
			}
			at += cnt
		}
		if torn {
			c.stats.FetchRetries.Inc()
			continue
		}
		buf, err := region.AssembleMailbox(payloads[:chunks], desc.Seq, int(desc.Bytes))
		if err != nil {
			if errors.Is(err, region.ErrStaleSlot) {
				c.stats.FetchRetries.Inc()
				continue
			}
			return nil, err
		}
		items, err := wire.DecodeItems(buf, int(desc.Count))
		if err != nil {
			return nil, err
		}
		c.stats.FetchBytes.Add(uint64(desc.Bytes))
		c.sendFetchAck(desc)
		return items, nil
	}
	return nil, ErrGaveUp
}

// sendFetchAck returns the slot to the server, fire-and-forget.
func (c *Client) sendFetchAck(desc wire.FetchDesc) {
	_ = c.mx.send(wire.FetchAck{Slot: desc.Slot, Seq: desc.Seq}.Encode(nil))
}

// fetchChunk reads one chunk with version validation and decodes it,
// retrying torn reads. The node cache is consulted first: a lease-fresh
// entry costs zero network, a demoted entry is revalidated with a
// READ_VERSIONS round trip, and only a miss pays for the full chunk.
func (c *Client) fetchChunk(id int, expectLevel int, node *rtree.Node) error {
	if c.ncache != nil {
		if cached, err := c.fetchCached(id, expectLevel, node); cached || err != nil {
			return err
		}
	}
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		c.stats.NodesFetched.Inc()
		c.stats.ReadWQEs.Inc()
		tag := c.nextID()
		frame, err := c.call(tag, wire.ReadChunk{ID: tag, Chunk: uint32(id)}.Encode(nil))
		if err != nil {
			return err
		}
		cd, err := wire.DecodeChunkData(frame)
		if err != nil {
			return err
		}
		if cd.Status != wire.StatusOK {
			return statusErr(cd.Status, "chunk read")
		}
		payload, ver, derr := region.DecodeChunk(cd.Raw, nil)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				c.stats.TornRetries.Inc()
				continue
			}
			return derr
		}
		if err := rtree.DecodeNode(payload, node, int(c.hello.MaxEntries)); err != nil {
			return errStale
		}
		if expectLevel >= 0 && node.Level != expectLevel {
			return errStale
		}
		if c.ncache != nil && !node.IsLeaf() {
			cp := &rtree.Node{
				Level:   node.Level,
				Entries: append([]rtree.Entry(nil), node.Entries...),
			}
			c.ncache.Put(id, cp, ver, time.Since(c.start))
		}
		return nil
	}
	return ErrGaveUp
}

// fetchCached tries to serve chunk id from the node cache, reporting
// whether it did. Cached nodes are copied out: the cached image is shared
// read-only across the multi-issue goroutines.
func (c *Client) fetchCached(id int, expectLevel int, node *rtree.Node) (bool, error) {
	copyOut := func(v any) (bool, error) {
		n := v.(*rtree.Node)
		if expectLevel >= 0 && n.Level != expectLevel {
			c.ncache.Evict(id)
			return false, errStale
		}
		node.Level = n.Level
		node.Entries = append(node.Entries[:0], n.Entries...)
		return true, nil
	}
	switch v, out := c.ncache.Lookup(id, time.Since(c.start)); out {
	case nodecache.Fresh:
		return copyOut(v)
	case nodecache.Verify:
		ver, err := c.fetchVersions(id)
		if err != nil {
			// Transport errors surface; a torn fingerprint just falls
			// back to the full validated fetch.
			if errors.Is(err, region.ErrTornRead) {
				return false, nil
			}
			return false, err
		}
		if v, ok := c.ncache.Confirm(id, ver, time.Since(c.start)); ok {
			return copyOut(v)
		}
	}
	return false, nil
}

// fetchVersions performs a READ_VERSIONS round trip for chunk id and
// returns its version fingerprint.
func (c *Client) fetchVersions(id int) (uint64, error) {
	c.stats.VersionReads.Inc()
	c.stats.ReadWQEs.Inc()
	tag := c.nextID()
	frame, err := c.call(tag, wire.ReadVersions{ID: tag, Chunk: uint32(id)}.Encode(nil))
	if err != nil {
		return 0, err
	}
	vd, err := wire.DecodeVersionData(frame)
	if err != nil {
		return 0, err
	}
	if vd.Status != wire.StatusOK {
		return 0, statusErr(vd.Status, "version read")
	}
	return region.DecodeVersions(vd.Versions)
}

var errStale = errors.New("rpcnet: stale node during traversal")

// searchOffload traverses the server tree with chunk reads, restarting on
// structural staleness.
func (c *Client) searchOffload(q geo.Rect) ([]wire.Item, error) {
	for attempt := 0; attempt <= c.cfg.MaxRestarts; attempt++ {
		items, err := c.traverse(q)
		if err == nil {
			return items, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		// Conservative: the stale entry's ancestors are unknown, so drop
		// the whole cache before retrying.
		c.ncache.Flush()
		c.stats.StaleRestarts.Inc()
	}
	return nil, ErrGaveUp
}

type chunkRef struct {
	id        int
	level     int
	contained bool // the query fully contains this subtree's MBR
}

func (c *Client) traverse(q geo.Rect) ([]wire.Item, error) {
	if c.cfg.MultiIssue {
		return c.traverseMulti(q)
	}
	var items []wire.Item
	stack := []chunkRef{{id: int(c.hello.RootChunk), level: -1}}
	var node rtree.Node
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := c.fetchChunk(r.id, r.level, &node); err != nil {
			return nil, err
		}
		if node.IsLeaf() {
			for _, e := range node.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			continue
		}
		for _, e := range node.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, chunkRef{id: int(e.Ref), level: node.Level - 1})
			}
		}
	}
	return items, nil
}

// traverseMulti fetches each BFS frontier concurrently — the real-network
// analogue of §IV-C's multi-issue pipeline (requests for all intersecting
// children are in flight simultaneously over the shared connection).
func (c *Client) traverseMulti(q geo.Rect) ([]wire.Item, error) {
	if c.cfg.MergeSpan > 1 || c.cfg.Prefetch > 0 {
		return c.traverseMultiSpans(q)
	}
	var items []wire.Item
	frontier := []chunkRef{{id: int(c.hello.RootChunk), level: -1}}
	for len(frontier) > 0 {
		nodes := make([]rtree.Node, len(frontier))
		errs := make([]error, len(frontier))
		var wg sync.WaitGroup
		for i, r := range frontier {
			i, r := i, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = c.fetchChunk(r.id, r.level, &nodes[i])
			}()
		}
		wg.Wait()
		var next []chunkRef
		for i := range nodes {
			if errs[i] != nil {
				return nil, errs[i]
			}
			n := &nodes[i]
			if n.IsLeaf() {
				for _, e := range n.Entries {
					if q.Intersects(e.Rect) {
						items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
					}
				}
				continue
			}
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					next = append(next, chunkRef{id: int(e.Ref), level: n.Level - 1})
				}
			}
		}
		frontier = next
	}
	return items, nil
}

// spanRun is one contiguous stretch of a multi-issue frontier: demand
// chunks (frontier indices idxs) plus ext speculative chunks extending the
// span past its last demand chunk, all fetched in one READ_SPAN.
type spanRun struct {
	idxs []int  // indices into the frontier, contiguous ascending chunk ids
	ext  int    // speculative chunks appended past the last demand chunk
	spec []byte // raw bytes of those ext chunks, filled after the fetch
}

// traverseMultiSpans is traverseMulti with merged reads and speculative
// span extension — the TCP analogue of the simulated client's coalesced
// doorbell batch (DESIGN.md §5.9). Each frontier round sorts the uncached
// refs by chunk id, folds physically-adjacent ones into spans of at most
// MergeSpan chunks (one round trip each), and — budget permitting —
// stretches a span behind an internal node to cover that node's
// preorder-contiguous children. The extra raw chunks are parked in spare
// and adopted by the next round; leftovers at the end are waste.
func (c *Client) traverseMultiSpans(q geo.Rect) ([]wire.Item, error) {
	span := c.cfg.MergeSpan
	if span < 1 {
		span = 1
	}
	if span > maxSpanChunks {
		span = maxSpanChunks
	}
	spanK := 2
	if span > 1 {
		spanK = span - 1
	}
	numChunks := int(c.hello.NumChunks)
	spare := make(map[int][]byte)
	defer func() {
		for range spare {
			c.stats.PrefetchWaste.Inc()
		}
	}()
	var items []wire.Item
	frontier := []chunkRef{{id: int(c.hello.RootChunk), level: -1}}
	for len(frontier) > 0 {
		nodes := make([]*rtree.Node, len(frontier))
		// Serve what we can without the network: parked speculative
		// chunks first, then the node cache.
		var fetchIdx []int
		for i, r := range frontier {
			if raw, ok := spare[r.id]; ok {
				delete(spare, r.id)
				if n := c.adoptSpare(r, raw); n != nil {
					nodes[i] = n
					continue
				}
			}
			if c.ncache != nil {
				var n rtree.Node
				cached, err := c.fetchCached(r.id, r.level, &n)
				if err != nil {
					return nil, err
				}
				if cached {
					nodes[i] = &n
					continue
				}
			}
			fetchIdx = append(fetchIdx, i)
		}
		// Group the remaining refs into contiguous runs of ≤ span chunks.
		sort.Slice(fetchIdx, func(a, b int) bool {
			return frontier[fetchIdx[a]].id < frontier[fetchIdx[b]].id
		})
		var runs []*spanRun
		for k := 0; k < len(fetchIdx); {
			j := k + 1
			for j < len(fetchIdx) && j-k < span &&
				frontier[fetchIdx[j]].id == frontier[fetchIdx[j-1]].id+1 {
				j++
			}
			runs = append(runs, &spanRun{idxs: fetchIdx[k:j]})
			k = j
		}
		// Stretch runs that end on an internal node: its children sit at
		// the immediately following chunks (preorder layout), so a few
		// extra chunks on the same round trip pre-pay the next frontier.
		if c.cfg.Prefetch > 0 {
			budget := c.prefetchBudgetNet()
			spent := 0
			for _, r := range runs {
				if budget <= 0 {
					break
				}
				last := frontier[r.idxs[len(r.idxs)-1]]
				if last.level != -1 && last.level < 1 {
					continue // leaves have no children to prefetch
				}
				// Only stretch behind a subtree the query CONTAINS:
				// every descendant intersects, so the preorder chunks
				// right after it are all wanted. A partially-overlapped
				// child would gamble on which leaves the query clips.
				if !last.contained {
					continue
				}
				ext := spanK
				if ext > budget {
					ext = budget
				}
				if len(r.idxs)+ext > maxSpanChunks {
					ext = maxSpanChunks - len(r.idxs)
				}
				if last.id+ext >= numChunks {
					ext = numChunks - 1 - last.id
				}
				if ext <= 0 {
					continue
				}
				r.ext = ext
				budget -= ext
				spent += ext
				c.stats.PrefetchIssued.Add(uint64(ext))
			}
			c.spendPrefetchNet(spent)
		}
		// Fetch every run concurrently, one round trip per run.
		errs := make([]error, len(runs))
		var wg sync.WaitGroup
		for ri, r := range runs {
			ri, r := ri, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[ri] = c.fetchRun(frontier, r, nodes)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Park the speculative tails for the next round.
		cs := int(c.hello.ChunkSize)
		for _, r := range runs {
			base := frontier[r.idxs[len(r.idxs)-1]].id + 1
			for e := 0; e < r.ext; e++ {
				spare[base+e] = r.spec[e*cs : (e+1)*cs]
			}
		}
		var next []chunkRef
		for i := range nodes {
			n := nodes[i]
			if n.IsLeaf() {
				for _, e := range n.Entries {
					if q.Intersects(e.Rect) {
						items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
					}
				}
				continue
			}
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					next = append(next, chunkRef{id: int(e.Ref), level: n.Level - 1,
						contained: q.Contains(e.Rect)})
				}
			}
		}
		frontier = next
	}
	return items, nil
}

// fetchRun resolves one spanRun. Single-chunk runs with no extension fall
// back to the ordinary READ_CHUNK path; everything else is one READ_SPAN
// whose reply is demuxed — and version-validated — per chunk. A torn chunk
// inside the span taints only itself: just that chunk is re-read through
// fetchChunk's retry loop.
func (c *Client) fetchRun(frontier []chunkRef, r *spanRun, nodes []*rtree.Node) error {
	if len(r.idxs) == 1 && r.ext == 0 {
		i := r.idxs[0]
		nodes[i] = new(rtree.Node)
		return c.fetchChunk(frontier[i].id, frontier[i].level, nodes[i])
	}
	total := len(r.idxs) + r.ext
	first := frontier[r.idxs[0]].id
	c.stats.ReadWQEs.Inc()
	c.stats.NodesFetched.Add(uint64(len(r.idxs)))
	tag := c.nextID()
	frame, err := c.call(tag, wire.ReadSpan{ID: tag, Chunk: uint32(first), Count: uint32(total)}.Encode(nil))
	if err != nil {
		return err
	}
	sd, err := wire.DecodeSpanData(frame)
	if err != nil {
		return err
	}
	if sd.Status != wire.StatusOK {
		return statusErr(sd.Status, "span read")
	}
	cs := int(c.hello.ChunkSize)
	if len(sd.Raw) != total*cs {
		return fmt.Errorf("%w: span %d+%d short reply", ErrServer, first, total)
	}
	for k, i := range r.idxs {
		ref := frontier[i]
		nodes[i] = new(rtree.Node)
		if err := c.decodeSpanChunk(ref, sd.Raw[k*cs:(k+1)*cs], nodes[i]); err != nil {
			return err
		}
	}
	r.spec = sd.Raw[len(r.idxs)*cs:]
	return nil
}

// decodeSpanChunk validates and decodes one demand chunk out of a span
// reply, retrying through the single-chunk path if the image was torn.
func (c *Client) decodeSpanChunk(ref chunkRef, raw []byte, node *rtree.Node) error {
	payload, ver, derr := region.DecodeChunk(raw, nil)
	if derr != nil {
		if errors.Is(derr, region.ErrTornRead) {
			c.stats.TornRetries.Inc()
			return c.fetchChunk(ref.id, ref.level, node)
		}
		return derr
	}
	if err := rtree.DecodeNode(payload, node, int(c.hello.MaxEntries)); err != nil {
		return errStale
	}
	if ref.level >= 0 && node.Level != ref.level {
		return errStale
	}
	if c.ncache != nil && !node.IsLeaf() {
		cp := &rtree.Node{
			Level:   node.Level,
			Entries: append([]rtree.Entry(nil), node.Entries...),
		}
		c.ncache.Put(ref.id, cp, ver, time.Since(c.start))
	}
	return nil
}

// adoptSpare tries to turn a parked speculative chunk into this frontier
// ref's node. Any mismatch (torn image, garbage, wrong level) silently
// falls back to a normal fetch and counts as waste — speculation must
// never fail a search.
func (c *Client) adoptSpare(ref chunkRef, raw []byte) *rtree.Node {
	payload, ver, derr := region.DecodeChunk(raw, nil)
	if derr != nil {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	var n rtree.Node
	if err := rtree.DecodeNode(payload, &n, int(c.hello.MaxEntries)); err != nil {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	if ref.level >= 0 && n.Level != ref.level {
		c.stats.PrefetchWaste.Inc()
		return nil
	}
	c.stats.PrefetchHits.Inc()
	if c.ncache != nil && !n.IsLeaf() {
		cp := &rtree.Node{Level: n.Level, Entries: append([]rtree.Entry(nil), n.Entries...)}
		c.ncache.Put(ref.id, cp, ver, time.Since(c.start))
	}
	return &n
}

// prefetchBudgetNet refills the speculative-read token bucket from the
// heartbeat-reported server utilization and returns the whole tokens
// available. Mirrors the simulated client's bucket: refill is proportional
// to the idle fraction, paused entirely above the switch threshold T.
func (c *Client) prefetchBudgetNet() int {
	if c.cfg.Prefetch <= 0 {
		return 0
	}
	now := time.Since(c.start)
	elapsed := now - c.prefLast
	c.prefLast = now
	util := floatFromBits(c.heartbeat.Load())
	inv := time.Duration(c.hello.HeartbeatMs) * time.Millisecond
	if inv <= 0 {
		inv = 10 * time.Millisecond
	}
	if util < c.cfg.T && elapsed > 0 {
		rate := float64(c.cfg.Prefetch) * (1 - util) / float64(inv)
		c.prefTokens += rate * float64(elapsed)
		if c.prefTokens > float64(c.cfg.Prefetch) {
			c.prefTokens = float64(c.cfg.Prefetch)
		}
	}
	return int(c.prefTokens)
}

func (c *Client) spendPrefetchNet(n int) {
	c.prefTokens -= float64(n)
	if c.prefTokens < 0 {
		c.prefTokens = 0
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
