package rpcnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/nodecache"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	"github.com/catfish-db/catfish/internal/telemetry"
	"github.com/catfish-db/catfish/internal/wire"
)

// Method mirrors the simulation client's search methods.
type Method int

// Search methods.
const (
	MethodFast Method = iota + 1
	MethodOffload
)

// Errors.
var (
	ErrClosed   = errors.New("rpcnet: connection closed")
	ErrServer   = errors.New("rpcnet: server reported an error")
	ErrNotFound = errors.New("rpcnet: entry not found")
	ErrGaveUp   = errors.New("rpcnet: traversal exceeded retry budget")
)

// ClientConfig tunes the real-network client.
type ClientConfig struct {
	// Adaptive runs Algorithm 1; otherwise Forced is used.
	Adaptive bool
	Forced   Method
	// N and T are Algorithm 1's parameters (defaults 8 and 0.95).
	N int
	T float64
	// MultiIssue pipelines chunk reads during offloaded traversal.
	MultiIssue bool
	// MaxRestarts / MaxChunkRetries bound staleness recovery.
	MaxRestarts     int
	MaxChunkRetries int
	// Seed drives the back-off randomness.
	Seed int64
	// NodeCache is the capacity, in nodes, of the client-side
	// version-validated cache of decoded internal nodes (0 disables it).
	// Entries are lease-fresh for one heartbeat interval; past the lease
	// they are revalidated with a READ_VERSIONS round trip (an eighth of
	// a chunk) before being trusted. See internal/nodecache.
	NodeCache int

	// Metrics, when non-nil, exposes the client counters, the predicted
	// server utilization, and a search-latency histogram on the registry
	// under catfish_client_* names (DialRouter hands each per-shard client
	// a shard-labelled view).
	Metrics *telemetry.Registry

	// Trace, when non-nil, receives one telemetry.Trace per search.
	Trace *telemetry.Tracer

	// Shard is the shard index stamped into trace records (DialRouter sets
	// it; 0 for unsharded clients).
	Shard int
}

// ClientStats is the unified per-client counter snapshot shared with the
// simulation transport. The traversal read counter is NodesFetched
// (formerly ChunksFetched — the same quantity).
//
// Deprecated: use telemetry.ClientSnapshot (this alias is kept so existing
// callers compile unchanged).
type ClientStats = telemetry.ClientSnapshot

// Client is a Catfish client over real TCP. It is safe for use by one
// goroutine at a time (like net.Conn-based request/response clients); the
// internal reader goroutine handles asynchronous heartbeats.
type Client struct {
	conn  net.Conn
	hello wire.Hello

	sendMu sync.Mutex
	reqID  atomic.Uint64

	// reader demultiplexes frames: responses/chunks to waiters by ID,
	// heartbeats to the mailbox.
	mu      sync.Mutex
	waiters map[uint64]chan []byte
	readerr error
	done    chan struct{}

	// u_serv: the latest unconsumed heartbeat (0 = none).
	heartbeat atomic.Uint64 // float64 bits
	// lastHB is the arrival time of the most recent heartbeat frame (as
	// nanoseconds since c.start; 0 = none yet). Unlike the u_serv word,
	// which Algorithm 1 consumes, arrival time survives reads — it is what
	// liveness tracking wants.
	lastHB atomic.Int64
	start  time.Time
	sw     *adaptive.Switch

	// ncache is the version-validated internal-node cache (nil when
	// disabled); rootVer tracks the heartbeat's root version so a root
	// rewrite demotes every entry within one heartbeat.
	ncache  *nodecache.Cache
	rootVer atomic.Uint64

	cfg     ClientConfig
	stats   telemetry.ClientMetrics
	latHist *telemetry.Histogram
}

// Dial connects to a server and performs the hello exchange.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.N == 0 {
		cfg.N = 8
	}
	if cfg.T == 0 {
		cfg.T = 0.95
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.MaxChunkRetries == 0 {
		cfg.MaxChunkRetries = 64
	}
	if !cfg.Adaptive && cfg.Forced == 0 {
		cfg.Forced = MethodFast
	}
	c := &Client{
		conn:    conn,
		waiters: make(map[uint64]chan []byte),
		done:    make(chan struct{}),
		start:   time.Now(),
		cfg:     cfg,
	}
	frame, err := readFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpcnet: hello: %w", err)
	}
	hello, err := wire.DecodeHello(frame)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.hello = hello
	if cfg.NodeCache > 0 {
		versionsSize := int(hello.ChunkSize) / region.CacheLine * region.VersionSize
		c.ncache = nodecache.New(cfg.NodeCache,
			time.Duration(hello.HeartbeatMs)*time.Millisecond,
			int(hello.ChunkSize), versionsSize)
	}
	c.sw = adaptive.New(adaptive.Config{
		N:   cfg.N,
		T:   cfg.T,
		Inv: time.Duration(hello.HeartbeatMs) * time.Millisecond,
	}, rand.New(rand.NewSource(cfg.Seed+time.Now().UnixNano())))
	if cfg.Metrics != nil {
		c.stats.Register(cfg.Metrics)
		telemetry.RegisterCacheFuncs(cfg.Metrics, func() telemetry.CacheStats {
			ns := c.ncache.Stats()
			return telemetry.CacheStats{Hits: ns.Hits, VerifiedHits: ns.VerifiedHits,
				Misses: ns.Misses, Evictions: ns.Evictions, BytesSaved: ns.BytesSaved}
		})
		cfg.Metrics.GaugeFunc("catfish_client_pred_util", c.sw.PredictedUtil)
		c.latHist = cfg.Metrics.Histogram("catfish_client_search_latency_seconds")
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

// Stats returns a snapshot of the counters.
func (c *Client) Stats() ClientStats {
	out := c.stats.Snapshot()
	ns := c.ncache.Stats()
	out.CacheHits = ns.Hits
	out.CacheVerifiedHits = ns.VerifiedHits
	out.CacheMisses = ns.Misses
	out.CacheEvictions = ns.Evictions
	out.CacheBytesSaved = ns.BytesSaved
	return out
}

// Hello returns the server's connection bootstrap info.
func (c *Client) Hello() wire.Hello { return c.hello }

// HeartbeatAge returns the time since the last heartbeat frame arrived,
// and false if none has arrived yet.
func (c *Client) HeartbeatAge() (time.Duration, bool) {
	last := c.lastHB.Load()
	if last == 0 {
		return 0, false
	}
	return time.Since(c.start) - time.Duration(last), true
}

// FetchShardMap retrieves and verifies the server's shard map (the server
// must be part of a sharded deployment).
func (c *Client) FetchShardMap() (*shard.Map, error) {
	tag := c.reqID.Add(1)
	frame, err := c.call(tag, wire.ShardMapRequest{ID: tag}.Encode(nil))
	if err != nil {
		return nil, err
	}
	md, err := wire.DecodeShardMapData(frame)
	if err != nil {
		return nil, err
	}
	if md.Status != wire.StatusOK {
		return nil, fmt.Errorf("%w: shard map status %d (server not sharded?)", ErrServer, md.Status)
	}
	return shard.FromParts(md.Version, md.PadX, md.PadY, md.Cells)
}

func (c *Client) readLoop() {
	defer close(c.done)
	var buf []byte
	for {
		frame, err := readFrame(c.conn, buf)
		if err != nil {
			c.mu.Lock()
			c.readerr = err
			// Batch waiters share one channel across IDs; close each
			// channel exactly once.
			closed := make(map[chan []byte]struct{})
			for id, ch := range c.waiters {
				if _, dup := closed[ch]; !dup {
					close(ch)
					closed[ch] = struct{}{}
				}
				delete(c.waiters, id)
			}
			c.mu.Unlock()
			return
		}
		buf = frame
		typ, err := wire.PeekType(frame)
		if err != nil {
			continue
		}
		switch typ {
		case wire.MsgHeartbeat:
			if hb, err := wire.DecodeHeartbeat(frame); err == nil {
				c.heartbeat.Store(floatBits(hb.Util))
				c.lastHB.Store(int64(time.Since(c.start)))
				c.stats.HeartbeatsSeen.Inc()
				// A root rewrite demotes every cached node to the
				// revalidation tier within one heartbeat.
				if old := c.rootVer.Swap(hb.RootVer); old != hb.RootVer {
					c.ncache.DemoteAll()
				}
			}
		case wire.MsgResponse:
			if resp, err := wire.DecodeResponse(frame); err == nil {
				c.deliver(resp.ID, frame)
			}
		case wire.MsgChunkData:
			if cd, err := wire.DecodeChunkData(frame); err == nil {
				c.deliver(cd.ID, frame)
			}
		case wire.MsgVersionData:
			if vd, err := wire.DecodeVersionData(frame); err == nil {
				c.deliver(vd.ID, frame)
			}
		case wire.MsgShardMapData:
			if md, err := wire.DecodeShardMapData(frame); err == nil {
				c.deliver(md.ID, frame)
			}
		case wire.MsgBatch:
			// Batch responses: deliver each response sub-message to its
			// waiter individually, so segmentation folds per operation.
			it, err := wire.DecodeBatch(frame)
			if err != nil {
				continue
			}
			for {
				msg, ok := it.Next()
				if !ok {
					break
				}
				if t, err := wire.PeekType(msg); err != nil || t != wire.MsgResponse {
					continue
				}
				if resp, err := wire.DecodeResponse(msg); err == nil {
					c.deliver(resp.ID, msg)
				}
			}
		}
	}
}

// deliver hands a copy of the frame to the waiter registered for id.
func (c *Client) deliver(id uint64, frame []byte) {
	cp := append([]byte(nil), frame...)
	c.mu.Lock()
	ch, ok := c.waiters[id]
	c.mu.Unlock()
	if ok {
		ch <- cp
	}
}

// call sends payload and waits for one frame addressed to id.
func (c *Client) call(id uint64, payload []byte) ([]byte, error) {
	ch := make(chan []byte, 4)
	c.mu.Lock()
	if c.readerr != nil {
		err := c.readerr
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	c.waiters[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()

	c.sendMu.Lock()
	err := writeFrame(c.conn, payload)
	c.sendMu.Unlock()
	if err != nil {
		return nil, err
	}
	frame, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	return frame, nil
}

// wait re-reads from an already-registered channel (for multi-segment
// responses).
func waitMore(ch chan []byte) ([]byte, error) {
	frame, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	return frame, nil
}

// roundTrip performs one request and folds segmented responses.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	id := req.ID
	ch := make(chan []byte, 8)
	c.mu.Lock()
	if c.readerr != nil {
		err := c.readerr
		c.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	c.waiters[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}()

	buf := wire.GetBuf()
	*buf = req.Encode((*buf)[:0])
	c.sendMu.Lock()
	err := writeFrame(c.conn, *buf)
	c.sendMu.Unlock()
	wire.PutBuf(buf)
	if err != nil {
		return wire.Response{}, err
	}
	var out wire.Response
	for {
		frame, err := waitMore(ch)
		if err != nil {
			return out, err
		}
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			return out, err
		}
		out.ID = resp.ID
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			return out, nil
		}
	}
}

// Search executes a range query, adaptively or as forced.
func (c *Client) Search(q geo.Rect) ([]wire.Item, Method, error) {
	m := c.cfg.Forced
	if c.cfg.Adaptive {
		m = c.decide()
	}
	tracing := c.cfg.Trace != nil
	var start time.Duration
	var readsBefore, tornBefore uint64
	if tracing || c.latHist != nil {
		start = time.Since(c.start)
	}
	if tracing {
		readsBefore = c.stats.NodesFetched.Load()
		tornBefore = c.stats.TornRetries.Load()
	}
	var items []wire.Item
	var err error
	if m == MethodOffload {
		c.stats.OffloadSearches.Inc()
		items, err = c.searchOffload(q)
	} else {
		c.stats.FastSearches.Inc()
		var resp wire.Response
		resp, err = c.roundTrip(wire.Request{Type: wire.MsgSearch, ID: c.reqID.Add(1), Rect: q})
		if err == nil && resp.Status != wire.StatusOK {
			err = fmt.Errorf("%w: status %d", ErrServer, resp.Status)
		}
		if err == nil {
			items = resp.Items
		}
	}
	if tracing || c.latHist != nil {
		lat := time.Since(c.start) - start
		c.latHist.Record(lat)
		if tracing {
			method := "fast"
			if m == MethodOffload {
				method = "offload"
			}
			rbusy, roff := c.sw.State()
			tr := telemetry.Trace{
				Start:        start,
				Method:       method,
				Shard:        c.cfg.Shard,
				RBusy:        rbusy,
				ROff:         roff,
				PredUtil:     c.sw.PredictedUtil(),
				OffloadReads: uint32(c.stats.NodesFetched.Load() - readsBefore),
				TornRetries:  uint32(c.stats.TornRetries.Load() - tornBefore),
				Latency:      lat,
			}
			if err != nil {
				tr.Err = err.Error()
			}
			c.cfg.Trace.Record(tr)
		}
	}
	if err != nil {
		return nil, m, err
	}
	return items, m, nil
}

// Insert adds an entry (always by messaging, like the paper).
func (c *Client) Insert(r geo.Rect, ref uint64) error {
	c.stats.Inserts.Inc()
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgInsert, ID: c.reqID.Add(1), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("%w: insert status %d", ErrServer, resp.Status)
	}
	return nil
}

// Delete removes an exact entry.
func (c *Client) Delete(r geo.Rect, ref uint64) error {
	c.stats.Deletes.Inc()
	resp, err := c.roundTrip(wire.Request{Type: wire.MsgDelete, ID: c.reqID.Add(1), Rect: r, Ref: ref})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	default:
		return fmt.Errorf("%w: delete status %d", ErrServer, resp.Status)
	}
}

// decide runs Algorithm 1 against wall-clock time via the shared
// adaptive.Switch (see that package for the policy).
func (c *Client) decide() Method {
	off := c.sw.Decide(time.Since(c.start),
		func() float64 { return floatFromBits(c.heartbeat.Load()) },
		func() { c.heartbeat.Store(0) })
	if off {
		return MethodOffload
	}
	return MethodFast
}

// fetchChunk reads one chunk with version validation and decodes it,
// retrying torn reads. The node cache is consulted first: a lease-fresh
// entry costs zero network, a demoted entry is revalidated with a
// READ_VERSIONS round trip, and only a miss pays for the full chunk.
func (c *Client) fetchChunk(id int, expectLevel int, node *rtree.Node) error {
	if c.ncache != nil {
		if cached, err := c.fetchCached(id, expectLevel, node); cached || err != nil {
			return err
		}
	}
	for retry := 0; retry <= c.cfg.MaxChunkRetries; retry++ {
		c.stats.NodesFetched.Inc()
		tag := c.reqID.Add(1)
		frame, err := c.call(tag, wire.ReadChunk{ID: tag, Chunk: uint32(id)}.Encode(nil))
		if err != nil {
			return err
		}
		cd, err := wire.DecodeChunkData(frame)
		if err != nil {
			return err
		}
		if cd.Status != wire.StatusOK {
			return fmt.Errorf("%w: chunk %d status %d", ErrServer, id, cd.Status)
		}
		payload, ver, derr := region.DecodeChunk(cd.Raw, nil)
		if derr != nil {
			if errors.Is(derr, region.ErrTornRead) {
				c.stats.TornRetries.Inc()
				continue
			}
			return derr
		}
		if err := rtree.DecodeNode(payload, node, int(c.hello.MaxEntries)); err != nil {
			return errStale
		}
		if expectLevel >= 0 && node.Level != expectLevel {
			return errStale
		}
		if c.ncache != nil && !node.IsLeaf() {
			cp := &rtree.Node{
				Level:   node.Level,
				Entries: append([]rtree.Entry(nil), node.Entries...),
			}
			c.ncache.Put(id, cp, ver, time.Since(c.start))
		}
		return nil
	}
	return ErrGaveUp
}

// fetchCached tries to serve chunk id from the node cache, reporting
// whether it did. Cached nodes are copied out: the cached image is shared
// read-only across the multi-issue goroutines.
func (c *Client) fetchCached(id int, expectLevel int, node *rtree.Node) (bool, error) {
	copyOut := func(v any) (bool, error) {
		n := v.(*rtree.Node)
		if expectLevel >= 0 && n.Level != expectLevel {
			c.ncache.Evict(id)
			return false, errStale
		}
		node.Level = n.Level
		node.Entries = append(node.Entries[:0], n.Entries...)
		return true, nil
	}
	switch v, out := c.ncache.Lookup(id, time.Since(c.start)); out {
	case nodecache.Fresh:
		return copyOut(v)
	case nodecache.Verify:
		ver, err := c.fetchVersions(id)
		if err != nil {
			// Transport errors surface; a torn fingerprint just falls
			// back to the full validated fetch.
			if errors.Is(err, region.ErrTornRead) {
				return false, nil
			}
			return false, err
		}
		if v, ok := c.ncache.Confirm(id, ver, time.Since(c.start)); ok {
			return copyOut(v)
		}
	}
	return false, nil
}

// fetchVersions performs a READ_VERSIONS round trip for chunk id and
// returns its version fingerprint.
func (c *Client) fetchVersions(id int) (uint64, error) {
	c.stats.VersionReads.Inc()
	tag := c.reqID.Add(1)
	frame, err := c.call(tag, wire.ReadVersions{ID: tag, Chunk: uint32(id)}.Encode(nil))
	if err != nil {
		return 0, err
	}
	vd, err := wire.DecodeVersionData(frame)
	if err != nil {
		return 0, err
	}
	if vd.Status != wire.StatusOK {
		return 0, fmt.Errorf("%w: versions %d status %d", ErrServer, id, vd.Status)
	}
	return region.DecodeVersions(vd.Versions)
}

var errStale = errors.New("rpcnet: stale node during traversal")

// searchOffload traverses the server tree with chunk reads, restarting on
// structural staleness.
func (c *Client) searchOffload(q geo.Rect) ([]wire.Item, error) {
	for attempt := 0; attempt <= c.cfg.MaxRestarts; attempt++ {
		items, err := c.traverse(q)
		if err == nil {
			return items, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		// Conservative: the stale entry's ancestors are unknown, so drop
		// the whole cache before retrying.
		c.ncache.Flush()
		c.stats.StaleRestarts.Inc()
	}
	return nil, ErrGaveUp
}

type chunkRef struct {
	id    int
	level int
}

func (c *Client) traverse(q geo.Rect) ([]wire.Item, error) {
	if c.cfg.MultiIssue {
		return c.traverseMulti(q)
	}
	var items []wire.Item
	stack := []chunkRef{{id: int(c.hello.RootChunk), level: -1}}
	var node rtree.Node
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := c.fetchChunk(r.id, r.level, &node); err != nil {
			return nil, err
		}
		if node.IsLeaf() {
			for _, e := range node.Entries {
				if q.Intersects(e.Rect) {
					items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
				}
			}
			continue
		}
		for _, e := range node.Entries {
			if q.Intersects(e.Rect) {
				stack = append(stack, chunkRef{id: int(e.Ref), level: node.Level - 1})
			}
		}
	}
	return items, nil
}

// traverseMulti fetches each BFS frontier concurrently — the real-network
// analogue of §IV-C's multi-issue pipeline (requests for all intersecting
// children are in flight simultaneously over the shared connection).
func (c *Client) traverseMulti(q geo.Rect) ([]wire.Item, error) {
	var items []wire.Item
	frontier := []chunkRef{{id: int(c.hello.RootChunk), level: -1}}
	for len(frontier) > 0 {
		nodes := make([]rtree.Node, len(frontier))
		errs := make([]error, len(frontier))
		var wg sync.WaitGroup
		for i, r := range frontier {
			i, r := i, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = c.fetchChunk(r.id, r.level, &nodes[i])
			}()
		}
		wg.Wait()
		var next []chunkRef
		for i := range nodes {
			if errs[i] != nil {
				return nil, errs[i]
			}
			n := &nodes[i]
			if n.IsLeaf() {
				for _, e := range n.Entries {
					if q.Intersects(e.Rect) {
						items = append(items, wire.Item{Rect: e.Rect, Ref: e.Ref})
					}
				}
				continue
			}
			for _, e := range n.Entries {
				if q.Intersects(e.Rect) {
					next = append(next, chunkRef{id: int(e.Ref), level: n.Level - 1})
				}
			}
		}
		frontier = next
	}
	return items, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
