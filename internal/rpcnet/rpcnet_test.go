package rpcnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/rtree"
)

// startServer builds a tree with n uniform items and serves it on a random
// localhost port.
func startServer(t *testing.T, n int, cfg ServerConfig) (*Server, *rtree.Tree) {
	t.Helper()
	reg, err := region.New(1<<14, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		rng := rand.New(rand.NewSource(1))
		items := make([]rtree.Entry, n)
		for i := range items {
			items[i] = rtree.Entry{Rect: randRect(rng, 0.01), Ref: uint64(i)}
		}
		if err := tree.BulkLoad(items, 0); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Listen("127.0.0.1:0", tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // returns on Close
	t.Cleanup(func() { srv.Close() })
	return srv, tree
}

func randRect(rng *rand.Rand, maxEdge float64) geo.Rect {
	w, h := rng.Float64()*maxEdge, rng.Float64()*maxEdge
	x, y := rng.Float64()*(1-w), rng.Float64()*(1-h)
	return geo.Rect{MinX: x, MaxX: x + w, MinY: y, MaxY: y + h}
}

func dial(t *testing.T, srv *Server, cfg ClientConfig) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestHelloExchange(t *testing.T) {
	srv, tree := startServer(t, 100, ServerConfig{HeartbeatInterval: 5 * time.Millisecond})
	c := dial(t, srv, ClientConfig{})
	h := c.Hello()
	if int(h.RootChunk) != tree.RootChunk() {
		t.Errorf("root chunk %d, want %d", h.RootChunk, tree.RootChunk())
	}
	if int(h.ChunkSize) != tree.Region().ChunkSize() {
		t.Errorf("chunk size %d", h.ChunkSize)
	}
	if int(h.MaxEntries) != tree.MaxEntries() {
		t.Errorf("max entries %d", h.MaxEntries)
	}
	if h.HeartbeatMs != 5 {
		t.Errorf("heartbeat ms %d", h.HeartbeatMs)
	}
}

func TestSearchFastAndOffloadAgree(t *testing.T) {
	srv, tree := startServer(t, 5000, ServerConfig{})
	fast := dial(t, srv, ClientConfig{Forced: MethodFast})
	off := dial(t, srv, ClientConfig{Forced: MethodOffload})
	offMulti := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true})

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		q := randRect(rng, rng.Float64()*0.2)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []*Client{fast, off, offMulti} {
			items, _, err := c.Search(q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if len(items) != len(want) {
				t.Fatalf("query %d: got %d items, want %d", i, len(items), len(want))
			}
		}
	}
	if srv.Stats().ChunkReads == 0 {
		t.Error("offload clients performed no chunk reads")
	}
}

func TestInsertDelete(t *testing.T) {
	srv, _ := startServer(t, 100, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	r := geo.NewRect(0.3, 0.3, 0.31, 0.31)
	if err := c.Insert(r, 4242); err != nil {
		t.Fatal(err)
	}
	items, _, err := c.Search(r)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range items {
		if it.Ref == 4242 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted item not visible")
	}
	if err := c.Delete(r, 4242); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(r, 4242); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete err = %v", err)
	}
}

func TestLargeResponseSegmentation(t *testing.T) {
	srv, _ := startServer(t, 3000, ServerConfig{MaxSegmentItems: 50})
	c := dial(t, srv, ClientConfig{})
	items, _, err := c.Search(geo.NewRect(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3000 {
		t.Fatalf("got %d items, want 3000", len(items))
	}
}

func TestHeartbeatsArrive(t *testing.T) {
	srv, _ := startServer(t, 100, ServerConfig{HeartbeatInterval: 2 * time.Millisecond})
	c := dial(t, srv, ClientConfig{Adaptive: true})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().HeartbeatsSeen > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no heartbeats within deadline")
}

// Real goroutine concurrency: parallel searching clients race a writing
// client; offload readers must absorb torn reads / staleness via retries
// and never return garbage. Run with -race.
func TestConcurrentReadersAndWriter(t *testing.T) {
	srv, tree := startServer(t, 4000, ServerConfig{})
	stop := make(chan struct{})
	errCh := make(chan error, 8)

	// Writer: continuous inserts until the readers finish.
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c, err := Dial(srv.Addr().String(), ClientConfig{})
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(3))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Insert(randRect(rng, 0.01), uint64(1_000_000+i)); err != nil {
				select {
				case <-stop: // teardown race is fine
				default:
					errCh <- err
				}
				return
			}
		}
	}()

	var readerWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		readerWG.Add(1)
		seed := int64(g + 10)
		go func() {
			defer readerWG.Done()
			c, err := Dial(srv.Addr().String(), ClientConfig{Forced: MethodOffload, MultiIssue: true, Seed: seed})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				q := randRect(rng, 0.05)
				items, _, err := c.Search(q)
				if err != nil {
					errCh <- err
					return
				}
				for _, it := range items {
					if !q.Intersects(it.Rect) {
						errCh <- errors.New("result does not intersect query")
						return
					}
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Inserts == 0 {
		t.Error("writer performed no inserts")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, _ := startServer(t, 100, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	if _, _, err := c.Search(geo.NewRect(0, 0, 0.1, 0.1)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, _, err := c.Search(geo.NewRect(0, 0, 0.1, 0.1))
	if err == nil {
		t.Fatal("search after server close should fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClientConfig{}); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestAdaptiveOffloadsOverRealTCP(t *testing.T) {
	// With heartbeats flowing and a threshold below the utilization floor,
	// Algorithm 1 must start offloading real-TCP reads.
	srv, _ := startServer(t, 2000, ServerConfig{HeartbeatInterval: 2 * time.Millisecond})
	c := dial(t, srv, ClientConfig{Adaptive: true, T: 1e-9, N: 8, Seed: 42})
	deadline := time.Now().Add(5 * time.Second)
	rng := rand.New(rand.NewSource(1))
	for time.Now().Before(deadline) {
		q := randRect(rng, 0.05)
		if _, _, err := c.Search(q); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.OffloadSearches > 0 && st.FastSearches > 0 {
			return // both paths exercised adaptively
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("adaptive client never mixed paths: %+v", c.Stats())
}

func TestNodeCacheOverTCP(t *testing.T) {
	// Without heartbeats the cache lease is zero, so every hit must
	// revalidate through a READ_VERSIONS round trip: results stay equal to
	// the oracle while full chunk fetches drop.
	srv, tree := startServer(t, 5000, ServerConfig{})
	plain := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true})
	cached := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true, NodeCache: 256})

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		q := randRect(rng, 0.05)
		want, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []*Client{plain, cached} {
			items, _, err := c.Search(q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if len(items) != len(want) {
				t.Fatalf("query %d: got %d items, want %d", i, len(items), len(want))
			}
		}
	}
	ps, cs := plain.Stats(), cached.Stats()
	if cs.NodesFetched >= ps.NodesFetched {
		t.Errorf("cached fetched %d chunks, plain %d — cache saved nothing",
			cs.NodesFetched, ps.NodesFetched)
	}
	if cs.CacheVerifiedHits == 0 {
		t.Error("zero-lease cache recorded no verified hits")
	}
	if srv.Stats().VersionReads == 0 {
		t.Error("server answered no READ_VERSIONS requests")
	}
	t.Logf("plain=%d cached=%d chunks (verified=%d versionReads=%d saved=%dB)",
		ps.NodesFetched, cs.NodesFetched, cs.CacheVerifiedHits, cs.VersionReads, cs.CacheBytesSaved)
}

func TestNodeCacheLeaseHitsOverTCP(t *testing.T) {
	// With a long heartbeat interval the lease covers the whole test:
	// repeated traversals must serve internal nodes with zero network.
	srv, _ := startServer(t, 5000, ServerConfig{HeartbeatInterval: time.Second})
	cached := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true, NodeCache: 256})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		if _, _, err := cached.Search(randRect(rng, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	if cs := cached.Stats(); cs.CacheHits == 0 {
		t.Errorf("no lease-fresh hits under a 1s heartbeat: %+v", cs)
	}
}

// Cached readers race a writer over real sockets; every result must still be
// query-consistent and the cache must stay coherent within one heartbeat.
// Run with -race.
func TestNodeCacheConcurrentWriterOverTCP(t *testing.T) {
	srv, tree := startServer(t, 4000, ServerConfig{HeartbeatInterval: 2 * time.Millisecond})
	stop := make(chan struct{})
	errCh := make(chan error, 8)

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c, err := Dial(srv.Addr().String(), ClientConfig{})
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(4))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Insert(randRect(rng, 0.01), uint64(1_000_000+i)); err != nil {
				select {
				case <-stop:
				default:
					errCh <- err
				}
				return
			}
		}
	}()

	var cacheActivity atomic.Uint64
	var readerWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		readerWG.Add(1)
		seed := int64(g + 20)
		go func() {
			defer readerWG.Done()
			c, err := Dial(srv.Addr().String(), ClientConfig{
				Forced: MethodOffload, MultiIssue: true, Seed: seed, NodeCache: 128,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				q := randRect(rng, 0.05)
				items, _, err := c.Search(q)
				if err != nil {
					errCh <- err
					return
				}
				for _, it := range items {
					if !q.Intersects(it.Rect) {
						errCh <- errors.New("result does not intersect query")
						return
					}
				}
			}
			st := c.Stats()
			cacheActivity.Add(st.CacheHits + st.CacheVerifiedHits)
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if cacheActivity.Load() == 0 {
		t.Error("cached readers never hit the cache")
	}
}

func TestHelloRootVersionEpoch(t *testing.T) {
	srv, _ := startServer(t, 10, ServerConfig{})
	a := dial(t, srv, ClientConfig{})
	b := dial(t, srv, ClientConfig{})
	if a.Hello().ServerEpoch != b.Hello().ServerEpoch {
		t.Error("clients of one server saw different epochs")
	}
	if a.Hello().NumChunks == 0 {
		t.Error("hello missing region geometry")
	}
}
