// Client-side MOVE and remote kNN over real TCP — the geo serving
// operations of DESIGN.md §5.13, mirroring the simulated client's
// internal/client/move.go.
package rpcnet

import (
	"time"

	"github.com/catfish-db/catfish/internal/adaptive"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/wire"
)

// Move relocates the entry (from, ref) to (to, ref) in one round trip: the
// server deletes the old position and inserts the new one under a single
// exclusive latch, so no concurrent search observes the object absent. A
// move of an unknown entry degrades to a plain insert (upsert semantics —
// the same state a delete-then-insert pair reaches).
func (c *Client) Move(from, to geo.Rect, ref uint64) error {
	c.stats.Moves.Inc()
	resp, err := c.roundTrip(wire.MoveRequest(c.nextID(), from, to, ref))
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return statusErr(resp.Status, "move")
	}
	return nil
}

// Nearest returns the k entries nearest to (x, y) in ascending distance
// order, exactly as the server's local rtree.Tree.Nearest would. kNN is
// pinned to server-side execution — best-first traversal pops a global
// priority queue whose every step depends on all previous pops, so a
// client-side (offload) traversal would degenerate into one dependent
// chunk-read round trip per visited node (adaptive.Switch.DecideServerSide,
// DESIGN.md §5.13) — leaving fast messaging and the fetch/mailbox path.
func (c *Client) Nearest(k int, x, y float64) ([]rtree.Neighbor, Method, error) {
	c.stats.KNNSearches.Inc()
	m := c.pinServerSide(c.cfg.Forced)
	if c.cfg.Adaptive {
		m = c.decideServerSide()
	}
	var (
		items []wire.Item
		err   error
	)
	if m == MethodFetch {
		c.stats.FetchSearches.Inc()
		items, err = c.knnFetch(k, x, y)
	} else {
		m = MethodFast
		c.stats.FastSearches.Inc()
		items, err = c.knnFast(k, x, y)
	}
	if err != nil {
		return nil, m, err
	}
	return neighborsOfItems(items, x, y), m, nil
}

// pinServerSide maps a forced method onto one a kNN can execute: offload
// has no kNN path, so a forced-offload client runs its kNN fast.
func (c *Client) pinServerSide(m Method) Method {
	if m == MethodFetch {
		return MethodFetch
	}
	return MethodFast
}

// decideServerSide is decide for operations pinned to the server: the
// switch consumes heartbeats and keeps its window bookkeeping current but
// never opens or spends an offload window, leaving only the fetch-vs-fast
// choice.
func (c *Client) decideServerSide() Method {
	choice := c.sw.DecideServerSide(time.Since(c.start),
		func() (float64, float64) {
			return floatFromBits(c.heartbeat.Load()), floatFromBits(c.heartbeatTX.Load())
		},
		func() { c.heartbeat.Store(0) })
	if choice == adaptive.ChooseFetch && c.hello.FetchSlots > 0 {
		return MethodFetch
	}
	return MethodFast
}

// knnFast runs the kNN as one fast-messaging round trip.
func (c *Client) knnFast(k int, x, y float64) ([]wire.Item, error) {
	resp, err := c.roundTrip(wire.KNNRequest(c.nextID(), k, x, y))
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, statusErr(resp.Status, "knn")
	}
	return resp.Items, nil
}

// knnFetch executes the kNN through the fetch/mailbox path, mirroring
// searchFetch: descriptor or inline answer, mailbox slot pull, and a
// fast-messaging fallback when the pull exhausts its retry budget. Slot
// packing preserves item order, so the pulled neighbors arrive already in
// ascending distance order.
func (c *Client) knnFetch(k int, x, y float64) ([]wire.Item, error) {
	if c.hello.FetchSlots == 0 {
		return c.knnFast(k, x, y)
	}
	req := wire.KNNRequest(c.nextID(), k, x, y)
	req.Type = wire.MsgKNNFetch
	req.DeadlineUS = deadlineUS(c.cfg.Deadline)
	w := newWaiter()
	if err := c.mx.register(req.ID, w); err != nil {
		return nil, err
	}
	defer c.mx.unregister(req.ID)

	buf := wire.GetBuf()
	*buf = req.Encode((*buf)[:0])
	err := c.mx.send(*buf)
	wire.PutBuf(buf)
	if err != nil {
		return nil, err
	}
	var out wire.Response
	for {
		frame, err := waitMore(w)
		if err != nil {
			return nil, err
		}
		typ, err := wire.PeekType(frame)
		if err != nil {
			return nil, err
		}
		if typ == wire.MsgFetchDesc {
			desc, derr := wire.DecodeFetchDesc(frame)
			if derr != nil {
				return nil, derr
			}
			if desc.Status != wire.StatusOK {
				return nil, statusErr(desc.Status, "knn fetch")
			}
			items, perr := c.pullMailbox(desc)
			if perr != nil {
				c.stats.FetchFallbacks.Inc()
				return c.knnFast(k, x, y)
			}
			return items, nil
		}
		resp, derr := wire.DecodeResponse(frame)
		if derr != nil {
			return nil, derr
		}
		out.Status = resp.Status
		out.Items = append(out.Items, resp.Items...)
		if resp.Final {
			if out.Status != wire.StatusOK {
				return nil, statusErr(out.Status, "knn fetch")
			}
			c.stats.FetchInline.Inc()
			return out.Items, nil
		}
	}
}

// neighborsOfItems rebuilds the neighbor list from response items. The
// server sends items in ascending distance order, and DistSq is recomputed
// here with the same geo.Rect.DistSqToPoint the tree's best-first search
// used — rectangles round-trip bit-exactly, so the distances (and therefore
// the whole result) match a local Nearest call exactly.
func neighborsOfItems(items []wire.Item, x, y float64) []rtree.Neighbor {
	if len(items) == 0 {
		return nil
	}
	out := make([]rtree.Neighbor, len(items))
	for i, it := range items {
		out[i] = rtree.Neighbor{Rect: it.Rect, Ref: it.Ref, DistSq: it.Rect.DistSqToPoint(x, y)}
	}
	return out
}

// itemsOfNeighbors flattens a neighbor list to wire items, preserving the
// ascending distance order.
func itemsOfNeighbors(nbrs []rtree.Neighbor) []wire.Item {
	if len(nbrs) == 0 {
		return nil
	}
	out := make([]wire.Item, len(nbrs))
	for i, n := range nbrs {
		out[i] = wire.Item{Rect: n.Rect, Ref: n.Ref}
	}
	return out
}
