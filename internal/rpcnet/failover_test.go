package rpcnet

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	simclient "github.com/catfish-db/catfish/internal/client"
	"github.com/catfish-db/catfish/internal/fabric"
	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/netmodel"
	"github.com/catfish-db/catfish/internal/region"
	"github.com/catfish-db/catfish/internal/replica"
	"github.com/catfish-db/catfish/internal/rtree"
	"github.com/catfish-db/catfish/internal/shard"
	simserver "github.com/catfish-db/catfish/internal/server"
	"github.com/catfish-db/catfish/internal/sim"
	"github.com/catfish-db/catfish/internal/wire"
)

// startReplicatedDeploy builds a K-shard deployment with replicas backups
// per shard (one primary + replicas-1 backups, every replica bulk-loaded
// with the same slice). Returns the primary addresses in shard order, the
// per-shard backup addresses, the servers as [shard][replica] with the
// primary at index 0, the map, and the dataset.
func startReplicatedDeploy(t *testing.T, n, k, replicas int, hbInv time.Duration) ([]string, [][]string, [][]*Server, *shard.Map, []rtree.Entry) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	data := make([]rtree.Entry, n)
	for i := range data {
		data[i] = rtree.Entry{Rect: randRect(rng, 0.01), Ref: uint64(i)}
	}
	m, err := shard.Build(data, shard.Config{K: k, MaxInsertEdge: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(data)
	start := func(s int, rc *ReplicaConfig) *Server {
		reg, err := region.New(1<<14, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(assign[s]) > 0 {
			if err := tree.BulkLoad(append([]rtree.Entry(nil), assign[s]...), 0); err != nil {
				t.Fatal(err)
			}
		}
		srv, err := Listen("127.0.0.1:0", tree, ServerConfig{
			HeartbeatInterval: hbInv,
			ShardMap:          m,
			ShardIndex:        s,
			Replica:           rc,
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve() //nolint:errcheck // returns on Close
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	primaries := make([]string, k)
	backups := make([][]string, k)
	srvs := make([][]*Server, k)
	for s := 0; s < k; s++ {
		// Backups listen first so the primary knows their addresses.
		for b := 1; b < replicas; b++ {
			bs := start(s, &ReplicaConfig{Primary: false})
			backups[s] = append(backups[s], bs.Addr().String())
			srvs[s] = append(srvs[s], bs)
		}
		ps := start(s, &ReplicaConfig{Primary: true, Backups: backups[s]})
		primaries[s] = ps.Addr().String()
		srvs[s] = append([]*Server{ps}, srvs[s]...)
	}
	return primaries, backups, srvs, m, data
}

func waitUntil(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNetFailoverKillPrimary kills shard 0's primary mid-workload and
// verifies the availability contract: every acknowledged write survives the
// failover (replication is synchronous, so an ack implies the backup
// applied it), searches keep answering, and the promoted backup serves the
// shard from then on.
func TestNetFailoverKillPrimary(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"plain", 0},
		{"batched", 8},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			addrs, backups, srvs, _, data := startReplicatedDeploy(t, 2000, 2, 2, hbInv)
			r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 3, Backups: backups})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })

			rng := rand.New(rand.NewSource(31))
			acked := make(map[uint64]geo.Rect)
			nextRef := uint64(1 << 20)
			insert := func(count int) {
				t.Helper()
				for i := 0; i < count; i++ {
					e := rtree.Entry{Rect: randRect(rng, 0.01), Ref: nextRef}
					nextRef++
					if tc.batch > 0 {
						ops := []BatchOp{{Type: wire.MsgInsert, Rect: e.Rect, Ref: e.Ref}}
						res := r.ExecBatch(ops, nil)
						err = res[0].Err
					} else {
						err = r.Insert(e.Rect, e.Ref)
					}
					if err == nil {
						acked[e.Ref] = e.Rect
					} else if !errors.Is(err, shard.ErrUnhealthy) {
						t.Fatalf("insert failed non-typed: %v", err)
					}
				}
			}

			insert(100)
			if got := srvs[0][1].Stats().ReplRecords + srvs[1][1].Stats().ReplRecords; got == 0 {
				t.Fatal("no replicated records applied on backups before the kill")
			}

			// Kill shard 0's primary: heartbeats freeze and every request
			// answers StatusUnavailable, like a wedged process behind a live
			// socket.
			srvs[0][0].Kill()
			insert(100)

			if got := r.Stats().Promotions; got == 0 {
				t.Error("no promotion recorded after killing a primary")
			}
			if got := srvs[0][1].Stats().Promotions; got == 0 {
				t.Error("backup never accepted a promote")
			}

			// Searches must keep answering: a full scan after the failover
			// sees the original dataset plus every acknowledged insert.
			want := make(map[uint64]bool, len(data)+len(acked))
			for _, e := range data {
				want[e.Ref] = true
			}
			for ref := range acked {
				want[ref] = true
			}
			all := geo.Rect{MinX: -1, MaxX: 2, MinY: -1, MaxY: 2}
			items, _, err := r.Search(all)
			if err != nil {
				t.Fatalf("post-failover scan: %v", err)
			}
			if len(items) != len(want) {
				t.Fatalf("post-failover scan: %d items, want %d", len(items), len(want))
			}
			for _, it := range items {
				if !want[it.Ref] {
					t.Fatalf("post-failover scan returned unexpected ref %d", it.Ref)
				}
				delete(want, it.Ref)
			}
			if len(want) != 0 {
				t.Fatalf("%d acknowledged writes lost after failover", len(want))
			}
		})
	}
}

// TestNetZombiePrimaryFenced demotes a primary by promoting its backup,
// then verifies the fencing epoch: the zombie's next replicated write is
// rejected by the backup, the zombie fences itself, and the client write
// fails with the typed fenced error instead of being silently lost.
func TestNetZombiePrimaryFenced(t *testing.T) {
	const hbInv = 4 * time.Millisecond
	addrs, backups, srvs, m, _ := startReplicatedDeploy(t, 1000, 2, 2, hbInv)
	r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 3, Backups: backups})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })

	probe0 := netProbeRect(t, m, 0)
	if err := r.Insert(probe0, 1<<20); err != nil {
		t.Fatalf("warmup insert: %v", err)
	}

	// The primary goes silent without dying: its liveness window lapses and
	// the next write promotes the backup.
	srvs[0][0].PauseHeartbeats(true)
	waitUntil(t, "shard 0 unhealthy", func() bool { return !r.Healthy(0) })
	if err := r.Insert(probe0, 1<<20+1); err != nil {
		t.Fatalf("failover insert: %v", err)
	}
	if got := r.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}

	// The zombie still answers its socket. A stale client writing through
	// it must be fenced: the backup rejects the epoch-1 stream and the
	// zombie propagates the typed error instead of acknowledging.
	zombie := dial(t, srvs[0][0], ClientConfig{})
	err = zombie.Insert(probe0, 1<<20+2)
	if !errors.Is(err, replica.ErrFenced) {
		t.Fatalf("zombie write error = %v, want ErrFenced", err)
	}

	// The promoted backup keeps serving reads and writes for the shard.
	items, _, err := r.Search(probe0)
	if err != nil {
		t.Fatalf("post-fence search: %v", err)
	}
	for _, it := range items {
		if it.Ref == 1<<20+2 {
			t.Fatal("fenced write became visible through the router")
		}
	}
}

// TestUnhealthyErrorEquivalence is the cross-transport table test of the
// unified unhealthy-owner write error: the simulated-fabric router and the
// real-socket router (plain and batched) must produce the same typed
// *shard.UnhealthyError — identical text, errors.Is(err, ErrUnhealthy),
// and the owning shard index attached.
func TestUnhealthyErrorEquivalence(t *testing.T) {
	type row struct {
		transport string
		err       error
	}
	var rows []row

	// Real sockets: drop shard 1's heartbeats and write to it, plain and
	// batched.
	const hbInv = 4 * time.Millisecond
	addrs, srvs, m, _ := startShardedDeploy(t, 1000, 2, hbInv)
	r, err := DialRouter(addrs, RouterConfig{HealthMultiple: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	probe1 := netProbeRect(t, m, 1)
	waitUntil(t, "both shards healthy", func() bool { return r.Healthy(0) && r.Healthy(1) })
	srvs[1].PauseHeartbeats(true)
	waitUntil(t, "shard 1 unhealthy", func() bool { return !r.Healthy(1) })
	rows = append(rows, row{"net", r.Insert(probe1, 1<<30)})
	res := r.ExecBatch([]BatchOp{{Type: wire.MsgInsert, Rect: probe1, Ref: 1<<30 + 1}}, nil)
	rows = append(rows, row{"net-batched", res[0].Err})

	// Simulated fabric: the same dead-owner write through the sim router.
	simErr, simBatchErr := simUnhealthyErrors(t)
	rows = append(rows, row{"sim", simErr}, row{"sim-batched", simBatchErr})

	canonical := (&shard.UnhealthyError{Shard: 1}).Error()
	for _, tc := range rows {
		t.Run(tc.transport, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("dead-owner write succeeded")
			}
			if !errors.Is(tc.err, shard.ErrUnhealthy) {
				t.Errorf("errors.Is(err, ErrUnhealthy) = false for %v", tc.err)
			}
			var ue *shard.UnhealthyError
			if !errors.As(tc.err, &ue) || ue.Shard != 1 {
				t.Errorf("error does not carry shard 1: %v", tc.err)
			}
			if got := tc.err.Error(); got != canonical {
				t.Errorf("error text %q, want %q", got, canonical)
			}
		})
	}
}

// simUnhealthyErrors reproduces the dead-owner write on the simulated
// fabric and returns the plain and batched router errors.
func simUnhealthyErrors(t *testing.T) (plain, batched error) {
	t.Helper()
	const hbInv = time.Millisecond
	const multiple = 3
	rng := rand.New(rand.NewSource(21))
	data := make([]rtree.Entry, 1000)
	for i := range data {
		data[i] = rtree.Entry{Rect: randRect(rng, 0.002), Ref: uint64(i)}
	}
	m, err := shard.Build(data, shard.Config{K: 2, MaxInsertEdge: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(data)

	e := sim.New(7)
	net := fabric.NewNetwork(e, netmodel.InfiniBand100G)
	cost := netmodel.DefaultCostModel()
	clientHost := net.NewHost("client-host", sim.NewCPU(e, 8))
	servers := make([]*simserver.Server, 2)
	clients := make([]*simclient.Client, 2)
	for s := 0; s < 2; s++ {
		host := net.NewHost(fmt.Sprintf("shard-%d", s), sim.NewCPU(e, 8))
		reg, err := region.New(1<<13, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := rtree.New(reg, rtree.Config{MaxEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		if len(assign[s]) > 0 {
			if err := tree.BulkLoad(append([]rtree.Entry(nil), assign[s]...), 0); err != nil {
				t.Fatal(err)
			}
		}
		servers[s], err = simserver.New(simserver.Config{
			Engine:            e,
			Host:              host,
			Tree:              tree,
			Cost:              cost,
			Mode:              simserver.ModeEvent,
			RingSize:          64 << 10,
			HeartbeatInterval: hbInv,
		})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := servers[s].Connect(clientHost, net, 16)
		if err != nil {
			t.Fatal(err)
		}
		clients[s], err = simclient.New(simclient.Config{
			Engine:       e,
			Host:         clientHost,
			Cost:         cost,
			Forced:       simclient.MethodFast,
			Endpoint:     ep,
			HeartbeatInv: hbInv,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Engine:            e,
		Map:               m,
		Clients:           clients,
		HeartbeatInterval: hbInv,
		HealthMultiple:    multiple,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe1 := netProbeRect(t, m, 1)
	e.Spawn("script", func(p *sim.Proc) {
		defer p.Engine().Stop()
		p.Sleep(3 * hbInv)
		servers[1].PauseHeartbeats(true)
		p.Sleep(time.Duration(multiple+3) * hbInv)
		plain = router.Insert(p, probe1, 1<<30)
		res := router.ExecBatch(p, []simclient.BatchOp{
			{Type: wire.MsgInsert, Rect: probe1, Ref: 1<<30 + 1},
		}, nil)
		batched = res[0].Err
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return plain, batched
}
