package rpcnet

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/geo"
	"github.com/catfish-db/catfish/internal/wire"
)

func refCounts(items []wire.Item) map[uint64]int {
	m := map[uint64]int{}
	for _, it := range items {
		m[it.Ref]++
	}
	return m
}

func sameRefs(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestExecBatchOverTCP(t *testing.T) {
	srv, tree := startServer(t, 2000, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	rng := rand.New(rand.NewSource(31))

	var ops []BatchOp
	var want []map[uint64]int
	for i := 0; i < 6; i++ {
		q := randRect(rng, rng.Float64()*0.2)
		ents, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		w := map[uint64]int{}
		for _, e := range ents {
			w[e.Ref]++
		}
		ops = append(ops, BatchOp{Type: wire.MsgSearch, Rect: q})
		want = append(want, w)
	}
	target := geo.NewRect(0.81, 0.81, 0.82, 0.82)
	ops = append(ops,
		BatchOp{Type: wire.MsgInsert, Rect: target, Ref: 555555},
		BatchOp{Type: wire.MsgSearch, Rect: target},
		BatchOp{Type: wire.MsgDelete, Rect: target, Ref: 666666}) // absent ref

	results := c.ExecBatch(ops, nil)
	for i := 0; i < 6; i++ {
		if results[i].Err != nil {
			t.Fatalf("search %d: %v", i, results[i].Err)
		}
		if !sameRefs(refCounts(results[i].Items), want[i]) {
			t.Errorf("search %d mismatch", i)
		}
	}
	if results[6].Err != nil {
		t.Errorf("insert: %v", results[6].Err)
	}
	if got := refCounts(results[7].Items); got[555555] != 1 {
		t.Errorf("same-batch search missed the insert: %v (err %v)", got, results[7].Err)
	}
	if !errors.Is(results[8].Err, ErrNotFound) {
		t.Errorf("delete of absent ref: %v, want ErrNotFound", results[8].Err)
	}

	st := srv.Stats()
	if st.Batches != 1 || st.BatchedOps != 9 {
		t.Errorf("server batch stats = %d/%d, want 1/9", st.Batches, st.BatchedOps)
	}
	cst := c.Stats()
	if cst.BatchesSent != 1 || cst.BatchedOps != 9 {
		t.Errorf("client batch stats = %d/%d, want 1/9", cst.BatchesSent, cst.BatchedOps)
	}

	// A batch of one delegates to the unbatched path: no container.
	one := c.ExecBatch(ops[:1], nil)
	if one[0].Err != nil {
		t.Errorf("single-op batch: %v", one[0].Err)
	}
	if !sameRefs(refCounts(one[0].Items), want[0]) {
		t.Error("single-op batch result mismatch")
	}
	if c.Stats().BatchesSent != 1 {
		t.Errorf("single-op batch shipped a container (sent=%d)", c.Stats().BatchesSent)
	}
}

func TestExecBatchMixedOffloadOverTCP(t *testing.T) {
	// Forced offloading: batched searches traverse with chunk reads while
	// the write travels in the container — concurrently, without
	// deadlocking the shared read loop.
	srv, tree := startServer(t, 2000, ServerConfig{})
	c := dial(t, srv, ClientConfig{Forced: MethodOffload, MultiIssue: true})
	rng := rand.New(rand.NewSource(32))

	var ops []BatchOp
	var want []map[uint64]int
	for i := 0; i < 4; i++ {
		q := randRect(rng, 0.1)
		ents, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		w := map[uint64]int{}
		for _, e := range ents {
			w[e.Ref]++
		}
		ops = append(ops, BatchOp{Type: wire.MsgSearch, Rect: q})
		want = append(want, w)
	}
	ops = append(ops, BatchOp{Type: wire.MsgInsert, Rect: randRect(rng, 0.01), Ref: 777777})

	results := c.ExecBatch(ops, nil)
	for i := 0; i < 4; i++ {
		if results[i].Err != nil || results[i].Method != MethodOffload {
			t.Errorf("search %d: method=%v err=%v", i, results[i].Method, results[i].Err)
		}
		if !sameRefs(refCounts(results[i].Items), want[i]) {
			t.Errorf("search %d mismatch", i)
		}
	}
	if results[4].Err != nil || results[4].Method != MethodFast {
		t.Errorf("insert: method=%v err=%v (writes must use messaging)",
			results[4].Method, results[4].Err)
	}
	if srv.Stats().Inserts != 1 {
		t.Errorf("server inserts = %d, want 1", srv.Stats().Inserts)
	}
	if c.Stats().OffloadSearches != 4 {
		t.Errorf("offload searches = %d, want 4", c.Stats().OffloadSearches)
	}
}

func TestExecBatchLargeResponses(t *testing.T) {
	// Whole-space queries force segmented responses nested in containers
	// larger than one flush budget.
	srv, _ := startServer(t, 3000, ServerConfig{})
	c := dial(t, srv, ClientConfig{})
	all := geo.NewRect(0, 0, 1, 1)
	ops := []BatchOp{
		{Type: wire.MsgSearch, Rect: all},
		{Type: wire.MsgSearch, Rect: all},
	}
	results := c.ExecBatch(ops, nil)
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("op %d: %v", i, res.Err)
		}
		if len(res.Items) != 3000 {
			t.Errorf("op %d: %d items, want 3000", i, len(res.Items))
		}
	}
}

func TestExecBatchMaxBatchExceeded(t *testing.T) {
	// The server answers every operation of an oversized batch with an
	// error (rather than a stray unmatched response that would hang the
	// collector).
	srv, _ := startServer(t, 100, ServerConfig{MaxBatch: 4})
	c := dial(t, srv, ClientConfig{})
	rng := rand.New(rand.NewSource(33))
	var ops []BatchOp
	for i := 0; i < 8; i++ {
		ops = append(ops, BatchOp{Type: wire.MsgSearch, Rect: randRect(rng, 0.1)})
	}
	results := c.ExecBatch(ops, nil)
	for i, res := range results {
		if !errors.Is(res.Err, ErrServer) {
			t.Errorf("op %d: err = %v, want ErrServer", i, res.Err)
		}
	}
	// Batches within the cap still succeed on the same connection.
	results = c.ExecBatch(ops[:4], results)
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("op %d after rejection: %v", i, res.Err)
		}
	}
}
