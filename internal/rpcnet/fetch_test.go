package rpcnet

import (
	"math/rand"
	"testing"

	"github.com/catfish-db/catfish/internal/wire"
)

// TestFetchOverTCPAgrees forces the fetch method over real TCP and checks
// every result against the tree: descriptor + READ_MAILBOX pulls for large
// results, inline responses at or below the threshold.
func TestFetchOverTCPAgrees(t *testing.T) {
	srv, tree := startServer(t, 5000, ServerConfig{FetchSlots: 8, FetchInlineMax: 4})
	c := dial(t, srv, ClientConfig{Forced: MethodFetch, Fetch: true})

	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 25; i++ {
		q := randRect(rng, rng.Float64()*0.2)
		ents, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]int{}
		for _, e := range ents {
			want[e.Ref]++
		}
		items, used, err := c.Search(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if used != MethodFetch {
			t.Fatalf("query %d used %v, want fetch", i, used)
		}
		if !sameRefs(refCounts(items), want) {
			t.Fatalf("query %d: %d items, want %d", i, len(items), len(want))
		}
	}

	st := c.Stats()
	if st.FetchSearches != 25 {
		t.Errorf("fetch searches = %d, want 25", st.FetchSearches)
	}
	if st.FetchBytes == 0 || st.FetchPulls == 0 {
		t.Errorf("no mailbox pulls recorded: %+v", st)
	}
	if st.FetchFallbacks != 0 {
		t.Errorf("fetch fallbacks = %d on a read-only run", st.FetchFallbacks)
	}
	ss := srv.Stats()
	if ss.FetchSearches != 25 {
		t.Errorf("server fetch searches = %d", ss.FetchSearches)
	}
	if ss.FetchBytes == 0 || ss.MailboxReads == 0 {
		t.Errorf("server mailbox counters zero: fetchBytes=%d mailboxReads=%d",
			ss.FetchBytes, ss.MailboxReads)
	}
}

// TestFetchWithoutMailboxOverTCP pins the degradation path: a server with no
// mailbox advertises zero fetch slots, and a forced-fetch client falls back
// to fast messaging with correct results and no pull traffic.
func TestFetchWithoutMailboxOverTCP(t *testing.T) {
	srv, tree := startServer(t, 2000, ServerConfig{})
	c := dial(t, srv, ClientConfig{Forced: MethodFetch, Fetch: true})
	if c.Hello().FetchSlots != 0 {
		t.Fatalf("server without mailbox advertised %d fetch slots", c.Hello().FetchSlots)
	}

	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 10; i++ {
		q := randRect(rng, rng.Float64()*0.2)
		ents, _, err := tree.SearchCollect(q)
		if err != nil {
			t.Fatal(err)
		}
		items, _, err := c.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(ents) {
			t.Fatalf("query %d: %d items, want %d", i, len(items), len(ents))
		}
	}
	if st := c.Stats(); st.FetchBytes != 0 || st.FetchPulls != 0 {
		t.Errorf("pulled a mailbox that does not exist: %+v", st)
	}
}

// TestBatchFetchOverTCP routes a batch's searches through fetch and compares
// against a fast-messaging batch of the same operations.
func TestBatchFetchOverTCP(t *testing.T) {
	srv, _ := startServer(t, 5000, ServerConfig{FetchSlots: 8, FetchInlineMax: 4})
	cFetch := dial(t, srv, ClientConfig{Forced: MethodFetch, Fetch: true})
	cFast := dial(t, srv, ClientConfig{Forced: MethodFast})

	rng := rand.New(rand.NewSource(47))
	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{Type: wire.MsgSearch, Rect: randRect(rng, rng.Float64()*0.2)}
	}
	fetchRes := cFetch.ExecBatch(ops, nil)
	fastRes := cFast.ExecBatch(ops, nil)
	for i := range ops {
		if fetchRes[i].Err != nil || fastRes[i].Err != nil {
			t.Errorf("op %d: fetch err=%v fast err=%v", i, fetchRes[i].Err, fastRes[i].Err)
			continue
		}
		if fetchRes[i].Method != MethodFetch {
			t.Errorf("op %d method %v, want fetch", i, fetchRes[i].Method)
		}
		if !sameRefs(refCounts(fetchRes[i].Items), refCounts(fastRes[i].Items)) {
			t.Errorf("op %d: fetch %d items, fast %d", i,
				len(fetchRes[i].Items), len(fastRes[i].Items))
		}
	}
	if st := cFetch.Stats(); st.FetchSearches != 8 {
		t.Errorf("fetch searches = %d, want 8", st.FetchSearches)
	}
}
